package main

import (
	"bufio"
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// speBinary is built once for the process-level integration tests.
var speBinary string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "spe-test")
	if err != nil {
		os.Exit(1)
	}
	speBinary = filepath.Join(dir, "spe")
	build := exec.Command("go", "build", "-o", speBinary, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func TestSubcommandValidation(t *testing.T) {
	tests := []struct {
		name string
		run  func(*bytes.Buffer) error
	}{
		{"merger without workers", func(b *bytes.Buffer) error { return runMerger(b, nil) }},
		{"worker without id", func(b *bytes.Buffer) error { return runWorker(b, []string{"-merger", "x"}) }},
		{"worker without merger", func(b *bytes.Buffer) error { return runWorker(b, []string{"-id", "0"}) }},
		{"splitter without workers", func(b *bytes.Buffer) error { return runSplitter(b, nil) }},
		{"run with zero workers", func(b *bytes.Buffer) error { return runAll(b, []string{"-workers", "0"}) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tt.run(&buf); err == nil {
				t.Fatal("invalid arguments accepted")
			}
		})
	}
}

func TestMultiProcessPipeline(t *testing.T) {
	// The full deployment model: merger and workers as separate OS
	// processes, splitter orchestrating, all over loopback TCP.
	cmd := exec.Command(speBinary, "run",
		"-workers", "3",
		"-tuples", "12000",
		"-slow-worker", "0",
		"-slow-delay", "1ms",
		"-base-delay", "50us",
	)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("spe run failed: %v\n%s", err, out)
	}
	body := string(out)
	if !strings.Contains(body, "all processes exited cleanly") {
		t.Fatalf("pipeline did not complete:\n%s", body)
	}
	if !strings.Contains(body, "weights=") {
		t.Fatalf("no balancer weights reported:\n%s", body)
	}
	if strings.Count(body, "worker ") < 3 {
		t.Fatalf("missing worker announcements:\n%s", body)
	}
}

// child wraps a spawned spe subprocess whose stdout is consumed line by line.
type child struct {
	cmd  *exec.Cmd
	addr string

	mu   sync.Mutex
	rest []string
}

// startChild launches a subcommand and waits for its ADDR announcement;
// later output is collected for inspection after Wait.
func startChild(t *testing.T, args ...string) *child {
	t.Helper()
	c := &child{cmd: exec.Command(speBinary, args...)}
	c.cmd.Stderr = os.Stderr
	stdout, err := c.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		line := scanner.Text()
		if addr, ok := strings.CutPrefix(line, "ADDR "); ok {
			c.addr = addr
			break
		}
	}
	if c.addr == "" {
		c.cmd.Wait()
		t.Fatalf("child %v exited before announcing an address", args)
	}
	go func() {
		for scanner.Scan() {
			c.mu.Lock()
			c.rest = append(c.rest, scanner.Text())
			c.mu.Unlock()
		}
	}()
	return c
}

// wait joins the child and returns its post-ADDR output.
func (c *child) wait(t *testing.T) string {
	t.Helper()
	if err := c.cmd.Wait(); err != nil {
		t.Fatalf("child exited with %v", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return strings.Join(c.rest, "\n")
}

func TestMultiProcessRoundTripOrdered(t *testing.T) {
	// Wire a merger and two worker processes by hand, as an operator
	// would, then drive them with the splitter run in this process; the
	// merger must report a complete, ordered stream.
	merger := startChild(t, "merger", "-workers", "2")
	w0 := startChild(t, "worker", "-id", "0", "-merger", merger.addr, "-delay", "20us")
	w1 := startChild(t, "worker", "-id", "1", "-merger", merger.addr, "-delay", "20us")

	var splitterOut bytes.Buffer
	if err := runSplitter(&splitterOut, []string{
		"-workers", w0.addr + "," + w1.addr,
		"-tuples", "5000",
		"-interval", "25ms",
	}); err != nil {
		t.Fatalf("splitter: %v", err)
	}
	w0.wait(t)
	w1.wait(t)
	report := merger.wait(t)
	if !strings.Contains(report, "released=5000 ordered=true") {
		t.Fatalf("merger report: %q", report)
	}
	if !strings.Contains(splitterOut.String(), "DONE sent=") {
		t.Fatalf("splitter report:\n%s", splitterOut.String())
	}
}
