package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// speBinary is built once for the process-level integration tests.
var speBinary string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "spe-test")
	if err != nil {
		os.Exit(1)
	}
	speBinary = filepath.Join(dir, "spe")
	build := exec.Command("go", "build", "-o", speBinary, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func TestSubcommandValidation(t *testing.T) {
	tests := []struct {
		name string
		run  func(*bytes.Buffer) error
	}{
		{"merger without workers", func(b *bytes.Buffer) error { return runMerger(b, nil) }},
		{"worker without id", func(b *bytes.Buffer) error { return runWorker(b, []string{"-merger", "x"}) }},
		{"worker without merger", func(b *bytes.Buffer) error { return runWorker(b, []string{"-id", "0"}) }},
		{"splitter without workers", func(b *bytes.Buffer) error { return runSplitter(b, nil) }},
		{"run with zero workers", func(b *bytes.Buffer) error { return runAll(b, []string{"-workers", "0"}) }},
		{"run with unknown transport", func(b *bytes.Buffer) error {
			return runAll(b, []string{"-transport", "carrier-pigeon"})
		}},
		{"run recovery on inproc transport", func(b *bytes.Buffer) error {
			return runAll(b, []string{"-transport", "inproc", "-recover"})
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tt.run(&buf); err == nil {
				t.Fatal("invalid arguments accepted")
			}
		})
	}
}

func TestMultiProcessPipeline(t *testing.T) {
	// The full deployment model: merger and workers as separate OS
	// processes, splitter orchestrating, all over loopback TCP.
	cmd := exec.Command(speBinary, "run",
		"-workers", "3",
		"-tuples", "12000",
		"-slow-worker", "0",
		"-slow-delay", "1ms",
		"-base-delay", "50us",
	)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("spe run failed: %v\n%s", err, out)
	}
	body := string(out)
	if !strings.Contains(body, "all processes exited cleanly") {
		t.Fatalf("pipeline did not complete:\n%s", body)
	}
	if !strings.Contains(body, "weights=") {
		t.Fatalf("no balancer weights reported:\n%s", body)
	}
	if strings.Count(body, "worker ") < 3 {
		t.Fatalf("missing worker announcements:\n%s", body)
	}
}

func TestInprocPipeline(t *testing.T) {
	// The same region as TestMultiProcessPipeline, but co-located on the
	// shared-memory transport: no children are spawned, workers are
	// goroutines, and the report must show a complete ordered stream with
	// balancer weights shaped by the same blocking signal.
	var buf bytes.Buffer
	if err := runAll(&buf, []string{
		"-transport", "inproc",
		"-workers", "3",
		"-tuples", "12000",
		"-slow-worker", "0",
		"-slow-delay", "1ms",
		"-base-delay", "50us",
		"-batch", "4",
	}); err != nil {
		t.Fatalf("spe run -transport inproc failed: %v\n%s", err, buf.String())
	}
	body := buf.String()
	if !strings.Contains(body, "released=12000 ordered=true") {
		t.Fatalf("incomplete or unordered release:\n%s", body)
	}
	if !strings.Contains(body, "weights=") {
		t.Fatalf("no balancer weights reported:\n%s", body)
	}
	if strings.Count(body, "in-process") != 3 {
		t.Fatalf("missing worker announcements:\n%s", body)
	}
}

// child wraps a spawned spe subprocess whose stdout is consumed line by line.
type child struct {
	cmd  *exec.Cmd
	addr string

	mu      sync.Mutex
	rest    []string
	drained chan struct{}
}

// startChild launches a subcommand and waits for its ADDR announcement;
// later output is collected for inspection after Wait.
func startChild(t *testing.T, args ...string) *child {
	t.Helper()
	c := &child{cmd: exec.Command(speBinary, args...)}
	c.cmd.Stderr = os.Stderr
	stdout, err := c.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		line := scanner.Text()
		if addr, ok := strings.CutPrefix(line, "ADDR "); ok {
			c.addr = addr
			break
		}
	}
	if c.addr == "" {
		c.cmd.Wait()
		t.Fatalf("child %v exited before announcing an address", args)
	}
	c.drained = make(chan struct{})
	go func() {
		defer close(c.drained)
		for scanner.Scan() {
			c.mu.Lock()
			c.rest = append(c.rest, scanner.Text())
			c.mu.Unlock()
		}
	}()
	return c
}

// wait joins the child and returns its post-ADDR output. It joins the drain
// goroutine too — cmd.Wait returning does not mean the last stdout lines
// (like the merger's DONE report) have been consumed yet.
func (c *child) wait(t *testing.T) string {
	t.Helper()
	if err := c.cmd.Wait(); err != nil {
		t.Fatalf("child exited with %v", err)
	}
	<-c.drained
	c.mu.Lock()
	defer c.mu.Unlock()
	return strings.Join(c.rest, "\n")
}

func TestMultiProcessRoundTripOrdered(t *testing.T) {
	// Wire a merger and two worker processes by hand, as an operator
	// would, then drive them with the splitter run in this process; the
	// merger must report a complete, ordered stream.
	merger := startChild(t, "merger", "-workers", "2")
	w0 := startChild(t, "worker", "-id", "0", "-merger", merger.addr, "-delay", "20us")
	w1 := startChild(t, "worker", "-id", "1", "-merger", merger.addr, "-delay", "20us")

	var splitterOut bytes.Buffer
	if err := runSplitter(&splitterOut, []string{
		"-workers", w0.addr + "," + w1.addr,
		"-tuples", "5000",
		"-interval", "25ms",
	}); err != nil {
		t.Fatalf("splitter: %v", err)
	}
	w0.wait(t)
	w1.wait(t)
	report := merger.wait(t)
	if !strings.Contains(report, "released=5000 ordered=true") {
		t.Fatalf("merger report: %q", report)
	}
	if !strings.Contains(splitterOut.String(), "DONE sent=") {
		t.Fatalf("splitter report:\n%s", splitterOut.String())
	}
}

func TestMetricsEndpointOnRunningRegion(t *testing.T) {
	// The acceptance check for the observability layer: while a region is
	// streaming, GET /metrics must return Prometheus text carrying the
	// per-connection blocking-rate and weight gauges, and /trace must
	// return the balancer's decision log.
	merger := startChild(t, "merger", "-workers", "2")
	w0 := startChild(t, "worker", "-id", "0", "-merger", merger.addr, "-delay", "100us")
	w1 := startChild(t, "worker", "-id", "1", "-merger", merger.addr, "-delay", "100us")

	pr, pw := io.Pipe()
	splitterErr := make(chan error, 1)
	go func() {
		err := runSplitter(pw, []string{
			"-workers", w0.addr + "," + w1.addr,
			"-tuples", "30000",
			"-interval", "25ms",
			"-metrics-addr", "127.0.0.1:0",
		})
		splitterErr <- err
		pw.CloseWithError(err)
	}()
	scanner := bufio.NewScanner(pr)
	var metricsAddr string
	for scanner.Scan() {
		if a, ok := strings.CutPrefix(scanner.Text(), "METRICS "); ok {
			metricsAddr = a
			break
		}
	}
	if metricsAddr == "" {
		t.Fatalf("splitter never announced METRICS: %v", <-splitterErr)
	}
	// Keep draining the pipe so the splitter never blocks on stdout.
	go func() {
		for scanner.Scan() {
		}
	}()

	// The gauges appear after the first controller tick, so poll while the
	// region streams.
	deadline := time.Now().Add(10 * time.Second)
	var body string
	for {
		resp, err := http.Get("http://" + metricsAddr + "/metrics")
		if err == nil {
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
				t.Fatalf("metrics content type %q", ct)
			}
			b, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil {
				body = string(b)
				if strings.Contains(body, `spe_splitter_blocking_rate{conn="0"}`) &&
					strings.Contains(body, `spe_splitter_blocking_rate{conn="1"}`) &&
					strings.Contains(body, `spe_balancer_weight_units{conn="0"}`) &&
					strings.Contains(body, `spe_balancer_weight_units{conn="1"}`) {
					break
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("gauges never appeared on /metrics; last scrape:\n%s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Every sample line must be well formed enough for a scraper: a
	// metric name, optional labels, and a float value.
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
	if !strings.Contains(body, "# TYPE spe_splitter_blocking_seconds_total counter") {
		t.Fatalf("missing TYPE header for blocking counter:\n%s", body)
	}

	// The trace endpoint serves the decision ring as JSON while running.
	resp, err := http.Get("http://" + metricsAddr + "/trace")
	if err == nil {
		tb, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
			t.Fatalf("trace content type %q", resp.Header.Get("Content-Type"))
		}
		if !strings.Contains(string(tb), `"events"`) {
			t.Fatalf("trace dump missing events envelope: %s", tb)
		}
	}

	if err := <-splitterErr; err != nil {
		t.Fatalf("splitter: %v", err)
	}
	w0.wait(t)
	w1.wait(t)
	report := merger.wait(t)
	if !strings.Contains(report, "released=30000 ordered=true") {
		t.Fatalf("merger report: %q", report)
	}
}

func TestKeyedPipelineWithCombine(t *testing.T) {
	// A keyed Zipf stream over two worker processes, PKG-routed, with the
	// per-key sum combiner in each worker. The merger's release stream may
	// legitimately skip absorbed sequences, but released + combined must
	// still cover the whole stream exactly once.
	merger := startChild(t, "merger", "-workers", "2")
	w0 := startChild(t, "worker", "-id", "0", "-merger", merger.addr, "-combine")
	w1 := startChild(t, "worker", "-id", "1", "-merger", merger.addr, "-combine")

	var splitterOut bytes.Buffer
	if err := runSplitter(&splitterOut, []string{
		"-workers", w0.addr + "," + w1.addr,
		"-tuples", "8000",
		"-batch", "16",
		"-keyed",
		"-skew", "1.5",
		"-keys", "50",
		"-router", "pkg",
		"-seed", "7",
		"-interval", "25ms",
	}); err != nil {
		t.Fatalf("splitter: %v", err)
	}
	w0.wait(t)
	w1.wait(t)
	report := merger.wait(t)
	released, combined := parseMergerReport(t, report)
	if released+combined != 8000 {
		t.Fatalf("released %d + combined %d != 8000:\n%s", released, combined, report)
	}
	if combined == 0 {
		t.Fatalf("combiner never absorbed a tuple at skew 1.5 over 50 keys:\n%s", report)
	}
	if !strings.Contains(report, "ordered=true") {
		t.Fatalf("merger saw out-of-order releases:\n%s", report)
	}
	if !strings.Contains(splitterOut.String(), "keyedSent=") {
		t.Fatalf("splitter did not report keyed routing stats:\n%s", splitterOut.String())
	}
}

func TestKeyedInprocPipeline(t *testing.T) {
	// The same keyed workload co-located on the shared-memory transport via
	// spe run, hash-routed with combining, driven by a fixed seed.
	var buf bytes.Buffer
	if err := runAll(&buf, []string{
		"-transport", "inproc",
		"-workers", "3",
		"-tuples", "9000",
		"-batch", "8",
		"-keyed",
		"-skew", "1.5",
		"-keys", "40",
		"-router", "hash",
		"-combine",
		"-seed", "3",
	}); err != nil {
		t.Fatalf("spe run -keyed inproc failed: %v\n%s", err, buf.String())
	}
	body := buf.String()
	released, combined := parseMergerReport(t, body)
	if released+combined != 9000 {
		t.Fatalf("released %d + combined %d != 9000:\n%s", released, combined, body)
	}
	if combined == 0 {
		t.Fatalf("combiner never absorbed a tuple:\n%s", body)
	}
	if !strings.Contains(body, "ordered=true") || !strings.Contains(body, "keyedSent=") {
		t.Fatalf("missing order or keyed routing report:\n%s", body)
	}
}

// parseMergerReport extracts released and combined counts from a merger DONE
// line ("DONE released=N ordered=B combined=M").
func parseMergerReport(t *testing.T, report string) (released, combined uint64) {
	t.Helper()
	for _, line := range strings.Split(report, "\n") {
		if !strings.Contains(line, "released=") {
			continue
		}
		for _, field := range strings.Fields(line) {
			if v, ok := strings.CutPrefix(field, "released="); ok {
				fmt.Sscanf(v, "%d", &released)
			}
			if v, ok := strings.CutPrefix(field, "combined="); ok {
				fmt.Sscanf(v, "%d", &combined)
			}
		}
		return released, combined
	}
	t.Fatalf("no merger DONE line in report:\n%s", report)
	return 0, 0
}
