// Command spe runs the components of one ordered data-parallel region as
// separate OS processes — the paper's deployment model, where "each PE maps
// to an OS process" (Section 2). Subcommands:
//
//	spe merger   -workers N                 # in-order merge, prints ADDR
//	spe worker   -id I -merger ADDR -delay D  # one worker PE, prints ADDR
//	spe splitter -workers A1,A2,... -tuples N  # splitter + balancer
//	spe run      -workers N -tuples N       # spawn everything, wire it up
//
// Passing -transport inproc to run keeps the whole region in one process on
// the shared-memory transport: workers become goroutines and every edge a
// bounded SPSC ring, with the same balancer and blocking signal. Recovery
// (-recover) needs the default tcp transport.
//
// Passing -recover to run (or -control ADDR to splitter plus -resilient to
// worker) enables the fault-tolerant mode: the splitter retains unreleased
// tuples and replays them if a worker dies, reconnects with backoff, and the
// merger dedupes so every tuple is still released exactly once in order.
//
// Passing -keyed to run or splitter streams a deterministic Zipf-skewed
// keyed workload (-skew, -keys, -seed shape it; equal seeds give
// byte-identical streams) routed by -router: hash grouping, PKG two-choice,
// or d-choices. -combine makes workers fold same-key results per batch
// before the ordered merge; the merger's DONE line reports the absorbed
// releases in its combined count.
//
// merger and worker print "ADDR host:port" on stdout once listening, so a
// launcher (spe run, a script, or an operator) can wire the pipeline. All
// tuple traffic flows over real TCP with the blocking-time instrumentation
// of internal/transport.
//
// Passing -metrics-addr to splitter, merger, or run serves the component's
// Prometheus /metrics and JSON /trace endpoints on that address and prints
// "METRICS host:port" once listening (use :0 for an ephemeral port).
//
// Straggler defense: -io-timeout and -send-stall bound every control-plane
// and data-plane I/O (dials, handshakes, probes, control frames, parked
// sends); -stall-window arms the merger's merge-stall watchdog, which
// quarantines a worker that accepts tuples but stops delivering results; and
// -max-readmits caps how many times a quarantined worker may rejoin before
// the circuit breaker retires it. All four are accepted by run and forwarded
// to the right components.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"time"

	"streambalance/internal/core"
	"streambalance/internal/metrics"
	"streambalance/internal/runtime"
	"streambalance/internal/schedule"
	"streambalance/internal/sim"
	"streambalance/internal/transport"
)

// keyedRouter builds the splitter-side routing policy for keyed streams.
func keyedRouter(name string, n int) (schedule.KeyRouter, error) {
	switch name {
	case "", "pkg":
		return schedule.NewPKGRouter(n)
	case "hash":
		return schedule.NewHashRouter(n)
	case "dchoices":
		return schedule.NewDChoicesRouter(n, schedule.DefaultDChoices, schedule.DefaultTrackerCap)
	default:
		return nil, fmt.Errorf("unknown -router %q (hash, pkg or dchoices)", name)
	}
}

// keyedSource adapts a deterministic sim.KeyedStream to the splitter's keyed
// source: same seed and shape parameters, byte-identical stream. The payload
// carries a little-endian unit value so -combine worker sums stay auditable.
func keyedSource(tuples uint64, payload, keys int, skew, hotShare float64, churn uint64, seed int64) runtime.KeyedSource {
	ks := sim.NewZipfStream(keys, skew, seed)
	ks.SetHotShare(hotShare)
	ks.SetChurn(churn)
	if payload < 8 {
		payload = 8
	}
	buf := make([]byte, payload)
	buf[0] = 1
	return func(seq uint64) (uint64, []byte, bool) {
		if seq >= tuples {
			return 0, nil, false
		}
		return ks.Key(seq), buf, true
	}
}

// serveMetrics starts the opt-in observability endpoint and returns the
// instrumented RegionMetrics to wire into the component. addr=="" disables
// it. The announced "METRICS host:port" line lets launchers (and tests)
// discover the port when addr ends in :0.
func serveMetrics(w io.Writer, addr string) (*runtime.RegionMetrics, *metrics.Server, error) {
	if addr == "" {
		return nil, nil, nil
	}
	reg := metrics.New()
	tr := metrics.NewTrace(metrics.DefaultTraceCap)
	rm := runtime.NewRegionMetrics(reg, tr)
	srv, err := metrics.Serve(addr, reg, tr)
	if err != nil {
		return nil, nil, fmt.Errorf("metrics: %w", err)
	}
	fmt.Fprintf(w, "METRICS %s\n", srv.Addr())
	return rm, srv, nil
}

// timeoutFlags registers the shared I/O-deadline flags on fs and returns a
// builder assembling a runtime.Timeouts from their parsed values. Zero keeps
// the package defaults; negative disables the corresponding deadline.
func timeoutFlags(fs *flag.FlagSet) func() runtime.Timeouts {
	ioTO := fs.Duration("io-timeout", 0, "deadline for dials, handshakes, health probes and control writes (0 = defaults, negative = disabled)")
	sendStall := fs.Duration("send-stall", 0, "how long a send may stay parked on a full connection before failing (0 = default, negative = disabled)")
	return func() runtime.Timeouts {
		return runtime.Timeouts{
			Dial:         *ioTO,
			Handshake:    *ioTO,
			Probe:        *ioTO,
			ControlWrite: *ioTO,
			SendStall:    *sendStall,
		}
	}
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "spe: need a subcommand: merger, worker, splitter, run")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "merger":
		err = runMerger(os.Stdout, os.Args[2:])
	case "worker":
		err = runWorker(os.Stdout, os.Args[2:])
	case "splitter":
		err = runSplitter(os.Stdout, os.Args[2:])
	case "run":
		err = runAll(os.Stdout, os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "spe:", err)
		os.Exit(1)
	}
}

// runMerger hosts the in-order merger process.
func runMerger(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("spe merger", flag.ContinueOnError)
	workers := fs.Int("workers", 0, "number of worker connections to accept")
	queue := fs.Int("queue", 0, "reorder queue capacity per worker (0 = default)")
	recvBatch := fs.Int("recv-batch", 0, "tuples ingested per receive pass (0 = default, 1 = per-tuple)")
	ringCap := fs.Int("ring-cap", 0, "per-connection lock-free ingest ring capacity, rounded up to a power of two (0 = default)")
	stallWindow := fs.Duration("stall-window", 0, "merge-stall watchdog window; quarantines stragglers via the control channel (0 = off)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics and /trace on this address (empty = off)")
	timeouts := timeoutFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers <= 0 {
		return errors.New("merger: -workers must be positive")
	}
	var count uint64
	ordered := true
	var lastSeq uint64
	// Strictly increasing, not strictly contiguous: when workers run per-key
	// combiners, absorbed sequence numbers are released through the watermark
	// without a sink call, so gaps here are legitimate (and accounted in the
	// DONE line's combined count).
	m, err := runtime.NewMerger(*workers, *queue, func(t transport.Tuple, conn int) {
		if count > 0 && t.Seq <= lastSeq {
			ordered = false
		}
		lastSeq = t.Seq
		count++
	})
	if err != nil {
		return err
	}
	if *recvBatch > 0 {
		m.SetRecvBatch(*recvBatch)
	}
	if *ringCap > 0 {
		m.SetRingCap(*ringCap)
	}
	m.SetTimeouts(timeouts())
	if *stallWindow > 0 {
		m.SetStallWindow(*stallWindow)
	}
	rm, msrv, err := serveMetrics(w, *metricsAddr)
	if err != nil {
		return err
	}
	if msrv != nil {
		defer msrv.Close()
		m.SetMetrics(rm)
	}
	fmt.Fprintf(w, "ADDR %s\n", m.Addr())
	m.Start()
	if err := m.Wait(); err != nil {
		return err
	}
	fmt.Fprintf(w, "DONE released=%d ordered=%v combined=%d\n", count, ordered, m.CombinedReleased())
	return nil
}

// runWorker hosts one worker PE process.
func runWorker(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("spe worker", flag.ContinueOnError)
	id := fs.Int("id", -1, "worker id (must match the splitter's ordering)")
	merger := fs.String("merger", "", "merger address to forward to")
	delay := fs.Duration("delay", 0, "artificial per-tuple delay (emulated load)")
	spin := fs.Int64("spin", 0, "integer multiplies per tuple (CPU load)")
	service := fs.Duration("service", 0, "per-tuple wall-clock service time, debt-batched so it stays accurate below kernel sleep granularity")
	combine := fs.Bool("combine", false, "fold same-key results per batch with the per-key sum combiner before forwarding")
	recvBatch := fs.Int("recv-batch", 0, "tuples received/processed/forwarded per pass (0 = default, 1 = per-tuple)")
	resilient := fs.Bool("resilient", false, "serve reconnecting splitters until killed (recovery mode)")
	timeouts := timeoutFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id < 0 || *merger == "" {
		return errors.New("worker: need -id and -merger")
	}
	var op runtime.Operator
	switch {
	case *delay > 0:
		op = runtime.NewDelayOperator(*delay)
	case *spin > 0:
		op = runtime.NewSpinOperator(*spin)
	case *service > 0:
		op = runtime.NewServiceOperator(*service)
	default:
		op = runtime.Identity()
	}
	worker, err := runtime.NewWorker(*id, op, *merger)
	if err != nil {
		return err
	}
	if *combine {
		worker.SetCombiner(runtime.SumCombiner())
	}
	if *recvBatch > 0 {
		worker.SetRecvBatch(*recvBatch)
	}
	if *resilient {
		worker.SetResilient(true)
	}
	worker.SetTimeouts(timeouts())
	fmt.Fprintf(w, "ADDR %s\n", worker.Addr())
	worker.Start()
	if err := worker.Wait(); err != nil {
		return err
	}
	fmt.Fprintln(w, "DONE")
	return nil
}

// runSplitter hosts the splitter (and controller) process.
func runSplitter(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("spe splitter", flag.ContinueOnError)
	workers := fs.String("workers", "", "comma-separated worker addresses, in id order")
	tuples := fs.Uint64("tuples", 100_000, "tuples to stream")
	payload := fs.Int("payload", 256, "payload bytes per tuple")
	interval := fs.Duration("interval", 100*time.Millisecond, "controller sampling interval")
	noBalance := fs.Bool("no-balance", false, "disable balancing")
	sockbuf := fs.Int("sockbuf", 8<<10, "socket buffer bytes per connection")
	batch := fs.Int("batch", 1, "tuples per vectored-write batch (1 = per-tuple sends)")
	keyed := fs.Bool("keyed", false, "stream deterministic keyed tuples (Zipf skew) instead of the unkeyed constant source")
	skew := fs.Float64("skew", 1.1, "Zipf exponent of the keyed stream (0 = uniform; needs -keyed)")
	keys := fs.Int("keys", 10_000, "key universe size (needs -keyed)")
	hotShare := fs.Float64("hot-share", 0, "extra probability mass on the hottest key (needs -keyed)")
	churn := fs.Uint64("churn", 0, "rotate the key universe every this many tuples (0 = off; needs -keyed)")
	router := fs.String("router", "pkg", "keyed routing policy: hash, pkg or dchoices (needs -keyed)")
	seed := fs.Int64("seed", 1, "key-generator seed; equal seeds give byte-identical streams (needs -keyed)")
	control := fs.String("control", "", "merger address for the recovery control channel (enables replay on worker failure)")
	retain := fs.Int("retain", 0, "replay buffer capacity in tuples (0 = default; needs -control)")
	noRedial := fs.Bool("no-redial", false, "do not reconnect to failed workers (needs -control)")
	maxReadmits := fs.Int("max-readmits", 0, "quarantines one worker may survive before permanent eviction (0 = default, negative = unlimited; needs -control)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics and /trace on this address (empty = off)")
	timeouts := timeoutFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := strings.Split(*workers, ",")
	if *workers == "" || len(addrs) == 0 {
		return errors.New("splitter: need -workers")
	}
	var balancer *core.Balancer
	if !*noBalance {
		var err error
		balancer, err = core.NewBalancer(core.Config{Connections: len(addrs), DecayEnabled: true})
		if err != nil {
			return err
		}
	}
	scfg := runtime.SplitterConfig{
		WorkerAddrs:       addrs,
		Source:            runtime.ConstantSource(make([]byte, *payload), *tuples),
		Balancer:          balancer,
		SampleInterval:    *interval,
		SocketBufferBytes: *sockbuf,
		BatchSize:         *batch,
		OnConnEvent: func(ev runtime.ConnEvent) {
			switch ev.Kind {
			case "down":
				fmt.Fprintf(w, "EVENT worker %d down: %v\n", ev.Conn, ev.Err)
			case "replay":
				fmt.Fprintf(w, "EVENT worker %d replayed %d tuples\n", ev.Conn, ev.Tuples)
			case "rejoin":
				fmt.Fprintf(w, "EVENT worker %d rejoined\n", ev.Conn)
			case "quarantine":
				fmt.Fprintf(w, "EVENT worker %d quarantined by merge-stall watchdog\n", ev.Conn)
			case "evicted":
				fmt.Fprintf(w, "EVENT worker %d evicted permanently (quarantine limit)\n", ev.Conn)
			case "redial-exhausted":
				fmt.Fprintf(w, "EVENT worker %d redial budget exhausted: %v\n", ev.Conn, ev.Err)
			}
		},
		Timeouts: timeouts(),
	}
	if *keyed {
		scfg.Source = nil
		scfg.KeyedSource = keyedSource(*tuples, *payload, *keys, *skew, *hotShare, *churn, *seed)
		r, err := keyedRouter(*router, len(addrs))
		if err != nil {
			return err
		}
		scfg.Router = r
	}
	if *control != "" {
		scfg.ControlAddr = *control
		scfg.RetainCap = *retain
		scfg.MaxReadmits = *maxReadmits
		if !*noRedial {
			policy := runtime.DefaultRegionRedial
			scfg.Redial = &policy
		}
	}
	rm, msrv, err := serveMetrics(w, *metricsAddr)
	if err != nil {
		return err
	}
	if msrv != nil {
		defer msrv.Close()
		scfg.Metrics = rm
	}
	sp, err := runtime.NewSplitter(scfg)
	if err != nil {
		return err
	}
	sp.Start()
	if err := sp.Wait(); err != nil {
		return err
	}
	sent, blocking := sp.ConnStats()
	fmt.Fprintf(w, "DONE sent=%v blocking=%v\n", sent, blocking)
	if *keyed {
		fmt.Fprintf(w, "keyedSent=%v\n", sp.KeyedStats())
	}
	if balancer != nil {
		fmt.Fprintf(w, "weights=%v\n", balancer.Weights())
	}
	return nil
}

// runAll spawns the merger and workers as child processes of this binary and
// runs the splitter in this process.
func runAll(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("spe run", flag.ContinueOnError)
	workers := fs.Int("workers", 3, "number of worker processes")
	tuples := fs.Uint64("tuples", 50_000, "tuples to stream")
	slowWorker := fs.Int("slow-worker", 0, "worker carrying extra load (-1 for none)")
	slowDelay := fs.Duration("slow-delay", time.Millisecond, "per-tuple delay of the loaded worker")
	baseDelay := fs.Duration("base-delay", 50*time.Microsecond, "per-tuple delay of unloaded workers")
	recover := fs.Bool("recover", false, "enable worker-failure recovery (resilient workers + control channel)")
	transportKind := fs.String("transport", "tcp", "region transport: tcp (one OS process per PE over loopback) or inproc (one process, shared-memory rings)")
	batch := fs.Int("batch", 1, "tuples per vectored-write batch (1 = per-tuple sends)")
	recvBatch := fs.Int("recv-batch", 0, "tuples per receive pass in workers and merger (0 = default, 1 = per-tuple)")
	ringCap := fs.Int("ring-cap", 0, "merger per-connection ingest ring capacity (0 = default)")
	stallWindow := fs.Duration("stall-window", 0, "merge-stall watchdog window (0 = off; needs -recover)")
	maxReadmits := fs.Int("max-readmits", 0, "quarantines one worker may survive before permanent eviction (0 = default, negative = unlimited)")
	keyed := fs.Bool("keyed", false, "stream deterministic keyed tuples (Zipf skew) instead of the unkeyed constant source")
	skew := fs.Float64("skew", 1.1, "Zipf exponent of the keyed stream (0 = uniform; needs -keyed)")
	keys := fs.Int("keys", 10_000, "key universe size (needs -keyed)")
	router := fs.String("router", "pkg", "keyed routing policy: hash, pkg or dchoices (needs -keyed)")
	combine := fs.Bool("combine", false, "workers fold same-key results per batch before the merge (needs -keyed)")
	seed := fs.Int64("seed", 1, "key-generator seed; equal seeds give byte-identical streams (needs -keyed)")
	ioTO := fs.Duration("io-timeout", 0, "deadline for dials, handshakes, probes and control writes in every component (0 = defaults)")
	sendStall := fs.Duration("send-stall", 0, "parked-send bound in splitter and workers (0 = default)")
	metricsAddr := fs.String("metrics-addr", "", "serve the splitter's /metrics and /trace on this address (empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 1 {
		return errors.New("run: need at least one worker")
	}
	switch *transportKind {
	case "", "tcp":
	case "inproc":
		if *recover {
			return errors.New("run: -recover needs the tcp transport (recovery is a remote-process protocol)")
		}
		return runAllInproc(w, inprocRunConfig{
			workers:     *workers,
			tuples:      *tuples,
			slowWorker:  *slowWorker,
			slowDelay:   *slowDelay,
			baseDelay:   *baseDelay,
			batch:       *batch,
			recvBatch:   *recvBatch,
			ringCap:     *ringCap,
			sendStall:   *sendStall,
			metricsAddr: *metricsAddr,
			keyed:       *keyed,
			skew:        *skew,
			keys:        *keys,
			router:      *router,
			combine:     *combine,
			seed:        *seed,
		})
	default:
		return fmt.Errorf("run: unknown -transport %q (tcp or inproc)", *transportKind)
	}
	self, err := os.Executable()
	if err != nil {
		return fmt.Errorf("run: locate own binary: %w", err)
	}

	// Merger first: workers dial it.
	margs := []string{"-workers", fmt.Sprint(*workers)}
	if *recvBatch > 0 {
		margs = append(margs, "-recv-batch", fmt.Sprint(*recvBatch))
	}
	if *ringCap > 0 {
		margs = append(margs, "-ring-cap", fmt.Sprint(*ringCap))
	}
	if *ioTO != 0 {
		margs = append(margs, "-io-timeout", ioTO.String())
	}
	if *stallWindow > 0 && *recover {
		margs = append(margs, "-stall-window", stallWindow.String())
	}
	mergerCmd, mergerAddr, err := spawn(self, "merger", margs...)
	if err != nil {
		return fmt.Errorf("run: merger: %w", err)
	}
	fmt.Fprintf(w, "merger listening on %s\n", mergerAddr)

	workerCmds := make([]*exec.Cmd, *workers)
	addrs := make([]string, *workers)
	for i := 0; i < *workers; i++ {
		delay := *baseDelay
		if i == *slowWorker {
			delay = *slowDelay
		}
		wargs := []string{
			"-id", fmt.Sprint(i),
			"-merger", mergerAddr,
			"-delay", delay.String(),
		}
		if *recvBatch > 0 {
			wargs = append(wargs, "-recv-batch", fmt.Sprint(*recvBatch))
		}
		if *recover {
			wargs = append(wargs, "-resilient")
		}
		if *keyed && *combine {
			wargs = append(wargs, "-combine")
		}
		if *ioTO != 0 {
			wargs = append(wargs, "-io-timeout", ioTO.String())
		}
		if *sendStall != 0 {
			wargs = append(wargs, "-send-stall", sendStall.String())
		}
		cmd, addr, err := spawn(self, "worker", wargs...)
		if err != nil {
			return fmt.Errorf("run: worker %d: %w", i, err)
		}
		workerCmds[i] = cmd
		addrs[i] = addr
		fmt.Fprintf(w, "worker %d listening on %s (delay %v)\n", i, addr, delay)
	}

	sargs := []string{
		"-workers", strings.Join(addrs, ","),
		"-tuples", fmt.Sprint(*tuples),
		"-batch", fmt.Sprint(*batch),
	}
	if *keyed {
		sargs = append(sargs,
			"-keyed",
			"-skew", fmt.Sprint(*skew),
			"-keys", fmt.Sprint(*keys),
			"-router", *router,
			"-seed", fmt.Sprint(*seed),
		)
	}
	if *recover {
		sargs = append(sargs, "-control", mergerAddr)
		if *maxReadmits != 0 {
			sargs = append(sargs, "-max-readmits", fmt.Sprint(*maxReadmits))
		}
	}
	if *ioTO != 0 {
		sargs = append(sargs, "-io-timeout", ioTO.String())
	}
	if *sendStall != 0 {
		sargs = append(sargs, "-send-stall", sendStall.String())
	}
	if *metricsAddr != "" {
		sargs = append(sargs, "-metrics-addr", *metricsAddr)
	}
	if err := runSplitter(w, sargs); err != nil {
		return fmt.Errorf("run: splitter: %w", err)
	}
	for i, cmd := range workerCmds {
		if *recover {
			// Resilient workers serve until killed.
			cmd.Process.Kill()
			cmd.Wait()
			continue
		}
		if err := cmd.Wait(); err != nil {
			return fmt.Errorf("run: wait worker %d: %w", i, err)
		}
	}
	if err := mergerCmd.Wait(); err != nil {
		return fmt.Errorf("run: wait merger: %w", err)
	}
	fmt.Fprintln(w, "all processes exited cleanly")
	return nil
}

// inprocRunConfig carries the run-subcommand flags that apply to the
// in-process transport.
type inprocRunConfig struct {
	workers    int
	tuples     uint64
	slowWorker int
	slowDelay  time.Duration
	baseDelay  time.Duration
	batch      int
	recvBatch  int
	ringCap    int
	sendStall  time.Duration

	metricsAddr string

	keyed   bool
	skew    float64
	keys    int
	router  string
	combine bool
	seed    int64
}

// runAllInproc runs the same region as runAll entirely inside this process on
// the shared-memory transport: workers become goroutines, every edge becomes a
// bounded SPSC ring, and nothing is spawned. The balancer and its blocking
// signal are identical — ring-full waits elect to block exactly like full
// socket buffers do.
func runAllInproc(w io.Writer, cfg inprocRunConfig) error {
	ops := make([]runtime.Operator, cfg.workers)
	for i := range ops {
		delay := cfg.baseDelay
		if i == cfg.slowWorker {
			delay = cfg.slowDelay
		}
		ops[i] = runtime.NewDelayOperator(delay)
		fmt.Fprintf(w, "worker %d in-process (delay %v)\n", i, delay)
	}
	balancer, err := core.NewBalancer(core.Config{Connections: cfg.workers, DecayEnabled: true})
	if err != nil {
		return err
	}
	rcfg := runtime.RegionConfig{
		Transport:      runtime.TransportInproc,
		Operators:      ops,
		Balancer:       balancer,
		SampleInterval: 100 * time.Millisecond,
		BatchSize:      cfg.batch,
		RecvBatchSize:  cfg.recvBatch,
		RingCap:        cfg.ringCap,
		Timeouts:       runtime.Timeouts{SendStall: cfg.sendStall},
	}
	if cfg.keyed {
		rcfg.KeyedSource = keyedSource(cfg.tuples, 256, cfg.keys, cfg.skew, 0, 0, cfg.seed)
		r, err := keyedRouter(cfg.router, cfg.workers)
		if err != nil {
			return err
		}
		rcfg.Router = r
		if cfg.combine {
			rcfg.Combiner = runtime.SumCombiner()
		}
	} else {
		rcfg.Source = runtime.ConstantSource(make([]byte, 256), cfg.tuples)
	}
	rm, msrv, err := serveMetrics(w, cfg.metricsAddr)
	if err != nil {
		return err
	}
	if msrv != nil {
		defer msrv.Close()
		rcfg.Metrics = rm
	}
	region, err := runtime.NewRegion(rcfg)
	if err != nil {
		return err
	}
	res, err := region.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "DONE sent=%v blocking=%v\n", res.PerConnSent, res.TotalBlocking)
	if cfg.keyed {
		fmt.Fprintf(w, "keyedSent=%v\n", res.KeyedSent)
	}
	fmt.Fprintf(w, "weights=%v\n", balancer.Weights())
	fmt.Fprintf(w, "DONE released=%d ordered=%v combined=%d\n", res.Released, res.OrderPreserved, res.CombinedReleased)
	fmt.Fprintln(w, "all processes exited cleanly")
	return nil
}

// spawn starts a child subcommand and reads its ADDR announcement.
func spawn(self, sub string, args ...string) (*exec.Cmd, string, error) {
	cmd := exec.Command(self, append([]string{sub}, args...)...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		line := scanner.Text()
		if addr, ok := strings.CutPrefix(line, "ADDR "); ok {
			// Keep draining the child's stdout in the background so it
			// never blocks writing its DONE line.
			go func() {
				for scanner.Scan() {
				}
			}()
			return cmd, addr, nil
		}
	}
	if err := cmd.Wait(); err != nil {
		return nil, "", fmt.Errorf("child exited before announcing address: %w", err)
	}
	return nil, "", errors.New("child exited before announcing address")
}
