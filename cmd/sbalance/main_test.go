package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunBalancedPipeline(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, []string{
		"-workers", "2",
		"-tuples", "3000",
		"-base-delay", "20us",
		"-slow-delay", "400us",
		"-interval", "25ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "order preserved: true") {
		t.Fatalf("ordering not reported:\n%s", out)
	}
	if !strings.Contains(out, "learned blocking-rate functions") {
		t.Fatalf("function dump missing:\n%s", out)
	}
}

func TestRunRoundRobinPipeline(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, []string{
		"-workers", "2",
		"-tuples", "1500",
		"-base-delay", "10us",
		"-slow-worker", "-1",
		"-no-balance",
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "learned blocking-rate functions") {
		t.Fatal("function dump printed without a balancer")
	}
}

func TestRunValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-workers", "0"}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if err := run(&buf, []string{"-workers", "2", "-slow-worker", "5"}); err == nil {
		t.Fatal("out-of-range slow worker accepted")
	}
	if err := run(&buf, []string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
