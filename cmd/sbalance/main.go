// Command sbalance runs one ordered data-parallel region as a real pipeline
// over loopback TCP — splitter, N worker PEs, in-order merger — with the
// blocking-rate balancer adjusting allocation weights live. It is the
// interactive face of internal/runtime: point it at a worker count and a
// cost profile and watch the weights move.
//
// Examples:
//
//	sbalance -workers 3 -tuples 100000
//	sbalance -workers 4 -slow-worker 0 -slow-delay 2ms -remove-at 0.5
//	sbalance -workers 3 -no-balance        # naive round-robin for contrast
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"streambalance/internal/core"
	"streambalance/internal/runtime"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sbalance:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("sbalance", flag.ContinueOnError)
	workers := fs.Int("workers", 3, "number of parallel worker PEs")
	tuples := fs.Uint64("tuples", 100_000, "tuples to stream")
	payload := fs.Int("payload", 256, "payload bytes per tuple")
	baseDelay := fs.Duration("base-delay", 100*time.Microsecond, "per-tuple processing delay of an unloaded worker")
	slowWorker := fs.Int("slow-worker", 0, "index of the worker carrying extra load (-1 for none)")
	slowDelay := fs.Duration("slow-delay", 2*time.Millisecond, "per-tuple delay of the loaded worker")
	removeAt := fs.Float64("remove-at", 0.5, "fraction of the stream after which the extra load is removed (>=1 keeps it)")
	interval := fs.Duration("interval", 100*time.Millisecond, "controller sampling interval")
	noBalance := fs.Bool("no-balance", false, "disable balancing (plain round-robin)")
	socketBuf := fs.Int("sockbuf", 8<<10, "kernel socket buffer bytes per connection")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 1 {
		return fmt.Errorf("need at least one worker, got %d", *workers)
	}
	if *slowWorker >= *workers {
		return fmt.Errorf("slow worker %d out of range with %d workers", *slowWorker, *workers)
	}

	operators := make([]runtime.Operator, *workers)
	var slow *runtime.DelayOperator
	for i := range operators {
		op := runtime.NewDelayOperator(*baseDelay)
		if i == *slowWorker {
			op.SetDelay(*slowDelay)
			slow = op
		}
		operators[i] = op
	}

	var balancer *core.Balancer
	if !*noBalance {
		var err error
		balancer, err = core.NewBalancer(core.Config{
			Connections:  *workers,
			DecayEnabled: true,
		})
		if err != nil {
			return err
		}
	}

	removeSeq := uint64(float64(*tuples) * *removeAt)
	body := make([]byte, *payload)
	source := func(seq uint64) ([]byte, bool) {
		if slow != nil && seq == removeSeq {
			slow.SetDelay(*baseDelay)
		}
		if seq >= *tuples {
			return nil, false
		}
		return body, true
	}

	fmt.Fprintf(w, "streaming %d tuples over %d workers (balancing: %v)\n",
		*tuples, *workers, !*noBalance)
	fmt.Fprintf(w, "%-10s %-24s %s\n", "t", "blocking rates", "weights")
	region, err := runtime.NewRegion(runtime.RegionConfig{
		Operators:         operators,
		Source:            source,
		Balancer:          balancer,
		SampleInterval:    *interval,
		SocketBufferBytes: *socketBuf,
		OnSample: func(now time.Duration, rates []float64, weights []int) {
			// Print at most ~4 lines per second regardless of interval.
			window := 250 * time.Millisecond
			if now/window != (now-*interval)/window {
				fmt.Fprintf(w, "%-10v %-24.2f %v\n", now.Truncate(time.Millisecond), rates, weights)
			}
		},
	})
	if err != nil {
		return err
	}
	res, err := region.Run()
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "\nreleased %d tuples in %v (%.0f tuples/s), order preserved: %v\n",
		res.Released, res.Elapsed.Truncate(time.Millisecond),
		float64(res.Released)/res.Elapsed.Seconds(), res.OrderPreserved)
	fmt.Fprintf(w, "tuples per connection:        %v\n", res.PerConnSent)
	fmt.Fprintf(w, "blocking time per connection: %v\n", res.TotalBlocking)
	if balancer != nil {
		fmt.Fprintf(w, "\nlearned blocking-rate functions:\n%s", core.DumpFunctions(balancer, 8))
	}
	return nil
}
