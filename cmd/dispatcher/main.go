// Command dispatcher drains a queue of experiment specs — simulator
// scenarios, benchmark workloads, chaos soaks — through a pool of local
// worker processes, archiving every run under a results directory:
//
//	dispatcher -specs experiments/sweep-smoke.json -results results/sweep -workers 4
//
// The specs file is a JSON array (or single object) of internal/dispatch
// specs. Each run lands in results/<run-id>/ with spec.json, the
// schema-stable result.json, the worker's stdout/stderr logs and an
// environment fingerprint; results/manifest.json summarizes the whole queue.
// Workers that crash are retried up to -max-attempts; the exit code is
// non-zero when any run fails.
//
// The same binary is its own worker: the dispatcher re-executes itself with
// -worker to run one spec in an isolated process (-inprocess skips the
// subprocess for quick local sweeps). Archived runs are compared with
// cmd/benchguard, pairwise or against the checked-in BENCH_*.json baselines.
package main

import (
	"flag"
	"fmt"
	"os"

	"streambalance/internal/dispatch"
)

func main() {
	worker := flag.Bool("worker", false, "worker mode: execute one spec and archive its result")
	specPath := flag.String("spec", "", "worker mode: path to the spec to execute")
	outDir := flag.String("out", "", "worker mode: run directory to archive into")
	specsPath := flag.String("specs", "", "queue mode: JSON file of experiment specs (required)")
	resultsDir := flag.String("results", "results", "queue mode: archive root directory")
	workers := flag.Int("workers", 2, "queue mode: worker pool size")
	maxAttempts := flag.Int("max-attempts", 3, "queue mode: executions per run before a crashing worker fails it")
	inprocess := flag.Bool("inprocess", false, "queue mode: run specs in-process instead of spawning workers")
	flag.Parse()

	if *worker {
		if *specPath == "" || *outDir == "" {
			fmt.Fprintln(os.Stderr, "dispatcher: -worker requires -spec and -out")
			os.Exit(2)
		}
		if err := dispatch.RunWorker(*specPath, *outDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *specsPath == "" {
		fmt.Fprintln(os.Stderr, "dispatcher: -specs is required")
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*specsPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dispatcher: read specs: %v\n", err)
		os.Exit(2)
	}
	specs, err := dispatch.DecodeSpecs(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := dispatch.Config{
		Workers:     *workers,
		ResultsDir:  *resultsDir,
		MaxAttempts: *maxAttempts,
		OnTransition: func(tr dispatch.Transition) {
			fmt.Printf("dispatcher: %-28s %s -> %s (attempt %d)\n", tr.RunID, tr.From, tr.To, tr.Attempt)
		},
	}
	if !*inprocess {
		cfg.WorkerCommand = dispatch.SelfWorkerCommand
	}
	d, err := dispatch.New(cfg, specs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	entries, err := d.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("\n%-28s %-6s %-10s %-8s %s\n", "RUN", "KIND", "STATE", "ATTEMPTS", "ERROR")
	for _, e := range entries {
		fmt.Printf("%-28s %-6s %-10s %-8d %s\n", e.RunID, e.Kind, e.State, e.Attempts, e.Error)
	}
	if n := dispatch.Failed(entries); n > 0 {
		fmt.Fprintf(os.Stderr, "dispatcher: %d of %d runs failed\n", n, len(entries))
		os.Exit(1)
	}
	fmt.Printf("dispatcher: all %d runs completed; archive in %s\n", len(entries), *resultsDir)
}
