// Command benchjson converts `go test -bench` text output into a stable JSON
// document, so CI can archive one BENCH_<sha>.json per commit and a later
// job (or a human with jq) can diff benchmark metrics across commits without
// re-parsing the free-form text.
//
//	go test -bench=. -benchmem -benchtime=1x -run '^$' ./... | benchjson > BENCH_abc123.json
//
// Every metric on a benchmark line is kept, including the custom ones the
// figure reproductions report (blockrate, lb-norm-exec, tuples/s, ...), keyed
// by unit. The document carries schema_version (internal/schema.BenchVersion)
// so downstream readers — cmd/benchguard, the experiment dispatcher — can
// reject archives written by an incompatible future format instead of
// misreading them.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"streambalance/internal/schema"
)

// Result and Report are the shared archive document types: one benchmark
// line, and the whole run.
type (
	Result = schema.BenchResult
	Report = schema.BenchReport
)

// Parse consumes `go test -bench` output. Lines it does not recognize
// (PASS, ok, test logs) are skipped; malformed Benchmark lines are an error.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{SchemaVersion: schema.BenchVersion, Results: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// name iterations {value unit}... — metrics come in pairs.
		if len(fields) < 2 || len(fields)%2 != 0 {
			return nil, fmt.Errorf("benchjson: malformed benchmark line: %q", line)
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %w", line, err)
		}
		res := Result{
			Pkg:        pkg,
			Name:       fields[0],
			Iterations: iters,
			Metrics:    make(map[string]float64, (len(fields)-2)/2),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad metric value in %q: %w", line, err)
			}
			res.Metrics[fields[i+1]] = v
		}
		rep.Results = append(rep.Results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

func main() {
	rep, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
