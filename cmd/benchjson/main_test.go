package main

import (
	"encoding/json"
	"strings"
	"testing"

	"streambalance/internal/schema"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: streambalance
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig02BlockingRate            	       1	   4230463 ns/op	         0.9750 blockrate	  918464 B/op	   24363 allocs/op
BenchmarkFig09Static                  	       1	 346121859 ns/op	         1.254 lb-norm-exec	         5.304 rr-norm-exec	97114464 B/op	 3134769 allocs/op
PASS
ok  	streambalance	4.000s
PASS
ok  	streambalance/cmd/sbench	0.004s
pkg: streambalance/internal/core
BenchmarkSolveFox16                   	     100	    266322 ns/op	   48792 B/op	    2005 allocs/op
PASS
`

func TestParseBenchOutput(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != schema.BenchVersion {
		t.Fatalf("schema_version = %q, want %q", rep.SchemaVersion, schema.BenchVersion)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Fatalf("context not captured: goos=%q goarch=%q", rep.Goos, rep.Goarch)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu not captured: %q", rep.CPU)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rep.Results))
	}

	fig2 := rep.Results[0]
	if fig2.Name != "BenchmarkFig02BlockingRate" || fig2.Pkg != "streambalance" {
		t.Fatalf("first result mislabeled: %+v", fig2)
	}
	if fig2.Iterations != 1 {
		t.Fatalf("iterations = %d, want 1", fig2.Iterations)
	}
	if got := fig2.Metrics["blockrate"]; got != 0.9750 {
		t.Fatalf("custom metric lost: blockrate=%v", got)
	}
	if got := fig2.Metrics["ns/op"]; got != 4230463 {
		t.Fatalf("ns/op=%v", got)
	}

	fig9 := rep.Results[1]
	if len(fig9.Metrics) != 5 {
		t.Fatalf("Fig09 metrics = %v, want 5 entries", fig9.Metrics)
	}

	fox := rep.Results[2]
	if fox.Pkg != "streambalance/internal/core" {
		t.Fatalf("pkg context not switched: %q", fox.Pkg)
	}
	if fox.Iterations != 100 {
		t.Fatalf("iterations = %d, want 100", fox.Iterations)
	}
}

func TestParseRejectsMalformedLines(t *testing.T) {
	cases := []string{
		"BenchmarkOdd 1 42\n",          // dangling value without a unit
		"BenchmarkNoIters notanint\n",  // iteration count not an int
		"BenchmarkBadVal 1 xx ns/op\n", // metric value not a float
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("malformed input accepted: %q", in)
		}
	}
}

func TestParseEmptyInput(t *testing.T) {
	rep, err := Parse(strings.NewReader("PASS\nok \tx\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("results = %v, want none", rep.Results)
	}
}

// TestEmittedDocumentRoundTripsThroughSchemaDecoder pins the contract with
// downstream readers: what benchjson emits, schema.DecodeBenchReport accepts
// today and rejects once the major moves.
func TestEmittedDocumentRoundTripsThroughSchemaDecoder(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	back, err := schema.DecodeBenchReport(data)
	if err != nil {
		t.Fatalf("emitted document rejected by schema decoder: %v", err)
	}
	if len(back.Results) != len(rep.Results) {
		t.Fatalf("round trip lost results: %d != %d", len(back.Results), len(rep.Results))
	}

	var future Report
	if err := json.Unmarshal(data, &future); err != nil {
		t.Fatal(err)
	}
	future.SchemaVersion = "2.0"
	data, err = json.Marshal(future)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := schema.DecodeBenchReport(data); err == nil {
		t.Fatal("future-major document accepted")
	}
}
