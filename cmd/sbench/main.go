// Command sbench regenerates the paper's tables and figures on the
// discrete-event simulator.
//
// Usage:
//
//	sbench -fig list            # show available experiments
//	sbench -fig 9               # Figure 9, static + dynamic
//	sbench -fig all             # everything (well under a minute)
//	sbench -fig 8top -duration 400s
//	sbench -fig 12 -quick       # reduced scale
//	sbench -fig all -csv out/   # also write plottable CSV per figure
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"streambalance/internal/harness"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sbench:", err)
		os.Exit(1)
	}
}

// csvSink writes per-figure CSV files into a directory; a nil sink disables
// export.
type csvSink struct {
	dir string
}

// write saves one report under name.csv.
func (s *csvSink) write(name string, report interface{ WriteCSV(io.Writer) error }) error {
	if s == nil {
		return nil
	}
	path := filepath.Join(s.dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	defer f.Close()
	if err := report.WriteCSV(f); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return f.Close()
}

// experiment maps a figure id to its runner.
type experiment struct {
	id      string
	summary string
	run     func(w io.Writer, csv *csvSink, duration time.Duration, quick bool) error
}

func experiments() []experiment {
	sweep := func(name string, full func(harness.SweepOptions) (harness.SweepReport, error), quickSizes []int, quickTuples uint64) func(io.Writer, *csvSink, time.Duration, bool) error {
		return func(w io.Writer, csv *csvSink, _ time.Duration, quick bool) error {
			opts := harness.SweepOptions{}
			if quick {
				opts.Sizes = quickSizes
				opts.Tuples = quickTuples
			}
			report, err := full(opts)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprint(w, report.String()); err != nil {
				return err
			}
			return csv.write(name, report)
		}
	}
	indepth := func(name string, full func(time.Duration) (harness.InDepthReport, error), quickDur time.Duration) func(io.Writer, *csvSink, time.Duration, bool) error {
		return func(w io.Writer, csv *csvSink, duration time.Duration, quick bool) error {
			if quick && duration == 0 {
				duration = quickDur
			}
			report, err := full(duration)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprint(w, report.String()); err != nil {
				return err
			}
			return csv.write(name, report)
		}
	}
	return []experiment{
		{"2", "cumulative blocking time and rate (Figure 2)", func(w io.Writer, csv *csvSink, duration time.Duration, quick bool) error {
			if quick && duration == 0 {
				duration = 30 * time.Second
			}
			report, err := harness.Fig2Blocking(duration)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprint(w, report.String()); err != nil {
				return err
			}
			return csv.write("fig02", report)
		}},
		{"rerouting", "transport-level re-routing (Section 4.4)", func(w io.Writer, csv *csvSink, duration time.Duration, quick bool) error {
			if quick && duration == 0 {
				duration = 150 * time.Second
			}
			report, err := harness.Sec44Reroute(duration)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprint(w, report.String()); err != nil {
				return err
			}
			return csv.write("sec44", report)
		}},
		{"5", "blocking rates at fixed splits (Figure 5)", func(w io.Writer, csv *csvSink, duration time.Duration, quick bool) error {
			if quick && duration == 0 {
				duration = 45 * time.Second
			}
			report, err := harness.Fig5FixedSplits(duration)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprint(w, report.String()); err != nil {
				return err
			}
			return csv.write("fig05", report)
		}},
		{"8top", "in-depth, 3 PEs, one 100x removed (Figure 8 top)", indepth("fig08top", harness.Fig8Top, 120*time.Second)},
		{"8bottom", "in-depth, 3 equal PEs (Figure 8 bottom)", indepth("fig08bottom", harness.Fig8Bottom, 120*time.Second)},
		{"9", "2-16 PEs, base 1k, half 10x (Figure 9)", func(w io.Writer, csv *csvSink, _ time.Duration, quick bool) error {
			opts := harness.SweepOptions{}
			if quick {
				opts = harness.SweepOptions{Sizes: []int{2, 8}, Tuples: 40_000}
			}
			static, err := harness.Fig9Static(opts)
			if err != nil {
				return err
			}
			dynamic, err := harness.Fig9Dynamic(opts)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprint(w, static.String(), dynamic.String()); err != nil {
				return err
			}
			if err := csv.write("fig09static", static); err != nil {
				return err
			}
			return csv.write("fig09dynamic", dynamic)
		}},
		{"10", "2-16 PEs, base 10k, half 100x (Figure 10)", func(w io.Writer, csv *csvSink, _ time.Duration, quick bool) error {
			opts := harness.SweepOptions{}
			if quick {
				opts = harness.SweepOptions{Sizes: []int{2, 8}, Tuples: 30_000}
			}
			static, err := harness.Fig10Static(opts)
			if err != nil {
				return err
			}
			dynamic, err := harness.Fig10Dynamic(opts)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprint(w, static.String(), dynamic.String()); err != nil {
				return err
			}
			if err := csv.write("fig10static", static); err != nil {
				return err
			}
			return csv.write("fig10dynamic", dynamic)
		}},
		{"11top", "in-depth, fast vs slow host (Figure 11 top)", indepth("fig11top", harness.Fig11Top, 90*time.Second)},
		{"11bottom", "placements across fast+slow hosts (Figure 11 bottom)", sweep("fig11bottom", harness.Fig11Bottom, []int{2, 8, 24}, 16_000)},
		{"12", "64 PEs, three load classes, clustering (Figure 12)", indepth("fig12", harness.Fig12, 120*time.Second)},
		{"13", "clustering sweep, base 60k, half 100x (Figure 13)", sweep("fig13", harness.Fig13, []int{8, 32}, 60_000)},
		{"bursty", "extension: bursty source, LB under alternating load (Section 5.4)", func(w io.Writer, csv *csvSink, duration time.Duration, quick bool) error {
			if quick && duration == 0 {
				duration = 120 * time.Second
			}
			report, err := harness.ExtBursty(duration)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprint(w, report.String()); err != nil {
				return err
			}
			return csv.write("ext_bursty", report)
		}},
		{"ablations", "design-choice ablations: decay, zero trust, clustering, solver", func(w io.Writer, csv *csvSink, duration time.Duration, quick bool) error {
			if quick && duration == 0 {
				duration = 120 * time.Second
			}
			decay, err := harness.AblationDecay(duration)
			if err != nil {
				return err
			}
			trust, err := harness.AblationZeroTrust(duration)
			if err != nil {
				return err
			}
			var clusterTuples uint64
			if quick {
				clusterTuples = 40_000
			}
			clustering, err := harness.AblationClustering(clusterTuples)
			if err != nil {
				return err
			}
			solver, err := harness.AblationSolver()
			if err != nil {
				return err
			}
			if _, err := fmt.Fprint(w, decay.String(), trust.String(), clustering.String(), harness.RenderSolverRows(solver)); err != nil {
				return err
			}
			if err := csv.write("ablation_decay", decay); err != nil {
				return err
			}
			if err := csv.write("ablation_zerotrust", trust); err != nil {
				return err
			}
			return csv.write("ablation_clustering", clustering)
		}},
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("sbench", flag.ContinueOnError)
	fig := fs.String("fig", "list", "experiment id (list, all, 2, 5, 8top, 8bottom, 9, 10, 11top, 11bottom, 12, 13, rerouting, bursty, ablations)")
	duration := fs.Duration("duration", 0, "override run duration for in-depth experiments (0 = figure default)")
	quick := fs.Bool("quick", false, "reduced scale for a fast smoke run")
	csvDir := fs.String("csv", "", "directory to also write per-figure CSV data into")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var sink *csvSink
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("create csv dir: %w", err)
		}
		sink = &csvSink{dir: *csvDir}
	}
	exps := experiments()
	switch *fig {
	case "list":
		fmt.Fprintln(w, "available experiments:")
		for _, e := range exps {
			fmt.Fprintf(w, "  %-10s %s\n", e.id, e.summary)
		}
		return nil
	case "all":
		for _, e := range exps {
			start := time.Now()
			if err := e.run(w, sink, *duration, *quick); err != nil {
				return fmt.Errorf("fig %s: %w", e.id, err)
			}
			fmt.Fprintf(w, "[fig %s completed in %v]\n\n", e.id, time.Since(start).Truncate(time.Millisecond))
		}
		return nil
	default:
		for _, e := range exps {
			if e.id == *fig {
				return e.run(w, sink, *duration, *quick)
			}
		}
		return fmt.Errorf("unknown experiment %q (try -fig list)", *fig)
	}
}
