package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "list"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"8top", "9", "12", "rerouting", "ablations"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list output missing %q:\n%s", id, out)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "nope"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunFigureWithCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "2", "-quick", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Fatalf("missing figure output:\n%s", buf.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig02.csv"))
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if !strings.HasPrefix(string(data), "t_seconds,cumulative_s,rate") {
		t.Fatalf("csv header wrong: %q", string(data[:40]))
	}
}

func TestRunSweepQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "11bottom", "-quick"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"All-Fast", "All-Slow", "Even-RR", "Even-LB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sweep output missing %q", want)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
