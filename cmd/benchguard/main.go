// Command benchguard compares two benchmark archives and fails when a watched
// metric regresses past a tolerance — the teeth behind the CI bench-regression
// job, which until now only archived numbers without acting on them.
//
//	benchguard -baseline BENCH_old.json -current BENCH_new.json \
//	    -bench 'MergerIngest/conns=64/recv=64' -metric tuples/s -max-drop 0.10
//
// Either side may be a raw benchjson document (BENCH_*.json) or an archived
// dispatcher run (results/<run-id>/result.json), whose bench rows are
// extracted — so any two archived runs, or a run and the checked-in baseline,
// compare end to end.
//
// Every benchmark in the baseline whose name matches -bench and carries the
// watched metric is checked against the same benchmark in the current report.
// For higher-is-better metrics (the default: throughput) a drop beyond
// -max-drop fails; pass -lower-better for ns/op-style metrics, where the same
// tolerance bounds growth instead. Degenerate data fails loudly instead of
// passing silently: a matched benchmark missing from either side, and zero or
// NaN metric values on either side, are violations — a vanished benchmark or
// a zeroed tuples/s row is how regressions go unnoticed. Names are compared
// with any trailing -GOMAXPROCS suffix stripped, so archives from machines
// with different core counts diff cleanly.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"strings"

	"streambalance/internal/dispatch"
	"streambalance/internal/schema"
)

// Result and Report are the shared archive document types.
type (
	Result = schema.BenchResult
	Report = schema.BenchReport
)

// procsSuffix is the -GOMAXPROCS tail go test appends to benchmark names on
// multi-core machines (absent when GOMAXPROCS is 1).
var procsSuffix = regexp.MustCompile(`-\d+$`)

func normalize(name string) string {
	return procsSuffix.ReplaceAllString(name, "")
}

// Reason classifies why a comparison failed.
type Reason string

const (
	// ReasonRegressed: both sides present and sane; the metric moved past
	// the tolerance.
	ReasonRegressed Reason = "regressed"
	// ReasonMissingCurrent: the baseline benchmark vanished from the
	// current report.
	ReasonMissingCurrent Reason = "missing-from-current"
	// ReasonMissingBaseline: the current report carries a matching
	// benchmark the baseline has never seen — unguarded, so flagged.
	ReasonMissingBaseline Reason = "missing-from-baseline"
	// ReasonBadBaseline: the baseline value is zero or NaN; a tolerance
	// against it is meaningless.
	ReasonBadBaseline Reason = "degenerate-baseline-value"
	// ReasonBadCurrent: the current value is zero or NaN.
	ReasonBadCurrent Reason = "degenerate-current-value"
)

// Violation is one failed comparison.
type Violation struct {
	Name     string
	Metric   string
	Reason   Reason
	Baseline float64
	Current  float64
	// Missing mirrors Reason == ReasonMissingCurrent, kept for readability
	// at call sites.
	Missing bool
}

func (v Violation) String() string {
	switch v.Reason {
	case ReasonMissingCurrent:
		return fmt.Sprintf("%s: missing from current report (baseline %s = %g)", v.Name, v.Metric, v.Baseline)
	case ReasonMissingBaseline:
		return fmt.Sprintf("%s: present only in current report (%s = %g, nothing to compare against)", v.Name, v.Metric, v.Current)
	case ReasonBadBaseline:
		return fmt.Sprintf("%s: baseline %s = %g is not comparable (zero or NaN row)", v.Name, v.Metric, v.Baseline)
	case ReasonBadCurrent:
		return fmt.Sprintf("%s: current %s = %g is not comparable (zero or NaN row)", v.Name, v.Metric, v.Current)
	}
	change := (v.Current - v.Baseline) / v.Baseline * 100
	return fmt.Sprintf("%s: %s %g -> %g (%+.1f%%)", v.Name, v.Metric, v.Baseline, v.Current, change)
}

// degenerate reports a value no tolerance can be computed against.
func degenerate(v float64) bool { return v == 0 || math.IsNaN(v) }

// Compare checks every baseline benchmark matching bench (and carrying
// metric) against the current report, and flags current-report benchmarks
// the baseline lacks. maxDrop is the tolerated fractional regression: loss
// for higher-is-better metrics, growth for lower-is-better. checked counts
// comparisons that ran; zero means the pattern matched nothing with the
// metric on either side, which callers should treat as a configuration
// error.
func Compare(baseline, current *Report, bench *regexp.Regexp, metric string, maxDrop float64, lowerBetter bool) (violations []Violation, checked int) {
	cur := make(map[string]Result, len(current.Results))
	for _, r := range current.Results {
		cur[r.Pkg+"\x00"+normalize(r.Name)] = r
	}
	seen := make(map[string]bool)
	for _, b := range baseline.Results {
		name := normalize(b.Name)
		if !bench.MatchString(name) {
			continue
		}
		base, ok := b.Metrics[metric]
		if !ok {
			continue
		}
		key := b.Pkg + "\x00" + name
		seen[key] = true
		checked++
		if degenerate(base) {
			violations = append(violations, Violation{Name: name, Metric: metric, Reason: ReasonBadBaseline, Baseline: base})
			continue
		}
		c, ok := cur[key]
		if !ok {
			violations = append(violations, Violation{Name: name, Metric: metric, Reason: ReasonMissingCurrent, Baseline: base, Missing: true})
			continue
		}
		got, ok := c.Metrics[metric]
		if !ok {
			violations = append(violations, Violation{Name: name, Metric: metric, Reason: ReasonMissingCurrent, Baseline: base, Missing: true})
			continue
		}
		if degenerate(got) {
			violations = append(violations, Violation{Name: name, Metric: metric, Reason: ReasonBadCurrent, Baseline: base, Current: got})
			continue
		}
		bad := got < base*(1-maxDrop)
		if lowerBetter {
			bad = got > base*(1+maxDrop)
		}
		if bad {
			violations = append(violations, Violation{Name: name, Metric: metric, Reason: ReasonRegressed, Baseline: base, Current: got})
		}
	}
	// Benchmarks present only in the current report: matched by the pattern,
	// carrying the metric, but never guarded by the baseline.
	for _, c := range current.Results {
		name := normalize(c.Name)
		if !bench.MatchString(name) {
			continue
		}
		got, ok := c.Metrics[metric]
		if !ok {
			continue
		}
		key := c.Pkg + "\x00" + name
		if seen[key] {
			continue
		}
		checked++
		violations = append(violations, Violation{Name: name, Metric: metric, Reason: ReasonMissingBaseline, Current: got})
	}
	return violations, checked
}

// load reads one side of the comparison — a raw benchjson document or an
// archived dispatcher result — labeling errors with the side they came from
// so a missing baseline file reads as exactly that.
func load(role, path string) (*Report, error) {
	rep, err := dispatch.LoadBenchReport(path)
	if err != nil {
		return nil, fmt.Errorf("benchguard: load %s report: %w", role, err)
	}
	return rep, nil
}

func main() {
	baselinePath := flag.String("baseline", "", "benchjson archive or dispatcher result.json to compare against (required)")
	currentPath := flag.String("current", "", "benchjson archive or dispatcher result.json under test (required)")
	benchPat := flag.String("bench", ".", "regexp selecting benchmark names to guard")
	metric := flag.String("metric", "tuples/s", "metric key to compare")
	maxDrop := flag.Float64("max-drop", 0.10, "tolerated fractional regression (0.10 = 10%)")
	lowerBetter := flag.Bool("lower-better", false, "metric regresses by growing (ns/op, B/op)")
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline and -current are required")
		flag.Usage()
		os.Exit(2)
	}
	re, err := regexp.Compile(*benchPat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: bad -bench pattern: %v\n", err)
		os.Exit(2)
	}
	baseline, err := load("baseline", *baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	current, err := load("current", *currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	violations, checked := Compare(baseline, current, re, *metric, *maxDrop, *lowerBetter)
	if checked == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: no benchmark on either side matches %q with metric %q\n", *benchPat, *metric)
		os.Exit(2)
	}
	if len(violations) > 0 {
		var lines []string
		for _, v := range violations {
			lines = append(lines, "  "+v.String())
		}
		fmt.Fprintf(os.Stderr, "benchguard: %d of %d guarded benchmarks violated the %.0f%% gate:\n%s\n",
			len(violations), checked, *maxDrop*100, strings.Join(lines, "\n"))
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d benchmarks within %.0f%% of baseline (%s)\n", checked, *maxDrop*100, *metric)
}
