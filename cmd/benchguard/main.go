// Command benchguard compares two benchjson archives and fails when a watched
// metric regresses past a tolerance — the teeth behind the CI bench-regression
// job, which until now only archived numbers without acting on them.
//
//	benchguard -baseline BENCH_old.json -current BENCH_new.json \
//	    -bench 'MergerIngest/conns=64/recv=64' -metric tuples/s -max-drop 0.10
//
// Every benchmark in the baseline whose name matches -bench and carries the
// watched metric is checked against the same benchmark in the current report.
// For higher-is-better metrics (the default: throughput) a drop beyond
// -max-drop fails; pass -lower-better for ns/op-style metrics, where the same
// tolerance bounds growth instead. A matched benchmark missing from the
// current report fails too — a silently vanished benchmark is how regressions
// go unnoticed. Names are compared with any trailing -GOMAXPROCS suffix
// stripped, so archives from machines with different core counts diff cleanly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"
)

// Result and Report mirror cmd/benchjson's output document.
type Result struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// procsSuffix is the -GOMAXPROCS tail go test appends to benchmark names on
// multi-core machines (absent when GOMAXPROCS is 1).
var procsSuffix = regexp.MustCompile(`-\d+$`)

func normalize(name string) string {
	return procsSuffix.ReplaceAllString(name, "")
}

// Violation is one failed comparison.
type Violation struct {
	Name     string
	Metric   string
	Baseline float64
	Current  float64 // 0 and Missing=true when absent
	Missing  bool
}

func (v Violation) String() string {
	if v.Missing {
		return fmt.Sprintf("%s: missing from current report (baseline %s = %g)", v.Name, v.Metric, v.Baseline)
	}
	change := (v.Current - v.Baseline) / v.Baseline * 100
	return fmt.Sprintf("%s: %s %g -> %g (%+.1f%%)", v.Name, v.Metric, v.Baseline, v.Current, change)
}

// Compare checks every baseline benchmark matching bench (and carrying
// metric) against the current report. maxDrop is the tolerated fractional
// regression: loss for higher-is-better metrics, growth for lower-is-better.
// checked counts comparisons that ran; zero means the pattern matched nothing
// with the metric, which callers should treat as a configuration error.
func Compare(baseline, current *Report, bench *regexp.Regexp, metric string, maxDrop float64, lowerBetter bool) (violations []Violation, checked int) {
	cur := make(map[string]Result, len(current.Results))
	for _, r := range current.Results {
		cur[r.Pkg+"\x00"+normalize(r.Name)] = r
	}
	for _, b := range baseline.Results {
		name := normalize(b.Name)
		if !bench.MatchString(name) {
			continue
		}
		base, ok := b.Metrics[metric]
		if !ok || base == 0 {
			continue
		}
		checked++
		c, ok := cur[b.Pkg+"\x00"+name]
		if !ok {
			violations = append(violations, Violation{Name: name, Metric: metric, Baseline: base, Missing: true})
			continue
		}
		got, ok := c.Metrics[metric]
		if !ok {
			violations = append(violations, Violation{Name: name, Metric: metric, Baseline: base, Missing: true})
			continue
		}
		bad := got < base*(1-maxDrop)
		if lowerBetter {
			bad = got > base*(1+maxDrop)
		}
		if bad {
			violations = append(violations, Violation{Name: name, Metric: metric, Baseline: base, Current: got})
		}
	}
	return violations, checked
}

func load(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("benchguard: parse %s: %w", path, err)
	}
	return &rep, nil
}

func main() {
	baselinePath := flag.String("baseline", "", "benchjson archive to compare against (required)")
	currentPath := flag.String("current", "", "benchjson archive under test (required)")
	benchPat := flag.String("bench", ".", "regexp selecting benchmark names to guard")
	metric := flag.String("metric", "tuples/s", "metric key to compare")
	maxDrop := flag.Float64("max-drop", 0.10, "tolerated fractional regression (0.10 = 10%)")
	lowerBetter := flag.Bool("lower-better", false, "metric regresses by growing (ns/op, B/op)")
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline and -current are required")
		flag.Usage()
		os.Exit(2)
	}
	re, err := regexp.Compile(*benchPat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: bad -bench pattern: %v\n", err)
		os.Exit(2)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	violations, checked := Compare(baseline, current, re, *metric, *maxDrop, *lowerBetter)
	if checked == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: no baseline benchmark matches %q with metric %q\n", *benchPat, *metric)
		os.Exit(2)
	}
	if len(violations) > 0 {
		var lines []string
		for _, v := range violations {
			lines = append(lines, "  "+v.String())
		}
		fmt.Fprintf(os.Stderr, "benchguard: %d of %d guarded benchmarks regressed beyond %.0f%%:\n%s\n",
			len(violations), checked, *maxDrop*100, strings.Join(lines, "\n"))
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d benchmarks within %.0f%% of baseline (%s)\n", checked, *maxDrop*100, *metric)
}
