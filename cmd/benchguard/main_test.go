package main

import (
	"math"
	"path/filepath"
	"regexp"
	"testing"

	"streambalance/internal/dispatch"
)

func report(results ...Result) *Report { return &Report{Results: results} }

func res(name string, metrics map[string]float64) Result {
	return Result{Pkg: "p", Name: name, Iterations: 1, Metrics: metrics}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := report(res("BenchmarkMergerIngest/conns=64/recv=64", map[string]float64{"tuples/s": 1000000}))
	cur := report(res("BenchmarkMergerIngest/conns=64/recv=64", map[string]float64{"tuples/s": 950000}))
	v, checked := Compare(base, cur, regexp.MustCompile(`conns=64`), "tuples/s", 0.10, false)
	if len(v) != 0 || checked != 1 {
		t.Fatalf("got %d violations, %d checked; want 0 and 1: %v", len(v), checked, v)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	base := report(res("BenchmarkMergerIngest/conns=64/recv=64", map[string]float64{"tuples/s": 1000000}))
	cur := report(res("BenchmarkMergerIngest/conns=64/recv=64", map[string]float64{"tuples/s": 899999}))
	v, checked := Compare(base, cur, regexp.MustCompile(`conns=64`), "tuples/s", 0.10, false)
	if len(v) != 1 || checked != 1 {
		t.Fatalf("got %d violations, %d checked; want 1 and 1", len(v), checked)
	}
	if v[0].Missing {
		t.Fatal("regression misreported as missing")
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	base := report(res("BenchmarkX", map[string]float64{"tuples/s": 1000}))
	cur := report(res("BenchmarkX", map[string]float64{"tuples/s": 5000}))
	if v, _ := Compare(base, cur, regexp.MustCompile(`.`), "tuples/s", 0.10, false); len(v) != 0 {
		t.Fatalf("improvement flagged: %v", v)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := report(res("BenchmarkGone", map[string]float64{"tuples/s": 1000}))
	cur := report()
	v, checked := Compare(base, cur, regexp.MustCompile(`.`), "tuples/s", 0.10, false)
	if len(v) != 1 || !v[0].Missing || checked != 1 {
		t.Fatalf("missing benchmark not flagged: %v (checked %d)", v, checked)
	}
}

func TestCompareLowerBetter(t *testing.T) {
	base := report(res("BenchmarkX", map[string]float64{"ns/op": 100}))
	grew := report(res("BenchmarkX", map[string]float64{"ns/op": 120}))
	shrank := report(res("BenchmarkX", map[string]float64{"ns/op": 50}))
	if v, _ := Compare(base, grew, regexp.MustCompile(`.`), "ns/op", 0.10, true); len(v) != 1 {
		t.Fatalf("ns/op growth not flagged: %v", v)
	}
	if v, _ := Compare(base, shrank, regexp.MustCompile(`.`), "ns/op", 0.10, true); len(v) != 0 {
		t.Fatalf("ns/op improvement flagged: %v", v)
	}
}

func TestCompareStripsProcsSuffix(t *testing.T) {
	// Baseline from a 1-core box (no suffix), current from a 4-core CI
	// runner (-4 suffix): the names must still pair up.
	base := report(res("BenchmarkMergerIngest/conns=64/recv=64", map[string]float64{"tuples/s": 1000}))
	cur := report(res("BenchmarkMergerIngest/conns=64/recv=64-4", map[string]float64{"tuples/s": 990}))
	v, checked := Compare(base, cur, regexp.MustCompile(`conns=64`), "tuples/s", 0.10, false)
	if len(v) != 0 || checked != 1 {
		t.Fatalf("suffix mismatch broke pairing: %v (checked %d)", v, checked)
	}
}

func TestCompareNoMatchReportsZeroChecked(t *testing.T) {
	base := report(res("BenchmarkX", map[string]float64{"tuples/s": 1000}))
	if _, checked := Compare(base, base, regexp.MustCompile(`Nope`), "tuples/s", 0.10, false); checked != 0 {
		t.Fatalf("checked = %d, want 0", checked)
	}
}

// TestCompareEdgeCases table-drives the degenerate-data paths: zero and NaN
// rows on either side, and benchmarks present in only one report — each must
// surface as a distinctly classified violation rather than a silent pass.
func TestCompareEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name        string
		base, cur   *Report
		wantReason  Reason
		wantChecked int
	}{
		{
			name:        "zero baseline tuples/s",
			base:        report(res("BenchmarkZeroed", map[string]float64{"tuples/s": 0})),
			cur:         report(res("BenchmarkZeroed", map[string]float64{"tuples/s": 1000})),
			wantReason:  ReasonBadBaseline,
			wantChecked: 1,
		},
		{
			name:        "NaN baseline tuples/s",
			base:        report(res("BenchmarkNaN", map[string]float64{"tuples/s": math.NaN()})),
			cur:         report(res("BenchmarkNaN", map[string]float64{"tuples/s": 1000})),
			wantReason:  ReasonBadBaseline,
			wantChecked: 1,
		},
		{
			name:        "zero current tuples/s",
			base:        report(res("BenchmarkDied", map[string]float64{"tuples/s": 1000})),
			cur:         report(res("BenchmarkDied", map[string]float64{"tuples/s": 0})),
			wantReason:  ReasonBadCurrent,
			wantChecked: 1,
		},
		{
			name:        "NaN current tuples/s",
			base:        report(res("BenchmarkDied", map[string]float64{"tuples/s": 1000})),
			cur:         report(res("BenchmarkDied", map[string]float64{"tuples/s": math.NaN()})),
			wantReason:  ReasonBadCurrent,
			wantChecked: 1,
		},
		{
			name:        "baseline-only benchmark",
			base:        report(res("BenchmarkGone", map[string]float64{"tuples/s": 1000})),
			cur:         report(),
			wantReason:  ReasonMissingCurrent,
			wantChecked: 1,
		},
		{
			name:        "current-only benchmark",
			base:        report(),
			cur:         report(res("BenchmarkNew", map[string]float64{"tuples/s": 1000})),
			wantReason:  ReasonMissingBaseline,
			wantChecked: 1,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			v, checked := Compare(tc.base, tc.cur, regexp.MustCompile(`.`), "tuples/s", 0.10, false)
			if checked != tc.wantChecked {
				t.Fatalf("checked = %d, want %d (violations %v)", checked, tc.wantChecked, v)
			}
			if len(v) != 1 {
				t.Fatalf("violations = %v, want exactly 1", v)
			}
			if v[0].Reason != tc.wantReason {
				t.Fatalf("reason = %s, want %s", v[0].Reason, tc.wantReason)
			}
			if v[0].String() == "" {
				t.Fatal("violation renders empty")
			}
		})
	}
}

// TestCompareZeroBaselineRowDoesNotHideHealthyRows: a degenerate row must
// not short-circuit the rest of the report.
func TestCompareZeroBaselineRowDoesNotHideHealthyRows(t *testing.T) {
	base := report(
		res("BenchmarkZeroed", map[string]float64{"tuples/s": 0}),
		res("BenchmarkFine", map[string]float64{"tuples/s": 1000}),
	)
	cur := report(
		res("BenchmarkZeroed", map[string]float64{"tuples/s": 900}),
		res("BenchmarkFine", map[string]float64{"tuples/s": 980}),
	)
	v, checked := Compare(base, cur, regexp.MustCompile(`.`), "tuples/s", 0.10, false)
	if checked != 2 || len(v) != 1 || v[0].Reason != ReasonBadBaseline {
		t.Fatalf("checked=%d violations=%v; want the zero row flagged once and the healthy row passing", checked, v)
	}
}

// TestLoadMissingBaselineFileIsClearError pins the missing-file message: it
// must name the role and the path rather than surfacing a bare ENOENT.
func TestLoadMissingBaselineFileIsClearError(t *testing.T) {
	_, err := load("baseline", filepath.Join(t.TempDir(), "BENCH_nope.json"))
	if err == nil {
		t.Fatal("missing baseline loaded")
	}
	msg := err.Error()
	for _, want := range []string{"baseline", "BENCH_nope.json"} {
		if !regexp.MustCompile(regexp.QuoteMeta(want)).MatchString(msg) {
			t.Fatalf("error %q does not mention %q", msg, want)
		}
	}
}

// TestLoadArchivedDispatcherRun verifies the end-to-end contract with the
// experiment dispatcher: an archived result.json loads as a comparison side,
// and two archived runs of the same workload compare cleanly.
func TestLoadArchivedDispatcherRun(t *testing.T) {
	spec := dispatch.Spec{Kind: dispatch.KindBench, Name: "guard-e2e", Bench: &dispatch.BenchSpec{
		Benchmark: "sim-throughput", PEs: 2, Tuples: 2000,
	}}
	dirA := filepath.Join(t.TempDir(), "001-guard-e2e")
	dirB := filepath.Join(t.TempDir(), "002-guard-e2e")
	for _, dir := range []string{dirA, dirB} {
		res := dispatch.Execute(spec)
		if res.State != dispatch.StateCompleted {
			t.Fatalf("run failed: %s", res.Error)
		}
		if err := dispatch.WriteResult(dir, res); err != nil {
			t.Fatal(err)
		}
	}
	baseline, err := load("baseline", filepath.Join(dirA, "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	current, err := load("current", filepath.Join(dirB, "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Both runs executed the same workload on the same machine: an
	// effectively-unbounded tolerance checks pairing, not performance.
	v, checked := Compare(baseline, current, regexp.MustCompile(`SimulatorThroughput`), "tuples/s", 0.99, false)
	if checked != 1 || len(v) != 0 {
		t.Fatalf("archived-run comparison: checked=%d violations=%v", checked, v)
	}

	// A raw dispatcher result with no bench rows must be a clear error.
	empty := &dispatch.Result{SchemaVersion: dispatch.ResultVersion, RunID: "003-empty", Kind: dispatch.KindSim, State: dispatch.StateFailed}
	dirC := filepath.Join(t.TempDir(), "003-empty")
	if err := dispatch.WriteResult(dirC, empty); err != nil {
		t.Fatal(err)
	}
	if _, err := load("current", filepath.Join(dirC, "result.json")); err == nil {
		t.Fatal("benchless archived run loaded as a comparison side")
	}

	// Version skew must be rejected, not misread.
	future := dispatch.Execute(spec)
	future.SchemaVersion = "2.0"
	dirD := filepath.Join(t.TempDir(), "004-future")
	if err := dispatch.WriteResult(dirD, future); err != nil {
		t.Fatal(err)
	}
	if _, err := load("current", filepath.Join(dirD, "result.json")); err == nil {
		t.Fatal("future-major archived run loaded")
	}
}
