package main

import (
	"regexp"
	"testing"
)

func report(results ...Result) *Report { return &Report{Results: results} }

func res(name string, metrics map[string]float64) Result {
	return Result{Pkg: "p", Name: name, Iterations: 1, Metrics: metrics}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := report(res("BenchmarkMergerIngest/conns=64/recv=64", map[string]float64{"tuples/s": 1000000}))
	cur := report(res("BenchmarkMergerIngest/conns=64/recv=64", map[string]float64{"tuples/s": 950000}))
	v, checked := Compare(base, cur, regexp.MustCompile(`conns=64`), "tuples/s", 0.10, false)
	if len(v) != 0 || checked != 1 {
		t.Fatalf("got %d violations, %d checked; want 0 and 1: %v", len(v), checked, v)
	}
}

func TestCompareRegressionFails(t *testing.T) {
	base := report(res("BenchmarkMergerIngest/conns=64/recv=64", map[string]float64{"tuples/s": 1000000}))
	cur := report(res("BenchmarkMergerIngest/conns=64/recv=64", map[string]float64{"tuples/s": 899999}))
	v, checked := Compare(base, cur, regexp.MustCompile(`conns=64`), "tuples/s", 0.10, false)
	if len(v) != 1 || checked != 1 {
		t.Fatalf("got %d violations, %d checked; want 1 and 1", len(v), checked)
	}
	if v[0].Missing {
		t.Fatal("regression misreported as missing")
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	base := report(res("BenchmarkX", map[string]float64{"tuples/s": 1000}))
	cur := report(res("BenchmarkX", map[string]float64{"tuples/s": 5000}))
	if v, _ := Compare(base, cur, regexp.MustCompile(`.`), "tuples/s", 0.10, false); len(v) != 0 {
		t.Fatalf("improvement flagged: %v", v)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := report(res("BenchmarkGone", map[string]float64{"tuples/s": 1000}))
	cur := report()
	v, checked := Compare(base, cur, regexp.MustCompile(`.`), "tuples/s", 0.10, false)
	if len(v) != 1 || !v[0].Missing || checked != 1 {
		t.Fatalf("missing benchmark not flagged: %v (checked %d)", v, checked)
	}
}

func TestCompareLowerBetter(t *testing.T) {
	base := report(res("BenchmarkX", map[string]float64{"ns/op": 100}))
	grew := report(res("BenchmarkX", map[string]float64{"ns/op": 120}))
	shrank := report(res("BenchmarkX", map[string]float64{"ns/op": 50}))
	if v, _ := Compare(base, grew, regexp.MustCompile(`.`), "ns/op", 0.10, true); len(v) != 1 {
		t.Fatalf("ns/op growth not flagged: %v", v)
	}
	if v, _ := Compare(base, shrank, regexp.MustCompile(`.`), "ns/op", 0.10, true); len(v) != 0 {
		t.Fatalf("ns/op improvement flagged: %v", v)
	}
}

func TestCompareStripsProcsSuffix(t *testing.T) {
	// Baseline from a 1-core box (no suffix), current from a 4-core CI
	// runner (-4 suffix): the names must still pair up.
	base := report(res("BenchmarkMergerIngest/conns=64/recv=64", map[string]float64{"tuples/s": 1000}))
	cur := report(res("BenchmarkMergerIngest/conns=64/recv=64-4", map[string]float64{"tuples/s": 990}))
	v, checked := Compare(base, cur, regexp.MustCompile(`conns=64`), "tuples/s", 0.10, false)
	if len(v) != 0 || checked != 1 {
		t.Fatalf("suffix mismatch broke pairing: %v (checked %d)", v, checked)
	}
}

func TestCompareNoMatchReportsZeroChecked(t *testing.T) {
	base := report(res("BenchmarkX", map[string]float64{"tuples/s": 1000}))
	if _, checked := Compare(base, base, regexp.MustCompile(`Nope`), "tuples/s", 0.10, false); checked != 0 {
		t.Fatalf("checked = %d, want 0", checked)
	}
}
