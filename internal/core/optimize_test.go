package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// tableFunc is a monotone step function over a small domain, used to build
// deterministic optimizer instances.
type tableFunc []float64

func (f tableFunc) Eval(w int) float64 {
	if w < 0 {
		w = 0
	}
	if w >= len(f) {
		w = len(f) - 1
	}
	return f[w]
}

// randomMonotoneFunc generates a random non-decreasing table over 0..units.
func randomMonotoneFunc(rng *rand.Rand, units int) tableFunc {
	f := make(tableFunc, units+1)
	v := 0.0
	for w := 1; w <= units; w++ {
		if rng.Intn(3) > 0 {
			v += rng.Float64() * 5
		}
		f[w] = v
	}
	return f
}

func TestSolveFoxKnownInstances(t *testing.T) {
	tests := []struct {
		name    string
		p       Problem
		want    []int
		wantObj float64
	}{
		{
			name: "slow connection starved",
			p: Problem{
				// Connection 0 blocks immediately; connection 1 never blocks.
				Funcs: []Func{
					tableFunc{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
					tableFunc{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
				},
				Total: 10,
			},
			want:    []int{0, 10},
			wantObj: 0,
		},
		{
			name: "minimum forces allocation to slow connection",
			p: Problem{
				Funcs: []Func{
					tableFunc{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
					tableFunc{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
				},
				Total: 10,
				Min:   []int{3, 0},
			},
			want:    []int{3, 7},
			wantObj: 30,
		},
		{
			name: "maximum forces spill to slow connection",
			p: Problem{
				Funcs: []Func{
					tableFunc{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
					tableFunc{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
				},
				Total: 10,
				Max:   []int{10, 6},
			},
			want:    []int{4, 6},
			wantObj: 40,
		},
		{
			name: "equal capacity splits evenly",
			p: Problem{
				Funcs: []Func{
					tableFunc{0, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6},
					tableFunc{0, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6},
				},
				Total: 10,
			},
			wantObj: 1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sol, err := SolveFox(tt.p)
			if err != nil {
				t.Fatalf("SolveFox: %v", err)
			}
			if tt.want != nil {
				for j := range tt.want {
					if sol.Weights[j] != tt.want[j] {
						t.Fatalf("weights = %v, want %v", sol.Weights, tt.want)
					}
				}
			}
			if math.Abs(sol.Objective-tt.wantObj) > 1e-12 {
				t.Fatalf("objective = %v, want %v", sol.Objective, tt.wantObj)
			}
			sum := 0
			for _, w := range sol.Weights {
				sum += w
			}
			if sum != tt.p.Total {
				t.Fatalf("weights sum to %d, want %d", sum, tt.p.Total)
			}
		})
	}
}

func TestSolveErrors(t *testing.T) {
	base := Problem{Funcs: []Func{tableFunc{0, 1}, tableFunc{0, 1}}, Total: 2}
	tests := []struct {
		name   string
		mutate func(Problem) Problem
	}{
		{"no functions", func(p Problem) Problem { p.Funcs = nil; return p }},
		{"negative total", func(p Problem) Problem { p.Total = -1; return p }},
		{"min exceeds total", func(p Problem) Problem { p.Min = []int{2, 2}; return p }},
		{"max below total", func(p Problem) Problem { p.Max = []int{0, 1}; return p }},
		{"min above max", func(p Problem) Problem { p.Min = []int{2, 0}; p.Max = []int{1, 2}; return p }},
		{"wrong min length", func(p Problem) Problem { p.Min = []int{1}; return p }},
		{"wrong max length", func(p Problem) Problem { p.Max = []int{1, 1, 1}; return p }},
	}
	solvers := map[string]Solver{"fox": SolveFox, "bisect": SolveBisect, "brute": SolveBrute}
	for _, tt := range tests {
		for sname, solve := range solvers {
			t.Run(tt.name+"/"+sname, func(t *testing.T) {
				if _, err := solve(tt.mutate(base)); err == nil {
					t.Fatal("invalid problem accepted")
				}
			})
		}
	}
	// Bound infeasibility specifically matches ErrInfeasible.
	p := base
	p.Min = []int{2, 2}
	if _, err := SolveFox(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestFoxMatchesBruteForce(t *testing.T) {
	// Property: on random small monotone instances, Fox's greedy objective
	// equals the exhaustive optimum.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		units := 4 + rng.Intn(8)
		p := Problem{Total: units}
		for j := 0; j < n; j++ {
			p.Funcs = append(p.Funcs, randomMonotoneFunc(rng, units))
		}
		if rng.Intn(2) == 0 {
			p.Min = make([]int, n)
			p.Max = make([]int, n)
			for j := 0; j < n; j++ {
				p.Min[j] = rng.Intn(2)
				p.Max[j] = p.Min[j] + 1 + rng.Intn(units)
			}
		}
		fox, errFox := SolveFox(p)
		brute, errBrute := SolveBrute(p)
		if errFox != nil || errBrute != nil {
			// Both must agree the instance is infeasible.
			return (errFox == nil) == (errBrute == nil)
		}
		return math.Abs(fox.Objective-brute.Objective) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBisectMatchesFox(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		units := 10 + rng.Intn(60)
		p := Problem{Total: units}
		for j := 0; j < n; j++ {
			p.Funcs = append(p.Funcs, randomMonotoneFunc(rng, units))
		}
		if rng.Intn(2) == 0 {
			p.Min = make([]int, n)
			p.Max = make([]int, n)
			for j := 0; j < n; j++ {
				p.Min[j] = rng.Intn(3)
				p.Max[j] = p.Min[j] + 1 + rng.Intn(units)
			}
		}
		fox, errFox := SolveFox(p)
		bis, errBis := SolveBisect(p)
		if errFox != nil || errBis != nil {
			return (errFox == nil) == (errBis == nil)
		}
		if math.Abs(fox.Objective-bis.Objective) > 1e-9 {
			return false
		}
		sum := 0
		for _, w := range bis.Weights {
			sum += w
		}
		return sum == p.Total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestFoxRespectsBoundsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		units := 20 + rng.Intn(100)
		p := Problem{Total: units, Min: make([]int, n), Max: make([]int, n)}
		for j := 0; j < n; j++ {
			p.Funcs = append(p.Funcs, randomMonotoneFunc(rng, units))
			p.Min[j] = rng.Intn(3)
			p.Max[j] = p.Min[j] + rng.Intn(units)
		}
		sol, err := SolveFox(p)
		if err != nil {
			return true // infeasible bounds are allowed to error
		}
		sum := 0
		for j, w := range sol.Weights {
			if w < p.Min[j] || w > p.Max[j] {
				return false
			}
			sum += w
		}
		return sum == units
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSingleConnection(t *testing.T) {
	p := Problem{Funcs: []Func{tableFunc{0, 1, 2, 3, 4, 5}}, Total: 5}
	for name, solve := range map[string]Solver{"fox": SolveFox, "bisect": SolveBisect, "brute": SolveBrute} {
		sol, err := solve(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sol.Weights[0] != 5 || sol.Objective != 5 {
			t.Fatalf("%s: weights=%v obj=%v, want [5] 5", name, sol.Weights, sol.Objective)
		}
	}
}

func TestFoxWithRateFuncs(t *testing.T) {
	// End-to-end: rate functions learned from observations feed the solver.
	fast := NewRateFunc(100, 1)
	slow := NewRateFunc(100, 1)
	mustObserve(t, fast, 80, 0)
	mustObserve(t, slow, 30, 0)
	mustObserve(t, slow, 40, 30) // slow starts blocking past ~30

	sol, err := SolveFox(Problem{Funcs: []Func{fast, slow}, Total: 100})
	if err != nil {
		t.Fatalf("SolveFox: %v", err)
	}
	if sol.Weights[0] <= 60 || sol.Weights[1] > 40 {
		t.Fatalf("weights = %v, want ~[70 30] favouring the fast connection", sol.Weights)
	}
	if sol.Objective != 0 {
		t.Fatalf("objective = %v, want 0 (capacity suffices)", sol.Objective)
	}
}
