package core

import (
	"testing"
)

func TestAddConnectionExploresNewWorker(t *testing.T) {
	b, err := NewBalancer(Config{Connections: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Teach the balancer that both existing connections saturate at ~30%.
	driveBalancer(t, b, []int{300, 300}, 15)

	j := b.AddConnection()
	if j != 2 || b.Connections() != 3 {
		t.Fatalf("AddConnection -> %d, connections %d; want 2 and 3", j, b.Connections())
	}
	if w := b.Weights()[2]; w != 0 {
		t.Fatalf("new connection starts with weight %d, want 0", w)
	}
	weights, err := b.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	// The empty function predicts no blocking anywhere: the new worker must
	// receive a substantial share immediately.
	if weights[2] < 200 {
		t.Fatalf("weights after adding a worker: %v, want conn2 explored aggressively", weights)
	}
	sum := 0
	for _, w := range weights {
		sum += w
	}
	if sum != b.Units() {
		t.Fatalf("weights %v sum to %d", weights, sum)
	}
}

func TestRemoveConnectionRedistributes(t *testing.T) {
	b, err := NewBalancer(Config{Connections: 3})
	if err != nil {
		t.Fatal(err)
	}
	driveBalancer(t, b, []int{50, 600, 600}, 20)
	before := b.Weights()
	if err := b.RemoveConnection(0); err != nil {
		t.Fatal(err)
	}
	if b.Connections() != 2 {
		t.Fatalf("connections = %d, want 2", b.Connections())
	}
	after := b.Weights()
	sum := 0
	for _, w := range after {
		sum += w
	}
	if sum != b.Units() {
		t.Fatalf("weights %v sum to %d after removal", after, sum)
	}
	// The survivors keep at least their previous weights.
	if after[0] < before[1] || after[1] < before[2] {
		t.Fatalf("weights %v shrank below pre-removal %v", after, before)
	}
	// Learned functions shifted down with the indices: the old connection 1
	// function is now at index 0 and still predicts blocking above its
	// capacity.
	if b.Func(0).SampleCount() == 0 {
		t.Fatal("function data lost on removal")
	}
	// Rebalancing still works after the resize.
	if _, err := b.Rebalance(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveConnectionValidation(t *testing.T) {
	b, err := NewBalancer(Config{Connections: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RemoveConnection(5); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := b.RemoveConnection(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := b.RemoveConnection(0); err != nil {
		t.Fatal(err)
	}
	if err := b.RemoveConnection(0); err == nil {
		t.Fatal("removed the last connection")
	}
}

func TestRemoveConnectionWithZeroSurvivorWeights(t *testing.T) {
	b, err := NewBalancer(Config{Connections: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Force all weight onto connection 0, then remove it: the freed units
	// must split evenly across the zero-weight survivors.
	snap := b.Snapshot()
	snap.Weights = []int{1000, 0, 0}
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if err := b.RemoveConnection(0); err != nil {
		t.Fatal(err)
	}
	w := b.Weights()
	if w[0]+w[1] != 1000 || w[0] < 400 || w[1] < 400 {
		t.Fatalf("weights after removal = %v, want an even split of 1000", w)
	}
}

func TestElasticWithStaticBounds(t *testing.T) {
	b, err := NewBalancer(Config{
		Connections: 2,
		MinWeight:   []int{100, 100},
		MaxWeight:   []int{900, 900},
	})
	if err != nil {
		t.Fatal(err)
	}
	b.AddConnection()
	if _, err := b.Rebalance(); err != nil {
		t.Fatalf("rebalance after elastic add with bounds: %v", err)
	}
	if err := b.RemoveConnection(2); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Rebalance(); err != nil {
		t.Fatalf("rebalance after elastic remove with bounds: %v", err)
	}
}
