package core

import (
	"fmt"
	"sort"
)

// snapshot.go provides persistence for learned balancer state. A splitter
// restart (PE relocation, crash recovery) would otherwise discard every
// blocking-rate function and force the region through the whole exploration
// transient again; snapshots capture the raw observed cells — the only
// state the model cannot rebuild — in a JSON-serializable form.

// CellSnapshot is one observed weight cell of a rate function.
type CellSnapshot struct {
	Weight int     `json:"weight"`
	Value  float64 `json:"value"`
	Count  float64 `json:"count"`
}

// FuncSnapshot is the serializable state of one RateFunc.
type FuncSnapshot struct {
	Units   int            `json:"units"`
	Alpha   float64        `json:"alpha"`
	MaxSeen float64        `json:"maxSeen"`
	Cells   []CellSnapshot `json:"cells"`
}

// Snapshot captures the function's raw state. Cells are sorted by weight so
// snapshots are deterministic.
func (f *RateFunc) Snapshot() FuncSnapshot {
	s := FuncSnapshot{
		Units:   f.units,
		Alpha:   f.alpha,
		MaxSeen: f.maxSeen,
		Cells:   make([]CellSnapshot, 0, len(f.raw)),
	}
	for w, cell := range f.raw {
		s.Cells = append(s.Cells, CellSnapshot{Weight: w, Value: cell.value, Count: cell.count})
	}
	sort.Slice(s.Cells, func(i, j int) bool { return s.Cells[i].Weight < s.Cells[j].Weight })
	return s
}

// RestoreFunc reconstructs a RateFunc from a snapshot.
func RestoreFunc(s FuncSnapshot) (*RateFunc, error) {
	f := NewRateFunc(s.Units, s.Alpha)
	if s.MaxSeen < 0 {
		return nil, fmt.Errorf("core: snapshot maxSeen %v negative", s.MaxSeen)
	}
	f.maxSeen = s.MaxSeen
	for _, c := range s.Cells {
		if c.Weight < 0 || c.Weight > f.units {
			return nil, fmt.Errorf("core: snapshot cell weight %d outside [0,%d]", c.Weight, f.units)
		}
		if c.Count <= 0 || c.Value < 0 {
			return nil, fmt.Errorf("core: snapshot cell %d has count %v value %v", c.Weight, c.Count, c.Value)
		}
		f.raw[c.Weight] = &rawCell{value: c.Value, count: c.Count}
	}
	f.dirty = true
	return f, nil
}

// BalancerSnapshot is the serializable state of a Balancer: the current
// weights, iteration count and every connection's learned function.
// Configuration (decay mode, clustering, bounds) is not part of the
// snapshot — it belongs to the restarting process.
type BalancerSnapshot struct {
	Weights []int          `json:"weights"`
	Rounds  int            `json:"rounds"`
	Funcs   []FuncSnapshot `json:"funcs"`
}

// Snapshot captures the balancer's learned state.
func (b *Balancer) Snapshot() BalancerSnapshot {
	s := BalancerSnapshot{
		Weights: b.Weights(),
		Rounds:  b.rounds,
		Funcs:   make([]FuncSnapshot, len(b.funcs)),
	}
	for j, f := range b.funcs {
		s.Funcs[j] = f.Snapshot()
	}
	return s
}

// Restore replaces the balancer's learned state with the snapshot's. The
// snapshot must describe the same number of connections and the same weight
// domain; weights must be in range and sum to Units.
func (b *Balancer) Restore(s BalancerSnapshot) error {
	if len(s.Funcs) != b.cfg.Connections {
		return fmt.Errorf("core: snapshot has %d functions, balancer has %d connections", len(s.Funcs), b.cfg.Connections)
	}
	if len(s.Weights) != b.cfg.Connections {
		return fmt.Errorf("core: snapshot has %d weights, balancer has %d connections", len(s.Weights), b.cfg.Connections)
	}
	sum := 0
	for j, w := range s.Weights {
		if w < 0 || w > b.cfg.Units {
			return fmt.Errorf("core: snapshot weight %d for connection %d outside [0,%d]", w, j, b.cfg.Units)
		}
		sum += w
	}
	if sum != b.cfg.Units {
		return fmt.Errorf("core: snapshot weights sum to %d, want %d", sum, b.cfg.Units)
	}
	funcs := make([]*RateFunc, len(s.Funcs))
	for j, fs := range s.Funcs {
		if fs.Units != b.cfg.Units {
			return fmt.Errorf("core: snapshot function %d has %d units, balancer uses %d", j, fs.Units, b.cfg.Units)
		}
		f, err := RestoreFunc(fs)
		if err != nil {
			return fmt.Errorf("core: restore function %d: %w", j, err)
		}
		funcs[j] = f
	}
	copy(b.weights, s.Weights)
	b.funcs = funcs
	b.rounds = s.Rounds
	b.clusters = nil
	return nil
}
