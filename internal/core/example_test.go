package core_test

import (
	"fmt"

	"streambalance/internal/core"
)

// ExampleBalancer shows the full feedback loop: observe blocking rates,
// rebalance, read weights. Connection 0 blocks badly at its current share;
// the others are comfortable, so the optimizer shifts its load away.
func ExampleBalancer() {
	balancer, err := core.NewBalancer(core.Config{
		Connections:  3,
		DecayEnabled: true, // LB-adaptive
	})
	if err != nil {
		panic(err)
	}
	for round := 0; round < 10; round++ {
		weights := balancer.Weights()
		// Synthetic measurements: connection 0 saturates at 10% of the
		// stream and blocks in proportion to the excess.
		if over := weights[0] - 100; over > 0 {
			if err := balancer.Observe(0, float64(over)/1000); err != nil {
				panic(err)
			}
		}
		if _, err := balancer.Rebalance(); err != nil {
			panic(err)
		}
	}
	final := balancer.Weights()
	fmt.Println("connection 0 throttled:", final[0] <= 150)
	fmt.Println("total units:", final[0]+final[1]+final[2])
	// Output:
	// connection 0 throttled: true
	// total units: 1000
}

// ExampleSolveFox solves a small minimax allocation directly: connection 0
// starts blocking past 3 units, connection 1 never blocks, so almost all
// units flow to connection 1.
func ExampleSolveFox() {
	f0 := core.NewRateFunc(10, 1)
	_ = f0.Observe(3, 0)
	_ = f0.Observe(6, 9)
	f1 := core.NewRateFunc(10, 1)
	_ = f1.Observe(10, 0)

	sol, err := core.SolveFox(core.Problem{
		Funcs: []core.Func{f0, f1},
		Total: 10,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("weights:", sol.Weights)
	fmt.Println("objective:", sol.Objective)
	// Output:
	// weights: [3 7]
	// objective: 0
}

// ExampleMonotoneRegression forces noisy empirical data into the
// non-decreasing shape the model requires.
func ExampleMonotoneRegression() {
	fit := core.MonotoneRegression([]float64{1, 3, 2, 5}, nil)
	fmt.Println(fit)
	// Output:
	// [1 2.5 2.5 5]
}
