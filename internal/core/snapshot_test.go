package core

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFuncSnapshotRoundTrip(t *testing.T) {
	f := NewRateFunc(500, 0.5)
	mustObserve(t, f, 100, 0)
	mustObserve(t, f, 300, 12)
	mustObserve(t, f, 450, 40)
	f.Decay(300, 0.9)

	restored, err := RestoreFunc(f.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w <= 500; w += 25 {
		if got, want := restored.Predict(w), f.Predict(w); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Predict(%d) = %v after restore, want %v", w, got, want)
		}
	}
	if restored.SampleCount() != f.SampleCount() {
		t.Fatalf("SampleCount = %v, want %v", restored.SampleCount(), f.SampleCount())
	}
}

func TestFuncSnapshotJSON(t *testing.T) {
	f := NewRateFunc(100, 1)
	mustObserve(t, f, 60, 7)

	data, err := json.Marshal(f.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap FuncSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreFunc(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Predict(60); math.Abs(got-7) > 1e-12 {
		t.Fatalf("Predict(60) = %v after JSON round trip, want 7", got)
	}
}

func TestRestoreFuncValidation(t *testing.T) {
	tests := []struct {
		name string
		snap FuncSnapshot
	}{
		{"negative maxSeen", FuncSnapshot{Units: 100, Alpha: 0.5, MaxSeen: -1}},
		{"cell weight out of range", FuncSnapshot{Units: 100, Alpha: 0.5, Cells: []CellSnapshot{{Weight: 200, Value: 1, Count: 1}}}},
		{"non-positive count", FuncSnapshot{Units: 100, Alpha: 0.5, Cells: []CellSnapshot{{Weight: 10, Value: 1, Count: 0}}}},
		{"negative value", FuncSnapshot{Units: 100, Alpha: 0.5, Cells: []CellSnapshot{{Weight: 10, Value: -1, Count: 1}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := RestoreFunc(tt.snap); err == nil {
				t.Fatal("invalid snapshot accepted")
			}
		})
	}
}

func TestBalancerSnapshotRoundTrip(t *testing.T) {
	b, err := NewBalancer(Config{Connections: 3, DecayEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	driveBalancer(t, b, []int{50, 600, 600}, 20)

	snap := b.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded BalancerSnapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}

	fresh, err := NewBalancer(Config{Connections: 3, DecayEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(decoded); err != nil {
		t.Fatal(err)
	}
	if got, want := fresh.Weights(), b.Weights(); !equalInts(got, want) {
		t.Fatalf("weights after restore %v, want %v", got, want)
	}
	if fresh.Rounds() != b.Rounds() {
		t.Fatalf("rounds = %d, want %d", fresh.Rounds(), b.Rounds())
	}
	// The restored balancer must continue from the learned state: one
	// rebalance on both must produce identical weights.
	w1, err := b.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := fresh.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(w1, w2) {
		t.Fatalf("post-restore rebalance diverged: %v vs %v", w1, w2)
	}
}

func TestBalancerRestoreValidation(t *testing.T) {
	b, err := NewBalancer(Config{Connections: 2})
	if err != nil {
		t.Fatal(err)
	}
	good := b.Snapshot()

	tests := []struct {
		name   string
		mutate func(BalancerSnapshot) BalancerSnapshot
	}{
		{"wrong function count", func(s BalancerSnapshot) BalancerSnapshot {
			s.Funcs = s.Funcs[:1]
			return s
		}},
		{"wrong weight count", func(s BalancerSnapshot) BalancerSnapshot {
			s.Weights = s.Weights[:1]
			return s
		}},
		{"weights do not sum", func(s BalancerSnapshot) BalancerSnapshot {
			s.Weights = []int{1, 1}
			return s
		}},
		{"weight out of range", func(s BalancerSnapshot) BalancerSnapshot {
			s.Weights = []int{-1, 1001}
			return s
		}},
		{"wrong units", func(s BalancerSnapshot) BalancerSnapshot {
			s.Funcs[0].Units = 77
			return s
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			snap := tt.mutate(cloneSnapshot(good))
			if err := b.Restore(snap); err == nil {
				t.Fatal("invalid snapshot restored")
			}
		})
	}
}

func TestSnapshotRestoreProperty(t *testing.T) {
	// Any sequence of observations survives a snapshot/restore cycle with
	// identical predictions.
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		f := NewRateFunc(200, 0.5)
		for i := 0; i < int(n%30)+1; i++ {
			if err := f.ObserveWeighted(rng.Intn(201), rng.Float64()*100, 0.1+rng.Float64()*0.9); err != nil {
				return false
			}
		}
		restored, err := RestoreFunc(f.Snapshot())
		if err != nil {
			return false
		}
		for w := 0; w <= 200; w += 10 {
			if math.Abs(restored.Predict(w)-f.Predict(w)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func cloneSnapshot(s BalancerSnapshot) BalancerSnapshot {
	out := BalancerSnapshot{
		Weights: append([]int(nil), s.Weights...),
		Rounds:  s.Rounds,
		Funcs:   make([]FuncSnapshot, len(s.Funcs)),
	}
	for i, f := range s.Funcs {
		out.Funcs[i] = FuncSnapshot{
			Units:   f.Units,
			Alpha:   f.Alpha,
			MaxSeen: f.MaxSeen,
			Cells:   append([]CellSnapshot(nil), f.Cells...),
		}
	}
	return out
}
