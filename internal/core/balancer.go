package core

import (
	"errors"
	"fmt"
	"math"
)

// DefaultDecayFactor is the geometric reduction applied to predictions beyond
// the current weight each balancing iteration; the paper chose a fixed 10%
// reduction (Section 5.4).
const DefaultDecayFactor = 0.9

// DefaultClusterThreshold is the complete-linkage merge threshold for the
// clustering step. Distances are absolute log-ratios, so a threshold of 0.7
// merges connections whose knees (service rates) are within roughly a factor
// of two of each other — comfortably separating the paper's 1x / 5x / 100x
// load classes.
const DefaultClusterThreshold = 0.7

// DefaultClusterMinConns is the fan-out at which clustering turns on. The
// paper's local scheme works well up to 16 connections and clustering
// "only becomes necessary as the number of channels scales to 32 and higher"
// (Section 6.6).
const DefaultClusterMinConns = 32

// Solver solves a minimax separable RAP; SolveFox and SolveBisect both
// satisfy it.
type Solver func(Problem) (Solution, error)

// Config parameterizes a Balancer. The zero value is not usable: Connections
// must be positive. Every other field has a working default.
type Config struct {
	// Connections is the number of parallel channels N.
	Connections int
	// Units is R, the number of discrete resource units (default 1000).
	Units int
	// SmoothingAlpha is the EWMA factor for folding samples into weight
	// cells (default DefaultSmoothingAlpha).
	SmoothingAlpha float64
	// DecayEnabled selects LB-adaptive (true) versus LB-static (false)
	// behaviour: whether predictions beyond the current weight decay each
	// iteration to encourage re-exploration.
	DecayEnabled bool
	// DecayFactor is the per-iteration multiplier for decayed cells
	// (default DefaultDecayFactor).
	DecayFactor float64
	// MinWeight and MaxWeight are optional static per-connection bounds in
	// units. Nil means 0 and Units respectively.
	MinWeight []int
	MaxWeight []int
	// MaxStep, when positive, bounds how far any connection's weight may
	// move in a single rebalance (the paper's incremental min/max change
	// constraints). Zero means unbounded.
	MaxStep int
	// ClusterEnabled turns on the Section 5.3 clustering pipeline when the
	// fan-out is at least ClusterMinConns.
	ClusterEnabled bool
	// ClusterThreshold is the complete-linkage merge threshold (default
	// DefaultClusterThreshold).
	ClusterThreshold float64
	// ClusterMinConns gates clustering by fan-out (default
	// DefaultClusterMinConns).
	ClusterMinConns int
	// KneeEps is the blocking level treated as zero when locating function
	// knees for clustering (default 0).
	KneeEps float64
	// Delta is δ, the zero guard for logarithms and forced monotonicity
	// (default DefaultDelta).
	Delta float64
	// Solve is the RAP solver (default SolveFox).
	Solve Solver
}

// withDefaults returns a copy of the config with defaults filled in.
func (c Config) withDefaults() Config {
	if c.Units <= 0 {
		c.Units = DefaultUnits
	}
	if c.SmoothingAlpha <= 0 || c.SmoothingAlpha > 1 {
		c.SmoothingAlpha = DefaultSmoothingAlpha
	}
	if c.DecayFactor <= 0 || c.DecayFactor >= 1 {
		c.DecayFactor = DefaultDecayFactor
	}
	if c.ClusterThreshold <= 0 {
		c.ClusterThreshold = DefaultClusterThreshold
	}
	if c.ClusterMinConns <= 0 {
		c.ClusterMinConns = DefaultClusterMinConns
	}
	if c.Delta <= 0 {
		c.Delta = DefaultDelta
	}
	if c.Solve == nil {
		c.Solve = SolveFox
	}
	return c
}

// Balancer is the paper's local load balancer for one parallel region. It
// owns one blocking-rate function per connection, consumes blocking-rate
// observations, and on each Rebalance emits a fresh allocation-weight vector
// summing exactly to Units. Balancer is not safe for concurrent use; the
// controller that samples the transport owns it.
type Balancer struct {
	cfg       Config
	funcs     []*RateFunc
	weights   []int
	clusters  [][]int // partition used by the last rebalance (nil if unclustered)
	lastObj   float64
	lastIters int
	rounds    int
}

// NewBalancer validates the config and returns a balancer with an even
// initial weight distribution.
func NewBalancer(cfg Config) (*Balancer, error) {
	if cfg.Connections <= 0 {
		return nil, errors.New("core: config needs at least one connection")
	}
	cfg = cfg.withDefaults()
	if cfg.MinWeight != nil && len(cfg.MinWeight) != cfg.Connections {
		return nil, fmt.Errorf("core: %d min weights for %d connections", len(cfg.MinWeight), cfg.Connections)
	}
	if cfg.MaxWeight != nil && len(cfg.MaxWeight) != cfg.Connections {
		return nil, fmt.Errorf("core: %d max weights for %d connections", len(cfg.MaxWeight), cfg.Connections)
	}
	b := &Balancer{
		cfg:     cfg,
		funcs:   make([]*RateFunc, cfg.Connections),
		weights: EvenWeights(cfg.Connections, cfg.Units),
	}
	for j := range b.funcs {
		b.funcs[j] = NewRateFunc(cfg.Units, cfg.SmoothingAlpha)
	}
	return b, nil
}

// EvenWeights returns the most even integer split of units across n
// connections (earlier connections receive the remainder units).
func EvenWeights(n, units int) []int {
	weights := make([]int, n)
	if n == 0 {
		return weights
	}
	base := units / n
	rem := units % n
	for j := range weights {
		weights[j] = base
		if j < rem {
			weights[j]++
		}
	}
	return weights
}

// Weights returns a copy of the current allocation weights.
func (b *Balancer) Weights() []int {
	out := make([]int, len(b.weights))
	copy(out, b.weights)
	return out
}

// Connections returns the fan-out N.
func (b *Balancer) Connections() int {
	return b.cfg.Connections
}

// Units returns R.
func (b *Balancer) Units() int {
	return b.cfg.Units
}

// Func exposes connection j's rate function for inspection (tests, plots).
// The returned function is live; callers must not mutate it.
func (b *Balancer) Func(j int) *RateFunc {
	return b.funcs[j]
}

// Observe records a blocking-rate sample for a connection, attributed to the
// connection's current allocation weight (the weight in force while the
// sample accumulated).
func (b *Balancer) Observe(conn int, rate float64) error {
	return b.ObserveWeighted(conn, rate, 1)
}

// ObserveWeighted records a sample with reduced trust in (0, 1]; see
// RateFunc.ObserveWeighted. Controllers use partial trust for zero
// observations taken while the splitter was blocked on a draft leader.
func (b *Balancer) ObserveWeighted(conn int, rate, trust float64) error {
	if conn < 0 || conn >= len(b.funcs) {
		return fmt.Errorf("core: connection %d out of range [0,%d)", conn, len(b.funcs))
	}
	return b.funcs[conn].ObserveWeighted(b.weights[conn], rate, trust)
}

// ObserveAt records a blocking-rate sample at an explicit weight, for callers
// that track historical weights themselves.
func (b *Balancer) ObserveAt(conn, weight int, rate float64) error {
	if conn < 0 || conn >= len(b.funcs) {
		return fmt.Errorf("core: connection %d out of range [0,%d)", conn, len(b.funcs))
	}
	return b.funcs[conn].Observe(weight, rate)
}

// LastObjective returns the objective value (max predicted blocking rate) of
// the most recent rebalance.
func (b *Balancer) LastObjective() float64 {
	return b.lastObj
}

// LastIterations returns how many optimizer iterations the most recent
// rebalance took — the metrics layer exports it so solver cost is visible
// alongside the decisions it produces.
func (b *Balancer) LastIterations() int {
	return b.lastIters
}

// LastClusters returns the partition used by the most recent rebalance, or
// nil if clustering was not applied. The outer slice is ordered by smallest
// member index; experiment heat maps key on it.
func (b *Balancer) LastClusters() [][]int {
	if b.clusters == nil {
		return nil
	}
	out := make([][]int, len(b.clusters))
	for i, c := range b.clusters {
		out[i] = append([]int(nil), c...)
	}
	return out
}

// Rounds returns how many rebalances have run.
func (b *Balancer) Rounds() int {
	return b.rounds
}

// Rebalance runs one iteration of the Figure 4 / Figure 6 pipeline: decay
// stale predictions (LB-adaptive), optionally cluster the functions, solve
// the minimax RAP, and install the new weights. It returns a copy of the new
// weight vector.
func (b *Balancer) Rebalance() ([]int, error) {
	b.rounds++
	if b.cfg.DecayEnabled {
		for j, f := range b.funcs {
			f.Decay(b.weights[j], b.cfg.DecayFactor)
		}
	}

	mins, maxs := b.iterationBounds()
	var sol Solution
	var err error
	if b.cfg.ClusterEnabled && b.cfg.Connections >= b.cfg.ClusterMinConns {
		sol, err = b.solveClustered(mins, maxs)
	} else {
		b.clusters = nil
		sol, err = b.solveDirect(mins, maxs)
	}
	if err != nil {
		return nil, err
	}
	copy(b.weights, sol.Weights)
	b.lastObj = sol.Objective
	b.lastIters = sol.Iterations
	return b.Weights(), nil
}

// iterationBounds combines the static bounds with the per-iteration step
// constraint. If the combination is infeasible (cannot sum to Units) the step
// constraint is dropped, mirroring the paper's note that bounds are applied
// "typically incrementally from the current weights".
func (b *Balancer) iterationBounds() (mins, maxs []int) {
	n := b.cfg.Connections
	mins = make([]int, n)
	maxs = make([]int, n)
	for j := 0; j < n; j++ {
		lo, hi := 0, b.cfg.Units
		if b.cfg.MinWeight != nil {
			lo = b.cfg.MinWeight[j]
		}
		if b.cfg.MaxWeight != nil {
			hi = b.cfg.MaxWeight[j]
		}
		if b.cfg.MaxStep > 0 {
			if s := b.weights[j] - b.cfg.MaxStep; s > lo {
				lo = s
			}
			if s := b.weights[j] + b.cfg.MaxStep; s < hi {
				hi = s
			}
		}
		if lo > hi {
			lo = hi
		}
		mins[j], maxs[j] = lo, hi
	}
	sumMin, sumMax := 0, 0
	for j := 0; j < n; j++ {
		sumMin += mins[j]
		sumMax += maxs[j]
	}
	if sumMin > b.cfg.Units || sumMax < b.cfg.Units {
		// Step constraints made the iteration infeasible; fall back to the
		// static bounds alone.
		for j := 0; j < n; j++ {
			mins[j] = 0
			maxs[j] = b.cfg.Units
			if b.cfg.MinWeight != nil {
				mins[j] = b.cfg.MinWeight[j]
			}
			if b.cfg.MaxWeight != nil {
				maxs[j] = b.cfg.MaxWeight[j]
			}
		}
	}
	return mins, maxs
}

// solveDirect runs the optimizer over the raw per-connection functions.
func (b *Balancer) solveDirect(mins, maxs []int) (Solution, error) {
	funcs := make([]Func, len(b.funcs))
	for j, f := range b.funcs {
		funcs[j] = f
	}
	return b.cfg.Solve(Problem{Funcs: funcs, Total: b.cfg.Units, Min: mins, Max: maxs})
}

// clusterFunc adapts a pooled cluster function of size members to the
// optimizer: a cluster holding total weight W spreads it evenly, so its
// blocking is the member function evaluated at W/size.
type clusterFunc struct {
	merged *RateFunc
	size   int
}

func (c clusterFunc) Eval(weight int) float64 {
	per := int(math.Round(float64(weight) / float64(c.size)))
	return c.merged.Predict(per)
}

// solveClustered runs the Section 5.3 pipeline: summarize, cluster, pool
// member data, solve the reduced problem, and re-divide cluster weights
// evenly among members.
func (b *Balancer) solveClustered(mins, maxs []int) (Solution, error) {
	n := b.cfg.Connections
	alpha := Alpha(b.cfg.Units, b.cfg.Delta)
	summaries := make([]FuncSummary, n)
	for j, f := range b.funcs {
		summaries[j] = Summarize(f, b.cfg.KneeEps)
	}
	dist := func(i, j int) float64 {
		return Distance(summaries[i], summaries[j], alpha, b.cfg.Delta)
	}
	clusters := Agglomerate(n, dist, b.cfg.ClusterThreshold)
	b.clusters = clusters

	k := len(clusters)
	funcs := make([]Func, k)
	cmins := make([]int, k)
	cmaxs := make([]int, k)
	for ci, members := range clusters {
		memberFuncs := make([]*RateFunc, len(members))
		for mi, j := range members {
			memberFuncs[mi] = b.funcs[j]
			cmins[ci] += mins[j]
			cmaxs[ci] += maxs[j]
		}
		if cmaxs[ci] > b.cfg.Units {
			cmaxs[ci] = b.cfg.Units
		}
		funcs[ci] = clusterFunc{
			merged: MergeFuncs(memberFuncs, b.cfg.Units, b.cfg.SmoothingAlpha),
			size:   len(members),
		}
	}
	sol, err := b.cfg.Solve(Problem{Funcs: funcs, Total: b.cfg.Units, Min: cmins, Max: cmaxs})
	if err != nil {
		return Solution{}, fmt.Errorf("clustered solve: %w", err)
	}

	// Re-divide each cluster's weight evenly among members, clamped to the
	// member bounds; any units the clamp displaces go to members with room.
	weights := make([]int, n)
	for ci, members := range clusters {
		share := EvenWeights(len(members), sol.Weights[ci])
		leftover := 0
		for mi, j := range members {
			w := share[mi]
			if w < mins[j] {
				leftover -= mins[j] - w
				w = mins[j]
			}
			if w > maxs[j] {
				leftover += w - maxs[j]
				w = maxs[j]
			}
			weights[j] = w
		}
		for _, j := range members {
			if leftover == 0 {
				break
			}
			if leftover > 0 {
				if room := maxs[j] - weights[j]; room > 0 {
					add := leftover
					if add > room {
						add = room
					}
					weights[j] += add
					leftover -= add
				}
			} else {
				if room := weights[j] - mins[j]; room > 0 {
					sub := -leftover
					if sub > room {
						sub = room
					}
					weights[j] -= sub
					leftover += sub
				}
			}
		}
	}
	return Solution{Weights: weights, Objective: objective(funcsOf(b.funcs), weights), Iterations: sol.Iterations}, nil
}

// funcsOf converts a RateFunc slice to the optimizer's interface slice.
func funcsOf(fs []*RateFunc) []Func {
	out := make([]Func, len(fs))
	for i, f := range fs {
		out[i] = f
	}
	return out
}
