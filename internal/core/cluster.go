package core

import (
	"math"
	"sort"
)

// cluster.go implements the connection-function clustering of Section 5.3:
// connections with indistinguishable predictive functions (typically PEs
// sharing a host, or hosts of the same class) are grouped so their sparse
// observations pool into one robust cluster function and the optimization
// shrinks from an N-way to a K-way problem.

// FuncSummary captures the characteristics the paper's distance function
// compares: the knee weight w_s (effectively the connection's service rate),
// the blocking observed at the knee, and the blocking expected at the full
// load R.
type FuncSummary struct {
	// Knee is w_s: the smallest weight with positive predicted blocking.
	Knee int
	// AtKnee is F(w_s).
	AtKnee float64
	// AtFull is F(R).
	AtFull float64
}

// Summarize extracts a FuncSummary from a rate function. kneeEps is the
// blocking level treated as "no blocking" when locating the knee; pass 0 for
// the strict definition.
func Summarize(f *RateFunc, kneeEps float64) FuncSummary {
	knee := f.Knee(kneeEps)
	return FuncSummary{
		Knee:   knee,
		AtKnee: f.Predict(knee),
		AtFull: f.Predict(f.Units()),
	}
}

// Alpha returns the scaling factor α = log R / |log(R·δ)| that puts the
// blocking-rate ratio terms of the distance on the same scale as the
// service-rate ratio term (Section 5.3).
func Alpha(units int, delta float64) float64 {
	if units <= 0 {
		units = DefaultUnits
	}
	if delta <= 0 {
		delta = DefaultDelta
	}
	denom := math.Abs(math.Log(float64(units) * delta))
	if denom == 0 {
		return 1
	}
	return math.Log(float64(units)) / denom
}

// Distance implements the paper's function distance:
//
//	max( |log(w_js / w_ks)|,
//	     α·|log(F_j(w_js) / F_k(w_ks))|,
//	     α·|log(F_j(R) / F_k(R))| )
//
// Logarithms of ratios penalize large differences far more than small ones;
// taking the max avoids the information loss of aggregation. Zero values are
// replaced by δ so the logarithms stay finite; two functions that are both
// zero in a term contribute 0 for that term.
func Distance(a, b FuncSummary, alpha, delta float64) float64 {
	if delta <= 0 {
		delta = DefaultDelta
	}
	logRatio := func(x, y float64) float64 {
		if x <= 0 {
			x = delta
		}
		if y <= 0 {
			y = delta
		}
		return math.Abs(math.Log(x / y))
	}
	d := logRatio(float64(a.Knee), float64(b.Knee))
	if v := alpha * logRatio(a.AtKnee, b.AtKnee); v > d {
		d = v
	}
	if v := alpha * logRatio(a.AtFull, b.AtFull); v > d {
		d = v
	}
	return d
}

// Agglomerate performs agglomerative clustering with complete linkage over n
// items using the given pairwise distance. Clusters are repeatedly merged
// while the smallest complete-linkage distance between any two clusters is at
// most threshold. The result is a partition of 0..n-1; member and cluster
// ordering is deterministic (by smallest contained index) so downstream heat
// maps are stable.
func Agglomerate(n int, dist func(i, j int) float64, threshold float64) [][]int {
	if n <= 0 {
		return nil
	}
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	// Complete linkage: distance between clusters is the max pairwise
	// member distance. Cached in a matrix, O(n^3) overall — n is the number
	// of connections in one parallel region (at most a few hundred).
	linkage := func(a, b []int) float64 {
		worst := 0.0
		for _, i := range a {
			for _, j := range b {
				if d := dist(i, j); d > worst {
					worst = d
				}
			}
		}
		return worst
	}
	for len(clusters) > 1 {
		bestA, bestB := -1, -1
		bestD := math.Inf(1)
		for a := 0; a < len(clusters); a++ {
			for b := a + 1; b < len(clusters); b++ {
				if d := linkage(clusters[a], clusters[b]); d < bestD {
					bestD = d
					bestA, bestB = a, b
				}
			}
		}
		if bestD > threshold {
			break
		}
		merged := append(append([]int(nil), clusters[bestA]...), clusters[bestB]...)
		next := make([][]int, 0, len(clusters)-1)
		for i, c := range clusters {
			if i != bestA && i != bestB {
				next = append(next, c)
			}
		}
		clusters = append(next, merged)
	}
	return canonicalClusters(clusters)
}

// canonicalClusters sorts members within each cluster and clusters by their
// smallest member, producing a deterministic partition representation.
func canonicalClusters(clusters [][]int) [][]int {
	for _, c := range clusters {
		sort.Ints(c)
	}
	sort.Slice(clusters, func(a, b int) bool {
		return clusters[a][0] < clusters[b][0]
	})
	return clusters
}

// MergeFuncs builds the cluster function for a group of connections by
// pooling every member's raw observations into a fresh RateFunc (Section 5.3:
// "we create a new function for the cluster which incorporates all data from
// the individual connections in the cluster").
func MergeFuncs(members []*RateFunc, units int, alpha float64) *RateFunc {
	merged := NewRateFunc(units, alpha)
	for _, m := range members {
		merged.AbsorbCells(m.RawCells())
	}
	return merged
}
