package core

// monotone.go implements monotone (isotonic) regression via the classic
// pool-adjacent-violators algorithm (PAVA). The paper forces the raw
// blocking-rate data points into non-decreasing order by "monotone
// regression" (Section 5.1) before interpolating; PAVA computes the unique
// non-decreasing sequence minimizing the weighted sum of squared deviations
// from the observations.

// pavaBlock is one pooled block during PAVA: a run of adjacent observations
// constrained to share a single fitted value.
type pavaBlock struct {
	value  float64 // weighted mean of pooled observations
	weight float64 // total observation weight in the block
	count  int     // number of observations pooled
}

// MonotoneRegression returns the non-decreasing fit to ys that minimizes
// sum_i ws[i]*(fit[i]-ys[i])^2. ws may be nil, in which case all observations
// have weight 1; otherwise it must have the same length as ys and contain
// positive weights (non-positive weights are treated as 1). The input slices
// are not modified. An empty input yields an empty (non-nil is not
// guaranteed) result.
func MonotoneRegression(ys, ws []float64) []float64 {
	fit, _ := monotoneRegressionInto(nil, nil, ys, ws)
	return fit
}

// monotoneRegressionInto is MonotoneRegression with caller-owned scratch:
// the fit is appended to fitBuf[:0] and the pooling runs in blockBuf[:0],
// both grown as needed and returned for reuse. The per-tick rebuild path
// passes its scratch slices here so steady-state regression allocates
// nothing.
func monotoneRegressionInto(fitBuf []float64, blockBuf []pavaBlock, ys, ws []float64) ([]float64, []pavaBlock) {
	if len(ys) == 0 {
		return nil, blockBuf
	}
	blocks := blockBuf[:0]
	for i, y := range ys {
		w := 1.0
		if ws != nil && i < len(ws) && ws[i] > 0 {
			w = ws[i]
		}
		blocks = append(blocks, pavaBlock{value: y, weight: w, count: 1})
		// Pool backwards while the monotonicity constraint is violated.
		for len(blocks) >= 2 && blocks[len(blocks)-2].value > blocks[len(blocks)-1].value {
			last := blocks[len(blocks)-1]
			prev := blocks[len(blocks)-2]
			merged := pavaBlock{
				weight: prev.weight + last.weight,
				count:  prev.count + last.count,
			}
			merged.value = (prev.value*prev.weight + last.value*last.weight) / merged.weight
			blocks = blocks[:len(blocks)-2]
			blocks = append(blocks, merged)
		}
	}
	fit := fitBuf[:0]
	if cap(fit) < len(ys) {
		fit = make([]float64, 0, len(ys))
	}
	for _, b := range blocks {
		for i := 0; i < b.count; i++ {
			fit = append(fit, b.value)
		}
	}
	return fit, blocks
}

// IsNonDecreasing reports whether xs is sorted in non-decreasing order.
func IsNonDecreasing(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}
