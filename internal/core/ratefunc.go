package core

import (
	"fmt"
	"sort"
)

// DefaultUnits is R from the paper: allocation weights are discrete multiples
// of r = 0.1%, so the weight domain is 0..1000 and the full load is 1000
// units (Section 5.1, 5.2).
const DefaultUnits = 1000

// DefaultDelta is δ, the small positive value introduced when monotonicity or
// a logarithm's argument must be forced away from zero (Section 5.3).
const DefaultDelta = 1e-6

// DefaultSmoothingAlpha is the EWMA factor used to fold new blocking-rate
// samples into a weight cell's existing raw value ("new data is collected and
// smoothed into the existing raw data", Section 5.1).
const DefaultSmoothingAlpha = 0.5

// rawCell holds the smoothed observed blocking rate at one allocation weight.
type rawCell struct {
	value float64 // EWMA-smoothed observed blocking rate
	count float64 // accumulated sample trust (used as regression weight)
}

// RateFunc is one connection's blocking-rate function F_j. The x-axis is the
// allocation weight in discrete units (0..Units); the y-axis is the blocking
// rate the connection experienced, or is predicted to experience, at that
// weight. Predictions are derived from the sparse raw observations in three
// steps, exactly as in Section 5.1: EWMA smoothing into per-weight cells
// (with (0,0) assumed), monotone regression over the observed cells, and
// linear interpolation / extrapolation for the missing cells.
//
// RateFunc is not safe for concurrent use.
type RateFunc struct {
	units   int
	alpha   float64
	raw     map[int]*rawCell
	maxSeen float64 // largest raw sample ever observed, for the zero flush

	pred  []float64 // cached prediction over 0..units, nil when dirty
	dirty bool

	// Rebuild scratch, reused across ticks so the steady-state control path
	// (observe → decay → rebuild on every controller sample) allocates
	// nothing once warm.
	scratchPts    []observedPoint
	scratchYs     []float64
	scratchWs     []float64
	scratchFit    []float64
	scratchBlocks []pavaBlock
}

// NewRateFunc returns an empty function over the weight domain 0..units.
// units <= 0 selects DefaultUnits; alpha outside (0,1] selects
// DefaultSmoothingAlpha.
func NewRateFunc(units int, alpha float64) *RateFunc {
	if units <= 0 {
		units = DefaultUnits
	}
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultSmoothingAlpha
	}
	return &RateFunc{
		units: units,
		alpha: alpha,
		raw:   make(map[int]*rawCell),
		dirty: true,
	}
}

// Units returns the size of the weight domain (R).
func (f *RateFunc) Units() int {
	return f.units
}

// Observe folds one blocking-rate sample taken while the connection held the
// given allocation weight. Negative rates are clamped to zero (the counter is
// cumulative, so a negative delta can only be a sampling artifact). Weights
// outside the domain return an error.
func (f *RateFunc) Observe(weight int, rate float64) error {
	return f.ObserveWeighted(weight, rate, 1)
}

// ObserveWeighted folds a sample with reduced trust in (0, 1]: the sample is
// smoothed in with an effective EWMA factor of alpha*trust and contributes
// trust to the cell's regression weight. The drafting phenomenon makes this
// necessary (Section 4.2): a connection that shows zero blocking while the
// splitter spent the interval blocked on a draft leader may merely have been
// shielded, so its zero carries little evidence; the controller scales the
// trust of zero observations by the fraction of the interval the splitter
// was not blocked elsewhere. Trust above 1 is clamped; non-positive trust is
// a no-op.
func (f *RateFunc) ObserveWeighted(weight int, rate, trust float64) error {
	if weight < 0 || weight > f.units {
		return fmt.Errorf("core: observation weight %d outside domain [0,%d]", weight, f.units)
	}
	if trust <= 0 {
		return nil
	}
	if trust > 1 {
		trust = 1
	}
	if rate < 0 {
		rate = 0
	}
	if rate > f.maxSeen {
		f.maxSeen = rate
	}
	effAlpha := f.alpha * trust
	cell, ok := f.raw[weight]
	if !ok {
		f.raw[weight] = &rawCell{value: rate, count: trust}
	} else {
		cell.value = f.flush(effAlpha*rate + (1-effAlpha)*cell.value)
		cell.count += trust
	}
	f.propagateConsistency(weight, rate, effAlpha)
	f.dirty = true
	return nil
}

// flush snaps values that have shrunk below a tiny fraction of the largest
// rate ever observed to exactly zero. EWMA smoothing and geometric decay
// approach zero only asymptotically; flushing lets a fully-unlearned cell
// become a true zero so the optimizer's tie handling can restore an even
// split across recovered connections instead of chasing vanishing residuals.
func (f *RateFunc) flush(v float64) float64 {
	if v < f.maxSeen*1e-9 {
		return 0
	}
	return v
}

// propagateConsistency reconciles stale cells with a fresh observation using
// the monotonicity tautology of Section 5.2: F is non-decreasing, so a rate r
// observed at weight w bounds every lower weight's rate from above and every
// higher weight's rate from below. Contradicted stale cells are smoothed
// toward the implied bound (without inflating their sample counts). Without
// this, cells recorded under a long-gone load level linger below the current
// weight where neither fresh samples nor the Section 5.4 decay (which only
// touches weights above the current allocation) can reach them, and the
// monotone regression pools their stale values into the tail — blocking the
// "slow climb" recovery the paper observes after load removal (Section 6.1).
func (f *RateFunc) propagateConsistency(weight int, rate, effAlpha float64) {
	for w, cell := range f.raw {
		switch {
		case w < weight && cell.value > rate:
			cell.value = f.flush(effAlpha*rate + (1-effAlpha)*cell.value)
		case w > weight && cell.value < rate:
			cell.value = effAlpha*rate + (1-effAlpha)*cell.value
		}
	}
}

// Decay applies the exploration mechanism of Section 5.4: every raw cell at a
// weight strictly greater than current is multiplied by factor (the paper
// reduces by a fixed 10%, i.e. factor 0.9). Repeated decay, combined with the
// monotone regression, flattens the function beyond the current allocation so
// the optimizer is induced to re-explore.
func (f *RateFunc) Decay(current int, factor float64) {
	if factor < 0 || factor >= 1 {
		return
	}
	changed := false
	for w, cell := range f.raw {
		if w > current && cell.value > 0 {
			cell.value = f.flush(cell.value * factor)
			changed = true
		}
	}
	if changed {
		f.dirty = true
	}
}

// SampleCount returns the accumulated observation trust folded into the
// function (a full-trust sample contributes 1).
func (f *RateFunc) SampleCount() float64 {
	n := 0.0
	for _, cell := range f.raw {
		n += cell.count
	}
	return n
}

// observedPoint is an observed (weight, value, count) triple for regression.
type observedPoint struct {
	weight int
	value  float64
	count  float64
}

// observed returns the raw cells sorted by weight, with the assumed (0,0)
// point included when no observation exists at weight 0. The returned slice
// is rebuild scratch, valid until the next call.
func (f *RateFunc) observed() []observedPoint {
	pts := f.scratchPts[:0]
	if _, ok := f.raw[0]; !ok {
		pts = append(pts, observedPoint{weight: 0, value: 0, count: 1})
	}
	for w, cell := range f.raw {
		pts = append(pts, observedPoint{weight: w, value: cell.value, count: cell.count})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].weight < pts[j].weight })
	f.scratchPts = pts
	return pts
}

// rebuild recomputes the cached prediction table.
func (f *RateFunc) rebuild() {
	pts := f.observed()
	ys, ws := f.scratchYs, f.scratchWs
	if cap(ys) < len(pts) {
		ys = make([]float64, len(pts))
		ws = make([]float64, len(pts))
	}
	ys, ws = ys[:len(pts)], ws[:len(pts)]
	for i, p := range pts {
		ys[i] = p.value
		ws[i] = p.count
	}
	f.scratchYs, f.scratchWs = ys, ws
	fit, blocks := monotoneRegressionInto(f.scratchFit, f.scratchBlocks, ys, ws)
	f.scratchFit, f.scratchBlocks = fit, blocks

	pred := f.pred
	if pred == nil {
		pred = make([]float64, f.units+1)
	}
	// Fill by linear interpolation between consecutive fitted points and
	// linear extrapolation beyond the last one (clamped non-negative).
	for seg := 0; seg < len(pts); seg++ {
		w0 := pts[seg].weight
		y0 := fit[seg]
		var w1 int
		var y1 float64
		if seg+1 < len(pts) {
			w1 = pts[seg+1].weight
			y1 = fit[seg+1]
		} else {
			// Extrapolate using the slope of the last segment, or flat
			// if there is only one point.
			w1 = f.units
			if w1 == w0 {
				pred[w0] = y0
				continue
			}
			slope := 0.0
			if seg > 0 && w0 > pts[seg-1].weight {
				slope = (y0 - fit[seg-1]) / float64(w0-pts[seg-1].weight)
			}
			y1 = y0 + slope*float64(w1-w0)
		}
		if w1 == w0 {
			pred[w0] = y0
			continue
		}
		for w := w0; w <= w1; w++ {
			t := float64(w-w0) / float64(w1-w0)
			v := y0 + t*(y1-y0)
			if v < 0 {
				v = 0
			}
			pred[w] = v
		}
	}
	// Defensive: guarantee the cache itself is non-decreasing even in the
	// face of floating-point wobble at segment joints.
	for w := 1; w <= f.units; w++ {
		if pred[w] < pred[w-1] {
			pred[w] = pred[w-1]
		}
	}
	f.pred = pred
	f.dirty = false
}

// Predict returns F(weight): the blocking rate the connection is predicted to
// experience at the given allocation weight. Out-of-domain weights are
// clamped. Predictions are non-negative and non-decreasing in weight.
func (f *RateFunc) Predict(weight int) float64 {
	if f.dirty {
		f.rebuild()
	}
	if weight < 0 {
		weight = 0
	}
	if weight > f.units {
		weight = f.units
	}
	return f.pred[weight]
}

// Eval implements the optimizer's Func interface.
func (f *RateFunc) Eval(weight int) float64 {
	return f.Predict(weight)
}

// Knee returns the service-rate knee w_s of Section 5.3: the smallest weight
// at which the predicted blocking rate exceeds eps. A connection predicted to
// never block returns Units (it can absorb the full load).
func (f *RateFunc) Knee(eps float64) int {
	if eps < 0 {
		eps = 0
	}
	if f.dirty {
		f.rebuild()
	}
	// Binary search: pred is non-decreasing.
	lo, hi := 0, f.units
	if f.pred[hi] <= eps {
		return f.units
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if f.pred[mid] > eps {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// RawCells returns a copy of the observed cells (weight → smoothed value and
// sample count). Clustering uses this to merge member data into a cluster
// function.
func (f *RateFunc) RawCells() map[int]RawCell {
	out := make(map[int]RawCell, len(f.raw))
	for w, cell := range f.raw {
		out[w] = RawCell{Value: cell.value, Count: cell.count}
	}
	return out
}

// RawCell is an exported view of one observed weight cell.
type RawCell struct {
	Value float64
	Count float64
}

// AbsorbCells folds another function's raw cells into this one, weighting by
// sample counts. It is used to build cluster functions that "incorporate all
// data from the individual connections in the cluster" (Section 5.3).
func (f *RateFunc) AbsorbCells(cells map[int]RawCell) {
	for w, c := range cells {
		if w < 0 || w > f.units || c.Count <= 0 {
			continue
		}
		cell, ok := f.raw[w]
		if !ok {
			f.raw[w] = &rawCell{value: c.Value, count: c.Count}
			continue
		}
		total := cell.count + c.Count
		cell.value = (cell.value*cell.count + c.Value*c.Count) / total
		cell.count = total
	}
	f.dirty = true
}

// Reset discards all observations.
func (f *RateFunc) Reset() {
	f.raw = make(map[int]*rawCell)
	f.maxSeen = 0
	f.dirty = true
}
