package core

import (
	"math"
	"testing"
)

// FuzzMonotoneRegression feeds arbitrary observation vectors to PAVA: the
// fit must always be non-decreasing, never panic, and preserve length.
func FuzzMonotoneRegression(f *testing.F) {
	f.Add([]byte{1, 5, 3, 2})
	f.Add([]byte{})
	f.Add([]byte{255, 0, 255, 0, 128})
	f.Fuzz(func(t *testing.T, raw []byte) {
		ys := make([]float64, len(raw))
		ws := make([]float64, len(raw))
		for i, b := range raw {
			ys[i] = float64(b) - 100
			ws[i] = float64(b%7) + 0.5
		}
		fit := MonotoneRegression(ys, ws)
		if len(fit) != len(ys) {
			t.Fatalf("fit length %d, want %d", len(fit), len(ys))
		}
		if !IsNonDecreasing(fit) {
			t.Fatalf("fit %v not monotone for %v", fit, ys)
		}
	})
}

// FuzzRateFunc drives a rate function with an arbitrary observation script:
// predictions must stay non-negative and monotone throughout.
func FuzzRateFunc(f *testing.F) {
	f.Add([]byte{10, 200, 3, 0, 90, 255})
	f.Fuzz(func(t *testing.T, script []byte) {
		fn := NewRateFunc(100, 0.5)
		for i := 0; i+1 < len(script); i += 2 {
			w := int(script[i]) % 101
			r := float64(script[i+1])
			switch script[i] % 3 {
			case 0:
				if err := fn.Observe(w, r); err != nil {
					t.Fatal(err)
				}
			case 1:
				if err := fn.ObserveWeighted(w, r, float64(script[i+1]%10)/10); err != nil {
					t.Fatal(err)
				}
			default:
				fn.Decay(w, 0.9)
			}
		}
		prev := math.Inf(-1)
		for w := 0; w <= 100; w++ {
			v := fn.Predict(w)
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("Predict(%d) = %v", w, v)
			}
			if v < prev-1e-9 {
				t.Fatalf("prediction not monotone at %d: %v < %v", w, v, prev)
			}
			if v > prev {
				prev = v
			}
		}
	})
}
