package core

import (
	"testing"
)

func TestNewBalancerValidation(t *testing.T) {
	if _, err := NewBalancer(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := NewBalancer(Config{Connections: 3, MinWeight: []int{1}}); err == nil {
		t.Fatal("wrong MinWeight length accepted")
	}
	if _, err := NewBalancer(Config{Connections: 3, MaxWeight: []int{1}}); err == nil {
		t.Fatal("wrong MaxWeight length accepted")
	}
}

func TestEvenWeights(t *testing.T) {
	tests := []struct {
		n, units int
		want     []int
	}{
		{1, 1000, []int{1000}},
		{3, 1000, []int{334, 333, 333}},
		{4, 10, []int{3, 3, 2, 2}},
		{0, 10, []int{}},
	}
	for _, tt := range tests {
		got := EvenWeights(tt.n, tt.units)
		if len(got) != len(tt.want) {
			t.Fatalf("EvenWeights(%d,%d) = %v, want %v", tt.n, tt.units, got, tt.want)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Fatalf("EvenWeights(%d,%d) = %v, want %v", tt.n, tt.units, got, tt.want)
			}
		}
	}
}

func TestBalancerInitialWeightsEven(t *testing.T) {
	b, err := NewBalancer(Config{Connections: 3})
	if err != nil {
		t.Fatal(err)
	}
	w := b.Weights()
	sum := 0
	for _, x := range w {
		sum += x
	}
	if sum != DefaultUnits {
		t.Fatalf("initial weights %v sum to %d, want %d", w, sum, DefaultUnits)
	}
	if w[0]-w[2] > 1 {
		t.Fatalf("initial weights %v not even", w)
	}
}

// driveBalancer feeds synthetic observations derived from true per-connection
// capacities: a connection given weight w blocks at rate k*(w - cap) when w
// exceeds its capacity (in units), else 0. This is the idealized knee-shaped
// function of Figure 7.
func driveBalancer(t *testing.T, b *Balancer, caps []int, rounds int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		w := b.Weights()
		for j := range caps {
			rate := 0.0
			if over := w[j] - caps[j]; over > 0 {
				rate = float64(over) * 3
			}
			if err := b.Observe(j, rate); err != nil {
				t.Fatalf("round %d observe %d: %v", r, j, err)
			}
		}
		if _, err := b.Rebalance(); err != nil {
			t.Fatalf("round %d rebalance: %v", r, err)
		}
	}
}

func TestBalancerDetectsImbalance(t *testing.T) {
	// Connection 0 can only absorb 5% of the load; the others are roomy.
	b, err := NewBalancer(Config{Connections: 3})
	if err != nil {
		t.Fatal(err)
	}
	driveBalancer(t, b, []int{50, 600, 600}, 30)
	w := b.Weights()
	if w[0] > 100 {
		t.Fatalf("weights = %v, want connection 0 throttled to near its capacity 50", w)
	}
	if w[1] < 300 || w[2] < 300 {
		t.Fatalf("weights = %v, want load shifted to connections 1 and 2", w)
	}
}

func TestBalancerEqualCapacityStaysEven(t *testing.T) {
	b, err := NewBalancer(Config{Connections: 4})
	if err != nil {
		t.Fatal(err)
	}
	driveBalancer(t, b, []int{300, 300, 300, 300}, 40)
	for j, w := range b.Weights() {
		if w < 150 || w > 350 {
			t.Fatalf("weights = %v: connection %d drifted far from even", b.Weights(), j)
		}
	}
}

func TestBalancerAdaptsAfterLoadRemoval(t *testing.T) {
	// LB-adaptive: after connection 0's capacity recovers, decay must let
	// its weight climb back; LB-static must not.
	run := func(decay bool) int {
		b, err := NewBalancer(Config{Connections: 2, DecayEnabled: decay})
		if err != nil {
			t.Fatal(err)
		}
		driveBalancer(t, b, []int{30, 900}, 40)   // loaded phase
		driveBalancer(t, b, []int{900, 900}, 200) // load removed
		return b.Weights()[0]
	}
	adaptive := run(true)
	static := run(false)
	if adaptive <= static {
		t.Fatalf("adaptive weight %d <= static weight %d after load removal", adaptive, static)
	}
	if adaptive < 200 {
		t.Fatalf("adaptive weight %d, want substantial recovery toward even", adaptive)
	}
}

func TestBalancerMaxStepLimitsMovement(t *testing.T) {
	b, err := NewBalancer(Config{Connections: 2, MaxStep: 50})
	if err != nil {
		t.Fatal(err)
	}
	before := b.Weights()
	// Extreme observation: connection 0 blocks hard at its current weight.
	if err := b.Observe(0, 1e6); err != nil {
		t.Fatal(err)
	}
	if err := b.Observe(1, 0); err != nil {
		t.Fatal(err)
	}
	after, err := b.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	for j := range after {
		diff := after[j] - before[j]
		if diff < -50 || diff > 50 {
			t.Fatalf("weights moved %v -> %v: connection %d moved %d, limit 50", before, after, j, diff)
		}
	}
}

func TestBalancerStaticBoundsRespected(t *testing.T) {
	b, err := NewBalancer(Config{
		Connections: 2,
		MinWeight:   []int{100, 0},
		MaxWeight:   []int{1000, 800},
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 10; r++ {
		if err := b.Observe(0, 500); err != nil {
			t.Fatal(err)
		}
		if err := b.Observe(1, 0); err != nil {
			t.Fatal(err)
		}
		w, err := b.Rebalance()
		if err != nil {
			t.Fatal(err)
		}
		if w[0] < 100 || w[1] > 800 {
			t.Fatalf("round %d: weights %v violate static bounds", r, w)
		}
	}
}

func TestBalancerObserveValidation(t *testing.T) {
	b, err := NewBalancer(Config{Connections: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Observe(-1, 0); err == nil {
		t.Fatal("negative connection accepted")
	}
	if err := b.Observe(2, 0); err == nil {
		t.Fatal("out-of-range connection accepted")
	}
	if err := b.ObserveAt(5, 10, 0); err == nil {
		t.Fatal("out-of-range connection accepted by ObserveAt")
	}
}

func TestBalancerClusteredSolve(t *testing.T) {
	// 32 connections in two capacity classes; clustering must discover two
	// groups and starve the slow class.
	n := 32
	b, err := NewBalancer(Config{
		Connections:     n,
		ClusterEnabled:  true,
		ClusterMinConns: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]int, n)
	for j := 0; j < n; j++ {
		if j < n/2 {
			caps[j] = 5 // heavily loaded class
		} else {
			caps[j] = 120 // unloaded class: 16*120 > 1000, plenty of room
		}
	}
	driveBalancer(t, b, caps, 40)

	clusters := b.LastClusters()
	if clusters == nil {
		t.Fatal("clustering enabled but LastClusters is nil")
	}
	// No cluster may mix the two classes once the functions are learned.
	for _, c := range clusters {
		slow := c[0] < n/2
		for _, m := range c[1:] {
			if (m < n/2) != slow {
				t.Fatalf("cluster %v mixes capacity classes", c)
			}
		}
	}
	var slowTotal, fastTotal int
	for j, w := range b.Weights() {
		if j < n/2 {
			slowTotal += w
		} else {
			fastTotal += w
		}
	}
	if slowTotal >= fastTotal {
		t.Fatalf("slow class holds %d units vs fast %d, want fast to dominate", slowTotal, fastTotal)
	}
}

func TestBalancerClusteringDisabledBelowMin(t *testing.T) {
	b, err := NewBalancer(Config{
		Connections:     4,
		ClusterEnabled:  true,
		ClusterMinConns: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	driveBalancer(t, b, []int{300, 300, 300, 300}, 3)
	if b.LastClusters() != nil {
		t.Fatal("clustering ran below ClusterMinConns")
	}
}

func TestBalancerWeightsAlwaysSumToUnits(t *testing.T) {
	configs := []Config{
		{Connections: 2},
		{Connections: 3, DecayEnabled: true},
		{Connections: 7, MaxStep: 20},
		{Connections: 33, ClusterEnabled: true, ClusterMinConns: 8},
	}
	for _, cfg := range configs {
		b, err := NewBalancer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		caps := make([]int, cfg.Connections)
		for j := range caps {
			caps[j] = 30 * (j + 1)
		}
		for r := 0; r < 15; r++ {
			w := b.Weights()
			for j := range caps {
				rate := 0.0
				if over := w[j] - caps[j]; over > 0 {
					rate = float64(over)
				}
				if err := b.Observe(j, rate); err != nil {
					t.Fatal(err)
				}
			}
			got, err := b.Rebalance()
			if err != nil {
				t.Fatal(err)
			}
			sum := 0
			for _, x := range got {
				sum += x
			}
			if sum != b.Units() {
				t.Fatalf("cfg %+v round %d: weights sum %d != %d", cfg, r, sum, b.Units())
			}
		}
	}
}

func TestBalancerSolverOverride(t *testing.T) {
	calls := 0
	b, err := NewBalancer(Config{
		Connections: 2,
		Solve: func(p Problem) (Solution, error) {
			calls++
			return SolveFox(p)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("custom solver called %d times, want 1", calls)
	}
	if b.Rounds() != 1 {
		t.Fatalf("Rounds = %d, want 1", b.Rounds())
	}
}
