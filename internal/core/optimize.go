package core

import (
	"errors"
	"fmt"
)

// optimize.go formulates and solves the minimax separable resource allocation
// problem of Section 5.2: minimize max_j F_j(w_j) subject to sum_j w_j = R
// and m_j <= w_j <= M_j, over discrete weights. SolveFox is the greedy
// marginal-allocation algorithm attributed to Fox; SolveBisect is a
// value-space binary search in the spirit of Galil–Megiddo; SolveBrute is an
// exponential reference used only by tests.

// Func is one separable term F_j of the objective, evaluated at a discrete
// weight. Implementations must be monotone non-decreasing in the weight;
// RateFunc enforces this by construction.
type Func interface {
	Eval(weight int) float64
}

// Problem is a minimax separable RAP instance.
type Problem struct {
	// Funcs holds one objective term per connection.
	Funcs []Func
	// Total is the number of resource units to allocate (R).
	Total int
	// Min and Max are optional per-connection bounds. A nil Min means all
	// zeros; a nil Max means all Total. When present they must have the
	// same length as Funcs.
	Min []int
	Max []int
}

// Solution is an optimal allocation.
type Solution struct {
	// Weights sums exactly to the problem's Total.
	Weights []int
	// Objective is max_j F_j(Weights[j]).
	Objective float64
	// Iterations counts solver-specific work units (greedy steps for Fox,
	// feasibility probes for bisection) for benchmarking.
	Iterations int
}

// ErrInfeasible is returned when the bound constraints admit no allocation
// summing to Total.
var ErrInfeasible = errors.New("core: bounds admit no allocation summing to total")

// bounds materializes and validates the per-connection bounds.
func (p *Problem) bounds() (mins, maxs []int, err error) {
	n := len(p.Funcs)
	if n == 0 {
		return nil, nil, errors.New("core: problem has no functions")
	}
	if p.Total < 0 {
		return nil, nil, fmt.Errorf("core: negative total %d", p.Total)
	}
	mins = make([]int, n)
	maxs = make([]int, n)
	for j := 0; j < n; j++ {
		if p.Min != nil {
			if len(p.Min) != n {
				return nil, nil, fmt.Errorf("core: %d min bounds for %d functions", len(p.Min), n)
			}
			mins[j] = p.Min[j]
		}
		if p.Max != nil {
			if len(p.Max) != n {
				return nil, nil, fmt.Errorf("core: %d max bounds for %d functions", len(p.Max), n)
			}
			maxs[j] = p.Max[j]
		} else {
			maxs[j] = p.Total
		}
		if mins[j] < 0 {
			mins[j] = 0
		}
		if maxs[j] > p.Total {
			maxs[j] = p.Total
		}
		if mins[j] > maxs[j] {
			return nil, nil, fmt.Errorf("core: connection %d has min %d > max %d: %w", j, mins[j], maxs[j], ErrInfeasible)
		}
	}
	sumMin, sumMax := 0, 0
	for j := 0; j < n; j++ {
		sumMin += mins[j]
		sumMax += maxs[j]
	}
	if sumMin > p.Total || sumMax < p.Total {
		return nil, nil, fmt.Errorf("core: total %d outside [%d,%d]: %w", p.Total, sumMin, sumMax, ErrInfeasible)
	}
	return mins, maxs, nil
}

// foxItem is a heap entry: the marginal cost of giving connection j its next
// resource unit.
type foxItem struct {
	conn   int
	cost   float64 // F_j(w_j + 1)
	weight int     // w_j + 1, the weight this unit would bring j to
}

// foxHeap is a min-heap on cost. Ties on cost are broken toward the
// connection holding the fewest units ("water filling"), so that connections
// with identical — in particular identically flat — functions converge to an
// even split rather than the lowest index absorbing everything. Any
// tie-breaking yields a minimax-optimal objective; this one also matches the
// even-split steady state the paper reports for equal-capacity connections
// (Section 6.2). The final tie on weight falls back to the index so the
// solver stays deterministic.
// The heap is hand-rolled rather than built on container/heap because the
// latter's any-typed Push/Pop boxes every foxItem; the solver runs on every
// controller tick, so that boxing shows up in region-scale profiles.
type foxHeap []foxItem

func (h foxHeap) less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].conn < h[j].conn
}

func (h foxHeap) siftDown(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		child := left
		if right := left + 1; right < n && h.less(right, left) {
			child = right
		}
		if !h.less(child, i) {
			return
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
}

func (h *foxHeap) push(item foxItem) {
	*h = append(*h, item)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *foxHeap) pop() foxItem {
	s := *h
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s = s[:n]
	*h = s
	s.siftDown(0)
	return top
}

// replaceTop overwrites the minimum with item and restores heap order — the
// pop-then-push the solver does on almost every iteration, in one sift.
func (h foxHeap) replaceTop(item foxItem) {
	h[0] = item
	h.siftDown(0)
}

// SolveFox solves the problem exactly with Fox's greedy marginal-allocation
// scheme (Section 5.2): start every connection at its minimum, then
// repeatedly award one unit to the connection whose next unit has the
// smallest objective value, until all units are placed. With the heap the
// complexity is O(N + R log N). Because every F_j is monotone non-decreasing,
// a standard interchange argument shows the result is minimax-optimal.
func SolveFox(p Problem) (Solution, error) {
	mins, maxs, err := p.bounds()
	if err != nil {
		return Solution{}, err
	}
	n := len(p.Funcs)
	weights := make([]int, n)
	remaining := p.Total
	for j := 0; j < n; j++ {
		weights[j] = mins[j]
		remaining -= mins[j]
	}
	h := make(foxHeap, 0, n)
	for j := 0; j < n; j++ {
		if weights[j] < maxs[j] {
			h = append(h, foxItem{conn: j, cost: p.Funcs[j].Eval(weights[j] + 1), weight: weights[j] + 1})
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	iters := 0
	for remaining > 0 {
		if len(h) == 0 {
			// bounds() guarantees sum(max) >= Total, so this is a
			// programming error rather than a user input error.
			return Solution{}, errors.New("core: fox heap exhausted before total allocated")
		}
		item := h[0]
		j := item.conn
		weights[j]++
		remaining--
		iters++
		if weights[j] < maxs[j] {
			h.replaceTop(foxItem{conn: j, cost: p.Funcs[j].Eval(weights[j] + 1), weight: weights[j] + 1})
		} else {
			h.pop()
		}
	}
	return Solution{Weights: weights, Objective: objective(p.Funcs, weights), Iterations: iters}, nil
}

// objective evaluates max_j F_j(w_j).
func objective(funcs []Func, weights []int) float64 {
	var worst float64
	for j, f := range funcs {
		if v := f.Eval(weights[j]); j == 0 || v > worst {
			worst = v
		}
	}
	return worst
}
