package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMonotoneRegressionTable(t *testing.T) {
	tests := []struct {
		name string
		ys   []float64
		ws   []float64
		want []float64
	}{
		{
			name: "empty",
			ys:   nil,
			want: nil,
		},
		{
			name: "single",
			ys:   []float64{3},
			want: []float64{3},
		},
		{
			name: "already monotone",
			ys:   []float64{1, 2, 3, 4},
			want: []float64{1, 2, 3, 4},
		},
		{
			name: "single violation pools pair",
			ys:   []float64{1, 3, 2, 4},
			want: []float64{1, 2.5, 2.5, 4},
		},
		{
			name: "strictly decreasing pools all",
			ys:   []float64{4, 3, 2, 1},
			want: []float64{2.5, 2.5, 2.5, 2.5},
		},
		{
			name: "weights shift pooled mean",
			ys:   []float64{4, 0},
			ws:   []float64{3, 1},
			want: []float64{3, 3},
		},
		{
			name: "cascading violation",
			ys:   []float64{1, 5, 4, 3},
			want: []float64{1, 4, 4, 4},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := MonotoneRegression(tt.ys, tt.ws)
			if len(got) != len(tt.want) {
				t.Fatalf("length = %d, want %d", len(got), len(tt.want))
			}
			for i := range got {
				if math.Abs(got[i]-tt.want[i]) > 1e-12 {
					t.Fatalf("fit = %v, want %v", got, tt.want)
				}
			}
		})
	}
}

// bruteMonotoneSSE finds the minimum achievable weighted SSE over all
// non-decreasing fits by dynamic programming over a discretized value grid.
// Grid granularity is fine enough for the tolerance used in the property.
func bruteMonotoneSSE(ys, ws []float64) float64 {
	// Candidate fitted values: all "pool means" are weighted averages of
	// contiguous ranges; enumerate those as the exact candidate set.
	type state struct{ v, cost float64 }
	var candidates []float64
	for i := range ys {
		sum, wsum := 0.0, 0.0
		for j := i; j < len(ys); j++ {
			sum += ys[j] * ws[j]
			wsum += ws[j]
			candidates = append(candidates, sum/wsum)
		}
	}
	// DP: best[i][c] = min cost of fitting prefix i with last value
	// candidates[c], requiring non-decreasing candidate sequence.
	best := make([]state, 0, len(candidates))
	for _, c := range candidates {
		best = append(best, state{v: c, cost: ws[0] * (ys[0] - c) * (ys[0] - c)})
	}
	for i := 1; i < len(ys); i++ {
		next := make([]state, len(candidates))
		for ci, c := range candidates {
			minPrev := math.Inf(1)
			for _, s := range best {
				if s.v <= c && s.cost < minPrev {
					minPrev = s.cost
				}
			}
			next[ci] = state{v: c, cost: minPrev + ws[i]*(ys[i]-c)*(ys[i]-c)}
		}
		best = next
	}
	out := math.Inf(1)
	for _, s := range best {
		if s.cost < out {
			out = s.cost
		}
	}
	return out
}

func TestMonotoneRegressionOptimality(t *testing.T) {
	// PAVA must achieve the globally minimal weighted SSE among all
	// non-decreasing fits. Cross-check against exhaustive DP on small
	// random instances.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(5)
		ys := make([]float64, n)
		ws := make([]float64, n)
		for i := range ys {
			ys[i] = math.Round(rng.Float64()*10*4) / 4
			ws[i] = float64(1 + rng.Intn(3))
		}
		fit := MonotoneRegression(ys, ws)
		if !IsNonDecreasing(fit) {
			t.Fatalf("trial %d: fit %v not monotone for ys=%v", trial, fit, ys)
		}
		got := 0.0
		for i := range ys {
			got += ws[i] * (ys[i] - fit[i]) * (ys[i] - fit[i])
		}
		want := bruteMonotoneSSE(ys, ws)
		if got > want+1e-9 {
			t.Fatalf("trial %d: PAVA SSE %.9f > optimal %.9f (ys=%v ws=%v fit=%v)",
				trial, got, want, ys, ws, fit)
		}
	}
}

func TestMonotoneRegressionProperties(t *testing.T) {
	sanitize := func(raw []float64) []float64 {
		ys := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Keep magnitudes sane so squared errors stay finite.
			ys = append(ys, math.Mod(v, 1e6))
		}
		return ys
	}

	t.Run("output is non-decreasing", func(t *testing.T) {
		prop := func(raw []float64) bool {
			return IsNonDecreasing(MonotoneRegression(sanitize(raw), nil))
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("idempotent", func(t *testing.T) {
		prop := func(raw []float64) bool {
			ys := sanitize(raw)
			once := MonotoneRegression(ys, nil)
			twice := MonotoneRegression(once, nil)
			for i := range once {
				if math.Abs(once[i]-twice[i]) > 1e-9*math.Max(1, math.Abs(once[i])) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("preserves weighted mean", func(t *testing.T) {
		prop := func(raw []float64) bool {
			ys := sanitize(raw)
			if len(ys) == 0 {
				return true
			}
			fit := MonotoneRegression(ys, nil)
			var sumY, sumF float64
			for i := range ys {
				sumY += ys[i]
				sumF += fit[i]
			}
			return math.Abs(sumY-sumF) <= 1e-6*math.Max(1, math.Abs(sumY))
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("monotone input is a fixed point", func(t *testing.T) {
		prop := func(raw []float64) bool {
			ys := sanitize(raw)
			// Sort to obtain a monotone input.
			for i := 1; i < len(ys); i++ {
				for j := i; j > 0 && ys[j] < ys[j-1]; j-- {
					ys[j], ys[j-1] = ys[j-1], ys[j]
				}
			}
			fit := MonotoneRegression(ys, nil)
			for i := range ys {
				if fit[i] != ys[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestIsNonDecreasing(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want bool
	}{
		{"empty", nil, true},
		{"single", []float64{1}, true},
		{"flat", []float64{2, 2, 2}, true},
		{"increasing", []float64{1, 2, 3}, true},
		{"dip", []float64{1, 3, 2}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsNonDecreasing(tt.xs); got != tt.want {
				t.Fatalf("IsNonDecreasing(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}
