package core

import (
	"fmt"
	"strings"
)

// DumpFunctions renders every connection's learned blocking-rate function as
// an aligned text table, sampling the weight domain at the given number of
// columns. It is a debugging aid for operators ("what does the model believe
// right now?") used by cmd/sbalance and tests.
func DumpFunctions(b *Balancer, columns int) string {
	if columns < 2 {
		columns = 2
	}
	units := b.Units()
	step := units / (columns - 1)
	if step < 1 {
		step = 1
	}
	var sb strings.Builder
	sb.WriteString("conn  weight |")
	for w := 0; w <= units; w += step {
		fmt.Fprintf(&sb, " F(%4d)", w)
	}
	sb.WriteByte('\n')
	weights := b.Weights()
	for j := 0; j < b.Connections(); j++ {
		fmt.Fprintf(&sb, "%4d  %6d |", j, weights[j])
		f := b.Func(j)
		for w := 0; w <= units; w += step {
			fmt.Fprintf(&sb, " %7.3f", f.Predict(w))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
