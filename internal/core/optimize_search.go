package core

import (
	"errors"
	"math"
	"sort"
)

// SolveBisect solves the same minimax RAP as SolveFox by binary searching the
// objective value, in the spirit of the Galil–Megiddo selection scheme cited
// in Section 5.2. For a candidate objective λ, the largest feasible weight of
// connection j is the largest w in [m_j, M_j] with F_j(w) <= λ (at least m_j,
// since the minimum must be allocated regardless); λ is feasible iff those
// weights sum to at least Total. The optimum is the smallest feasible λ among
// the candidate values {F_j(w)}. Rather than Galil–Megiddo's nested parametric
// search, candidates are materialized and sorted — O(NR log(NR)) — which is
// exact and entirely adequate at R = 1000, and serves as an independent
// cross-check on SolveFox.
func SolveBisect(p Problem) (Solution, error) {
	mins, maxs, err := p.bounds()
	if err != nil {
		return Solution{}, err
	}
	n := len(p.Funcs)

	// The objective can never be below max_j F_j(m_j): the minimum weights
	// must be allocated no matter what.
	floor := math.Inf(-1)
	for j := 0; j < n; j++ {
		if v := p.Funcs[j].Eval(mins[j]); v > floor {
			floor = v
		}
	}

	// Candidate objective values.
	var candidates []float64
	for j := 0; j < n; j++ {
		for w := mins[j]; w <= maxs[j]; w++ {
			if v := p.Funcs[j].Eval(w); v >= floor {
				candidates = append(candidates, v)
			}
		}
	}
	candidates = append(candidates, floor)
	sort.Float64s(candidates)
	candidates = dedupFloats(candidates)

	iters := 0
	feasible := func(lambda float64) bool {
		iters++
		total := 0
		for j := 0; j < n; j++ {
			total += maxWeightUnder(p.Funcs[j], mins[j], maxs[j], lambda)
			if total >= p.Total {
				return true
			}
		}
		return total >= p.Total
	}

	lo, hi := 0, len(candidates)-1
	if !feasible(candidates[hi]) {
		return Solution{}, errors.New("core: no candidate objective is feasible")
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if feasible(candidates[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	lambda := candidates[lo]

	// Construct an allocation achieving λ: give each connection its largest
	// weight with F <= λ, then shed surplus units (shedding never raises the
	// objective because every F is monotone non-decreasing).
	weights := make([]int, n)
	total := 0
	for j := 0; j < n; j++ {
		weights[j] = maxWeightUnder(p.Funcs[j], mins[j], maxs[j], lambda)
		total += weights[j]
	}
	for j := 0; j < n && total > p.Total; j++ {
		shed := total - p.Total
		if room := weights[j] - mins[j]; shed > room {
			shed = room
		}
		weights[j] -= shed
		total -= shed
	}
	if total != p.Total {
		return Solution{}, errors.New("core: bisection failed to meet total after shedding")
	}
	return Solution{Weights: weights, Objective: objective(p.Funcs, weights), Iterations: iters}, nil
}

// maxWeightUnder returns the largest w in [minW, maxW] with f(w) <= lambda,
// or minW when even f(minW) exceeds lambda (the minimum must be allocated
// anyway). f is monotone non-decreasing, so binary search applies.
func maxWeightUnder(f Func, minW, maxW int, lambda float64) int {
	if f.Eval(maxW) <= lambda {
		return maxW
	}
	if f.Eval(minW) > lambda {
		return minW
	}
	lo, hi := minW, maxW // f(lo) <= lambda < f(hi)
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if f.Eval(mid) <= lambda {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// dedupFloats removes adjacent duplicates from a sorted slice, in place.
func dedupFloats(xs []float64) []float64 {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// SolveBrute finds the optimum by exhaustive enumeration. It exists purely as
// a reference oracle for property-based tests; its cost is exponential in the
// number of functions.
func SolveBrute(p Problem) (Solution, error) {
	mins, maxs, err := p.bounds()
	if err != nil {
		return Solution{}, err
	}
	n := len(p.Funcs)
	best := Solution{Objective: math.Inf(1)}
	weights := make([]int, n)
	iters := 0

	var recurse func(j, remaining int)
	recurse = func(j, remaining int) {
		if j == n-1 {
			if remaining < mins[j] || remaining > maxs[j] {
				return
			}
			weights[j] = remaining
			iters++
			if obj := objective(p.Funcs, weights); obj < best.Objective {
				best.Objective = obj
				best.Weights = append([]int(nil), weights...)
			}
			return
		}
		// Remaining capacity of the tail bounds the search.
		tailMin, tailMax := 0, 0
		for k := j + 1; k < n; k++ {
			tailMin += mins[k]
			tailMax += maxs[k]
		}
		for w := mins[j]; w <= maxs[j]; w++ {
			rest := remaining - w
			if rest < tailMin || rest > tailMax {
				continue
			}
			weights[j] = w
			recurse(j+1, rest)
		}
	}
	recurse(0, p.Total)
	if best.Weights == nil {
		return Solution{}, ErrInfeasible
	}
	best.Iterations = iters
	return best, nil
}
