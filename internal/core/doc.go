// Package core implements the paper's load-balancing model for ordered
// data-parallel regions: per-connection blocking-rate functions built from
// sparse, noisy samples of the TCP blocking rate (Section 5.1), a minimax
// separable resource-allocation optimizer that chooses allocation weights
// minimizing the largest predicted blocking rate (Section 5.2), agglomerative
// clustering of similar connections for data efficiency at high fan-out
// (Section 5.3), and the geometric decay mechanism that encourages
// re-exploration in dynamic environments (Section 5.4).
//
// The model is deliberately decoupled from any transport or runtime: callers
// feed (connection, blocking-rate) observations — however obtained — and read
// back discrete allocation weights in units of 0.1% that sum to exactly
// Units. Both the real TCP runtime (internal/runtime) and the discrete-event
// cluster simulator (internal/sim) drive the same Balancer.
package core
