package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// makeClassFunc builds a rate function whose knee sits at the given weight
// and whose blocking grows with the given slope past it, emulating a
// connection of a particular capacity class.
func makeClassFunc(t *testing.T, units, knee int, slope float64) *RateFunc {
	t.Helper()
	f := NewRateFunc(units, 1)
	mustObserve(t, f, knee, 0)
	if knee < units {
		mid := knee + (units-knee)/2
		mustObserve(t, f, mid, slope*float64(mid-knee))
		mustObserve(t, f, units, slope*float64(units-knee))
	}
	return f
}

func TestAlpha(t *testing.T) {
	a := Alpha(1000, 1e-6)
	// log(1000)/|log(1000*1e-6)| = log(1000)/|log(1e-3)| = 1.
	if math.Abs(a-1) > 1e-12 {
		t.Fatalf("Alpha(1000, 1e-6) = %v, want 1", a)
	}
	if got := Alpha(0, 0); got <= 0 {
		t.Fatalf("Alpha with defaults = %v, want positive", got)
	}
}

func TestDistanceProperties(t *testing.T) {
	alpha := Alpha(1000, DefaultDelta)
	mk := func(knee int, atKnee, atFull float64) FuncSummary {
		return FuncSummary{Knee: knee, AtKnee: atKnee, AtFull: atFull}
	}

	t.Run("identity", func(t *testing.T) {
		s := mk(500, 2, 90)
		if d := Distance(s, s, alpha, DefaultDelta); d != 0 {
			t.Fatalf("Distance(s,s) = %v, want 0", d)
		}
	})

	t.Run("symmetry", func(t *testing.T) {
		prop := func(k1, k2 uint16, a1, a2, f1, f2 float64) bool {
			s1 := mk(int(k1%1000)+1, math.Abs(a1), math.Abs(f1))
			s2 := mk(int(k2%1000)+1, math.Abs(a2), math.Abs(f2))
			d12 := Distance(s1, s2, alpha, DefaultDelta)
			d21 := Distance(s2, s1, alpha, DefaultDelta)
			return math.Abs(d12-d21) < 1e-12
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("non-negative", func(t *testing.T) {
		prop := func(k1, k2 uint16, a1, f1 float64) bool {
			s1 := mk(int(k1%1000)+1, math.Abs(a1), math.Abs(f1))
			s2 := mk(int(k2%1000)+1, math.Abs(a1)*2, math.Abs(f1)*3)
			return Distance(s1, s2, alpha, DefaultDelta) >= 0
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("large capacity gaps dominate", func(t *testing.T) {
		sFast := mk(800, 1, 5)
		sNear := mk(700, 1, 5)
		sSlow := mk(8, 1, 5)
		if dNear, dFar := Distance(sFast, sNear, alpha, DefaultDelta), Distance(sFast, sSlow, alpha, DefaultDelta); dNear >= dFar {
			t.Fatalf("near distance %v >= far distance %v", dNear, dFar)
		}
	})
}

func TestSummarize(t *testing.T) {
	f := makeClassFunc(t, 1000, 500, 0.1)
	s := Summarize(f, 0)
	if s.Knee <= 450 || s.Knee > 550 {
		t.Fatalf("knee = %d, want near 500", s.Knee)
	}
	if s.AtFull <= s.AtKnee {
		t.Fatalf("AtFull %v <= AtKnee %v, want increasing", s.AtFull, s.AtKnee)
	}
}

func TestAgglomerateThreeClasses(t *testing.T) {
	// Three capacity classes, four functions each, as in the Figure 12
	// experiment. Clustering must never mix classes.
	units := 1000
	classes := []struct {
		knee  int
		slope float64
	}{
		{10, 5.0},   // 100x load: blocks almost immediately, severely
		{150, 0.5},  // 5x load
		{700, 0.05}, // unloaded
	}
	var funcs []*RateFunc
	classOf := make(map[int]int)
	idx := 0
	for ci, c := range classes {
		for i := 0; i < 4; i++ {
			funcs = append(funcs, makeClassFunc(t, units, c.knee+i, c.slope))
			classOf[idx] = ci
			idx++
		}
	}
	alpha := Alpha(units, DefaultDelta)
	summaries := make([]FuncSummary, len(funcs))
	for i, f := range funcs {
		summaries[i] = Summarize(f, 0)
	}
	clusters := Agglomerate(len(funcs), func(i, j int) float64 {
		return Distance(summaries[i], summaries[j], alpha, DefaultDelta)
	}, DefaultClusterThreshold)

	if len(clusters) < 3 {
		t.Fatalf("got %d clusters, want at least 3 (one per class)", len(clusters))
	}
	for _, c := range clusters {
		for _, m := range c[1:] {
			if classOf[m] != classOf[c[0]] {
				t.Fatalf("cluster %v mixes classes %d and %d", c, classOf[c[0]], classOf[m])
			}
		}
	}
}

func TestAgglomerateEdgeCases(t *testing.T) {
	if got := Agglomerate(0, nil, 1); got != nil {
		t.Fatalf("Agglomerate(0) = %v, want nil", got)
	}
	one := Agglomerate(1, func(i, j int) float64 { return 0 }, 1)
	if len(one) != 1 || len(one[0]) != 1 || one[0][0] != 0 {
		t.Fatalf("Agglomerate(1) = %v, want [[0]]", one)
	}
	// Zero distances collapse everything into one cluster.
	all := Agglomerate(5, func(i, j int) float64 { return 0 }, 0.5)
	if len(all) != 1 || len(all[0]) != 5 {
		t.Fatalf("Agglomerate with zero distances = %v, want one cluster of 5", all)
	}
	// Infinite distances keep every item separate.
	none := Agglomerate(5, func(i, j int) float64 { return math.Inf(1) }, 0.5)
	if len(none) != 5 {
		t.Fatalf("Agglomerate with infinite distances = %v, want 5 singletons", none)
	}
}

func TestAgglomeratePartitionProperty(t *testing.T) {
	prop := func(seed int64, rawN uint8, threshold float64) bool {
		n := int(rawN%20) + 1
		rng := rand.New(rand.NewSource(seed))
		// Symmetric random distance matrix with zero diagonal.
		d := make([][]float64, n)
		for i := range d {
			d[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := rng.Float64() * 3
				d[i][j], d[j][i] = v, v
			}
		}
		clusters := Agglomerate(n, func(i, j int) float64 { return d[i][j] }, math.Abs(threshold))
		seen := make(map[int]bool, n)
		for _, c := range clusters {
			for _, m := range c {
				if m < 0 || m >= n || seen[m] {
					return false
				}
				seen[m] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeFuncsPoolsData(t *testing.T) {
	a := NewRateFunc(100, 1)
	b := NewRateFunc(100, 1)
	mustObserve(t, a, 30, 0)
	mustObserve(t, b, 60, 12)

	merged := MergeFuncs([]*RateFunc{a, b}, 100, 1)
	if got := merged.SampleCount(); got != 2 {
		t.Fatalf("merged SampleCount = %v, want 2", got)
	}
	if got := merged.Predict(60); math.Abs(got-12) > 1e-9 {
		t.Fatalf("merged Predict(60) = %v, want 12", got)
	}
	if got := merged.Predict(30); got != 0 {
		t.Fatalf("merged Predict(30) = %v, want 0", got)
	}
}
