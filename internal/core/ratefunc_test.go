package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRateFuncDefaults(t *testing.T) {
	f := NewRateFunc(0, 0)
	if f.Units() != DefaultUnits {
		t.Fatalf("units = %d, want %d", f.Units(), DefaultUnits)
	}
	if got := f.Predict(500); got != 0 {
		t.Fatalf("empty function Predict(500) = %v, want 0", got)
	}
	if got := f.Knee(0); got != DefaultUnits {
		t.Fatalf("empty function knee = %d, want %d", got, DefaultUnits)
	}
}

func TestRateFuncObserveValidation(t *testing.T) {
	f := NewRateFunc(100, 0.5)
	if err := f.Observe(-1, 1); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := f.Observe(101, 1); err == nil {
		t.Fatal("out-of-domain weight accepted")
	}
	if err := f.Observe(50, -3); err != nil {
		t.Fatalf("negative rate rejected: %v", err)
	}
	if got := f.Predict(50); got != 0 {
		t.Fatalf("negative rate not clamped: Predict(50) = %v", got)
	}
}

func TestRateFuncInterpolation(t *testing.T) {
	f := NewRateFunc(100, 1) // alpha=1: cells track last sample exactly
	mustObserve(t, f, 20, 0)
	mustObserve(t, f, 60, 10)

	if got := f.Predict(20); got != 0 {
		t.Fatalf("Predict(20) = %v, want 0 (observed)", got)
	}
	if got := f.Predict(60); math.Abs(got-10) > 1e-9 {
		t.Fatalf("Predict(60) = %v, want 10 (observed)", got)
	}
	if got := f.Predict(40); math.Abs(got-5) > 1e-9 {
		t.Fatalf("Predict(40) = %v, want 5 (midpoint interpolation)", got)
	}
	// Extrapolation continues the last slope: 10/(60-20) = 0.25 per unit.
	if got := f.Predict(100); math.Abs(got-20) > 1e-9 {
		t.Fatalf("Predict(100) = %v, want 20 (linear extrapolation)", got)
	}
	// Below the first positive point the function interpolates from (0,0).
	if got := f.Predict(10); got != 0 {
		t.Fatalf("Predict(10) = %v, want 0", got)
	}
}

func TestRateFuncSmoothing(t *testing.T) {
	f := NewRateFunc(100, 0.5)
	mustObserve(t, f, 50, 10)
	mustObserve(t, f, 50, 0)
	// EWMA with alpha 0.5: 0.5*0 + 0.5*10 = 5.
	if got := f.Predict(50); math.Abs(got-5) > 1e-9 {
		t.Fatalf("Predict(50) = %v, want 5 after smoothing", got)
	}
	if got := f.SampleCount(); got != 2 {
		t.Fatalf("SampleCount = %v, want 2", got)
	}
}

func TestRateFuncMonotoneRepair(t *testing.T) {
	// Empirical data violating monotonicity must be forced non-decreasing.
	f := NewRateFunc(100, 1)
	mustObserve(t, f, 30, 8)
	mustObserve(t, f, 70, 2) // violates monotonicity

	prev := -1.0
	for w := 0; w <= 100; w++ {
		v := f.Predict(w)
		if v < prev {
			t.Fatalf("prediction decreases at w=%d: %v < %v", w, v, prev)
		}
		prev = v
	}
	// With alpha=1 the consistency propagation snaps the contradicted
	// lower-weight cell to the fresh upper bound.
	if got := f.Predict(70); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Predict(70) = %v, want 2", got)
	}
	if got := f.Predict(30); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Predict(30) = %v, want 2 (reconciled with later observation)", got)
	}
}

func TestRateFuncPredictionsMonotoneProperty(t *testing.T) {
	prop := func(seed int64, nObs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		f := NewRateFunc(200, 0.5)
		for i := 0; i < int(nObs%40)+1; i++ {
			w := rng.Intn(201)
			r := rng.Float64() * 1000
			if err := f.Observe(w, r); err != nil {
				return false
			}
			if rng.Intn(4) == 0 {
				f.Decay(rng.Intn(201), 0.9)
			}
		}
		prev := math.Inf(-1)
		for w := 0; w <= 200; w++ {
			v := f.Predict(w)
			if v < 0 || v < prev-1e-9 {
				return false
			}
			if v > prev {
				prev = v
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRateFuncDecay(t *testing.T) {
	f := NewRateFunc(100, 1)
	mustObserve(t, f, 20, 4)
	mustObserve(t, f, 80, 100)

	before := f.Predict(80)
	f.Decay(20, 0.9)
	after := f.Predict(80)
	if math.Abs(after-before*0.9) > 1e-9 {
		t.Fatalf("decayed Predict(80) = %v, want %v", after, before*0.9)
	}
	// Cells at or below the current weight must be untouched.
	if got := f.Predict(20); math.Abs(got-4) > 1e-9 {
		t.Fatalf("Predict(20) = %v, want 4 (undecayed)", got)
	}
	// Repeated decay, combined with the monotone regression, makes the
	// function essentially flat beyond the current weight (Section 5.4).
	for i := 0; i < 200; i++ {
		f.Decay(20, 0.9)
	}
	if gap := f.Predict(80) - f.Predict(20); gap > 1e-3 {
		t.Fatalf("Predict(80)-Predict(20) = %v after repeated decay, want ~0 (flat tail)", gap)
	}
	if got := f.Predict(80); got >= before {
		t.Fatalf("Predict(80) = %v after repeated decay, want < initial %v", got, before)
	}
}

func TestRateFuncDecayIgnoresBadFactor(t *testing.T) {
	f := NewRateFunc(100, 1)
	mustObserve(t, f, 80, 100)
	f.Decay(0, 1.5)
	f.Decay(0, -0.1)
	if got := f.Predict(80); math.Abs(got-100) > 1e-9 {
		t.Fatalf("Predict(80) = %v, want 100 (bad factors ignored)", got)
	}
}

func TestRateFuncKnee(t *testing.T) {
	f := NewRateFunc(1000, 1)
	mustObserve(t, f, 400, 0)
	mustObserve(t, f, 500, 0)
	mustObserve(t, f, 600, 50)

	knee := f.Knee(0)
	if knee <= 500 || knee > 600 {
		t.Fatalf("knee = %d, want in (500, 600]", knee)
	}
	// A function that blocks severely at minimal load has a tiny knee.
	g := NewRateFunc(1000, 1)
	mustObserve(t, g, 1, 500)
	if got := g.Knee(0); got != 1 {
		t.Fatalf("severe function knee = %d, want 1", got)
	}
}

func TestRateFuncAbsorbCells(t *testing.T) {
	a := NewRateFunc(100, 1)
	mustObserve(t, a, 50, 10)
	b := NewRateFunc(100, 1)
	mustObserve(t, b, 50, 30)
	mustObserve(t, b, 50, 30) // count 2 at value 30

	a.AbsorbCells(b.RawCells())
	// Weighted mean: (10*1 + 30*2)/3 = 23.333...
	if got := a.Predict(50); math.Abs(got-70.0/3.0) > 1e-9 {
		t.Fatalf("Predict(50) = %v, want %v", got, 70.0/3.0)
	}
	if got := a.SampleCount(); got != 3 {
		t.Fatalf("SampleCount = %v, want 3", got)
	}

	// Out-of-domain cells are ignored.
	a.AbsorbCells(map[int]RawCell{500: {Value: 1, Count: 1}})
	if got := a.SampleCount(); got != 3 {
		t.Fatalf("SampleCount after bad absorb = %v, want 3", got)
	}
}

func TestRateFuncReset(t *testing.T) {
	f := NewRateFunc(100, 1)
	mustObserve(t, f, 50, 10)
	f.Reset()
	if got := f.Predict(100); got != 0 {
		t.Fatalf("Predict(100) = %v after reset, want 0", got)
	}
	if got := f.SampleCount(); got != 0 {
		t.Fatalf("SampleCount = %v after reset, want 0", got)
	}
}

func mustObserve(t *testing.T, f *RateFunc, w int, r float64) {
	t.Helper()
	if err := f.Observe(w, r); err != nil {
		t.Fatalf("Observe(%d, %v): %v", w, r, err)
	}
}
