package core

import (
	"fmt"
	"sort"
)

// elastic.go lets a region grow and shrink at runtime. The paper treats the
// worker set as fixed; real deployments scale parallel regions elastically,
// and the model extends naturally: a new connection starts with an empty
// function (predicting zero blocking everywhere), so the next rebalance
// explores it aggressively and the usual learning loop takes over; a removed
// connection's weight is folded back into the remainder immediately so the
// splitter never routes to a dead worker.

// AddConnection appends a new connection with an empty blocking-rate
// function and zero current weight, returning its index. Call Rebalance
// afterwards to assign it traffic. Static per-connection bounds, when
// configured, extend with [0, Units] for the new connection.
func (b *Balancer) AddConnection() int {
	j := b.cfg.Connections
	b.cfg.Connections++
	b.funcs = append(b.funcs, NewRateFunc(b.cfg.Units, b.cfg.SmoothingAlpha))
	b.weights = append(b.weights, 0)
	if b.cfg.MinWeight != nil {
		b.cfg.MinWeight = append(b.cfg.MinWeight, 0)
	}
	if b.cfg.MaxWeight != nil {
		b.cfg.MaxWeight = append(b.cfg.MaxWeight, b.cfg.Units)
	}
	b.clusters = nil
	return j
}

// RemoveConnection removes connection j (a departed or failed worker). Its
// current weight is redistributed across the remaining connections in
// proportion to their weights (evenly when all are zero), so the weight
// vector still sums to Units without waiting for the next rebalance.
// Connection indices above j shift down by one, matching the caller's
// renumbering of its connection slice.
func (b *Balancer) RemoveConnection(j int) error {
	if b.cfg.Connections <= 1 {
		return fmt.Errorf("core: cannot remove the last connection")
	}
	if j < 0 || j >= b.cfg.Connections {
		return fmt.Errorf("core: connection %d out of range [0,%d)", j, b.cfg.Connections)
	}
	freed := b.weights[j]
	b.funcs = append(b.funcs[:j], b.funcs[j+1:]...)
	b.weights = append(b.weights[:j], b.weights[j+1:]...)
	if b.cfg.MinWeight != nil {
		b.cfg.MinWeight = append(b.cfg.MinWeight[:j], b.cfg.MinWeight[j+1:]...)
	}
	if b.cfg.MaxWeight != nil {
		b.cfg.MaxWeight = append(b.cfg.MaxWeight[:j], b.cfg.MaxWeight[j+1:]...)
	}
	b.cfg.Connections--
	b.clusters = nil

	// Redistribute the freed units proportionally, remainder to the
	// largest holders first for determinism.
	total := 0
	for _, w := range b.weights {
		total += w
	}
	if freed == 0 {
		return nil
	}
	if total == 0 {
		even := EvenWeights(len(b.weights), freed)
		for i := range b.weights {
			b.weights[i] += even[i]
		}
		return nil
	}
	assigned := 0
	shares := make([]int, len(b.weights))
	for i, w := range b.weights {
		shares[i] = freed * w / total
		assigned += shares[i]
	}
	// Hand the rounding remainder out one unit at a time, largest current
	// holders first (ties by index), for a deterministic result.
	order := make([]int, len(b.weights))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, c int) bool {
		return b.weights[order[a]] > b.weights[order[c]]
	})
	for k := 0; assigned < freed; k++ {
		shares[order[k%len(order)]]++
		assigned++
	}
	for i, extra := range shares {
		b.weights[i] += extra
	}
	return nil
}
