package stats

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Point is a single (time, value) observation in a Series.
type Point struct {
	At    time.Duration
	Value float64
}

// Series is an append-only time series. It is not safe for concurrent use;
// callers that record from multiple goroutines must synchronize externally.
type Series struct {
	Name   string
	points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series {
	return &Series{Name: name}
}

// Record appends an observation.
func (s *Series) Record(at time.Duration, value float64) {
	s.points = append(s.points, Point{At: at, Value: value})
}

// Points returns a copy of the recorded observations.
func (s *Series) Points() []Point {
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Len returns the number of recorded observations.
func (s *Series) Len() int {
	return len(s.points)
}

// Last returns the most recent observation, or ok=false if empty.
func (s *Series) Last() (Point, bool) {
	if len(s.points) == 0 {
		return Point{}, false
	}
	return s.points[len(s.points)-1], true
}

// At returns the value in effect at time t: the value of the latest
// observation with At <= t. ok is false if no observation precedes t.
func (s *Series) At(t time.Duration) (float64, bool) {
	idx := sort.Search(len(s.points), func(i int) bool {
		return s.points[i].At > t
	})
	if idx == 0 {
		return 0, false
	}
	return s.points[idx-1].Value, true
}

// Mean returns the arithmetic mean of all values, or 0 if empty.
func (s *Series) Mean() float64 {
	if len(s.points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.points {
		sum += p.Value
	}
	return sum / float64(len(s.points))
}

// MeanSince returns the mean of values observed at or after t.
func (s *Series) MeanSince(t time.Duration) float64 {
	var sum float64
	var n int
	for _, p := range s.points {
		if p.At >= t {
			sum += p.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Max returns the maximum value, or 0 if empty.
func (s *Series) Max() float64 {
	var best float64
	for i, p := range s.points {
		if i == 0 || p.Value > best {
			best = p.Value
		}
	}
	return best
}

// Min returns the minimum value, or 0 if empty.
func (s *Series) Min() float64 {
	var best float64
	for i, p := range s.points {
		if i == 0 || p.Value < best {
			best = p.Value
		}
	}
	return best
}

// SeriesSet groups related series (e.g. one per connection) under one label,
// which is how the harness records per-connection allocation weights and
// blocking rates for the in-depth experiment figures.
type SeriesSet struct {
	Label  string
	series []*Series
	byName map[string]*Series
}

// NewSeriesSet returns an empty set with the given label.
func NewSeriesSet(label string) *SeriesSet {
	return &SeriesSet{Label: label, byName: make(map[string]*Series)}
}

// Get returns the series with the given name, creating it if necessary.
func (ss *SeriesSet) Get(name string) *Series {
	if s, ok := ss.byName[name]; ok {
		return s
	}
	s := NewSeries(name)
	ss.byName[name] = s
	ss.series = append(ss.series, s)
	return s
}

// All returns the series in creation order.
func (ss *SeriesSet) All() []*Series {
	out := make([]*Series, len(ss.series))
	copy(out, ss.series)
	return out
}

// Table renders the set as an aligned text table sampled at the given step,
// one row per sample time and one column per series. It is used by cmd/sbench
// to print figure data.
func (ss *SeriesSet) Table(step time.Duration) string {
	if len(ss.series) == 0 || step <= 0 {
		return ""
	}
	var maxAt time.Duration
	for _, s := range ss.series {
		if p, ok := s.Last(); ok && p.At > maxAt {
			maxAt = p.At
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10s", "t")
	for _, s := range ss.series {
		fmt.Fprintf(&b, " %14s", s.Name)
	}
	b.WriteByte('\n')
	for t := time.Duration(0); t <= maxAt; t += step {
		fmt.Fprintf(&b, "%10s", t.Truncate(time.Millisecond))
		for _, s := range ss.series {
			v, ok := s.At(t)
			if !ok {
				fmt.Fprintf(&b, " %14s", "-")
				continue
			}
			fmt.Fprintf(&b, " %14.4f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
