// Package stats provides the small statistical utilities the load balancer
// relies on: exponentially weighted moving averages for smoothing noisy
// blocking-rate samples, a sampler that converts cumulative counters into
// rates, running moment accumulators, and time-series recorders used by the
// experiment harness.
package stats

import "math"

// EWMA is an exponentially weighted moving average. The zero value is not
// ready for use; construct with NewEWMA. Alpha close to 1 weights recent
// samples heavily, alpha close to 0 smooths aggressively.
type EWMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEWMA returns an EWMA with the given smoothing factor. Alpha is clamped
// to (0, 1]; a non-positive or NaN alpha becomes 1 (no smoothing), which is
// the safest degradation because the balancer then simply tracks raw samples.
func NewEWMA(alpha float64) *EWMA {
	if math.IsNaN(alpha) || alpha <= 0 || alpha > 1 {
		alpha = 1
	}
	return &EWMA{alpha: alpha}
}

// Add folds a new sample into the average and returns the updated value. The
// first sample primes the average directly rather than decaying from zero so
// that early estimates are unbiased.
func (e *EWMA) Add(sample float64) float64 {
	if !e.primed {
		e.value = sample
		e.primed = true
		return e.value
	}
	e.value = e.alpha*sample + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average, or 0 if no samples have been added.
func (e *EWMA) Value() float64 {
	return e.value
}

// Primed reports whether at least one sample has been added.
func (e *EWMA) Primed() bool {
	return e.primed
}

// Reset discards all accumulated state.
func (e *EWMA) Reset() {
	e.value = 0
	e.primed = false
}

// Alpha returns the smoothing factor in use.
func (e *EWMA) Alpha() float64 {
	return e.alpha
}
