package stats_test

import (
	"fmt"
	"time"

	"streambalance/internal/stats"
)

// ExampleRateSampler shows the cumulative-counter differencing of Section 3,
// including the transport layer's periodic reset.
func ExampleRateSampler() {
	var s stats.RateSampler
	s.Sample(0, 0) // prime
	rate, _ := s.Sample(time.Second, 0.9)
	fmt.Printf("rate: %.1f s/s\n", rate)
	// Counter reset: the new value is the delta since the reset.
	rate, _ = s.Sample(2*time.Second, 0.5)
	fmt.Printf("rate after reset: %.1f s/s\n", rate)
	// Output:
	// rate: 0.9 s/s
	// rate after reset: 0.5 s/s
}

// ExampleEWMA smooths a noisy blocking-rate signal.
func ExampleEWMA() {
	e := stats.NewEWMA(0.5)
	for _, sample := range []float64{1.0, 0.0, 1.0, 0.0} {
		e.Add(sample)
	}
	fmt.Printf("%.3f\n", e.Value())
	// Output:
	// 0.375
}
