package stats

import "math"

// Welford accumulates running mean and variance using Welford's online
// algorithm, which is numerically stable for long runs. The zero value is
// ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds a sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of samples added.
func (w *Welford) Count() int {
	return w.n
}

// Mean returns the running mean, or 0 with no samples.
func (w *Welford) Mean() float64 {
	return w.mean
}

// Variance returns the sample variance (n-1 denominator), or 0 with fewer
// than two samples.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 {
	return math.Sqrt(w.Variance())
}

// CoefficientOfVariation returns stddev/mean, a scale-free stability measure
// used by tests to assert that blocking rates are flat over time for a fixed
// allocation (Figure 5). It returns 0 when the mean is 0.
func (w *Welford) CoefficientOfVariation() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.StdDev() / math.Abs(w.mean)
}

// Reset discards all accumulated state.
func (w *Welford) Reset() {
	*w = Welford{}
}
