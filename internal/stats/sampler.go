package stats

import "time"

// RateSampler converts a cumulative, monotonically increasing counter into a
// rate by differencing successive samples, exactly as the paper derives the
// blocking rate from the cumulative blocking time (Section 3, Figure 2). The
// data transport layer periodically resets its counters; a sample smaller
// than its predecessor is interpreted as a reset and the new value is treated
// as the delta since the reset.
type RateSampler struct {
	lastValue float64
	lastAt    time.Duration
	primed    bool
}

// Sample records the cumulative counter value observed at time now (an
// offset from an arbitrary epoch, e.g. experiment start) and returns the
// estimated rate (delta value / delta time) since the previous sample. The
// first sample primes the sampler and returns ok=false. A non-positive time
// step also returns ok=false because no rate can be derived from it.
func (s *RateSampler) Sample(now time.Duration, value float64) (rate float64, ok bool) {
	if !s.primed {
		s.lastValue = value
		s.lastAt = now
		s.primed = true
		return 0, false
	}
	dt := now - s.lastAt
	if dt <= 0 {
		return 0, false
	}
	delta := value - s.lastValue
	if delta < 0 {
		// Counter reset by the transport layer: the cumulative value
		// restarted from zero, so the new reading is the delta itself.
		delta = value
	}
	s.lastValue = value
	s.lastAt = now
	return delta / dt.Seconds(), true
}

// Reset discards sampler state; the next Sample call primes it again.
func (s *RateSampler) Reset() {
	s.lastValue = 0
	s.lastAt = 0
	s.primed = false
}

// Primed reports whether the sampler has observed at least one sample.
func (s *RateSampler) Primed() bool {
	return s.primed
}
