package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Primed() {
		t.Fatal("fresh EWMA is primed")
	}
	if got := e.Add(10); got != 10 {
		t.Fatalf("first sample = %v, want 10 (priming)", got)
	}
	if got := e.Add(0); got != 5 {
		t.Fatalf("second sample = %v, want 5", got)
	}
	if got := e.Value(); got != 5 {
		t.Fatalf("Value = %v, want 5", got)
	}
	e.Reset()
	if e.Primed() || e.Value() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestEWMABadAlpha(t *testing.T) {
	for _, alpha := range []float64{-1, 0, 1.5, math.NaN()} {
		e := NewEWMA(alpha)
		if e.Alpha() != 1 {
			t.Fatalf("NewEWMA(%v).Alpha() = %v, want clamp to 1", alpha, e.Alpha())
		}
	}
}

func TestEWMAConvergesProperty(t *testing.T) {
	// Feeding a constant must converge to that constant.
	prop := func(v float64, n uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		e := NewEWMA(0.3)
		for i := 0; i < int(n%50)+10; i++ {
			e.Add(v)
		}
		return math.Abs(e.Value()-v) <= 1e-9*math.Max(1, math.Abs(v))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRateSampler(t *testing.T) {
	var s RateSampler
	if _, ok := s.Sample(0, 100); ok {
		t.Fatal("priming sample returned a rate")
	}
	rate, ok := s.Sample(time.Second, 350)
	if !ok || math.Abs(rate-250) > 1e-9 {
		t.Fatalf("rate = %v ok=%v, want 250 true", rate, ok)
	}
	// Counter reset: value drops, new value is the delta since reset.
	rate, ok = s.Sample(2*time.Second, 40)
	if !ok || math.Abs(rate-40) > 1e-9 {
		t.Fatalf("rate after reset = %v ok=%v, want 40 true", rate, ok)
	}
	// Zero time step yields no rate.
	if _, ok := s.Sample(2*time.Second, 50); ok {
		t.Fatal("zero dt produced a rate")
	}
	s.Reset()
	if s.Primed() {
		t.Fatal("Reset did not clear primed state")
	}
}

func TestRateSamplerSteadyRateProperty(t *testing.T) {
	// A counter increasing at constant slope yields that slope at every
	// sample after the first, regardless of sampling cadence.
	prop := func(slope float64, steps uint8) bool {
		if math.IsNaN(slope) || math.IsInf(slope, 0) {
			return true
		}
		slope = math.Abs(math.Mod(slope, 1e6))
		var s RateSampler
		cum := 0.0
		for i := 0; i <= int(steps%20)+2; i++ {
			at := time.Duration(i) * 100 * time.Millisecond
			cum = slope * at.Seconds()
			rate, ok := s.Sample(at, cum)
			if i == 0 {
				if ok {
					return false
				}
				continue
			}
			if !ok || math.Abs(rate-slope) > 1e-6*math.Max(1, slope) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("Count = %d, want 8", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	// Sample variance of the classic dataset: 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if w.CoefficientOfVariation() <= 0 {
		t.Fatal("CoV should be positive for non-constant data")
	}
	w.Reset()
	if w.Count() != 0 || w.Variance() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestWelfordConstantSeries(t *testing.T) {
	var w Welford
	for i := 0; i < 100; i++ {
		w.Add(42)
	}
	if w.Variance() != 0 || w.StdDev() != 0 || w.CoefficientOfVariation() != 0 {
		t.Fatalf("constant series: var=%v sd=%v cov=%v, want zeros",
			w.Variance(), w.StdDev(), w.CoefficientOfVariation())
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("conn1")
	if _, ok := s.Last(); ok {
		t.Fatal("empty series has a last point")
	}
	s.Record(0, 1)
	s.Record(time.Second, 3)
	s.Record(2*time.Second, 5)

	if got := s.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if got := s.Mean(); got != 3 {
		t.Fatalf("Mean = %v, want 3", got)
	}
	if got := s.MeanSince(time.Second); got != 4 {
		t.Fatalf("MeanSince(1s) = %v, want 4", got)
	}
	if got := s.Max(); got != 5 {
		t.Fatalf("Max = %v, want 5", got)
	}
	if got := s.Min(); got != 1 {
		t.Fatalf("Min = %v, want 1", got)
	}
	if v, ok := s.At(1500 * time.Millisecond); !ok || v != 3 {
		t.Fatalf("At(1.5s) = %v %v, want 3 true", v, ok)
	}
	if _, ok := s.At(-time.Second); ok {
		t.Fatal("At before first point should not resolve")
	}
	last, ok := s.Last()
	if !ok || last.Value != 5 {
		t.Fatalf("Last = %+v %v, want value 5", last, ok)
	}
	pts := s.Points()
	pts[0].Value = 99
	if s.Mean() == 99 {
		t.Fatal("Points did not return a copy")
	}
}

func TestSeriesSet(t *testing.T) {
	ss := NewSeriesSet("weights")
	a := ss.Get("a")
	b := ss.Get("b")
	if ss.Get("a") != a {
		t.Fatal("Get did not return the existing series")
	}
	a.Record(0, 1)
	a.Record(time.Second, 2)
	b.Record(0, 10)

	all := ss.All()
	if len(all) != 2 || all[0].Name != "a" || all[1].Name != "b" {
		t.Fatalf("All = %v, want [a b]", []string{all[0].Name, all[1].Name})
	}
	table := ss.Table(time.Second)
	if table == "" {
		t.Fatal("Table returned empty output")
	}
	if ss.Table(0) != "" {
		t.Fatal("Table with zero step should be empty")
	}
}
