package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Tuple is the unit of data flowing through a parallel region: a sequence
// number assigned by the splitter (which the merger uses to restore order)
// and an opaque payload, optionally tagged with a grouping key.
type Tuple struct {
	Seq uint64

	// Key groups tuples for keyed routing and per-key combining. Zero means
	// unkeyed: the tuple encodes in the legacy frame format, and no key
	// router or combiner ever touches it (keyed workload generators emit
	// keys >= 1).
	Key uint64

	// Solo marks a keyed tuple that must not be absorbed into a combined
	// carrier. The splitter sets it on every recovery replay, so combine
	// groups only ever form from first transmissions — which keeps groups
	// disjoint across crashes and is what makes combining safe under the
	// merger's exactly-once release (see DESIGN, "Keyed routing").
	Solo bool

	// Absorbed carries the sequence numbers a worker-side combiner folded
	// into this carrier tuple, as len/8 little-endian uint64s. The merger
	// releases the carrier once and then advances its watermark silently
	// through the absorbed seqs. Raw bytes rather than []uint64 so receivers
	// can carve it from pooled blocks alongside the payload, keeping the
	// keyed receive path allocation-free.
	Absorbed []byte

	Payload []byte
}

// AbsorbedCount returns how many sequence numbers this carrier absorbed.
func (t Tuple) AbsorbedCount() int { return len(t.Absorbed) / 8 }

// AbsorbedSeq returns the i-th absorbed sequence number.
func (t Tuple) AbsorbedSeq(i int) uint64 {
	return binary.LittleEndian.Uint64(t.Absorbed[i*8:])
}

// AppendAbsorbed appends one absorbed sequence number to an Absorbed buffer
// in wire encoding (the combiner's accumulation helper).
func AppendAbsorbed(dst []byte, seq uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, seq)
}

// MaxFrameSize bounds a single encoded tuple, protecting receivers from
// corrupt or hostile length prefixes.
const MaxFrameSize = 16 << 20

// frameHeaderSize is the wire overhead per unkeyed tuple: a 4-byte length
// word (covering the sequence number and payload) followed by the 8-byte
// sequence number.
const frameHeaderSize = 4 + 8

// Flag bits carried in the high bits of the 4-byte length word. A frame body
// is bounded by MaxFrameSize (2^24 bytes), so bits 25-31 of the length word
// are never used by the length itself; the keyed extension claims the top
// three. Unkeyed tuples set no flag bits and stay byte-identical to the
// pre-keyed wire format, so mixed-version peers interoperate on unkeyed
// streams.
const (
	flagKeyed    = 1 << 31 // an 8-byte key follows the sequence number
	flagCombined = 1 << 30 // u32 count + count 8-byte absorbed seqs follow the key
	flagSolo     = 1 << 29 // do-not-combine marker (set on recovery replays)
	flagMask     = flagKeyed | flagCombined | flagSolo
)

// maxFixedHeader is the largest fixed-size frame prefix: length word,
// sequence number, key, absorbed count.
const maxFixedHeader = 4 + 8 + 8 + 4

// ErrFrameTooLarge is returned when a frame exceeds MaxFrameSize.
var ErrFrameTooLarge = errors.New("transport: frame exceeds maximum size")

// frameExtra returns the keyed encoding overhead (key and absorbed fields)
// and the flag bits for t, rejecting tuples that cannot encode: absorbed
// seqs on an unkeyed tuple would be silently dropped, and a misaligned
// Absorbed buffer is corrupt.
func frameExtra(t Tuple) (extra int, flags uint32, err error) {
	if t.Key == 0 {
		if len(t.Absorbed) != 0 {
			return 0, 0, errors.New("transport: absorbed seqs on unkeyed tuple")
		}
		return 0, 0, nil
	}
	extra = 8
	flags = flagKeyed
	if t.Solo {
		flags |= flagSolo
	}
	if n := len(t.Absorbed); n != 0 {
		if n%8 != 0 {
			return 0, 0, fmt.Errorf("transport: absorbed buffer %d bytes, want a multiple of 8", n)
		}
		extra += 4 + n
		flags |= flagCombined
	}
	return extra, flags, nil
}

// AppendFrame encodes the tuple onto dst and returns the extended slice. The
// wire format is little-endian: uint32 length word (body length in the low
// bits, keyed-extension flags in the top three), uint64 sequence number,
// then — when the matching flag is set — the 8-byte key, a uint32 absorbed
// count followed by that many 8-byte absorbed sequence numbers, and finally
// the payload.
func AppendFrame(dst []byte, t Tuple) ([]byte, error) {
	dst, err := AppendFrameHeader(dst, t)
	if err != nil {
		return dst, err
	}
	return append(dst, t.Payload...), nil
}

// AppendFrameHeader appends everything except the payload bytes for a tuple
// whose payload travels separately — the zero-copy batch encode path, where
// a large payload is handed to writev as its own iovec instead of being
// copied into the frame buffer. The length word still covers the payload.
func AppendFrameHeader(dst []byte, t Tuple) ([]byte, error) {
	extra, flags, err := frameExtra(t)
	if err != nil {
		return dst, err
	}
	body := 8 + extra + len(t.Payload)
	if body > MaxFrameSize {
		return dst, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, body)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(body)|flags)
	dst = binary.LittleEndian.AppendUint64(dst, t.Seq)
	if flags&flagKeyed != 0 {
		dst = binary.LittleEndian.AppendUint64(dst, t.Key)
	}
	if flags&flagCombined != 0 {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(t.Absorbed)/8))
		dst = append(dst, t.Absorbed...)
	}
	return dst, nil
}

// AppendBatch encodes the tuples onto dst in order. A batch is simply the
// concatenation of its tuples' frames — there is no batch header on the
// wire — so receivers need no batch awareness and batched and per-tuple
// senders interoperate on one connection.
func AppendBatch(dst []byte, ts []Tuple) ([]byte, error) {
	for i := range ts {
		var err error
		dst, err = AppendFrame(dst, ts[i])
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// FrameLen returns the encoded size of a tuple.
func FrameLen(t Tuple) int {
	extra, _, _ := frameExtra(t)
	return frameHeaderSize + extra + len(t.Payload)
}

// decodeLengthWord splits a frame's length word into the body length, the
// flag bits and the fixed header size that follows the word (sequence
// number, optional key, optional absorbed count), enforcing the flag and
// length invariants shared by the blocking and buffered decode paths.
func decodeLengthWord(word uint32) (body uint32, flags uint32, fixed int, err error) {
	flags = word & flagMask
	body = word &^ flagMask
	if flags != 0 && flags&flagKeyed == 0 {
		return 0, 0, 0, fmt.Errorf("transport: frame flags %#x without key flag", word>>24)
	}
	fixed = 8
	if flags&flagKeyed != 0 {
		fixed += 8
	}
	if flags&flagCombined != 0 {
		fixed += 4
	}
	if int(body) < fixed {
		return 0, 0, 0, fmt.Errorf("transport: frame body %d bytes, want >= %d", body, fixed)
	}
	if body > MaxFrameSize {
		return 0, 0, 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, body)
	}
	return body, flags, fixed, nil
}

// Receiver decodes tuples from a stream written with AppendFrame.
type Receiver struct {
	r *bufio.Reader

	// src is the wrapped stream, kept so Close can tear it down when it is
	// closable (a net.Conn); a non-closable reader makes Close a no-op.
	src io.Reader

	// scratch backs payloads decoded by the unbatched Receive path. It is a
	// plain amortized arena, not pool-recycled: Receive has no release hook,
	// so its payloads stay valid until the garbage collector decides the
	// caller dropped them. Steady-state Receive therefore allocates only when
	// the arena fills (once per recvBlockCap bytes of payload), which rounds
	// to 0 allocs/op.
	scratch []byte

	// err holds a stream error discovered mid-drain by ReceiveBatch/Drain
	// after complete tuples were already decoded; it is surfaced on the next
	// receive call instead.
	err error

	// hdr is the reusable read target for fixed frame-header fields. A
	// function-local array would escape through the io.ReadFull interface
	// call and cost a heap allocation per decoded tuple.
	hdr [maxFixedHeader]byte
}

// NewReceiver wraps a stream in a buffered tuple decoder.
func NewReceiver(r io.Reader) *Receiver {
	return &Receiver{r: bufio.NewReaderSize(r, 64<<10), src: r}
}

// Close closes the underlying stream when it is closable (an in-flight
// blocking read then fails, unblocking ReceiveBatch) and is a no-op
// otherwise.
func (rc *Receiver) Close() error {
	if c, ok := rc.src.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// scratchCarve reserves n bytes in the receiver's scratch arena, growing it
// with a fresh block when full. Oversized payloads get a dedicated exact
// allocation so they do not inflate the arena.
func (rc *Receiver) scratchCarve(n int) []byte {
	if n > recvBlockCap {
		return make([]byte, n)
	}
	if cap(rc.scratch)-len(rc.scratch) < n {
		rc.scratch = make([]byte, 0, recvBlockCap)
	}
	off := len(rc.scratch)
	rc.scratch = rc.scratch[:off+n]
	return rc.scratch[off : off+n : off+n]
}

// carveFor reserves n bytes from ref's pooled blocks (the batch path) or the
// Receive arena (unbatched).
func (rc *Receiver) carveFor(ref *BlockRef, n int) []byte {
	if ref != nil {
		return ref.carve(n)
	}
	return rc.scratchCarve(n)
}

// decodeFixed parses the fixed header fields already read into rc.hdr —
// sequence number, optional key, optional absorbed count — and returns the
// tuple skeleton plus how many absorbed bytes still follow on the wire.
func (rc *Receiver) decodeFixed(flags, body uint32, fixed int) (Tuple, int, error) {
	t := Tuple{Seq: binary.LittleEndian.Uint64(rc.hdr[4:12])}
	off := 12
	if flags&flagKeyed != 0 {
		t.Key = binary.LittleEndian.Uint64(rc.hdr[off : off+8])
		off += 8
		t.Solo = flags&flagSolo != 0
	}
	absorbed := 0
	if flags&flagCombined != 0 {
		count := binary.LittleEndian.Uint32(rc.hdr[off : off+4])
		absorbed = int(count) * 8
		if count == 0 || absorbed > int(body)-fixed {
			return Tuple{}, 0, fmt.Errorf("transport: absorbed count %d invalid for frame body %d", count, body)
		}
	}
	return t, absorbed, nil
}

// Receive reads the next tuple. It returns io.EOF at a clean end of stream
// and io.ErrUnexpectedEOF when the stream ends mid-frame. The payload is
// carved from an internal arena the caller owns from then on — valid
// indefinitely, no release required.
func (rc *Receiver) Receive() (Tuple, error) {
	if rc.err != nil {
		err := rc.err
		rc.err = nil
		return Tuple{}, err
	}
	return rc.receive(nil)
}

// receive decodes one frame, blocking until it is complete. Payload and
// absorbed bytes are carved from ref's pooled blocks when ref is non-nil
// (the batch path) and from the Receive arena otherwise. Dispatching on the
// pointer rather than a passed-in carve func keeps the hot path closure-free:
// a method value here would cost one heap allocation per received tuple.
func (rc *Receiver) receive(ref *BlockRef) (Tuple, error) {
	if _, err := io.ReadFull(rc.r, rc.hdr[:4]); err != nil {
		if errors.Is(err, io.EOF) {
			return Tuple{}, io.EOF
		}
		return Tuple{}, fmt.Errorf("transport: read frame length: %w", err)
	}
	word := binary.LittleEndian.Uint32(rc.hdr[:4])
	body, flags, fixed, err := decodeLengthWord(word)
	if err != nil {
		return Tuple{}, err
	}
	if _, err := io.ReadFull(rc.r, rc.hdr[4:4+fixed]); err != nil {
		return Tuple{}, fmt.Errorf("transport: read frame header: %w", err)
	}
	t, absorbed, err := rc.decodeFixed(flags, body, fixed)
	if err != nil {
		return Tuple{}, err
	}
	if absorbed > 0 {
		t.Absorbed = rc.carveFor(ref, absorbed)
		if _, err := io.ReadFull(rc.r, t.Absorbed); err != nil {
			return Tuple{}, fmt.Errorf("transport: read absorbed seqs: %w", err)
		}
	}
	if payload := int(body) - fixed - absorbed; payload > 0 {
		t.Payload = rc.carveFor(ref, payload)
		if _, err := io.ReadFull(rc.r, t.Payload); err != nil {
			return Tuple{}, fmt.Errorf("transport: read payload: %w", err)
		}
	}
	return t, nil
}
