package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Tuple is the unit of data flowing through a parallel region: a sequence
// number assigned by the splitter (which the merger uses to restore order)
// and an opaque payload.
type Tuple struct {
	Seq     uint64
	Payload []byte
}

// MaxFrameSize bounds a single encoded tuple, protecting receivers from
// corrupt or hostile length prefixes.
const MaxFrameSize = 16 << 20

// frameHeaderSize is the wire overhead per tuple: a 4-byte length (covering
// the sequence number and payload) followed by the 8-byte sequence number.
const frameHeaderSize = 4 + 8

// ErrFrameTooLarge is returned when a frame exceeds MaxFrameSize.
var ErrFrameTooLarge = errors.New("transport: frame exceeds maximum size")

// AppendFrame encodes the tuple onto dst and returns the extended slice. The
// wire format is little-endian: uint32 length (seq + payload bytes), uint64
// sequence number, payload.
func AppendFrame(dst []byte, t Tuple) ([]byte, error) {
	dst, err := AppendFrameHeader(dst, t.Seq, len(t.Payload))
	if err != nil {
		return dst, err
	}
	return append(dst, t.Payload...), nil
}

// AppendFrameHeader appends only the frame header (length prefix and
// sequence number) for a tuple whose payload travels separately — the
// zero-copy batch encode path, where a large payload is handed to writev as
// its own iovec instead of being copied into the frame buffer.
func AppendFrameHeader(dst []byte, seq uint64, payloadLen int) ([]byte, error) {
	body := 8 + payloadLen
	if payloadLen < 0 || body > MaxFrameSize {
		return dst, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, body)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(body))
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	return dst, nil
}

// AppendBatch encodes the tuples onto dst in order. A batch is simply the
// concatenation of its tuples' frames — there is no batch header on the
// wire — so receivers need no batch awareness and batched and per-tuple
// senders interoperate on one connection.
func AppendBatch(dst []byte, ts []Tuple) ([]byte, error) {
	for i := range ts {
		var err error
		dst, err = AppendFrame(dst, ts[i])
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// FrameLen returns the encoded size of a tuple.
func FrameLen(t Tuple) int {
	return frameHeaderSize + len(t.Payload)
}

// Receiver decodes tuples from a stream written with AppendFrame.
type Receiver struct {
	r *bufio.Reader

	// src is the wrapped stream, kept so Close can tear it down when it is
	// closable (a net.Conn); a non-closable reader makes Close a no-op.
	src io.Reader

	// scratch backs payloads decoded by the unbatched Receive path. It is a
	// plain amortized arena, not pool-recycled: Receive has no release hook,
	// so its payloads stay valid until the garbage collector decides the
	// caller dropped them. Steady-state Receive therefore allocates only when
	// the arena fills (once per recvBlockCap bytes of payload), which rounds
	// to 0 allocs/op.
	scratch []byte

	// err holds a stream error discovered mid-drain by ReceiveBatch/Drain
	// after complete tuples were already decoded; it is surfaced on the next
	// receive call instead.
	err error

	// hdr is the reusable read target for frame headers. A function-local
	// array would escape through the io.ReadFull interface call and cost a
	// heap allocation per decoded tuple.
	hdr [frameHeaderSize]byte
}

// NewReceiver wraps a stream in a buffered tuple decoder.
func NewReceiver(r io.Reader) *Receiver {
	return &Receiver{r: bufio.NewReaderSize(r, 64<<10), src: r}
}

// Close closes the underlying stream when it is closable (an in-flight
// blocking read then fails, unblocking ReceiveBatch) and is a no-op
// otherwise.
func (rc *Receiver) Close() error {
	if c, ok := rc.src.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// scratchCarve reserves n bytes in the receiver's scratch arena, growing it
// with a fresh block when full. Oversized payloads get a dedicated exact
// allocation so they do not inflate the arena.
func (rc *Receiver) scratchCarve(n int) []byte {
	if n > recvBlockCap {
		return make([]byte, n)
	}
	if cap(rc.scratch)-len(rc.scratch) < n {
		rc.scratch = make([]byte, 0, recvBlockCap)
	}
	off := len(rc.scratch)
	rc.scratch = rc.scratch[:off+n]
	return rc.scratch[off : off+n : off+n]
}

// Receive reads the next tuple. It returns io.EOF at a clean end of stream
// and io.ErrUnexpectedEOF when the stream ends mid-frame. The payload is
// carved from an internal arena the caller owns from then on — valid
// indefinitely, no release required.
func (rc *Receiver) Receive() (Tuple, error) {
	if rc.err != nil {
		err := rc.err
		rc.err = nil
		return Tuple{}, err
	}
	return rc.receive(nil)
}

// receive decodes one frame, blocking until it is complete. The payload is
// carved from ref's pooled blocks when ref is non-nil (the batch path) and
// from the Receive arena otherwise. Dispatching on the pointer rather than a
// passed-in carve func keeps the hot path closure-free: a method value here
// would cost one heap allocation per received tuple.
func (rc *Receiver) receive(ref *BlockRef) (Tuple, error) {
	if _, err := io.ReadFull(rc.r, rc.hdr[:4]); err != nil {
		if errors.Is(err, io.EOF) {
			return Tuple{}, io.EOF
		}
		return Tuple{}, fmt.Errorf("transport: read frame length: %w", err)
	}
	body := binary.LittleEndian.Uint32(rc.hdr[:4])
	if body < 8 {
		return Tuple{}, fmt.Errorf("transport: frame body %d bytes, want >= 8", body)
	}
	if body > MaxFrameSize {
		return Tuple{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, body)
	}
	if _, err := io.ReadFull(rc.r, rc.hdr[4:12]); err != nil {
		return Tuple{}, fmt.Errorf("transport: read sequence: %w", err)
	}
	t := Tuple{Seq: binary.LittleEndian.Uint64(rc.hdr[4:12])}
	if payload := int(body) - 8; payload > 0 {
		if ref != nil {
			t.Payload = ref.carve(payload)
		} else {
			t.Payload = rc.scratchCarve(payload)
		}
		if _, err := io.ReadFull(rc.r, t.Payload); err != nil {
			return Tuple{}, fmt.Errorf("transport: read payload: %w", err)
		}
	}
	return t, nil
}
