package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Tuple is the unit of data flowing through a parallel region: a sequence
// number assigned by the splitter (which the merger uses to restore order)
// and an opaque payload.
type Tuple struct {
	Seq     uint64
	Payload []byte
}

// MaxFrameSize bounds a single encoded tuple, protecting receivers from
// corrupt or hostile length prefixes.
const MaxFrameSize = 16 << 20

// frameHeaderSize is the wire overhead per tuple: a 4-byte length (covering
// the sequence number and payload) followed by the 8-byte sequence number.
const frameHeaderSize = 4 + 8

// ErrFrameTooLarge is returned when a frame exceeds MaxFrameSize.
var ErrFrameTooLarge = errors.New("transport: frame exceeds maximum size")

// AppendFrame encodes the tuple onto dst and returns the extended slice. The
// wire format is little-endian: uint32 length (seq + payload bytes), uint64
// sequence number, payload.
func AppendFrame(dst []byte, t Tuple) ([]byte, error) {
	dst, err := AppendFrameHeader(dst, t.Seq, len(t.Payload))
	if err != nil {
		return dst, err
	}
	return append(dst, t.Payload...), nil
}

// AppendFrameHeader appends only the frame header (length prefix and
// sequence number) for a tuple whose payload travels separately — the
// zero-copy batch encode path, where a large payload is handed to writev as
// its own iovec instead of being copied into the frame buffer.
func AppendFrameHeader(dst []byte, seq uint64, payloadLen int) ([]byte, error) {
	body := 8 + payloadLen
	if payloadLen < 0 || body > MaxFrameSize {
		return dst, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, body)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(body))
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	return dst, nil
}

// AppendBatch encodes the tuples onto dst in order. A batch is simply the
// concatenation of its tuples' frames — there is no batch header on the
// wire — so receivers need no batch awareness and batched and per-tuple
// senders interoperate on one connection.
func AppendBatch(dst []byte, ts []Tuple) ([]byte, error) {
	for i := range ts {
		var err error
		dst, err = AppendFrame(dst, ts[i])
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// FrameLen returns the encoded size of a tuple.
func FrameLen(t Tuple) int {
	return frameHeaderSize + len(t.Payload)
}

// Receiver decodes tuples from a stream written with AppendFrame.
type Receiver struct {
	r *bufio.Reader
}

// NewReceiver wraps a stream in a buffered tuple decoder.
func NewReceiver(r io.Reader) *Receiver {
	return &Receiver{r: bufio.NewReaderSize(r, 64<<10)}
}

// Receive reads the next tuple. It returns io.EOF at a clean end of stream
// and io.ErrUnexpectedEOF when the stream ends mid-frame.
func (rc *Receiver) Receive() (Tuple, error) {
	var header [4]byte
	if _, err := io.ReadFull(rc.r, header[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Tuple{}, io.EOF
		}
		return Tuple{}, fmt.Errorf("transport: read frame length: %w", err)
	}
	body := binary.LittleEndian.Uint32(header[:])
	if body < 8 {
		return Tuple{}, fmt.Errorf("transport: frame body %d bytes, want >= 8", body)
	}
	if body > MaxFrameSize {
		return Tuple{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, body)
	}
	var seqBuf [8]byte
	if _, err := io.ReadFull(rc.r, seqBuf[:]); err != nil {
		return Tuple{}, fmt.Errorf("transport: read sequence: %w", err)
	}
	t := Tuple{Seq: binary.LittleEndian.Uint64(seqBuf[:])}
	if payload := int(body) - 8; payload > 0 {
		t.Payload = make([]byte, payload)
		if _, err := io.ReadFull(rc.r, t.Payload); err != nil {
			return Tuple{}, fmt.Errorf("transport: read payload: %w", err)
		}
	}
	return t, nil
}
