package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
)

// encodeFrames builds a wire image of n tuples with distinctive payloads.
func encodeFrames(t *testing.T, n int) ([]Tuple, []byte) {
	t.Helper()
	ts := make([]Tuple, n)
	for i := range ts {
		ts[i] = Tuple{Seq: uint64(i), Payload: bytes.Repeat([]byte{byte(i + 1)}, (i*37)%300)}
	}
	wire, err := AppendBatch(nil, ts)
	if err != nil {
		t.Fatal(err)
	}
	return ts, wire
}

func TestReceiveBatchDrainsBufferedFrames(t *testing.T) {
	const n = 20
	ts, wire := encodeFrames(t, n)
	rc := NewReceiver(bytes.NewReader(wire))

	var got []Tuple
	var batch []Tuple
	for len(got) < n {
		var ref *BlockRef
		var err error
		batch, ref, err = rc.ReceiveBatch(batch, 7)
		if err != nil {
			t.Fatalf("ReceiveBatch after %d tuples: %v", len(got), err)
		}
		if len(batch) == 0 || len(batch) > 7 {
			t.Fatalf("batch of %d tuples, want 1..7", len(batch))
		}
		if ref.Refs() != int64(len(batch)) {
			t.Fatalf("ref holds %d references for %d tuples", ref.Refs(), len(batch))
		}
		for _, tp := range batch {
			// Copy: the payload dies with the ref release below.
			got = append(got, Tuple{Seq: tp.Seq, Payload: append([]byte(nil), tp.Payload...)})
		}
		ref.ReleaseN(len(batch))
		if ref.Refs() != 0 {
			t.Fatalf("ref holds %d references after full release", ref.Refs())
		}
	}
	for i := range ts {
		if got[i].Seq != ts[i].Seq || !bytes.Equal(got[i].Payload, ts[i].Payload) {
			t.Fatalf("tuple %d changed through ReceiveBatch", i)
		}
	}
	if _, _, err := rc.ReceiveBatch(batch, 7); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF at end of stream, got %v", err)
	}
}

func TestReceiveBatchMaxOneMatchesReceive(t *testing.T) {
	// max=1 is the per-tuple compatibility mode: every call returns exactly
	// one tuple, in stream order, just like Receive.
	const n = 12
	ts, wire := encodeFrames(t, n)
	rc := NewReceiver(bytes.NewReader(wire))
	var batch []Tuple
	for i := 0; i < n; i++ {
		var ref *BlockRef
		var err error
		batch, ref, err = rc.ReceiveBatch(batch, 1)
		if err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		if len(batch) != 1 {
			t.Fatalf("tuple %d: batch of %d with max=1", i, len(batch))
		}
		if batch[0].Seq != ts[i].Seq || !bytes.Equal(batch[0].Payload, ts[i].Payload) {
			t.Fatalf("tuple %d diverges from the per-tuple stream", i)
		}
		ref.Release()
	}
}

func TestReceiveBatchReleasePerTupleInAnyOrder(t *testing.T) {
	// The merger releases references one by one as tuples leave the reorder
	// queue, in whatever order dedup and merging dictate; the blocks must
	// survive until the very last release.
	_, wire := encodeFrames(t, 9)
	rc := NewReceiver(bytes.NewReader(wire))
	batch, ref, err := rc.ReceiveBatch(nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 9 {
		t.Fatalf("decoded %d of 9 buffered frames in one pass", len(batch))
	}
	want := batch[4].Payload
	for i := 0; i < 8; i++ {
		ref.Release()
	}
	// One reference left: payloads must still be intact.
	if !bytes.Equal(want, bytes.Repeat([]byte{5}, (4*37)%300)) {
		t.Fatal("payload corrupted while references remain")
	}
	ref.Release()
	if ref.Refs() != 0 {
		t.Fatalf("refs %d after final release", ref.Refs())
	}
}

func TestBlockRefOverReleasePanics(t *testing.T) {
	_, wire := encodeFrames(t, 2)
	rc := NewReceiver(bytes.NewReader(wire))
	_, ref, err := rc.ReceiveBatch(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref.ReleaseN(2)
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	// The ref is back in the pool; grab a fresh one so the over-release is
	// detected on an object we still own.
	rc2 := NewReceiver(bytes.NewReader(wire))
	_, ref2, err := rc2.ReceiveBatch(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref2.ReleaseN(3)
}

func TestNilBlockRefIsNoOp(t *testing.T) {
	var ref *BlockRef
	ref.Release()
	ref.ReleaseN(10)
	if ref.Refs() != 0 {
		t.Fatal("nil ref reports references")
	}
}

func TestReceiveBatchOversizedPayload(t *testing.T) {
	// A payload larger than the pooled block capacity gets a dedicated
	// block; surrounding small payloads still share blocks.
	ts := []Tuple{
		{Seq: 0, Payload: []byte("small")},
		{Seq: 1, Payload: bytes.Repeat([]byte{0xAB}, recvBlockCap+1234)},
		{Seq: 2, Payload: []byte("after")},
	}
	wire, err := AppendBatch(nil, ts)
	if err != nil {
		t.Fatal(err)
	}
	rc := NewReceiver(bytes.NewReader(wire))
	var got []Tuple
	var refs []*BlockRef
	for len(got) < len(ts) {
		batch, ref, err := rc.ReceiveBatch(nil, 8)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, batch...)
		refs = append(refs, ref)
	}
	for i := range ts {
		if got[i].Seq != ts[i].Seq || !bytes.Equal(got[i].Payload, ts[i].Payload) {
			t.Fatalf("tuple %d corrupted around the oversized payload", i)
		}
	}
	for _, ref := range refs {
		ref.ReleaseN(int(ref.Refs()))
	}
}

func TestReceiveBatchDeferredStreamError(t *testing.T) {
	// Damage after complete leading frames: the good tuples come back with a
	// nil error and the failure surfaces on the next call, so no decoded
	// data is lost to a shared-buffer error.
	ts, wire := encodeFrames(t, 3)
	bad := make([]byte, 12)
	binary.LittleEndian.PutUint32(bad, 4) // body < 8: malformed
	wire = append(wire, bad...)

	rc := NewReceiver(bytes.NewReader(wire))
	batch, ref, err := rc.ReceiveBatch(nil, 16)
	if err != nil {
		t.Fatalf("leading tuples lost to trailing damage: %v", err)
	}
	if len(batch) != len(ts) {
		t.Fatalf("decoded %d of %d leading tuples", len(batch), len(ts))
	}
	ref.ReleaseN(len(batch))
	if _, _, err := rc.ReceiveBatch(nil, 16); err == nil {
		t.Fatal("deferred decode error never surfaced")
	}
}

func TestReceiveBatchTruncatedMidFrame(t *testing.T) {
	ts, wire := encodeFrames(t, 3)
	cut := len(wire) - FrameLen(ts[2]) + 5 // mid final frame
	rc := NewReceiver(bytes.NewReader(wire[:cut]))
	batch, ref, err := rc.ReceiveBatch(nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 {
		t.Fatalf("decoded %d complete leading tuples, want 2", len(batch))
	}
	ref.ReleaseN(len(batch))
	if _, _, err := rc.ReceiveBatch(nil, 16); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF mid-frame, got %v", err)
	}
}

func TestDrainNeverBlocks(t *testing.T) {
	// A fresh receiver over an idle connection has nothing buffered: Drain
	// must return empty immediately rather than waiting for bytes.
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	rc := NewReceiver(server)
	batch, ref, err := rc.Drain(nil, 8)
	if err != nil || len(batch) != 0 || ref != nil {
		t.Fatalf("Drain on idle conn: %d tuples, ref %v, err %v", len(batch), ref, err)
	}
}

func TestDrainPicksUpBufferedRemainder(t *testing.T) {
	ts, wire := encodeFrames(t, 10)
	rc := NewReceiver(bytes.NewReader(wire))
	// The first blocking read pulls the whole stream into the bufio buffer;
	// cap the batch at 1 so nine complete frames remain buffered.
	first, ref1, err := rc.ReceiveBatch(nil, 1)
	if err != nil || len(first) != 1 {
		t.Fatalf("priming read: %d tuples, err %v", len(first), err)
	}
	rest, ref2, err := rc.Drain(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != len(ts)-1 {
		t.Fatalf("Drain returned %d of %d buffered frames", len(rest), len(ts)-1)
	}
	for i, tp := range rest {
		if tp.Seq != ts[i+1].Seq || !bytes.Equal(tp.Payload, ts[i+1].Payload) {
			t.Fatalf("drained tuple %d corrupted", i)
		}
	}
	ref1.Release()
	ref2.ReleaseN(len(rest))
}

// TestReceiveBatchInteropWithSenders runs every sender style against the
// batched receiver over real TCP: per-tuple Send, SendBatch, and manual
// Queue+Flush must all arrive intact — the receiver cannot tell them apart.
func TestReceiveBatchInteropWithSenders(t *testing.T) {
	const n = 300
	for _, style := range []string{"send", "sendbatch", "queueflush"} {
		t.Run(style, func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			errc := make(chan error, 1)
			go func() {
				conn, err := net.Dial("tcp", ln.Addr().String())
				if err != nil {
					errc <- err
					return
				}
				defer conn.Close()
				s, err := NewSender(conn)
				if err != nil {
					errc <- err
					return
				}
				ts := make([]Tuple, n)
				for i := range ts {
					ts[i] = Tuple{Seq: uint64(i), Payload: bytes.Repeat([]byte{byte(i)}, i%2048)}
				}
				switch style {
				case "send":
					for i := range ts {
						if err := s.Send(ts[i]); err != nil {
							errc <- err
							return
						}
					}
				case "sendbatch":
					for i := 0; i < n; i += 32 {
						end := i + 32
						if end > n {
							end = n
						}
						if err := s.SendBatch(ts[i:end]); err != nil {
							errc <- err
							return
						}
					}
				case "queueflush":
					for i := range ts {
						if err := s.Queue(ts[i]); err != nil {
							errc <- err
							return
						}
						if i%17 == 0 {
							if err := s.Flush(); err != nil {
								errc <- err
								return
							}
						}
					}
					if err := s.Flush(); err != nil {
						errc <- err
						return
					}
				}
				errc <- nil
			}()

			conn, err := ln.Accept()
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			rc := NewReceiver(conn)
			var batch []Tuple
			next := uint64(0)
			for next < n {
				var ref *BlockRef
				batch, ref, err = rc.ReceiveBatch(batch, 64)
				if err != nil {
					t.Fatalf("after %d tuples: %v", next, err)
				}
				for _, tp := range batch {
					if tp.Seq != next {
						t.Fatalf("tuple %d arrived as seq %d", next, tp.Seq)
					}
					if wantLen := int(next) % 2048; len(tp.Payload) != wantLen {
						t.Fatalf("tuple %d payload %d bytes, want %d", next, len(tp.Payload), wantLen)
					}
					for _, b := range tp.Payload {
						if b != byte(next) {
							t.Fatalf("tuple %d payload corrupted", next)
						}
					}
					next++
				}
				ref.ReleaseN(len(batch))
			}
			if err := <-errc; err != nil {
				t.Fatalf("sender: %v", err)
			}
		})
	}
}

// TestReceiveScratchPayloadsStayValid pins the unbatched path's ownership
// contract: Receive's payloads come from an arena with no release hook, so
// every payload ever returned must remain intact for as long as the caller
// keeps it — across arena refills and oversized allocations.
func TestReceiveScratchPayloadsStayValid(t *testing.T) {
	var ts []Tuple
	for i := 0; i < 50; i++ {
		// ~20 KiB payloads roll the 64 KiB arena over every few tuples.
		ts = append(ts, Tuple{Seq: uint64(i), Payload: bytes.Repeat([]byte{byte(i)}, 20<<10)})
	}
	ts = append(ts, Tuple{Seq: 50, Payload: bytes.Repeat([]byte{0xEE}, recvBlockCap+5)})
	wire, err := AppendBatch(nil, ts)
	if err != nil {
		t.Fatal(err)
	}
	rc := NewReceiver(bytes.NewReader(wire))
	got := make([]Tuple, 0, len(ts))
	for range ts {
		tp, err := rc.Receive()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tp) // retained without copying — allowed on this path
	}
	for i := range ts {
		if got[i].Seq != ts[i].Seq || !bytes.Equal(got[i].Payload, ts[i].Payload) {
			t.Fatalf("retained payload %d corrupted by later receives", i)
		}
	}
}

// TestReceiveThenReceiveBatchInterleave mixes the two receive APIs on one
// stream: they share the buffered reader, so switching between them must not
// lose or reorder frames.
func TestReceiveThenReceiveBatchInterleave(t *testing.T) {
	const n = 30
	ts, wire := encodeFrames(t, n)
	rc := NewReceiver(bytes.NewReader(wire))
	next := 0
	for next < n {
		if next%3 == 0 {
			tp, err := rc.Receive()
			if err != nil {
				t.Fatalf("Receive at %d: %v", next, err)
			}
			if tp.Seq != ts[next].Seq || !bytes.Equal(tp.Payload, ts[next].Payload) {
				t.Fatalf("tuple %d corrupted via Receive", next)
			}
			next++
			continue
		}
		batch, ref, err := rc.ReceiveBatch(nil, 2)
		if err != nil {
			t.Fatalf("ReceiveBatch at %d: %v", next, err)
		}
		for _, tp := range batch {
			if tp.Seq != ts[next].Seq || !bytes.Equal(tp.Payload, ts[next].Payload) {
				t.Fatalf("tuple %d corrupted via ReceiveBatch", next)
			}
			next++
		}
		ref.ReleaseN(len(batch))
	}
}

// TestReceiveBatchReusesBlocks checks the pool actually recycles: after
// release, a subsequent batch should be served from pooled blocks without
// growing the heap per batch. (The strict 0 allocs/op claim is pinned by
// BenchmarkReceiverReceiveBatch; this is the functional half.)
func TestReceiveBatchReusesBlocks(t *testing.T) {
	_, wire := encodeFrames(t, 8)
	for round := 0; round < 100; round++ {
		rc := NewReceiver(bytes.NewReader(wire))
		batch, ref, err := rc.ReceiveBatch(nil, 8)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got := fmt.Sprint(len(batch)); got != "8" {
			t.Fatalf("round %d: decoded %s of 8", round, got)
		}
		ref.ReleaseN(len(batch))
	}
}
