package transport

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// In-process shared-memory transport: the second implementation of the
// BatchSender/BatchReceiver edge, for PEs co-located in one process. Where
// the TCP path serializes every tuple into frames and crosses the kernel
// twice, this path moves Tuple values through a bounded lock-free SPSC ring
// (the PR 6 merger-ingest machinery) — zero serialization, zero copies:
// payload slices and their pooled-block references transfer by ownership,
// producer to consumer, and stay valid until the final consumer releases
// them.
//
// What is deliberately identical to TCP is the blocking signal. A full ring
// is this transport's full socket buffer: the sender elects to block — it
// parks on a condvar until the consumer frees a slot — and times the wait
// into the same cumulative/total blocking counters the paper's Section 3
// accounting defines, so core.Balancer drives goroutine replicas exactly as
// it drives TCP connections. Beard & Chamberlain's observation that the
// blocking-time signal survives transport changes is what makes this a
// drop-in: the controller differences CumulativeBlocking readings and never
// learns which transport produced them.
//
// Concurrency contract (same as the TCP pair): one goroutine sends, one
// goroutine receives; Close on either end may come from any goroutine and
// unblocks the other side.

// ErrInprocClosed is returned by sends after the receiving end closed and by
// receives after the receiver itself closed. A sender closing cleanly
// surfaces to the receiver as io.EOF once the ring drains, mirroring a TCP
// peer's clean shutdown.
var ErrInprocClosed = errors.New("transport: in-proc pipe closed")

// errInprocStall reports a send stall bound firing (see SetStallTimeout).
var errInprocStall = errors.New("transport: in-proc send stalled: receiver not draining")

// DefaultInprocRing bounds an in-proc pipe when the caller passes a
// non-positive capacity. It matches DefaultMergerRing: roughly the tuple
// count a default TCP socket buffer absorbs, so the blocking signal has the
// same granularity on both transports.
const DefaultInprocRing = 1024

// inprocItem is one ring slot: the tuple plus the upstream block reference
// (or nil for GC-owned payloads) whose ownership transfers with the push.
type inprocItem struct {
	t   Tuple
	ref *BlockRef
}

// inprocRing is the bounded lock-free SPSC ring between one sender and one
// receiver — the same design as the merger's ingest rings: power-of-two
// capacity, free-running padded atomic cursors whose sequentially consistent
// stores give the cross-goroutine happens-before for the slot contents, and
// slot zeroing on pop so the ring never pins handed-over payloads.
type inprocRing struct {
	mask uint64
	buf  []inprocItem

	_    [64]byte
	head atomic.Uint64 // next slot to pop; advanced only by the consumer
	_    [64]byte
	tail atomic.Uint64 // next slot to fill; advanced only by the producer
	_    [64]byte
}

// newInprocRing allocates a ring holding at least capacity items (rounded up
// to a power of two, minimum 2; non-positive selects DefaultInprocRing).
func newInprocRing(capacity int) *inprocRing {
	if capacity <= 0 {
		capacity = DefaultInprocRing
	}
	c := uint64(2)
	for c < uint64(max(capacity, 2)) {
		c <<= 1
	}
	return &inprocRing{mask: c - 1, buf: make([]inprocItem, c)}
}

func (r *inprocRing) capacity() int { return len(r.buf) }

// push appends one item. Producer-only. Returns false when the ring is full;
// the caller still owns the item's reference in that case.
func (r *inprocRing) push(it inprocItem) bool {
	t := r.tail.Load()
	if t-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = it
	r.tail.Store(t + 1) // publishes the slot write to the consumer
	return true
}

// pop removes the oldest item, zeroing the vacated slot. Consumer-only
// (callers hold the pipe's popMu so the teardown sweep and the receiver
// never interleave).
func (r *inprocRing) pop() (inprocItem, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return inprocItem{}, false
	}
	it := r.buf[h&r.mask]
	r.buf[h&r.mask] = inprocItem{}
	r.head.Store(h + 1) // returns the slot to the producer
	return it, true
}

// len reports the current occupancy (approximate while both sides move).
func (r *inprocRing) len() int {
	t := r.tail.Load()
	h := r.head.Load()
	if t < h {
		return 0
	}
	return int(t - h)
}

// full reports whether a push would fail right now. Producer-side exact.
func (r *inprocRing) full() bool {
	return r.tail.Load()-r.head.Load() >= uint64(len(r.buf))
}

// inprocPark is one side's parking spot: the same Dekker hand-off as the
// merger's streamPark — the parker raises the counter (sequentially
// consistent) before re-checking its condition under the mutex, so a waker
// that changes state and then reads parked == 0 is guaranteed the parker
// will observe that change and not sleep.
type inprocPark struct {
	parked atomic.Int32
	mu     sync.Mutex
	cond   *sync.Cond
}

func (k *inprocPark) park(cond func() bool) {
	k.parked.Add(1)
	k.mu.Lock()
	for cond() {
		k.cond.Wait()
	}
	k.mu.Unlock()
	k.parked.Add(-1)
}

// wake unblocks the side parked here, if any; one atomic load while the
// peer is awake (the steady state), so the hot path never touches the mutex.
func (k *inprocPark) wake() {
	if k.parked.Load() == 0 {
		return
	}
	k.mu.Lock()
	k.cond.Broadcast()
	k.mu.Unlock()
}

// inprocPipe is the state shared by a connected sender/receiver pair.
type inprocPipe struct {
	ring *inprocRing

	// sendClosed: the sender closed cleanly (receiver drains then sees EOF).
	// recvClosed: the receiver closed (sends fail). Both are one-way latches.
	sendClosed atomic.Bool
	recvClosed atomic.Bool

	// popMu serializes consumption: ReceiveBatch/Drain pop under it, and so
	// does the teardown sweep that releases leftover block references after
	// the receiver closes — from the receiver's Close, or from the sender
	// when it discovers the close raced a push. One uncontended acquisition
	// per received batch; never touched per tuple.
	popMu sync.Mutex

	sendPark inprocPark // sender parks here while the ring is full
	recvPark inprocPark // receiver parks here while the ring is empty
}

// drainAndRelease sweeps every item still in the ring, releasing its block
// reference. Only meaningful once recvClosed is set: the receiver no longer
// pops, so the sweep (under popMu) is the sole consumer.
func (p *inprocPipe) drainAndRelease() {
	p.popMu.Lock()
	for {
		it, ok := p.ring.pop()
		if !ok {
			break
		}
		it.ref.Release()
	}
	p.popMu.Unlock()
	p.sendPark.wake()
}

// InprocPair creates a connected in-process sender/receiver pair over a
// bounded SPSC ring of at least capacity tuples (rounded up to a power of
// two, minimum 2; non-positive selects DefaultInprocRing). The ring bound is
// this edge's "socket buffer": it is what makes the sender block, which is
// what the balancer measures.
func InprocPair(capacity int) (*InprocSender, *InprocReceiver) {
	p := &inprocPipe{ring: newInprocRing(capacity)}
	p.sendPark.cond = sync.NewCond(&p.sendPark.mu)
	p.recvPark.cond = sync.NewCond(&p.recvPark.mu)
	return &InprocSender{p: p, now: time.Now}, &InprocReceiver{p: p}
}

// InprocSender is the producing end of an in-process edge. It mirrors the
// TCP Sender's surface and accounting; see BatchSender.
type InprocSender struct {
	p *inprocPipe

	// pending stages Queue'd tuples between flushes; owned reuses one items
	// slice for SendBatchOwned so the steady-state send path allocates
	// nothing.
	pending []inprocItem
	owned   []inprocItem

	// Stall bound (SetStallTimeout): the timer is allocated once and
	// re-armed per park episode, so a bounded sender parks allocation-free.
	stall      time.Duration
	stallTimer *time.Timer
	stallFired atomic.Bool

	cumBlockingNS   atomic.Int64
	totalBlockingNS atomic.Int64
	blockEvents     atomic.Int64
	sent            atomic.Int64
	flushes         atomic.Int64
	flushedTuples   atomic.Int64

	// now is replaceable for tests.
	now func() time.Time
}

// Capacity returns the pipe's true (rounded) ring capacity in tuples.
func (s *InprocSender) Capacity() int { return s.p.ring.capacity() }

// checkFrameable applies the TCP path's frame-size and encodability bounds
// so an unencodable tuple fails identically on both transports (SendBatch
// atomicity included).
func checkFrameable(t Tuple) error {
	extra, _, err := frameExtra(t)
	if err != nil {
		return err
	}
	if body := 8 + extra + len(t.Payload); body > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, body)
	}
	return nil
}

// Send delivers one tuple, electing to block (and timing the block) when the
// ring is full.
func (s *InprocSender) Send(t Tuple) error {
	if err := checkFrameable(t); err != nil {
		return err
	}
	if err := s.push(inprocItem{t: t}); err != nil {
		return fmt.Errorf("transport: send seq %d: %w", t.Seq, err)
	}
	s.p.recvPark.wake()
	s.sweepIfAbandoned()
	s.sent.Add(1)
	return nil
}

// Queue stages one tuple without delivering. The payload is referenced, not
// copied — it must not be mutated after Flush hands it to the consumer.
func (s *InprocSender) Queue(t Tuple) error {
	if err := checkFrameable(t); err != nil {
		return err
	}
	s.pending = append(s.pending, inprocItem{t: t})
	return nil
}

// Pending returns how many tuples are staged and not yet flushed.
func (s *InprocSender) Pending() int { return len(s.pending) }

// Flush delivers every staged tuple, electing to block — and accounting the
// blocked time — when the ring fills anywhere in the batch. On error the
// undelivered remainder is discarded, matching the TCP flush contract (the
// edge is failed; under recovery the retained tuples replay elsewhere).
func (s *InprocSender) Flush() error {
	if len(s.pending) == 0 {
		return nil
	}
	n := len(s.pending)
	err := s.deliver(s.pending)
	s.releaseStaged()
	if err != nil {
		return fmt.Errorf("transport: flush batch of %d: %w", n, err)
	}
	s.sent.Add(int64(n))
	s.flushes.Add(1)
	s.flushedTuples.Add(int64(n))
	return nil
}

// releaseStaged clears the staging slice (zeroing items so dropped payloads
// and refs are not pinned by the backing array).
func (s *InprocSender) releaseStaged() {
	for i := range s.pending {
		s.pending[i] = inprocItem{}
	}
	s.pending = s.pending[:0]
}

// SendBatch stages and delivers ts as one batch, failing atomically on an
// unencodable tuple exactly as the TCP sender does.
func (s *InprocSender) SendBatch(ts []Tuple) error {
	for i := range ts {
		if err := s.Queue(ts[i]); err != nil {
			s.releaseStaged()
			return fmt.Errorf("transport: batch tuple seq %d: %w", ts[i].Seq, err)
		}
	}
	return s.Flush()
}

// SendBatchOwned delivers ts with ownership transfer: ref holds one block
// reference per tuple and every reference is consumed — delivered tuples
// carry theirs to the consumer (the zero-copy path: pooled payload blocks
// stay alive across the edge with no serialization), and references for
// tuples that could not be delivered are released here.
func (s *InprocSender) SendBatchOwned(ts []Tuple, ref *BlockRef) error {
	for i := range ts {
		if err := checkFrameable(ts[i]); err != nil {
			ref.ReleaseN(len(ts))
			return fmt.Errorf("transport: batch tuple seq %d: %w", ts[i].Seq, err)
		}
	}
	if len(s.pending) > 0 {
		// Preserve ordering with any staged partial batch.
		if err := s.Flush(); err != nil {
			ref.ReleaseN(len(ts))
			return err
		}
	}
	items := s.owned[:0]
	for i := range ts {
		items = append(items, inprocItem{t: ts[i], ref: ref})
	}
	s.owned = items
	err := s.deliver(items)
	for i := range items {
		items[i] = inprocItem{}
	}
	s.owned = items[:0]
	if err != nil {
		return fmt.Errorf("transport: send owned batch of %d: %w", len(ts), err)
	}
	s.sent.Add(int64(len(ts)))
	s.flushes.Add(1)
	s.flushedTuples.Add(int64(len(ts)))
	return nil
}

// deliver pushes items in order, parking on a full ring. On error the
// references of undelivered items are released (delivered items' references
// belong to the consumer already). The consumer is woken before any park —
// the items already pushed may be exactly what it is waiting for — and once
// after the last push.
func (s *InprocSender) deliver(items []inprocItem) error {
	p := s.p
	pushed := false
	for i := range items {
		for {
			if err := s.closedErr(); err != nil {
				if pushed {
					p.recvPark.wake()
				}
				for j := i; j < len(items); j++ {
					items[j].ref.Release()
				}
				return err
			}
			if p.ring.push(items[i]) {
				pushed = true
				break
			}
			if pushed {
				p.recvPark.wake()
				pushed = false
			}
			if err := s.parkFull(); err != nil {
				for j := i; j < len(items); j++ {
					items[j].ref.Release()
				}
				return err
			}
		}
	}
	if pushed {
		p.recvPark.wake()
	}
	s.sweepIfAbandoned()
	return nil
}

// push delivers one item (the unbatched Send path).
func (s *InprocSender) push(it inprocItem) error {
	p := s.p
	for {
		if err := s.closedErr(); err != nil {
			return err
		}
		if p.ring.push(it) {
			return nil
		}
		p.recvPark.wake()
		if err := s.parkFull(); err != nil {
			return err
		}
	}
}

// sweepIfAbandoned closes the push/close race: if the receiver closed while
// a push was in flight, its teardown sweep may have run before the item
// landed, so the sender re-runs the sweep (idempotent, under popMu) to
// guarantee no reference is stranded in the ring.
func (s *InprocSender) sweepIfAbandoned() {
	if s.p.recvClosed.Load() {
		s.p.drainAndRelease()
	}
}

// closedErr reports why sending is impossible, if it is.
func (s *InprocSender) closedErr() error {
	if s.p.recvClosed.Load() || s.p.sendClosed.Load() {
		return ErrInprocClosed
	}
	return nil
}

// parkFull is the elect-to-block: the ring (this edge's socket buffer) is
// full, so the sender records a block event, parks until the consumer frees
// a slot — or the pipe closes, or the stall bound fires — and accounts the
// parked time to the cumulative counters the controller samples.
func (s *InprocSender) parkFull() error {
	p := s.p
	s.blockEvents.Add(1)
	start := s.now()
	if s.stall > 0 {
		s.armStall()
	}
	p.sendPark.park(func() bool {
		return p.ring.full() && !p.recvClosed.Load() && !p.sendClosed.Load() &&
			!s.stallFired.Load()
	})
	if d := s.now().Sub(start); d > 0 {
		s.cumBlockingNS.Add(int64(d))
		s.totalBlockingNS.Add(int64(d))
	}
	if s.stall > 0 {
		s.stallTimer.Stop()
		if s.stallFired.Swap(false) && p.ring.full() && s.closedErr() == nil {
			return errInprocStall
		}
	}
	return nil
}

// SetStallTimeout bounds how long one delivery may stay parked on a ring the
// receiver is not draining (0 disables; negative is treated as 0) —
// the in-proc analogue of the TCP sender's rolling write deadline. Call from
// the sending goroutine (or before it starts).
func (s *InprocSender) SetStallTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.stall = d
}

// armStall re-arms the reusable stall timer for one park episode.
func (s *InprocSender) armStall() {
	if s.stallTimer == nil {
		s.stallTimer = time.AfterFunc(s.stall, func() {
			s.stallFired.Store(true)
			s.p.sendPark.wake()
		})
		return
	}
	s.stallTimer.Reset(s.stall)
}

// CumulativeBlocking returns the sampled blocking-time counter.
func (s *InprocSender) CumulativeBlocking() time.Duration {
	return time.Duration(s.cumBlockingNS.Load())
}

// ResetCumulative zeroes the sampled counter; the lifetime counter is
// unaffected.
func (s *InprocSender) ResetCumulative() {
	s.cumBlockingNS.Store(0)
}

// TotalBlocking returns the lifetime blocking time on this edge.
func (s *InprocSender) TotalBlocking() time.Duration {
	return time.Duration(s.totalBlockingNS.Load())
}

// BlockEvents returns how many deliveries elected to block.
func (s *InprocSender) BlockEvents() int64 { return s.blockEvents.Load() }

// Sent returns how many tuples have been delivered.
func (s *InprocSender) Sent() int64 { return s.sent.Load() }

// Flushes returns how many batch flushes have completed.
func (s *InprocSender) Flushes() int64 { return s.flushes.Load() }

// FlushedTuples returns how many tuples left through batch flushes.
func (s *InprocSender) FlushedTuples() int64 { return s.flushedTuples.Load() }

// Close ends the sending side: a parked delivery (local or on the peer)
// wakes, and once the receiver drains the ring it sees io.EOF — the clean
// shutdown a TCP close delivers. Idempotent; callable from any goroutine.
func (s *InprocSender) Close() error {
	if s.p.sendClosed.Swap(true) {
		return nil
	}
	s.p.recvPark.wake()
	s.p.sendPark.wake()
	if s.p.recvClosed.Load() {
		// Both ends are now closed: nobody will pop again, so sweep any
		// leftover references out of the ring.
		s.p.drainAndRelease()
	}
	return nil
}

// InprocReceiver is the consuming end of an in-process edge; see
// BatchReceiver. Tuples come out exactly as they went in — same Seq, same
// payload bytes by reference — with a batch BlockRef chaining the upstream
// references (BlockRef.parents), so consumers release per tuple exactly as
// they do on the TCP path.
type InprocReceiver struct {
	p *inprocPipe
}

// Capacity returns the pipe's true (rounded) ring capacity in tuples.
func (r *InprocReceiver) Capacity() int { return r.p.ring.capacity() }

// Len reports the ring's current occupancy (approximate while the sender is
// active).
func (r *InprocReceiver) Len() int { return r.p.ring.len() }

// ReceiveBatch pops up to max tuples into dst (truncated and reused),
// blocking only while the ring is empty: once one tuple is available the
// pass drains what is already there and returns. max <= 0 selects
// DefaultRecvBatch. The returned BlockRef holds one reference per tuple and
// chains the tuples' upstream references; it is nil when every payload in
// the batch is GC-owned (no release needed, nil is a valid no-op receiver).
// Errors: io.EOF after the sender closed and the ring drained;
// ErrInprocClosed after this receiver closed.
func (r *InprocReceiver) ReceiveBatch(dst []Tuple, max int) ([]Tuple, *BlockRef, error) {
	if max <= 0 {
		max = DefaultRecvBatch
	}
	dst = dst[:0]
	p := r.p
	for {
		if p.recvClosed.Load() {
			return dst, nil, ErrInprocClosed
		}
		var ref *BlockRef
		dst, ref = r.pop(dst, max)
		if len(dst) > 0 {
			p.sendPark.wake()
			return dst, ref, nil
		}
		if p.sendClosed.Load() && p.ring.len() == 0 {
			return dst, nil, io.EOF
		}
		p.recvPark.park(func() bool {
			return p.ring.len() == 0 && !p.sendClosed.Load() && !p.recvClosed.Load()
		})
	}
}

// Drain pops only tuples already in the ring — it never blocks, returning
// zero tuples (and a nil ref) when the ring is empty, exactly like the TCP
// receiver's Drain.
func (r *InprocReceiver) Drain(dst []Tuple, max int) ([]Tuple, *BlockRef, error) {
	if max <= 0 {
		max = DefaultRecvBatch
	}
	dst = dst[:0]
	if r.p.recvClosed.Load() {
		return dst, nil, ErrInprocClosed
	}
	var ref *BlockRef
	dst, ref = r.pop(dst, max)
	if len(dst) > 0 {
		r.p.sendPark.wake()
	}
	return dst, ref, nil
}

// pop moves up to max items out of the ring under popMu, aggregating the
// items' upstream references into one batch ref: the batch ref takes one
// countable reference per returned tuple, and recycling it (when the
// consumer has released them all) releases each chained parent exactly once
// — so per-tuple release semantics survive the aggregation. No items with
// upstream references means no batch ref at all.
func (r *InprocReceiver) pop(dst []Tuple, max int) ([]Tuple, *BlockRef) {
	p := r.p
	var ref *BlockRef
	p.popMu.Lock()
	for len(dst) < max {
		it, ok := p.ring.pop()
		if !ok {
			break
		}
		dst = append(dst, it.t)
		if it.ref != nil {
			if ref == nil {
				ref = blockRefPool.Get().(*BlockRef)
			}
			ref.parents = append(ref.parents, it.ref)
		}
	}
	p.popMu.Unlock()
	if ref != nil {
		ref.refs.Store(int64(len(dst)))
	}
	return dst, ref
}

// Close ends the receiving side: a parked ReceiveBatch returns
// ErrInprocClosed, a parked or future send fails, and every reference still
// in the ring is swept and released. Idempotent; callable from any
// goroutine.
func (r *InprocReceiver) Close() error {
	if r.p.recvClosed.Swap(true) {
		return nil
	}
	r.p.recvPark.wake()
	r.p.drainAndRelease()
	return nil
}
