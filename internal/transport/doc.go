// Package transport is the data transport layer of the streaming runtime: a
// length-prefixed tuple framing over TCP with per-connection cumulative
// blocking-time instrumentation, reproducing the measurement mechanism of
// Section 3 of the paper.
//
// The paper's transport issues send(2) with MSG_DONTWAIT; when the kernel
// reports the socket buffer full it records the fact and then *elects to
// block* in select(2), adding the measured wait to a per-connection
// cumulative blocking-time counter. Go's runtime poller offers the same
// mechanism through syscall.RawConn: the Write callback performs a
// non-blocking write(2) on the raw descriptor, and returning false parks the
// goroutine in the netpoller until the socket is writable again — precisely
// the "record, then block anyway" behaviour, with the wait timed around the
// park. A Sender accumulates those waits; a periodic sampler (stats
// package) turns the cumulative counter into the blocking rate the balancer
// consumes.
package transport
