package transport

import (
	"encoding/binary"
	"io"
	"sync"
	"sync/atomic"
)

// Receive-side batching mirrors the send side (batch.go): where the sender
// amortizes the per-tuple syscall with one vectored write per batch, the
// receiver amortizes the per-tuple decode with one pass over every complete
// frame already sitting in its buffer. The wire format is unchanged — a
// batch is just concatenated frames — so batched receivers interoperate with
// per-tuple and batched senders alike.
//
// Payloads decoded by ReceiveBatch/Drain are carved from pooled block
// buffers instead of per-tuple allocations. The blocks are reference
// counted through a BlockRef: every returned tuple holds one reference, and
// the consumer releases each reference when it is done with that tuple's
// payload — for the merger, after the tuple is released downstream in order
// (or dropped as a duplicate); for the worker, after the processed batch is
// flushed to the merger. When the last reference drops, the blocks return
// to the pool. See DESIGN "Receive-side batching" for the full ownership
// story.

const (
	// recvBlockCap seeds pooled payload blocks. It matches the Receiver's
	// bufio buffer: one block usually absorbs everything one drain pass can
	// decode. Blocks grow (and keep their grown capacity in the pool) when a
	// single payload exceeds it.
	recvBlockCap = 64 << 10

	// DefaultRecvBatch bounds one ReceiveBatch pass when the caller does not
	// choose. Receive batching is semantically transparent (unlike send
	// batching it coarsens no measurement signal), so the runtime enables it
	// by default at this size.
	DefaultRecvBatch = 64
)

// recvBlock is one pooled payload block. As with frameBuf, the pool stores
// pointers so Get/Put never allocate on the hot path.
type recvBlock struct{ b []byte }

var recvBlockPool = sync.Pool{
	New: func() any { return &recvBlock{b: make([]byte, 0, recvBlockCap)} },
}

// BlockRef is the release hook for the pooled blocks backing one received
// batch's payloads. ReceiveBatch returns it holding one reference per
// decoded tuple; the consumer calls Release once per tuple (or ReleaseN for
// a whole batch) when the payloads are no longer needed. Releasing the last
// reference recycles the blocks — and the BlockRef itself — so payloads
// must not be read after their reference is dropped; copy first to retain.
//
// Release and ReleaseN are safe to call concurrently. A nil BlockRef is a
// valid no-op receiver, so callers of unpooled sources need no special
// casing.
type BlockRef struct {
	refs   atomic.Int64
	blocks []*recvBlock

	// parents chains upstream ownership across an in-process edge: an
	// InprocReceiver's batch ref holds one entry per popped tuple that rode
	// in with its own upstream reference, and releasing the batch's last
	// reference releases each parent exactly once. A TCP batch ref has no
	// parents. See inproc.go.
	parents []*BlockRef
}

var blockRefPool = sync.Pool{New: func() any { return new(BlockRef) }}

// Release drops one tuple's reference.
func (r *BlockRef) Release() { r.ReleaseN(1) }

// ReleaseN drops n references at once — the whole-batch release a worker
// uses after flushing its processed batch downstream.
func (r *BlockRef) ReleaseN(n int) {
	if r == nil || n <= 0 {
		return
	}
	left := r.refs.Add(-int64(n))
	if left > 0 {
		return
	}
	if left < 0 {
		panic("transport: BlockRef released more times than it has references")
	}
	r.recycle()
}

// recycle returns the ref's blocks to the block pool, releases each parent
// reference once, and returns the ref itself to the ref pool.
func (r *BlockRef) recycle() {
	for i, blk := range r.blocks {
		blk.b = blk.b[:0]
		recvBlockPool.Put(blk)
		r.blocks[i] = nil
	}
	r.blocks = r.blocks[:0]
	for i, p := range r.parents {
		p.Release()
		r.parents[i] = nil
	}
	r.parents = r.parents[:0]
	blockRefPool.Put(r)
}

// Refs returns the outstanding reference count (for tests and diagnostics).
func (r *BlockRef) Refs() int64 {
	if r == nil {
		return 0
	}
	return r.refs.Load()
}

// carve reserves n bytes in the ref's current block, sealing it and starting
// a new one when the payload does not fit — payload slices already handed
// out never move, which is what lets tuples alias the blocks safely.
func (r *BlockRef) carve(n int) []byte {
	var blk *recvBlock
	if len(r.blocks) > 0 {
		if last := r.blocks[len(r.blocks)-1]; cap(last.b)-len(last.b) >= n {
			blk = last
		}
	}
	if blk == nil {
		blk = recvBlockPool.Get().(*recvBlock)
		if cap(blk.b) < n {
			// One oversized payload gets a dedicated block; the grown
			// capacity stays with the block in the pool.
			blk.b = make([]byte, 0, n)
		}
		r.blocks = append(r.blocks, blk)
	}
	off := len(blk.b)
	blk.b = blk.b[:off+n]
	return blk.b[off : off+n : off+n]
}

// ReceiveBatch decodes up to max tuples into dst (which is truncated and
// reused, so steady-state callers allocate nothing), blocking only for the
// first: once one tuple has arrived, the pass drains every complete frame
// already buffered and returns rather than waiting for more. max <= 0
// selects DefaultRecvBatch.
//
// Payloads are carved from pooled blocks owned by the returned BlockRef,
// which holds one reference per returned tuple; see BlockRef for the
// release contract. The ref is non-nil whenever at least one tuple is
// returned. Errors follow Receive: io.EOF at a clean end of stream before
// the first tuple, io.ErrUnexpectedEOF mid-frame. A stream error discovered
// while draining after at least one decoded tuple is deferred: the complete
// leading tuples are returned with a nil error and the failure surfaces on
// the next call.
func (rc *Receiver) ReceiveBatch(dst []Tuple, max int) ([]Tuple, *BlockRef, error) {
	if max <= 0 {
		max = DefaultRecvBatch
	}
	dst = dst[:0]
	if rc.err != nil {
		err := rc.err
		rc.err = nil
		return dst, nil, err
	}
	ref := blockRefPool.Get().(*BlockRef)
	t, err := rc.receiveInto(ref)
	if err != nil {
		// A mid-frame failure can leave a carved block behind; recycle
		// everything before re-pooling the ref.
		ref.recycle()
		return dst, nil, err
	}
	dst = append(dst, t)
	dst = rc.drainInto(dst, max, ref)
	ref.refs.Store(int64(len(dst)))
	return dst, ref, nil
}

// Drain decodes only frames already complete in the receive buffer — it
// never blocks, returning zero tuples (and a nil ref) when none are fully
// buffered. Otherwise it behaves exactly like ReceiveBatch.
func (rc *Receiver) Drain(dst []Tuple, max int) ([]Tuple, *BlockRef, error) {
	if max <= 0 {
		max = DefaultRecvBatch
	}
	dst = dst[:0]
	if rc.err != nil {
		err := rc.err
		rc.err = nil
		return dst, nil, err
	}
	ref := blockRefPool.Get().(*BlockRef)
	dst = rc.drainInto(dst, max, ref)
	if len(dst) == 0 {
		blockRefPool.Put(ref)
		if err := rc.err; err != nil {
			rc.err = nil
			return dst, nil, err
		}
		return dst, nil, nil
	}
	ref.refs.Store(int64(len(dst)))
	return dst, ref, nil
}

// drainInto decodes buffered complete frames into dst until max tuples are
// held or the buffer runs out of complete frames. A malformed frame sets
// rc.err (surfaced to the caller on the next receive) and stops the pass;
// every complete leading frame is still returned.
func (rc *Receiver) drainInto(dst []Tuple, max int, ref *BlockRef) []Tuple {
	for len(dst) < max {
		t, ok, err := rc.tryDecode(ref)
		if err != nil {
			rc.err = err
			break
		}
		if !ok {
			break
		}
		dst = append(dst, t)
	}
	return dst
}

// tryDecode decodes one frame if — and only if — it is fully buffered, so
// it never blocks. ok=false means the next frame is incomplete.
func (rc *Receiver) tryDecode(ref *BlockRef) (Tuple, bool, error) {
	if rc.r.Buffered() < 4 {
		return Tuple{}, false, nil
	}
	hdr, err := rc.r.Peek(4)
	if err != nil {
		return Tuple{}, false, nil
	}
	word := binary.LittleEndian.Uint32(hdr)
	body, flags, fixed, err := decodeLengthWord(word)
	if err != nil {
		return Tuple{}, false, err
	}
	if rc.r.Buffered() < 4+int(body) {
		return Tuple{}, false, nil
	}
	// The whole frame is buffered: none of the reads below can block or
	// short-read.
	rc.r.Discard(4)
	io.ReadFull(rc.r, rc.hdr[4:4+fixed])
	t, absorbed, err := rc.decodeFixed(flags, body, fixed)
	if err != nil {
		return Tuple{}, false, err
	}
	if absorbed > 0 {
		t.Absorbed = ref.carve(absorbed)
		io.ReadFull(rc.r, t.Absorbed)
	}
	if payload := int(body) - fixed - absorbed; payload > 0 {
		t.Payload = ref.carve(payload)
		io.ReadFull(rc.r, t.Payload)
	}
	return t, true, nil
}

// receiveInto is Receive with the payload carved from ref's pooled blocks
// instead of the Receiver's scratch block.
func (rc *Receiver) receiveInto(ref *BlockRef) (Tuple, error) {
	return rc.receive(ref)
}
