package transport

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"syscall"
	"time"
)

// rawConner is satisfied by net.TCPConn, net.UnixConn and any other net.Conn
// exposing its file descriptor.
type rawConner interface {
	SyscallConn() (syscall.RawConn, error)
}

// Sender frames and sends tuples on one connection, accumulating the
// cumulative blocking time of Section 3: each send is attempted without
// blocking, and when the kernel reports the socket buffer full the sender
// elects to block in the runtime poller anyway, timing the wait.
//
// Send may be called from only one goroutine at a time (the splitter has a
// single thread of control); the counters may be read concurrently.
type Sender struct {
	conn net.Conn
	raw  syscall.RawConn
	buf  []byte

	cumBlockingNS   atomic.Int64 // sampled counter, reset by the controller
	totalBlockingNS atomic.Int64 // lifetime counter
	blockEvents     atomic.Int64
	sent            atomic.Int64

	// now is replaceable for tests.
	now func() time.Time
}

// NewSender wraps a connection. The connection must expose its descriptor
// via SyscallConn (net.TCPConn and net.UnixConn do).
func NewSender(conn net.Conn) (*Sender, error) {
	rc, ok := conn.(rawConner)
	if !ok {
		return nil, fmt.Errorf("transport: %T does not expose a raw descriptor", conn)
	}
	raw, err := rc.SyscallConn()
	if err != nil {
		return nil, fmt.Errorf("transport: raw conn: %w", err)
	}
	return &Sender{
		conn: conn,
		raw:  raw,
		buf:  make([]byte, 0, 4096),
		now:  time.Now,
	}, nil
}

// Send frames the tuple and writes it, electing to block (and timing the
// block) when the socket buffer is full.
func (s *Sender) Send(t Tuple) error {
	buf, err := AppendFrame(s.buf[:0], t)
	if err != nil {
		return err
	}
	s.buf = buf[:0]
	if err := s.writeAll(buf); err != nil {
		return fmt.Errorf("transport: send seq %d: %w", t.Seq, err)
	}
	s.sent.Add(1)
	return nil
}

// TrySend attempts to send without ever electing to block. It reports
// sent=false (with no error and no blocking accounted) when the socket buffer
// cannot accept even the first byte — the probe the Section 4.4 re-routing
// experiment uses to divert tuples. If the frame is partially written before
// the buffer fills, the send must complete (a half tuple cannot be diverted),
// so the remainder is written with normal blocking accounting.
func (s *Sender) TrySend(t Tuple) (bool, error) {
	buf, err := AppendFrame(s.buf[:0], t)
	if err != nil {
		return false, err
	}
	s.buf = buf[:0]
	wrote := false
	var probeErr error
	err = s.raw.Write(func(fd uintptr) bool {
		for {
			n, errno := syscall.Write(int(fd), buf)
			if n > 0 {
				wrote = true
				buf = buf[n:]
				if len(buf) == 0 {
					return true
				}
				continue
			}
			switch {
			case errors.Is(errno, syscall.EAGAIN):
				return true // never park during the probe
			case errors.Is(errno, syscall.EINTR):
				continue
			case errno != nil:
				probeErr = errno
				return true
			default:
				probeErr = errors.New("write returned 0 without error")
				return true
			}
		}
	})
	if err == nil {
		err = probeErr
	}
	if err != nil {
		return false, fmt.Errorf("transport: try send seq %d: %w", t.Seq, err)
	}
	if !wrote {
		return false, nil
	}
	if len(buf) > 0 {
		if err := s.writeAll(buf); err != nil {
			return true, fmt.Errorf("transport: complete partial send seq %d: %w", t.Seq, err)
		}
	}
	s.sent.Add(1)
	return true, nil
}

// writeAll writes p using non-blocking write(2) calls, parking in the
// runtime poller on EAGAIN and accounting the parked time.
func (s *Sender) writeAll(p []byte) error {
	var blockedAt time.Time
	blocked := false
	var writeErr error
	account := func() {
		if !blocked {
			return
		}
		d := s.now().Sub(blockedAt)
		if d > 0 {
			s.cumBlockingNS.Add(int64(d))
			s.totalBlockingNS.Add(int64(d))
		}
		blocked = false
	}
	err := s.raw.Write(func(fd uintptr) bool {
		// Re-entry after a park: the socket became writable; record how
		// long the "select" lasted, exactly as the paper's transport adds
		// the select(2) wait to the cumulative counter.
		account()
		for len(p) > 0 {
			n, errno := syscall.Write(int(fd), p)
			if n > 0 {
				p = p[n:]
				continue
			}
			switch {
			case errors.Is(errno, syscall.EAGAIN):
				// The send would have blocked (MSG_DONTWAIT semantics).
				// Record the event and elect to block: returning false
				// parks this goroutine until the descriptor is writable.
				blocked = true
				blockedAt = s.now()
				s.blockEvents.Add(1)
				return false
			case errors.Is(errno, syscall.EINTR):
				continue
			case errno != nil:
				writeErr = errno
				return true
			default:
				writeErr = errors.New("write returned 0 without error")
				return true
			}
		}
		return true
	})
	// If the poller wait ended in a connection error the callback never
	// re-ran; close out the accounting so the wait is not lost.
	account()
	if err != nil {
		return err
	}
	return writeErr
}

// CumulativeBlocking returns the sampled blocking-time counter. The
// controller differences successive readings to obtain the blocking rate.
func (s *Sender) CumulativeBlocking() time.Duration {
	return time.Duration(s.cumBlockingNS.Load())
}

// ResetCumulative zeroes the sampled counter, emulating the transport
// layer's periodic reset (Figure 2). The lifetime counter is unaffected.
func (s *Sender) ResetCumulative() {
	s.cumBlockingNS.Store(0)
}

// TotalBlocking returns the lifetime blocking time on this connection.
func (s *Sender) TotalBlocking() time.Duration {
	return time.Duration(s.totalBlockingNS.Load())
}

// BlockEvents returns how many sends would have blocked.
func (s *Sender) BlockEvents() int64 {
	return s.blockEvents.Load()
}

// Sent returns how many tuples have been sent.
func (s *Sender) Sent() int64 {
	return s.sent.Load()
}

// Close closes the underlying connection.
func (s *Sender) Close() error {
	return s.conn.Close()
}
