package transport

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

// rawConner is satisfied by net.TCPConn, net.UnixConn and any other net.Conn
// exposing its file descriptor.
type rawConner interface {
	SyscallConn() (syscall.RawConn, error)
}

// iovMax bounds the iovec count per writev(2) call (IOV_MAX is 1024 on
// Linux); larger batches are written in successive calls.
const iovMax = 1024

var errWroteZero = errors.New("write returned 0 without error")

// Sender frames and sends tuples on one connection, accumulating the
// cumulative blocking time of Section 3: each send is attempted without
// blocking, and when the kernel reports the socket buffer full the sender
// elects to block in the runtime poller anyway, timing the wait.
//
// Send, Queue, Flush and SendBatch may be called from only one goroutine at
// a time (the splitter has a single thread of control); the counters may be
// read concurrently.
//
// The send path runs once per tuple and its overhead both caps region
// throughput and perturbs the blocking-time signal the balancer reads, so it
// must not allocate in steady state: the poller callbacks are bound once at
// construction (a per-call closure escapes), frame buffers are reused or
// pooled, and the write-in-progress cursor lives on the Sender.
type Sender struct {
	conn net.Conn
	raw  syscall.RawConn
	buf  []byte

	// Write-in-progress state, owned by the sending goroutine. wq[wqHead:]
	// holds the buffers not yet fully written; the callbacks advance the
	// cursor across poller parks so a partial write — at any byte
	// boundary, mid-header or mid-payload, within or across batch buffers
	// — always resumes exactly where the kernel stopped.
	wq         [][]byte
	wqHead     int
	iov        []syscall.Iovec // scratch, reused across writev calls
	writeFn    func(fd uintptr) bool
	probeFn    func(fd uintptr) bool
	wErr       error
	blocked    bool
	blockedAt  time.Time
	probeBuf   []byte
	probeWrote bool

	// Batch staging (Queue/Flush), see batch.go.
	pending  net.Buffers
	coalesce *frameBuf
	pooled   []*frameBuf
	queued   int

	// Stall bound: when stallTimeout > 0, a write deadline is kept armed on
	// the connection so an elect-to-block park on a socket that never
	// drains returns an i/o timeout instead of parking forever. The
	// deadline is re-armed lazily (at most once per half-window) so the
	// steady-state flush path pays no extra syscall; the effective bound on
	// one stalled flush is therefore within [stallTimeout/2, stallTimeout].
	stallTimeout time.Duration
	stallArmedAt time.Time

	cumBlockingNS   atomic.Int64 // sampled counter, reset by the controller
	totalBlockingNS atomic.Int64 // lifetime counter
	blockEvents     atomic.Int64
	sent            atomic.Int64
	flushes         atomic.Int64
	flushedTuples   atomic.Int64

	// now is replaceable for tests.
	now func() time.Time
}

// NewSender wraps a connection. The connection must expose its descriptor
// via SyscallConn (net.TCPConn and net.UnixConn do).
func NewSender(conn net.Conn) (*Sender, error) {
	rc, ok := conn.(rawConner)
	if !ok {
		return nil, fmt.Errorf("transport: %T does not expose a raw descriptor", conn)
	}
	raw, err := rc.SyscallConn()
	if err != nil {
		return nil, fmt.Errorf("transport: raw conn: %w", err)
	}
	s := &Sender{
		conn: conn,
		raw:  raw,
		buf:  make([]byte, 0, 4096),
		now:  time.Now,
	}
	s.writeFn = s.rawWrite
	s.probeFn = s.probeWrite
	return s, nil
}

// Send frames the tuple and writes it, electing to block (and timing the
// block) when the socket buffer is full.
func (s *Sender) Send(t Tuple) error {
	buf, err := AppendFrame(s.buf[:0], t)
	if err != nil {
		return err
	}
	s.buf = buf[:0]
	if err := s.writeAll(buf); err != nil {
		return fmt.Errorf("transport: send seq %d: %w", t.Seq, err)
	}
	s.sent.Add(1)
	return nil
}

// TrySend attempts to send without ever electing to block. It reports
// sent=false (with no error and no blocking accounted) when the socket buffer
// cannot accept even the first byte — the probe the Section 4.4 re-routing
// experiment uses to divert tuples. If the frame is partially written before
// the buffer fills, the send must complete (a half tuple cannot be diverted),
// so the remainder is written with normal blocking accounting.
func (s *Sender) TrySend(t Tuple) (bool, error) {
	buf, err := AppendFrame(s.buf[:0], t)
	if err != nil {
		return false, err
	}
	s.buf = buf[:0]
	s.probeBuf = buf
	s.probeWrote = false
	s.wErr = nil
	err = s.raw.Write(s.probeFn)
	if err == nil {
		err = s.wErr
	}
	rest := s.probeBuf
	s.probeBuf = nil
	if err != nil {
		return false, fmt.Errorf("transport: try send seq %d: %w", t.Seq, err)
	}
	if !s.probeWrote {
		return false, nil
	}
	if len(rest) > 0 {
		if err := s.writeAll(rest); err != nil {
			return true, fmt.Errorf("transport: complete partial send seq %d: %w", t.Seq, err)
		}
	}
	s.sent.Add(1)
	return true, nil
}

// probeWrite is the non-parking poller callback behind TrySend: it never
// returns false (which would park the goroutine), treating EAGAIN as the
// would-block verdict instead.
func (s *Sender) probeWrite(fd uintptr) bool {
	for {
		n, errno := syscall.Write(int(fd), s.probeBuf)
		if n > 0 {
			s.probeWrote = true
			s.probeBuf = s.probeBuf[n:]
			if len(s.probeBuf) == 0 {
				return true
			}
			continue
		}
		switch {
		case errors.Is(errno, syscall.EAGAIN):
			return true // never park during the probe
		case errors.Is(errno, syscall.EINTR):
			continue
		case errno != nil:
			s.wErr = errno
			return true
		default:
			s.wErr = errWroteZero
			return true
		}
	}
}

// account closes out an in-progress blocking episode: the time since the
// park started is added to the cumulative counters, exactly as the paper's
// transport adds the select(2) wait to the per-connection counter.
func (s *Sender) account() {
	if !s.blocked {
		return
	}
	if d := s.now().Sub(s.blockedAt); d > 0 {
		s.cumBlockingNS.Add(int64(d))
		s.totalBlockingNS.Add(int64(d))
	}
	s.blocked = false
}

// rawWrite is the parking poller callback behind writeAll and Flush. It
// writes wq[wqHead:] with write(2) for the final buffer and writev(2) when
// several remain, parking on EAGAIN (electing to block) and accounting the
// parked time on re-entry. Partial writes advance the cursor by exact byte
// count, so accounting stays attached to this connection no matter where
// the kernel splits the write.
func (s *Sender) rawWrite(fd uintptr) bool {
	// Re-entry after a park: the socket became writable; record how long
	// the "select" lasted.
	s.account()
	for s.wqHead < len(s.wq) {
		var n int
		var errno error
		if s.wqHead == len(s.wq)-1 {
			n, errno = syscall.Write(int(fd), s.wq[s.wqHead])
		} else {
			n, errno = s.writev(fd)
		}
		if n > 0 {
			s.consume(n)
			continue
		}
		switch {
		case errors.Is(errno, syscall.EAGAIN):
			// The send would have blocked (MSG_DONTWAIT semantics).
			// Record the event and elect to block: returning false
			// parks this goroutine until the descriptor is writable.
			s.blocked = true
			s.blockedAt = s.now()
			s.blockEvents.Add(1)
			return false
		case errors.Is(errno, syscall.EINTR):
			continue
		case errno != nil:
			s.wErr = errno
			return true
		default:
			s.wErr = errWroteZero
			return true
		}
	}
	return true
}

// writev issues one vectored write over the unwritten buffers (at most
// iovMax of them; the loop in rawWrite picks up the rest).
func (s *Sender) writev(fd uintptr) (int, error) {
	iov := s.iov[:0]
	for _, b := range s.wq[s.wqHead:] {
		if len(b) == 0 {
			continue
		}
		if len(iov) == iovMax {
			break
		}
		iov = append(iov, syscall.Iovec{Base: &b[0]})
		iov[len(iov)-1].SetLen(len(b))
	}
	s.iov = iov[:0] // keep grown capacity for the next call
	if len(iov) == 0 {
		return 0, nil
	}
	n, _, errno := syscall.Syscall(syscall.SYS_WRITEV, fd,
		uintptr(unsafe.Pointer(&iov[0])), uintptr(len(iov)))
	if errno != 0 {
		return int(n), errno
	}
	return int(n), nil
}

// consume advances the write cursor by n written bytes, across buffer
// boundaries. Fully written buffers are released immediately so a parked
// batch does not pin payload memory it no longer needs.
func (s *Sender) consume(n int) {
	for n > 0 && s.wqHead < len(s.wq) {
		b := s.wq[s.wqHead]
		if n < len(b) {
			s.wq[s.wqHead] = b[n:]
			return
		}
		n -= len(b)
		s.wq[s.wqHead] = nil
		s.wqHead++
	}
}

// SetStallTimeout bounds how long one flush may stay parked on a socket
// that is not draining (0 disables; negative is treated as 0). A firing
// deadline surfaces as an i/o timeout from the send, which recovery-mode
// callers route through the ordinary connection-failure/replay path. Call
// from the sending goroutine (or before it starts).
func (s *Sender) SetStallTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.stallTimeout = d
	s.stallArmedAt = time.Time{}
}

// armStallDeadline rolls the write deadline forward when more than half the
// stall window has elapsed since it was last armed. Never called from
// inside the poller callback: SetWriteDeadline on a conn whose RawConn
// callback is executing is not safe, so the deadline is only touched here,
// between raw.Write calls.
func (s *Sender) armStallDeadline() {
	if s.stallTimeout <= 0 {
		return
	}
	now := time.Now()
	if !s.stallArmedAt.IsZero() && now.Sub(s.stallArmedAt) <= s.stallTimeout/2 {
		return
	}
	s.conn.SetWriteDeadline(now.Add(s.stallTimeout))
	s.stallArmedAt = now
}

// flushWrite drives wq through the poller callback and resets the cursor.
// If the poller wait ended in a connection error the callback never re-ran,
// so accounting is closed out here too: the wait is not lost.
func (s *Sender) flushWrite() error {
	s.wErr = nil
	s.blocked = false
	s.armStallDeadline()
	err := s.raw.Write(s.writeFn)
	s.account()
	for i := range s.wq {
		s.wq[i] = nil
	}
	s.wq = s.wq[:0]
	s.wqHead = 0
	if err != nil {
		return err
	}
	return s.wErr
}

// writeAll writes p using non-blocking write(2) calls, parking in the
// runtime poller on EAGAIN and accounting the parked time.
func (s *Sender) writeAll(p []byte) error {
	if len(p) == 0 {
		return nil
	}
	s.wq = append(s.wq[:0], p)
	s.wqHead = 0
	return s.flushWrite()
}

// CumulativeBlocking returns the sampled blocking-time counter. The
// controller differences successive readings to obtain the blocking rate.
func (s *Sender) CumulativeBlocking() time.Duration {
	return time.Duration(s.cumBlockingNS.Load())
}

// ResetCumulative zeroes the sampled counter, emulating the transport
// layer's periodic reset (Figure 2). The lifetime counter is unaffected.
func (s *Sender) ResetCumulative() {
	s.cumBlockingNS.Store(0)
}

// TotalBlocking returns the lifetime blocking time on this connection.
func (s *Sender) TotalBlocking() time.Duration {
	return time.Duration(s.totalBlockingNS.Load())
}

// BlockEvents returns how many sends would have blocked.
func (s *Sender) BlockEvents() int64 {
	return s.blockEvents.Load()
}

// Sent returns how many tuples have been sent.
func (s *Sender) Sent() int64 {
	return s.sent.Load()
}

// Flushes returns how many batch flushes have completed.
func (s *Sender) Flushes() int64 {
	return s.flushes.Load()
}

// FlushedTuples returns how many tuples left through batch flushes.
func (s *Sender) FlushedTuples() int64 {
	return s.flushedTuples.Load()
}

// Close closes the underlying connection.
func (s *Sender) Close() error {
	return s.conn.Close()
}
