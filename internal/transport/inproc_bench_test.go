package transport

import (
	"fmt"
	"testing"
)

// BenchmarkInprocPipe measures the raw shared-memory edge: one producer
// goroutine pushing batches through the ring, one consumer draining them.
// ReportAllocs pins the zero-copy claim — past warm-up the pipe moves tuples
// with zero allocations per operation.
func BenchmarkInprocPipe(b *testing.B) {
	for _, batch := range []int{1, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			tx, rx := InprocPair(1024)
			defer tx.Close()
			defer rx.Close()
			payload := make([]byte, 64)
			ts := make([]Tuple, batch)
			for i := range ts {
				ts[i] = Tuple{Seq: uint64(i), Payload: payload}
			}
			done := make(chan int)
			go func() {
				var buf []Tuple
				got := 0
				for got < b.N*batch {
					var err error
					buf, _, err = rx.ReceiveBatch(buf, 256)
					if err != nil {
						break
					}
					got += len(buf)
				}
				done <- got
			}()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tx.SendBatch(ts); err != nil {
					b.Fatal(err)
				}
			}
			if got := <-done; got != b.N*batch {
				b.Fatalf("consumer got %d tuples, want %d", got, b.N*batch)
			}
			b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}
