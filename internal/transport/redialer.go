package transport

import (
	"fmt"
	"math/rand"
	"net"
	"time"
)

// RedialPolicy shapes the exponential backoff a Redialer applies between
// connection attempts. The zero value selects the defaults below, so a
// caller can write transport.Redialer{...} with only the address filled in.
type RedialPolicy struct {
	// Base is the delay before the second attempt (default 20ms). The
	// first attempt is immediate.
	Base time.Duration
	// Max caps the grown delay (default 2s).
	Max time.Duration
	// Multiplier grows the delay after every failure (default 2).
	Multiplier float64
	// Jitter spreads each delay uniformly in [d*(1-J), d*(1+J)] so that a
	// fleet of reconnecting splitters does not thunder in lockstep
	// (default 0.2; 0 keeps the deterministic schedule, negative disables).
	Jitter float64
	// MaxAttempts bounds the total number of dial attempts; 0 means
	// unlimited (the caller stops the redialer through the stop channel).
	MaxAttempts int
	// DialTimeout bounds each individual dial (default 2s).
	DialTimeout time.Duration
	// OnAttempt, when set, observes every dial attempt (err == nil on
	// success). The metrics layer hangs redial counters off it; it runs on
	// the redialer's goroutine and must not block.
	OnAttempt func(attempt int, err error)
}

func (p RedialPolicy) withDefaults() RedialPolicy {
	if p.Base <= 0 {
		p.Base = 20 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 2 * time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.DialTimeout <= 0 {
		p.DialTimeout = 2 * time.Second
	}
	return p
}

// Redialer re-establishes a TCP connection with exponential backoff and
// jitter. It is how a splitter lets a restarted worker rejoin a region: the
// paper assumes long-lived connections to a fixed worker set (Section 4.4),
// while production deployments treat worker churn as the normal case.
type Redialer struct {
	addr     string
	pol      RedialPolicy
	attempts int
}

// NewRedialer prepares a redialer for addr under the given policy.
func NewRedialer(addr string, pol RedialPolicy) *Redialer {
	return &Redialer{addr: addr, pol: pol.withDefaults()}
}

// Attempts returns how many dials have been made so far.
func (r *Redialer) Attempts() int {
	return r.attempts
}

// Dial attempts to connect until it succeeds, the policy's attempt budget is
// exhausted, or stop is closed. stop may be nil.
func (r *Redialer) Dial(stop <-chan struct{}) (net.Conn, error) {
	delay := r.pol.Base
	var lastErr error
	for {
		if r.pol.MaxAttempts > 0 && r.attempts >= r.pol.MaxAttempts {
			return nil, fmt.Errorf("transport: redial %s: %d attempts exhausted: %w", r.addr, r.attempts, lastErr)
		}
		r.attempts++
		conn, err := net.DialTimeout("tcp", r.addr, r.pol.DialTimeout)
		if r.pol.OnAttempt != nil {
			r.pol.OnAttempt(r.attempts, err)
		}
		if err == nil {
			return conn, nil
		}
		lastErr = err
		wait := delay
		if r.pol.Jitter > 0 {
			f := 1 + r.pol.Jitter*(2*rand.Float64()-1)
			wait = time.Duration(float64(wait) * f)
		}
		timer := time.NewTimer(wait)
		select {
		case <-stop:
			timer.Stop()
			return nil, fmt.Errorf("transport: redial %s: stopped after %d attempts: %w", r.addr, r.attempts, lastErr)
		case <-timer.C:
		}
		delay = time.Duration(float64(delay) * r.pol.Multiplier)
		if delay > r.pol.Max {
			delay = r.pol.Max
		}
	}
}
