package transport

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"testing/quick"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	tests := []struct {
		name  string
		tuple Tuple
	}{
		{"empty payload", Tuple{Seq: 0}},
		{"small payload", Tuple{Seq: 42, Payload: []byte("hello")}},
		{"binary payload", Tuple{Seq: 1 << 60, Payload: []byte{0, 255, 1, 254}}},
		{"large payload", Tuple{Seq: 7, Payload: bytes.Repeat([]byte("x"), 100_000)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			frame, err := AppendFrame(nil, tt.tuple)
			if err != nil {
				t.Fatal(err)
			}
			if len(frame) != FrameLen(tt.tuple) {
				t.Fatalf("frame length %d, want %d", len(frame), FrameLen(tt.tuple))
			}
			rc := NewReceiver(bytes.NewReader(frame))
			got, err := rc.Receive()
			if err != nil {
				t.Fatal(err)
			}
			if got.Seq != tt.tuple.Seq || !bytes.Equal(got.Payload, tt.tuple.Payload) {
				t.Fatalf("round trip changed tuple: got seq=%d len=%d", got.Seq, len(got.Payload))
			}
		})
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	prop := func(seq uint64, payload []byte) bool {
		frame, err := AppendFrame(nil, Tuple{Seq: seq, Payload: payload})
		if err != nil {
			return false
		}
		got, err := NewReceiver(bytes.NewReader(frame)).Receive()
		if err != nil {
			return false
		}
		return got.Seq == seq && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameStreamOfTuples(t *testing.T) {
	var stream []byte
	var err error
	for i := uint64(0); i < 100; i++ {
		stream, err = AppendFrame(stream, Tuple{Seq: i, Payload: []byte{byte(i)}})
		if err != nil {
			t.Fatal(err)
		}
	}
	rc := NewReceiver(bytes.NewReader(stream))
	for i := uint64(0); i < 100; i++ {
		got, err := rc.Receive()
		if err != nil {
			t.Fatalf("tuple %d: %v", i, err)
		}
		if got.Seq != i || got.Payload[0] != byte(i) {
			t.Fatalf("tuple %d decoded as seq %d", i, got.Seq)
		}
	}
	if _, err := rc.Receive(); !errors.Is(err, io.EOF) {
		t.Fatalf("end of stream error = %v, want io.EOF", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	if _, err := AppendFrame(nil, Tuple{Payload: make([]byte, MaxFrameSize)}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReceiveCorruptFrames(t *testing.T) {
	tests := []struct {
		name string
		data []byte
	}{
		{"truncated header", []byte{1, 2}},
		{"body too small", []byte{4, 0, 0, 0, 1, 2, 3, 4}},
		{"body too large", []byte{255, 255, 255, 255, 0, 0, 0, 0}},
		{"truncated payload", func() []byte {
			frame, _ := AppendFrame(nil, Tuple{Seq: 1, Payload: []byte("abcdef")})
			return frame[:len(frame)-3]
		}()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewReceiver(bytes.NewReader(tt.data)).Receive(); err == nil {
				t.Fatal("corrupt frame accepted")
			}
		})
	}
}

// tcpPair returns a connected loopback TCP pair with small send buffers so
// blocking is easy to provoke.
func tcpPair(t *testing.T) (*net.TCPConn, *net.TCPConn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type result struct {
		conn net.Conn
		err  error
	}
	accepted := make(chan result, 1)
	go func() {
		conn, err := ln.Accept()
		accepted <- result{conn, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	res := <-accepted
	if res.err != nil {
		t.Fatal(res.err)
	}
	c := client.(*net.TCPConn)
	s := res.conn.(*net.TCPConn)
	t.Cleanup(func() {
		c.Close()
		s.Close()
	})
	if err := c.SetWriteBuffer(4 << 10); err != nil {
		t.Fatal(err)
	}
	if err := s.SetReadBuffer(4 << 10); err != nil {
		t.Fatal(err)
	}
	return c, s
}

func TestSenderRequiresRawConn(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if _, err := NewSender(a); err == nil {
		t.Fatal("net.Pipe accepted: it has no raw descriptor")
	}
}

func TestSenderDeliversTuples(t *testing.T) {
	client, server := tcpPair(t)
	sender, err := NewSender(client)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	done := make(chan error, 1)
	var got []Tuple
	go func() {
		rc := NewReceiver(server)
		for i := 0; i < n; i++ {
			tp, err := rc.Receive()
			if err != nil {
				done <- err
				return
			}
			got = append(got, tp)
		}
		done <- nil
	}()
	payload := bytes.Repeat([]byte("p"), 128)
	for i := uint64(0); i < n; i++ {
		if err := sender.Send(Tuple{Seq: i, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if sender.Sent() != n {
		t.Fatalf("Sent = %d, want %d", sender.Sent(), n)
	}
	for i, tp := range got {
		if tp.Seq != uint64(i) {
			t.Fatalf("tuple %d has seq %d: TCP reordered?", i, tp.Seq)
		}
	}
}

func TestSenderMeasuresBlocking(t *testing.T) {
	client, server := tcpPair(t)
	sender, err := NewSender(client)
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately slow receiver: drain nothing for a while so the
	// sender's socket buffer fills and sends block.
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-started
		time.Sleep(100 * time.Millisecond)
		io.Copy(io.Discard, server)
	}()

	payload := bytes.Repeat([]byte("q"), 8<<10)
	close(started)
	deadline := time.Now().Add(5 * time.Second)
	for sender.BlockEvents() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sender never blocked despite a stalled receiver")
		}
		if err := sender.Send(Tuple{Seq: 1, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	if sender.CumulativeBlocking() <= 0 {
		t.Fatalf("cumulative blocking = %v, want positive", sender.CumulativeBlocking())
	}
	if sender.TotalBlocking() < sender.CumulativeBlocking() {
		t.Fatalf("total %v < cumulative %v", sender.TotalBlocking(), sender.CumulativeBlocking())
	}
	cum := sender.CumulativeBlocking()
	sender.ResetCumulative()
	if sender.CumulativeBlocking() != 0 {
		t.Fatal("ResetCumulative did not zero the sampled counter")
	}
	if sender.TotalBlocking() < cum {
		t.Fatal("ResetCumulative touched the lifetime counter")
	}
	client.Close()
	<-done
}

func TestTrySendReportsWouldBlock(t *testing.T) {
	client, server := tcpPair(t)
	sender, err := NewSender(client)
	if err != nil {
		t.Fatal(err)
	}
	// A much slower receiver than the sender: TrySend must eventually find
	// the socket buffer completely full and report would-block. The
	// receiver stays active (slowly) so that a send that partially wrote
	// before filling the buffer can still complete.
	received := make(chan Tuple, 1<<16)
	go func() {
		defer close(received)
		rc := NewReceiver(server)
		for {
			tp, err := rc.Receive()
			if err != nil {
				return
			}
			received <- tp
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Small frames: the buffer fills to the last byte and TrySend then
	// sees EAGAIN with nothing written (a clean would-block).
	payload := bytes.Repeat([]byte("r"), 64)
	sawWouldBlock := false
	deadline := time.Now().Add(10 * time.Second)
	var seq uint64
	for time.Now().Before(deadline) {
		sent, err := sender.TrySend(Tuple{Seq: seq, Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		if sent {
			seq++
			continue
		}
		sawWouldBlock = true
		break
	}
	if !sawWouldBlock {
		t.Fatal("TrySend never reported would-block with a slow receiver")
	}
	// Everything reported sent must arrive intact and in order.
	reported := sender.Sent()
	if err := client.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	var count int64
	for tp := range received {
		if tp.Seq != uint64(count) {
			t.Fatalf("tuple %d has seq %d", count, tp.Seq)
		}
		count++
	}
	if count != reported {
		t.Fatalf("received %d tuples, sender reported %d", count, reported)
	}
}
