package transport

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"streambalance/internal/chaos"
)

// receiveAll drains count tuples from conn on a goroutine and reports them.
func receiveAll(conn net.Conn, count int) (<-chan []Tuple, <-chan error) {
	out := make(chan []Tuple, 1)
	errCh := make(chan error, 1)
	go func() {
		rc := NewReceiver(conn)
		got := make([]Tuple, 0, count)
		for len(got) < count {
			tp, err := rc.Receive()
			if err != nil {
				errCh <- err
				return
			}
			got = append(got, tp)
		}
		out <- got
	}()
	return out, errCh
}

func TestSendBatchRoundTrip(t *testing.T) {
	client, server := tcpPair(t)
	sender, err := NewSender(client)
	if err != nil {
		t.Fatal(err)
	}
	// Mixed payload sizes straddling the zero-copy threshold, including
	// empty payloads and ones exactly at the boundary.
	sizes := []int{0, 1, 100, zeroCopyThreshold - 1, zeroCopyThreshold, zeroCopyThreshold + 1, 8 << 10}
	var ts []Tuple
	seq := uint64(0)
	for round := 0; round < 5; round++ {
		for _, sz := range sizes {
			p := bytes.Repeat([]byte{byte(seq)}, sz)
			ts = append(ts, Tuple{Seq: seq, Payload: p})
			seq++
		}
	}
	out, errCh := receiveAll(server, len(ts))
	if err := sender.SendBatch(ts); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-out:
		for i, tp := range got {
			if tp.Seq != ts[i].Seq || !bytes.Equal(tp.Payload, ts[i].Payload) {
				t.Fatalf("tuple %d corrupted: seq %d->%d, %d->%d payload bytes",
					i, ts[i].Seq, tp.Seq, len(ts[i].Payload), len(tp.Payload))
			}
		}
	case err := <-errCh:
		t.Fatalf("receive: %v", err)
	}
	if sender.Sent() != int64(len(ts)) {
		t.Fatalf("Sent()=%d, want %d", sender.Sent(), len(ts))
	}
	if sender.Flushes() != 1 || sender.FlushedTuples() != int64(len(ts)) {
		t.Fatalf("Flushes()=%d FlushedTuples()=%d, want 1 and %d",
			sender.Flushes(), sender.FlushedTuples(), len(ts))
	}
}

func TestBatchedAndSingleSendsInterleave(t *testing.T) {
	// Batched frames are plain concatenated frames: a receiver must not be
	// able to tell Send from SendBatch from Queue/Flush on one connection.
	client, server := tcpPair(t)
	sender, err := NewSender(client)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	const n = 3000
	out, errCh := receiveAll(server, n)
	seq := uint64(0)
	for seq < n {
		switch rng.Intn(3) {
		case 0:
			if err := sender.Send(Tuple{Seq: seq, Payload: []byte("single")}); err != nil {
				t.Fatal(err)
			}
			seq++
		case 1:
			k := 1 + rng.Intn(32)
			ts := make([]Tuple, 0, k)
			for i := 0; i < k && seq < n; i++ {
				ts = append(ts, Tuple{Seq: seq, Payload: bytes.Repeat([]byte("b"), rng.Intn(2*zeroCopyThreshold))})
				seq++
			}
			if err := sender.SendBatch(ts); err != nil {
				t.Fatal(err)
			}
		default:
			k := 1 + rng.Intn(16)
			for i := 0; i < k && seq < n; i++ {
				if err := sender.Queue(Tuple{Seq: seq, Payload: []byte("queued")}); err != nil {
					t.Fatal(err)
				}
				seq++
			}
			if err := sender.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	select {
	case got := <-out:
		for i, tp := range got {
			if tp.Seq != uint64(i) {
				t.Fatalf("tuple %d carried seq %d", i, tp.Seq)
			}
		}
	case err := <-errCh:
		t.Fatalf("receive: %v", err)
	}
	if sender.Sent() != n {
		t.Fatalf("Sent()=%d, want %d", sender.Sent(), n)
	}
}

func TestSendBatchOversizedIsAtomic(t *testing.T) {
	client, server := tcpPair(t)
	sender, err := NewSender(client)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Tuple{
		{Seq: 0, Payload: []byte("fine")},
		{Seq: 1, Payload: make([]byte, MaxFrameSize)}, // frame exceeds cap
	}
	if err := sender.SendBatch(bad); err == nil {
		t.Fatal("oversized batch accepted")
	}
	if sender.Pending() != 0 {
		t.Fatalf("failed batch left %d tuples staged", sender.Pending())
	}
	// The connection must be clean: nothing from the failed batch leaked.
	out, errCh := receiveAll(server, 1)
	if err := sender.Send(Tuple{Seq: 9, Payload: []byte("after")}); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-out:
		if got[0].Seq != 9 || !bytes.Equal(got[0].Payload, []byte("after")) {
			t.Fatalf("got %+v after failed batch", got[0])
		}
	case err := <-errCh:
		t.Fatalf("receive: %v", err)
	}
}

// TestBatchPartialWriteBoundaries is the writeAll/Flush partial-write
// regression test: a chaos proxy forwards the stream in tiny chunks, so the
// kernel reports partial writes at arbitrary byte boundaries — mid-header,
// mid-payload, across batch buffers — and the write cursor must resume
// exactly where each write stopped.
func TestBatchPartialWriteBoundaries(t *testing.T) {
	for _, chunk := range []int{1, 3, 7, 64} {
		t.Run(fmt.Sprintf("chunk=%d", chunk), func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			proxy, err := chaos.NewProxy(ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer proxy.Close()
			proxy.SetChunk(chunk)

			accepted := make(chan net.Conn, 1)
			go func() {
				conn, err := ln.Accept()
				if err == nil {
					accepted <- conn
				}
			}()
			client, err := net.Dial("tcp", proxy.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			tc := client.(*net.TCPConn)
			// A tiny send buffer forces EAGAIN mid-batch, so the cursor
			// resumes across poller parks as well as short writes.
			if err := tc.SetWriteBuffer(2 << 10); err != nil {
				t.Fatal(err)
			}
			server := <-accepted
			defer server.Close()

			sender, err := NewSender(client)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(chunk)))
			var ts []Tuple
			for seq := uint64(0); seq < 200; seq++ {
				p := make([]byte, rng.Intn(3*zeroCopyThreshold/2))
				rng.Read(p)
				ts = append(ts, Tuple{Seq: seq, Payload: p})
			}
			out, errCh := receiveAll(server, len(ts))
			var before time.Duration
			for i := 0; i < len(ts); i += 16 {
				end := i + 16
				if end > len(ts) {
					end = len(ts)
				}
				if err := sender.SendBatch(ts[i:end]); err != nil {
					t.Fatal(err)
				}
				// Blocking accounting must be monotone no matter where the
				// kernel split the writes.
				if now := sender.CumulativeBlocking(); now < before {
					t.Fatalf("cumulative blocking went backwards: %v -> %v", before, now)
				} else {
					before = now
				}
			}
			select {
			case got := <-out:
				for i, tp := range got {
					if tp.Seq != ts[i].Seq || !bytes.Equal(tp.Payload, ts[i].Payload) {
						t.Fatalf("tuple %d corrupted through chunked proxy", i)
					}
				}
			case err := <-errCh:
				t.Fatalf("receive: %v", err)
			}
		})
	}
}

// TestBatchBlockingAttribution pins the Section 3 semantics under batching:
// a batch flush that fills the socket buffer blocks, and the blocked time
// lands on that connection's counter — not on a healthy connection sending
// concurrently from the same process.
func TestBatchBlockingAttribution(t *testing.T) {
	stalledC, stalledS := tcpPair(t)
	// The healthy connection keeps its default (large) socket buffers: its
	// whole workload fits in the kernel buffer, so with its reader draining
	// it must never elect to block. tcpPair's deliberately tiny buffers
	// would add real TCP flow-control stalls and muddy the attribution.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acceptCh := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			acceptCh <- conn
		}
	}()
	healthyC, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer healthyC.Close()
	healthyS := <-acceptCh
	defer healthyS.Close()

	stalled, err := NewSender(stalledC)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := NewSender(healthyC)
	if err != nil {
		t.Fatal(err)
	}

	// The healthy connection is drained continuously; the stalled one is
	// not read until later.
	const n = 64
	payload := bytes.Repeat([]byte("h"), 1024)
	hOut, hErr := receiveAll(healthyS, n)

	batch := make([]Tuple, 8)
	seq := uint64(0)
	for i := 0; i < n/len(batch); i++ {
		for j := range batch {
			batch[j] = Tuple{Seq: seq, Payload: payload}
			seq++
		}
		if err := healthy.SendBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-hOut:
	case err := <-hErr:
		t.Fatalf("healthy receive: %v", err)
	}

	// Now stall: batches into a connection nobody reads, until a flush
	// parks. Socket buffers are 4 KiB each way, so a few 8 KiB batches in.
	sendDone := make(chan error, 1)
	go func() {
		s := uint64(0)
		b := make([]Tuple, 8)
		for i := 0; i < 32; i++ {
			for j := range b {
				b[j] = Tuple{Seq: s, Payload: payload}
				s++
			}
			if err := stalled.SendBatch(b); err != nil {
				sendDone <- err
				return
			}
		}
		sendDone <- nil
	}()

	deadline := time.After(5 * time.Second)
	for stalled.BlockEvents() == 0 {
		select {
		case <-deadline:
			t.Fatal("stalled sender never elected to block")
		case err := <-sendDone:
			t.Fatalf("stalled sender finished without blocking: %v", err)
		case <-time.After(time.Millisecond):
		}
	}
	// Let it sit blocked long enough to accrue measurable time, then
	// unblock by draining.
	time.Sleep(50 * time.Millisecond)
	sOut, sErr := receiveAll(stalledS, 32*8)
	if err := <-sendDone; err != nil {
		t.Fatal(err)
	}
	select {
	case <-sOut:
	case err := <-sErr:
		t.Fatalf("stalled receive: %v", err)
	}

	if got := stalled.TotalBlocking(); got < 40*time.Millisecond {
		t.Fatalf("stalled connection accrued only %v blocking", got)
	}
	// The healthy connection was drained throughout: transient scheduler
	// stalls aside, the deliberate 50ms+ park must not leak onto it.
	if got := healthy.TotalBlocking(); got > 10*time.Millisecond {
		t.Fatalf("healthy connection accrued %v blocking (misattribution)", got)
	}
	if stalled.CumulativeBlocking() != stalled.TotalBlocking() {
		t.Fatalf("cumulative %v != total %v before any reset",
			stalled.CumulativeBlocking(), stalled.TotalBlocking())
	}
}
