package transport

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestInprocRingFIFOWraparound(t *testing.T) {
	r := newInprocRing(4)
	if r.capacity() != 4 {
		t.Fatalf("capacity = %d, want 4", r.capacity())
	}
	seq := uint64(0)
	// Push/pop across several wraps with varying occupancy.
	for round := 0; round < 10; round++ {
		n := 1 + round%4
		for i := 0; i < n; i++ {
			if !r.push(inprocItem{t: Tuple{Seq: seq}}) {
				t.Fatalf("round %d: push %d failed with len %d", round, i, r.len())
			}
			seq++
		}
		for i := 0; i < n; i++ {
			it, ok := r.pop()
			if !ok {
				t.Fatalf("round %d: pop %d failed", round, i)
			}
			want := seq - uint64(n) + uint64(i)
			if it.t.Seq != want {
				t.Fatalf("round %d: popped seq %d, want %d", round, it.t.Seq, want)
			}
		}
	}
	// Full ring rejects; drain empties.
	for i := 0; i < 4; i++ {
		if !r.push(inprocItem{t: Tuple{Seq: uint64(i)}}) {
			t.Fatalf("fill push %d failed", i)
		}
	}
	if r.push(inprocItem{}) {
		t.Fatal("push into full ring succeeded")
	}
	if !r.full() {
		t.Fatal("full() = false on full ring")
	}
	for i := 0; i < 4; i++ {
		if _, ok := r.pop(); !ok {
			t.Fatalf("drain pop %d failed", i)
		}
	}
	if _, ok := r.pop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
}

func TestInprocRingRoundsCapacity(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultInprocRing}, {-5, DefaultInprocRing},
		{1, 2}, {2, 2}, {3, 4}, {5, 8}, {1024, 1024},
	} {
		if got := newInprocRing(tc.in).capacity(); got != tc.want {
			t.Errorf("capacity(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestInprocPairRoundTrip(t *testing.T) {
	tx, rx := InprocPair(8)
	const n = 100
	go func() {
		for i := 0; i < n; i++ {
			tuple := Tuple{Seq: uint64(i), Payload: []byte(fmt.Sprintf("p%d", i))}
			var err error
			if i%3 == 0 {
				err = tx.Send(tuple)
			} else {
				err = tx.SendBatch([]Tuple{tuple})
			}
			if err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
		tx.Close()
	}()

	var buf []Tuple
	var ref *BlockRef
	var err error
	next := uint64(0)
	for {
		buf, ref, err = rx.ReceiveBatch(buf, 7)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("receive: %v", err)
		}
		for _, tu := range buf {
			if tu.Seq != next {
				t.Fatalf("out of order: got seq %d, want %d", tu.Seq, next)
			}
			if want := fmt.Sprintf("p%d", tu.Seq); string(tu.Payload) != want {
				t.Fatalf("seq %d payload %q, want %q", tu.Seq, tu.Payload, want)
			}
			next++
		}
		// GC-owned sends must arrive refless.
		if ref != nil {
			t.Fatal("ReceiveBatch returned a ref for refless tuples")
		}
	}
	if next != n {
		t.Fatalf("received %d tuples, want %d", next, n)
	}
	if tx.Sent() != n {
		t.Fatalf("Sent() = %d, want %d", tx.Sent(), n)
	}
}

func TestInprocQueueFlushBatching(t *testing.T) {
	tx, rx := InprocPair(64)
	for i := 0; i < 5; i++ {
		if err := tx.Queue(Tuple{Seq: uint64(i)}); err != nil {
			t.Fatalf("queue: %v", err)
		}
	}
	if tx.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", tx.Pending())
	}
	// Nothing delivered until Flush.
	if got, _, _ := rx.Drain(nil, 10); len(got) != 0 {
		t.Fatalf("drained %d tuples before flush", len(got))
	}
	if err := tx.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if tx.Pending() != 0 {
		t.Fatalf("Pending after flush = %d", tx.Pending())
	}
	got, ref, err := rx.Drain(nil, 10)
	if err != nil || len(got) != 5 || ref != nil {
		t.Fatalf("drain: got %d tuples, ref %v, err %v", len(got), ref, err)
	}
	if tx.Flushes() != 1 || tx.FlushedTuples() != 5 || tx.Sent() != 5 {
		t.Fatalf("counters: flushes=%d flushedTuples=%d sent=%d",
			tx.Flushes(), tx.FlushedTuples(), tx.Sent())
	}
}

func TestInprocOversizedTupleFailsAtomically(t *testing.T) {
	tx, rx := InprocPair(8)
	big := Tuple{Seq: 1, Payload: make([]byte, MaxFrameSize)}
	if err := tx.Send(big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("Send oversized: err = %v, want ErrFrameTooLarge", err)
	}
	batch := []Tuple{{Seq: 2}, big, {Seq: 3}}
	if err := tx.SendBatch(batch); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("SendBatch oversized: err = %v", err)
	}
	// Atomic failure: nothing from the batch was delivered or left staged.
	if tx.Pending() != 0 {
		t.Fatalf("Pending after failed batch = %d", tx.Pending())
	}
	if got, _, _ := rx.Drain(nil, 10); len(got) != 0 {
		t.Fatalf("failed batch leaked %d tuples", len(got))
	}
	ref := blockRefPool.Get().(*BlockRef)
	ref.refs.Store(int64(len(batch)))
	if err := tx.SendBatchOwned(batch, ref); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("SendBatchOwned oversized: err = %v", err)
	}
	// All references consumed on the failure path (over-release would panic).
	if got := ref.Refs(); got != 0 {
		t.Fatalf("failed SendBatchOwned left %d refs", got)
	}
}

// TestInprocOwnershipTransfer pins the zero-copy contract: payload bytes
// cross the edge by reference (no copy), and the upstream BlockRef is
// released only when the consumer releases the batch it arrived in.
func TestInprocOwnershipTransfer(t *testing.T) {
	tx, rx := InprocPair(16)

	// Upstream ref with one reference per tuple, plus one extra held by the
	// test so we can observe the count instead of racing the recycle.
	const n = 6
	up := blockRefPool.Get().(*BlockRef)
	up.refs.Store(n + 1)
	payload := []byte("shared-block-payload")
	ts := make([]Tuple, n)
	for i := range ts {
		ts[i] = Tuple{Seq: uint64(i), Payload: payload}
	}
	if err := tx.SendBatchOwned(ts, up); err != nil {
		t.Fatalf("SendBatchOwned: %v", err)
	}
	if got := up.Refs(); got != n+1 {
		t.Fatalf("refs after delivery = %d, want %d (ownership transferred, not released)", got, n+1)
	}

	got, ref, err := rx.ReceiveBatch(nil, n)
	if err != nil {
		t.Fatalf("ReceiveBatch: %v", err)
	}
	if len(got) != n {
		t.Fatalf("received %d tuples, want %d", len(got), n)
	}
	if ref == nil {
		t.Fatal("batch of owned tuples arrived with nil ref")
	}
	if &got[0].Payload[0] != &payload[0] {
		t.Fatal("payload was copied crossing the in-proc edge")
	}
	// Per-tuple release: upstream stays alive until the last drop.
	for i := 0; i < n; i++ {
		if got := up.Refs(); got != n+1 {
			t.Fatalf("upstream released early at i=%d: refs=%d", i, got)
		}
		ref.Release()
	}
	if got := up.Refs(); got != 1 {
		t.Fatalf("refs after full release = %d, want 1 (test's own)", got)
	}
	up.Release()
}

// TestInprocMixedRefAndReflessBatch covers aggregation when only some popped
// tuples carried upstream references.
func TestInprocMixedRefAndReflessBatch(t *testing.T) {
	tx, rx := InprocPair(16)
	if err := tx.Send(Tuple{Seq: 0}); err != nil {
		t.Fatal(err)
	}
	up := blockRefPool.Get().(*BlockRef)
	up.refs.Store(2 + 1)
	if err := tx.SendBatchOwned([]Tuple{{Seq: 1}, {Seq: 2}}, up); err != nil {
		t.Fatal(err)
	}
	if err := tx.Send(Tuple{Seq: 3}); err != nil {
		t.Fatal(err)
	}
	got, ref, err := rx.ReceiveBatch(nil, 8)
	if err != nil || len(got) != 4 {
		t.Fatalf("got %d tuples, err %v", len(got), err)
	}
	if ref == nil {
		t.Fatal("mixed batch should carry a ref (two tuples are pooled)")
	}
	if got := ref.Refs(); got != 4 {
		t.Fatalf("batch ref holds %d refs, want one per tuple = 4", got)
	}
	ref.ReleaseN(4)
	if got := up.Refs(); got != 1 {
		t.Fatalf("upstream refs after batch release = %d, want 1", got)
	}
	up.Release()
}

func TestInprocSenderBlocksAndAccounts(t *testing.T) {
	tx, rx := InprocPair(2)
	for i := 0; i < 2; i++ {
		if err := tx.Send(Tuple{Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() {
		done <- tx.Send(Tuple{Seq: 2}) // ring full: must park
	}()
	select {
	case err := <-done:
		t.Fatalf("send into full ring returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	// Drain one slot: the parked send completes.
	if got, _, err := rx.ReceiveBatch(nil, 1); err != nil || len(got) != 1 {
		t.Fatalf("receive: %d tuples, err %v", len(got), err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("unparked send failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("send still parked after slot freed")
	}
	if tx.BlockEvents() == 0 {
		t.Fatal("no block events recorded for a full-ring park")
	}
	if tx.CumulativeBlocking() < 40*time.Millisecond {
		t.Fatalf("cumulative blocking %v, want >= ~50ms park", tx.CumulativeBlocking())
	}
	if tx.TotalBlocking() < tx.CumulativeBlocking() {
		t.Fatal("total blocking < cumulative")
	}
	tx.ResetCumulative()
	if tx.CumulativeBlocking() != 0 {
		t.Fatal("ResetCumulative did not zero the sampled counter")
	}
	if tx.TotalBlocking() < 40*time.Millisecond {
		t.Fatal("ResetCumulative clobbered the lifetime counter")
	}
}

func TestInprocReceiverBlocksUntilData(t *testing.T) {
	tx, rx := InprocPair(8)
	got := make(chan int, 1)
	go func() {
		ts, _, err := rx.ReceiveBatch(nil, 4)
		if err != nil {
			got <- -1
			return
		}
		got <- len(ts)
	}()
	select {
	case n := <-got:
		t.Fatalf("ReceiveBatch returned %d before any send", n)
	case <-time.After(50 * time.Millisecond):
	}
	if err := tx.Send(Tuple{Seq: 7}); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-got:
		if n != 1 {
			t.Fatalf("ReceiveBatch returned %d tuples, want 1", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ReceiveBatch still parked after send")
	}
}

func TestInprocSenderCloseGivesEOFAfterDrain(t *testing.T) {
	tx, rx := InprocPair(8)
	for i := 0; i < 3; i++ {
		if err := tx.Send(Tuple{Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Close(); err != nil {
		t.Fatal(err)
	}
	// Buffered tuples still arrive.
	got, _, err := rx.ReceiveBatch(nil, 10)
	if err != nil || len(got) != 3 {
		t.Fatalf("post-close drain: %d tuples, err %v", len(got), err)
	}
	if _, _, err := rx.ReceiveBatch(nil, 10); !errors.Is(err, io.EOF) {
		t.Fatalf("after drain err = %v, want io.EOF", err)
	}
	// Sends after local close fail.
	if err := tx.Send(Tuple{Seq: 9}); !errors.Is(err, ErrInprocClosed) {
		t.Fatalf("send after close err = %v", err)
	}
}

func TestInprocSenderCloseUnblocksParkedReceiver(t *testing.T) {
	tx, rx := InprocPair(8)
	errc := make(chan error, 1)
	go func() {
		_, _, err := rx.ReceiveBatch(nil, 4)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	tx.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, io.EOF) {
			t.Fatalf("parked receive err = %v, want io.EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("receiver still parked after sender close")
	}
}

func TestInprocReceiverCloseUnblocksParkedSender(t *testing.T) {
	tx, rx := InprocPair(2)
	for i := 0; i < 2; i++ {
		if err := tx.Send(Tuple{Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	errc := make(chan error, 1)
	go func() { errc <- tx.Send(Tuple{Seq: 2}) }()
	time.Sleep(20 * time.Millisecond)
	rx.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrInprocClosed) {
			t.Fatalf("parked send err = %v, want ErrInprocClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sender still parked after receiver close")
	}
	// Future receives on the closed receiver fail too.
	if _, _, err := rx.ReceiveBatch(nil, 4); !errors.Is(err, ErrInprocClosed) {
		t.Fatalf("receive after close err = %v", err)
	}
}

// TestInprocReceiverCloseReleasesBufferedRefs pins the teardown sweep: block
// references stranded in the ring by a receiver close are released, not
// leaked.
func TestInprocReceiverCloseReleasesBufferedRefs(t *testing.T) {
	tx, rx := InprocPair(16)
	const n = 5
	up := blockRefPool.Get().(*BlockRef)
	up.refs.Store(n + 1)
	ts := make([]Tuple, n)
	for i := range ts {
		ts[i] = Tuple{Seq: uint64(i)}
	}
	if err := tx.SendBatchOwned(ts, up); err != nil {
		t.Fatal(err)
	}
	if got := up.Refs(); got != n+1 {
		t.Fatalf("refs before close = %d", got)
	}
	rx.Close()
	if got := up.Refs(); got != 1 {
		t.Fatalf("refs after receiver close = %d, want 1 (sweep released %d)", got, n)
	}
	up.Release()
}

// TestInprocCloseRaceNoLeakedRefs hammers the push/close race: a sender
// delivering owned batches while the receiver closes concurrently. Every
// reference must be consumed exactly once — whether the tuple was consumed,
// swept by the receiver's close, or bounced at the sender.
func TestInprocCloseRaceNoLeakedRefs(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		tx, rx := InprocPair(4)
		const n = 32
		up := blockRefPool.Get().(*BlockRef)
		// One extra test-held reference keeps the count observable.
		up.refs.Store(n + 1)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			buf := make([]Tuple, 0, 8)
			for i := 0; i < n; i++ {
				var err error
				buf = buf[:0]
				buf = append(buf, Tuple{Seq: uint64(i)})
				err = tx.SendBatchOwned(buf, up)
				if err != nil {
					// Remaining references are ours to drop: the failed
					// call consumed only its own batch's references.
					up.ReleaseN(n - 1 - i)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			var buf []Tuple
			var ref *BlockRef
			var err error
			consumed := 0
			limit := rand.Intn(n)
			for consumed < limit {
				buf, ref, err = rx.ReceiveBatch(buf, 8)
				if err != nil {
					return
				}
				consumed += len(buf)
				ref.ReleaseN(len(buf))
			}
			rx.Close()
		}()
		wg.Wait()
		// However the race resolved, exactly the test's reference remains.
		if got := up.Refs(); got != 1 {
			t.Fatalf("trial %d: refs = %d, want 1", trial, got)
		}
		up.Release()
		tx.Close()
	}
}

func TestInprocStallTimeout(t *testing.T) {
	tx, rx := InprocPair(2)
	tx.SetStallTimeout(60 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if err := tx.Send(Tuple{Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	err := tx.Send(Tuple{Seq: 2})
	if err == nil {
		t.Fatal("send into never-drained ring succeeded")
	}
	if !errors.Is(err, errInprocStall) {
		t.Fatalf("err = %v, want stall", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stall took %v, bound was 60ms", elapsed)
	}
	// A healthy peer after the stall keeps working: stall state must not
	// leak into the next delivery.
	go func() {
		time.Sleep(10 * time.Millisecond)
		rx.ReceiveBatch(nil, 4)
	}()
	if err := tx.Send(Tuple{Seq: 3}); err != nil {
		t.Fatalf("send after drain failed: %v", err)
	}
	rx.Close()
}

func TestInprocStallSparesHealthyPeer(t *testing.T) {
	tx, rx := InprocPair(2)
	tx.SetStallTimeout(500 * time.Millisecond)
	done := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 64 && err == nil; i++ {
			err = tx.Send(Tuple{Seq: uint64(i)})
		}
		done <- err
	}()
	// Slow but live consumer: each individual park stays under the bound.
	var got int
	var buf []Tuple
	for got < 64 {
		time.Sleep(5 * time.Millisecond)
		buf, _, _ = rx.Drain(buf, 4)
		got += len(buf)
	}
	if err := <-done; err != nil {
		t.Fatalf("healthy-but-slow peer tripped the stall bound: %v", err)
	}
}

func TestInprocConcurrentStress(t *testing.T) {
	capacities := []int{1, 2, 8, 64}
	for _, capacity := range capacities {
		capacity := capacity
		t.Run(fmt.Sprintf("cap=%d", capacity), func(t *testing.T) {
			tx, rx := InprocPair(capacity)
			const n = 5000
			go func() {
				batch := make([]Tuple, 0, 8)
				seq := uint64(0)
				for seq < n {
					batch = batch[:0]
					sz := 1 + int(seq%7)
					for i := 0; i < sz && seq < n; i++ {
						batch = append(batch, Tuple{Seq: seq})
						seq++
					}
					if err := tx.SendBatch(batch); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				}
				tx.Close()
			}()
			var buf []Tuple
			next := uint64(0)
			for {
				var err error
				buf, _, err = rx.ReceiveBatch(buf, 1+int(next%9))
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					t.Fatalf("receive: %v", err)
				}
				for _, tu := range buf {
					if tu.Seq != next {
						t.Fatalf("out of order: got %d, want %d", tu.Seq, next)
					}
					next++
				}
			}
			if next != n {
				t.Fatalf("received %d, want %d", next, n)
			}
		})
	}
}

// TestInprocSteadyStateAllocs pins the zero-copy claim where it is
// measurable deterministically: a send/receive cycle in steady state (buffers
// warmed) allocates nothing on either side.
func TestInprocSteadyStateAllocs(t *testing.T) {
	tx, rx := InprocPair(256)
	payload := make([]byte, 64)
	batch := make([]Tuple, 16)
	var buf []Tuple
	seq := uint64(0)
	cycle := func() {
		for i := range batch {
			batch[i] = Tuple{Seq: seq, Payload: payload}
			seq++
		}
		if err := tx.SendBatch(batch); err != nil {
			t.Fatal(err)
		}
		drained := 0
		for drained < len(batch) {
			var err error
			buf, _, err = rx.ReceiveBatch(buf, 16)
			if err != nil {
				t.Fatal(err)
			}
			drained += len(buf)
		}
	}
	// Warm-up grows the staging slices once.
	for i := 0; i < 10; i++ {
		cycle()
	}
	allocs := testing.AllocsPerRun(100, cycle)
	if allocs != 0 {
		t.Fatalf("steady-state send/receive cycle allocates %.1f/op, want 0", allocs)
	}
}

func TestInprocCloseIdempotent(t *testing.T) {
	tx, rx := InprocPair(4)
	for i := 0; i < 3; i++ {
		if err := tx.Close(); err != nil {
			t.Fatalf("tx.Close #%d: %v", i, err)
		}
		if err := rx.Close(); err != nil {
			t.Fatalf("rx.Close #%d: %v", i, err)
		}
	}
}
