package transport

import "time"

// BatchSender is the transport-neutral send half of one splitter→worker or
// worker→merger edge. The paper's balancer depends only on the per-connection
// cumulative-blocking signal, not on TCP itself: any transport that attempts
// each send without blocking, elects to block when its buffer is full, and
// times the wait into the cumulative counters drives core.Balancer exactly
// like a TCP connection. Two implementations exist — the TCP Sender
// (non-blocking write(2)/writev(2) with poller parks) and the in-process
// InprocSender (bounded SPSC ring with condvar parks) — and the runtime's
// splitter, worker and controller are written against this interface so a
// region can mix them per edge.
//
// The concurrency contract matches Sender: Send, Queue, Flush, SendBatch and
// SendBatchOwned may be called from only one goroutine at a time; the
// counters may be read concurrently; Close may be called from any goroutine
// (it unblocks an elected-to-block send in progress).
type BatchSender interface {
	// Send frames and delivers one tuple, electing to block (and timing the
	// block) when the transport's buffer is full.
	Send(t Tuple) error
	// Queue stages one tuple in the pending batch without delivering.
	// Payloads queued zero-copy must not be mutated until Flush returns.
	Queue(t Tuple) error
	// Pending returns how many tuples are staged and not yet flushed.
	Pending() int
	// Flush delivers every staged tuple as one batch under one
	// elect-to-block accounting episode.
	Flush() error
	// SendBatch stages and flushes ts as one batch, atomically failing on an
	// unencodable tuple.
	SendBatch(ts []Tuple) error
	// SendBatchOwned is SendBatch with ownership transfer: ref holds one
	// block reference per tuple of ts (the references a worker's input
	// ReceiveBatch returned), and the call consumes all of them. A TCP
	// sender serializes the tuples and releases the references; an in-proc
	// sender hands the references downstream with the tuples, so pooled
	// payload blocks stay alive — unserialized and uncopied — until the
	// final consumer releases them. A nil ref is valid (GC-owned payloads).
	SendBatchOwned(ts []Tuple, ref *BlockRef) error
	// SetStallTimeout bounds how long one flush may stay blocked on a peer
	// that is not draining (0 disables).
	SetStallTimeout(d time.Duration)
	// CumulativeBlocking returns the sampled Section 3 blocking counter;
	// the controller differences successive readings to obtain the rate.
	CumulativeBlocking() time.Duration
	// ResetCumulative zeroes the sampled counter (the transport layer's
	// periodic reset); the lifetime counter is unaffected.
	ResetCumulative()
	// TotalBlocking returns the lifetime blocking time on this edge.
	TotalBlocking() time.Duration
	// BlockEvents returns how many sends elected to block.
	BlockEvents() int64
	// Sent returns how many tuples have been delivered.
	Sent() int64
	// Flushes returns how many batch flushes have completed.
	Flushes() int64
	// FlushedTuples returns how many tuples left through batch flushes.
	FlushedTuples() int64
	// Close tears the edge down, unblocking a parked send with an error.
	Close() error
}

// BatchReceiver is the transport-neutral receive half of an edge: the
// batched decode surface the merger's connection readers and the workers
// consume. Payloads are handed out under the BlockRef release contract
// (ReceiveBatch returns one reference per tuple; nil when the payloads are
// GC-owned), identical across transports so the merger's ingest, dedup and
// teardown paths never know which transport fed them.
//
// ReceiveBatch and Drain may be called from only one goroutine at a time
// (the single-consumer rule); Close may be called from any goroutine and
// unblocks a waiting ReceiveBatch.
type BatchReceiver interface {
	// ReceiveBatch decodes up to max tuples into dst, blocking only for the
	// first; see Receiver.ReceiveBatch for the full contract.
	ReceiveBatch(dst []Tuple, max int) ([]Tuple, *BlockRef, error)
	// Drain decodes only tuples already buffered — it never blocks.
	Drain(dst []Tuple, max int) ([]Tuple, *BlockRef, error)
	// Close tears the receive side down, unblocking a waiting ReceiveBatch.
	Close() error
}

// Compile-time checks: both transports satisfy the edge interfaces.
var (
	_ BatchSender   = (*Sender)(nil)
	_ BatchSender   = (*InprocSender)(nil)
	_ BatchReceiver = (*Receiver)(nil)
	_ BatchReceiver = (*InprocReceiver)(nil)
)
