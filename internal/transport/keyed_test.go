package transport

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"
)

func absorbedOf(seqs ...uint64) []byte {
	var b []byte
	for _, s := range seqs {
		b = AppendAbsorbed(b, s)
	}
	return b
}

func tuplesEqual(a, b Tuple) bool {
	return a.Seq == b.Seq && a.Key == b.Key && a.Solo == b.Solo &&
		bytes.Equal(a.Absorbed, b.Absorbed) && bytes.Equal(a.Payload, b.Payload)
}

func TestKeyedFrameRoundTrip(t *testing.T) {
	tests := []struct {
		name  string
		tuple Tuple
	}{
		{"keyed", Tuple{Seq: 3, Key: 7, Payload: []byte("k")}},
		{"keyed empty payload", Tuple{Seq: 3, Key: 7}},
		{"keyed solo", Tuple{Seq: 9, Key: 1, Solo: true, Payload: []byte("replay")}},
		{"keyed max key", Tuple{Seq: 1, Key: ^uint64(0), Payload: []byte("x")}},
		{"combined", Tuple{Seq: 10, Key: 4, Absorbed: absorbedOf(12, 15, 99), Payload: []byte("sum")}},
		{"combined no payload", Tuple{Seq: 10, Key: 4, Absorbed: absorbedOf(11)}},
		{"combined solo", Tuple{Seq: 2, Key: 5, Solo: true, Absorbed: absorbedOf(6), Payload: []byte("c")}},
		{"combined large payload", Tuple{Seq: 8, Key: 2, Absorbed: absorbedOf(20, 21), Payload: bytes.Repeat([]byte("z"), 100_000)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			frame, err := AppendFrame(nil, tt.tuple)
			if err != nil {
				t.Fatal(err)
			}
			if len(frame) != FrameLen(tt.tuple) {
				t.Fatalf("frame length %d, want %d", len(frame), FrameLen(tt.tuple))
			}
			got, err := NewReceiver(bytes.NewReader(frame)).Receive()
			if err != nil {
				t.Fatal(err)
			}
			if !tuplesEqual(got, tt.tuple) {
				t.Fatalf("round trip changed tuple: got %+v want %+v", got, tt.tuple)
			}
			if got.AbsorbedCount() != tt.tuple.AbsorbedCount() {
				t.Fatalf("absorbed count %d, want %d", got.AbsorbedCount(), tt.tuple.AbsorbedCount())
			}
			for i := 0; i < got.AbsorbedCount(); i++ {
				if got.AbsorbedSeq(i) != tt.tuple.AbsorbedSeq(i) {
					t.Fatalf("absorbed seq %d = %d, want %d", i, got.AbsorbedSeq(i), tt.tuple.AbsorbedSeq(i))
				}
			}
		})
	}
}

// TestUnkeyedFrameBytesUnchanged pins the wire-compatibility guarantee: a
// tuple with Key == 0 must encode byte-identically to the pre-keyed format
// (uint32 length with no flag bits, uint64 seq, payload).
func TestUnkeyedFrameBytesUnchanged(t *testing.T) {
	payload := []byte("legacy")
	frame, err := AppendFrame(nil, Tuple{Seq: 77, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	want = binary.LittleEndian.AppendUint32(want, uint32(8+len(payload)))
	want = binary.LittleEndian.AppendUint64(want, 77)
	want = append(want, payload...)
	if !bytes.Equal(frame, want) {
		t.Fatalf("unkeyed frame bytes changed:\n got %x\nwant %x", frame, want)
	}
}

func TestKeyedFrameRoundTripProperty(t *testing.T) {
	prop := func(seq, key uint64, solo bool, absorbed []uint64, payload []byte) bool {
		if key == 0 {
			key = 1
		}
		in := Tuple{Seq: seq, Key: key, Solo: solo, Payload: payload}
		for _, a := range absorbed {
			in.Absorbed = AppendAbsorbed(in.Absorbed, a)
		}
		frame, err := AppendFrame(nil, in)
		if err != nil {
			return false
		}
		got, err := NewReceiver(bytes.NewReader(frame)).Receive()
		if err != nil {
			return false
		}
		return tuplesEqual(got, in)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestKeyedBatchMixed interleaves keyed, combined and legacy frames on one
// stream and decodes them through the batched path, proving receivers need no
// per-frame mode switching.
func TestKeyedBatchMixed(t *testing.T) {
	ts := []Tuple{
		{Seq: 0, Payload: []byte("plain")},
		{Seq: 1, Key: 9, Payload: []byte("keyed")},
		{Seq: 2, Key: 9, Absorbed: absorbedOf(3, 4), Payload: []byte("combined")},
		{Seq: 5, Key: 2, Solo: true, Payload: []byte("solo")},
		{Seq: 6},
	}
	wire, err := AppendBatch(nil, ts)
	if err != nil {
		t.Fatal(err)
	}
	rc := NewReceiver(bytes.NewReader(wire))
	got, ref, err := rc.ReceiveBatch(nil, len(ts))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ts) {
		t.Fatalf("decoded %d tuples, want %d", len(got), len(ts))
	}
	for i := range ts {
		if !tuplesEqual(got[i], ts[i]) {
			t.Fatalf("tuple %d: got %+v want %+v", i, got[i], ts[i])
		}
	}
	ref.ReleaseN(len(got))
}

func TestKeyedEncodeErrors(t *testing.T) {
	if _, err := AppendFrame(nil, Tuple{Seq: 1, Absorbed: absorbedOf(2)}); err == nil {
		t.Fatal("absorbed seqs on an unkeyed tuple accepted")
	}
	if _, err := AppendFrame(nil, Tuple{Seq: 1, Key: 3, Absorbed: []byte{1, 2, 3}}); err == nil {
		t.Fatal("misaligned absorbed buffer accepted")
	}
	if err := checkFrameable(Tuple{Seq: 1, Absorbed: absorbedOf(2)}); err == nil {
		t.Fatal("checkFrameable accepted absorbed seqs on an unkeyed tuple")
	}
	// The key and absorbed fields count against the frame bound.
	over := Tuple{Key: 1, Absorbed: absorbedOf(1, 2), Payload: make([]byte, MaxFrameSize-8-8-4-16+1)}
	if _, err := AppendFrame(nil, over); err == nil {
		t.Fatal("keyed frame exceeding MaxFrameSize accepted")
	}
	if err := checkFrameable(over); err == nil {
		t.Fatal("checkFrameable accepted oversized keyed frame")
	}
}

func TestKeyedCorruptFrames(t *testing.T) {
	mk := func(word uint32, rest ...byte) []byte {
		b := binary.LittleEndian.AppendUint32(nil, word)
		return append(b, rest...)
	}
	seq := make([]byte, 8)
	tests := []struct {
		name string
		data []byte
	}{
		{"combined flag without keyed", mk(flagCombined|12, append(seq, 0, 0, 0, 0)...)},
		{"solo flag without keyed", mk(flagSolo|8, seq...)},
		{"keyed body too small", mk(flagKeyed|8, seq...)},
		{"combined body too small", mk(flagKeyed|flagCombined|16, append(seq, make([]byte, 8)...)...)},
		{"combined count zero", mk(flagKeyed|flagCombined|20, append(seq, make([]byte, 12)...)...)},
		{"combined count exceeds body", func() []byte {
			b := binary.LittleEndian.AppendUint32(nil, flagKeyed|flagCombined|28)
			b = binary.LittleEndian.AppendUint64(b, 1)     // seq
			b = binary.LittleEndian.AppendUint64(b, 2)     // key
			b = binary.LittleEndian.AppendUint32(b, 1<<20) // count far beyond body
			return append(b, make([]byte, 8)...)
		}()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewReceiver(bytes.NewReader(tt.data)).Receive(); err == nil {
				t.Fatal("corrupt keyed frame accepted (blocking path)")
			}
			rc := NewReceiver(bytes.NewReader(tt.data))
			if _, _, err := rc.Drain(nil, 8); err == nil {
				if _, err := rc.Receive(); err == nil || err == io.EOF {
					t.Fatal("corrupt keyed frame accepted (buffered path)")
				}
			}
		})
	}
}

// repeatReader loops one encoded stream forever, so alloc measurements can
// run a warm receiver indefinitely.
type repeatReader struct {
	data []byte
	off  int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	n := copy(p, r.data[r.off:])
	r.off = (r.off + n) % len(r.data)
	return n, nil
}

// TestKeyedReceiveBatchAllocFree proves the steady-state keyed receive path
// allocates nothing: payload and absorbed bytes are carved from pooled
// blocks, and the batch slice and BlockRef recycle.
func TestKeyedReceiveBatchAllocFree(t *testing.T) {
	var wire []byte
	var err error
	for i := uint64(0); i < 64; i++ {
		tu := Tuple{Seq: i, Key: i%7 + 1, Payload: []byte("payload-bytes")}
		if i%8 == 0 {
			tu.Absorbed = absorbedOf(i+100, i+101)
		}
		wire, err = AppendFrame(wire, tu)
		if err != nil {
			t.Fatal(err)
		}
	}
	rc := NewReceiver(&repeatReader{data: wire})
	var batch []Tuple
	var ref *BlockRef
	// Warm the pools and the batch slice.
	for i := 0; i < 32; i++ {
		batch, ref, err = rc.ReceiveBatch(batch, 64)
		if err != nil {
			t.Fatal(err)
		}
		ref.ReleaseN(len(batch))
	}
	allocs := testing.AllocsPerRun(100, func() {
		batch, ref, err = rc.ReceiveBatch(batch, 64)
		if err != nil {
			t.Fatal(err)
		}
		ref.ReleaseN(len(batch))
	})
	if allocs > 0 {
		t.Fatalf("keyed ReceiveBatch allocates %.1f per op, want 0", allocs)
	}
}

// TestKeyedSendBatchAllocFree proves the keyed encode path stages frames
// without allocating once buffers are warm.
func TestKeyedSendBatchAllocFree(t *testing.T) {
	absorbed := absorbedOf(5, 6, 7)
	payload := []byte("payload-bytes")
	buf := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = AppendFrame(buf[:0], Tuple{Seq: 1, Key: 3, Absorbed: absorbed, Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("keyed AppendFrame allocates %.1f per op, want 0", allocs)
	}
}
