package transport

import (
	"errors"
	"net"
	"testing"
	"time"
)

// TestSenderStallTimeout parks a sender against a peer that never reads and
// asserts the stall bound converts the indefinite park into a timeout error
// within a few multiples of the configured deadline.
func TestSenderStallTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, aerr := ln.Accept()
		if aerr == nil {
			accepted <- c
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Shrink the send buffer so the park happens after a handful of writes.
	conn.(*net.TCPConn).SetWriteBuffer(8 << 10)

	s, err := NewSender(conn)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const stall = 200 * time.Millisecond
	s.SetStallTimeout(stall)

	payload := make([]byte, 32<<10)
	start := time.Now()
	var sendErr error
	for i := 0; i < 10000 && sendErr == nil; i++ {
		sendErr = s.Send(Tuple{Seq: uint64(i), Payload: payload})
	}
	elapsed := time.Since(start)
	if sendErr == nil {
		t.Fatal("sends never failed against a peer that never reads")
	}
	var nerr net.Error
	if !errors.As(sendErr, &nerr) || !nerr.Timeout() {
		t.Fatalf("want a timeout error, got %v", sendErr)
	}
	// The deadline re-arms on progress, so the bound is a few multiples of
	// the stall timeout, never unbounded.
	if elapsed > 10*stall {
		t.Errorf("stalled send took %v to fail, want within a few multiples of %v", elapsed, stall)
	}

	peer := <-accepted
	peer.Close()
}

// TestSenderStallTimeoutSparesHealthyPeer drives the same sender shape
// against a peer that drains: the stall deadline must never fire.
func TestSenderStallTimeoutSparesHealthyPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		c, aerr := ln.Accept()
		if aerr != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 64<<10)
		for {
			if _, rerr := c.Read(buf); rerr != nil {
				return
			}
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSender(conn)
	if err != nil {
		t.Fatal(err)
	}
	s.SetStallTimeout(100 * time.Millisecond)

	payload := make([]byte, 16<<10)
	for i := 0; i < 2000; i++ {
		if err := s.Send(Tuple{Seq: uint64(i), Payload: payload}); err != nil {
			t.Fatalf("send %d failed against a healthy peer: %v", i, err)
		}
	}
	s.Close()
	conn.Close()
	<-drained
}
