package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReceive throws arbitrary bytes at the frame decoder: it must never
// panic and must either produce a tuple or a clean error.
func FuzzReceive(f *testing.F) {
	good, _ := AppendFrame(nil, Tuple{Seq: 7, Payload: []byte("payload")})
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255, 1, 2, 3})
	f.Add(append(good, good...))
	f.Fuzz(func(t *testing.T, data []byte) {
		rc := NewReceiver(bytes.NewReader(data))
		for i := 0; i < 100; i++ {
			_, err := rc.Receive()
			if err != nil {
				if errors.Is(err, io.EOF) {
					return
				}
				return // any clean error ends the stream
			}
		}
	})
}

// FuzzRoundTrip checks that encode/decode is the identity for any payload.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), []byte(nil))
	f.Add(uint64(1<<63), []byte("hello"))
	f.Fuzz(func(t *testing.T, seq uint64, payload []byte) {
		frame, err := AppendFrame(nil, Tuple{Seq: seq, Payload: payload})
		if err != nil {
			if len(payload) > MaxFrameSize-8 {
				return // oversized payloads are rejected by contract
			}
			t.Fatalf("AppendFrame: %v", err)
		}
		got, err := NewReceiver(bytes.NewReader(frame)).Receive()
		if err != nil {
			t.Fatalf("Receive: %v", err)
		}
		if got.Seq != seq || !bytes.Equal(got.Payload, payload) {
			t.Fatalf("round trip changed tuple: seq %d->%d", seq, got.Seq)
		}
	})
}
