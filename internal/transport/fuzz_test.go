package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzReceive throws arbitrary bytes at the frame decoder: it must never
// panic and must either produce a tuple or a clean error.
func FuzzReceive(f *testing.F) {
	good, _ := AppendFrame(nil, Tuple{Seq: 7, Payload: []byte("payload")})
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255, 1, 2, 3})
	f.Add(append(good, good...))
	f.Fuzz(func(t *testing.T, data []byte) {
		rc := NewReceiver(bytes.NewReader(data))
		for i := 0; i < 100; i++ {
			_, err := rc.Receive()
			if err != nil {
				if errors.Is(err, io.EOF) {
					return
				}
				return // any clean error ends the stream
			}
		}
	})
}

// FuzzBatchRoundTrip checks that a batch — concatenated frames from
// AppendBatch — decodes back to exactly the tuples that went in, for any
// split of fuzz bytes into payloads. A batch has no wire header of its own,
// so this also pins the invariant that batched and per-tuple senders are
// indistinguishable to the receiver.
func FuzzBatchRoundTrip(f *testing.F) {
	f.Add([]byte("hello"), uint8(2))
	f.Add([]byte{}, uint8(0))
	f.Add(bytes.Repeat([]byte{7}, 300), uint8(9))
	f.Fuzz(func(t *testing.T, data []byte, k uint8) {
		// Carve data into k payloads of varying lengths.
		n := int(k%16) + 1
		ts := make([]Tuple, n)
		for i := range ts {
			lo := len(data) * i / n
			hi := len(data) * (i + 1) / n
			ts[i] = Tuple{Seq: uint64(i) * 3, Payload: data[lo:hi]}
		}
		batch, err := AppendBatch(nil, ts)
		if err != nil {
			t.Fatalf("AppendBatch: %v", err)
		}
		rc := NewReceiver(bytes.NewReader(batch))
		for i := range ts {
			got, err := rc.Receive()
			if err != nil {
				t.Fatalf("Receive %d: %v", i, err)
			}
			if got.Seq != ts[i].Seq || !bytes.Equal(got.Payload, ts[i].Payload) {
				t.Fatalf("tuple %d changed in batch round trip", i)
			}
		}
		if _, err := rc.Receive(); !errors.Is(err, io.EOF) {
			t.Fatalf("batch left trailing bytes: %v", err)
		}
	})
}

// FuzzReceiveTruncatedBatch feeds the decoder batches cut off at arbitrary
// byte offsets, with an optionally corrupted length prefix (the oversized
// case): it must never panic, must return every complete leading frame
// intact, and must fail cleanly at the damage.
func FuzzReceiveTruncatedBatch(f *testing.F) {
	f.Add(uint16(10), uint16(3), uint32(0))
	f.Add(uint16(100), uint16(0), uint32(0xffffffff))
	f.Add(uint16(5000), uint16(1), uint32(1))
	f.Fuzz(func(t *testing.T, cut uint16, nTuples uint16, poison uint32) {
		n := int(nTuples%8) + 1
		ts := make([]Tuple, n)
		for i := range ts {
			ts[i] = Tuple{Seq: uint64(i), Payload: bytes.Repeat([]byte{byte(i)}, (i*37)%256)}
		}
		batch, err := AppendBatch(nil, ts)
		if err != nil {
			t.Fatalf("AppendBatch: %v", err)
		}
		if poison != 0 {
			// Overwrite the final frame's length prefix: oversized or
			// undersized prefixes must be rejected, not trusted.
			off := len(batch) - FrameLen(ts[n-1])
			binary.LittleEndian.PutUint32(batch[off:], poison)
		}
		if int(cut) < len(batch) {
			batch = batch[:cut]
		}
		rc := NewReceiver(bytes.NewReader(batch))
		decoded := 0
		for {
			got, err := rc.Receive()
			if err != nil {
				break // clean error or EOF at the damage — both fine
			}
			if decoded < n && poison == 0 {
				if got.Seq != ts[decoded].Seq || !bytes.Equal(got.Payload, ts[decoded].Payload) {
					t.Fatalf("leading frame %d corrupted by truncation", decoded)
				}
			}
			decoded++
			// A poisoned prefix may legally re-frame the trailing bytes, but
			// an undamaged (merely truncated) batch can never yield more
			// tuples than were encoded.
			if poison == 0 && decoded > n {
				t.Fatalf("decoded %d tuples from a %d-tuple batch", decoded, n)
			}
			if decoded > 2*n+8 {
				t.Fatalf("decoder runaway: %d tuples from %d-tuple batch", decoded, n)
			}
		}
	})
}

// FuzzReceiveBatchTruncated drives the multi-frame drain over batches cut at
// arbitrary byte offsets, optionally with a poisoned length prefix, and with
// the stream delivered in reads split at an arbitrary boundary (so complete
// frames straddle the bufio buffer between passes). The decoder must never
// panic, must return every complete leading frame intact and in order, and
// must fail cleanly at the damage — including when the failure is deferred
// to the call after the one that decoded the leading frames.
func FuzzReceiveBatchTruncated(f *testing.F) {
	f.Add(uint16(10), uint16(3), uint32(0), uint16(0), uint8(4))
	f.Add(uint16(100), uint16(0), uint32(0xffffffff), uint16(7), uint8(1))
	f.Add(uint16(5000), uint16(5), uint32(1), uint16(60), uint8(16))
	f.Add(uint16(65535), uint16(7), uint32(0), uint16(13), uint8(0))
	f.Fuzz(func(t *testing.T, cut uint16, nTuples uint16, poison uint32, split uint16, max uint8) {
		n := int(nTuples%8) + 1
		ts := make([]Tuple, n)
		for i := range ts {
			ts[i] = Tuple{Seq: uint64(i), Payload: bytes.Repeat([]byte{byte(i)}, (i*37)%256)}
		}
		batch, err := AppendBatch(nil, ts)
		if err != nil {
			t.Fatalf("AppendBatch: %v", err)
		}
		if poison != 0 {
			off := len(batch) - FrameLen(ts[n-1])
			binary.LittleEndian.PutUint32(batch[off:], poison)
		}
		if int(cut) < len(batch) {
			batch = batch[:cut]
		}
		// Deliver the bytes in two reads split at an arbitrary boundary, so
		// the drain pass sees an incomplete trailing frame that completes on
		// the next blocking read.
		at := int(split) % (len(batch) + 1)
		rc := NewReceiver(io.MultiReader(bytes.NewReader(batch[:at]), bytes.NewReader(batch[at:])))
		maxBatch := int(max%17) + 1
		decoded := 0
		var dst []Tuple
		for {
			tuples, ref, err := rc.ReceiveBatch(dst, maxBatch)
			if err != nil {
				break // clean error or EOF at the damage — both fine
			}
			if len(tuples) == 0 || len(tuples) > maxBatch {
				t.Fatalf("batch of %d tuples with max %d", len(tuples), maxBatch)
			}
			if ref.Refs() != int64(len(tuples)) {
				t.Fatalf("ref holds %d references for %d tuples", ref.Refs(), len(tuples))
			}
			for _, got := range tuples {
				if decoded < n && poison == 0 {
					if got.Seq != ts[decoded].Seq || !bytes.Equal(got.Payload, ts[decoded].Payload) {
						t.Fatalf("leading frame %d corrupted by truncation/split", decoded)
					}
				}
				decoded++
			}
			ref.ReleaseN(len(tuples))
			dst = tuples
			if poison == 0 && decoded > n {
				t.Fatalf("decoded %d tuples from a %d-tuple batch", decoded, n)
			}
			if decoded > 2*n+8 {
				t.Fatalf("decoder runaway: %d tuples from %d-tuple batch", decoded, n)
			}
		}
	})
}

// FuzzRoundTrip checks that encode/decode is the identity for any payload.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), []byte(nil))
	f.Add(uint64(1<<63), []byte("hello"))
	f.Fuzz(func(t *testing.T, seq uint64, payload []byte) {
		frame, err := AppendFrame(nil, Tuple{Seq: seq, Payload: payload})
		if err != nil {
			if len(payload) > MaxFrameSize-8 {
				return // oversized payloads are rejected by contract
			}
			t.Fatalf("AppendFrame: %v", err)
		}
		got, err := NewReceiver(bytes.NewReader(frame)).Receive()
		if err != nil {
			t.Fatalf("Receive: %v", err)
		}
		if got.Seq != seq || !bytes.Equal(got.Payload, payload) {
			t.Fatalf("round trip changed tuple: seq %d->%d", seq, got.Seq)
		}
	})
}
