package transport

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"testing"
)

// benchPair returns a connected loopback pair with roomy buffers (the
// benchmarks measure send-path overhead, not back pressure) and a goroutine
// discarding everything the server side receives.
func benchPair(b *testing.B) *Sender {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			accepted <- conn
		}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	server := <-accepted
	ln.Close()
	go io.Copy(io.Discard, server)
	b.Cleanup(func() {
		client.Close()
		server.Close()
	})
	sender, err := NewSender(client)
	if err != nil {
		b.Fatal(err)
	}
	return sender
}

// BenchmarkSenderSend is the per-tuple hot path: one frame, one write. The
// headline numbers are allocs/op (must be 0 in steady state — every
// allocation here perturbs the blocking signal the balancer reads) and
// tuples/s against BenchmarkSenderSendBatch.
func BenchmarkSenderSend(b *testing.B) {
	sender := benchPair(b)
	payload := bytes.Repeat([]byte("p"), 128)
	b.ReportAllocs()
	b.SetBytes(int64(FrameLen(Tuple{Payload: payload})))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sender.Send(Tuple{Seq: uint64(i), Payload: payload}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
}

func BenchmarkSenderSendBatch(b *testing.B) {
	for _, k := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			sender := benchPair(b)
			payload := bytes.Repeat([]byte("p"), 128)
			batch := make([]Tuple, k)
			b.ReportAllocs()
			b.SetBytes(int64(k * FrameLen(Tuple{Payload: payload})))
			b.ResetTimer()
			seq := uint64(0)
			for i := 0; i < b.N; i++ {
				for j := range batch {
					batch[j] = Tuple{Seq: seq, Payload: payload}
					seq++
				}
				if err := sender.SendBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*k)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

// BenchmarkSenderSendBatchZeroCopy exercises the large-payload path where
// payloads ride as their own iovecs instead of being copied into the
// coalesce buffer.
func BenchmarkSenderSendBatchZeroCopy(b *testing.B) {
	const k = 32
	sender := benchPair(b)
	payload := bytes.Repeat([]byte("p"), 4<<10)
	batch := make([]Tuple, k)
	b.ReportAllocs()
	b.SetBytes(int64(k * FrameLen(Tuple{Payload: payload})))
	b.ResetTimer()
	seq := uint64(0)
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j] = Tuple{Seq: seq, Payload: payload}
			seq++
		}
		if err := sender.SendBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*k)/b.Elapsed().Seconds(), "tuples/s")
}

func BenchmarkAppendFrame(b *testing.B) {
	payload := bytes.Repeat([]byte("p"), 128)
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendFrame(buf[:0], Tuple{Seq: uint64(i), Payload: payload})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendFrameHeader(b *testing.B) {
	payload := make([]byte, 4096)
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendFrameHeader(buf[:0], Tuple{Seq: uint64(i), Payload: payload})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReceiverDecode(b *testing.B) {
	// Decode throughput over an in-memory stream of 128-byte-payload frames.
	payload := bytes.Repeat([]byte("p"), 128)
	const frames = 1024
	var stream []byte
	for i := 0; i < frames; i++ {
		var err error
		stream, err = AppendFrame(stream, Tuple{Seq: uint64(i), Payload: payload})
		if err != nil {
			b.Fatal(err)
		}
	}
	reader := bytes.NewReader(stream)
	b.ReportAllocs()
	b.SetBytes(int64(len(stream) / frames))
	b.ResetTimer()
	var rc *Receiver
	for i := 0; i < b.N; i++ {
		if i%frames == 0 {
			// Rewind and re-wrap; amortized over 1024 decodes.
			reader.Seek(0, io.SeekStart)
			rc = NewReceiver(reader)
		}
		if _, err := rc.Receive(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReceiverReceiveBatch is the multi-frame drain against the same
// stream BenchmarkReceiverDecode walks one frame at a time. The headline
// numbers are allocs/op (0 in steady state — payloads carve from pooled
// blocks that ReleaseN returns to the pool) and tuples/s versus per-tuple
// Receive.
func BenchmarkReceiverReceiveBatch(b *testing.B) {
	payload := bytes.Repeat([]byte("p"), 128)
	const frames = 1024
	var stream []byte
	for i := 0; i < frames; i++ {
		var err error
		stream, err = AppendFrame(stream, Tuple{Seq: uint64(i), Payload: payload})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, max := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("max=%d", max), func(b *testing.B) {
			reader := bytes.NewReader(stream)
			rc := NewReceiver(reader)
			var batch []Tuple
			decoded := 0
			b.ReportAllocs()
			b.SetBytes(int64(len(stream) / frames))
			b.ResetTimer()
			for decoded < b.N {
				if decoded%frames == 0 {
					reader.Seek(0, io.SeekStart)
					rc = NewReceiver(reader)
				}
				tuples, ref, err := rc.ReceiveBatch(batch[:0], max)
				if err != nil {
					b.Fatal(err)
				}
				decoded += len(tuples)
				ref.ReleaseN(len(tuples))
				batch = tuples
			}
			b.ReportMetric(float64(decoded)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}
