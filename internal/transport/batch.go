package transport

import (
	"fmt"
	"sync"
)

// Batching amortizes the per-send syscall: the splitter stages the frames of
// several tuples on a connection and flushes them with one vectored write.
// The wire format is unchanged — a batch is just concatenated frames — so
// the receiver is oblivious and batched and per-tuple senders mix freely on
// one connection.
//
// Blocking semantics are preserved on the combined write: if the socket
// buffer fills anywhere inside the batch, the sender elects to block there
// and the parked time is accounted to this connection's cumulative counter
// (Section 3), exactly as a per-tuple send would account it. What changes is
// granularity: one blocking sample now covers up to BatchSize tuples, so
// batch size trades per-tuple signal resolution for throughput (see the
// README's "Batched sends" section).

const (
	// zeroCopyThreshold is the payload size at which Queue stops copying
	// the payload into the coalesce buffer and instead passes it to writev
	// as its own iovec. Below it, copying into one contiguous buffer is
	// cheaper than growing the iovec list.
	zeroCopyThreshold = 1 << 10

	// frameBufCap seeds pooled coalesce buffers; buffers grow to fit a
	// whole batch and return to the pool with their grown capacity.
	frameBufCap = 16 << 10
)

// frameBuf is a pooled frame buffer. The pool stores pointers so that
// Get/Put never allocate on the hot path (a bare slice would escape into
// the interface on every Put).
type frameBuf struct{ b []byte }

var framePool = sync.Pool{
	New: func() any { return &frameBuf{b: make([]byte, 0, frameBufCap)} },
}

// Queue stages one tuple in the pending batch without writing. Small
// payloads are coalesced (copied) into a pooled frame buffer; payloads of
// zeroCopyThreshold bytes or more are referenced zero-copy, so the caller
// must not mutate them until Flush returns. An error (only an oversized
// frame) leaves the batch as it was, without the offending tuple.
func (s *Sender) Queue(t Tuple) error {
	if s.coalesce == nil {
		s.coalesce = framePool.Get().(*frameBuf)
	}
	if len(t.Payload) >= zeroCopyThreshold {
		b, err := AppendFrameHeader(s.coalesce.b, t)
		if err != nil {
			return err
		}
		s.coalesce.b = b
		s.cutCoalesce()
		s.pending = append(s.pending, t.Payload)
	} else {
		b, err := AppendFrame(s.coalesce.b, t)
		if err != nil {
			return err
		}
		s.coalesce.b = b
	}
	s.queued++
	return nil
}

// cutCoalesce seals the current coalesce buffer into the pending iovec list.
func (s *Sender) cutCoalesce() {
	if s.coalesce == nil || len(s.coalesce.b) == 0 {
		return
	}
	s.pending = append(s.pending, s.coalesce.b)
	s.pooled = append(s.pooled, s.coalesce)
	s.coalesce = nil
}

// Pending returns how many tuples are staged and not yet flushed.
func (s *Sender) Pending() int {
	return s.queued
}

// Flush writes every staged tuple with one vectored write (chunked at
// iovMax), electing to block — and accounting the blocked time — when the
// socket buffer fills anywhere in the batch. On error the batch is
// discarded: the connection is in an undefined mid-frame state and the
// caller must treat it as failed (under recovery, the retained tuples are
// replayed elsewhere and the merger dedupes any partial deliveries).
func (s *Sender) Flush() error {
	s.cutCoalesce()
	if len(s.pending) == 0 {
		return nil
	}
	n := s.queued
	s.wq = append(s.wq[:0], s.pending...)
	s.wqHead = 0
	err := s.flushWrite()
	s.releasePending()
	if err != nil {
		return fmt.Errorf("transport: flush batch of %d: %w", n, err)
	}
	s.sent.Add(int64(n))
	s.flushes.Add(1)
	s.flushedTuples.Add(int64(n))
	return nil
}

// releasePending drops payload references and returns pooled buffers.
func (s *Sender) releasePending() {
	for i := range s.pending {
		s.pending[i] = nil
	}
	s.pending = s.pending[:0]
	for _, fb := range s.pooled {
		fb.b = fb.b[:0]
		framePool.Put(fb)
	}
	s.pooled = s.pooled[:0]
	s.queued = 0
}

// SendBatchOwned is SendBatch with ownership transfer (see
// BatchSender.SendBatchOwned): ref holds one reference per tuple of ts and
// this call consumes all of them. On TCP the batch write completes before
// returning, so the pooled payload blocks the tuples may alias are done with
// either way — success or failure — and every reference is released here.
func (s *Sender) SendBatchOwned(ts []Tuple, ref *BlockRef) error {
	err := s.SendBatch(ts)
	ref.ReleaseN(len(ts))
	return err
}

// SendBatch stages and flushes ts as one batch. It fails atomically on an
// unencodable tuple: nothing from ts (or a previously staged partial batch)
// is sent. Payloads of zeroCopyThreshold bytes or more must not be mutated
// until SendBatch returns.
func (s *Sender) SendBatch(ts []Tuple) error {
	for i := range ts {
		if err := s.Queue(ts[i]); err != nil {
			s.releasePending()
			if s.coalesce != nil {
				s.coalesce.b = s.coalesce.b[:0]
			}
			return fmt.Errorf("transport: batch tuple seq %d: %w", ts[i].Seq, err)
		}
	}
	return s.Flush()
}
