package transport

import (
	"net"
	"strings"
	"testing"
	"time"
)

func TestRedialerImmediateSuccess(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			conn.Close()
		}
	}()
	rd := NewRedialer(ln.Addr().String(), RedialPolicy{})
	conn, err := rd.Dial(nil)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if rd.Attempts() != 1 {
		t.Fatalf("attempts = %d, want 1", rd.Attempts())
	}
}

func TestRedialerMaxAttemptsExhausted(t *testing.T) {
	// Grab a port and close it so dials fail fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	rd := NewRedialer(addr, RedialPolicy{
		Base:        time.Millisecond,
		Max:         2 * time.Millisecond,
		MaxAttempts: 3,
		Jitter:      -1,
	})
	start := time.Now()
	if _, err := rd.Dial(nil); err == nil {
		t.Fatal("dial to a closed port succeeded")
	} else if !strings.Contains(err.Error(), "attempts exhausted") {
		t.Fatalf("unexpected error: %v", err)
	}
	if rd.Attempts() != 3 {
		t.Fatalf("attempts = %d, want 3", rd.Attempts())
	}
	// Backoff 1ms + 2ms between the three attempts.
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Fatalf("finished in %v: backoff not applied", elapsed)
	}
}

func TestRedialerStops(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	stop := make(chan struct{})
	rd := NewRedialer(addr, RedialPolicy{Base: time.Hour})
	done := make(chan error, 1)
	go func() {
		_, err := rd.Dial(stop)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("stopped dial returned a connection")
		}
		if !strings.Contains(err.Error(), "stopped") {
			t.Fatalf("unexpected error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Dial ignored the stop channel")
	}
}

func TestRedialerRecoversWhenListenerReturns(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	go func() {
		time.Sleep(30 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return
		}
		defer ln2.Close()
		conn, err := ln2.Accept()
		if err == nil {
			conn.Close()
		}
	}()
	rd := NewRedialer(addr, RedialPolicy{Base: 2 * time.Millisecond, Max: 10 * time.Millisecond})
	conn, err := rd.Dial(nil)
	if err != nil {
		t.Fatalf("never reconnected: %v", err)
	}
	conn.Close()
	if rd.Attempts() < 2 {
		t.Fatalf("attempts = %d, want >= 2", rd.Attempts())
	}
}

func TestRedialPolicyDefaults(t *testing.T) {
	p := RedialPolicy{}.withDefaults()
	if p.Base != 20*time.Millisecond || p.Max != 2*time.Second || p.Multiplier != 2 ||
		p.Jitter != 0.2 || p.DialTimeout != 2*time.Second || p.MaxAttempts != 0 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
	if j := (RedialPolicy{Jitter: -1}).withDefaults().Jitter; j != 0 {
		t.Fatalf("negative jitter should disable, got %v", j)
	}
}
