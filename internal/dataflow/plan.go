package dataflow

import (
	"fmt"
	"strings"
)

// StageKind discriminates plan stages.
type StageKind int

const (
	// StageSource generates the stream.
	StageSource StageKind = iota + 1
	// StagePE runs one or more fused operators sequentially in one
	// goroutine (pipeline parallelism between stages).
	StagePE
	// StageRegion is an ordered data-parallel region: the fused stateless
	// operators are replicated Width ways behind a splitter and an
	// in-order merger.
	StageRegion
	// StageSink consumes the stream.
	StageSink
)

// Stage is one executable unit of a plan.
type Stage struct {
	Kind  StageKind
	Name  string
	Ops   []*node // operators fused into this stage (PE and Region kinds)
	Width int     // replica count for StageRegion
	node  *node   // source/sink node
	// Downstream stages; more than one means the same tuples flow to every
	// branch (task parallelism).
	Downstream []*Stage
}

// PlanConfig controls the planner.
type PlanConfig struct {
	// Width is the replication factor for data-parallel regions. Width <=
	// 1 disables data parallelism: stateless chains fuse into plain PEs.
	Width int
	// MinRegionOps is the minimum number of fused stateless operators
	// worth parallelizing (default 1).
	MinRegionOps int
}

// Plan is the executable decomposition of a graph into stages.
type Plan struct {
	Graph *Graph
	Roots []*Stage
}

// Plan decomposes the graph: consecutive stateless operators fuse into one
// unit; if the configured width exceeds one, each maximal stateless chain
// becomes an ordered data-parallel region (Section 2); stateful operators
// become single PEs that bound regions; fan-out edges (task parallelism)
// also bound them.
func (g *Graph) Plan(cfg PlanConfig) (*Plan, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	if cfg.Width <= 0 {
		cfg.Width = 1
	}
	if cfg.MinRegionOps <= 0 {
		cfg.MinRegionOps = 1
	}
	p := &Plan{Graph: g}
	for _, n := range g.nodes {
		if n.kind != nodeSource {
			continue
		}
		stage := &Stage{Kind: StageSource, Name: n.name, node: n}
		stage.Downstream = planBranches(n.downstream, cfg)
		p.Roots = append(p.Roots, stage)
	}
	return p, nil
}

// planBranches plans every downstream branch of a node.
func planBranches(branches []*node, cfg PlanConfig) []*Stage {
	out := make([]*Stage, 0, len(branches))
	for _, b := range branches {
		out = append(out, planChain(b, cfg))
	}
	return out
}

// planChain plans the stage starting at node n.
func planChain(n *node, cfg PlanConfig) *Stage {
	if n.kind == nodeSink {
		return &Stage{Kind: StageSink, Name: n.name, node: n}
	}
	// A stateful operator is its own PE.
	if n.stateful {
		stage := &Stage{Kind: StagePE, Name: n.name, Ops: []*node{n}}
		stage.Downstream = planBranches(n.downstream, cfg)
		return stage
	}
	// Collect the maximal chain of stateless operators with linear
	// connectivity.
	run := []*node{n}
	cur := n
	for len(cur.downstream) == 1 {
		next := cur.downstream[0]
		if next.kind != nodeOp || next.stateful {
			break
		}
		run = append(run, next)
		cur = next
	}
	names := make([]string, len(run))
	for i, op := range run {
		names[i] = op.name
	}
	stage := &Stage{Name: strings.Join(names, "+"), Ops: run}
	if cfg.Width > 1 && len(run) >= cfg.MinRegionOps {
		stage.Kind = StageRegion
		stage.Width = cfg.Width
	} else {
		stage.Kind = StagePE
	}
	stage.Downstream = planBranches(cur.downstream, cfg)
	return stage
}

// String renders the plan as an indented tree.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %q\n", p.Graph.Name())
	for _, root := range p.Roots {
		renderStage(&b, root, 1)
	}
	return b.String()
}

func renderStage(b *strings.Builder, s *Stage, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	switch s.Kind {
	case StageSource:
		fmt.Fprintf(b, "source %s\n", s.Name)
	case StagePE:
		fmt.Fprintf(b, "pe     %s\n", s.Name)
	case StageRegion:
		fmt.Fprintf(b, "region %s x%d (ordered)\n", s.Name, s.Width)
	case StageSink:
		fmt.Fprintf(b, "sink   %s\n", s.Name)
	}
	for _, d := range s.Downstream {
		renderStage(b, d, depth+1)
	}
}

// Regions returns every data-parallel region in the plan, in depth-first
// order.
func (p *Plan) Regions() []*Stage {
	var out []*Stage
	var walk func(*Stage)
	walk = func(s *Stage) {
		if s.Kind == StageRegion {
			out = append(out, s)
		}
		for _, d := range s.Downstream {
			walk(d)
		}
	}
	for _, root := range p.Roots {
		walk(root)
	}
	return out
}
