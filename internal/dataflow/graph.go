package dataflow

import (
	"errors"
	"fmt"
)

// OpFunc is a stateless or stateful single-tuple computation: it receives a
// tuple value and returns the transformed value. Stateless operators must be
// pure functions of their input (Section 2) — the planner replicates them.
type OpFunc func(value any) any

// SourceFunc supplies the stream: called with increasing seq, it returns the
// next value, or ok=false at end of stream.
type SourceFunc func(seq uint64) (value any, ok bool)

// SinkFunc consumes final values in stream order.
type SinkFunc func(value any)

// nodeKind discriminates graph node types.
type nodeKind int

const (
	nodeSource nodeKind = iota + 1
	nodeOp
	nodeSink
)

// node is one vertex of the dataflow graph.
type node struct {
	id       int
	name     string
	kind     nodeKind
	fn       OpFunc
	src      SourceFunc
	sink     SinkFunc
	stateful bool
	// downstream edges; more than one means task parallelism (the same
	// tuples flow to every branch).
	downstream []*node
}

// Graph is a dataflow application under construction: sources, operators and
// sinks connected by streams. Construction errors are sticky and reported by
// Plan. Graph is not safe for concurrent construction.
type Graph struct {
	name  string
	nodes []*node
	err   error
}

// NewGraph returns an empty application graph.
func NewGraph(name string) *Graph {
	return &Graph{name: name}
}

// Name returns the application name.
func (g *Graph) Name() string { return g.name }

// fail records the first construction error.
func (g *Graph) fail(err error) {
	if g.err == nil {
		g.err = err
	}
}

// addNode appends a node and returns it.
func (g *Graph) addNode(n *node) *node {
	n.id = len(g.nodes)
	g.nodes = append(g.nodes, n)
	return n
}

// Stream is the handle returned by graph-building calls; further operators
// attach to it.
type Stream struct {
	g    *Graph
	from *node
}

// Source adds a stream source to the graph.
func (g *Graph) Source(name string, src SourceFunc) *Stream {
	if src == nil {
		g.fail(fmt.Errorf("dataflow: source %q has no function", name))
		src = func(uint64) (any, bool) { return nil, false }
	}
	n := g.addNode(&node{name: name, kind: nodeSource, src: src})
	return &Stream{g: g, from: n}
}

// OpOption configures an operator.
type OpOption func(*node)

// Stateful marks the operator as stateful: it must not be replicated, so it
// bounds any data-parallel region.
func Stateful() OpOption {
	return func(n *node) { n.stateful = true }
}

// Map attaches an operator to the stream and returns the operator's output
// stream. Operators are stateless unless marked with Stateful().
func (s *Stream) Map(name string, fn OpFunc, opts ...OpOption) *Stream {
	if s == nil || s.from == nil {
		return s
	}
	if fn == nil {
		s.g.fail(fmt.Errorf("dataflow: operator %q has no function", name))
		fn = func(v any) any { return v }
	}
	n := s.g.addNode(&node{name: name, kind: nodeOp, fn: fn})
	for _, opt := range opts {
		opt(n)
	}
	s.from.downstream = append(s.from.downstream, n)
	return &Stream{g: s.g, from: n}
}

// Sink terminates the stream in a consumer.
func (s *Stream) Sink(name string, fn SinkFunc) {
	if s == nil || s.from == nil {
		return
	}
	if fn == nil {
		s.g.fail(fmt.Errorf("dataflow: sink %q has no function", name))
		fn = func(any) {}
	}
	n := s.g.addNode(&node{name: name, kind: nodeSink, sink: fn})
	s.from.downstream = append(s.from.downstream, n)
}

// validate checks structural invariants before planning.
func (g *Graph) validate() error {
	if g.err != nil {
		return g.err
	}
	if len(g.nodes) == 0 {
		return errors.New("dataflow: empty graph")
	}
	sources := 0
	for _, n := range g.nodes {
		switch n.kind {
		case nodeSource:
			sources++
			if len(n.downstream) == 0 {
				return fmt.Errorf("dataflow: source %q feeds nothing", n.name)
			}
		case nodeOp:
			if len(n.downstream) == 0 {
				return fmt.Errorf("dataflow: operator %q feeds nothing (add a sink)", n.name)
			}
		case nodeSink:
			if len(n.downstream) != 0 {
				return fmt.Errorf("dataflow: sink %q has downstream operators", n.name)
			}
		}
	}
	if sources == 0 {
		return errors.New("dataflow: graph has no source")
	}
	return nil
}
