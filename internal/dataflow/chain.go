package dataflow

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"streambalance/internal/runtime"
	"streambalance/internal/transport"
)

// Region→region composition: a Chain runs several ordered parallel regions
// end to end, each stage's merger feeding the next stage's splitter through a
// bounded in-process edge. Within a stage the transport is whatever its
// RegionConfig selects (TCP or in-proc, mixed freely across stages); between
// stages the edge is always an in-proc pipe, because the chain runs in one
// process.
//
// Ordering composes: stage i releases tuples in sequence order, the edge is
// FIFO, and stage i+1's splitter assigns fresh sequence numbers in arrival
// order — so the renumbering is the identity and end-to-end order holds.
//
// Back pressure composes too, with no coordination: a slow stage fills its
// input edge, the upstream merger's sink blocks in Send, the merge loop
// stalls, reorder queues hit their caps, that stage's workers park, its
// splitter parks, and eventually the chain's source stalls — the blocking
// cascade crossing every edge and both transports.

// DefaultEdgeCap bounds a stage-to-stage edge (tuples) when ChainOptions
// does not choose.
const DefaultEdgeCap = 1024

// edgeRecvBatch bounds one source-side drain of a chain edge.
const edgeRecvBatch = 64

// ChainOptions tunes chain composition.
type ChainOptions struct {
	// EdgeCap bounds each stage-to-stage edge in tuples (<= 0 selects
	// DefaultEdgeCap; rounded up to a power of two). The bound is what makes
	// back pressure propagate: an unbounded edge would absorb a slow stage's
	// backlog forever instead of stalling the producer.
	EdgeCap int
}

// ChainResult reports one completed chain run.
type ChainResult struct {
	// Stages holds each stage's RegionResult, in chain order.
	Stages []runtime.RegionResult
	// Elapsed is the whole chain's wall-clock makespan.
	Elapsed time.Duration
}

// RunChain builds and runs the staged regions end to end and blocks until
// every stage completes. cfgs[0] must carry the chain's Source and only
// cfgs[len-1] may carry a Sink; the chain fills every interior edge itself.
// A stage failure does not wedge its neighbors: the failed stage's edges
// close, upstream keeps draining (sends to the dead edge are dropped) and
// downstream completes on what already crossed. All stage errors are joined
// in the returned error.
func RunChain(cfgs []runtime.RegionConfig, opt ChainOptions) (ChainResult, error) {
	n := len(cfgs)
	if n == 0 {
		return ChainResult{}, errors.New("dataflow: chain needs at least one stage")
	}
	if cfgs[0].Source == nil {
		return ChainResult{}, errors.New("dataflow: chain stage 0 needs a source")
	}
	for i := 1; i < n; i++ {
		if cfgs[i].Source != nil {
			return ChainResult{}, fmt.Errorf("dataflow: stage %d source is chain-owned (only stage 0 sets one)", i)
		}
	}
	for i := 0; i < n-1; i++ {
		if cfgs[i].Sink != nil {
			return ChainResult{}, fmt.Errorf("dataflow: stage %d sink is chain-owned (only the last stage sets one)", i)
		}
	}
	edgeCap := opt.EdgeCap
	if edgeCap <= 0 {
		edgeCap = DefaultEdgeCap
	}

	txs := make([]*transport.InprocSender, n-1)
	rxs := make([]*transport.InprocReceiver, n-1)
	for i := range txs {
		txs[i], rxs[i] = transport.InprocPair(edgeCap)
	}
	closeAllEdges := func() {
		for i := range txs {
			txs[i].Close()
			rxs[i].Close()
		}
	}

	regions := make([]*runtime.Region, n)
	for i := range cfgs {
		cfg := cfgs[i] // stage-local copy; the caller's configs are not mutated
		if i > 0 {
			src := &edgeSource{rx: rxs[i-1]}
			cfg.Source = src.next
		}
		if i < n-1 {
			// A TCP stage's released payloads are carved from pooled blocks
			// the merger recycles right after the sink returns, so they must
			// be copied onto the edge; an in-proc stage's payloads are
			// GC-owned end to end and cross by reference.
			cfg.Sink = forwardSink(txs[i], cfg.Transport != runtime.TransportInproc)
		}
		r, err := runtime.NewRegion(cfg)
		if err != nil {
			for j := 0; j < i; j++ {
				regions[j].Close()
			}
			closeAllEdges()
			return ChainResult{}, fmt.Errorf("dataflow: build stage %d: %w", i, err)
		}
		regions[i] = r
	}

	start := time.Now()
	results := make([]runtime.RegionResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range regions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = regions[i].Run()
			if i < n-1 {
				// Stage finished (or failed): close its output edge so the
				// downstream source sees EOF once the edge drains.
				txs[i].Close()
			}
			if errs[i] != nil && i > 0 {
				// Unwedge upstream: its sink may be parked on this stage's
				// full input edge; closing the receiving end errors those
				// sends, which the forward sink absorbs by dropping.
				rxs[i-1].Close()
			}
		}(i)
	}
	wg.Wait()

	res := ChainResult{Stages: results, Elapsed: time.Since(start)}
	var joined []error
	for i, e := range errs {
		if e != nil {
			joined = append(joined, fmt.Errorf("dataflow: stage %d: %w", i, e))
		}
	}
	return res, errors.Join(joined...)
}

// edgeSource adapts the receiving end of a chain edge to the splitter's pull
// Source. It runs on the splitter's send-loop goroutine (the pipe's single
// consumer) and blocks — stalling the downstream stage — while the edge is
// empty. Edge tuples are always refless (the forward sink sends GC-owned
// payloads), so no release bookkeeping crosses the boundary.
type edgeSource struct {
	rx  *transport.InprocReceiver
	buf []transport.Tuple
	pos int
}

func (s *edgeSource) next(uint64) ([]byte, bool) {
	for s.pos >= len(s.buf) {
		var err error
		s.buf, _, err = s.rx.ReceiveBatch(s.buf, edgeRecvBatch)
		s.pos = 0
		if err != nil {
			// io.EOF: upstream stage completed and the edge drained. Any
			// other error means the edge was torn down mid-stream; the
			// stream just ends early and the stage completes on what it got.
			return nil, false
		}
	}
	t := s.buf[s.pos]
	s.pos++
	return t.Payload, true
}

// forwardSink returns a merger sink that pushes each released tuple onto the
// next stage's edge. It runs on the merge goroutine; a full edge blocks the
// Send, which stalls this stage's merge loop — that is the back-pressure
// hand-off. After the first send failure (the edge closed under it: the
// downstream stage died) it drops everything, letting this stage drain to
// completion instead of wedging.
func forwardSink(tx *transport.InprocSender, copyPayloads bool) func(transport.Tuple, int) {
	var arena chainArena
	dead := false
	return func(t transport.Tuple, _ int) {
		if dead {
			return
		}
		p := t.Payload
		if copyPayloads {
			p = arena.copyOf(p)
		}
		if tx.Send(transport.Tuple{Seq: t.Seq, Payload: p}) != nil {
			dead = true
		}
	}
}

// chainArenaBlock sizes the forward sink's copy arena blocks.
const chainArenaBlock = 64 << 10

// chainArena amortizes the TCP-stage payload copies: payloads are carved out
// of append-only GC-owned blocks (one allocation per 64KiB of payload, never
// recycled), so the copies stay valid for as long as the downstream stage —
// including a recovery-enabled one that retains them for replay — can
// possibly need them.
type chainArena struct{ buf []byte }

func (a *chainArena) copyOf(p []byte) []byte {
	if len(p) == 0 {
		return nil
	}
	if len(p) > chainArenaBlock {
		c := make([]byte, len(p))
		copy(c, p)
		return c
	}
	if cap(a.buf)-len(a.buf) < len(p) {
		a.buf = make([]byte, 0, chainArenaBlock)
	}
	off := len(a.buf)
	a.buf = a.buf[:off+len(p)]
	c := a.buf[off : off+len(p) : off+len(p)]
	copy(c, p)
	return c
}
