package dataflow

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streambalance/internal/runtime"
	"streambalance/internal/transport"
)

// tagOp appends its tag to every payload, so the final output proves which
// stages a tuple crossed and that payload bytes survived each edge.
type tagOp struct{ tag string }

func (o tagOp) Process(t transport.Tuple) transport.Tuple {
	p := make([]byte, 0, len(t.Payload)+len(o.tag))
	p = append(p, t.Payload...)
	p = append(p, o.tag...)
	return transport.Tuple{Seq: t.Seq, Payload: p}
}

func chainStage(kind runtime.TransportKind, workers int, tag string) runtime.RegionConfig {
	ops := make([]runtime.Operator, workers)
	for i := range ops {
		ops[i] = tagOp{tag: tag}
	}
	return runtime.RegionConfig{
		Transport: kind,
		Operators: ops,
		// Small buffers keep the chain honest about back pressure even in
		// the correctness tests.
		MergerQueue:   64,
		RingCap:       64,
		BatchSize:     4,
		RecvBatchSize: 8,
	}
}

func TestChainTwoStagesAllTransportMixes(t *testing.T) {
	const n = 4000
	kinds := []runtime.TransportKind{runtime.TransportInproc, runtime.TransportTCP}
	for _, first := range kinds {
		for _, second := range kinds {
			first, second := first, second
			t.Run(fmt.Sprintf("%s_then_%s", first, second), func(t *testing.T) {
				t.Parallel()
				var mu sync.Mutex
				var got []transport.Tuple
				s1 := chainStage(first, 2, "-a")
				s1.Source = func(seq uint64) ([]byte, bool) {
					if seq >= n {
						return nil, false
					}
					return []byte(fmt.Sprintf("t%d", seq)), true
				}
				s2 := chainStage(second, 3, "-b")
				s2.Sink = func(tu transport.Tuple, _ int) {
					p := append([]byte(nil), tu.Payload...)
					mu.Lock()
					got = append(got, transport.Tuple{Seq: tu.Seq, Payload: p})
					mu.Unlock()
				}
				res, err := RunChain([]runtime.RegionConfig{s1, s2}, ChainOptions{EdgeCap: 128})
				if err != nil {
					t.Fatalf("chain: %v", err)
				}
				if len(res.Stages) != 2 {
					t.Fatalf("stages = %d", len(res.Stages))
				}
				for i, sr := range res.Stages {
					if sr.Released != n {
						t.Fatalf("stage %d released %d, want %d", i, sr.Released, n)
					}
					if !sr.OrderPreserved {
						t.Fatalf("stage %d broke order", i)
					}
					if sr.Deduped != 0 {
						t.Fatalf("stage %d deduped %d", i, sr.Deduped)
					}
				}
				if len(got) != n {
					t.Fatalf("sink got %d tuples, want %d", len(got), n)
				}
				for i, tu := range got {
					if tu.Seq != uint64(i) {
						t.Fatalf("sink order broken at %d: seq %d", i, tu.Seq)
					}
					if want := fmt.Sprintf("t%d-a-b", i); string(tu.Payload) != want {
						t.Fatalf("payload[%d] = %q, want %q", i, tu.Payload, want)
					}
				}
			})
		}
	}
}

func TestChainSingleStage(t *testing.T) {
	const n = 1000
	var count atomic.Int64
	cfg := chainStage(runtime.TransportInproc, 2, "-x")
	cfg.Source = runtime.ConstantSource([]byte("p"), n)
	cfg.Sink = func(transport.Tuple, int) { count.Add(1) }
	res, err := RunChain([]runtime.RegionConfig{cfg}, ChainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages[0].Released != n || count.Load() != n {
		t.Fatalf("released %d, sink %d", res.Stages[0].Released, count.Load())
	}
}

func TestChainThreeStages(t *testing.T) {
	const n = 2000
	var mu sync.Mutex
	var payloads []string
	s1 := chainStage(runtime.TransportInproc, 2, "-a")
	s1.Source = runtime.ConstantSource([]byte("t"), n)
	s2 := chainStage(runtime.TransportTCP, 2, "-b")
	s3 := chainStage(runtime.TransportInproc, 2, "-c")
	s3.Sink = func(tu transport.Tuple, _ int) {
		mu.Lock()
		payloads = append(payloads, string(tu.Payload))
		mu.Unlock()
	}
	res, err := RunChain([]runtime.RegionConfig{s1, s2, s3}, ChainOptions{EdgeCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stages[2].Released; got != n {
		t.Fatalf("final stage released %d, want %d", got, n)
	}
	if len(payloads) != n {
		t.Fatalf("sink got %d", len(payloads))
	}
	for i, p := range payloads {
		if p != "t-a-b-c" {
			t.Fatalf("payload[%d] = %q", i, p)
		}
	}
}

func TestChainValidation(t *testing.T) {
	if _, err := RunChain(nil, ChainOptions{}); err == nil {
		t.Fatal("empty chain accepted")
	}
	// Stage 0 without a source.
	c := chainStage(runtime.TransportInproc, 1, "")
	if _, err := RunChain([]runtime.RegionConfig{c}, ChainOptions{}); err == nil {
		t.Fatal("chain without source accepted")
	}
	// Interior stage with its own sink.
	s1 := chainStage(runtime.TransportInproc, 1, "")
	s1.Source = runtime.ConstantSource(nil, 1)
	s1.Sink = func(transport.Tuple, int) {}
	s2 := chainStage(runtime.TransportInproc, 1, "")
	if _, err := RunChain([]runtime.RegionConfig{s1, s2}, ChainOptions{}); err == nil {
		t.Fatal("interior sink accepted")
	}
	// Downstream stage with its own source.
	s1 = chainStage(runtime.TransportInproc, 1, "")
	s1.Source = runtime.ConstantSource(nil, 1)
	s2 = chainStage(runtime.TransportInproc, 1, "")
	s2.Source = runtime.ConstantSource(nil, 1)
	if _, err := RunChain([]runtime.RegionConfig{s1, s2}, ChainOptions{}); err == nil {
		t.Fatal("downstream source accepted")
	}
	// A stage that cannot build (recovery on the in-proc transport) must
	// fail the whole chain cleanly.
	s1 = chainStage(runtime.TransportInproc, 1, "")
	s1.Source = runtime.ConstantSource(nil, 1)
	s2 = chainStage(runtime.TransportInproc, 1, "")
	s2.Recovery.Enabled = true
	if _, err := RunChain([]runtime.RegionConfig{s1, s2}, ChainOptions{}); err == nil {
		t.Fatal("unbuildable stage accepted")
	}
}

// TestChainBackPressurePropagates pins the composed blocking cascade: with
// the final sink wedged, the source cannot run more than the chain's total
// buffering ahead — the stall crosses the inter-stage edge, both regions and
// every ring in between.
func TestChainBackPressurePropagates(t *testing.T) {
	const n = 50000
	release := make(chan struct{})
	var emitted atomic.Int64
	var sunk atomic.Int64

	s1 := chainStage(runtime.TransportInproc, 2, "-a")
	s1.MergerQueue = 16
	s1.RingCap = 8
	s1.Source = func(seq uint64) ([]byte, bool) {
		if seq >= n {
			return nil, false
		}
		emitted.Add(1)
		return []byte("x"), true
	}
	s2 := chainStage(runtime.TransportInproc, 2, "-b")
	s2.MergerQueue = 16
	s2.RingCap = 8
	gated := true
	s2.Sink = func(transport.Tuple, int) {
		if gated {
			<-release
			gated = false
		}
		sunk.Add(1)
	}

	done := make(chan error, 1)
	go func() {
		_, err := RunChain([]runtime.RegionConfig{s1, s2}, ChainOptions{EdgeCap: 16})
		done <- err
	}()

	// Let the chain wedge against the gated sink, then check the source
	// stalled within the chain's bounded buffering. The loose bound (well
	// under n) is the point: without propagation the source would finish.
	deadline := time.After(5 * time.Second)
	for emitted.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("source never ran")
		case <-time.After(time.Millisecond):
		}
	}
	time.Sleep(300 * time.Millisecond)
	if got := emitted.Load(); got >= n/10 {
		t.Fatalf("source emitted %d tuples against a wedged sink; back pressure did not propagate", got)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("chain after release: %v", err)
	}
	if emitted.Load() != n || sunk.Load() != n {
		t.Fatalf("emitted %d, sunk %d, want %d", emitted.Load(), sunk.Load(), n)
	}
}
