package dataflow

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// intSource emits 0..n-1.
func intSource(n uint64) SourceFunc {
	return func(seq uint64) (any, bool) {
		if seq >= n {
			return nil, false
		}
		return int(seq), true
	}
}

func TestGraphValidation(t *testing.T) {
	tests := []struct {
		name  string
		build func() *Graph
	}{
		{"empty graph", func() *Graph { return NewGraph("g") }},
		{"source feeds nothing", func() *Graph {
			g := NewGraph("g")
			g.Source("src", intSource(1))
			return g
		}},
		{"operator feeds nothing", func() *Graph {
			g := NewGraph("g")
			g.Source("src", intSource(1)).Map("op", func(v any) any { return v })
			return g
		}},
		{"nil source function", func() *Graph {
			g := NewGraph("g")
			g.Source("src", nil).Sink("out", func(any) {})
			return g
		}},
		{"nil op function", func() *Graph {
			g := NewGraph("g")
			g.Source("src", intSource(1)).Map("op", nil).Sink("out", func(any) {})
			return g
		}},
		{"nil sink function", func() *Graph {
			g := NewGraph("g")
			g.Source("src", intSource(1)).Sink("out", nil)
			return g
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.build().Plan(PlanConfig{}); err == nil {
				t.Fatal("invalid graph planned successfully")
			}
		})
	}
}

func TestPlanFusesStatelessChain(t *testing.T) {
	g := NewGraph("fuse")
	g.Source("src", intSource(10)).
		Map("a", func(v any) any { return v }).
		Map("b", func(v any) any { return v }).
		Map("c", func(v any) any { return v }).
		Sink("out", func(any) {})

	// Width 1: the chain fuses into a single PE.
	p, err := g.Plan(PlanConfig{Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	pe := p.Roots[0].Downstream[0]
	if pe.Kind != StagePE || len(pe.Ops) != 3 {
		t.Fatalf("stage = kind %d with %d ops, want fused PE of 3", pe.Kind, len(pe.Ops))
	}
	if pe.Name != "a+b+c" {
		t.Fatalf("fused name = %q, want a+b+c", pe.Name)
	}
	if len(p.Regions()) != 0 {
		t.Fatal("width 1 must not create regions")
	}

	// Width 4: the same chain becomes one ordered region.
	p, err = g.Plan(PlanConfig{Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	regions := p.Regions()
	if len(regions) != 1 || regions[0].Width != 4 || len(regions[0].Ops) != 3 {
		t.Fatalf("regions = %+v, want one 4-wide region of 3 ops", regions)
	}
	if !strings.Contains(p.String(), "region a+b+c x4") {
		t.Fatalf("plan rendering missing region:\n%s", p.String())
	}
}

func TestPlanStatefulBoundsRegions(t *testing.T) {
	g := NewGraph("stateful")
	g.Source("src", intSource(10)).
		Map("pre", func(v any) any { return v }).
		Map("agg", func(v any) any { return v }, Stateful()).
		Map("post", func(v any) any { return v }).
		Sink("out", func(any) {})

	p, err := g.Plan(PlanConfig{Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	regions := p.Regions()
	if len(regions) != 2 {
		t.Fatalf("got %d regions, want 2 (pre and post, split by the stateful op)", len(regions))
	}
	// The stateful op is its own single PE.
	stage := p.Roots[0].Downstream[0].Downstream[0]
	if stage.Kind != StagePE || stage.Name != "agg" {
		t.Fatalf("middle stage = kind %d name %q, want PE agg", stage.Kind, stage.Name)
	}
}

func TestPlanFanOutIsTaskParallel(t *testing.T) {
	g := NewGraph("fanout")
	src := g.Source("src", intSource(10))
	branch := src.Map("shared", func(v any) any { return v })
	branch.Map("left", func(v any) any { return v }).Sink("lsink", func(any) {})
	branch.Map("right", func(v any) any { return v }).Sink("rsink", func(any) {})

	p, err := g.Plan(PlanConfig{Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	shared := p.Roots[0].Downstream[0]
	if len(shared.Downstream) != 2 {
		t.Fatalf("shared stage has %d downstream branches, want 2", len(shared.Downstream))
	}
	// The fan-out bounds the region: "shared" must not be fused with
	// "left" or "right".
	if len(shared.Ops) != 1 || shared.Ops[0].name != "shared" {
		t.Fatalf("shared stage ops = %v, want just the shared op", shared.Name)
	}
}

func TestExecutePipelineOrderAndResults(t *testing.T) {
	const n = 5000
	var mu sync.Mutex
	var got []int
	g := NewGraph("pipeline")
	g.Source("src", intSource(n)).
		Map("double", func(v any) any { return v.(int) * 2 }).
		Map("inc", func(v any) any { return v.(int) + 1 }).
		Sink("out", func(v any) {
			mu.Lock()
			got = append(got, v.(int))
			mu.Unlock()
		})
	p, err := g.Plan(PlanConfig{Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(p, ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Sinks["out"]
	if st.Count != n || !st.Ordered {
		t.Fatalf("sink stats = %+v, want %d ordered tuples", st, n)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range got {
		if v != i*2+1 {
			t.Fatalf("value %d = %d, want %d (order or computation broken)", i, v, i*2+1)
		}
	}
	if len(res.Regions) != 1 {
		t.Fatalf("got %d region stats, want 1", len(res.Regions))
	}
	region := res.Regions[0]
	sum := 0
	var procSum uint64
	for _, w := range region.FinalWeights {
		sum += w
	}
	for _, c := range region.Processed {
		procSum += c
	}
	if sum != 1000 {
		t.Fatalf("region weights %v sum to %d, want 1000", region.FinalWeights, sum)
	}
	if procSum != n {
		t.Fatalf("replicas processed %d tuples, want %d", procSum, n)
	}
}

func TestExecuteTaskParallelBranches(t *testing.T) {
	const n = 2000
	var leftCount, rightCount uint64
	var mu sync.Mutex
	g := NewGraph("branches")
	src := g.Source("src", intSource(n))
	src.Map("left", func(v any) any { return v }).Sink("lsink", func(any) {
		mu.Lock()
		leftCount++
		mu.Unlock()
	})
	src.Map("right", func(v any) any { return v }).Sink("rsink", func(any) {
		mu.Lock()
		rightCount++
		mu.Unlock()
	})
	p, err := g.Plan(PlanConfig{Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(p, ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if leftCount != n || rightCount != n {
		t.Fatalf("branch counts = %d/%d, want %d each (task parallelism duplicates tuples)", leftCount, rightCount, n)
	}
	for _, name := range []string{"lsink", "rsink"} {
		if st := res.Sinks[name]; !st.Ordered {
			t.Fatalf("sink %s saw out-of-order tuples", name)
		}
	}
}

func TestExecuteStatefulOperatorSeesOrder(t *testing.T) {
	// A stateful running-sum after a wide region: sequential semantics mean
	// the sum must be exactly the sum over the ordered prefix.
	const n = 3000
	sum := 0
	var finalSums []int
	g := NewGraph("stateful-order")
	g.Source("src", intSource(n)).
		Map("spin", func(v any) any { return v }).
		Map("runsum", func(v any) any {
			sum += v.(int)
			return sum
		}, Stateful()).
		Sink("out", func(v any) { finalSums = append(finalSums, v.(int)) })
	p, err := g.Plan(PlanConfig{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(p, ExecConfig{}); err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < n; i++ {
		want += i
		if finalSums[i] != want {
			t.Fatalf("running sum at %d = %d, want %d: region broke sequential semantics", i, finalSums[i], want)
		}
	}
}

func TestExecuteBalancedRegionStaysSane(t *testing.T) {
	// Identical replicas with real work: the balancer must keep weights
	// valid and roughly even, and every tuple must flow.
	const n = 20_000
	g := NewGraph("balanced")
	g.Source("src", intSource(n)).
		Map("work", func(v any) any {
			x := v.(int) | 3
			acc := 1
			for i := 0; i < 2000; i++ {
				acc *= x
			}
			if acc == 0 { // defeat dead-code elimination; never true for odd x
				return 0
			}
			return v
		}).
		Sink("out", func(any) {})
	p, err := g.Plan(PlanConfig{Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(p, ExecConfig{SampleInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if st := res.Sinks["out"]; st.Count != n || !st.Ordered {
		t.Fatalf("sink = %+v, want %d ordered", st, n)
	}
	region := res.Regions[0]
	for r, w := range region.FinalWeights {
		if w < 0 || w > 1000 {
			t.Fatalf("replica %d weight %d out of range", r, w)
		}
	}
}

func TestExecuteEmptyPlan(t *testing.T) {
	if _, err := Execute(nil, ExecConfig{}); err == nil {
		t.Fatal("nil plan executed")
	}
}

func TestExecuteWithoutBalancing(t *testing.T) {
	const n = 1000
	g := NewGraph("unbalanced")
	g.Source("src", intSource(n)).
		Map("id", func(v any) any { return v }).
		Sink("out", func(any) {})
	p, err := g.Plan(PlanConfig{Width: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(p, ExecConfig{DisableBalancing: true})
	if err != nil {
		t.Fatal(err)
	}
	if st := res.Sinks["out"]; st.Count != n || !st.Ordered {
		t.Fatalf("sink = %+v, want %d ordered", st, n)
	}
	// Without balancing the weights stay at the even initial split.
	region := res.Regions[0]
	for _, w := range region.FinalWeights {
		if w < 300 || w > 400 {
			t.Fatalf("weights %v moved without balancing", region.FinalWeights)
		}
	}
}
