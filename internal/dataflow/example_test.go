package dataflow_test

import (
	"fmt"

	"streambalance/internal/dataflow"
)

// Example builds a pipeline with one stateless stage — which the planner
// parallelizes into an ordered region — and a stateful stage that relies on
// seeing tuples in order.
func Example() {
	g := dataflow.NewGraph("demo")
	sum := 0
	g.Source("numbers", func(seq uint64) (any, bool) {
		if seq >= 1000 {
			return nil, false
		}
		return int(seq), true
	}).
		Map("triple", func(v any) any { return v.(int) * 3 }).
		Map("sum", func(v any) any {
			sum += v.(int)
			return sum
		}, dataflow.Stateful()).
		Sink("out", func(any) {})

	plan, err := g.Plan(dataflow.PlanConfig{Width: 4})
	if err != nil {
		panic(err)
	}
	fmt.Print(plan.String())

	res, err := dataflow.Execute(plan, dataflow.ExecConfig{})
	if err != nil {
		panic(err)
	}
	fmt.Println("ordered:", res.Sinks["out"].Ordered)
	fmt.Println("sum:", sum)
	// Output:
	// plan "demo"
	//   source numbers
	//     region triple x4 (ordered)
	//       pe     sum
	//         sink   out
	// ordered: true
	// sum: 1498500
}
