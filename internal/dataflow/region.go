package dataflow

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"streambalance/internal/core"
	"streambalance/internal/schedule"
	"streambalance/internal/stats"
)

// runRegion executes an ordered data-parallel region: a splitter distributing
// tuples over Width replicas of the fused stateless operators by weighted
// round-robin, and a merger restoring sequence order downstream. The
// splitter measures how long it blocks on each replica's full input channel
// (the in-process analogue of a full TCP buffer) and a controller drives a
// core.Balancer from those blocking rates.
func (ex *executor) runRegion(st *Stage, in <-chan Tuple, downstream []chan<- Tuple) {
	width := st.Width
	depth := ex.cfg.ChannelDepth

	replicaIn := make([]chan Tuple, width)
	replicaOut := make([]chan Tuple, width)
	for r := 0; r < width; r++ {
		replicaIn[r] = make(chan Tuple, depth)
		replicaOut[r] = make(chan Tuple, depth)
	}
	// orderCh carries, in splitter order, the replica that owns each tuple;
	// its capacity exceeds the maximum possible in-flight tuple count so
	// writing it never deadlocks against the merger.
	orderCh := make(chan int, width*(2*depth+4))

	// Cumulative blocking counters, nanoseconds, shared with the controller.
	cumBlocking := make([]atomic.Int64, width)
	totalBlocking := make([]atomic.Int64, width)
	processed := make([]atomic.Uint64, width)

	weightCh := make(chan []int, 1)
	splitterDone := make(chan struct{})

	// Replicas: stateless operators are pure functions, so running one copy
	// per replica goroutine is safe by construction.
	for r := 0; r < width; r++ {
		ex.wg.Add(1)
		go func(r int) {
			defer ex.wg.Done()
			defer close(replicaOut[r])
			for t := range replicaIn[r] {
				for _, op := range st.Ops {
					t.Value = op.fn(t.Value)
				}
				processed[r].Add(1)
				replicaOut[r] <- t
			}
		}(r)
	}

	// Splitter: the region's single thread of control.
	ex.wg.Add(1)
	go func() {
		defer ex.wg.Done()
		defer close(splitterDone)
		defer func() {
			close(orderCh)
			for r := 0; r < width; r++ {
				close(replicaIn[r])
			}
		}()
		wrr, err := schedule.NewWRR(width)
		if err != nil {
			ex.fail(err)
			return
		}
		if err := wrr.SetWeights(core.EvenWeights(width, core.DefaultUnits)); err != nil {
			ex.fail(err)
			return
		}
		for t := range in {
			select {
			case w := <-weightCh:
				if err := wrr.SetWeights(w); err != nil {
					ex.fail(fmt.Errorf("dataflow: region %s weights: %w", st.Name, err))
					return
				}
			default:
			}
			r := wrr.Next()
			orderCh <- r
			select {
			case replicaIn[r] <- t:
			default:
				// Would block: elect to block anyway and time the wait,
				// as the transport layer does with MSG_DONTWAIT + select.
				start := time.Now()
				replicaIn[r] <- t
				d := int64(time.Since(start))
				cumBlocking[r].Add(d)
				totalBlocking[r].Add(d)
			}
		}
	}()

	// Controller: samples blocking rates and rebalances, exactly like the
	// simulator's policy, including the trust-weighted zeros.
	balancer, err := core.NewBalancer(core.Config{
		Connections:  width,
		DecayEnabled: true,
		DecayFactor:  decayPerInterval(ex.cfg.SampleInterval),
	})
	if err != nil {
		ex.fail(err)
		return
	}
	controllerDone := make(chan struct{})
	if !ex.cfg.DisableBalancing {
		ex.wg.Add(1)
		go func() {
			defer ex.wg.Done()
			defer close(controllerDone)
			ticker := time.NewTicker(ex.cfg.SampleInterval)
			defer ticker.Stop()
			samplers := make([]stats.RateSampler, width)
			started := time.Now()
			for {
				select {
				case <-splitterDone:
					return
				case <-ticker.C:
				}
				now := time.Since(started)
				rates := make([]float64, width)
				blockedFraction := 0.0
				for r := 0; r < width; r++ {
					value := time.Duration(cumBlocking[r].Load()).Seconds()
					if rate, ok := samplers[r].Sample(now, value); ok {
						rates[r] = rate
						blockedFraction += rate
					}
				}
				if blockedFraction > 1 {
					blockedFraction = 1
				}
				for r, rate := range rates {
					trust := 1.0
					if rate <= 0 {
						trust = 1 - blockedFraction
						if trust < 0.01 {
							continue
						}
					}
					if err := balancer.ObserveWeighted(r, rate, trust); err != nil {
						ex.fail(fmt.Errorf("dataflow: region %s observe: %w", st.Name, err))
						return
					}
				}
				weights, err := balancer.Rebalance()
				if err != nil {
					ex.fail(fmt.Errorf("dataflow: region %s rebalance: %w", st.Name, err))
					return
				}
				select {
				case <-weightCh:
				default:
				}
				weightCh <- weights
			}
		}()
	} else {
		close(controllerDone)
	}

	// Merger: releases tuples in exactly the order the splitter accepted
	// them. Because each replica preserves FIFO order, following the
	// splitter's own replica sequence restores the global order without
	// any scanning.
	ex.wg.Add(1)
	go func() {
		defer ex.wg.Done()
		defer closeAll(downstream)
		for r := range orderCh {
			t, ok := <-replicaOut[r]
			if !ok {
				ex.fail(fmt.Errorf("dataflow: region %s replica %d ended early", st.Name, r))
				return
			}
			for _, ch := range downstream {
				ch <- t
			}
		}
		<-controllerDone
		// Publish the region's stats.
		regionStats := RegionStats{
			Name:          st.Name,
			Width:         width,
			FinalWeights:  balancer.Weights(),
			TotalBlocking: make([]time.Duration, width),
			Processed:     make([]uint64, width),
		}
		for r := 0; r < width; r++ {
			regionStats.TotalBlocking[r] = time.Duration(totalBlocking[r].Load())
			regionStats.Processed[r] = processed[r].Load()
		}
		ex.mu.Lock()
		ex.regions = append(ex.regions, regionStats)
		ex.mu.Unlock()
	}()
}

// decayPerInterval scales the paper's 10%-per-second decay to the controller
// interval.
func decayPerInterval(interval time.Duration) float64 {
	secs := interval.Seconds()
	if secs <= 0 || secs >= 1 {
		return core.DefaultDecayFactor
	}
	return math.Pow(core.DefaultDecayFactor, secs)
}
