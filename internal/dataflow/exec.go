package dataflow

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Tuple is the unit flowing between stages at execution time.
type Tuple struct {
	Seq   uint64
	Value any
}

// ExecConfig controls plan execution.
type ExecConfig struct {
	// ChannelDepth bounds every inter-stage channel (default 64). The
	// bounded channels are the in-process analogue of TCP socket buffers:
	// a full channel blocks the sender, and the region splitters time
	// those waits to drive the balancer.
	ChannelDepth int
	// SampleInterval is the region controllers' collection interval
	// (default 50ms — wall time, since execution is real).
	SampleInterval time.Duration
	// Balanced enables dynamic load balancing inside regions (default
	// true when unset — set DisableBalancing to opt out).
	DisableBalancing bool
}

func (c ExecConfig) withDefaults() ExecConfig {
	if c.ChannelDepth <= 0 {
		c.ChannelDepth = 64
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = 50 * time.Millisecond
	}
	return c
}

// SinkStats reports one sink's view of the stream.
type SinkStats struct {
	// Count is the number of tuples consumed.
	Count uint64
	// Ordered reports whether tuples arrived in strictly increasing
	// sequence order — the sequential-semantics guarantee.
	Ordered bool
}

// RegionStats reports one data-parallel region's balancing outcome.
type RegionStats struct {
	Name          string
	Width         int
	FinalWeights  []int
	TotalBlocking []time.Duration
	Processed     []uint64 // tuples per replica
}

// Result summarizes one execution.
type Result struct {
	Sinks   map[string]SinkStats
	Regions []RegionStats
	Elapsed time.Duration
}

// Execute runs the plan to completion: every source is drained and every
// tuple has reached its sinks when Execute returns.
func Execute(p *Plan, cfg ExecConfig) (Result, error) {
	if p == nil || len(p.Roots) == 0 {
		return Result{}, errors.New("dataflow: empty plan")
	}
	cfg = cfg.withDefaults()
	ex := &executor{
		cfg:   cfg,
		sinks: make(map[string]*sinkState),
	}
	start := time.Now()
	for _, root := range p.Roots {
		if root.Kind != StageSource {
			return Result{}, fmt.Errorf("dataflow: root stage %q is not a source", root.Name)
		}
		out := ex.fanOut(root.Downstream)
		ex.wg.Add(1)
		go func(src *node, out []chan<- Tuple) {
			defer ex.wg.Done()
			defer closeAll(out)
			for seq := uint64(0); ; seq++ {
				v, ok := src.src(seq)
				if !ok {
					return
				}
				t := Tuple{Seq: seq, Value: v}
				for _, ch := range out {
					ch <- t
				}
			}
		}(root.node, out)
	}
	ex.wg.Wait()

	res := Result{
		Sinks:   make(map[string]SinkStats, len(ex.sinks)),
		Elapsed: time.Since(start),
	}
	for name, st := range ex.sinks {
		res.Sinks[name] = SinkStats{Count: st.count, Ordered: st.ordered}
	}
	res.Regions = ex.regions
	sort.Slice(res.Regions, func(i, j int) bool { return res.Regions[i].Name < res.Regions[j].Name })
	if ex.err != nil {
		return res, ex.err
	}
	return res, nil
}

// executor holds shared execution state.
type executor struct {
	cfg   ExecConfig
	wg    sync.WaitGroup
	mu    sync.Mutex
	sinks map[string]*sinkState
	// regions collects stats as region controllers finish.
	regions []RegionStats
	err     error
}

type sinkState struct {
	count   uint64
	ordered bool
	lastSeq uint64
}

func (ex *executor) fail(err error) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if ex.err == nil {
		ex.err = err
	}
}

// fanOut builds the input channel of every downstream stage and starts those
// stages; it returns the channels the upstream writes to.
func (ex *executor) fanOut(stages []*Stage) []chan<- Tuple {
	out := make([]chan<- Tuple, len(stages))
	for i, st := range stages {
		ch := make(chan Tuple, ex.cfg.ChannelDepth)
		out[i] = ch
		ex.startStage(st, ch)
	}
	return out
}

// startStage launches the goroutines of one stage reading from in.
func (ex *executor) startStage(st *Stage, in <-chan Tuple) {
	switch st.Kind {
	case StagePE:
		downstream := ex.fanOut(st.Downstream)
		ex.wg.Add(1)
		go func() {
			defer ex.wg.Done()
			defer closeAll(downstream)
			for t := range in {
				for _, op := range st.Ops {
					t.Value = op.fn(t.Value)
				}
				for _, ch := range downstream {
					ch <- t
				}
			}
		}()
	case StageRegion:
		downstream := ex.fanOut(st.Downstream)
		ex.runRegion(st, in, downstream)
	case StageSink:
		state := &sinkState{ordered: true}
		ex.mu.Lock()
		ex.sinks[st.Name] = state
		ex.mu.Unlock()
		fn := st.node.sink
		ex.wg.Add(1)
		go func() {
			defer ex.wg.Done()
			for t := range in {
				if state.count > 0 && t.Seq <= state.lastSeq {
					state.ordered = false
				}
				state.lastSeq = t.Seq
				state.count++
				fn(t.Value)
			}
		}()
	default:
		ex.fail(fmt.Errorf("dataflow: cannot start stage kind %d", st.Kind))
	}
}

func closeAll(chs []chan<- Tuple) {
	for _, ch := range chs {
		close(ch)
	}
}
