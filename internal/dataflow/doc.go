// Package dataflow provides the programming model of Section 2: applications
// are graphs of operators connected by streams of tuples, exposing pipeline,
// task and data parallelism. It is the SPL-like layer above the balancing
// machinery — developers describe *what* to compute; the planner decides
// which operators fuse into PEs and where ordered data-parallel regions can
// be introduced; the executor runs the plan with one goroutine per PE
// connected by bounded channels.
//
// Parallel regions are discovered automatically, exactly as the paper's
// research prototype does: a maximal chain of stateless operators is
// replicated Width ways behind a splitter and in front of an in-order merger
// that restores sequential semantics. The splitter measures per-replica
// blocking time — the time spent waiting on each replica's full input
// channel, the in-process analogue of a full TCP socket buffer — and drives
// a core.Balancer, so the same model that balances TCP connections balances
// goroutine replicas.
//
// The package is a third substrate for the balancer, next to internal/sim
// (virtual-time cluster) and internal/runtime (real TCP): useful in its own
// right for intra-process parallelism, and a demonstration that the model
// depends only on blocking rates, not on any transport.
package dataflow
