package dispatch

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"streambalance/internal/schema"
	"streambalance/internal/soak"
)

// ResultVersion is the archived result-document schema. The document is a
// versioned superset of the per-tool outputs that predate the dispatcher:
// its Soak payload is exactly internal/soak's Summary and its Bench payload
// is exactly a benchjson report (BENCH_*.json), so every existing reader
// keeps working on the embedded documents.
const ResultVersion = "1.0"

// RunState is one station of the run lifecycle.
type RunState string

const (
	// StateQueued: accepted into the queue, not yet claimed.
	StateQueued RunState = "queued"
	// StateBooked: claimed by a worker slot, process not yet started.
	StateBooked RunState = "booked"
	// StateExecuting: worker process running the experiment.
	StateExecuting RunState = "executing"
	// StateCompleted: terminal — the experiment ran and passed.
	StateCompleted RunState = "completed"
	// StateFailed: terminal — the experiment errored, or its worker crashed
	// more times than the retry budget allows.
	StateFailed RunState = "failed"
)

// Terminal reports whether the state is an endpoint of the lifecycle.
func (s RunState) Terminal() bool { return s == StateCompleted || s == StateFailed }

// Env is the environment fingerprint archived with every result, so a
// regression surface built from many runs can segment by machine.
type Env struct {
	GoVersion  string `json:"go_version"`
	Goos       string `json:"goos"`
	Goarch     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Hostname   string `json:"hostname,omitempty"`
}

// Fingerprint captures the current process environment.
func Fingerprint() Env {
	host, _ := os.Hostname()
	return Env{
		GoVersion:  runtime.Version(),
		Goos:       runtime.GOOS,
		Goarch:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Hostname:   host,
	}
}

// SimResult is the structured payload of a sim-kind run, distilled from
// sim.Metrics (virtual-time durations are archived in nanoseconds).
type SimResult struct {
	Policy          string        `json:"policy"`
	EndTime         time.Duration `json:"end_time_ns"`
	Sent            uint64        `json:"sent"`
	Completed       uint64        `json:"completed"`
	MeanThroughput  float64       `json:"mean_throughput"`
	FinalThroughput float64       `json:"final_throughput"`
	LatencyP50      time.Duration `json:"latency_p50_ns"`
	LatencyP99      time.Duration `json:"latency_p99_ns"`
	LatencyMax      time.Duration `json:"latency_max_ns"`
	MaxReleaseGap   time.Duration `json:"max_release_gap_ns"`
	StallAlarms     uint64        `json:"stall_alarms"`
	MergeSweeps     uint64        `json:"merge_sweeps"`
	FinalWeights    []int         `json:"final_weights,omitempty"`
}

// Result is the schema-stable document archived as results/<run-id>/result.json.
// Exactly one of Bench/Soak/Sim is set on a completed run, matching the spec
// kind — though every kind also contributes rows to Bench so that any two
// archived runs can be compared with cmd/benchguard regardless of kind.
type Result struct {
	SchemaVersion string `json:"schema_version"`
	RunID         string `json:"run_id"`
	Name          string `json:"name"`
	Kind          Kind   `json:"kind"`
	// State is completed or failed; the transient states never reach disk.
	State RunState `json:"state"`
	Error string   `json:"error,omitempty"`
	// Attempt is 1-based: >1 means earlier workers crashed.
	Attempt    int       `json:"attempt"`
	StartedAt  time.Time `json:"started_at"`
	FinishedAt time.Time `json:"finished_at"`
	// Elapsed is wall time in nanoseconds.
	Elapsed time.Duration `json:"elapsed_ns"`
	Env     Env           `json:"env"`
	Spec    *Spec         `json:"spec,omitempty"`
	// Bench holds benchjson-shaped rows; set for every completed run so
	// benchguard can compare archives of any kind.
	Bench *schema.BenchReport `json:"bench,omitempty"`
	Soak  *soak.Summary       `json:"soak,omitempty"`
	Sim   *SimResult          `json:"sim,omitempty"`
}

// DecodeResult parses an archived result document, rejecting unknown majors.
func DecodeResult(data []byte) (*Result, error) {
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("dispatch: parse result: %w", err)
	}
	if err := schema.Check("dispatch result", res.SchemaVersion, specMajor); err != nil {
		return nil, err
	}
	return &res, nil
}
