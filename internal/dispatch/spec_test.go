package dispatch

import (
	"strings"
	"testing"
)

func validSim() Spec {
	return Spec{Kind: KindSim, Name: "sim-ok", Sim: &SimSpec{PEs: 2, TotalTuples: 100}}
}

func TestSpecValidate(t *testing.T) {
	for _, tc := range []struct {
		name    string
		mutate  func(*Spec)
		wantErr string
	}{
		{"valid", func(s *Spec) {}, ""},
		{"versioned", func(s *Spec) { s.SchemaVersion = SpecVersion }, ""},
		{"future major", func(s *Spec) { s.SchemaVersion = "2.0" }, "major 2"},
		{"empty name", func(s *Spec) { s.Name = "" }, "non-empty"},
		{"slash in name", func(s *Spec) { s.Name = "a/b" }, "[A-Za-z0-9._-]"},
		{"space in name", func(s *Spec) { s.Name = "a b" }, "[A-Za-z0-9._-]"},
		{"unknown kind", func(s *Spec) { s.Kind = "fuzz" }, "unknown kind"},
		{"sim without block", func(s *Spec) { s.Sim = nil }, "no sim block"},
		{"sim zero pes", func(s *Spec) { s.Sim.PEs = 0 }, "pes > 0"},
		{"sim bad policy", func(s *Spec) { s.Sim.Policy = "psychic" }, "unknown policy"},
		{"sim multiplier shape", func(s *Spec) { s.Sim.LoadMultipliers = []float64{1} }, "load multipliers"},
		{"two blocks", func(s *Spec) { s.Bench = &BenchSpec{Benchmark: "region-transport"} }, "parameter blocks"},
		{"bench unknown workload", func(s *Spec) {
			s.Kind = KindBench
			s.Sim = nil
			s.Bench = &BenchSpec{Benchmark: "teleport"}
		}, "unknown benchmark"},
		{"bench unknown transport", func(s *Spec) {
			s.Kind = KindBench
			s.Sim = nil
			s.Bench = &BenchSpec{Benchmark: "region-transport", Transport: "carrier-pigeon"}
		}, "unknown transport"},
		{"soak without block", func(s *Spec) {
			s.Kind = KindSoak
			s.Sim = nil
		}, "no soak block"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := validSim()
			tc.mutate(&s)
			err := s.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestDecodeSpecs(t *testing.T) {
	specs, err := DecodeSpecs([]byte(`[
		{"kind":"sim","name":"a","sim":{"pes":4}},
		{"kind":"bench","name":"b","bench":{"benchmark":"region-transport","transport":"inproc"}},
		{"kind":"soak","name":"c","soak":{"workers":8,"tuples":100}}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 || specs[0].Kind != KindSim || specs[1].Kind != KindBench || specs[2].Kind != KindSoak {
		t.Fatalf("decoded %+v", specs)
	}

	single, err := DecodeSpecs([]byte(`{"kind":"sim","name":"solo","sim":{"pes":1}}`))
	if err != nil || len(single) != 1 {
		t.Fatalf("single object: %v %v", single, err)
	}

	if _, err := DecodeSpecs([]byte(`[]`)); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("empty queue accepted: %v", err)
	}
	if _, err := DecodeSpecs([]byte(`[{"kind":"sim","name":"x"}]`)); err == nil || !strings.Contains(err.Error(), "spec 0") {
		t.Fatalf("invalid member accepted: %v", err)
	}
	if _, err := DecodeSpecs([]byte(`[{"kind":"sim","name":"x","schema_version":"3.1","sim":{"pes":1}}]`)); err == nil || !strings.Contains(err.Error(), "major 3") {
		t.Fatalf("future-major member accepted: %v", err)
	}
}
