// Package dispatch is the fleet-scale experiment dispatcher: a queue of
// experiment specs — simulator scenarios, micro/macro benchmarks, chaos
// soaks — fanned out to a pool of local worker processes, with every run
// tracked through an explicit queued→booked→executing→completed/failed state
// machine, retried when its worker crashes, and archived under
// results/<run-id>/ with the spec, a schema-stable result document, the
// worker's stdout/stderr and an environment fingerprint.
//
// One `go test -bench` invocation cannot produce the paper's §6-style
// evidence: hours-long soaks, full parameter sweeps (batch × recv-batch ×
// N × ring-cap × transport) and regression surfaces over time. The
// dispatcher turns those one-off runs into an archive that cmd/benchguard
// can compare pairwise or against the checked-in baselines.
package dispatch

import (
	"encoding/json"
	"fmt"
	"strings"

	"streambalance/internal/schema"
	"streambalance/internal/soak"
)

// SpecVersion is the experiment-spec schema this package reads and writes.
const SpecVersion = "1.0"

// specMajor is the major component of SpecVersion; shared by the result
// document, which embeds specs.
const specMajor = 1

// Kind selects the experiment family a spec drives.
type Kind string

const (
	// KindSim runs a virtual-time simulator scenario (internal/sim).
	KindSim Kind = "sim"
	// KindBench runs a real-runtime benchmark workload (the same region
	// grids bench_test.go measures, spec-driven).
	KindBench Kind = "bench"
	// KindSoak runs a randomized chaos soak (internal/soak).
	KindSoak Kind = "soak"
)

// Spec is one queued experiment. Exactly the parameter block matching Kind
// must be set.
type Spec struct {
	SchemaVersion string `json:"schema_version,omitempty"`
	// Kind selects sim, bench or soak.
	Kind Kind `json:"kind"`
	// Name labels the run; it becomes part of the run ID and the results
	// directory name, so it is restricted to [A-Za-z0-9._-].
	Name  string     `json:"name"`
	Sim   *SimSpec   `json:"sim,omitempty"`
	Bench *BenchSpec `json:"bench,omitempty"`
	Soak  *soak.Spec `json:"soak,omitempty"`
}

// SimSpec parameterizes one simulator scenario: a cluster of identical slow
// hosts, PEs spread round-robin across them, and a policy balancing the
// stream.
type SimSpec struct {
	// PEs is the region fan-out (required).
	PEs int `json:"pes"`
	// Hosts is the cluster size (default 1).
	Hosts int `json:"hosts,omitempty"`
	// BaseCost is the tuple cost in integer multiplies (default 1000).
	BaseCost int `json:"base_cost,omitempty"`
	// TotalTuples bounds the stream (default 20000).
	TotalTuples uint64 `json:"total_tuples,omitempty"`
	// Policy is "roundrobin" (default) or "balancer" (the paper's
	// blocking-rate minimax balancer).
	Policy string `json:"policy,omitempty"`
	// BatchSize and RecvBatch mirror the runtime's send/receive batching.
	BatchSize int `json:"batch,omitempty"`
	RecvBatch int `json:"recv_batch,omitempty"`
	// LoadMultipliers, when set (one per PE), gives PE i a constant
	// external-load multiplier — the paper's 10x/100x overload scenarios.
	LoadMultipliers []float64 `json:"load_multipliers,omitempty"`
	// StallWindowMS, when positive, counts virtual-time stall alarms.
	StallWindowMS int `json:"stall_window_ms,omitempty"`
	// Seed drives service jitter (default 1).
	Seed int64 `json:"seed,omitempty"`
	// ServiceJitter scales service-time noise in [0,1).
	ServiceJitter float64 `json:"service_jitter,omitempty"`
}

// BenchSpec parameterizes one real-runtime benchmark workload.
type BenchSpec struct {
	// Benchmark selects the workload: "region-transport" (a full
	// splitter→workers→merger region on the chosen transport, the
	// BenchmarkRegionTransport grid) or "sim-throughput" (events/s of the
	// discrete-event engine, the BenchmarkSimulatorThroughput workload).
	Benchmark string `json:"benchmark"`
	// Transport is "tcp" or "inproc" (region-transport only; default tcp).
	Transport string `json:"transport,omitempty"`
	// Workers is the region fan-out (default 4).
	Workers int `json:"workers,omitempty"`
	// Batch and RecvBatch mirror RegionConfig.BatchSize/RecvBatchSize.
	Batch     int `json:"batch,omitempty"`
	RecvBatch int `json:"recv_batch,omitempty"`
	// RingCap bounds the merger ingest rings / in-proc edges.
	RingCap int `json:"ring_cap,omitempty"`
	// Payload is the tuple payload size in bytes (default 64).
	Payload int `json:"payload,omitempty"`
	// Tuples is the stream length per iteration (default 30000).
	Tuples uint64 `json:"tuples,omitempty"`
	// Iters repeats the workload and reports the aggregate rate (default 1).
	Iters int `json:"iters,omitempty"`
	// PEs and BaseCost parameterize sim-throughput (defaults 8 and 1000).
	PEs      int `json:"pes,omitempty"`
	BaseCost int `json:"base_cost,omitempty"`

	// Keyed-routing parameters (benchmark "keyed-routing" only): a region
	// fed a deterministic Zipf keyed stream, with non-zero keys placed by
	// Router — "hash" (static grouping), "pkg" (two-choice partial key
	// grouping), "dchoices" (PKG plus d candidates for tracked heavy
	// hitters) or "pkg-balanced" (PKG with the controller's sampled blocking
	// rates fed back as penalties). SkewAlpha is the Zipf exponent (0 =
	// uniform), Keys the key universe (default 10000), HotShare extra
	// probability mass on one hot key, Churn the universe rotation interval
	// in tuples. Combine installs the per-key sum combiner in every worker.
	// Seed drives the key generator (default 1). ServiceUS is the per-tuple
	// worker service time in microseconds (default 20), modeled by sleeping
	// rather than spinning so per-worker capacity — and therefore routing
	// imbalance — is real even when workers outnumber cores.
	Router    string  `json:"router,omitempty"`
	SkewAlpha float64 `json:"skew_alpha,omitempty"`
	Keys      int     `json:"keys,omitempty"`
	HotShare  float64 `json:"hot_share,omitempty"`
	Churn     uint64  `json:"churn,omitempty"`
	Combine   bool    `json:"combine,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	ServiceUS int     `json:"service_us,omitempty"`
}

// nameOK reports whether every rune is filesystem- and shell-safe.
func nameOK(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Validate rejects specs that could never execute, so bad configs fail at
// enqueue time instead of burning a worker attempt.
func (s Spec) Validate() error {
	if err := schema.Check("experiment spec", s.SchemaVersion, specMajor); err != nil {
		return err
	}
	if !nameOK(s.Name) {
		return fmt.Errorf("dispatch: spec name %q must be non-empty [A-Za-z0-9._-]", s.Name)
	}
	set := 0
	if s.Sim != nil {
		set++
	}
	if s.Bench != nil {
		set++
	}
	if s.Soak != nil {
		set++
	}
	if set > 1 {
		return fmt.Errorf("dispatch: spec %q sets %d parameter blocks, want exactly the one matching kind %q", s.Name, set, s.Kind)
	}
	switch s.Kind {
	case KindSim:
		if s.Sim == nil {
			return fmt.Errorf("dispatch: sim spec %q has no sim block", s.Name)
		}
		if s.Sim.PEs <= 0 {
			return fmt.Errorf("dispatch: sim spec %q needs pes > 0", s.Name)
		}
		if n := len(s.Sim.LoadMultipliers); n != 0 && n != s.Sim.PEs {
			return fmt.Errorf("dispatch: sim spec %q has %d load multipliers for %d PEs", s.Name, n, s.Sim.PEs)
		}
		switch s.Sim.Policy {
		case "", "roundrobin", "balancer":
		default:
			return fmt.Errorf("dispatch: sim spec %q has unknown policy %q", s.Name, s.Sim.Policy)
		}
	case KindBench:
		if s.Bench == nil {
			return fmt.Errorf("dispatch: bench spec %q has no bench block", s.Name)
		}
		switch s.Bench.Benchmark {
		case "region-transport", "sim-throughput", "keyed-routing":
		default:
			return fmt.Errorf("dispatch: bench spec %q has unknown benchmark %q", s.Name, s.Bench.Benchmark)
		}
		switch s.Bench.Transport {
		case "", "tcp", "inproc":
		default:
			return fmt.Errorf("dispatch: bench spec %q has unknown transport %q", s.Name, s.Bench.Transport)
		}
		switch s.Bench.Router {
		case "", "hash", "pkg", "dchoices", "pkg-balanced":
		default:
			return fmt.Errorf("dispatch: bench spec %q has unknown router %q", s.Name, s.Bench.Router)
		}
	case KindSoak:
		if s.Soak == nil {
			return fmt.Errorf("dispatch: soak spec %q has no soak block", s.Name)
		}
	default:
		return fmt.Errorf("dispatch: spec %q has unknown kind %q", s.Name, s.Kind)
	}
	return nil
}

// DecodeSpec parses and validates one spec document.
func DecodeSpec(data []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("dispatch: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// DecodeSpecs parses a queue file: either a JSON array of specs or a single
// spec object. Every spec is validated.
func DecodeSpecs(data []byte) ([]Spec, error) {
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		s, err := DecodeSpec(data)
		if err != nil {
			return nil, err
		}
		return []Spec{s}, nil
	}
	var specs []Spec
	if err := json.Unmarshal(data, &specs); err != nil {
		return nil, fmt.Errorf("dispatch: parse spec queue: %w", err)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("dispatch: spec queue is empty")
	}
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("dispatch: spec %d: %w", i, err)
		}
	}
	return specs, nil
}
