package dispatch

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
)

// Transition is one state-machine edge of one run, reported to the
// Config.OnTransition hook (tests use it to audit legality and to inject
// worker kills).
type Transition struct {
	RunID string
	From  RunState
	To    RunState
	// Attempt is the 1-based attempt this transition belongs to.
	Attempt int
	// PID is the worker process (0 for in-process execution or pre-exec
	// states).
	PID int
}

// Config parameterizes a Dispatcher.
type Config struct {
	// Workers is the pool size — how many runs execute concurrently
	// (default 2).
	Workers int
	// ResultsDir is the archive root; each run lands in ResultsDir/<run-id>/.
	ResultsDir string
	// MaxAttempts bounds executions per run: a run whose worker crashes is
	// requeued until it has consumed MaxAttempts attempts, then fails
	// (default 3). Experiment failures — the worker ran the spec and the
	// experiment errored — are deterministic and never retried.
	MaxAttempts int
	// WorkerCommand builds the worker process for one run: it must execute
	// the spec at specPath and archive result.json under outDir (see
	// RunWorker). Nil runs specs in-process instead — no isolation, but no
	// subprocess either (tests, quick local sweeps).
	WorkerCommand func(specPath, outDir string) *exec.Cmd
	// OnTransition, when set, observes every state edge. It is called with
	// the dispatcher lock held: it must not call back into the Dispatcher.
	OnTransition func(Transition)
}

// run is the dispatcher-side record of one queued experiment.
type run struct {
	id       string
	spec     Spec
	state    RunState
	attempts int
	pid      int
	errMsg   string
}

// Dispatcher drains a queue of experiment specs through a pool of workers.
type Dispatcher struct {
	cfg  Config
	mu   sync.Mutex
	runs []*run
	// queue holds indices into runs, FIFO. Crash-retried runs are pushed to
	// the back: a crashing spec must not starve the rest of the queue.
	queue []int
	// execOverride replaces Execute for in-process runs — tests use it to
	// simulate experiment failures and worker crashes (by panicking).
	execOverride func(Spec) *Result
}

// SelfWorkerCommand builds the standard worker invocation: re-execute the
// current binary with the -worker flag set (cmd/dispatcher's worker mode).
func SelfWorkerCommand(specPath, outDir string) *exec.Cmd {
	self, err := os.Executable()
	if err != nil {
		self = os.Args[0]
	}
	return exec.Command(self, "-worker", "-spec", specPath, "-out", outDir)
}

// New validates every spec and builds a dispatcher with all runs queued.
func New(cfg Config, specs []Spec) (*Dispatcher, error) {
	if cfg.ResultsDir == "" {
		return nil, fmt.Errorf("dispatch: ResultsDir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("dispatch: no specs queued")
	}
	d := &Dispatcher{cfg: cfg}
	for i, spec := range specs {
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("dispatch: spec %d: %w", i, err)
		}
		d.runs = append(d.runs, &run{
			id:    fmt.Sprintf("%03d-%s", i+1, spec.Name),
			spec:  spec,
			state: StateQueued,
		})
		d.queue = append(d.queue, i)
	}
	return d, nil
}

// legalNext enumerates the state machine. A booked attempt that cannot even
// start its worker (archive or spawn failure) aborts back to queued — or to
// failed once the retry budget is spent — without passing through executing.
// Everything else is a bug.
var legalNext = map[RunState]map[RunState]bool{
	StateQueued:    {StateBooked: true},
	StateBooked:    {StateExecuting: true, StateQueued: true, StateFailed: true},
	StateExecuting: {StateQueued: true, StateCompleted: true, StateFailed: true},
}

// transition moves one run along an edge, panicking on an illegal edge —
// the invariant the property tests audit. Caller holds d.mu.
func (d *Dispatcher) transition(r *run, to RunState) {
	if !legalNext[r.state][to] {
		panic(fmt.Sprintf("dispatch: illegal transition %s -> %s for run %s", r.state, to, r.id))
	}
	from := r.state
	r.state = to
	if d.cfg.OnTransition != nil {
		d.cfg.OnTransition(Transition{RunID: r.id, From: from, To: to, Attempt: r.attempts, PID: r.pid})
	}
}

// book claims the next queued run for a worker slot. Booking is the only
// queued→booked edge and happens under the lock, so a run can never be
// double-booked: it leaves the queue in the same critical section that
// transitions it.
func (d *Dispatcher) book() (*run, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.queue) == 0 {
		return nil, false
	}
	idx := d.queue[0]
	d.queue = d.queue[1:]
	r := d.runs[idx]
	if r.state != StateQueued {
		panic(fmt.Sprintf("dispatch: booking run %s in state %s", r.id, r.state))
	}
	r.attempts++
	r.pid = 0
	d.transition(r, StateBooked)
	return r, true
}

// settle moves an executing run to its terminal state, or requeues it after
// a crash while attempts remain.
func (d *Dispatcher) settle(r *run, to RunState, errMsg string, idx int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r.errMsg = errMsg
	if to == StateQueued {
		d.transition(r, StateQueued)
		d.queue = append(d.queue, idx)
		return
	}
	d.transition(r, to)
}

// indexOf maps a run back to its queue index.
func (d *Dispatcher) indexOf(r *run) int {
	for i, cand := range d.runs {
		if cand == r {
			return i
		}
	}
	panic("dispatch: unknown run")
}

// executeOne runs one booked attempt to a settled state (terminal or
// requeued).
func (d *Dispatcher) executeOne(r *run) {
	dir := filepath.Join(d.cfg.ResultsDir, r.id)
	idx := d.indexOf(r)
	crash := func(detail string) {
		if r.attempts < d.cfg.MaxAttempts {
			d.settle(r, StateQueued, detail, idx)
			return
		}
		d.settle(r, StateFailed, fmt.Sprintf("worker crashed on all %d attempts: %s", r.attempts, detail), idx)
	}
	if err := WriteSpec(dir, r.spec); err != nil {
		// The archive is unusable; retrying would hit the same disk error.
		d.settle(r, StateFailed, err.Error(), idx)
		return
	}
	if d.cfg.WorkerCommand == nil {
		d.executeInProcess(r, dir, crash)
		return
	}
	d.executeProcess(r, dir, crash)
}

// executeInProcess runs the spec in the dispatcher process. A panic in the
// runner counts as a crash, taking the same retry path a dead worker does.
func (d *Dispatcher) executeInProcess(r *run, dir string, crash func(string)) {
	d.mu.Lock()
	d.transition(r, StateExecuting)
	d.mu.Unlock()
	exec := Execute
	if d.execOverride != nil {
		exec = d.execOverride
	}
	var res *Result
	panicked := func() (p bool) {
		defer func() {
			if rec := recover(); rec != nil {
				p = true
			}
		}()
		res = exec(r.spec)
		return false
	}()
	if panicked || res == nil {
		crash("runner panicked")
		return
	}
	res.RunID = r.id
	res.Attempt = r.attempts
	if err := WriteResult(dir, res); err != nil {
		crash(err.Error())
		return
	}
	idx := d.indexOf(r)
	d.settle(r, res.State, res.Error, idx)
}

// executeProcess runs the spec in a worker subprocess, streams its output to
// the archive logs, and judges the outcome by the archived result.json: a
// worker that exits without one crashed, whatever its exit code says.
func (d *Dispatcher) executeProcess(r *run, dir string, crash func(string)) {
	specPath := filepath.Join(dir, specFile)
	stdout, err := os.Create(filepath.Join(dir, stdoutFile))
	if err != nil {
		crash(err.Error())
		return
	}
	defer stdout.Close()
	stderr, err := os.Create(filepath.Join(dir, stderrFile))
	if err != nil {
		crash(err.Error())
		return
	}
	defer stderr.Close()
	// A retry must not inherit the previous attempt's result document;
	// result.json presence is the completed-handshake signal.
	os.Remove(filepath.Join(dir, resultFile))

	cmd := d.cfg.WorkerCommand(specPath, dir)
	cmd.Stdout = stdout
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		crash(fmt.Sprintf("start worker: %v", err))
		return
	}
	d.mu.Lock()
	r.pid = cmd.Process.Pid
	d.transition(r, StateExecuting)
	d.mu.Unlock()
	waitErr := cmd.Wait()

	res, loadErr := LoadResult(dir)
	if loadErr != nil {
		detail := fmt.Sprintf("no result archived (%v)", loadErr)
		if waitErr != nil {
			detail = fmt.Sprintf("worker exit: %v; %s", waitErr, detail)
		}
		crash(detail)
		return
	}
	if res.State != StateCompleted && res.State != StateFailed {
		crash(fmt.Sprintf("worker archived non-terminal state %q", res.State))
		return
	}
	idx := d.indexOf(r)
	d.settle(r, res.State, res.Error, idx)
}

// Run drains the queue through the worker pool, writes the manifest, and
// returns every run's terminal status. The error covers harness failures
// only; failed experiments are reported in the returned entries (see
// Manifest.Runs) and counted by Failed.
func (d *Dispatcher) Run() ([]ManifestEntry, error) {
	if err := os.MkdirAll(d.cfg.ResultsDir, 0o755); err != nil {
		return nil, fmt.Errorf("dispatch: create results dir: %w", err)
	}
	var wg sync.WaitGroup
	for w := 0; w < d.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				r, ok := d.book()
				if !ok {
					return
				}
				d.executeOne(r)
			}
		}()
	}
	wg.Wait()

	entries := d.Statuses()
	for _, e := range entries {
		if !e.State.Terminal() {
			return entries, fmt.Errorf("dispatch: run %s drained in non-terminal state %s", e.RunID, e.State)
		}
	}
	m := Manifest{SchemaVersion: ResultVersion, Env: Fingerprint(), Runs: entries}
	if err := WriteManifest(d.cfg.ResultsDir, m); err != nil {
		return entries, err
	}
	return entries, nil
}

// Statuses snapshots every run's current state in queue order.
func (d *Dispatcher) Statuses() []ManifestEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	entries := make([]ManifestEntry, len(d.runs))
	for i, r := range d.runs {
		entries[i] = ManifestEntry{
			RunID:    r.id,
			Name:     r.spec.Name,
			Kind:     r.spec.Kind,
			State:    r.state,
			Attempts: r.attempts,
			Error:    r.errMsg,
		}
	}
	return entries
}

// Failed counts runs in the failed state.
func Failed(entries []ManifestEntry) int {
	n := 0
	for _, e := range entries {
		if e.State == StateFailed {
			n++
		}
	}
	return n
}
