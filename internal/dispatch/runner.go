package dispatch

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"time"

	"streambalance/internal/core"
	rt "streambalance/internal/runtime"
	"streambalance/internal/schedule"
	"streambalance/internal/schema"
	"streambalance/internal/sim"
	"streambalance/internal/soak"
	"streambalance/internal/transport"
)

// benchPkg labels dispatcher-produced benchmark rows. Region-transport rows
// keep the root package label so they pair with the checked-in BENCH_*.json
// baselines under benchguard's pkg+name key.
const benchPkg = "streambalance"

// Execute runs one spec in the calling process and returns its result
// document (state completed or failed — never an error for experiment
// failures, which are data). Worker processes call this via RunWorker; tests
// and the in-process pool mode call it directly.
func Execute(spec Spec) *Result {
	res := &Result{
		SchemaVersion: ResultVersion,
		Name:          spec.Name,
		Kind:          spec.Kind,
		Attempt:       1,
		StartedAt:     time.Now(),
		Env:           Fingerprint(),
		Spec:          &spec,
	}
	var err error
	if verr := spec.Validate(); verr != nil {
		err = verr
	} else {
		switch spec.Kind {
		case KindSim:
			err = runSim(spec, res)
		case KindBench:
			err = runBenchKind(spec, res)
		case KindSoak:
			err = runSoakKind(spec, res)
		}
	}
	res.FinishedAt = time.Now()
	res.Elapsed = res.FinishedAt.Sub(res.StartedAt)
	if err != nil {
		res.State = StateFailed
		res.Error = err.Error()
	} else {
		res.State = StateCompleted
	}
	return res
}

// benchRow appends one benchjson-shaped row to the result's Bench report.
func (r *Result) benchRow(pkg, name string, iters int64, metrics map[string]float64) {
	if r.Bench == nil {
		r.Bench = &schema.BenchReport{
			SchemaVersion: schema.BenchVersion,
			Goos:          r.Env.Goos,
			Goarch:        r.Env.Goarch,
		}
	}
	r.Bench.Results = append(r.Bench.Results, schema.BenchResult{
		Pkg: pkg, Name: name, Iterations: iters, Metrics: metrics,
	})
}

// simConfig expands a SimSpec into a runnable sim.Config.
func simConfig(s *SimSpec) (sim.Config, error) {
	hosts := s.Hosts
	if hosts <= 0 {
		hosts = 1
	}
	hs := make([]sim.HostSpec, hosts)
	for i := range hs {
		hs[i] = sim.SlowHost(fmt.Sprintf("h%d", i))
	}
	pes := make([]sim.PESpec, s.PEs)
	for i := range pes {
		pes[i].Host = i % hosts
		if len(s.LoadMultipliers) == s.PEs {
			pes[i].Load = sim.ConstantLoad(s.LoadMultipliers[i])
		}
	}
	cfg := sim.Config{
		Hosts:         hs,
		PEs:           pes,
		BaseCost:      s.BaseCost,
		TotalTuples:   s.TotalTuples,
		BatchSize:     s.BatchSize,
		RecvBatchSize: s.RecvBatch,
		Seed:          s.Seed,
		ServiceJitter: s.ServiceJitter,
		StallWindow:   time.Duration(s.StallWindowMS) * time.Millisecond,
	}
	if cfg.BaseCost <= 0 {
		cfg.BaseCost = 1000
	}
	if cfg.TotalTuples == 0 {
		cfg.TotalTuples = 20_000
	}
	if s.Policy == "balancer" {
		bal, err := core.NewBalancer(core.Config{Connections: s.PEs})
		if err != nil {
			return sim.Config{}, fmt.Errorf("dispatch: build balancer: %w", err)
		}
		cfg.Policy = sim.NewBalancerPolicy(bal, "LB")
	}
	return cfg, nil
}

func runSim(spec Spec, res *Result) error {
	cfg, err := simConfig(spec.Sim)
	if err != nil {
		return err
	}
	s, err := sim.New(cfg)
	if err != nil {
		return fmt.Errorf("dispatch: build sim: %w", err)
	}
	start := time.Now()
	m, err := s.Run()
	if err != nil {
		return fmt.Errorf("dispatch: sim run: %w", err)
	}
	res.Sim = &SimResult{
		Policy:          m.Policy,
		EndTime:         m.EndTime,
		Sent:            m.Sent,
		Completed:       m.Completed,
		MeanThroughput:  m.MeanThroughput,
		FinalThroughput: m.FinalThroughput,
		LatencyP50:      m.LatencyP50,
		LatencyP99:      m.LatencyP99,
		LatencyMax:      m.LatencyMax,
		MaxReleaseGap:   m.MaxReleaseGap,
		StallAlarms:     m.StallAlarms,
		MergeSweeps:     m.MergeSweeps,
		FinalWeights:    m.FinalWeights,
	}
	// tuples/s is virtual-time throughput (the figure metric); wall-tuples/s
	// is how fast the engine itself chewed through the scenario.
	metrics := map[string]float64{"tuples/s": m.MeanThroughput}
	if wall := time.Since(start).Seconds(); wall > 0 {
		metrics["wall-tuples/s"] = float64(m.Completed) / wall
	}
	res.benchRow(benchPkg+"/internal/dispatch", "BenchmarkDispatchSim/"+spec.Name, 1, metrics)
	return nil
}

// RunRegionTransportOnce runs one pass of the region-transport workload —
// the same splitter→workers→merger region BenchmarkRegionTransport measures,
// parameterized by spec. bench_test.go's benchmark loops over this shim, so
// the benchmark and the dispatcher run byte-for-byte the same workload.
func RunRegionTransportOnce(s BenchSpec) error {
	workers := s.Workers
	if workers <= 0 {
		workers = 4
	}
	tuples := s.Tuples
	if tuples == 0 {
		tuples = 30_000
	}
	payloadSize := s.Payload
	if payloadSize <= 0 {
		payloadSize = 64
	}
	kind := rt.TransportTCP
	if s.Transport == "inproc" {
		kind = rt.TransportInproc
	}
	bal, err := core.NewBalancer(core.Config{Connections: workers})
	if err != nil {
		return err
	}
	ops := make([]rt.Operator, workers)
	for j := range ops {
		ops[j] = rt.Identity()
	}
	payload := make([]byte, payloadSize)
	region, err := rt.NewRegion(rt.RegionConfig{
		Transport: kind,
		Operators: ops,
		Source: func(seq uint64) ([]byte, bool) {
			if seq >= tuples {
				return nil, false
			}
			return payload, true
		},
		Balancer:       bal,
		SampleInterval: 50 * time.Millisecond,
		BatchSize:      s.Batch,
		RecvBatchSize:  s.RecvBatch,
		RingCap:        s.RingCap,
		Sink:           func(transport.Tuple, int) {},
	})
	if err != nil {
		return err
	}
	r, err := region.Run()
	if err != nil {
		return err
	}
	if r.Released != tuples || !r.OrderPreserved {
		return fmt.Errorf("dispatch: region released %d of %d tuples, order=%v", r.Released, tuples, r.OrderPreserved)
	}
	return nil
}

// keyedRouter builds the KeyRouter (and, for the balanced variant, the
// core.Balancer whose sampled blocking rates feed it penalties) named by a
// keyed-routing spec.
func keyedRouter(name string, workers int) (schedule.KeyRouter, *core.Balancer, error) {
	switch name {
	case "hash":
		r, err := schedule.NewHashRouter(workers)
		return r, nil, err
	case "", "pkg":
		r, err := schedule.NewPKGRouter(workers)
		return r, nil, err
	case "dchoices":
		r, err := schedule.NewDChoicesRouter(workers, schedule.DefaultDChoices, schedule.DefaultTrackerCap)
		return r, nil, err
	case "pkg-balanced":
		r, err := schedule.NewPKGRouter(workers)
		if err != nil {
			return nil, nil, err
		}
		bal, err := core.NewBalancer(core.Config{Connections: workers})
		if err != nil {
			return nil, nil, err
		}
		return r, bal, nil
	default:
		return nil, nil, fmt.Errorf("dispatch: unknown router %q", name)
	}
}

// KeyedRoutingStats surfaces the combiner's effect on one keyed-routing run,
// so benchmark rows can archive a combiner-hit metric next to tuples/s.
type KeyedRoutingStats struct {
	// CombinerHits counts tuples the workers absorbed into same-key
	// carriers; CombinedReleased counts the sequence numbers the merger
	// released through absorption. Equal in crash-free runs.
	CombinerHits     uint64
	CombinedReleased uint64
}

// RunKeyedRoutingOnce runs one pass of the keyed-routing workload: a region
// of sleeping-service workers fed a deterministic Zipf keyed stream
// (internal/sim's generator), non-zero keys placed by the spec's router,
// optionally combined per key in the workers before the ordered merge. Every
// tuple carries the unit value 1, so the run self-verifies: the released
// values plus the absorbed count must sum to the stream length, released
// sequence numbers must be strictly increasing, and Released +
// CombinedReleased must cover the stream. BenchmarkKeyedRouting loops over
// this shim, so the benchmark grid and the dispatcher run byte-for-byte the
// same workload.
func RunKeyedRoutingOnce(s BenchSpec) (KeyedRoutingStats, error) {
	workers := s.Workers
	if workers <= 0 {
		workers = 4
	}
	tuples := s.Tuples
	if tuples == 0 {
		tuples = 30_000
	}
	keys := s.Keys
	if keys <= 0 {
		keys = 10_000
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	service := time.Duration(s.ServiceUS) * time.Microsecond
	if service <= 0 {
		service = 20 * time.Microsecond
	}
	payloadSize := s.Payload
	if payloadSize < 8 {
		payloadSize = 64
	}
	kind := rt.TransportTCP
	if s.Transport == "inproc" {
		kind = rt.TransportInproc
	}
	router, bal, err := keyedRouter(s.Router, workers)
	if err != nil {
		return KeyedRoutingStats{}, err
	}
	// Wall-clock service time, not spin: a hot worker's overload must cost
	// real throughput even when the host has fewer cores than the region has
	// workers (spinning workers would just share the cores and hide the
	// imbalance the bake-off exists to measure).
	ops := make([]rt.Operator, workers)
	for j := range ops {
		ops[j] = rt.NewServiceOperator(service)
	}
	ks := sim.NewZipfStream(keys, s.SkewAlpha, seed)
	ks.SetHotShare(s.HotShare)
	ks.SetChurn(s.Churn)
	payload := make([]byte, payloadSize)
	payload[0] = 1 // little-endian unit value
	var (
		sum      uint64
		lastSeq  uint64
		haveLast bool
		ordered  = true
	)
	cfg := rt.RegionConfig{
		Transport: kind,
		Operators: ops,
		KeyedSource: func(seq uint64) (uint64, []byte, bool) {
			if seq >= tuples {
				return 0, nil, false
			}
			return ks.Key(seq), payload, true
		},
		Router:         router,
		Balancer:       bal,
		SampleInterval: 50 * time.Millisecond,
		BatchSize:      s.Batch,
		RecvBatchSize:  s.RecvBatch,
		RingCap:        s.RingCap,
		Sink: func(t transport.Tuple, _ int) {
			if haveLast && t.Seq <= lastSeq {
				ordered = false
			}
			lastSeq, haveLast = t.Seq, true
			if len(t.Payload) >= 8 {
				sum += binary.LittleEndian.Uint64(t.Payload)
			}
		},
	}
	if s.Combine {
		cfg.Combiner = rt.SumCombiner()
	}
	region, err := rt.NewRegion(cfg)
	if err != nil {
		return KeyedRoutingStats{}, err
	}
	r, err := region.Run()
	if err != nil {
		return KeyedRoutingStats{}, err
	}
	if r.Released+r.CombinedReleased != tuples || !r.OrderPreserved || !ordered {
		return KeyedRoutingStats{}, fmt.Errorf("dispatch: keyed region released %d + %d combined of %d tuples, order=%v",
			r.Released, r.CombinedReleased, tuples, r.OrderPreserved && ordered)
	}
	if sum != tuples {
		return KeyedRoutingStats{}, fmt.Errorf("dispatch: keyed region sums to %d, want %d (per-key aggregation lost tuples)", sum, tuples)
	}
	return KeyedRoutingStats{CombinerHits: r.CombinerHits, CombinedReleased: r.CombinedReleased}, nil
}

// benchName renders the row name the equivalent go-test benchmark would
// carry, so archived runs pair with checked-in BENCH_*.json baselines.
func benchName(s BenchSpec) string {
	switch s.Benchmark {
	case "region-transport":
		transportKind := s.Transport
		if transportKind == "" {
			transportKind = "tcp"
		}
		batch := s.Batch
		if batch <= 0 {
			batch = 1
		}
		return fmt.Sprintf("BenchmarkRegionTransport/transport=%s/batch=%d", transportKind, batch)
	case "sim-throughput":
		return "BenchmarkSimulatorThroughput"
	case "keyed-routing":
		router := s.Router
		if router == "" {
			router = "pkg"
		}
		workers := s.Workers
		if workers <= 0 {
			workers = 4
		}
		return fmt.Sprintf("BenchmarkKeyedRouting/router=%s/alpha=%g/workers=%d", router, s.SkewAlpha, workers)
	default:
		return "Benchmark" + s.Benchmark
	}
}

func runBenchKind(spec Spec, res *Result) error {
	s := *spec.Bench
	iters := s.Iters
	if iters <= 0 {
		iters = 1
	}
	var perIter uint64
	var runOnce func() error
	var combinerHits uint64
	switch s.Benchmark {
	case "region-transport":
		perIter = s.Tuples
		if perIter == 0 {
			perIter = 30_000
		}
		runOnce = func() error { return RunRegionTransportOnce(s) }
	case "keyed-routing":
		perIter = s.Tuples
		if perIter == 0 {
			perIter = 30_000
		}
		runOnce = func() error {
			st, err := RunKeyedRoutingOnce(s)
			combinerHits += st.CombinerHits
			return err
		}
	case "sim-throughput":
		pes := s.PEs
		if pes <= 0 {
			pes = 8
		}
		baseCost := s.BaseCost
		if baseCost <= 0 {
			baseCost = 1000
		}
		perIter = s.Tuples
		if perIter == 0 {
			perIter = 50_000
		}
		hosts := []sim.HostSpec{sim.SlowHost("h")}
		runOnce = func() error {
			eng, err := sim.New(sim.Config{
				Hosts: hosts, PEs: make([]sim.PESpec, pes),
				BaseCost: baseCost, TotalTuples: perIter,
			})
			if err != nil {
				return err
			}
			m, err := eng.Run()
			if err != nil {
				return err
			}
			if m.Completed != perIter {
				return fmt.Errorf("dispatch: sim completed %d of %d tuples", m.Completed, perIter)
			}
			return nil
		}
	default:
		return fmt.Errorf("dispatch: unknown benchmark %q", s.Benchmark)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := runOnce(); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	metrics := map[string]float64{
		"ns/op": float64(elapsed.Nanoseconds()) / float64(iters),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		metrics["tuples/s"] = float64(perIter*uint64(iters)) / secs
	}
	if s.Benchmark == "keyed-routing" {
		// Average tuples absorbed into same-key carriers per iteration — the
		// combiner's merger-ingest reduction, archived next to tuples/s.
		metrics["combiner-hits"] = float64(combinerHits) / float64(iters)
	}
	res.benchRow(benchPkg, benchName(s), int64(iters), metrics)
	return nil
}

func runSoakKind(spec Spec, res *Result) error {
	sum, err := soak.Run(spec.Soak.Config())
	res.Soak = &sum
	if err != nil {
		return fmt.Errorf("dispatch: soak run: %w", err)
	}
	if sum.Released != sum.Tuples || !sum.OrderPreserved {
		return fmt.Errorf("dispatch: soak released %d of %d tuples, order=%v", sum.Released, sum.Tuples, sum.OrderPreserved)
	}
	res.benchRow(benchPkg+"/internal/soak", "BenchmarkDispatchSoak/"+spec.Name, 1, map[string]float64{
		"tuples/s": sum.TuplesPerSec,
	})
	return nil
}

// RunWorker is the worker-process entry point: read the spec at specPath,
// execute it, and archive result.json under outDir. The process exit code
// reflects only harness health — an experiment that ran and failed still
// exits 0 with a state=failed result; a missing result.json is how the
// dispatcher recognizes a crash.
func RunWorker(specPath, outDir string) error {
	data, err := readFile(specPath)
	if err != nil {
		return err
	}
	spec, err := DecodeSpec(data)
	if err != nil {
		return err
	}
	res := Execute(spec)
	res.RunID = runIDFromDir(outDir)
	return WriteResult(outDir, res)
}

// MarshalResult renders the canonical indented result document.
func MarshalResult(res *Result) ([]byte, error) {
	return json.MarshalIndent(res, "", "  ")
}
