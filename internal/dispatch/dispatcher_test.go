package dispatch

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMain doubles as the worker process for the subprocess tests: when the
// helper env vars are set, the binary executes one spec and exits instead of
// running the test suite — the same protocol cmd/dispatcher's -worker mode
// speaks, without needing a separately built binary.
func TestMain(m *testing.M) {
	if os.Getenv("DISPATCH_WORKER_HELPER") == "1" {
		if err := RunWorker(os.Getenv("DISPATCH_SPEC"), os.Getenv("DISPATCH_OUT")); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// helperWorkerCommand re-executes this test binary as a worker process.
func helperWorkerCommand(specPath, outDir string) *exec.Cmd {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"DISPATCH_WORKER_HELPER=1",
		"DISPATCH_SPEC="+specPath,
		"DISPATCH_OUT="+outDir,
	)
	return cmd
}

// transitionLog records every state edge, and audits the run-lifecycle
// invariants: edges chain with no gaps, every edge is legal, booking only
// happens from queued (no double-booking), and each run ends in exactly one
// terminal state.
type transitionLog struct {
	mu    sync.Mutex
	byRun map[string][]Transition
}

func newTransitionLog() *transitionLog {
	return &transitionLog{byRun: map[string][]Transition{}}
}

func (l *transitionLog) record(tr Transition) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.byRun[tr.RunID] = append(l.byRun[tr.RunID], tr)
}

func (l *transitionLog) audit(t *testing.T) {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	for id, trs := range l.byRun {
		state := StateQueued
		terminals := 0
		bookings := 0
		for i, tr := range trs {
			if tr.From != state {
				t.Errorf("run %s: edge %d is %s->%s but run was in %s (torn edge chain)", id, i, tr.From, tr.To, state)
			}
			if !legalNext[tr.From][tr.To] {
				t.Errorf("run %s: illegal edge %s->%s", id, tr.From, tr.To)
			}
			if tr.To == StateBooked {
				if tr.From != StateQueued {
					t.Errorf("run %s: booked from %s — double-booking", id, tr.From)
				}
				bookings++
				if tr.Attempt != bookings {
					t.Errorf("run %s: booking %d carries attempt %d", id, bookings, tr.Attempt)
				}
			}
			if tr.To.Terminal() {
				terminals++
			}
			state = tr.To
		}
		if terminals != 1 {
			t.Errorf("run %s: %d terminal transitions, want exactly 1 (ends in %s)", id, terminals, state)
		}
		if !state.Terminal() {
			t.Errorf("run %s: drained in non-terminal state %s", id, state)
		}
	}
}

func (l *transitionLog) runs() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.byRun)
}

// TestDispatcherStateMachineProperty drives a randomized queue through the
// in-process pool with an exec override that completes, fails, crashes
// once-then-recovers, or always crashes — and audits that every enqueued run
// terminates in exactly one of completed/failed with a legal, gap-free edge
// history and no double-booking. Run under -race -count=2 in CI.
func TestDispatcherStateMachineProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 48
	specs := make([]Spec, n)
	type behavior int
	const (
		behaveOK behavior = iota
		behaveFail
		behaveCrashOnce
		behaveCrashAlways
	)
	behaviors := make([]behavior, n)
	for i := range specs {
		behaviors[i] = behavior(rng.Intn(4))
		specs[i] = Spec{Kind: KindSim, Name: fmt.Sprintf("run-%02d-b%d", i, behaviors[i]),
			Sim: &SimSpec{PEs: 1, TotalTuples: 1}}
	}

	crashes := make([]atomic.Int32, n)
	log := newTransitionLog()
	d, err := New(Config{
		Workers:      8,
		ResultsDir:   t.TempDir(),
		MaxAttempts:  3,
		OnTransition: log.record,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	d.execOverride = func(s Spec) *Result {
		var idx int
		var b int
		fmt.Sscanf(s.Name, "run-%02d-b%d", &idx, &b)
		res := &Result{SchemaVersion: ResultVersion, Name: s.Name, Kind: s.Kind, State: StateCompleted}
		switch behavior(b) {
		case behaveFail:
			res.State = StateFailed
			res.Error = "experiment errored"
		case behaveCrashOnce:
			if crashes[idx].Add(1) == 1 {
				panic("injected crash")
			}
		case behaveCrashAlways:
			panic("injected crash")
		}
		return res
	}

	entries, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != n {
		t.Fatalf("%d entries, want %d", len(entries), n)
	}
	for i, e := range entries {
		switch behaviors[i] {
		case behaveOK:
			if e.State != StateCompleted || e.Attempts != 1 {
				t.Errorf("%s: state %s attempts %d, want completed in 1", e.RunID, e.State, e.Attempts)
			}
		case behaveFail:
			if e.State != StateFailed || e.Attempts != 1 || e.Error == "" {
				t.Errorf("%s: state %s attempts %d err %q, want failed in 1 with message", e.RunID, e.State, e.Attempts, e.Error)
			}
		case behaveCrashOnce:
			if e.State != StateCompleted || e.Attempts != 2 {
				t.Errorf("%s: state %s attempts %d, want completed on retry", e.RunID, e.State, e.Attempts)
			}
		case behaveCrashAlways:
			if e.State != StateFailed || e.Attempts != 3 || !strings.Contains(e.Error, "crashed") {
				t.Errorf("%s: state %s attempts %d err %q, want failed after 3 crashes", e.RunID, e.State, e.Attempts, e.Error)
			}
		}
	}
	if log.runs() != n {
		t.Fatalf("transitions recorded for %d runs, want %d", log.runs(), n)
	}
	log.audit(t)
}

// TestDispatcherWorkerProcesses drains a small queue through real worker
// subprocesses (this test binary re-executed) and checks the archive layout:
// spec.json, result.json, logs, manifest.
func TestDispatcherWorkerProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	resultsDir := t.TempDir()
	specs := []Spec{
		{Kind: KindSim, Name: "sim-a", Sim: &SimSpec{PEs: 2, TotalTuples: 2000}},
		{Kind: KindSim, Name: "sim-b", Sim: &SimSpec{PEs: 4, TotalTuples: 2000, Policy: "balancer"}},
		{Kind: KindBench, Name: "bench-a", Bench: &BenchSpec{Benchmark: "sim-throughput", PEs: 2, Tuples: 2000}},
	}
	log := newTransitionLog()
	d, err := New(Config{
		Workers:       2,
		ResultsDir:    resultsDir,
		WorkerCommand: helperWorkerCommand,
		OnTransition:  log.record,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if Failed(entries) != 0 {
		t.Fatalf("failed runs: %+v", entries)
	}
	log.audit(t)

	ids, err := ListRuns(resultsDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(specs) {
		t.Fatalf("archived %d runs, want %d: %v", len(ids), len(specs), ids)
	}
	for _, id := range ids {
		dir := filepath.Join(resultsDir, id)
		for _, f := range []string{"spec.json", "result.json", "stdout.log", "stderr.log"} {
			if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
				t.Errorf("run %s: missing %s: %v", id, f, err)
			}
		}
		res, err := LoadResult(dir)
		if err != nil {
			t.Errorf("run %s: %v", id, err)
			continue
		}
		if res.State != StateCompleted || res.RunID != id {
			t.Errorf("run %s: %+v", id, res)
		}
	}
	m, err := LoadManifest(resultsDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Runs) != len(specs) || m.SchemaVersion != ResultVersion {
		t.Fatalf("manifest: %+v", m)
	}
}

// TestDispatcherSurvivesWorkerKill is the worker-kill half of the property:
// SIGKILL lands on the first few executing workers mid-run; the dispatcher
// must retry them and every run must still terminate cleanly — completed,
// because the killer stands down after its budget.
func TestDispatcherSurvivesWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	const n = 4
	specs := make([]Spec, n)
	for i := range specs {
		// Big enough that a kill a few ms after exec lands mid-run.
		specs[i] = Spec{Kind: KindSim, Name: fmt.Sprintf("victim-%d", i),
			Sim: &SimSpec{PEs: 8, TotalTuples: 200_000}}
	}
	log := newTransitionLog()
	var kills atomic.Int32
	const killBudget = 3
	cfg := Config{
		Workers:       2,
		ResultsDir:    t.TempDir(),
		MaxAttempts:   killBudget + 2,
		WorkerCommand: helperWorkerCommand,
		OnTransition: func(tr Transition) {
			log.record(tr)
			if tr.To == StateExecuting && tr.PID > 0 && kills.Add(1) <= killBudget {
				pid := tr.PID
				go func() {
					time.Sleep(10 * time.Millisecond)
					if p, err := os.FindProcess(pid); err == nil {
						p.Kill()
					}
				}()
			}
		},
	}
	d, err := New(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	log.audit(t)
	retried := 0
	for _, e := range entries {
		if !e.State.Terminal() {
			t.Errorf("%s drained in %s", e.RunID, e.State)
		}
		if e.State != StateCompleted {
			t.Errorf("%s: state %s (%s) — kills exceed the retry budget?", e.RunID, e.State, e.Error)
		}
		if e.Attempts > 1 {
			retried++
		}
	}
	// At least one SIGKILL must have landed mid-run, or the test proved
	// nothing about crash recovery.
	if retried == 0 {
		t.Skip("no kill landed mid-run on this machine; nothing exercised")
	}
}
