package dispatch

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestExecuteSimSpec(t *testing.T) {
	res := Execute(Spec{Kind: KindSim, Name: "sim-lb", Sim: &SimSpec{
		PEs: 4, TotalTuples: 5000, Policy: "balancer",
		LoadMultipliers: []float64{10, 1, 1, 1},
	}})
	if res.State != StateCompleted {
		t.Fatalf("state %s, error %q", res.State, res.Error)
	}
	if res.SchemaVersion != ResultVersion || res.Kind != KindSim {
		t.Fatalf("envelope wrong: %+v", res)
	}
	if res.Sim == nil || res.Sim.Completed != 5000 {
		t.Fatalf("sim payload: %+v", res.Sim)
	}
	if res.Sim.Policy == "" || res.Sim.MeanThroughput <= 0 {
		t.Fatalf("sim metrics empty: %+v", res.Sim)
	}
	if res.Bench == nil || len(res.Bench.Results) != 1 {
		t.Fatalf("sim run produced no bench row: %+v", res.Bench)
	}
	row := res.Bench.Results[0]
	if !strings.HasPrefix(row.Name, "BenchmarkDispatchSim/") || row.Metrics["tuples/s"] <= 0 {
		t.Fatalf("bench row: %+v", row)
	}
	if res.Env.GoVersion == "" || res.Env.NumCPU <= 0 {
		t.Fatalf("env fingerprint empty: %+v", res.Env)
	}
}

func TestExecuteBenchRegionTransportSpec(t *testing.T) {
	res := Execute(Spec{Kind: KindBench, Name: "region-inproc", Bench: &BenchSpec{
		Benchmark: "region-transport", Transport: "inproc", Workers: 4, Batch: 32, Tuples: 4000,
	}})
	if res.State != StateCompleted {
		t.Fatalf("state %s, error %q", res.State, res.Error)
	}
	if res.Bench == nil || len(res.Bench.Results) != 1 {
		t.Fatalf("bench payload: %+v", res.Bench)
	}
	row := res.Bench.Results[0]
	// The row must pair with the checked-in BENCH_*.json baselines under
	// benchguard's pkg+name key.
	if row.Pkg != "streambalance" || row.Name != "BenchmarkRegionTransport/transport=inproc/batch=32" {
		t.Fatalf("row does not mirror the go-test benchmark name: %+v", row)
	}
	if row.Metrics["tuples/s"] <= 0 || row.Metrics["ns/op"] <= 0 {
		t.Fatalf("row metrics: %+v", row.Metrics)
	}
}

func TestExecuteSimThroughputBenchSpec(t *testing.T) {
	res := Execute(Spec{Kind: KindBench, Name: "simthru", Bench: &BenchSpec{
		Benchmark: "sim-throughput", PEs: 4, Tuples: 5000, Iters: 2,
	}})
	if res.State != StateCompleted {
		t.Fatalf("state %s, error %q", res.State, res.Error)
	}
	row := res.Bench.Results[0]
	if row.Name != "BenchmarkSimulatorThroughput" || row.Iterations != 2 {
		t.Fatalf("row: %+v", row)
	}
}

func TestExecuteFailingSpecIsDataNotError(t *testing.T) {
	// ServiceJitter >= 1 passes spec validation but the simulator rejects it:
	// the run must archive as failed, not crash the worker.
	res := Execute(Spec{Kind: KindSim, Name: "sim-bad", Sim: &SimSpec{
		PEs: 2, TotalTuples: 100, ServiceJitter: 1.5,
	}})
	if res.State != StateFailed || res.Error == "" {
		t.Fatalf("state %s, error %q; want failed with message", res.State, res.Error)
	}
}

func TestResultArchiveRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "001-sim-a")
	spec := Spec{Kind: KindSim, Name: "sim-a", Sim: &SimSpec{PEs: 2, TotalTuples: 500}}
	if err := WriteSpec(dir, spec); err != nil {
		t.Fatal(err)
	}
	res := Execute(spec)
	res.RunID = "001-sim-a"
	if err := WriteResult(dir, res); err != nil {
		t.Fatal(err)
	}
	back, err := LoadResult(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.RunID != "001-sim-a" || back.State != StateCompleted || back.Sim == nil {
		t.Fatalf("round trip: %+v", back)
	}
	if back.Spec == nil || back.Spec.Name != "sim-a" {
		t.Fatalf("spec not embedded: %+v", back.Spec)
	}

	// The archived run doubles as a benchguard side.
	rep, err := LoadBenchReport(filepath.Join(dir, "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("bench rows: %+v", rep.Results)
	}
}

func TestLoadBenchReportReadsRawBaseline(t *testing.T) {
	// The checked-in pre-versioning BENCH archives must load as the other
	// side of a comparison.
	rep, err := LoadBenchReport(filepath.Join("..", "..", "BENCH_d063730.json"))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rep.Results {
		if strings.Contains(r.Name, "RegionTransport/transport=inproc") {
			found = true
		}
	}
	if !found {
		t.Fatal("baseline rows not loaded")
	}
}

func TestLoadResultMissingIsCrashSignature(t *testing.T) {
	if _, err := LoadResult(t.TempDir()); err == nil || !strings.Contains(err.Error(), "no result") {
		t.Fatalf("missing result: %v", err)
	}
}
