package dispatch

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"streambalance/internal/schema"
)

// Archive layout: every run owns results/<run-id>/ with
//
//	spec.json    — the experiment spec as queued
//	result.json  — the schema-stable Result document (absent after a crash)
//	stdout.log   — the worker process's stdout
//	stderr.log   — the worker process's stderr
//
// plus one results/manifest.json written by the dispatcher when the queue
// drains, summarizing every run's terminal state.

const (
	specFile     = "spec.json"
	resultFile   = "result.json"
	stdoutFile   = "stdout.log"
	stderrFile   = "stderr.log"
	manifestFile = "manifest.json"
)

func readFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dispatch: read %s: %w", path, err)
	}
	return data, nil
}

// runIDFromDir recovers the run ID from its archive directory name.
func runIDFromDir(dir string) string { return filepath.Base(filepath.Clean(dir)) }

// WriteSpec archives the spec into the run directory, creating it.
func WriteSpec(dir string, spec Spec) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dispatch: create run dir: %w", err)
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, specFile), append(data, '\n'), 0o644)
}

// WriteResult archives the result document atomically (write to a temp file,
// rename), so a reader never sees a torn result.json and a crash mid-write
// looks identical to a crash before the write — no result at all.
func WriteResult(dir string, res *Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dispatch: create run dir: %w", err)
	}
	data, err := MarshalResult(res)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, resultFile+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, resultFile))
}

// LoadResult reads a run's archived result document. A missing result.json
// is returned as an os.ErrNotExist-wrapping error — the crash signature.
func LoadResult(dir string) (*Result, error) {
	data, err := os.ReadFile(filepath.Join(dir, resultFile))
	if err != nil {
		return nil, fmt.Errorf("dispatch: run %s has no result: %w", runIDFromDir(dir), err)
	}
	return DecodeResult(data)
}

// LoadBenchReport loads benchmark rows from path, accepting either a raw
// benchjson document (BENCH_*.json) or an archived dispatcher result
// (results/<run-id>/result.json), whose bench payload is extracted. This is
// what lets cmd/benchguard compare any two archived runs, or a run against
// the checked-in baseline.
func LoadBenchReport(path string) (*schema.BenchReport, error) {
	data, err := readFile(path)
	if err != nil {
		return nil, err
	}
	// A dispatcher result is distinguished by its run_id/kind envelope keys.
	var probe struct {
		RunID string          `json:"run_id"`
		Kind  string          `json:"kind"`
		Bench json.RawMessage `json:"bench"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("dispatch: parse %s: %w", path, err)
	}
	if probe.RunID == "" && probe.Kind == "" {
		rep, err := schema.DecodeBenchReport(data)
		if err != nil {
			return nil, fmt.Errorf("dispatch: %s: %w", path, err)
		}
		return rep, nil
	}
	res, err := DecodeResult(data)
	if err != nil {
		return nil, fmt.Errorf("dispatch: %s: %w", path, err)
	}
	if res.Bench == nil || len(res.Bench.Results) == 0 {
		return nil, fmt.Errorf("dispatch: archived run %s (%s, state %s) carries no benchmark rows", res.RunID, res.Kind, res.State)
	}
	return res.Bench, nil
}

// ListRuns returns the run IDs archived under resultsDir, sorted.
func ListRuns(resultsDir string) ([]string, error) {
	entries, err := os.ReadDir(resultsDir)
	if err != nil {
		return nil, fmt.Errorf("dispatch: list runs: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() && !strings.HasPrefix(e.Name(), ".") {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// ManifestEntry summarizes one run in the queue manifest.
type ManifestEntry struct {
	RunID    string   `json:"run_id"`
	Name     string   `json:"name"`
	Kind     Kind     `json:"kind"`
	State    RunState `json:"state"`
	Attempts int      `json:"attempts"`
	Error    string   `json:"error,omitempty"`
}

// Manifest is the queue-level summary written when the dispatcher drains.
type Manifest struct {
	SchemaVersion string          `json:"schema_version"`
	Env           Env             `json:"env"`
	Runs          []ManifestEntry `json:"runs"`
}

// WriteManifest archives the manifest under resultsDir.
func WriteManifest(resultsDir string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(resultsDir, manifestFile), append(data, '\n'), 0o644)
}

// LoadManifest reads the queue manifest under resultsDir.
func LoadManifest(resultsDir string) (*Manifest, error) {
	data, err := readFile(filepath.Join(resultsDir, manifestFile))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("dispatch: parse manifest: %w", err)
	}
	if err := schema.Check("dispatch manifest", m.SchemaVersion, specMajor); err != nil {
		return nil, err
	}
	return &m, nil
}
