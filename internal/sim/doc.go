// Package sim is a deterministic discrete-event simulator of one ordered
// data-parallel region of a distributed streaming system, standing in for the
// heterogeneous Xeon cluster the paper evaluates on.
//
// The simulated topology mirrors Section 2: a single-threaded splitter sends
// tuples over N connections into bounded per-connection in-flight buffers
// (modelling the sender-side and receiver-side TCP socket buffers), one
// worker PE per connection drains its buffer with a service time derived from
// the tuple's cost in "integer multiplies" and the PE's host, and an in-order
// merger with bounded per-connection queues releases tuples in strict
// sequence order. Because the buffers are bounded and the splitter has a
// single thread of control, the phenomena the paper's metric depends on —
// back pressure equalizing per-connection throughput (Section 4.3), drafting
// (Section 4.2), and blocking as a rare, late indicator (Section 4.4) —
// emerge from the model rather than being scripted.
//
// When the splitter would block it "elects to block", exactly as the real
// transport does: the time spent waiting accrues to that connection's
// cumulative blocking-time counter, which a controller samples periodically
// and feeds to a pluggable Policy (round-robin, the paper's balancer, an
// oracle schedule, or the Section 4.4 transport-level re-routing mode).
//
// Virtual time is scaled so that one "integer multiply" defaults to 1µs
// rather than the sub-nanosecond cost of real hardware; every quantity the
// experiments compare is relative (normalized execution times, throughput
// ratios, weight trajectories), so the scaling preserves the shapes of the
// paper's figures while keeping event counts tractable on one CPU.
package sim
