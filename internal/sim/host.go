package sim

import (
	"fmt"
	"sort"
	"time"
)

// HostSpec describes one compute node. The paper's "slow" hosts are
// 2x Intel Xeon X5365 (8 cores, 3.0 GHz, no SMT); its "fast" hosts are
// 2x Xeon X5687 (8 cores, 2-way SMT, 3.6 GHz), which support 16 hardware
// threads for the integer-multiply workload (Section 6.5).
type HostSpec struct {
	// Name labels the host in reports.
	Name string
	// Cores is the number of physical cores.
	Cores int
	// SMTPerCore is the number of hardware threads per core (1 = no SMT).
	SMTPerCore int
	// ClockFactor scales processing speed relative to the baseline host
	// (1.0 = the paper's 3.0 GHz slow host; 1.2 = its 3.6 GHz fast host).
	ClockFactor float64
}

// ThreadSlots returns the number of PEs the host can run at full speed.
func (h HostSpec) ThreadSlots() int {
	smt := h.SMTPerCore
	if smt < 1 {
		smt = 1
	}
	return h.Cores * smt
}

// SlowHost returns the paper's baseline node: 8 cores at 3.0 GHz, no SMT.
func SlowHost(name string) HostSpec {
	return HostSpec{Name: name, Cores: 8, SMTPerCore: 1, ClockFactor: 1.0}
}

// FastHost returns the paper's fast node: 8 cores, 2-way SMT, 3.6 GHz.
func FastHost(name string) HostSpec {
	return HostSpec{Name: name, Cores: 8, SMTPerCore: 2, ClockFactor: 1.2}
}

// LoadPhase is one segment of a PE's external-load schedule: from From
// onward the PE's tuples cost Multiplier times the base cost. The paper's
// dynamic experiments start PEs at 10x or 100x and drop them to 1x an eighth
// of the way through the run (Section 6.3, 6.4).
type LoadPhase struct {
	From       time.Duration
	Multiplier float64
}

// LoadSchedule is a piecewise-constant cost multiplier over virtual time.
// The zero value means a constant multiplier of 1.
type LoadSchedule struct {
	phases []LoadPhase
}

// ConstantLoad returns a schedule fixed at the given multiplier.
func ConstantLoad(multiplier float64) LoadSchedule {
	return LoadSchedule{phases: []LoadPhase{{From: 0, Multiplier: multiplier}}}
}

// StepLoad returns a schedule that starts at initial and becomes final at the
// given switch time — the paper's "load removed an eighth through" pattern.
func StepLoad(initial, final float64, at time.Duration) LoadSchedule {
	return LoadSchedule{phases: []LoadPhase{
		{From: 0, Multiplier: initial},
		{From: at, Multiplier: final},
	}}
}

// NewLoadSchedule builds a schedule from arbitrary phases; they are sorted by
// start time. An empty phase list means a constant multiplier of 1.
func NewLoadSchedule(phases []LoadPhase) LoadSchedule {
	sorted := make([]LoadPhase, len(phases))
	copy(sorted, phases)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].From < sorted[j].From })
	return LoadSchedule{phases: sorted}
}

// At returns the multiplier in force at virtual time t (1 if unspecified).
func (s LoadSchedule) At(t time.Duration) float64 {
	mult := 1.0
	for _, p := range s.phases {
		if p.From > t {
			break
		}
		mult = p.Multiplier
	}
	if mult <= 0 {
		mult = 1
	}
	return mult
}

// PESpec places one worker PE on a host and gives it an external-load
// schedule.
type PESpec struct {
	// Host indexes into Config.Hosts.
	Host int
	// Load is the external-load multiplier schedule (zero value = 1x).
	Load LoadSchedule
}

// validateTopology checks host references and returns the per-host PE counts.
func validateTopology(hosts []HostSpec, pes []PESpec) ([]int, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("sim: no hosts")
	}
	if len(pes) == 0 {
		return nil, fmt.Errorf("sim: no PEs")
	}
	counts := make([]int, len(hosts))
	for i, pe := range pes {
		if pe.Host < 0 || pe.Host >= len(hosts) {
			return nil, fmt.Errorf("sim: PE %d references host %d of %d", i, pe.Host, len(hosts))
		}
		counts[pe.Host]++
	}
	for i, h := range hosts {
		if h.Cores <= 0 {
			return nil, fmt.Errorf("sim: host %d (%s) has %d cores", i, h.Name, h.Cores)
		}
		if h.ClockFactor <= 0 {
			return nil, fmt.Errorf("sim: host %d (%s) has clock factor %v", i, h.Name, h.ClockFactor)
		}
	}
	return counts, nil
}
