package sim

import (
	"fmt"
	"sort"
	"time"

	"streambalance/internal/core"
)

// Policy decides allocation weights from periodically sampled per-connection
// blocking rates. Implementations receive one callback per collection
// interval and return either a fresh weight vector (in units summing to the
// configured total) or nil to leave the current weights unchanged.
type Policy interface {
	// Name labels the policy in experiment reports.
	Name() string
	// OnSample consumes this interval's snapshot — most importantly the
	// per-connection blocking rates (seconds blocked per second) — and may
	// return new weights.
	OnSample(sn Snapshot) []int
}

// RoundRobin is the paper's RR baseline: a fixed even split, never adjusted.
type RoundRobin struct{}

var _ Policy = RoundRobin{}

// Name implements Policy.
func (RoundRobin) Name() string { return "RR" }

// OnSample implements Policy; it never changes the weights.
func (RoundRobin) OnSample(Snapshot) []int { return nil }

// ZeroTrustMode selects how a BalancerPolicy treats zero-blocking intervals;
// see OnSample. The default, ZeroTrustScaled, is the repository's calibrated
// choice (DESIGN.md section 4b); the other modes exist for the ablation
// experiments that justify it.
type ZeroTrustMode int

const (
	// ZeroTrustScaled folds zeros in with trust 1 - (blocked fraction of
	// the interval): a zero means spare capacity only to the extent the
	// splitter was actually offering tuples.
	ZeroTrustScaled ZeroTrustMode = iota
	// ZeroTrustNone ignores zero intervals entirely (the strictest reading
	// of Section 5.1's "only a single new data value").
	ZeroTrustNone
	// ZeroTrustFull folds every zero in at full trust, as if drafting did
	// not exist.
	ZeroTrustFull
)

// BalancerPolicy adapts core.Balancer to the simulator: LB-static when the
// balancer's decay is disabled, LB-adaptive when enabled.
type BalancerPolicy struct {
	balancer  *Balancer
	label     string
	zeroTrust ZeroTrustMode
	err       error
}

// Balancer aliases core.Balancer so harness code can stay within sim's
// vocabulary when constructing policies.
type Balancer = core.Balancer

// NewBalancerPolicy wraps a balancer. label is usually "LB-static" or
// "LB-adaptive"; an empty label derives one from the balancer's decay mode.
func NewBalancerPolicy(b *core.Balancer, label string) *BalancerPolicy {
	if label == "" {
		label = "LB"
	}
	return &BalancerPolicy{balancer: b, label: label}
}

var _ Policy = (*BalancerPolicy)(nil)

// Name implements Policy.
func (p *BalancerPolicy) Name() string { return p.label }

// Balancer returns the wrapped model, e.g. for cluster heat maps.
func (p *BalancerPolicy) Balancer() *core.Balancer { return p.balancer }

// SetZeroTrustMode overrides how zero-blocking intervals are folded in.
// Call before the run starts.
func (p *BalancerPolicy) SetZeroTrustMode(mode ZeroTrustMode) {
	p.zeroTrust = mode
}

// Err returns the first error the balancer reported, if any. The simulator's
// controller cannot fail a run mid-flight, so errors are surfaced here and
// checked by the harness after the run.
func (p *BalancerPolicy) Err() error { return p.err }

// OnSample implements Policy: it feeds the model and rebalances. Connections
// that experienced blocking contribute full-trust samples — usually just one
// per interval, as the paper observes (Section 5.1). A zero from a quiet
// connection is only evidence of spare capacity to the extent the splitter
// was actually offering it tuples: while the splitter sat blocked on a draft
// leader, the other connections were shielded (Section 4.2), so their zeros
// are folded in with trust equal to the fraction of the interval the
// splitter was not blocked anywhere.
func (p *BalancerPolicy) OnSample(sn Snapshot) []int {
	if p.err != nil {
		return nil
	}
	blockedFraction := 0.0
	for _, r := range sn.BlockingRates {
		blockedFraction += r
	}
	if blockedFraction > 1 {
		blockedFraction = 1
	}
	zeroTrust := 1 - blockedFraction
	for j, r := range sn.BlockingRates {
		trust := 1.0
		if r <= 0 {
			switch p.zeroTrust {
			case ZeroTrustNone:
				continue
			case ZeroTrustFull:
				trust = 1
			default:
				trust = zeroTrust
				if trust < 0.01 {
					continue
				}
			}
		}
		if err := p.balancer.ObserveWeighted(j, r, trust); err != nil {
			p.err = fmt.Errorf("observe conn %d at %v: %w", j, sn.Now, err)
			return nil
		}
	}
	weights, err := p.balancer.Rebalance()
	if err != nil {
		p.err = fmt.Errorf("rebalance at %v: %w", sn.Now, err)
		return nil
	}
	return weights
}

// WeightPhase is one segment of an oracle schedule: the splitter uses
// Weights from virtual time From onward, or — when FromTuples is nonzero —
// from the moment that many tuples have been released, matching a load
// switch defined in work rather than time.
type WeightPhase struct {
	From       time.Duration
	FromTuples uint64
	Weights    []int
}

// OracleSchedule is the paper's Oracle* baseline: the best static
// distribution for each load phase, derived offline, switched exactly when
// the load changes. As the paper notes, switching exactly at the load change
// is actually slightly too early — tuples already queued still carry the old
// cost — which is why Oracle* can be beaten by LB-adaptive (Section 6.3).
type OracleSchedule struct {
	phases []WeightPhase
	label  string
}

var _ Policy = (*OracleSchedule)(nil)

// NewOracleSchedule builds an oracle policy from weight phases (sorted by
// start time).
func NewOracleSchedule(phases []WeightPhase, label string) *OracleSchedule {
	if label == "" {
		label = "Oracle*"
	}
	sorted := make([]WeightPhase, len(phases))
	copy(sorted, phases)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].From < sorted[j].From })
	return &OracleSchedule{phases: sorted, label: label}
}

// Name implements Policy.
func (o *OracleSchedule) Name() string { return o.label }

// OnSample implements Policy: it returns the weights of the latest phase
// whose trigger (time or completed tuples) has been reached.
func (o *OracleSchedule) OnSample(sn Snapshot) []int {
	var current []int
	for _, p := range o.phases {
		if p.FromTuples > 0 {
			if sn.Completed >= p.FromTuples {
				current = p.Weights
			}
			continue
		}
		if p.From > sn.Now {
			break
		}
		current = p.Weights
	}
	return current
}
