package sim

import (
	"testing"
	"time"
)

func TestHostSpecThreadSlots(t *testing.T) {
	tests := []struct {
		name string
		host HostSpec
		want int
	}{
		{"slow host", SlowHost("s"), 8},
		{"fast host", FastHost("f"), 16},
		{"smt zero treated as 1", HostSpec{Cores: 4}, 4},
		{"explicit smt", HostSpec{Cores: 2, SMTPerCore: 4}, 8},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.host.ThreadSlots(); got != tt.want {
				t.Fatalf("ThreadSlots = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestHostPresets(t *testing.T) {
	slow, fast := SlowHost("s"), FastHost("f")
	if fast.ClockFactor <= slow.ClockFactor {
		t.Fatalf("fast clock %v should exceed slow clock %v", fast.ClockFactor, slow.ClockFactor)
	}
	if slow.SMTPerCore != 1 || fast.SMTPerCore != 2 {
		t.Fatalf("SMT: slow=%d fast=%d, want 1 and 2", slow.SMTPerCore, fast.SMTPerCore)
	}
}

func TestLoadScheduleAt(t *testing.T) {
	tests := []struct {
		name string
		s    LoadSchedule
		at   time.Duration
		want float64
	}{
		{"zero value", LoadSchedule{}, time.Hour, 1},
		{"constant", ConstantLoad(10), 5 * time.Second, 10},
		{"step before switch", StepLoad(100, 1, 10*time.Second), 9 * time.Second, 100},
		{"step at switch", StepLoad(100, 1, 10*time.Second), 10 * time.Second, 1},
		{"step after switch", StepLoad(100, 1, 10*time.Second), time.Minute, 1},
		{"non-positive multiplier defaults to 1", ConstantLoad(-5), 0, 1},
		{
			"unsorted phases sorted by NewLoadSchedule",
			NewLoadSchedule([]LoadPhase{
				{From: 20 * time.Second, Multiplier: 3},
				{From: 0, Multiplier: 7},
			}),
			5 * time.Second,
			7,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.s.At(tt.at); got != tt.want {
				t.Fatalf("At(%v) = %v, want %v", tt.at, got, tt.want)
			}
		})
	}
}

func TestValidateTopology(t *testing.T) {
	hosts := []HostSpec{SlowHost("a"), FastHost("b")}
	tests := []struct {
		name    string
		hosts   []HostSpec
		pes     []PESpec
		wantErr bool
	}{
		{"valid", hosts, []PESpec{{Host: 0}, {Host: 1}, {Host: 1}}, false},
		{"no hosts", nil, []PESpec{{Host: 0}}, true},
		{"no pes", hosts, nil, true},
		{"bad host index", hosts, []PESpec{{Host: 2}}, true},
		{"negative host index", hosts, []PESpec{{Host: -1}}, true},
		{"zero cores", []HostSpec{{Name: "x", ClockFactor: 1}}, []PESpec{{Host: 0}}, true},
		{"zero clock", []HostSpec{{Name: "x", Cores: 2}}, []PESpec{{Host: 0}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			counts, err := validateTopology(tt.hosts, tt.pes)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tt.wantErr)
			}
			if err == nil && counts[1] != 2 {
				t.Fatalf("counts = %v, want host 1 to hold 2 PEs", counts)
			}
		})
	}
}
