package sim

import (
	"time"
)

// eventKind discriminates the simulator's event types.
type eventKind int

const (
	// evSplitterSend: the splitter attempts to send its next tuple.
	evSplitterSend eventKind = iota + 1
	// evWorkerFinish: worker conn finishes processing its current tuple.
	evWorkerFinish
	// evController: the controller samples blocking counters and runs the
	// balancing policy.
	evController
)

// event is one scheduled simulator event. order breaks time ties in FIFO
// scheduling order, keeping runs fully deterministic.
type event struct {
	at    time.Duration
	order uint64
	kind  eventKind
	conn  int
}

// eventQueue is a min-heap of events by (at, order). The heap is hand-rolled
// rather than built on container/heap because the latter's any-typed
// Push/Pop boxes every event — at millions of events per simulated run, that
// boxing dominated the whole benchmark's allocation profile.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].order < q[j].order
}

func (q *eventQueue) push(e event) {
	*q = append(*q, e)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	h := *q
	n := len(h) - 1
	top := h[0]
	h[0] = h[n]
	h = h[:n]
	*q = h
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && h.less(right, left) {
			child = right
		}
		if !h.less(child, i) {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
	return top
}

// scheduler wraps the heap with an insertion counter.
type scheduler struct {
	q     eventQueue
	order uint64
}

func (s *scheduler) schedule(at time.Duration, kind eventKind, conn int) {
	s.order++
	s.q.push(event{at: at, order: s.order, kind: kind, conn: conn})
}

func (s *scheduler) next() (event, bool) {
	if len(s.q) == 0 {
		return event{}, false
	}
	return s.q.pop(), true
}

func (s *scheduler) empty() bool {
	return len(s.q) == 0
}
