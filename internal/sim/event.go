package sim

import (
	"container/heap"
	"time"
)

// eventKind discriminates the simulator's event types.
type eventKind int

const (
	// evSplitterSend: the splitter attempts to send its next tuple.
	evSplitterSend eventKind = iota + 1
	// evWorkerFinish: worker conn finishes processing its current tuple.
	evWorkerFinish
	// evController: the controller samples blocking counters and runs the
	// balancing policy.
	evController
)

// event is one scheduled simulator event. order breaks time ties in FIFO
// scheduling order, keeping runs fully deterministic.
type event struct {
	at    time.Duration
	order uint64
	kind  eventKind
	conn  int
}

// eventQueue is a min-heap of events by (at, order).
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].order < q[j].order
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// scheduler wraps the heap with an insertion counter.
type scheduler struct {
	q     eventQueue
	order uint64
}

func (s *scheduler) schedule(at time.Duration, kind eventKind, conn int) {
	s.order++
	heap.Push(&s.q, event{at: at, order: s.order, kind: kind, conn: conn})
}

func (s *scheduler) next() (event, bool) {
	if len(s.q) == 0 {
		return event{}, false
	}
	return heap.Pop(&s.q).(event), true
}

func (s *scheduler) empty() bool {
	return len(s.q) == 0
}
