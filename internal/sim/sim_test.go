package sim

import (
	"reflect"
	"testing"
	"time"

	"streambalance/internal/core"
)

// oneHost places n PEs on a single slow host.
func oneHost(n int, loads ...LoadSchedule) ([]HostSpec, []PESpec) {
	hosts := []HostSpec{SlowHost("host0")}
	pes := make([]PESpec, n)
	for j := range pes {
		pes[j] = PESpec{Host: 0}
		if j < len(loads) {
			pes[j].Load = loads[j]
		}
	}
	return hosts, pes
}

func TestNewValidation(t *testing.T) {
	hosts, pes := oneHost(2)
	tests := []struct {
		name string
		cfg  Config
	}{
		{"empty", Config{}},
		{"no stop condition", Config{Hosts: hosts, PEs: pes, BaseCost: 100}},
		{"zero base cost", Config{Hosts: hosts, PEs: pes, Duration: time.Second}},
		{"bad host ref", Config{Hosts: hosts, PEs: []PESpec{{Host: 9}}, BaseCost: 100, Duration: time.Second}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestRunConservesAndOrdersTuples(t *testing.T) {
	hosts, pes := oneHost(3, ConstantLoad(4)) // one slow conn exercises reordering
	var released []uint64
	s, err := New(Config{
		Hosts: hosts, PEs: pes, BaseCost: 1000,
		TotalTuples:    5000,
		SampleInterval: 100 * time.Millisecond,
		Sink:           func(seq uint64, conn int) { released = append(released, seq) },
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Sent != 5000 || m.Completed != 5000 {
		t.Fatalf("sent=%d completed=%d, want 5000 each", m.Sent, m.Completed)
	}
	var sentSum, doneSum uint64
	for j := range m.PerConnSent {
		sentSum += m.PerConnSent[j]
		doneSum += m.PerConnCompleted[j]
	}
	if sentSum != 5000 || doneSum != 5000 {
		t.Fatalf("per-conn sums: sent=%d done=%d, want 5000", sentSum, doneSum)
	}
	if len(released) != 5000 {
		t.Fatalf("sink saw %d tuples, want 5000", len(released))
	}
	// Sequential semantics: tuples exit in exactly the order they entered.
	for i, seq := range released {
		if seq != uint64(i) {
			t.Fatalf("release %d has seq %d: order violated", i, seq)
		}
	}
	if m.EndTime <= 0 {
		t.Fatal("EndTime not recorded")
	}
}

func TestEqualPerConnectionThroughput(t *testing.T) {
	// Section 4.3: under round-robin, per-connection throughput is equal
	// even when one connection is 10x slower, because of the ordered merge.
	hosts, pes := oneHost(3, ConstantLoad(10))
	s, err := New(Config{Hosts: hosts, PEs: pes, BaseCost: 1000, Duration: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	base := m.PerConnCompleted[0]
	if base == 0 {
		t.Fatal("no tuples completed")
	}
	for j, c := range m.PerConnCompleted {
		diff := int64(c) - int64(base)
		if diff < 0 {
			diff = -diff
		}
		// Within 2%: the counts differ only by in-flight skew.
		if float64(diff) > 0.02*float64(base) {
			t.Fatalf("per-conn completed %v: connection %d deviates from %d", m.PerConnCompleted, j, base)
		}
	}
}

func TestBackPressureGatesOnSlowest(t *testing.T) {
	// The steady-state throughput of the pipeline is that of its slowest
	// member times N (Section 4.3). One slow host PE at 10x with base cost
	// 1000 multiplies and 1µs per multiply processes 100 tuples/s, so the
	// 3-connection round-robin region does ~300/s.
	hosts, pes := oneHost(3, ConstantLoad(10))
	s, err := New(Config{Hosts: hosts, PEs: pes, BaseCost: 1000, Duration: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanThroughput < 250 || m.MeanThroughput > 330 {
		t.Fatalf("mean throughput = %.1f, want ~300 (gated by slowest)", m.MeanThroughput)
	}
}

func TestDraftingConcentratesBlocking(t *testing.T) {
	// Section 4.2: with equal capacities, blocking still lands almost
	// entirely on a single draft-leader connection.
	hosts, pes := oneHost(3)
	s, err := New(Config{Hosts: hosts, PEs: pes, BaseCost: 1000, Duration: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var total, max time.Duration
	for _, b := range m.TotalBlocking {
		total += b
		if b > max {
			max = b
		}
	}
	if total == 0 {
		t.Fatal("no blocking recorded in an overloaded region")
	}
	if float64(max) < 0.9*float64(total) {
		t.Fatalf("blocking %v: leader holds %.0f%%, want >= 90%%", m.TotalBlocking, 100*float64(max)/float64(total))
	}
}

func TestBlockingFollowsOverloadedConnection(t *testing.T) {
	// With a genuinely slow connection, the splitter's blocking time must
	// accrue to it, not to a fast one — this is the signal the whole scheme
	// rests on (Section 3).
	hosts, pes := oneHost(3, ConstantLoad(10))
	s, err := New(Config{Hosts: hosts, PEs: pes, BaseCost: 1000, Duration: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalBlocking[0] <= m.TotalBlocking[1] || m.TotalBlocking[0] <= m.TotalBlocking[2] {
		t.Fatalf("blocking %v: slow connection 0 should dominate", m.TotalBlocking)
	}
}

func TestBalancerPolicyBeatsRoundRobin(t *testing.T) {
	// One connection 10x slower: the balancer should reach several times
	// round-robin's throughput (Figure 9 reports 1.5-4x with half the PEs
	// loaded; with one-of-three loaded the gap is larger).
	run := func(policy Policy) Metrics {
		hosts, pes := oneHost(3, ConstantLoad(10))
		s, err := New(Config{Hosts: hosts, PEs: pes, BaseCost: 1000, Duration: 60 * time.Second, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	b, err := core.NewBalancer(core.Config{Connections: 3, DecayEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	pol := NewBalancerPolicy(b, "LB-adaptive")
	lb := run(pol)
	if pol.Err() != nil {
		t.Fatal(pol.Err())
	}
	rr := run(RoundRobin{})
	if lb.FinalThroughput < 2*rr.FinalThroughput {
		t.Fatalf("LB final throughput %.1f < 2x RR %.1f", lb.FinalThroughput, rr.FinalThroughput)
	}
	// The slow connection's weight must end well below even share.
	if lb.FinalWeights[0] > 150 {
		t.Fatalf("final weights %v: slow connection should be throttled", lb.FinalWeights)
	}
}

func TestBalancerConvergesNearCapacityProportional(t *testing.T) {
	hosts, pes := oneHost(3, ConstantLoad(10))
	b, err := core.NewBalancer(core.Config{Connections: 3, DecayEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	pol := NewBalancerPolicy(b, "LB-adaptive")
	s, err := New(Config{Hosts: hosts, PEs: pes, BaseCost: 1000, Duration: 90 * time.Second, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Capacities are 100/1000/1000 tuples/s: proportional weights are
	// ~[48, 476, 476]. Allow a loose band — the draft leader rotates.
	if m.FinalWeights[0] < 20 || m.FinalWeights[0] > 120 {
		t.Fatalf("final weights %v: slow connection far from proportional ~48", m.FinalWeights)
	}
	if m.FinalThroughput < 1500 {
		t.Fatalf("final throughput %.1f, want >= 1500 (oracle ~2084)", m.FinalThroughput)
	}
}

func TestOracleScheduleSwitches(t *testing.T) {
	hosts, pes := oneHost(2)
	var sawEarly, sawLate bool
	oracle := NewOracleSchedule([]WeightPhase{
		{From: 0, Weights: []int{900, 100}},
		{From: 5 * time.Second, Weights: []int{100, 900}},
	}, "")
	s, err := New(Config{
		Hosts: hosts, PEs: pes, BaseCost: 1000,
		Duration: 10 * time.Second,
		Policy:   oracle,
		Observer: func(sn Snapshot) {
			if sn.Now < 5*time.Second && sn.Weights[0] == 900 {
				sawEarly = true
			}
			if sn.Now >= 5*time.Second && sn.Weights[0] == 100 {
				sawLate = true
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawEarly || !sawLate {
		t.Fatalf("oracle phases not applied: early=%v late=%v", sawEarly, sawLate)
	}
	if oracle.Name() != "Oracle*" {
		t.Fatalf("default label = %q, want Oracle*", oracle.Name())
	}
}

func TestRerouteModeDivertsTuples(t *testing.T) {
	// Section 4.4: transport-level re-routing preserves order but is "too
	// little, too late" — by the time a connection blocks, the ordered
	// merge is already gated by its buffered backlog, so re-routing falls
	// far short of what the model-driven balancer achieves on the same
	// scenario (~2000 tuples/s; see TestBalancerConvergesNearCapacityProportional).
	hosts, pes := oneHost(2, ConstantLoad(100))
	var released []uint64
	s, err := New(Config{
		Hosts: hosts, PEs: pes, BaseCost: 1000,
		Duration:       30 * time.Second,
		RerouteOnBlock: true,
		Sink:           func(seq uint64, conn int) { released = append(released, seq) },
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Rerouted == 0 {
		t.Fatal("re-routing mode never rerouted")
	}
	// The fast connection alone could absorb ~1000 tuples/s if re-routing
	// were a real solution; the ordered merge keeps it far below that.
	if m.MeanThroughput > 400 {
		t.Fatalf("reroute throughput %.1f: expected the ordered merge to gate it", m.MeanThroughput)
	}
	// Order must still hold: the merger reorders whatever path tuples took.
	for i, seq := range released {
		if seq != uint64(i) {
			t.Fatalf("release %d has seq %d: order violated under rerouting", i, seq)
		}
	}
}

func TestRerouteFarShortOfBalancer(t *testing.T) {
	// Section 4.4's conclusion: transport-level re-routing improves on
	// round-robin but is "not nearly enough" — the model-driven balancer
	// must deliver a decisively larger improvement on the same scenario.
	run := func(reroute bool, policy Policy) Metrics {
		hosts, pes := oneHost(2, ConstantLoad(100))
		s, err := New(Config{
			Hosts: hosts, PEs: pes, BaseCost: 1000,
			Duration:       300 * time.Second,
			RerouteOnBlock: reroute,
			Policy:         policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	b, err := core.NewBalancer(core.Config{Connections: 2, DecayEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	reroute := run(true, nil)
	balanced := run(false, NewBalancerPolicy(b, "LB"))
	if balanced.MeanThroughput < 2*reroute.MeanThroughput {
		t.Fatalf("LB %.1f vs reroute %.1f: balancer should far exceed re-routing",
			balanced.MeanThroughput, reroute.MeanThroughput)
	}
}

func TestObserverSnapshots(t *testing.T) {
	hosts, pes := oneHost(2)
	var snaps []Snapshot
	s, err := New(Config{
		Hosts: hosts, PEs: pes, BaseCost: 1000,
		Duration:       5 * time.Second,
		SampleInterval: time.Second,
		Observer:       func(sn Snapshot) { snaps = append(snaps, sn) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 5 {
		t.Fatalf("got %d snapshots, want 5", len(snaps))
	}
	for i, sn := range snaps {
		if sn.Now != time.Duration(i+1)*time.Second {
			t.Fatalf("snapshot %d at %v, want %v", i, sn.Now, time.Duration(i+1)*time.Second)
		}
		if len(sn.BlockingRates) != 2 || len(sn.Weights) != 2 {
			t.Fatalf("snapshot %d has wrong widths: %+v", i, sn)
		}
	}
	last := snaps[len(snaps)-1]
	if last.Completed == 0 || last.Throughput == 0 {
		t.Fatalf("final snapshot shows no progress: %+v", last)
	}
}

func TestHeterogeneousHostsFavored(t *testing.T) {
	// One PE on a fast host, one on a slow host (Section 6.5): the
	// balancer should give the fast connection more weight.
	hosts := []HostSpec{FastHost("fast"), SlowHost("slow")}
	pes := []PESpec{{Host: 0}, {Host: 1}}
	b, err := core.NewBalancer(core.Config{Connections: 2, DecayEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	pol := NewBalancerPolicy(b, "LB-adaptive")
	s, err := New(Config{Hosts: hosts, PEs: pes, BaseCost: 20000, Duration: 90 * time.Second, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if pol.Err() != nil {
		t.Fatal(pol.Err())
	}
	if m.FinalWeights[0] <= m.FinalWeights[1] {
		t.Fatalf("final weights %v: fast host should receive more", m.FinalWeights)
	}
}

func TestOversubscriptionSlowsHost(t *testing.T) {
	// 16 PEs on a slow host (8 slots) must process each tuple 2x slower.
	hosts := []HostSpec{SlowHost("slow")}
	run := func(n int) float64 {
		pes := make([]PESpec, n)
		for j := range pes {
			pes[j] = PESpec{Host: 0}
		}
		s, err := New(Config{Hosts: hosts, PEs: pes, BaseCost: 1000, Duration: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m.MeanThroughput
	}
	eight := run(8)
	sixteen := run(16)
	// 16 oversubscribed PEs have the same aggregate capacity as 8: each
	// runs at half speed. Throughput should be roughly equal, not double.
	if sixteen > 1.2*eight {
		t.Fatalf("throughput 8 PEs = %.0f, 16 PEs = %.0f: oversubscription not modelled", eight, sixteen)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Metrics {
		hosts, pes := oneHost(4, ConstantLoad(3), ConstantLoad(1), ConstantLoad(7))
		b, err := core.NewBalancer(core.Config{Connections: 4, DecayEnabled: true})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{
			Hosts: hosts, PEs: pes, BaseCost: 1000,
			Duration: 20 * time.Second,
			Policy:   NewBalancerPolicy(b, "LB"),
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestDynamicLoadRemoval(t *testing.T) {
	// The paper's dynamic pattern: 100x load removed partway through. The
	// adaptive balancer's final throughput must far exceed its throughput
	// while loaded, and the final weights should return toward even.
	hosts, pes := oneHost(2, StepLoad(100, 1, 20*time.Second))
	b, err := core.NewBalancer(core.Config{Connections: 2, DecayEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	pol := NewBalancerPolicy(b, "LB-adaptive")
	var loadedTput float64
	s, err := New(Config{
		Hosts: hosts, PEs: pes, BaseCost: 1000,
		Duration: 160 * time.Second,
		Policy:   pol,
		Observer: func(sn Snapshot) {
			if sn.Now == 19*time.Second {
				loadedTput = sn.Throughput
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if pol.Err() != nil {
		t.Fatal(pol.Err())
	}
	if m.FinalThroughput < 2*loadedTput {
		t.Fatalf("final throughput %.1f vs loaded %.1f: no adaptation visible", m.FinalThroughput, loadedTput)
	}
	if m.FinalWeights[0] < 250 {
		t.Fatalf("final weights %v: loaded connection did not recover toward even", m.FinalWeights)
	}
}

func TestSourceRateThrottlesSplitter(t *testing.T) {
	// A 100-tuple/s source on an otherwise idle region: throughput must
	// track the source, not the workers, and nothing should block.
	hosts, pes := oneHost(2)
	rate := ConstantLoad(100)
	s, err := New(Config{
		Hosts: hosts, PEs: pes, BaseCost: 1000,
		Duration:   20 * time.Second,
		SourceRate: &rate,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.MeanThroughput < 80 || m.MeanThroughput > 110 {
		t.Fatalf("mean throughput %.1f, want ~100 (source-limited)", m.MeanThroughput)
	}
	for j, b := range m.TotalBlocking {
		if b > time.Second {
			t.Fatalf("connection %d blocked %v under an under-subscribed source", j, b)
		}
	}
	// Latency must be tiny: queues never build.
	if m.LatencyP99 > 50*time.Millisecond {
		t.Fatalf("p99 latency %v, want small with empty queues", m.LatencyP99)
	}
}

func TestLatencyMetricsPopulated(t *testing.T) {
	hosts, pes := oneHost(2, ConstantLoad(10))
	s, err := New(Config{Hosts: hosts, PEs: pes, BaseCost: 1000, Duration: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.LatencyP50 <= 0 || m.LatencyP99 < m.LatencyP50 || m.LatencyMax < m.LatencyP99 {
		t.Fatalf("latency stats inconsistent: p50=%v p99=%v max=%v",
			m.LatencyP50, m.LatencyP99, m.LatencyMax)
	}
}

func TestServiceJitterValidation(t *testing.T) {
	hosts, pes := oneHost(2)
	for _, jitter := range []float64{-0.1, 1.0, 2.5} {
		if _, err := New(Config{Hosts: hosts, PEs: pes, BaseCost: 100, Duration: time.Second, ServiceJitter: jitter}); err == nil {
			t.Fatalf("jitter %v accepted", jitter)
		}
	}
}

func TestBalancerRobustToServiceJitter(t *testing.T) {
	// 20% service-time noise: the balancer must still find the imbalance
	// and deliver several times round-robin's throughput.
	run := func(policy Policy) Metrics {
		hosts, pes := oneHost(3, ConstantLoad(10))
		s, err := New(Config{
			Hosts: hosts, PEs: pes, BaseCost: 1000,
			Duration:      90 * time.Second,
			ServiceJitter: 0.2,
			Seed:          7,
			Policy:        policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	b, err := core.NewBalancer(core.Config{Connections: 3, DecayEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	pol := NewBalancerPolicy(b, "LB")
	lb := run(pol)
	if pol.Err() != nil {
		t.Fatal(pol.Err())
	}
	rr := run(RoundRobin{})
	if lb.FinalThroughput < 3*rr.FinalThroughput {
		t.Fatalf("LB %.1f vs RR %.1f under jitter: balancer degraded", lb.FinalThroughput, rr.FinalThroughput)
	}
	if lb.FinalWeights[0] > 150 {
		t.Fatalf("final weights %v under jitter: slow connection not throttled", lb.FinalWeights)
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) Metrics {
		hosts, pes := oneHost(2, ConstantLoad(5))
		s, err := New(Config{
			Hosts: hosts, PEs: pes, BaseCost: 1000,
			Duration: 10 * time.Second, ServiceJitter: 0.3, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(3), run(3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different runs")
	}
	c := run(4)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical runs (jitter inert?)")
	}
}

// TestStallMetricsObserveStraggler checks the virtual-time stall
// observability: a connection whose tuples suddenly cost 200x gates the
// ordered merge long enough to raise stall alarms and stretch the max
// release gap, while a balanced run under the same window raises none.
func TestStallMetricsObserveStraggler(t *testing.T) {
	const window = 50 * time.Millisecond

	hosts, pes := oneHost(3)
	clean, err := New(Config{
		Hosts: hosts, PEs: pes, BaseCost: 1000,
		TotalTuples:    3000,
		SampleInterval: 100 * time.Millisecond,
		StallWindow:    window,
	})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := clean.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cm.StallAlarms != 0 {
		t.Fatalf("balanced run raised %d stall alarms", cm.StallAlarms)
	}
	if cm.MaxReleaseGap >= window {
		t.Fatalf("balanced run's max release gap %v reached the window %v", cm.MaxReleaseGap, window)
	}

	hosts, pes = oneHost(3, StepLoad(1, 200, 500*time.Millisecond))
	stalled, err := New(Config{
		Hosts: hosts, PEs: pes, BaseCost: 1000,
		TotalTuples:    3000,
		SampleInterval: 100 * time.Millisecond,
		StallWindow:    window,
	})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := stalled.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sm.StallAlarms == 0 {
		t.Fatal("straggling connection raised no stall alarms")
	}
	if sm.MaxReleaseGap < window {
		t.Fatalf("straggler max release gap %v below the window %v", sm.MaxReleaseGap, window)
	}
	if sm.Completed != 3000 {
		t.Fatalf("completed %d of 3000", sm.Completed)
	}
}
