package sim

import (
	"testing"
	"time"

	"streambalance/internal/core"
)

func TestRoundRobinPolicy(t *testing.T) {
	var rr RoundRobin
	if rr.Name() != "RR" {
		t.Fatalf("Name = %q, want RR", rr.Name())
	}
	if got := rr.OnSample(Snapshot{BlockingRates: []float64{1, 0}}); got != nil {
		t.Fatalf("RR returned weights %v, want nil", got)
	}
}

func TestBalancerPolicyZeroTrustModes(t *testing.T) {
	// One connection fully blocked; the others silent. The modes differ in
	// whether the silent connections accumulate data.
	sample := Snapshot{
		Now:           time.Second,
		BlockingRates: []float64{1.0, 0, 0},
	}
	tests := []struct {
		name        string
		mode        ZeroTrustMode
		wantSamples bool // whether silent connections get any data
	}{
		{"scaled drops zeros under full blocking", ZeroTrustScaled, false},
		{"none drops zeros always", ZeroTrustNone, false},
		{"full records zeros always", ZeroTrustFull, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b, err := core.NewBalancer(core.Config{Connections: 3})
			if err != nil {
				t.Fatal(err)
			}
			pol := NewBalancerPolicy(b, "LB")
			pol.SetZeroTrustMode(tt.mode)
			if weights := pol.OnSample(sample); weights == nil {
				t.Fatal("policy returned no weights")
			}
			if err := pol.Err(); err != nil {
				t.Fatal(err)
			}
			if got := b.Func(1).SampleCount() > 0; got != tt.wantSamples {
				t.Fatalf("silent connection has data = %v, want %v", got, tt.wantSamples)
			}
			// The blocked connection always receives its sample.
			if b.Func(0).SampleCount() == 0 {
				t.Fatal("blocked connection received no data")
			}
		})
	}
}

func TestBalancerPolicyScaledTrustPartialBlocking(t *testing.T) {
	// Splitter blocked 40% of the interval: zeros carry trust 0.6.
	b, err := core.NewBalancer(core.Config{Connections: 2})
	if err != nil {
		t.Fatal(err)
	}
	pol := NewBalancerPolicy(b, "LB")
	pol.OnSample(Snapshot{Now: time.Second, BlockingRates: []float64{0.4, 0}})
	if err := pol.Err(); err != nil {
		t.Fatal(err)
	}
	got := b.Func(1).SampleCount()
	if got <= 0.5 || got >= 0.7 {
		t.Fatalf("silent connection trust = %v, want ~0.6", got)
	}
}

func TestBalancerPolicyName(t *testing.T) {
	b, err := core.NewBalancer(core.Config{Connections: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := NewBalancerPolicy(b, "").Name(); got != "LB" {
		t.Fatalf("default label = %q, want LB", got)
	}
	if got := NewBalancerPolicy(b, "LB-static").Name(); got != "LB-static" {
		t.Fatalf("label = %q, want LB-static", got)
	}
}

func TestOracleScheduleFromTuples(t *testing.T) {
	oracle := NewOracleSchedule([]WeightPhase{
		{From: 0, Weights: []int{900, 100}},
		{FromTuples: 500, Weights: []int{100, 900}},
	}, "")
	early := oracle.OnSample(Snapshot{Now: time.Minute, Completed: 499})
	if early[0] != 900 {
		t.Fatalf("weights before tuple trigger = %v, want [900 100]", early)
	}
	late := oracle.OnSample(Snapshot{Now: time.Second, Completed: 500})
	if late[0] != 100 {
		t.Fatalf("weights after tuple trigger = %v, want [100 900]", late)
	}
}

func TestPostSwitchLoadsValidation(t *testing.T) {
	hosts, pes := oneHost(3)
	_, err := New(Config{
		Hosts: hosts, PEs: pes, BaseCost: 100, Duration: time.Second,
		PostSwitchLoads: make([]LoadSchedule, 2), // wrong length
	})
	if err == nil {
		t.Fatal("mismatched PostSwitchLoads accepted")
	}
}

func TestPostSwitchLoadsTrigger(t *testing.T) {
	// One PE at 100x until 200 tuples complete, then unloaded: the run's
	// later throughput must far exceed its early throughput.
	hosts, pes := oneHost(2, ConstantLoad(100))
	post := make([]LoadSchedule, 2)
	var early, late float64
	s, err := New(Config{
		Hosts: hosts, PEs: pes, BaseCost: 1000,
		Duration:              120 * time.Second,
		PostSwitchLoads:       post,
		LoadSwitchAfterTuples: 200,
		Observer: func(sn Snapshot) {
			if sn.Now == 5*time.Second {
				early = float64(sn.Completed)
			}
			if sn.Now == 120*time.Second {
				late = float64(sn.Completed)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed == 0 || late <= early {
		t.Fatalf("no progress: early=%v late=%v", early, late)
	}
	// Post-switch both PEs are unloaded: round-robin reaches ~2000/s, so
	// the mean must be far above the loaded-phase ~20/s.
	if m.MeanThroughput < 200 {
		t.Fatalf("mean throughput %.1f: load switch apparently never fired", m.MeanThroughput)
	}
}
