package sim

import (
	"fmt"
	"math/rand"
	"time"

	"streambalance/internal/core"
	"streambalance/internal/quantile"
	"streambalance/internal/schedule"
	"streambalance/internal/stats"
)

// pendingTuple records where an in-flight tuple went and when it was sent.
type pendingTuple struct {
	conn   int
	sentAt time.Duration
}

// workerState tracks one worker PE's processing status.
type workerState int

const (
	workerIdle workerState = iota + 1
	workerBusy
	workerBlockedOnMerger
)

// Sim is one instantiated run. Construct with New, execute with Run.
type Sim struct {
	cfg   Config
	hosts []HostSpec
	// oversub[j] is the static oversubscription slowdown of connection j's
	// host: max(1, PEs on host / thread slots).
	oversub []float64

	clock time.Duration
	sched scheduler
	wrr   *schedule.WRR

	// Splitter state.
	nextSeq        uint64 // next sequence number to send
	splitterDone   bool   // all TotalTuples sent
	splitterBlock  bool   // splitter is blocked
	blockedOn      int    // connection the splitter is blocked on
	blockStart     time.Duration
	pendingConn    int // connection chosen for the tuple being blocked on
	inflight       []*seqQueue
	cumBlocking    []time.Duration // sampled counter, periodically reset
	totalBlocking  []time.Duration // lifetime counter
	lastReset      time.Duration
	rerouted       uint64
	perConnSent    []uint64
	perConnDone    []uint64
	totalSent      uint64
	totalCompleted uint64
	mergeSweeps    uint64

	// Worker state.
	state      []workerState
	processing []uint64 // seq being processed (valid when busy)
	held       []uint64 // seq held while blocked on the merger

	// Merger state.
	mergerQ    []*seqQueue
	releaseSeq uint64 // next sequence number to release downstream
	// Release-gap tracking for the stall observability metrics: all
	// releases inside one drain share a clock instant, so only the first
	// release after a pause records a gap.
	lastReleaseAt time.Duration
	maxReleaseGap time.Duration
	stallAlarms   uint64
	// owner tracks each in-flight tuple's connection and send time, for the
	// release frontier and the end-to-end latency metric.
	owner        map[uint64]pendingTuple
	latency      *quantile.Tracker
	samplers     []stats.RateSampler
	lastSampled  uint64 // completed count at previous controller tick
	lastSampleAt time.Duration

	// Throughput history for the final-throughput metric: one entry per
	// controller tick.
	tputHistory []float64

	weights      []int
	jitter       *rand.Rand
	loadSwitched bool
	switchedAt   time.Duration
	ended        bool
	endAt        time.Duration
}

// New validates the config and builds a ready-to-run simulation.
func New(cfg Config) (*Sim, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	counts, err := validateTopology(cfg.Hosts, cfg.PEs)
	if err != nil {
		return nil, err
	}
	n := len(cfg.PEs)
	wrr, err := schedule.NewWRR(n)
	if err != nil {
		return nil, err
	}
	s := &Sim{
		cfg:           cfg,
		hosts:         cfg.Hosts,
		oversub:       make([]float64, n),
		wrr:           wrr,
		inflight:      make([]*seqQueue, n),
		cumBlocking:   make([]time.Duration, n),
		totalBlocking: make([]time.Duration, n),
		perConnSent:   make([]uint64, n),
		perConnDone:   make([]uint64, n),
		state:         make([]workerState, n),
		processing:    make([]uint64, n),
		held:          make([]uint64, n),
		mergerQ:       make([]*seqQueue, n),
		owner:         make(map[uint64]pendingTuple),
		latency:       quantile.NewTracker(),
		samplers:      make([]stats.RateSampler, n),
		weights:       core.EvenWeights(n, core.DefaultUnits),
	}
	for j := 0; j < n; j++ {
		s.inflight[j] = newSeqQueue(cfg.InflightCap)
		s.mergerQ[j] = newSeqQueue(cfg.MergerCap)
		s.state[j] = workerIdle
		host := cfg.Hosts[cfg.PEs[j].Host]
		slots := host.ThreadSlots()
		factor := 1.0
		if counts[cfg.PEs[j].Host] > slots {
			factor = float64(counts[cfg.PEs[j].Host]) / float64(slots)
		}
		s.oversub[j] = factor
	}
	if cfg.ServiceJitter > 0 {
		seed := cfg.Seed
		if seed == 0 {
			seed = 1
		}
		s.jitter = rand.New(rand.NewSource(seed))
	}
	if err := s.wrr.SetWeights(s.weights); err != nil {
		return nil, err
	}
	return s, nil
}

// Connections returns the region fan-out.
func (s *Sim) Connections() int {
	return len(s.cfg.PEs)
}

// serviceTime computes how long connection j's worker needs for one tuple
// started at virtual time t.
func (s *Sim) serviceTime(j int, t time.Duration) time.Duration {
	pe := s.cfg.PEs[j]
	host := s.hosts[pe.Host]
	var mult float64
	if s.cfg.PostSwitchLoads != nil {
		// Work-triggered schedules: the pre-switch load applies until the
		// switch, the post-switch schedule (evaluated relative to the
		// switch instant) afterwards.
		if s.loadSwitched {
			mult = s.cfg.PostSwitchLoads[j].At(t - s.switchedAt)
		} else {
			mult = pe.Load.At(t)
		}
	} else {
		mult = pe.Load.At(t)
	}
	cost := float64(s.cfg.BaseCost) * mult * s.oversub[j] / host.ClockFactor
	if s.jitter != nil {
		cost *= 1 + s.cfg.ServiceJitter*(2*s.jitter.Float64()-1)
	}
	d := time.Duration(cost * float64(s.cfg.MultiplyTime))
	if d <= 0 {
		d = 1
	}
	return d
}

// sendInterval is the splitter's per-tuple pacing: its own per-tuple work,
// stretched further when a rate-limited source cannot feed it faster.
func (s *Sim) sendInterval() time.Duration {
	interval := time.Duration(s.cfg.SendCost) * s.cfg.MultiplyTime
	if s.cfg.SourceRate != nil {
		if rate := s.cfg.SourceRate.At(s.clock); rate > 0 {
			if paced := time.Duration(float64(time.Second) / rate); paced > interval {
				interval = paced
			}
		}
	}
	return interval
}

// Run executes the simulation to completion and returns its metrics.
func (s *Sim) Run() (Metrics, error) {
	s.sched.schedule(0, evSplitterSend, -1)
	s.sched.schedule(s.cfg.SampleInterval, evController, -1)

	for !s.ended {
		ev, ok := s.sched.next()
		if !ok {
			// No events left: the system has fully drained.
			s.finish(s.clock)
			break
		}
		if s.cfg.Duration > 0 && ev.at > s.cfg.Duration {
			s.finish(s.cfg.Duration)
			break
		}
		s.clock = ev.at
		switch ev.kind {
		case evSplitterSend:
			s.handleSplitterSend()
		case evWorkerFinish:
			s.handleWorkerFinish(ev.conn)
		case evController:
			s.handleController()
		default:
			return Metrics{}, fmt.Errorf("sim: unknown event kind %d", ev.kind)
		}
		if s.cfg.PostSwitchLoads != nil && !s.loadSwitched && s.totalCompleted >= s.cfg.LoadSwitchAfterTuples {
			s.loadSwitched = true
			s.switchedAt = s.clock
		}
		if s.cfg.TotalTuples > 0 && s.totalCompleted >= s.cfg.TotalTuples {
			s.finish(s.clock)
		}
	}
	return s.metrics(), nil
}

// finish marks the run complete at the given virtual time.
func (s *Sim) finish(at time.Duration) {
	if s.ended {
		return
	}
	// Fold any in-progress blocking into the counters so the totals are
	// accurate at the end of the run.
	if s.splitterBlock {
		s.accrueBlocking(at)
		s.blockStart = at
	}
	s.ended = true
	s.endAt = at
}

// accrueBlocking adds the in-progress blocked interval [blockStart, now) to
// the blocked connection's counters and restarts the interval at now.
func (s *Sim) accrueBlocking(now time.Duration) {
	d := now - s.blockStart
	if d <= 0 {
		return
	}
	s.cumBlocking[s.blockedOn] += d
	s.totalBlocking[s.blockedOn] += d
	s.blockStart = now
}

// handleSplitterSend drains up to BatchSize tuples from the schedule — the
// simulated counterpart of the real splitter's batched vectored write. Each
// tuple still picks its connection individually; the whole batch lands at
// one virtual instant and the next send event is deferred by the batch's
// combined per-tuple work. A full connection blocks the splitter mid-batch
// (one blocking episode covers the rest of the batch, mirroring the
// combined-write accounting). At BatchSize 1 this is exactly the original
// per-tuple behaviour.
func (s *Sim) handleSplitterSend() {
	if s.splitterDone || s.splitterBlock {
		return
	}
	delivered := 0
	for delivered < s.cfg.BatchSize {
		if s.cfg.TotalTuples > 0 && s.nextSeq >= s.cfg.TotalTuples {
			s.splitterDone = true
			break
		}
		j := s.wrr.Next()
		if s.inflight[j].Full() {
			if s.cfg.RerouteOnBlock {
				// Section 4.4: try the other connections before electing to
				// block. The scan order follows the round-robin schedule.
				rerouted := false
				for k := 1; k < s.Connections(); k++ {
					alt := (j + k) % s.Connections()
					if !s.inflight[alt].Full() {
						s.rerouted++
						s.deliverToConnection(alt)
						delivered++
						rerouted = true
						break
					}
				}
				if rerouted {
					continue
				}
			}
			// Elect to block on j, recording how long (Section 3). The
			// remainder of the batch waits behind the blocked tuple.
			s.splitterBlock = true
			s.blockedOn = j
			s.pendingConn = j
			s.blockStart = s.clock
			return
		}
		s.deliverToConnection(j)
		delivered++
	}
	if !s.splitterDone && delivered > 0 {
		s.sched.schedule(s.clock+time.Duration(delivered)*s.sendInterval(), evSplitterSend, -1)
	}
}

// deliverToConnection enqueues the next tuple on connection j's in-flight
// buffer. The caller must have verified there is space.
func (s *Sim) deliverToConnection(j int) {
	seq := s.nextSeq
	s.nextSeq++
	s.inflight[j].Push(seq)
	s.owner[seq] = pendingTuple{conn: j, sentAt: s.clock}
	s.perConnSent[j]++
	s.totalSent++
	s.startWorkerIfIdle(j)
}

// startWorkerIfIdle begins processing the next buffered tuple on connection j
// if its worker is free. Dequeuing frees in-flight space, which resumes a
// splitter blocked on j.
func (s *Sim) startWorkerIfIdle(j int) {
	if s.state[j] != workerIdle {
		return
	}
	seq, ok := s.inflight[j].Pop()
	if !ok {
		return
	}
	// Mark the worker busy before resuming the splitter: the resumed send
	// re-enters startWorkerIfIdle for this connection and must see it taken.
	s.state[j] = workerBusy
	s.processing[j] = seq
	s.sched.schedule(s.clock+s.serviceTime(j, s.clock), evWorkerFinish, j)
	if s.splitterBlock && s.blockedOn == j {
		s.resumeSplitter()
	}
}

// resumeSplitter ends a blocking episode: the wait is accounted to the
// blocked connection and the pending tuple is delivered to it.
func (s *Sim) resumeSplitter() {
	s.accrueBlocking(s.clock)
	s.splitterBlock = false
	s.deliverToConnection(s.pendingConn)
	s.sched.schedule(s.clock+s.sendInterval(), evSplitterSend, -1)
}

// handleWorkerFinish completes connection j's current tuple.
func (s *Sim) handleWorkerFinish(j int) {
	if s.state[j] != workerBusy {
		return
	}
	seq := s.processing[j]
	if s.mergerQ[j].Full() {
		// Back pressure from the ordered merge: the worker stalls holding
		// its output until the merger drains (Section 4.1).
		s.state[j] = workerBlockedOnMerger
		s.held[j] = seq
		return
	}
	s.mergerQ[j].Push(seq)
	s.state[j] = workerIdle
	s.drainMerger()
	s.startWorkerIfIdle(j)
}

// drainMerger releases tuples downstream in strict sequence order, cascading
// through any workers the released space unblocks. Mirroring the real
// merger's batch ingest, releases happen in bounded sweeps of up to
// RecvBatchSize tuples per sweep — the cascade is identical (the outer loop
// keeps sweeping until nothing is in order), but the sweep count the run
// reports exposes the release-amortization granularity the batch size buys.
func (s *Sim) drainMerger() {
	for {
		released := 0
		for released < s.cfg.RecvBatchSize {
			pend, ok := s.owner[s.releaseSeq]
			if !ok {
				break // the next tuple in order has not even been sent yet
			}
			j := pend.conn
			head, ok := s.mergerQ[j].Head()
			if !ok || head != s.releaseSeq {
				break // next tuple in order is still in flight or processing
			}
			s.mergerQ[j].Pop()
			delete(s.owner, s.releaseSeq)
			if s.totalCompleted > 0 {
				if gap := s.clock - s.lastReleaseAt; gap > s.maxReleaseGap {
					s.maxReleaseGap = gap
				}
				if s.cfg.StallWindow > 0 && s.clock-s.lastReleaseAt >= s.cfg.StallWindow {
					s.stallAlarms++
				}
			}
			s.lastReleaseAt = s.clock
			s.latency.Add((s.clock - pend.sentAt).Seconds())
			if s.cfg.Sink != nil {
				s.cfg.Sink(s.releaseSeq, j)
			}
			s.releaseSeq++
			s.perConnDone[j]++
			s.totalCompleted++
			released++
			// The pop freed merger space: un-stall a worker blocked on it.
			if s.state[j] == workerBlockedOnMerger && !s.mergerQ[j].Full() {
				s.mergerQ[j].Push(s.held[j])
				s.state[j] = workerIdle
				s.startWorkerIfIdle(j)
			}
		}
		if released == 0 {
			return
		}
		s.mergeSweeps++
	}
}

// handleController samples blocking counters, runs the policy, applies new
// weights and notifies the observer.
func (s *Sim) handleController() {
	now := s.clock
	if s.splitterBlock {
		// Make in-progress blocking visible to this sample.
		s.accrueBlocking(now)
	}
	rates := make([]float64, s.Connections())
	for j := range rates {
		if rate, ok := s.samplers[j].Sample(now, s.cumBlocking[j].Seconds()); ok {
			rates[j] = rate
		}
	}
	// Periodic counter reset by the "transport layer" (Figure 2).
	if s.cfg.ResetInterval > 0 && now-s.lastReset >= s.cfg.ResetInterval {
		for j := range s.cumBlocking {
			s.cumBlocking[j] = 0
			// The sampler sees the drop and treats the next value as a
			// post-reset delta; re-prime it at zero to keep rates exact.
			s.samplers[j].Reset()
			s.samplers[j].Sample(now, 0)
		}
		s.lastReset = now
	}
	interval := now - s.lastSampleAt
	tput := 0.0
	if interval > 0 {
		tput = float64(s.totalCompleted-s.lastSampled) / interval.Seconds()
	}
	s.tputHistory = append(s.tputHistory, tput)
	s.lastSampled = s.totalCompleted
	s.lastSampleAt = now

	sn := Snapshot{
		Now:           now,
		BlockingRates: append([]float64(nil), rates...),
		Weights:       append([]int(nil), s.weights...),
		Completed:     s.totalCompleted,
		Throughput:    tput,
	}
	if weights := s.cfg.Policy.OnSample(sn); weights != nil {
		if err := s.wrr.SetWeights(weights); err == nil {
			copy(s.weights, weights)
		}
	}
	if s.cfg.Observer != nil {
		sn.Weights = append([]int(nil), s.weights...)
		s.cfg.Observer(sn)
	}
	// Keep sampling while the run is alive.
	if !s.ended {
		s.sched.schedule(now+s.cfg.SampleInterval, evController, -1)
	}
}

// metrics builds the final report.
func (s *Sim) metrics() Metrics {
	m := Metrics{
		Policy:           s.cfg.Policy.Name(),
		EndTime:          s.endAt,
		Sent:             s.totalSent,
		Completed:        s.totalCompleted,
		PerConnSent:      append([]uint64(nil), s.perConnSent...),
		PerConnCompleted: append([]uint64(nil), s.perConnDone...),
		TotalBlocking:    append([]time.Duration(nil), s.totalBlocking...),
		Rerouted:         s.rerouted,
		MergeSweeps:      s.mergeSweeps,
		FinalWeights:     append([]int(nil), s.weights...),
		MaxReleaseGap:    s.maxReleaseGap,
		StallAlarms:      s.stallAlarms,
	}
	if s.endAt > 0 {
		m.MeanThroughput = float64(s.totalCompleted) / s.endAt.Seconds()
	}
	m.LatencyP50 = time.Duration(s.latency.P50() * float64(time.Second))
	m.LatencyP99 = time.Duration(s.latency.P99() * float64(time.Second))
	m.LatencyMax = time.Duration(s.latency.Max() * float64(time.Second))
	// Final throughput: mean over the last quarter of controller ticks.
	if n := len(s.tputHistory); n > 0 {
		start := n - n/4
		if start >= n {
			start = n - 1
		}
		sum := 0.0
		for _, v := range s.tputHistory[start:] {
			sum += v
		}
		m.FinalThroughput = sum / float64(n-start)
	} else {
		m.FinalThroughput = m.MeanThroughput
	}
	return m
}
