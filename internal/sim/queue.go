package sim

// seqQueue is a bounded FIFO ring buffer of tuple sequence numbers. It backs
// both the per-connection in-flight buffers and the merger's per-connection
// reorder queues.
type seqQueue struct {
	buf  []uint64
	head int
	size int
}

// newSeqQueue returns a queue with the given capacity (minimum 1).
func newSeqQueue(capacity int) *seqQueue {
	if capacity < 1 {
		capacity = 1
	}
	return &seqQueue{buf: make([]uint64, capacity)}
}

// Len returns the number of queued items.
func (q *seqQueue) Len() int {
	return q.size
}

// Cap returns the queue capacity.
func (q *seqQueue) Cap() int {
	return len(q.buf)
}

// Full reports whether the queue is at capacity.
func (q *seqQueue) Full() bool {
	return q.size == len(q.buf)
}

// Empty reports whether the queue holds no items.
func (q *seqQueue) Empty() bool {
	return q.size == 0
}

// Push appends a sequence number; it reports false when the queue is full.
func (q *seqQueue) Push(seq uint64) bool {
	if q.Full() {
		return false
	}
	q.buf[(q.head+q.size)%len(q.buf)] = seq
	q.size++
	return true
}

// Head returns the oldest item without removing it; ok is false when empty.
func (q *seqQueue) Head() (uint64, bool) {
	if q.size == 0 {
		return 0, false
	}
	return q.buf[q.head], true
}

// Pop removes and returns the oldest item; ok is false when empty.
func (q *seqQueue) Pop() (uint64, bool) {
	if q.size == 0 {
		return 0, false
	}
	seq := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return seq, true
}
