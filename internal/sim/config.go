package sim

import (
	"errors"
	"fmt"
	"time"
)

// Default simulator parameters. One simulated "integer multiply" is scaled to
// 1µs (see the package comment for why); buffer capacities are sized so that
// buffer drain times sit well below the sampling interval, preserving the
// paper's separation of time scales between drafting cycles and measurement.
const (
	DefaultMultiplyTime = time.Microsecond
	// DefaultSendCost is the splitter's per-tuple work in multiplies. At
	// 125 multiplies per send, one splitter saturates at 8x the rate of an
	// unloaded worker processing 1,000-multiply tuples — reproducing the
	// paper's observation that "for a base cost of 1,000 integer multiplies
	// per tuple, 8 PEs is the point at which additional parallelism does
	// not improve performance" (Section 6.3).
	DefaultSendCost = 125
	// DefaultInflightCap bounds the per-connection in-flight buffer in
	// tuples (both TCP socket buffers). It is deliberately small: an
	// overloaded connection's buffered backlog gates the ordered merge for
	// InflightCap x service-time, and everything buffered "still takes
	// 100x as long to process" (Section 4.4).
	DefaultInflightCap = 16
	// DefaultMergerCap bounds each connection's reorder queue at the
	// merger. It must absorb roughly InflightCap x (fastest/slowest
	// capacity ratio) tuples so that a slow connection's backlog does not
	// stall the fast connections' workers through head-of-line waiting —
	// which would make the splitter block on fast connections and corrupt
	// the signal the balancer reads.
	DefaultMergerCap      = 8192
	DefaultSampleInterval = time.Second
	DefaultResetInterval  = 16 * time.Second
	// DefaultRecvBatchSize bounds one merger release sweep in tuples,
	// matching the real runtime's receive-batch default
	// (transport.DefaultRecvBatch); the sim keeps its own constant so the
	// virtual-time model stays dependency-free.
	DefaultRecvBatchSize = 64
)

// Snapshot is the per-interval view handed to an Observer: what the
// controller saw and decided at one collection instant.
type Snapshot struct {
	// Now is the virtual time of the sample.
	Now time.Duration
	// BlockingRates holds seconds-blocked-per-second per connection.
	BlockingRates []float64
	// Weights is the allocation vector in force after the policy ran.
	Weights []int
	// Completed is the cumulative count of tuples released by the merger.
	Completed uint64
	// Throughput is tuples per second released since the previous sample.
	Throughput float64
}

// Observer receives one Snapshot per collection interval. The slices in the
// snapshot are owned by the observer (they are fresh copies).
type Observer func(Snapshot)

// Config describes one simulated run of a parallel region.
type Config struct {
	// Hosts is the cluster.
	Hosts []HostSpec
	// PEs places one worker per connection; connection j is PEs[j].
	PEs []PESpec
	// BaseCost is the tuple cost in integer multiplies (Section 6 uses
	// 1,000 / 10,000 / 20,000 / 60,000).
	BaseCost int
	// MultiplyTime scales one multiply to virtual time (default 1µs).
	MultiplyTime time.Duration
	// SendCost is the splitter's per-tuple overhead in multiplies (default
	// DefaultSendCost).
	SendCost int
	// InflightCap bounds each connection's in-flight buffer in tuples,
	// standing in for the sender- and receiver-side TCP socket buffers
	// (default DefaultInflightCap).
	InflightCap int
	// BatchSize is how many tuples the splitter drains from the schedule
	// per send event, mirroring the real runtime's batched vectored
	// writes: each tuple still picks its connection individually, but the
	// batch is delivered at one virtual instant and a full connection
	// blocks the splitter mid-batch. <= 1 (the default) sends per tuple.
	BatchSize int
	// RecvBatchSize bounds one merger release sweep in tuples, mirroring
	// the real runtime's receive-batch ingest (RegionConfig.RecvBatchSize).
	// The merge outcome is identical at any value — the cascade continues
	// until no tuple is releasable — so this only changes the reported
	// MergeSweeps granularity; the simulator has no per-sweep lock cost to
	// model. <= 0 selects DefaultRecvBatchSize; 1 sweeps per tuple.
	RecvBatchSize int
	// MergerCap bounds each connection's reorder queue at the merger. The
	// default absorbs routine out-of-order skew (the "boxes on the edges"
	// of Figure 3) so that back pressure reaches the splitter through the
	// buffers of the genuinely overloaded connection — too small a value
	// moves blocking onto fast connections via head-of-line stalls and
	// destroys the metric's signal. It is still finite: under severe
	// imbalance the merge cannot run arbitrarily far ahead of the slow
	// connection's backlog, which is exactly why the Section 4.4
	// transport-level re-routing approach is "too little, too late".
	MergerCap int
	// SampleInterval is the controller's collection interval (default 1s,
	// as in Section 3).
	SampleInterval time.Duration
	// ResetInterval is how often the transport layer resets its cumulative
	// blocking counters (Figure 2); zero selects DefaultResetInterval, a
	// negative value disables resets.
	ResetInterval time.Duration
	// Policy decides the weights. Nil means RoundRobin.
	Policy Policy
	// PostSwitchLoads, when non-nil (one schedule per PE), replaces the
	// PEs' load schedules once LoadSwitchAfterTuples tuples have been
	// released — the paper's "load removed an eighth through the
	// experiment" expressed in work done rather than wall time, so that
	// slow policies experience the switch an eighth through their own
	// (longer) runs. The post-switch schedules are evaluated relative to
	// the switch instant.
	PostSwitchLoads []LoadSchedule
	// LoadSwitchAfterTuples is the released-tuple count that triggers
	// PostSwitchLoads.
	LoadSwitchAfterTuples uint64
	// ServiceJitter adds deterministic pseudo-random noise to every service
	// time: a tuple's cost is scaled by a factor uniform in
	// [1-ServiceJitter, 1+ServiceJitter]. Real hardware is noisy; jitter
	// verifies the balancer does not depend on the simulator's clockwork
	// regularity. Zero (the default) keeps runs exactly reproducible
	// event-for-event; with jitter they are still deterministic for a
	// given Seed.
	ServiceJitter float64
	// Seed drives the jitter PRNG (default 1).
	Seed int64
	// SourceRate, when non-nil, throttles the stream source to the
	// scheduled rate in tuples per second over virtual time (the
	// "multiplier" of each phase is the rate). Nil models the saturated
	// source of the paper's experiments; a phased schedule models the
	// bursty sources Section 5.4 cites as a reason exploration must stay
	// cheap — during a lull nothing blocks and no data arrives, so the
	// model must not unlearn so much that the next burst hurts.
	SourceRate *LoadSchedule
	// RerouteOnBlock enables the Section 4.4 transport-level re-routing
	// experiment: instead of electing to block, the splitter tries the
	// remaining connections and only blocks when all are full.
	RerouteOnBlock bool
	// Duration stops the run at a virtual time (0 = run until TotalTuples).
	Duration time.Duration
	// TotalTuples stops the splitter after this many tuples and runs until
	// the merger has released them all (0 = run until Duration).
	TotalTuples uint64
	// Observer, when set, receives one Snapshot per collection interval.
	Observer Observer
	// Sink, when set, receives every tuple the merger releases, in release
	// order, with the connection that processed it. Used by the downstream
	// operator in examples and by tests asserting the ordering invariant.
	Sink func(seq uint64, conn int)
	// StallWindow, when positive, counts a stall alarm every time the gap
	// between consecutive in-order releases reaches the window — the
	// virtual-time analogue of the runtime merger's merge-stall watchdog.
	// It is pure observability (the sim has no faults to quarantine); it
	// lets experiments quantify how long an overloaded connection gates
	// the ordered merge under a given policy.
	StallWindow time.Duration
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MultiplyTime <= 0 {
		c.MultiplyTime = DefaultMultiplyTime
	}
	if c.SendCost <= 0 {
		c.SendCost = DefaultSendCost
	}
	if c.InflightCap <= 0 {
		c.InflightCap = DefaultInflightCap
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if c.RecvBatchSize <= 0 {
		c.RecvBatchSize = DefaultRecvBatchSize
	}
	if c.MergerCap <= 0 {
		c.MergerCap = DefaultMergerCap
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = DefaultSampleInterval
	}
	if c.ResetInterval == 0 {
		c.ResetInterval = DefaultResetInterval
	}
	if c.Policy == nil {
		c.Policy = RoundRobin{}
	}
	return c
}

// validate rejects unusable configurations.
func (c Config) validate() error {
	if _, err := validateTopology(c.Hosts, c.PEs); err != nil {
		return err
	}
	if c.PostSwitchLoads != nil && len(c.PostSwitchLoads) != len(c.PEs) {
		return fmt.Errorf("sim: %d post-switch loads for %d PEs", len(c.PostSwitchLoads), len(c.PEs))
	}
	if c.BaseCost <= 0 {
		return fmt.Errorf("sim: base cost %d, want positive", c.BaseCost)
	}
	if c.ServiceJitter < 0 || c.ServiceJitter >= 1 {
		if c.ServiceJitter != 0 {
			return fmt.Errorf("sim: service jitter %v outside [0,1)", c.ServiceJitter)
		}
	}
	if c.Duration <= 0 && c.TotalTuples == 0 {
		return errors.New("sim: need Duration or TotalTuples as a stopping condition")
	}
	return nil
}

// Metrics summarizes one completed run.
type Metrics struct {
	// Policy is the policy name.
	Policy string
	// EndTime is the virtual time at which the run stopped. For
	// TotalTuples runs this is the makespan (the paper's "total execution
	// time").
	EndTime time.Duration
	// Sent and Completed count tuples through the splitter and merger.
	Sent      uint64
	Completed uint64
	// PerConnSent and PerConnCompleted break the counts down by connection.
	PerConnSent      []uint64
	PerConnCompleted []uint64
	// TotalBlocking is each connection's lifetime blocking time (never
	// reset, unlike the sampled counter).
	TotalBlocking []time.Duration
	// Rerouted counts tuples diverted by the Section 4.4 re-routing mode.
	Rerouted uint64
	// MergeSweeps counts bounded release sweeps the merger ran (each
	// releases up to RecvBatchSize tuples): Completed/MergeSweeps is the
	// mean release-amortization the receive batch size achieved.
	MergeSweeps uint64
	// FinalWeights is the allocation vector at the end of the run.
	FinalWeights []int
	// FinalThroughput is the mean released-tuple rate over the last quarter
	// of the run (the paper's "final throughput", measured well after any
	// load change).
	FinalThroughput float64
	// LatencyP50, LatencyP99 and LatencyMax summarize per-tuple end-to-end
	// latency (splitter send to in-order release), estimated with constant
	// space. Latency is the motivation the paper opens with; the balancer
	// lowers it by shrinking the slowest connection's queueing.
	LatencyP50 time.Duration
	LatencyP99 time.Duration
	LatencyMax time.Duration
	// MeanThroughput is Completed divided by EndTime.
	MeanThroughput float64
	// MaxReleaseGap is the longest virtual-time gap between consecutive
	// in-order releases — how long the ordered merge was gated at its
	// worst, typically by the most overloaded connection's backlog.
	MaxReleaseGap time.Duration
	// StallAlarms counts release gaps that reached Config.StallWindow
	// (0 when no window was configured).
	StallAlarms uint64
}
