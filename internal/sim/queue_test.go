package sim

import (
	"testing"
	"testing/quick"
)

func TestSeqQueueBasics(t *testing.T) {
	q := newSeqQueue(3)
	if q.Cap() != 3 || !q.Empty() || q.Full() {
		t.Fatalf("fresh queue: cap=%d empty=%v full=%v", q.Cap(), q.Empty(), q.Full())
	}
	for i := uint64(0); i < 3; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if !q.Full() || q.Len() != 3 {
		t.Fatalf("after fill: full=%v len=%d", q.Full(), q.Len())
	}
	if q.Push(99) {
		t.Fatal("push into full queue succeeded")
	}
	if head, ok := q.Head(); !ok || head != 0 {
		t.Fatalf("head = %d %v, want 0 true", head, ok)
	}
	for i := uint64(0); i < 3; i++ {
		got, ok := q.Pop()
		if !ok || got != i {
			t.Fatalf("pop = %d %v, want %d true", got, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
	if _, ok := q.Head(); ok {
		t.Fatal("head of empty queue succeeded")
	}
}

func TestSeqQueueMinCapacity(t *testing.T) {
	q := newSeqQueue(0)
	if q.Cap() != 1 {
		t.Fatalf("cap = %d, want clamp to 1", q.Cap())
	}
}

func TestSeqQueueWrapAround(t *testing.T) {
	q := newSeqQueue(2)
	next := uint64(0)
	for round := 0; round < 10; round++ {
		if !q.Push(next) {
			t.Fatal("push failed")
		}
		next++
		if got, _ := q.Pop(); got != next-1 {
			t.Fatalf("round %d: pop = %d, want %d", round, got, next-1)
		}
	}
}

func TestSeqQueueFIFOProperty(t *testing.T) {
	// Under any interleaving of pushes and pops, popped values come out in
	// push order.
	prop := func(ops []bool, capRaw uint8) bool {
		q := newSeqQueue(int(capRaw%16) + 1)
		nextPush, nextPop := uint64(0), uint64(0)
		for _, push := range ops {
			if push {
				if q.Push(nextPush) {
					nextPush++
				} else if !q.Full() {
					return false
				}
			} else {
				v, ok := q.Pop()
				if ok {
					if v != nextPop {
						return false
					}
					nextPop++
				} else if !q.Empty() {
					return false
				}
			}
			if q.Len() != int(nextPush-nextPop) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
