package sim

import "testing"

func countKeys(k *KeyedStream, n uint64) map[uint64]uint64 {
	counts := make(map[uint64]uint64)
	for s := uint64(0); s < n; s++ {
		counts[k.Key(s)]++
	}
	return counts
}

func TestKeyedStreamDeterministic(t *testing.T) {
	a := NewZipfStream(1000, 1.1, 42)
	b := NewZipfStream(1000, 1.1, 42)
	for s := uint64(0); s < 10_000; s++ {
		if a.Key(s) != b.Key(s) {
			t.Fatalf("same seed diverged at seq %d: %d vs %d", s, a.Key(s), b.Key(s))
		}
	}
	c := NewZipfStream(1000, 1.1, 43)
	diff := 0
	for s := uint64(0); s < 10_000; s++ {
		if a.Key(s) != c.Key(s) {
			diff++
		}
	}
	if diff < 5000 {
		t.Fatalf("different seeds agreed on %d of 10000 draws", 10_000-diff)
	}
}

func TestKeyedStreamNeverZero(t *testing.T) {
	for _, k := range []*KeyedStream{
		NewZipfStream(1, 0, 0),
		NewZipfStream(100, 1.5, 7),
	} {
		k.SetChurn(10)
		for s := uint64(0); s < 1000; s++ {
			if k.Key(s) == 0 {
				t.Fatalf("key 0 (the unkeyed sentinel) generated at seq %d", s)
			}
		}
	}
}

func TestKeyedStreamZipfSkew(t *testing.T) {
	flat := countKeys(NewZipfStream(1000, 0, 1), 100_000)
	skew := countKeys(NewZipfStream(1000, 1.5, 1), 100_000)
	var flatTop, skewTop uint64
	for _, c := range flat {
		if c > flatTop {
			flatTop = c
		}
	}
	for _, c := range skew {
		if c > skewTop {
			skewTop = c
		}
	}
	// Uniform's top key is ~100 draws; alpha=1.5 concentrates ~38% on rank 0.
	if skewTop < 10*flatTop {
		t.Fatalf("alpha=1.5 top key drew %d, uniform top %d — no skew", skewTop, flatTop)
	}
	hot := NewZipfStream(1000, 1.5, 1).RankKey(0, 0)
	if skew[hot] != skewTop {
		t.Fatalf("Zipf hottest key is not rank 0's ID %d (it drew %d, max %d)", hot, skew[hot], skewTop)
	}
}

func TestKeyedStreamHotShare(t *testing.T) {
	k := NewZipfStream(1000, 0, 5)
	k.SetHotShare(0.8)
	counts := countKeys(k, 50_000)
	if share := float64(counts[k.RankKey(0, 0)]) / 50_000; share < 0.75 || share > 0.85 {
		t.Fatalf("hot key drew %.3f of the stream, want ~0.80", share)
	}
}

func TestKeyedStreamChurnRotatesUniverse(t *testing.T) {
	k := NewZipfStream(100, 1.1, 9)
	k.SetChurn(1000)
	gen0 := countKeys(k, 1000)
	if len(gen0) < 2 {
		t.Fatalf("generation 0 produced only %d distinct keys", len(gen0))
	}
	for s := uint64(1000); s < 2000; s++ {
		if key := k.Key(s); gen0[key] != 0 {
			t.Fatalf("generation 1 reused generation-0 key %d at seq %d", key, s)
		}
	}
	// Churn replaces identities, not the distribution: both generations draw
	// from a same-size universe, and the hot slot moves to the new
	// generation's rank 0.
	if hot := k.RankKey(1, 0); hot == k.RankKey(0, 0) {
		t.Fatalf("hot key did not rotate across generations (still %d)", hot)
	}
}
