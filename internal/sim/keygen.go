package sim

import "math"

// KeyedStream deterministically generates keyed workloads for skew
// experiments. The key for sequence s is a pure function of (seed, s), so
// every component that holds the same parameters — a benchmark harness, a
// replaying splitter, an offline checker — sees byte-identical streams with
// no shared state and no math/rand.
//
// Three shapes compose:
//   - Zipf skew: P(rank r) ∝ 1/(r+1)^alpha over the universe (alpha 0 =
//     uniform).
//   - Hot key: an extra probability mass pinned on rank 0, modeling a single
//     viral entity on top of the background distribution.
//   - Key churn: the universe rotates every churn tuples, so the hot set is
//     replaced wholesale — the adversarial case for frequency trackers.
//
// Key identities are opaque: rank r of generation g maps to the scrambled ID
// RankKey(g, r), not to the small integer r+1. Real stream keys (user IDs,
// words, URLs) carry no rank structure, and rank-identity IDs are actively
// misleading for routing experiments — adjacent small integers produce a
// fixed, pathological hash/candidate layout for every hash-based partitioner,
// so hash-vs-PKG comparisons would measure that artifact instead of the
// policy. IDs are never 0, the transport's "unkeyed" sentinel.
type KeyedStream struct {
	universe uint64
	seed     uint64
	// keyBase seeds the rank→ID scramble; derived from seed so streams with
	// different seeds disagree on identities as well as draws.
	keyBase  uint64
	hotShare float64
	churn    uint64
	// cdf is the cumulative Zipf mass over the universe; nil means uniform.
	cdf []float64
	sum float64
}

// NewZipfStream builds a generator over universe keys with exponent alpha
// (alpha <= 0 selects uniform). seed picks the stream; equal parameters give
// equal streams.
func NewZipfStream(universe int, alpha float64, seed int64) *KeyedStream {
	if universe < 1 {
		universe = 1
	}
	k := &KeyedStream{
		universe: uint64(universe),
		seed:     uint64(seed),
		keyBase:  splitmix64(uint64(seed) ^ 0x6a09e667f3bcc909),
	}
	if alpha > 0 {
		k.cdf = make([]float64, universe)
		sum := 0.0
		for i := 1; i <= universe; i++ {
			sum += 1 / math.Pow(float64(i), alpha)
			k.cdf[i-1] = sum
		}
		k.sum = sum
	}
	return k
}

// SetHotShare pins probability mass p (clamped to [0,1]) on rank 0 before
// the background distribution draws.
func (k *KeyedStream) SetHotShare(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	k.hotShare = p
}

// SetChurn rotates the key universe every interval tuples: sequence s maps
// into generation s/interval, and each generation scrambles to a disjoint
// key-ID set. 0 disables churn.
func (k *KeyedStream) SetChurn(interval uint64) {
	k.churn = interval
}

// splitmix64 is the SplitMix64 finalizer; one multiply-xorshift round is
// enough to decorrelate consecutive sequence numbers.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Generation returns seq's churn generation (0 when churn is disabled).
func (k *KeyedStream) Generation(seq uint64) uint64 {
	if k.churn == 0 {
		return 0
	}
	return seq / k.churn
}

// RankKey returns the key ID for zero-based Zipf rank within a generation —
// the ID tuples of that rank actually carry. SplitMix64 is a bijection over
// distinct (generation, rank) inputs, so a stream's IDs are unique and
// generations are disjoint (up to the measure-zero remap of the one input
// that scrambles to the reserved 0). RankKey(Generation(seq), 0) is the hot
// key SetHotShare pins.
func (k *KeyedStream) RankKey(gen, rank uint64) uint64 {
	id := splitmix64(k.keyBase + gen*k.universe + rank)
	if id == 0 {
		id = 1
	}
	return id
}

// Key returns the key for sequence seq.
func (k *KeyedStream) Key(seq uint64) uint64 {
	r := splitmix64(k.seed ^ splitmix64(seq))
	u := float64(r>>11) / float64(uint64(1)<<53)
	var rank uint64
	switch {
	case u < k.hotShare:
		rank = 0
	case k.cdf == nil:
		rank = splitmix64(r) % k.universe
	default:
		target := (u - k.hotShare) / (1 - k.hotShare) * k.sum
		lo, hi := 0, len(k.cdf)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if k.cdf[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		rank = uint64(lo)
	}
	return k.RankKey(k.Generation(seq), rank)
}
