package sim_test

import (
	"fmt"
	"time"

	"streambalance/internal/core"
	"streambalance/internal/sim"
)

// Example runs a small balanced region on the virtual-time simulator: one of
// three worker PEs carries 10x external load, and the balancer drives its
// allocation weight near the capacity-proportional share.
func Example() {
	hosts := []sim.HostSpec{sim.SlowHost("node0")}
	pes := []sim.PESpec{
		{Host: 0, Load: sim.ConstantLoad(10)},
		{Host: 0},
		{Host: 0},
	}
	balancer, err := core.NewBalancer(core.Config{Connections: 3, DecayEnabled: true})
	if err != nil {
		panic(err)
	}
	policy := sim.NewBalancerPolicy(balancer, "LB-adaptive")
	s, err := sim.New(sim.Config{
		Hosts:    hosts,
		PEs:      pes,
		BaseCost: 1000, // integer multiplies per tuple
		Duration: 60 * time.Second,
		Policy:   policy,
	})
	if err != nil {
		panic(err)
	}
	m, err := s.Run()
	if err != nil {
		panic(err)
	}
	if err := policy.Err(); err != nil {
		panic(err)
	}
	fmt.Println("loaded PE throttled below 10%:", m.FinalWeights[0] < 100)
	fmt.Println("throughput above round-robin's 300/s:", m.FinalThroughput > 1000)
	// Output:
	// loaded PE throttled below 10%: true
	// throughput above round-robin's 300/s: true
}
