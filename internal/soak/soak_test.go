package soak

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeSummary appends one run's summary as a JSON line to $SOAK_OUT, when
// set — CI archives that file as the soak artifact.
func writeSummary(t *testing.T, name string, sum Summary) {
	t.Helper()
	out := os.Getenv("SOAK_OUT")
	if out == "" {
		return
	}
	if dir := filepath.Dir(out); dir != "." {
		os.MkdirAll(dir, 0o755)
	}
	f, err := os.OpenFile(out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Logf("soak: cannot open SOAK_OUT %s: %v", out, err)
		return
	}
	defer f.Close()
	line := struct {
		Name string `json:"name"`
		Summary
	}{Name: name, Summary: sum}
	enc := json.NewEncoder(f)
	if err := enc.Encode(line); err != nil {
		t.Logf("soak: cannot write summary: %v", err)
	}
}

func checkSummary(t *testing.T, cfg Config, sum Summary, err error, maxGap time.Duration) {
	t.Helper()
	t.Logf("soak: %d workers, %d tuples in %v (%.0f tuples/s): faults=%d downs=%d replays=%d (%d tuples) rejoins=%d quarantines=%d evictions=%d deduped=%d maxgap=%v",
		sum.Workers, sum.Released, sum.Elapsed.Round(time.Millisecond), sum.TuplesPerSec,
		sum.Faults, sum.Downs, sum.Replays, sum.ReplayedTuples, sum.Rejoins,
		sum.Quarantines, sum.Evictions, sum.Deduped, sum.MaxReleaseGap.Round(time.Millisecond))
	if err != nil {
		t.Fatalf("soak run failed: %v", err)
	}
	if sum.Released != cfg.Tuples {
		t.Fatalf("released %d of %d tuples", sum.Released, cfg.Tuples)
	}
	if !sum.OrderPreserved {
		t.Fatal("release order broken")
	}
	if sum.Faults == 0 {
		t.Error("the fault injector never fired; the soak proved nothing")
	}
	if maxGap > 0 && sum.MaxReleaseGap > maxGap {
		t.Errorf("max release gap %v exceeded the recovery bound %v", sum.MaxReleaseGap, maxGap)
	}
}

// TestSoakSmoke is the CI-sized soak: a short randomized stall/drip/kill
// schedule against 16 workers, asserting the exactly-once ordered release
// invariant and a bounded stall-recovery gap.
func TestSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("soak runs are not short")
	}
	cfg := Config{
		Workers:     16,
		Tuples:      40_000,
		Payload:     64,
		Seed:        1,
		StallWindow: 150 * time.Millisecond,
		SendStall:   400 * time.Millisecond,
		FaultEvery:  350 * time.Millisecond,
		FaultHold:   250 * time.Millisecond,
		MaxReadmits: -1,
	}
	sum, err := Run(cfg)
	// The gap bound is generous: detection (stall window or send stall) plus
	// replay plus redial, with CI scheduling noise on top.
	checkSummary(t, cfg, sum, err, 6*time.Second)
	writeSummary(t, "smoke", sum)
}

// TestSoakFull is the minutes-long straggler soak, gated behind SOAK_FULL=1
// (run via `make soak`). It sweeps the connection scale 16→64 with longer
// streams and the full fault repertoire.
func TestSoakFull(t *testing.T) {
	if os.Getenv("SOAK_FULL") == "" {
		t.Skip("set SOAK_FULL=1 (or run `make soak`) for the full soak")
	}
	for _, sc := range []struct {
		workers int
		tuples  uint64
	}{
		{16, 300_000},
		{32, 300_000},
		{64, 400_000},
	} {
		sc := sc
		t.Run(fmt.Sprintf("workers%d", sc.workers), func(t *testing.T) {
			cfg := Config{
				Workers:     sc.workers,
				Tuples:      sc.tuples,
				Payload:     64,
				Seed:        int64(sc.workers),
				StallWindow: 150 * time.Millisecond,
				SendStall:   400 * time.Millisecond,
				FaultEvery:  300 * time.Millisecond,
				FaultHold:   250 * time.Millisecond,
				MaxReadmits: -1,
			}
			sum, err := Run(cfg)
			checkSummary(t, cfg, sum, err, 8*time.Second)
			writeSummary(t, t.Name(), sum)
		})
	}
}
