// Package soak runs long, randomized chaos schedules against a full
// recovery-enabled region and checks the straggler-defense invariants: every
// tuple released exactly once in order, and release gaps (merge stalls)
// bounded by the detection machinery rather than by the fault duration.
//
// The harness wires a chaos proxy in front of every worker connection and
// injects one fault at a time — Stall (accept, never drain), SlowDrip
// (trickle below the useful rate) or Kill (sever the links) — holding it for
// a while and then healing it, driven by a seeded RNG so failures reproduce.
package soak

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"streambalance/internal/chaos"
	"streambalance/internal/runtime"
	"streambalance/internal/schema"
	"streambalance/internal/transport"
)

// SummaryVersion is the schema of the JSON summaries this package emits
// (SOAK_*.json lines and the soak payload of dispatcher results). Major
// bumps mean existing fields changed meaning or type; minor bumps only add
// fields.
const SummaryVersion = "1.0"

// summaryMajor is the major component of SummaryVersion.
const summaryMajor = 1

// Config parameterizes one soak run.
type Config struct {
	// Workers is the region fan-out (and the number of chaos proxies).
	Workers int
	// Tuples bounds the stream length.
	Tuples uint64
	// Payload is the tuple payload size in bytes.
	Payload int
	// Rate paces the source in tuples/second so the run lasts long enough
	// for the fault schedule to actually fire (an unthrottled loopback
	// region drains tens of thousands of tuples in milliseconds). Default
	// 5000; negative disables pacing.
	Rate int
	// Seed drives the fault schedule; equal seeds reproduce equal runs.
	Seed int64
	// StallWindow is the merge-stall watchdog window.
	StallWindow time.Duration
	// SendStall is the sender-side stall bound (splitter and workers).
	SendStall time.Duration
	// FaultEvery is the mean time between injected faults.
	FaultEvery time.Duration
	// FaultHold is how long stall and drip faults persist before healing.
	FaultHold time.Duration
	// MaxReadmits is the quarantine circuit-breaker budget (negative =
	// unlimited, which soak runs want: faults heal, workers should always
	// come back).
	MaxReadmits int
	// Kinds selects the fault repertoire; empty means all of
	// "stall", "drip", "kill".
	Kinds []string
	// DripBytesPerSec is the SlowDrip rate (default 8 — slow enough that
	// one tuple takes longer than any realistic stall window).
	DripBytesPerSec int
}

// Summary reports what one soak run did and observed.
type Summary struct {
	SchemaVersion  string        `json:"schema_version"`
	Workers        int           `json:"workers"`
	Tuples         uint64        `json:"tuples"`
	Released       uint64        `json:"released"`
	OrderPreserved bool          `json:"order_preserved"`
	Deduped        uint64        `json:"deduped"`
	Faults         int           `json:"faults"`
	Downs          int           `json:"downs"`
	Replays        int           `json:"replays"`
	ReplayedTuples int           `json:"replayed_tuples"`
	Rejoins        int           `json:"rejoins"`
	Quarantines    int           `json:"quarantines"`
	Evictions      int           `json:"evictions"`
	Exhausted      int           `json:"redials_exhausted"`
	MaxReleaseGap  time.Duration `json:"max_release_gap_ns"`
	Elapsed        time.Duration `json:"elapsed_ns"`
	TuplesPerSec   float64       `json:"tuples_per_sec"`
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Tuples == 0 {
		c.Tuples = 50_000
	}
	if c.Payload <= 0 {
		c.Payload = 64
	}
	if c.Rate == 0 {
		c.Rate = 5000
	}
	if c.StallWindow <= 0 {
		c.StallWindow = 150 * time.Millisecond
	}
	if c.SendStall <= 0 {
		c.SendStall = 500 * time.Millisecond
	}
	if c.FaultEvery <= 0 {
		c.FaultEvery = 400 * time.Millisecond
	}
	if c.FaultHold <= 0 {
		c.FaultHold = 300 * time.Millisecond
	}
	if c.MaxReadmits == 0 {
		c.MaxReadmits = -1
	}
	if len(c.Kinds) == 0 {
		c.Kinds = []string{"stall", "drip", "kill"}
	}
	if c.DripBytesPerSec <= 0 {
		c.DripBytesPerSec = 8
	}
	return c
}

// Run executes one soak schedule and returns its summary. The returned error
// is the region's terminal error; a healthy soak returns nil and a summary
// whose Released equals Tuples with order preserved.
func Run(cfg Config) (Summary, error) {
	cfg = cfg.withDefaults()
	sum := Summary{SchemaVersion: SummaryVersion, Workers: cfg.Workers, Tuples: cfg.Tuples}

	proxies := make([]*chaos.Proxy, cfg.Workers)
	defer func() {
		for _, p := range proxies {
			if p != nil {
				p.Close()
			}
		}
	}()

	ops := make([]runtime.Operator, cfg.Workers)
	for i := range ops {
		ops[i] = runtime.Identity()
	}

	var gapMu sync.Mutex
	var lastRelease time.Time
	var maxGap time.Duration

	var evMu sync.Mutex
	events := map[string]int{}
	var replayed int

	payload := make([]byte, cfg.Payload)
	source := runtime.ConstantSource(payload, cfg.Tuples)
	if cfg.Rate > 0 {
		// Pace in small batches: fine enough that faults land mid-stream,
		// coarse enough that the sleep overhead is negligible.
		const batch = 64
		pace := time.Duration(float64(batch) / float64(cfg.Rate) * float64(time.Second))
		base := source
		source = func(seq uint64) ([]byte, bool) {
			if seq > 0 && seq%batch == 0 {
				time.Sleep(pace)
			}
			return base(seq)
		}
	}
	region, err := runtime.NewRegion(runtime.RegionConfig{
		Operators:      ops,
		Source:         source,
		SampleInterval: 20 * time.Millisecond,
		Sink: func(t transport.Tuple, conn int) {
			now := time.Now()
			gapMu.Lock()
			if !lastRelease.IsZero() {
				if g := now.Sub(lastRelease); g > maxGap {
					maxGap = g
				}
			}
			lastRelease = now
			gapMu.Unlock()
		},
		OnConnEvent: func(ev runtime.ConnEvent) {
			evMu.Lock()
			events[ev.Kind]++
			if ev.Kind == "replay" {
				replayed += ev.Tuples
			}
			evMu.Unlock()
		},
		Recovery: runtime.RecoveryConfig{
			Enabled:           true,
			WatermarkInterval: 2 * time.Millisecond,
			StallWindow:       cfg.StallWindow,
			MaxReadmits:       cfg.MaxReadmits,
			Redial: &transport.RedialPolicy{
				Base:   5 * time.Millisecond,
				Max:    100 * time.Millisecond,
				Jitter: 0.2,
			},
		},
		Timeouts: runtime.Timeouts{
			Dial:         2 * time.Second,
			Handshake:    time.Second,
			Probe:        200 * time.Millisecond,
			ControlRead:  5 * time.Second,
			ControlWrite: time.Second,
			SendStall:    cfg.SendStall,
		},
		WrapWorkerAddr: func(worker int, addr string) string {
			p, perr := chaos.NewProxy(addr)
			if perr != nil {
				return addr // dial fails loudly later; never happens on loopback
			}
			proxies[worker] = p
			return p.Addr()
		},
	})
	if err != nil {
		return sum, fmt.Errorf("soak: build region: %w", err)
	}

	stopInj := make(chan struct{})
	var injWG sync.WaitGroup
	injWG.Add(1)
	go func() {
		defer injWG.Done()
		rng := rand.New(rand.NewSource(cfg.Seed))
		sleep := func(d time.Duration) bool {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-stopInj:
				return false
			case <-t.C:
				return true
			}
		}
		for {
			// Jittered inter-fault gap around the configured mean.
			if !sleep(cfg.FaultEvery/2 + time.Duration(rng.Int63n(int64(cfg.FaultEvery)))) {
				return
			}
			p := proxies[rng.Intn(len(proxies))]
			if p == nil {
				continue
			}
			kind := cfg.Kinds[rng.Intn(len(cfg.Kinds))]
			evMu.Lock()
			sum.Faults++
			evMu.Unlock()
			switch kind {
			case "stall":
				p.SetStall(true)
				healed := sleep(cfg.FaultHold)
				p.SetStall(false)
				if !healed {
					return
				}
			case "drip":
				p.SetSlowDrip(cfg.DripBytesPerSec)
				healed := sleep(cfg.FaultHold)
				p.SetSlowDrip(0)
				if !healed {
					return
				}
			case "kill":
				p.KillActive()
			}
		}
	}()

	start := time.Now()
	res, runErr := region.Run()
	close(stopInj)
	injWG.Wait()

	sum.Released = res.Released
	sum.OrderPreserved = res.OrderPreserved
	sum.Deduped = res.Deduped
	sum.Elapsed = time.Since(start)
	if s := sum.Elapsed.Seconds(); s > 0 {
		sum.TuplesPerSec = float64(res.Released) / s
	}
	gapMu.Lock()
	sum.MaxReleaseGap = maxGap
	gapMu.Unlock()
	evMu.Lock()
	sum.Downs = events["down"]
	sum.Replays = events["replay"]
	sum.ReplayedTuples = replayed
	sum.Rejoins = events["rejoin"]
	sum.Quarantines = events["quarantine"]
	sum.Evictions = events["evicted"]
	sum.Exhausted = events["redial-exhausted"]
	evMu.Unlock()
	return sum, runErr
}

// Spec is the JSON-friendly form of Config: durations in milliseconds so
// specs are hand-writable, plus a schema_version guard. It is the soak entry
// point the experiment dispatcher drives; zero fields take the same defaults
// Run applies.
type Spec struct {
	SchemaVersion   string   `json:"schema_version,omitempty"`
	Workers         int      `json:"workers,omitempty"`
	Tuples          uint64   `json:"tuples,omitempty"`
	Payload         int      `json:"payload,omitempty"`
	Rate            int      `json:"rate,omitempty"`
	Seed            int64    `json:"seed,omitempty"`
	StallWindowMS   int      `json:"stall_window_ms,omitempty"`
	SendStallMS     int      `json:"send_stall_ms,omitempty"`
	FaultEveryMS    int      `json:"fault_every_ms,omitempty"`
	FaultHoldMS     int      `json:"fault_hold_ms,omitempty"`
	MaxReadmits     int      `json:"max_readmits,omitempty"`
	Kinds           []string `json:"kinds,omitempty"`
	DripBytesPerSec int      `json:"drip_bytes_per_sec,omitempty"`
}

// Config converts the spec to a runnable Config.
func (s Spec) Config() Config {
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	return Config{
		Workers:         s.Workers,
		Tuples:          s.Tuples,
		Payload:         s.Payload,
		Rate:            s.Rate,
		Seed:            s.Seed,
		StallWindow:     ms(s.StallWindowMS),
		SendStall:       ms(s.SendStallMS),
		FaultEvery:      ms(s.FaultEveryMS),
		FaultHold:       ms(s.FaultHoldMS),
		MaxReadmits:     s.MaxReadmits,
		Kinds:           s.Kinds,
		DripBytesPerSec: s.DripBytesPerSec,
	}
}

// DecodeSpec parses a JSON soak spec, rejecting unknown schema majors.
func DecodeSpec(data []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("soak: parse spec: %w", err)
	}
	if err := schema.Check("soak spec", s.SchemaVersion, summaryMajor); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// RunSpec decodes a JSON spec and runs it — the callable, spec-driven form
// of the soak loop that worker processes invoke.
func RunSpec(data []byte) (Summary, error) {
	s, err := DecodeSpec(data)
	if err != nil {
		return Summary{}, err
	}
	return Run(s.Config())
}

// DecodeSummary parses an archived summary, rejecting unknown schema majors
// (absent version = legacy v1, as in pre-versioning SOAK_*.json lines).
func DecodeSummary(data []byte) (Summary, error) {
	var sum Summary
	if err := json.Unmarshal(data, &sum); err != nil {
		return Summary{}, fmt.Errorf("soak: parse summary: %w", err)
	}
	if err := schema.Check("soak summary", sum.SchemaVersion, summaryMajor); err != nil {
		return Summary{}, err
	}
	return sum, nil
}
