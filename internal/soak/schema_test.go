package soak

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSummarySchemaRoundTrip(t *testing.T) {
	in := Summary{SchemaVersion: SummaryVersion, Workers: 8, Tuples: 100, Released: 100, OrderPreserved: true}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"schema_version":"1.0"`) {
		t.Fatalf("encoded summary carries no schema_version: %s", data)
	}
	out, err := DecodeSummary(data)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
}

func TestDecodeSummaryVersions(t *testing.T) {
	for _, tc := range []struct {
		name    string
		doc     string
		wantErr string
	}{
		{"current", `{"schema_version":"1.0","workers":4}`, ""},
		{"newer minor", `{"schema_version":"1.3","workers":4}`, ""},
		{"legacy unversioned (old SOAK_*.json)", `{"workers":4,"tuples":10}`, ""},
		{"unknown major", `{"schema_version":"2.0","workers":4}`, "major 2"},
		{"malformed version", `{"schema_version":"abc"}`, "malformed version"},
		{"not json", `{`, "parse summary"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeSummary([]byte(tc.doc))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("DecodeSummary = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("DecodeSummary = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestDecodeSpecVersionsAndConversion(t *testing.T) {
	if _, err := DecodeSpec([]byte(`{"schema_version":"9.0"}`)); err == nil || !strings.Contains(err.Error(), "major 9") {
		t.Fatalf("future-major spec accepted: %v", err)
	}
	s, err := DecodeSpec([]byte(`{"schema_version":"1.0","workers":16,"tuples":500,"stall_window_ms":150,"fault_every_ms":300,"kinds":["kill"],"max_readmits":-1}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	if cfg.Workers != 16 || cfg.Tuples != 500 {
		t.Fatalf("spec conversion lost fields: %+v", cfg)
	}
	if cfg.StallWindow != 150*time.Millisecond || cfg.FaultEvery != 300*time.Millisecond {
		t.Fatalf("millisecond fields not converted: %+v", cfg)
	}
	if cfg.MaxReadmits != -1 || len(cfg.Kinds) != 1 || cfg.Kinds[0] != "kill" {
		t.Fatalf("spec conversion wrong: %+v", cfg)
	}
}
