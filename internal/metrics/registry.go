package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind distinguishes the three instrument families.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// DefBuckets are the default histogram bucket upper bounds (seconds),
// matching the conventional Prometheus client defaults.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Registry holds metric families and renders them in registration order, so
// successive scrapes are diffable.
type Registry struct {
	mu       sync.RWMutex
	families []*family
	byName   map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one named metric with a fixed kind and label-name set.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histogram upper bounds, ascending, +Inf implicit

	mu    sync.RWMutex
	order []*series
	bySig map[string]*series
}

// series is one label-value combination of a family. Counter and gauge
// values are float64 bits in an atomic word; histograms add per-bucket
// counts and a sum.
type series struct {
	labelValues []string
	bits        atomic.Uint64

	counts  []atomic.Uint64 // len(buckets)+1; last is +Inf
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// addFloat atomically adds v to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// validName reports whether s is a legal Prometheus metric name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// validLabel reports whether s is a legal label name (no colons).
func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// family registers (or retrieves) a metric family. Re-registration with a
// different kind or label set panics: two components disagreeing about what
// a name means is a bug to surface, not to paper over.
func (r *Registry) family(name, help string, kind Kind, labels []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabel(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("metrics: %q re-registered as %v, was %v", name, kind, f.kind))
		}
		if len(f.labels) != len(labels) {
			panic(fmt.Sprintf("metrics: %q re-registered with %d labels, was %d", name, len(labels), len(f.labels)))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("metrics: %q re-registered with label %q, was %q", name, labels[i], f.labels[i]))
			}
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		kind:   kind,
		labels: append([]string(nil), labels...),
		bySig:  make(map[string]*series),
	}
	if kind == KindHistogram {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		bs := append([]float64(nil), buckets...)
		sort.Float64s(bs)
		// Drop duplicates and a trailing +Inf (implicit).
		out := bs[:0]
		for i, b := range bs {
			if math.IsInf(b, +1) {
				continue
			}
			if i > 0 && b == bs[i-1] {
				continue
			}
			out = append(out, b)
		}
		f.buckets = out
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// sig builds the lookup key for a label-value combination. Length-prefixed
// so no value byte sequence can collide with another combination.
func sig(values []string) string {
	n := 0
	for _, v := range values {
		n += len(v) + 4
	}
	b := make([]byte, 0, n)
	for _, v := range values {
		b = append(b, byte(len(v)), byte(len(v)>>8), byte(len(v)>>16), byte(len(v)>>24))
		b = append(b, v...)
	}
	return string(b)
}

// get returns the series for the given label values, creating it on first
// use. The fast path is a read-locked map hit.
func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := sig(values)
	f.mu.RLock()
	s, ok := f.bySig[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.bySig[key]; ok {
		return s
	}
	s = &series{labelValues: append([]string(nil), values...)}
	if f.kind == KindHistogram {
		s.counts = make([]atomic.Uint64, len(f.buckets)+1)
	}
	f.bySig[key] = s
	f.order = append(f.order, s)
	return s
}

// Counter is a monotone non-decreasing value. Negative or NaN deltas are
// ignored so the monotonicity contract survives buggy callers.
type Counter struct{ s *series }

// Add increments the counter by v (v <= 0 and NaN are dropped).
func (c *Counter) Add(v float64) {
	if !(v > 0) {
		return
	}
	addFloat(&c.s.bits, v)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.s.bits.Load()) }

// Gauge is a value that can move both ways.
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v float64) { g.s.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) { addFloat(&g.s.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.bits.Load()) }

// Histogram accumulates observations into cumulative buckets.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one observation. NaN lands in the +Inf bucket.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v)
	h.s.counts[i].Add(1)
	addFloat(&h.s.sumBits, v)
	h.s.count.Add(1)
}

// Count returns how many observations were recorded.
func (h *Histogram) Count() uint64 { return h.s.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.s.sumBits.Load()) }

// CounterVec is a counter family with labels; resolve children once with
// With and hold the handle on the hot path.
type CounterVec struct{ f *family }

// With returns the child counter for the given label values.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{s: v.f.get(labelValues)}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &Gauge{s: v.f.get(labelValues)}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return &Histogram{s: v.f.get(labelValues), buckets: v.f.buckets}
}

// Counter registers (or retrieves) a label-less counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, KindCounter, nil, nil)
	return &Counter{s: f.get(nil)}
}

// CounterVec registers (or retrieves) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, KindCounter, labelNames, nil)}
}

// Gauge registers (or retrieves) a label-less gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, KindGauge, nil, nil)
	return &Gauge{s: f.get(nil)}
}

// GaugeVec registers (or retrieves) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, KindGauge, labelNames, nil)}
}

// Histogram registers (or retrieves) a label-less histogram. buckets are
// upper bounds in ascending order; nil selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, KindHistogram, nil, buckets)
	return &Histogram{s: f.get(nil), buckets: f.buckets}
}

// HistogramVec registers (or retrieves) a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, KindHistogram, labelNames, buckets)}
}

// Sample is one flattened scrape value; histograms expand into _bucket,
// _sum and _count samples as in the exposition format.
type Sample struct {
	Name        string
	LabelNames  []string
	LabelValues []string
	Value       float64
}

// Samples returns every current value, families in registration order.
func (r *Registry) Samples() []Sample {
	r.mu.RLock()
	fams := append([]*family(nil), r.families...)
	r.mu.RUnlock()
	var out []Sample
	for _, f := range fams {
		f.mu.RLock()
		series := append([]*series(nil), f.order...)
		f.mu.RUnlock()
		for _, s := range series {
			switch f.kind {
			case KindHistogram:
				le := append([]string(nil), f.labels...)
				le = append(le, "le")
				cum := uint64(0)
				for i := range s.counts {
					cum += s.counts[i].Load()
					bound := math.Inf(+1)
					if i < len(f.buckets) {
						bound = f.buckets[i]
					}
					lv := append(append([]string(nil), s.labelValues...), formatFloat(bound))
					out = append(out, Sample{Name: f.name + "_bucket", LabelNames: le, LabelValues: lv, Value: float64(cum)})
				}
				out = append(out,
					Sample{Name: f.name + "_sum", LabelNames: f.labels, LabelValues: s.labelValues, Value: math.Float64frombits(s.sumBits.Load())},
					Sample{Name: f.name + "_count", LabelNames: f.labels, LabelValues: s.labelValues, Value: float64(s.count.Load())})
			default:
				out = append(out, Sample{
					Name:        f.name,
					LabelNames:  f.labels,
					LabelValues: s.labelValues,
					Value:       math.Float64frombits(s.bits.Load()),
				})
			}
		}
	}
	return out
}

// Value looks up one counter or gauge value by name and alternating
// label-name/label-value pairs; ok=false when the series does not exist.
// Histograms are not addressable through Value — use Samples.
func (r *Registry) Value(name string, labelPairs ...string) (float64, bool) {
	if len(labelPairs)%2 != 0 {
		panic("metrics: Value needs alternating label name/value pairs")
	}
	r.mu.RLock()
	f, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok || f.kind == KindHistogram {
		return 0, false
	}
	values := make([]string, len(f.labels))
	matched := 0
	for i := 0; i < len(labelPairs); i += 2 {
		found := false
		for j, l := range f.labels {
			if l == labelPairs[i] {
				values[j] = labelPairs[i+1]
				found = true
				matched++
			}
		}
		if !found {
			return 0, false
		}
	}
	if matched != len(f.labels) {
		return 0, false
	}
	key := sig(values)
	f.mu.RLock()
	s, ok := f.bySig[key]
	f.mu.RUnlock()
	if !ok {
		return 0, false
	}
	return math.Float64frombits(s.bits.Load()), true
}

// SumAcross sums every series of a counter or gauge family (e.g. a total
// over all connections); ok=false when the family is unknown.
func (r *Registry) SumAcross(name string) (float64, bool) {
	r.mu.RLock()
	f, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok || f.kind == KindHistogram {
		return 0, false
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	total := 0.0
	for _, s := range f.order {
		total += math.Float64frombits(s.bits.Load())
	}
	return total, true
}
