package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceKeepsNewestWhenFull(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Add(Event{Kind: "rebalance", Seq: uint64(i), Conn: -1})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(6+i) {
			t.Fatalf("position %d holds seq %d, want %d (oldest-first)", i, ev.Seq, 6+i)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
}

func TestTraceStampsWallTime(t *testing.T) {
	tr := NewTrace(0) // default capacity
	before := time.Now()
	tr.Add(Event{Kind: "down", Conn: 2})
	ev := tr.Events()[0]
	if ev.Wall.Before(before) || time.Since(ev.Wall) > time.Minute {
		t.Fatalf("wall time not stamped: %v", ev.Wall)
	}
}

func TestTraceJSONDump(t *testing.T) {
	tr := NewTrace(8)
	tr.Add(Event{Kind: "rebalance", Conn: -1, Value: 0.25, Detail: "[500 500]"})
	tr.Add(Event{Kind: "replay", Conn: 1, Seq: 42})
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &dump); err != nil {
		t.Fatalf("dump not valid JSON: %v\n%s", err, sb.String())
	}
	if len(dump.Events) != 2 || dump.Events[0].Kind != "rebalance" || dump.Events[1].Seq != 42 {
		t.Fatalf("dump round-trip mangled events: %+v", dump.Events)
	}
}

func TestTraceConcurrentAdds(t *testing.T) {
	tr := NewTrace(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Add(Event{Kind: "tick"})
			}
		}()
	}
	wg.Wait()
	if got := tr.Len() + int(tr.Dropped()); got != 800 {
		t.Fatalf("retained+dropped = %d, want 800", got)
	}
}
