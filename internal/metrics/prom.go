package metrics

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// formatFloat renders a sample value the way the Prometheus text format
// expects: shortest round-trippable decimal, with NaN, +Inf and -Inf
// spelled literally (strconv already emits exactly those spellings).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	// Byte-wise on purpose: escaping must not re-encode (and thereby
	// corrupt) byte sequences that are not valid UTF-8.
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// escapeLabel escapes a label value: backslash, double quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// writeLabels renders {k="v",...}; nothing when there are no labels.
func writeLabels(w *bufio.Writer, names, values []string) {
	if len(names) == 0 {
		return
	}
	w.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(n)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(values[i]))
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// WritePrometheus renders every registered family in text exposition format
// (version 0.0.4): families in registration order, series in creation
// order, one HELP and TYPE header per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	fams := append([]*family(nil), r.families...)
	r.mu.RUnlock()
	for _, f := range fams {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')

		f.mu.RLock()
		series := append([]*series(nil), f.order...)
		f.mu.RUnlock()
		for _, s := range series {
			switch f.kind {
			case KindHistogram:
				leNames := append(append([]string(nil), f.labels...), "le")
				cum := uint64(0)
				for i := range s.counts {
					cum += s.counts[i].Load()
					bound := math.Inf(+1)
					if i < len(f.buckets) {
						bound = f.buckets[i]
					}
					bw.WriteString(f.name)
					bw.WriteString("_bucket")
					writeLabels(bw, leNames, append(append([]string(nil), s.labelValues...), formatFloat(bound)))
					bw.WriteByte(' ')
					bw.WriteString(strconv.FormatUint(cum, 10))
					bw.WriteByte('\n')
				}
				bw.WriteString(f.name)
				bw.WriteString("_sum")
				writeLabels(bw, f.labels, s.labelValues)
				bw.WriteByte(' ')
				bw.WriteString(formatFloat(math.Float64frombits(s.sumBits.Load())))
				bw.WriteByte('\n')
				bw.WriteString(f.name)
				bw.WriteString("_count")
				writeLabels(bw, f.labels, s.labelValues)
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatUint(s.count.Load(), 10))
				bw.WriteByte('\n')
			default:
				bw.WriteString(f.name)
				writeLabels(bw, f.labels, s.labelValues)
				bw.WriteByte(' ')
				bw.WriteString(formatFloat(math.Float64frombits(s.bits.Load())))
				bw.WriteByte('\n')
			}
		}
	}
	return bw.Flush()
}
