package metrics

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one entry in the balancer decision trace: a rebalance, a counter
// reset, a worker failure, a replay, a rejoin. Conn is the stable worker id
// the event concerns, or -1 for region-wide events.
type Event struct {
	Wall   time.Time `json:"wall"`
	Kind   string    `json:"kind"`
	Conn   int       `json:"conn"`
	Seq    uint64    `json:"seq,omitempty"`
	Value  float64   `json:"value,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// Trace is a fixed-capacity ring buffer of events. Appends never block and
// never allocate once the ring is warm; when full, the oldest event is
// overwritten and counted as dropped. Safe for concurrent use.
type Trace struct {
	mu      sync.Mutex
	buf     []Event
	head    int // index of the oldest event
	n       int // events currently held
	dropped uint64
}

// DefaultTraceCap is the ring capacity used when none is given.
const DefaultTraceCap = 4096

// NewTrace returns a ring holding up to capacity events (<= 0 selects
// DefaultTraceCap).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Trace{buf: make([]Event, capacity)}
}

// Add appends an event, stamping Wall with the current time when zero.
func (t *Trace) Add(ev Event) {
	if ev.Wall.IsZero() {
		ev.Wall = time.Now()
	}
	t.mu.Lock()
	if t.n == len(t.buf) {
		t.buf[t.head] = ev
		t.head = (t.head + 1) % len(t.buf)
		t.dropped++
	} else {
		t.buf[(t.head+t.n)%len(t.buf)] = ev
		t.n++
	}
	t.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.head+i)%len(t.buf)]
	}
	return out
}

// Len returns how many events are retained.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many events were overwritten because the ring was
// full.
func (t *Trace) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// traceDump is the JSON envelope /trace serves.
type traceDump struct {
	Dropped uint64  `json:"dropped"`
	Events  []Event `json:"events"`
}

// WriteJSON dumps the retained events (oldest first) with the drop count.
func (t *Trace) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	dump := traceDump{Dropped: t.dropped, Events: make([]Event, t.n)}
	for i := 0; i < t.n; i++ {
		dump.Events[i] = t.buf[(t.head+i)%len(t.buf)]
	}
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(dump)
}
