package metrics

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeMetricsAndTrace(t *testing.T) {
	r := New()
	r.CounterVec("spe_splitter_tuples_sent_total", "sent", "conn").With("0").Add(12)
	tr := NewTrace(16)
	tr.Add(Event{Kind: "rebalance", Conn: -1, Detail: "[1000]"})

	srv, err := Serve("127.0.0.1:0", r, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	if _, err := parseExposition(body); err != nil {
		t.Fatalf("/metrics not valid exposition: %v\n%s", err, body)
	}
	if !strings.Contains(body, `spe_splitter_tuples_sent_total{conn="0"} 12`) {
		t.Fatalf("/metrics missing sample:\n%s", body)
	}

	body, ctype = get("/trace")
	if ctype != "application/json" {
		t.Fatalf("/trace content type %q", ctype)
	}
	if !strings.Contains(body, `"kind":"rebalance"`) {
		t.Fatalf("/trace missing event:\n%s", body)
	}
}

func TestServeWithoutTraceOmitsEndpoint(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", New(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/trace without a trace returned %d, want 404", resp.StatusCode)
	}
}

func TestServeRejectsBusyPort(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", New(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := Serve(srv.Addr(), New(), nil); err == nil {
		t.Fatal("second server on the same port did not fail")
	}
}
