package metrics

import (
	"math"
	"strings"
	"testing"
)

// FuzzPromEncoder throws hostile label values, help strings and float
// values (including NaN and the infinities) at the text encoder: whatever
// goes in, the output must parse as valid Prometheus exposition and the
// label-value escaping must round-trip.
func FuzzPromEncoder(f *testing.F) {
	f.Add("plain", "help text", 1.5, uint8(0))
	f.Add(`back\slash`, `multi
line`, math.Inf(+1), uint8(1))
	f.Add(`quo"te`, "", math.NaN(), uint8(2))
	f.Add("\n\"\\", "h\\elp\n", -0.0, uint8(3))
	f.Add(strings.Repeat(`\"`, 50), "x", 1e308, uint8(4))
	f.Fuzz(func(t *testing.T, labelVal, help string, value float64, kindSel uint8) {
		r := New()
		switch kindSel % 3 {
		case 0:
			r.CounterVec("fuzz_total", help, "lv").With(labelVal).Add(value)
		case 1:
			r.GaugeVec("fuzz_gauge", help, "lv").With(labelVal).Set(value)
		case 2:
			h := r.HistogramVec("fuzz_seconds", help, []float64{0.1, 1, value}, "lv")
			// Bucket bounds built from the fuzzed value exercise the le
			// formatting; observations exercise bucket search with NaN/Inf.
			h.With(labelVal).Observe(value)
			h.With(labelVal).Observe(0.5)
		}
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		text := sb.String()
		if _, err := parseExposition(text); err != nil {
			t.Fatalf("encoder emitted invalid exposition: %v\ninput label=%q help=%q value=%v\n%s",
				err, labelVal, help, value, text)
		}
		// Escaping must round-trip: unescaping the emitted label value
		// recovers the original bytes.
		if got, ok := extractFirstLabelValue(text); ok {
			if un := unescapeLabel(got); un != labelVal {
				t.Fatalf("label escaping not reversible: %q -> %q -> %q", labelVal, got, un)
			}
		} else if labelVal != "" || !strings.Contains(text, "{") {
			// Every fuzz case registers exactly one labelled family, so a
			// label must appear.
			if !strings.Contains(text, `lv="`) {
				t.Fatalf("no label emitted:\n%s", text)
			}
		}
	})
}

// extractFirstLabelValue pulls the raw (still-escaped) bytes of the first
// lv="..." occurrence.
func extractFirstLabelValue(text string) (string, bool) {
	i := strings.Index(text, `lv="`)
	if i < 0 {
		return "", false
	}
	rest := text[i+len(`lv="`):]
	for j := 0; j < len(rest); j++ {
		switch rest[j] {
		case '\\':
			j++
		case '"':
			return rest[:j], true
		}
	}
	return "", false
}

// unescapeLabel inverts escapeLabel.
func unescapeLabel(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i+1])
			}
			i++
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// FuzzTraceRing drives the ring buffer with arbitrary capacities and event
// scripts: Len+Dropped must always equal the number of adds, and Events
// must come back oldest-first with contiguous sequence numbers.
func FuzzTraceRing(f *testing.F) {
	f.Add(uint8(4), uint8(10))
	f.Add(uint8(0), uint8(3))
	f.Add(uint8(1), uint8(255))
	f.Fuzz(func(t *testing.T, capSel, adds uint8) {
		tr := NewTrace(int(capSel))
		for i := 0; i < int(adds); i++ {
			tr.Add(Event{Kind: "e", Seq: uint64(i)})
		}
		if got := tr.Len() + int(tr.Dropped()); got != int(adds) {
			t.Fatalf("retained %d + dropped %d != adds %d", tr.Len(), tr.Dropped(), adds)
		}
		evs := tr.Events()
		for i := 1; i < len(evs); i++ {
			if evs[i].Seq != evs[i-1].Seq+1 {
				t.Fatalf("events not contiguous oldest-first: %d then %d", evs[i-1].Seq, evs[i].Seq)
			}
		}
		if len(evs) > 0 && evs[len(evs)-1].Seq != uint64(adds)-1 {
			t.Fatalf("newest event seq %d, want %d", evs[len(evs)-1].Seq, adds-1)
		}
	})
}
