// Package metrics is a lightweight, dependency-free metrics registry for
// the streaming runtime: counters, gauges and histograms with atomic hot
// paths, a Prometheus text-format encoder, a structured event-trace ring
// buffer, and an opt-in HTTP server exposing /metrics and /trace.
//
// The paper's whole contribution rests on one low-level signal — the
// per-connection blocking rate of Section 3 — so making that signal (and
// every decision derived from it) continuously observable is not optional
// dressing: Beard & Chamberlain's work on online service-rate approximation
// argues such estimates are only trustworthy when they can be watched and
// validated while the system runs. This package is the measurement
// substrate the rest of the repo instruments itself with.
//
// Design constraints:
//
//   - No external dependencies: the exposition format is hand-encoded
//     Prometheus text (version 0.0.4), parseable by any Prometheus scraper.
//   - Allocation-conscious hot paths: incrementing a Counter or setting a
//     Gauge is a single atomic operation on a pre-resolved handle; label
//     lookup (CounterVec.With) is done once at wiring time, not per tuple.
//   - Float64 values stored as bits in a uint64, so counters can carry
//     seconds as naturally as tuple counts.
//
// Registration is idempotent: asking for an already-registered family with
// the same kind and label names returns the existing one, so independent
// components can share a Registry without coordination. Mismatched
// re-registration panics — it is a programming error, not a runtime
// condition.
package metrics
