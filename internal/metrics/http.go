package metrics

import (
	"fmt"
	"net"
	"net/http"
	"time"
)

// Handler serves the registry at /metrics (Prometheus text format) and,
// when tr is non-nil, the decision trace at /trace (JSON).
func Handler(r *Registry, tr *Trace) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	if tr != nil {
		mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			tr.WriteJSON(w)
		})
	}
	return mux
}

// Server is an opt-in HTTP endpoint for one process's metrics.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve listens on addr (e.g. "127.0.0.1:9090"; ":0" picks a free port) and
// serves Handler(r, tr) until Close.
func Serve(addr string, r *Registry, tr *Trace) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(r, tr), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string {
	return s.ln.Addr().String()
}

// Close stops the server and releases the port.
func (s *Server) Close() error {
	return s.srv.Close()
}
