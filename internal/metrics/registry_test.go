package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("tuples_total", "tuples")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %v, want 5", got)
	}
	c.Add(-3) // ignored: counters are monotone
	c.Add(math.NaN())
	if got := c.Value(); got != 5 {
		t.Fatalf("counter after bad deltas = %v, want 5", got)
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
}

func TestVecChildrenAreDistinctAndStable(t *testing.T) {
	r := New()
	v := r.CounterVec("sent_total", "per conn", "conn")
	v.With("0").Add(3)
	v.With("1").Add(5)
	v.With("0").Add(1)
	if got, ok := r.Value("sent_total", "conn", "0"); !ok || got != 4 {
		t.Fatalf("conn 0 = %v (ok=%v), want 4", got, ok)
	}
	if got, ok := r.Value("sent_total", "conn", "1"); !ok || got != 5 {
		t.Fatalf("conn 1 = %v (ok=%v), want 5", got, ok)
	}
	if sum, ok := r.SumAcross("sent_total"); !ok || sum != 9 {
		t.Fatalf("sum = %v (ok=%v), want 9", sum, ok)
	}
	if _, ok := r.Value("sent_total", "conn", "9"); ok {
		t.Fatal("missing series reported present")
	}
	if _, ok := r.Value("nope"); ok {
		t.Fatal("unknown family reported present")
	}
}

func TestRegistrationIsIdempotentAndCheckskind(t *testing.T) {
	r := New()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	a.Inc()
	b.Inc()
	if got := a.Value(); got != 2 {
		t.Fatalf("re-registered counter diverged: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestInvalidNamesPanic(t *testing.T) {
	r := New()
	for _, bad := range []string{"", "9lives", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q accepted", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("bad label name accepted")
			}
		}()
		r.CounterVec("ok_total", "", "le:gal")
	}()
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100, math.NaN()} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	// Cumulative buckets: le=0.1 -> 2, le=1 -> 3, le=10 -> 4, +Inf -> 6.
	want := map[string]float64{"0.1": 2, "1": 3, "10": 4, "+Inf": 6}
	for _, s := range r.Samples() {
		if s.Name != "lat_seconds_bucket" {
			continue
		}
		le := s.LabelValues[len(s.LabelValues)-1]
		if w, ok := want[le]; ok && s.Value != w {
			t.Fatalf("bucket le=%s = %v, want %v", le, s.Value, w)
		}
	}
}

func TestConcurrentHotPath(t *testing.T) {
	r := New()
	v := r.CounterVec("hits_total", "", "conn")
	g := r.Gauge("level", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := v.With("0")
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Set(float64(i))
			}
		}(w)
	}
	wg.Wait()
	if got, _ := r.Value("hits_total", "conn", "0"); got != 8000 {
		t.Fatalf("concurrent adds lost: %v, want 8000", got)
	}
}
