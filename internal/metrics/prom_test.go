package metrics

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
)

// parseExposition is a strict mini-parser for the Prometheus text format,
// shared with the fuzz target: it returns an error for any line a real
// scraper would reject. It returns the parsed sample lines as name ->
// occurrence count for assertions.
func parseExposition(text string) (map[string]int, error) {
	samples := make(map[string]int)
	if text != "" && !strings.HasSuffix(text, "\n") {
		return nil, fmt.Errorf("exposition does not end in newline")
	}
	for ln, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if text == "" {
			break
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			rest := line[len("# HELP "):]
			sp := strings.IndexByte(rest, ' ')
			name := rest
			if sp >= 0 {
				name = rest[:sp]
			}
			if !validName(name) {
				return nil, fmt.Errorf("line %d: bad name in comment %q", ln+1, line)
			}
			if strings.HasPrefix(line, "# TYPE ") {
				switch rest[sp+1:] {
				case "counter", "gauge", "histogram":
				default:
					return nil, fmt.Errorf("line %d: bad type %q", ln+1, rest[sp+1:])
				}
			}
			continue
		}
		name, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w (%q)", ln+1, err, line)
		}
		samples[name]++
	}
	return samples, nil
}

// parseSampleLine validates `name{l="v",...} value` and returns the name.
func parseSampleLine(line string) (string, error) {
	i := 0
	for i < len(line) && (isNameRune(line[i], i == 0)) {
		i++
	}
	if i == 0 {
		return "", fmt.Errorf("no metric name")
	}
	name := line[:i]
	if i < len(line) && line[i] == '{' {
		i++
		for {
			j := i
			for j < len(line) && isLabelRune(line[j], j == i) {
				j++
			}
			if j == i {
				return "", fmt.Errorf("empty label name")
			}
			if j+1 >= len(line) || line[j] != '=' || line[j+1] != '"' {
				return "", fmt.Errorf("label %q not followed by =\"", line[i:j])
			}
			k := j + 2
			for {
				if k >= len(line) {
					return "", fmt.Errorf("unterminated label value")
				}
				if line[k] == '\\' {
					if k+1 >= len(line) {
						return "", fmt.Errorf("dangling escape")
					}
					switch line[k+1] {
					case '\\', '"', 'n':
					default:
						return "", fmt.Errorf("bad escape \\%c", line[k+1])
					}
					k += 2
					continue
				}
				if line[k] == '"' {
					break
				}
				k++
			}
			i = k + 1
			if i < len(line) && line[i] == ',' {
				i++
				continue
			}
			if i < len(line) && line[i] == '}' {
				i++
				break
			}
			return "", fmt.Errorf("label list not closed")
		}
	}
	if i >= len(line) || line[i] != ' ' {
		return "", fmt.Errorf("no space before value")
	}
	val := line[i+1:]
	if _, err := strconv.ParseFloat(val, 64); err != nil {
		return "", fmt.Errorf("bad value %q", val)
	}
	return name, nil
}

func isNameRune(c byte, first bool) bool {
	alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
	return alpha || (!first && c >= '0' && c <= '9')
}

func isLabelRune(c byte, first bool) bool {
	alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_'
	return alpha || (!first && c >= '0' && c <= '9')
}

func TestWritePrometheusRoundTrips(t *testing.T) {
	r := New()
	r.Counter("plain_total", "a plain counter").Add(3)
	v := r.CounterVec("conn_total", "per-connection", "conn")
	v.With("0").Add(1)
	v.With("1").Add(2)
	g := r.GaugeVec("weird_values", "gauge with hostile values", "what")
	g.With(`quote"back\slash`).Set(math.NaN())
	g.With("new\nline").Set(math.Inf(-1))
	g.With("plain").Set(math.Inf(+1))
	h := r.Histogram("lat_seconds", "latency\nwith newline help \\ and slash", []float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(3)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	names, err := parseExposition(text)
	if err != nil {
		t.Fatalf("exposition rejected: %v\n%s", err, text)
	}
	for name, want := range map[string]int{
		"plain_total":        1,
		"conn_total":         2,
		"weird_values":       3,
		"lat_seconds_bucket": 3, // 0.5, 1, +Inf
		"lat_seconds_sum":    1,
		"lat_seconds_count":  1,
	} {
		if names[name] != want {
			t.Fatalf("%s: %d sample lines, want %d\n%s", name, names[name], want, text)
		}
	}
	for _, must := range []string{
		`weird_values{what="quote\"back\\slash"} NaN`,
		`weird_values{what="new\nline"} -Inf`,
		`weird_values{what="plain"} +Inf`,
		`lat_seconds_bucket{le="+Inf"} 2`,
		"# TYPE lat_seconds histogram",
		`# HELP lat_seconds latency\nwith newline help \\ and slash`,
	} {
		if !strings.Contains(text, must) {
			t.Fatalf("exposition missing %q:\n%s", must, text)
		}
	}
}

func TestEmptyRegistryWritesNothing(t *testing.T) {
	var sb strings.Builder
	if err := New().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("empty registry wrote %q", sb.String())
	}
}
