package runtime

import "sync/atomic"

// spscRing is a bounded lock-free single-producer single-consumer ring of
// mergeItems — the hand-off lane between one connection reader (the producer)
// and the merge loop (the consumer). The reader appends whole ReceiveBatch
// outputs; the merge loop drains into its private per-stream reorder heap.
// Neither side ever takes a lock on this path: the only shared state is the
// head and tail cursors, advanced with atomic stores whose sequential
// consistency gives the cross-goroutine happens-before the race detector
// (and the memory model) require for the slot contents.
//
// Ownership protocol for the BlockRef riding in each item: the producer owns
// the reference until push returns true, then ownership transfers to the
// consumer, which releases it when the item is sunk, deduplicated, or drained
// at teardown. pop zeroes the vacated slot so a ring never pins payload
// blocks for items already handed over.
//
// Capacity is rounded up to a power of two so the cursors can run free
// (monotonically increasing uint64) and slot indexing is a mask.
type spscRing struct {
	mask uint64
	buf  []mergeItem

	// The cursors live on separate cache lines: head is written by the
	// consumer at pop rate, tail by the producer at push rate, and sharing
	// a line would turn every advance into cross-core ping-pong.
	_    [64]byte
	head atomic.Uint64 // next slot to pop; advanced only by the consumer
	_    [64]byte
	tail atomic.Uint64 // next slot to fill; advanced only by the producer
	_    [64]byte
}

// newSPSCRing allocates a ring holding at least capacity items (rounded up
// to a power of two, minimum 2; non-positive asks get the minimum rather
// than converting to a huge unsigned bound).
func newSPSCRing(capacity int) *spscRing {
	c := uint64(2)
	for c < uint64(max(capacity, 2)) {
		c <<= 1
	}
	return &spscRing{mask: c - 1, buf: make([]mergeItem, c)}
}

// capacity returns the ring's true (rounded) capacity.
func (r *spscRing) capacity() int { return len(r.buf) }

// push appends one item. Producer-only. Returns false when the ring is full;
// the caller still owns the item's reference in that case.
func (r *spscRing) push(it mergeItem) bool {
	t := r.tail.Load()
	if t-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = it
	r.tail.Store(t + 1) // publishes the slot write to the consumer
	return true
}

// pop removes the oldest item. Consumer-only. The vacated slot is zeroed so
// the ring does not pin the popped item's payload block.
func (r *spscRing) pop() (mergeItem, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return mergeItem{}, false
	}
	it := r.buf[h&r.mask]
	r.buf[h&r.mask] = mergeItem{}
	r.head.Store(h + 1) // returns the slot to the producer
	return it, true
}

// len reports the current occupancy. Callable from any goroutine; the two
// cursor loads are not a snapshot, so the result is approximate while the
// other side is active (exact from the producer, never above true occupancy
// from the consumer).
func (r *spscRing) len() int {
	t := r.tail.Load()
	h := r.head.Load()
	if t < h {
		// The consumer advanced head between the two loads; the ring was
		// (momentarily) no fuller than empty.
		return 0
	}
	return int(t - h)
}

// full reports whether a push would fail right now. Producer-only (from the
// consumer it may answer a stale yes).
func (r *spscRing) full() bool {
	return r.tail.Load()-r.head.Load() >= uint64(len(r.buf))
}
