package runtime

import (
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"testing"
	"testing/quick"

	"streambalance/internal/transport"
)

func TestSPSCRingCapacityRounding(t *testing.T) {
	cases := []struct{ ask, want int }{
		{-1, 2}, {0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8},
		{1000, 1024}, {1024, 1024}, {1025, 2048},
	}
	for _, c := range cases {
		if got := newSPSCRing(c.ask).capacity(); got != c.want {
			t.Errorf("newSPSCRing(%d).capacity() = %d, want %d", c.ask, got, c.want)
		}
	}
}

// TestSPSCRingWraparoundFIFO drives a tiny ring far past its capacity with
// every push/pop phase alignment, so the cursors wrap the buffer hundreds of
// times while a model slice checks strict FIFO order and the exact
// full/empty boundary behavior.
func TestSPSCRingWraparoundFIFO(t *testing.T) {
	for phase := 0; phase < 5; phase++ {
		r := newSPSCRing(4)
		var model []uint64
		seq := uint64(0)
		rng := rand.New(rand.NewSource(int64(phase)))
		// Pre-load the ring to the phase offset so wraparound happens at
		// different buffer positions in each run.
		for i := 0; i < phase; i++ {
			if !r.push(mergeItem{t: transport.Tuple{Seq: seq}}) {
				t.Fatal("phase preload push failed")
			}
			model = append(model, seq)
			seq++
		}
		for step := 0; step < 2000; step++ {
			if rng.Intn(2) == 0 {
				ok := r.push(mergeItem{t: transport.Tuple{Seq: seq}})
				wantOK := len(model) < r.capacity()
				if ok != wantOK {
					t.Fatalf("phase %d step %d: push ok=%v with occupancy %d/%d", phase, step, ok, len(model), r.capacity())
				}
				if ok {
					model = append(model, seq)
					seq++
				}
				if ok && len(model) == r.capacity() && !r.full() {
					t.Fatalf("phase %d step %d: ring at capacity but full() = false", phase, step)
				}
			} else {
				it, ok := r.pop()
				if wantOK := len(model) > 0; ok != wantOK {
					t.Fatalf("phase %d step %d: pop ok=%v with occupancy %d", phase, step, ok, len(model))
				}
				if ok {
					if it.t.Seq != model[0] {
						t.Fatalf("phase %d step %d: popped seq %d, want %d (FIFO broken)", phase, step, it.t.Seq, model[0])
					}
					model = model[1:]
				}
			}
			if got := r.len(); got != len(model) {
				t.Fatalf("phase %d step %d: len() = %d, want %d", phase, step, got, len(model))
			}
		}
	}
}

// TestSPSCRingPopZeroesSlot pins the ownership hygiene: a popped slot must
// not keep the item's BlockRef reachable through the ring's buffer.
func TestSPSCRingPopZeroesSlot(t *testing.T) {
	r := newSPSCRing(2)
	ref := &transport.BlockRef{}
	r.push(mergeItem{t: transport.Tuple{Seq: 7}, ref: ref})
	if _, ok := r.pop(); !ok {
		t.Fatal("pop failed")
	}
	for i := range r.buf {
		if r.buf[i].ref != nil || r.buf[i].t.Payload != nil {
			t.Fatalf("slot %d still pins ref/payload after pop", i)
		}
	}
}

// TestSPSCRingQuickInvariant property-checks random operation sequences on
// random capacities against a slice model with testing/quick: acceptance at
// the full boundary, emptiness at the empty boundary, FIFO order, and
// conservation (pushed == popped + resident) must all hold.
func TestSPSCRingQuickInvariant(t *testing.T) {
	check := func(capAsk uint8, ops []bool) bool {
		r := newSPSCRing(int(capAsk % 64))
		var model []uint64
		var pushed, popped uint64
		seq := uint64(0)
		for _, isPush := range ops {
			if isPush {
				ok := r.push(mergeItem{t: transport.Tuple{Seq: seq}})
				if ok != (len(model) < r.capacity()) {
					return false
				}
				if ok {
					model = append(model, seq)
					pushed++
					seq++
				}
			} else {
				it, ok := r.pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if it.t.Seq != model[0] {
						return false
					}
					model = model[1:]
					popped++
				}
			}
		}
		return pushed == popped+uint64(r.len()) && r.len() == len(model)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestSPSCRingConcurrentFIFO runs the real two-goroutine protocol — one
// producer spinning on full, one consumer spinning on empty — over a tiny
// ring, asserting strict FIFO delivery. Under -race this validates the
// cursor stores' happens-before: any unsynchronized slot access between the
// goroutines is a reported race.
func TestSPSCRingConcurrentFIFO(t *testing.T) {
	const n = 200000
	r := newSPSCRing(8)
	done := make(chan error, 1)
	go func() {
		for seq := uint64(0); seq < n; {
			if r.push(mergeItem{t: transport.Tuple{Seq: seq}}) {
				seq++
			} else {
				runtime.Gosched()
			}
		}
	}()
	go func() {
		for want := uint64(0); want < n; {
			it, ok := r.pop()
			if !ok {
				runtime.Gosched()
				continue
			}
			if it.t.Seq != want {
				done <- fmt.Errorf("popped seq %d, want %d (FIFO order broken)", it.t.Seq, want)
				return
			}
			want++
		}
		done <- nil
	}()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestSPSCRingRefcountInvariant pushes real ReceiveBatch output — tuples
// carved from pool-backed blocks with live reference counts — through a
// ring with random pop interleaving, and checks the conservation law the
// merger's exactly-once release depends on: at every step, the block's
// reference count equals the tuples still unreleased (in flight in the
// ring, in the consumer's hand, or not yet pushed).
func TestSPSCRingRefcountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(64)
		var wire []byte
		for seq := 0; seq < n; seq++ {
			var err error
			wire, err = transport.AppendFrame(wire, transport.Tuple{Seq: uint64(seq), Payload: []byte("payload")})
			if err != nil {
				t.Fatal(err)
			}
		}
		client, server := net.Pipe()
		go func() {
			client.Write(wire)
			client.Close()
		}()
		rc := transport.NewReceiver(server)
		batch, ref, err := rc.ReceiveBatch(nil, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != n {
			t.Fatalf("trial %d: decoded %d of %d tuples", trial, len(batch), n)
		}
		if got := ref.Refs(); got != int64(n) {
			t.Fatalf("trial %d: fresh batch holds %d refs, want %d", trial, got, n)
		}

		r := newSPSCRing(2 + rng.Intn(8))
		pushed, released := 0, 0
		inRing := 0
		for pushed < n || inRing > 0 {
			if pushed < n && rng.Intn(2) == 0 {
				if r.push(mergeItem{t: batch[pushed], ref: ref}) {
					pushed++
					inRing++
				}
			} else if inRing > 0 {
				it, ok := r.pop()
				if !ok {
					t.Fatalf("trial %d: pop failed with %d in ring", trial, inRing)
				}
				inRing--
				it.ref.Release()
				released++
			}
			// Conservation: unreleased references == tuples not yet
			// released, whether still unpushed or riding the ring.
			if got, want := ref.Refs(), int64(n-released); got != want {
				t.Fatalf("trial %d: %d refs live, want %d (pushed %d released %d)", trial, got, want, pushed, released)
			}
		}
		if got := ref.Refs(); got != 0 {
			t.Fatalf("trial %d: %d refs leak after full release", trial, got)
		}
		server.Close()
	}
}

// TestHeadIndexOrdering drives the release tournament's indexed min-heap
// with random key updates (including the empty sentinel) and checks min()
// against a brute-force scan with the merger's exact (key, id) tie-break.
func TestHeadIndexOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(12)
		h := newHeadIndex(n)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = headIndexEmpty
		}
		bruteMin := func() int {
			best, bestKey := -1, uint64(headIndexEmpty)
			for id, k := range keys {
				if k < bestKey || (k == bestKey && k != headIndexEmpty && (best == -1 || id < best)) {
					best, bestKey = id, k
				}
			}
			return best
		}
		for step := 0; step < 300; step++ {
			id := rng.Intn(n)
			var k uint64
			switch rng.Intn(4) {
			case 0:
				k = headIndexEmpty // stream drained
			default:
				k = uint64(rng.Intn(50))
			}
			keys[id] = k
			h.update(id, k)
			if got, want := h.min(), bruteMin(); got != want {
				t.Fatalf("trial %d step %d: min() = %d, want %d (keys %v)", trial, step, got, want, keys)
			}
		}
	}
}
