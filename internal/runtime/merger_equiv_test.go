package runtime

import (
	"math/rand"
	"testing"

	"streambalance/internal/transport"
)

// insertSorted is the pre-heap reorder-queue insert — O(n) sorted-slice
// insertion with eager duplicate rejection — kept only as the reference
// implementation for the equivalence test below. It places t into q keeping
// ascending sequence order, reporting ok=false when the sequence is already
// queued.
func insertSorted(q []transport.Tuple, t transport.Tuple) ([]transport.Tuple, bool) {
	i := len(q)
	for i > 0 && q[i-1].Seq > t.Seq {
		i--
	}
	if i > 0 && q[i-1].Seq == t.Seq {
		return q, false
	}
	q = append(q, transport.Tuple{})
	copy(q[i+1:], q[i:])
	q[i] = t
	return q, true
}

// releaseRec records one released tuple: its sequence and which connection's
// queue released it (the attribution the sink sees).
type releaseRec struct {
	seq  uint64
	conn int
}

// mergeEngine is a single-threaded model of the merger's insert/release
// logic, parameterized by the reorder-queue implementation. Both engines run
// the merge loop's exact release discipline — sweep stale heads below the
// watermark, release the lowest-id queue whose head equals the watermark,
// restart — so feeding both the same arrival interleaving isolates the queue
// data structure as the only difference.
type mergeEngine struct {
	arrive func(conn int, t transport.Tuple)
	state  func() (rel []releaseRec, dedup int)
}

func newRefEngine(conns int) *mergeEngine {
	queues := make([][]transport.Tuple, conns)
	var next uint64
	var rel []releaseRec
	dedup := 0
	merge := func() {
		for {
			released := false
			for id := range queues {
				for len(queues[id]) > 0 && queues[id][0].Seq < next {
					queues[id] = queues[id][1:]
					dedup++
				}
				if len(queues[id]) > 0 && queues[id][0].Seq == next {
					rel = append(rel, releaseRec{queues[id][0].Seq, id})
					queues[id] = queues[id][1:]
					next++
					released = true
					break
				}
			}
			if !released {
				return
			}
		}
	}
	return &mergeEngine{
		arrive: func(conn int, t transport.Tuple) {
			if t.Seq < next {
				dedup++
			} else if q, ok := insertSorted(queues[conn], t); ok {
				queues[conn] = q
			} else {
				dedup++
			}
			merge()
		},
		state: func() ([]releaseRec, int) { return rel, dedup },
	}
}

func newHeapEngine(conns int) *mergeEngine {
	queues := make([]seqHeap, conns)
	var next uint64
	var rel []releaseRec
	dedup := 0
	merge := func() {
		for {
			released := false
			for id := range queues {
				for {
					h, ok := queues[id].head()
					if !ok || h.t.Seq >= next {
						break
					}
					queues[id].popMin()
					dedup++
				}
				if h, ok := queues[id].head(); ok && h.t.Seq == next {
					queues[id].popMin()
					rel = append(rel, releaseRec{h.t.Seq, id})
					next++
					released = true
					break
				}
			}
			if !released {
				return
			}
		}
	}
	return &mergeEngine{
		arrive: func(conn int, t transport.Tuple) {
			if t.Seq < next {
				dedup++
			} else {
				queues[conn].push(mergeItem{t: t})
			}
			merge()
		},
		state: func() ([]releaseRec, int) { return rel, dedup },
	}
}

// newBatchedEngine models the batch-ingest merger: arrivals accumulate in a
// per-connection pending buffer and are ingested whole — read-time dedup
// against the watermark, then heap pushes, then one merge sweep — when the
// buffer reaches that connection's batch size (randomized per engine,
// including 1, which degenerates to per-tuple ingest). flush must be called
// after the last arrival, exactly as a real reader drains its final partial
// batch at stream end.
type batchedEngine struct {
	*mergeEngine
	flush func()
}

func newBatchedEngine(conns int, batchSize func(conn int) int) *batchedEngine {
	queues := make([]seqHeap, conns)
	pending := make([][]transport.Tuple, conns)
	var next uint64
	var rel []releaseRec
	dedup := 0
	merge := func() {
		for {
			released := false
			for id := range queues {
				for {
					h, ok := queues[id].head()
					if !ok || h.t.Seq >= next {
						break
					}
					queues[id].popMin()
					dedup++
				}
				if h, ok := queues[id].head(); ok && h.t.Seq == next {
					queues[id].popMin()
					rel = append(rel, releaseRec{h.t.Seq, id})
					next++
					released = true
					break
				}
			}
			if !released {
				return
			}
		}
	}
	ingest := func(conn int) {
		for _, t := range pending[conn] {
			if t.Seq < next {
				dedup++
			} else {
				queues[conn].push(mergeItem{t: t})
			}
		}
		pending[conn] = pending[conn][:0]
		merge()
	}
	return &batchedEngine{
		mergeEngine: &mergeEngine{
			arrive: func(conn int, t transport.Tuple) {
				pending[conn] = append(pending[conn], t)
				if len(pending[conn]) >= batchSize(conn) {
					ingest(conn)
				}
			},
			state: func() ([]releaseRec, int) { return rel, dedup },
		},
		flush: func() {
			for conn := range pending {
				if len(pending[conn]) > 0 {
					ingest(conn)
				}
			}
		},
	}
}

// TestMergerQueueEquivalence feeds identical randomized arrival
// interleavings — including same-queue and cross-queue duplicates — to the
// old sorted-slice engine and the new heap engine, and requires the exact
// same released (seq, conn) sequence and the exact same duplicate count.
// This pins the heap's lazy duplicate handling to the eager reference: one
// copy of each sequence releases, every surplus copy is counted once.
func TestMergerQueueEquivalence(t *testing.T) {
	type ev struct {
		conn int
		t    transport.Tuple
	}
	for trial := 0; trial < 300; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*7919 + 17))
		conns := 1 + rng.Intn(6)
		n := 1 + rng.Intn(300)

		evs := make([]ev, 0, n*2)
		for seq := 0; seq < n; seq++ {
			evs = append(evs, ev{rng.Intn(conns), transport.Tuple{Seq: uint64(seq)}})
		}
		// Duplicate a random subset onto random connections at random
		// positions — before or after the original, same conn or another.
		dups := 0
		for seq := 0; seq < n; seq++ {
			if rng.Intn(4) != 0 {
				continue
			}
			dups++
			e := ev{rng.Intn(conns), transport.Tuple{Seq: uint64(seq)}}
			pos := rng.Intn(len(evs) + 1)
			evs = append(evs, ev{})
			copy(evs[pos+1:], evs[pos:])
			evs[pos] = e
		}

		ref := newRefEngine(conns)
		heap := newHeapEngine(conns)
		for _, e := range evs {
			ref.arrive(e.conn, e.t)
			heap.arrive(e.conn, e.t)
		}

		refRel, refDedup := ref.state()
		heapRel, heapDedup := heap.state()

		if len(refRel) != n {
			t.Fatalf("trial %d: reference released %d of %d", trial, len(refRel), n)
		}
		for i, r := range refRel {
			if r.seq != uint64(i) {
				t.Fatalf("trial %d: reference release %d has seq %d", trial, i, r.seq)
			}
		}
		if refDedup != dups {
			t.Fatalf("trial %d: reference deduped %d, injected %d", trial, refDedup, dups)
		}

		if len(heapRel) != len(refRel) {
			t.Fatalf("trial %d: heap released %d, reference %d", trial, len(heapRel), len(refRel))
		}
		for i := range refRel {
			if heapRel[i] != refRel[i] {
				t.Fatalf("trial %d: release %d diverges: heap %+v, reference %+v",
					trial, i, heapRel[i], refRel[i])
			}
		}
		if heapDedup != refDedup {
			t.Fatalf("trial %d: heap deduped %d, reference %d", trial, heapDedup, refDedup)
		}
	}
}

// TestMergerBatchIngestEquivalence runs the batch-ingest engine against the
// per-tuple reference on identical arrival interleavings with injected
// duplicates, across randomized per-connection batch sizes including 1.
// Batching delays when a tuple reaches its reorder queue, which may
// legitimately change *which connection* a duplicated sequence releases
// from — so unlike the queue-implementation equivalence above, the contract
// here is the externally observable one: every sequence 0..n-1 releases
// exactly once in order (gapless exactly-once), and the total duplicate
// count matches the reference exactly.
func TestMergerBatchIngestEquivalence(t *testing.T) {
	type ev struct {
		conn int
		t    transport.Tuple
	}
	for trial := 0; trial < 300; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*104729 + 31))
		conns := 1 + rng.Intn(6)
		n := 1 + rng.Intn(300)

		evs := make([]ev, 0, n*2)
		for seq := 0; seq < n; seq++ {
			evs = append(evs, ev{rng.Intn(conns), transport.Tuple{Seq: uint64(seq)}})
		}
		dups := 0
		for seq := 0; seq < n; seq++ {
			if rng.Intn(4) != 0 {
				continue
			}
			dups++
			e := ev{rng.Intn(conns), transport.Tuple{Seq: uint64(seq)}}
			pos := rng.Intn(len(evs) + 1)
			evs = append(evs, ev{})
			copy(evs[pos+1:], evs[pos:])
			evs[pos] = e
		}

		// Randomized batch size per connection, 1..64 with 1 forced into
		// rotation so the degenerate per-tuple case stays covered.
		sizes := make([]int, conns)
		for i := range sizes {
			if rng.Intn(5) == 0 {
				sizes[i] = 1
			} else {
				sizes[i] = 1 + rng.Intn(64)
			}
		}

		ref := newRefEngine(conns)
		batched := newBatchedEngine(conns, func(conn int) int { return sizes[conn] })
		for _, e := range evs {
			ref.arrive(e.conn, e.t)
			batched.arrive(e.conn, e.t)
		}
		batched.flush()

		refRel, refDedup := ref.state()
		batRel, batDedup := batched.state()

		if len(batRel) != n {
			t.Fatalf("trial %d (sizes %v): batched released %d of %d", trial, sizes, len(batRel), n)
		}
		for i, r := range batRel {
			if r.seq != uint64(i) {
				t.Fatalf("trial %d (sizes %v): release %d has seq %d, want %d",
					trial, sizes, i, r.seq, i)
			}
		}
		if len(refRel) != n {
			t.Fatalf("trial %d: reference released %d of %d", trial, len(refRel), n)
		}
		if batDedup != refDedup {
			t.Fatalf("trial %d (sizes %v): batched deduped %d, reference %d",
				trial, sizes, batDedup, refDedup)
		}
		if batDedup != dups {
			t.Fatalf("trial %d (sizes %v): deduped %d, injected %d", trial, sizes, batDedup, dups)
		}
	}
}

// TestSeqHeapOrdering exercises the heap directly: random pushes with
// duplicates must pop in non-decreasing sequence order, and head must always
// agree with the next pop.
func TestSeqHeapOrdering(t *testing.T) {
	for trial := 0; trial < 100; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 101))
		var h seqHeap
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			h.push(mergeItem{t: transport.Tuple{Seq: uint64(rng.Intn(n))}})
		}
		var last uint64
		for i := 0; len(h) > 0; i++ {
			head, ok := h.head()
			if !ok {
				t.Fatal("head reported empty on non-empty heap")
			}
			got := h.popMin()
			if got.t.Seq != head.t.Seq {
				t.Fatalf("pop %d: head %d but popped %d", i, head.t.Seq, got.t.Seq)
			}
			if i > 0 && got.t.Seq < last {
				t.Fatalf("pop %d: %d after %d", i, got.t.Seq, last)
			}
			last = got.t.Seq
		}
	}
}
