package runtime

import (
	"sync/atomic"
	"testing"
	"time"

	"streambalance/internal/testutil"
	"streambalance/internal/transport"
)

// TestMergerCloseRacesInFlightBatch closes the merger while readers are
// mid-batch with a deliberately tiny ring — the shape where a reader can be
// parked on a full ring, holding block references for the rest of its batch,
// at the instant teardown begins. Close must wake it, the reader must release
// its in-hand references and exit, and drainLeftovers must return everything
// still queued: no goroutine leak, no double release (the transport pool
// panics on refcount underflow), across a spread of race timings.
func TestMergerCloseRacesInFlightBatch(t *testing.T) {
	for _, delay := range []time.Duration{0, 50 * time.Microsecond, 200 * time.Microsecond, time.Millisecond} {
		var released atomic.Uint64
		m, err := NewMerger(2, 16, func(transport.Tuple, int) {
			released.Add(1)
		})
		if err != nil {
			t.Fatal(err)
		}
		m.SetRingCap(2)
		m.Start()

		c0 := dialWorkerConn(t, m.Addr(), 0)
		c1 := dialWorkerConn(t, m.Addr(), 1)
		// Both streams burst: conn 0 in order (releasable, so the merge loop
		// is busy sinking), conn 1 with a leading gap (unreleasable, so its
		// backlog climbs toward the cap while Close fires).
		go func() {
			var frame []byte
			for seq := uint64(0); seq < 4000; seq += 2 {
				frame, _ = transport.AppendFrame(frame[:0], transport.Tuple{Seq: seq})
				if _, err := c0.Write(frame); err != nil {
					return
				}
			}
		}()
		go func() {
			var frame []byte
			for seq := uint64(3); seq < 4000; seq += 2 {
				frame, _ = transport.AppendFrame(frame[:0], transport.Tuple{Seq: seq})
				if _, err := c1.Write(frame); err != nil {
					return
				}
			}
		}()

		time.Sleep(delay)
		m.Close()

		done := make(chan error, 1)
		go func() { done <- m.Wait() }()
		select {
		case <-done:
			// A closed merge reports an error; the contract under test is
			// prompt, leak-free teardown, not the verdict.
		case <-time.After(5 * time.Second):
			t.Fatalf("delay %v: merger did not tear down after Close", delay)
		}
		c0.Close()
		c1.Close()
		testutil.ExpectNoModuleGoroutines(t, 2*time.Second)
	}
}

// TestMergerCloseRacesBackpressureParkedReader parks a reader at its
// back-pressure cap for real — a slow sink keeps the merge loop busy (so
// mergeStuck stays clear and the cap is enforced) while the reader outruns
// the releases — then closes the merger. The parked reader must observe
// closed on wake, release the rest of its batch, and exit; nothing may stay
// parked on a condvar nobody will signal again.
func TestMergerCloseRacesBackpressureParkedReader(t *testing.T) {
	m, err := NewMerger(2, 8, func(transport.Tuple, int) {
		time.Sleep(200 * time.Microsecond) // slow consumer: backlog presses the cap
	})
	if err != nil {
		t.Fatal(err)
	}
	m.SetRingCap(2)
	m.Start()

	c0 := dialWorkerConn(t, m.Addr(), 0)
	c1 := dialWorkerConn(t, m.Addr(), 1) // silent second stream keeps the merge live
	stop := make(chan struct{})
	go func() {
		var frame []byte
		for seq := uint64(0); ; seq++ {
			select {
			case <-stop:
				return
			default:
			}
			frame, _ = transport.AppendFrame(frame[:0], transport.Tuple{Seq: seq})
			if _, err := c0.Write(frame); err != nil {
				return
			}
		}
	}()

	// Wait until the reader is actually parked (cap wait or full ring —
	// both are condvar parks teardown must break).
	deadline := time.Now().Add(2 * time.Second)
	for m.parks[0].parked.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if m.parks[0].parked.Load() == 0 {
		t.Fatal("reader never parked against the slow sink")
	}

	m.Close()
	done := make(chan error, 1)
	go func() { done <- m.Wait() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("merger did not tear down with a cap-parked reader")
	}
	close(stop)
	c0.Close()
	c1.Close()
	testutil.ExpectNoModuleGoroutines(t, 2*time.Second)
}
