package runtime

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"streambalance/internal/core"
	"streambalance/internal/transport"
)

func TestOperators(t *testing.T) {
	in := transport.Tuple{Seq: 7, Payload: []byte("x")}
	if got := Identity().Process(in); got.Seq != 7 || string(got.Payload) != "x" {
		t.Fatalf("Identity changed tuple: %+v", got)
	}
	doubled := OperatorFunc(func(tp transport.Tuple) transport.Tuple {
		tp.Seq *= 2
		return tp
	})
	if got := doubled.Process(in); got.Seq != 14 {
		t.Fatalf("OperatorFunc result seq = %d, want 14", got.Seq)
	}
}

func TestSpinOperator(t *testing.T) {
	op := NewSpinOperator(1000)
	if op.Multiplies() != 1000 {
		t.Fatalf("Multiplies = %d, want 1000", op.Multiplies())
	}
	in := transport.Tuple{Seq: 3, Payload: []byte("y")}
	if got := op.Process(in); got.Seq != in.Seq || string(got.Payload) != "y" {
		t.Fatalf("SpinOperator changed tuple: %+v", got)
	}
	op.SetMultiplies(5)
	if op.Multiplies() != 5 {
		t.Fatalf("Multiplies = %d after set, want 5", op.Multiplies())
	}
	// Cost must scale with the multiplier (coarse check, generous margin).
	cheap := NewSpinOperator(1_000)
	costly := NewSpinOperator(10_000_000)
	start := time.Now()
	cheap.Process(in)
	cheapTime := time.Since(start)
	start = time.Now()
	costly.Process(in)
	costlyTime := time.Since(start)
	if costlyTime < 10*cheapTime {
		t.Fatalf("10000x multiplies only %v vs %v: spin not costing", costlyTime, cheapTime)
	}
}

func TestRegionValidation(t *testing.T) {
	if _, err := NewRegion(RegionConfig{}); err == nil {
		t.Fatal("empty region config accepted")
	}
	if _, err := NewRegion(RegionConfig{Operators: []Operator{Identity()}}); err == nil {
		t.Fatal("region without source accepted")
	}
	if _, err := NewMerger(0, 0, func(transport.Tuple, int) {}); err == nil {
		t.Fatal("merger with zero workers accepted")
	}
	if _, err := NewMerger(1, 0, nil); err == nil {
		t.Fatal("merger without sink accepted")
	}
	if _, err := NewSplitter(SplitterConfig{}); err == nil {
		t.Fatal("splitter without workers accepted")
	}
	if _, err := NewSplitter(SplitterConfig{WorkerAddrs: []string{"127.0.0.1:1"}}); err == nil {
		t.Fatal("splitter without source accepted")
	}
}

func TestRegionEndToEndOrdering(t *testing.T) {
	const tuples = 20_000
	var mu sync.Mutex
	var seqs []uint64
	region, err := NewRegion(RegionConfig{
		Operators: []Operator{Identity(), Identity(), Identity()},
		Source:    ConstantSource([]byte("payload"), tuples),
		Sink: func(tp transport.Tuple, conn int) {
			mu.Lock()
			seqs = append(seqs, tp.Seq)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := region.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Released != tuples {
		t.Fatalf("released %d tuples, want %d", res.Released, tuples)
	}
	if !res.OrderPreserved {
		t.Fatal("sequential semantics violated")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, seq := range seqs {
		if seq != uint64(i) {
			t.Fatalf("sink position %d got seq %d", i, seq)
		}
	}
	var sent int64
	for _, c := range res.PerConnSent {
		sent += c
	}
	if sent != tuples {
		t.Fatalf("per-conn sent sums to %d, want %d", sent, tuples)
	}
}

func TestRegionSkewedWorkReordersThroughMerger(t *testing.T) {
	// One worker is far more expensive: its tuples arrive at the merger
	// late, forcing genuine reordering, which the merger must hide.
	const tuples = 3_000
	region, err := NewRegion(RegionConfig{
		Operators: []Operator{
			NewSpinOperator(200_000),
			NewSpinOperator(100),
			NewSpinOperator(100),
		},
		Source: ConstantSource([]byte("z"), tuples),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := region.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Released != tuples || !res.OrderPreserved {
		t.Fatalf("released=%d order=%v, want %d true", res.Released, res.OrderPreserved, tuples)
	}
	// On a many-core machine the heavy worker's connection accumulates the
	// most blocking; with fewer cores than workers the OS scheduler blurs
	// the attribution, so this is logged rather than asserted.
	t.Logf("blocking per connection: %v", res.TotalBlocking)
}

func TestRegionBalancerShiftsLoad(t *testing.T) {
	// With a balancer and one heavy worker, the splitter should send the
	// heavy connection substantially fewer tuples than the light ones.
	const tuples = 30_000
	balancer, err := core.NewBalancer(core.Config{Connections: 3, DecayEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	region, err := NewRegion(RegionConfig{
		Operators: []Operator{
			NewSpinOperator(500_000), // heavy: ~hundreds of µs per tuple
			NewSpinOperator(1_000),
			NewSpinOperator(1_000),
		},
		// 256-byte payloads against 8 KiB kernel buffers: a few dozen
		// tuples in flight per connection, so the heavy connection's
		// sends block and the signal exists.
		Source:            ConstantSource(make([]byte, 256), tuples),
		Balancer:          balancer,
		SampleInterval:    50 * time.Millisecond,
		SocketBufferBytes: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := region.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Released != tuples || !res.OrderPreserved {
		t.Fatalf("released=%d order=%v, want %d true", res.Released, res.OrderPreserved, tuples)
	}
	if res.PerConnSent[0]*2 >= res.PerConnSent[1]+res.PerConnSent[2] {
		t.Fatalf("per-conn sent %v: heavy worker not throttled", res.PerConnSent)
	}
}

func TestMergerRejectsMissingSequence(t *testing.T) {
	m, err := NewMerger(1, 4, func(transport.Tuple, int) {})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	conn, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var id [4]byte
	binary.LittleEndian.PutUint32(id[:], 0)
	if _, err := conn.Write(id[:]); err != nil {
		t.Fatal(err)
	}
	// Send seq 1, skipping 0, then close: the merger can never release.
	frame, err := transport.AppendFrame(nil, transport.Tuple{Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if err := m.Wait(); err == nil {
		t.Fatal("merger accepted a stream with a missing sequence number")
	}
}

func TestMergerRejectsBadWorkerID(t *testing.T) {
	m, err := NewMerger(2, 4, func(transport.Tuple, int) {})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	conn, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var id [4]byte
	binary.LittleEndian.PutUint32(id[:], 99)
	if _, err := conn.Write(id[:]); err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(); err == nil {
		t.Fatal("merger accepted an out-of-range worker id")
	}
}

func TestConstantSource(t *testing.T) {
	src := ConstantSource([]byte("p"), 2)
	if _, ok := src(0); !ok {
		t.Fatal("tuple 0 should exist")
	}
	if _, ok := src(1); !ok {
		t.Fatal("tuple 1 should exist")
	}
	if _, ok := src(2); ok {
		t.Fatal("tuple 2 should not exist")
	}
	unbounded := ConstantSource(nil, 0)
	if _, ok := unbounded(1 << 40); !ok {
		t.Fatal("unbounded source ended")
	}
}

func TestDelayOperator(t *testing.T) {
	op := NewDelayOperator(5 * time.Millisecond)
	if op.Delay() != 5*time.Millisecond {
		t.Fatalf("Delay = %v, want 5ms", op.Delay())
	}
	in := transport.Tuple{Seq: 9, Payload: []byte("d")}
	start := time.Now()
	out := op.Process(in)
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Fatalf("Process returned after %v, want >= ~5ms", elapsed)
	}
	if out.Seq != in.Seq || string(out.Payload) != "d" {
		t.Fatalf("DelayOperator changed tuple: %+v", out)
	}
	op.SetDelay(0)
	start = time.Now()
	op.Process(in)
	if elapsed := time.Since(start); elapsed > time.Millisecond {
		t.Fatalf("zero-delay Process took %v", elapsed)
	}
}

func TestRegionOnSampleCallback(t *testing.T) {
	var mu sync.Mutex
	var samples int
	var lastWeights []int
	balancer, err := core.NewBalancer(core.Config{Connections: 2, DecayEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	region, err := NewRegion(RegionConfig{
		Operators:      []Operator{NewDelayOperator(50 * time.Microsecond), NewDelayOperator(50 * time.Microsecond)},
		Source:         ConstantSource(make([]byte, 64), 8000),
		Balancer:       balancer,
		SampleInterval: 20 * time.Millisecond,
		OnSample: func(now time.Duration, rates []float64, weights []int) {
			mu.Lock()
			samples++
			lastWeights = append([]int(nil), weights...)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := region.Run(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if samples == 0 {
		t.Fatal("OnSample never fired")
	}
	sum := 0
	for _, w := range lastWeights {
		sum += w
	}
	if sum != 1000 {
		t.Fatalf("sampled weights %v sum to %d, want 1000", lastWeights, sum)
	}
}

func TestPretrainedBalancerWarmStart(t *testing.T) {
	// Operability scenario: the balancer's learned state survives a region
	// restart (via snapshot or by reusing the instance), so the second run
	// starts with the slow worker already throttled rather than repeating
	// the exploration transient.
	makeRegion := func(b *core.Balancer) *Region {
		region, err := NewRegion(RegionConfig{
			Operators: []Operator{
				NewDelayOperator(2 * time.Millisecond),
				NewDelayOperator(100 * time.Microsecond),
				NewDelayOperator(100 * time.Microsecond),
			},
			Source:            ConstantSource(make([]byte, 128), 15_000),
			Balancer:          b,
			SampleInterval:    25 * time.Millisecond,
			SocketBufferBytes: 8 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		return region
	}

	first, err := core.NewBalancer(core.Config{Connections: 3, DecayEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := makeRegion(first).Run(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh balancer restored from the first one's snapshot.
	second, err := core.NewBalancer(core.Config{Connections: 3, DecayEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Restore(first.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if w := second.Weights(); w[0] > 250 {
		t.Fatalf("restored weights %v: slow worker not pre-throttled", w)
	}
	res, err := makeRegion(second).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OrderPreserved || res.Released != 15_000 {
		t.Fatalf("warm-start run broken: %+v", res)
	}
	// The warm-started run must keep the slow worker's share low from the
	// beginning: far fewer tuples than an even third.
	if res.PerConnSent[0] > 3500 {
		t.Fatalf("slow worker received %d of 15000 tuples despite warm start", res.PerConnSent[0])
	}
}
