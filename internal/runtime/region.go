package runtime

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"streambalance/internal/core"
	"streambalance/internal/schedule"
	"streambalance/internal/transport"
)

// RecoveryConfig opts a region into worker-failure recovery: the splitter
// retains sent tuples above the merger's released watermark (reported on a
// side control connection) and replays a dead worker's unreleased tuples to
// the survivors; the merger tolerates worker streams dying and rejoining
// and dedupes replayed sequences, so every tuple is released exactly once
// in strict order even across worker crashes.
type RecoveryConfig struct {
	// Enabled turns recovery on.
	Enabled bool
	// RetainCap bounds the splitter's replay buffer in tuples (default
	// DefaultRetainCap).
	RetainCap int
	// WatermarkInterval is how often the merger reports its released
	// watermark (default DefaultWatermarkInterval).
	WatermarkInterval time.Duration
	// Redial governs reconnection to failed workers; nil selects
	// DefaultRegionRedial (exponential backoff, base 10ms, cap 500ms,
	// jittered, 60 attempts). Set MaxAttempts to rebound it, or
	// DisableRedial to never redial.
	Redial *transport.RedialPolicy
	// DisableRedial turns reconnection off: a dead worker stays dead and
	// its load shifts permanently to the survivors.
	DisableRedial bool
	// StallWindow is how long the merge may make no progress (while work
	// is queued) before the watchdog quarantines the straggling worker.
	// Zero selects DefaultStallWindow; negative disables the watchdog.
	StallWindow time.Duration
	// MaxReadmits caps how many times one worker may be quarantined and
	// still redialed before the circuit breaker retires it permanently
	// (0 selects DefaultMaxReadmits, negative is unlimited).
	MaxReadmits int
}

// TransportKind selects how a region's edges move tuples.
type TransportKind string

const (
	// TransportTCP is the default: splitter, workers and merger talk over
	// loopback TCP exactly as separate processes would, with the full frame
	// protocol. The empty string selects it.
	TransportTCP TransportKind = "tcp"
	// TransportInproc co-locates the whole region in one process: workers
	// are goroutines and every edge is a bounded shared-memory SPSC ring
	// carrying tuples by reference — no serialization, no copies, no
	// sockets. The blocking signal (ring-full waits) feeds the balancer
	// identically, so replica scaling works unchanged. Recovery is
	// unavailable (it is inherently a remote-process protocol).
	TransportInproc TransportKind = "inproc"
)

// RegionConfig assembles one ordered data-parallel region.
type RegionConfig struct {
	// Transport selects the edge implementation: TransportTCP (default) or
	// TransportInproc. See TransportKind.
	Transport TransportKind
	// Workers is the fan-out N; one operator per worker is required.
	Operators []Operator
	// Source feeds the splitter. Exactly one of Source and KeyedSource is
	// required.
	Source Source
	// KeyedSource feeds the splitter with keyed tuples; non-zero keys route
	// through Router. Mutually exclusive with Source.
	KeyedSource KeyedSource
	// Router places non-zero keys on workers (default PKG). See
	// SplitterConfig.Router.
	Router schedule.KeyRouter
	// Combiner, when set, installs per-key partial aggregation in every
	// worker: same-key results within one processed batch fold into their
	// lowest-seq carrier before the forward to the merger, which releases
	// the absorbed sequence numbers by advancing its watermark through them
	// (counted in RegionResult.CombinedReleased, never delivered to Sink).
	// Requires KeyedSource.
	Combiner Combiner
	// Balancer, when set, balances dynamically; nil means round-robin.
	Balancer *core.Balancer
	// SampleInterval for the controller (default 1s).
	SampleInterval time.Duration
	// ResetInterval for the controller's periodic counter reset (default
	// 16x SampleInterval; negative disables).
	ResetInterval time.Duration
	// MergerQueue bounds each reorder queue (default DefaultMergerQueue).
	MergerQueue int
	// RingCap bounds each merger connection's lock-free SPSC ingest ring
	// in tuples (<= 0 selects DefaultMergerRing; rounded up to a power of
	// two). The ring is the reader-to-merge-loop hand-off lane; its
	// occupancy counts toward the MergerQueue back-pressure cap, so the
	// blocking signal the balancer reads is unchanged by its size. On the
	// in-proc transport it additionally bounds every shared-memory edge
	// (splitter→worker and worker→merger rings): the edge ring is that
	// transport's "socket buffer", the thing whose fullness makes a send
	// elect to block.
	RingCap int
	// Sink receives every released tuple in order, with the worker id.
	// Optional.
	Sink func(transport.Tuple, int)
	// OnSample observes controller ticks. Optional.
	OnSample func(now time.Duration, rates []float64, weights []int)
	// OnConnEvent observes splitter recovery events (down/replay/rejoin).
	// Optional.
	OnConnEvent func(ConnEvent)
	// SocketBufferBytes sizes the kernel buffers between splitter and
	// workers (default DefaultSocketBuffer).
	SocketBufferBytes int
	// BatchSize is how many tuples the splitter drains from the schedule
	// per vectored-write round (<= 1 sends per tuple). See
	// SplitterConfig.BatchSize for the throughput/signal tradeoff.
	BatchSize int
	// RecvBatchSize is how many tuples workers and merger readers decode
	// and ingest per receive pass (<= 0 selects
	// transport.DefaultRecvBatch; 1 restores per-tuple receive). Unlike
	// BatchSize there is no signal tradeoff — a receive pass only drains
	// frames already buffered — so the default stays batched.
	RecvBatchSize int
	// Recovery opts the region into worker-failure recovery.
	Recovery RecoveryConfig
	// WrapWorkerAddr, when set, maps each worker's listen address to the
	// address the splitter should dial instead — the hook fault-injecting
	// proxies (internal/chaos) use to interpose on worker links.
	WrapWorkerAddr func(worker int, addr string) string
	// Metrics, when set, instruments the whole region (splitter, balancer,
	// merger, recovery) on the RegionMetrics' registry and trace ring. Nil
	// disables instrumentation with zero hot-path cost.
	Metrics *RegionMetrics
	// Timeouts bounds every control-plane I/O in the region: dials,
	// handshakes, health probes, control-channel frames and send stalls.
	// Zero fields select the defaults; negative fields disable the
	// corresponding deadline.
	Timeouts Timeouts
}

// Region owns the processes of one parallel region: N workers, the merger
// and the splitter, wired over loopback TCP or in-process shared-memory
// edges per RegionConfig.Transport.
type Region struct {
	workers  []regionWorker
	merger   *Merger
	splitter *Splitter
	recovery bool
	// strictOrder demands every release be exactly the next sequence number.
	// Combining regions relax it to strictly-monotone: absorbed sequence
	// numbers are released silently (watermark only), so the sink legally
	// sees gaps; gaplessness is then Released + CombinedReleased == total.
	strictOrder bool

	mu        sync.Mutex
	released  uint64
	lastSeq   uint64
	orderGood bool
}

// RegionResult summarizes a completed region run.
type RegionResult struct {
	// Released counts tuples that exited the merger.
	Released uint64
	// OrderPreserved reports whether every release had the next sequence
	// number in line.
	OrderPreserved bool
	// TotalBlocking is the lifetime blocking per worker (summed across
	// reconnections).
	TotalBlocking []time.Duration
	// PerConnSent counts tuples sent per worker, including replays.
	PerConnSent []int64
	// Deduped counts replayed duplicates the merger dropped to keep the
	// exactly-once release guarantee.
	Deduped uint64
	// CombinedReleased counts sequence numbers released by absorption into a
	// combined carrier (watermark advanced with no Sink call). Released +
	// CombinedReleased covers the whole stream.
	CombinedReleased uint64
	// CombinerHits counts tuples the workers' combiners absorbed into
	// same-key carriers.
	CombinerHits uint64
	// KeyedSent counts router-placed tuples per worker (nil-equivalent zeros
	// for unkeyed regions).
	KeyedSent []int64
	// Elapsed is the wall-clock makespan.
	Elapsed time.Duration
}

// DefaultRegionRedial is the redial policy a recovery-enabled region uses
// when none is configured. MaxAttempts bounds it (~30s of retries at the
// backoff cap) so a permanently dead worker cannot leak a redial goroutine
// forever; configure an explicit policy with MaxAttempts 0 for unbounded
// retries.
var DefaultRegionRedial = transport.RedialPolicy{
	Base:        10 * time.Millisecond,
	Max:         500 * time.Millisecond,
	Jitter:      0.2,
	MaxAttempts: 60,
}

// NewRegion builds and connects all components; nothing runs until Run.
func NewRegion(cfg RegionConfig) (*Region, error) {
	switch cfg.Transport {
	case "", TransportTCP, TransportInproc:
	default:
		return nil, fmt.Errorf("runtime: unknown transport %q", cfg.Transport)
	}
	inproc := cfg.Transport == TransportInproc
	if inproc {
		if cfg.Recovery.Enabled {
			// Recovery is a remote-process protocol — control channel,
			// retain/replay, redial — with no in-process analogue: a crashed
			// goroutine is a crashed process.
			return nil, errors.New("runtime: recovery requires the TCP transport")
		}
		if cfg.WrapWorkerAddr != nil {
			return nil, errors.New("runtime: WrapWorkerAddr requires the TCP transport")
		}
	}
	if len(cfg.Operators) == 0 {
		return nil, errors.New("runtime: region needs at least one operator")
	}
	if cfg.Source == nil && cfg.KeyedSource == nil {
		return nil, errors.New("runtime: region needs a source")
	}
	if cfg.Combiner != nil && cfg.KeyedSource == nil {
		return nil, errors.New("runtime: Combiner requires KeyedSource")
	}
	r := &Region{orderGood: true, recovery: cfg.Recovery.Enabled, strictOrder: cfg.Combiner == nil}

	merger, err := NewMerger(len(cfg.Operators), cfg.MergerQueue, func(t transport.Tuple, conn int) {
		r.mu.Lock()
		if r.strictOrder {
			if t.Seq != r.lastSeq {
				r.orderGood = false
			}
		} else if t.Seq < r.lastSeq {
			r.orderGood = false
		}
		r.lastSeq = t.Seq + 1
		r.released++
		r.mu.Unlock()
		if cfg.Sink != nil {
			cfg.Sink(t, conn)
		}
	})
	if err != nil {
		return nil, err
	}
	if cfg.Recovery.WatermarkInterval > 0 {
		merger.SetWatermarkInterval(cfg.Recovery.WatermarkInterval)
	}
	merger.SetRecvBatch(cfg.RecvBatchSize)
	merger.SetRingCap(cfg.RingCap)
	merger.SetTimeouts(cfg.Timeouts)
	if cfg.Recovery.Enabled {
		// The watchdog is only useful when a quarantine nomination has
		// somewhere to go (the control channel) and the ejected worker's
		// tuples can be replayed.
		window := cfg.Recovery.StallWindow
		if window == 0 {
			window = DefaultStallWindow
		}
		merger.SetStallWindow(window)
	}
	merger.SetMetrics(cfg.Metrics)
	r.merger = merger

	var addrs []string
	var senders []transport.BatchSender
	if inproc {
		// Each worker goroutine sits between two bounded shared-memory
		// edges; the merger consumes the output edge exactly as it reads a
		// socket. RingCap bounds both edges (the in-proc "socket buffer").
		to := cfg.Timeouts.norm()
		for i, op := range cfg.Operators {
			inTx, inRx := transport.InprocPair(cfg.RingCap)
			outTx, outRx := transport.InprocPair(cfg.RingCap)
			if err := merger.AttachInproc(i, outRx); err != nil {
				inTx.Close()
				outTx.Close()
				r.Close()
				return nil, err
			}
			iw := newInprocWorker(i, op, inRx, outTx, cfg.RecvBatchSize, to)
			if cfg.Combiner != nil {
				if cfg.Metrics != nil {
					iw.setCombiner(cfg.Combiner, cfg.Metrics.combinerHits)
				} else {
					iw.setCombiner(cfg.Combiner, nil)
				}
			}
			r.workers = append(r.workers, iw)
			senders = append(senders, inTx)
		}
	} else {
		addrs = make([]string, len(cfg.Operators))
		for i, op := range cfg.Operators {
			w, err := NewWorker(i, op, merger.Addr())
			if err != nil {
				r.Close()
				return nil, err
			}
			if cfg.SocketBufferBytes > 0 {
				w.SetReceiveBuffer(cfg.SocketBufferBytes)
			}
			w.SetRecvBatch(cfg.RecvBatchSize)
			w.SetTimeouts(cfg.Timeouts)
			if cfg.Combiner != nil {
				w.SetCombiner(cfg.Combiner)
				if cfg.Metrics != nil {
					w.setCombinerMetric(cfg.Metrics.combinerHits)
				}
			}
			if r.recovery {
				w.SetResilient(true)
			}
			r.workers = append(r.workers, w)
			addrs[i] = w.Addr()
			if cfg.WrapWorkerAddr != nil {
				addrs[i] = cfg.WrapWorkerAddr(i, addrs[i])
			}
		}
	}

	// Workers and merger must be listening before the splitter dials, and
	// workers only dial the merger after the splitter connects, so start
	// them before constructing the splitter.
	merger.Start()
	for _, w := range r.workers {
		w.Start()
	}

	scfg := SplitterConfig{
		WorkerAddrs:       addrs,
		Senders:           senders,
		Source:            cfg.Source,
		KeyedSource:       cfg.KeyedSource,
		Router:            cfg.Router,
		Balancer:          cfg.Balancer,
		SampleInterval:    cfg.SampleInterval,
		ResetInterval:     cfg.ResetInterval,
		OnSample:          cfg.OnSample,
		OnConnEvent:       cfg.OnConnEvent,
		SocketBufferBytes: cfg.SocketBufferBytes,
		BatchSize:         cfg.BatchSize,
		Metrics:           cfg.Metrics,
		Timeouts:          cfg.Timeouts,
	}
	if r.recovery {
		scfg.ControlAddr = merger.Addr()
		scfg.RetainCap = cfg.Recovery.RetainCap
		scfg.MaxReadmits = cfg.Recovery.MaxReadmits
		if !cfg.Recovery.DisableRedial {
			policy := DefaultRegionRedial
			if cfg.Recovery.Redial != nil {
				policy = *cfg.Recovery.Redial
			}
			scfg.Redial = &policy
		}
	}
	splitter, err := NewSplitter(scfg)
	if err != nil {
		r.Close()
		return nil, err
	}
	r.splitter = splitter
	return r, nil
}

// Run executes the region until the source is exhausted and every tuple has
// exited the merger. With recovery enabled, worker failures along the way
// are absorbed (replayed and, if possible, reconnected) rather than
// surfaced, and an error is returned only when the stream could not be
// completed — e.g. every worker died.
func (r *Region) Run() (RegionResult, error) {
	start := time.Now()
	r.splitter.Start()

	var errs []error
	if err := r.splitter.Wait(); err != nil {
		errs = append(errs, fmt.Errorf("splitter: %w", err))
	}
	if r.recovery {
		// Resilient workers keep accepting until told otherwise.
		for _, w := range r.workers {
			w.Close()
		}
	}
	for i, w := range r.workers {
		if err := w.Wait(); err != nil {
			errs = append(errs, fmt.Errorf("worker %d: %w", i, err))
		}
	}
	if len(errs) > 0 {
		// The merger cannot finish once splitter or workers failed
		// terminally; abort it rather than waiting forever.
		r.merger.Close()
	}
	if err := r.merger.Wait(); err != nil && len(errs) == 0 {
		errs = append(errs, fmt.Errorf("merger: %w", err))
	}

	res := RegionResult{Elapsed: time.Since(start)}
	r.mu.Lock()
	res.Released = r.released
	res.OrderPreserved = r.orderGood
	r.mu.Unlock()
	res.PerConnSent, res.TotalBlocking = r.splitter.ConnStats()
	res.Deduped = r.merger.Deduped()
	res.CombinedReleased = r.merger.CombinedReleased()
	res.KeyedSent = r.splitter.KeyedStats()
	for _, w := range r.workers {
		switch wk := w.(type) {
		case *Worker:
			res.CombinerHits += wk.CombinerHits()
		case *inprocWorker:
			res.CombinerHits += wk.combinerHits()
		}
	}
	return res, errors.Join(errs...)
}

// Close tears down a region that never ran: listeners, worker connections
// and the splitter's dialed senders.
func (r *Region) Close() {
	if r.merger != nil {
		r.merger.Close()
	}
	for _, w := range r.workers {
		w.Close()
	}
	if r.splitter != nil {
		r.splitter.Close()
	}
}
