package runtime

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"streambalance/internal/core"
	"streambalance/internal/transport"
)

// RegionConfig assembles one ordered data-parallel region.
type RegionConfig struct {
	// Workers is the fan-out N; one operator per worker is required.
	Operators []Operator
	// Source feeds the splitter.
	Source Source
	// Balancer, when set, balances dynamically; nil means round-robin.
	Balancer *core.Balancer
	// SampleInterval for the controller (default 1s).
	SampleInterval time.Duration
	// MergerQueue bounds each reorder queue (default DefaultMergerQueue).
	MergerQueue int
	// Sink receives every released tuple in order, with the worker id.
	// Optional.
	Sink func(transport.Tuple, int)
	// OnSample observes controller ticks. Optional.
	OnSample func(now time.Duration, rates []float64, weights []int)
	// SocketBufferBytes sizes the kernel buffers between splitter and
	// workers (default DefaultSocketBuffer).
	SocketBufferBytes int
}

// Region owns the processes of one parallel region: N workers, the merger
// and the splitter, wired over loopback TCP.
type Region struct {
	workers  []*Worker
	merger   *Merger
	splitter *Splitter

	mu        sync.Mutex
	released  uint64
	lastSeq   uint64
	orderGood bool
}

// RegionResult summarizes a completed region run.
type RegionResult struct {
	// Released counts tuples that exited the merger.
	Released uint64
	// OrderPreserved reports whether every release had the next sequence
	// number in line.
	OrderPreserved bool
	// TotalBlocking is the lifetime blocking per connection.
	TotalBlocking []time.Duration
	// PerConnSent counts tuples sent per connection.
	PerConnSent []int64
	// Elapsed is the wall-clock makespan.
	Elapsed time.Duration
}

// NewRegion builds and connects all components; nothing runs until Run.
func NewRegion(cfg RegionConfig) (*Region, error) {
	if len(cfg.Operators) == 0 {
		return nil, errors.New("runtime: region needs at least one operator")
	}
	if cfg.Source == nil {
		return nil, errors.New("runtime: region needs a source")
	}
	r := &Region{orderGood: true}

	merger, err := NewMerger(len(cfg.Operators), cfg.MergerQueue, func(t transport.Tuple, conn int) {
		r.mu.Lock()
		if t.Seq != r.lastSeq {
			r.orderGood = false
		}
		r.lastSeq = t.Seq + 1
		r.released++
		r.mu.Unlock()
		if cfg.Sink != nil {
			cfg.Sink(t, conn)
		}
	})
	if err != nil {
		return nil, err
	}
	r.merger = merger

	addrs := make([]string, len(cfg.Operators))
	for i, op := range cfg.Operators {
		w, err := NewWorker(i, op, merger.Addr())
		if err != nil {
			r.Close()
			return nil, err
		}
		if cfg.SocketBufferBytes > 0 {
			w.SetReceiveBuffer(cfg.SocketBufferBytes)
		}
		r.workers = append(r.workers, w)
		addrs[i] = w.Addr()
	}

	// Workers and merger must be listening before the splitter dials, and
	// workers only dial the merger after the splitter connects, so start
	// them before constructing the splitter.
	merger.Start()
	for _, w := range r.workers {
		w.Start()
	}

	splitter, err := NewSplitter(SplitterConfig{
		WorkerAddrs:       addrs,
		Source:            cfg.Source,
		Balancer:          cfg.Balancer,
		SampleInterval:    cfg.SampleInterval,
		OnSample:          cfg.OnSample,
		SocketBufferBytes: cfg.SocketBufferBytes,
	})
	if err != nil {
		r.Close()
		return nil, err
	}
	r.splitter = splitter
	return r, nil
}

// Run executes the region until the source is exhausted and every tuple has
// exited the merger.
func (r *Region) Run() (RegionResult, error) {
	start := time.Now()
	r.splitter.Start()

	var errs []error
	if err := r.splitter.Wait(); err != nil {
		errs = append(errs, fmt.Errorf("splitter: %w", err))
	}
	for i, w := range r.workers {
		if err := w.Wait(); err != nil {
			errs = append(errs, fmt.Errorf("worker %d: %w", i, err))
		}
	}
	if err := r.merger.Wait(); err != nil {
		errs = append(errs, fmt.Errorf("merger: %w", err))
	}

	res := RegionResult{Elapsed: time.Since(start)}
	r.mu.Lock()
	res.Released = r.released
	res.OrderPreserved = r.orderGood
	r.mu.Unlock()
	for _, s := range r.splitter.Senders() {
		res.TotalBlocking = append(res.TotalBlocking, s.TotalBlocking())
		res.PerConnSent = append(res.PerConnSent, s.Sent())
	}
	return res, errors.Join(errs...)
}

// Close tears down listeners for a region that never ran.
func (r *Region) Close() {
	if r.merger != nil {
		r.merger.Close()
	}
	for _, w := range r.workers {
		w.Close()
	}
}
