package runtime

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"streambalance/internal/metrics"
	"streambalance/internal/transport"
)

// regionWorker is the region's view of one worker PE, satisfied by the TCP
// *Worker (its own process in the deployed system, a goroutine serving real
// sockets here) and by *inprocWorker (a goroutine on shared-memory edges).
// The region drives both identically: Start, Wait for completion, Close to
// interrupt.
type regionWorker interface {
	Start()
	Wait() error
	Close()
}

var (
	_ regionWorker = (*Worker)(nil)
	_ regionWorker = (*inprocWorker)(nil)
)

// inprocWorker is one parallel PE on the in-process transport: it pops
// batches from its splitter edge, applies its operator to every tuple, and
// forwards the results over its merger edge — the same
// receive-batch → process → send-batch loop as the TCP worker, minus the
// sockets, handshakes and serialization. Input block references transfer to
// the output edge with the results (SendBatchOwned), so a payload crosses
// splitter → worker → merger with zero copies and is released exactly once,
// by the merger, in release order.
type inprocWorker struct {
	id        int
	operator  Operator
	combiner  Combiner
	mHits     *metrics.Counter
	hits      atomic.Uint64
	rx        *transport.InprocReceiver
	tx        *transport.InprocSender
	recvBatch int

	closed atomic.Bool
	done   chan struct{}
	err    error
}

// newInprocWorker wires one worker between its two edges. The stall bound
// mirrors the TCP worker's forwarding stall: back pressure from the merger is
// routine, the bound only converts "merger never drains again" into an error.
func newInprocWorker(id int, op Operator, rx *transport.InprocReceiver, tx *transport.InprocSender, recvBatch int, to Timeouts) *inprocWorker {
	if recvBatch <= 0 {
		recvBatch = transport.DefaultRecvBatch
	}
	tx.SetStallTimeout(to.SendStall)
	return &inprocWorker{
		id:        id,
		operator:  op,
		rx:        rx,
		tx:        tx,
		recvBatch: recvBatch,
		done:      make(chan struct{}),
	}
}

// setCombiner installs a per-key partial-aggregation stage between the
// operator and the merger edge, plus an optional live hit counter. Call
// before Start.
func (w *inprocWorker) setCombiner(c Combiner, m *metrics.Counter) {
	w.combiner = c
	w.mHits = m
}

// combinerHits reports how many tuples the combiner has absorbed so far.
func (w *inprocWorker) combinerHits() uint64 {
	return w.hits.Load()
}

// Start launches the worker loop; it runs until the splitter edge closes (the
// fixed-pipeline completion), Close is called, or an error occurs.
func (w *inprocWorker) Start() {
	go func() {
		defer close(w.done)
		w.err = w.run()
	}()
}

func (w *inprocWorker) run() error {
	// Closing the merger edge on the way out is what propagates completion:
	// the merger's reader sees EOF once the edge drains, exactly like a TCP
	// worker closing its merger connection.
	defer w.tx.Close()
	var batch []transport.Tuple
	results := make([]transport.Tuple, 0, w.recvBatch)
	for {
		var ref *transport.BlockRef
		var err error
		batch, ref, err = w.rx.ReceiveBatch(batch, w.recvBatch)
		if err != nil {
			if errors.Is(err, io.EOF) || w.closed.Load() {
				return nil
			}
			return fmt.Errorf("runtime: worker %d receive: %w", w.id, err)
		}
		results = results[:0]
		for i := range batch {
			results = append(results, w.operator.Process(batch[i]))
		}
		if w.combiner != nil {
			var n int
			results, n = combineBatch(w.combiner, results)
			if n > 0 {
				w.hits.Add(uint64(n))
				if w.mHits != nil {
					w.mHits.Add(float64(n))
				}
				// Absorbed tuples drop out of results, so their share of the
				// input references is released here: Combine copied what it
				// needed and retains nothing.
				ref.ReleaseN(n)
			}
		}
		// Ownership transfer: the surviving results carry the remaining input
		// references downstream (SendBatchOwned consumes one per tuple) and
		// the merger releases them tuple by tuple in release order.
		if err := w.tx.SendBatchOwned(results, ref); err != nil {
			if w.closed.Load() {
				return nil
			}
			return fmt.Errorf("runtime: worker %d forward: %w", w.id, err)
		}
	}
}

// Wait blocks until the worker loop exits and returns its error, if any.
func (w *inprocWorker) Wait() error {
	<-w.done
	return w.err
}

// Close interrupts the worker: both edges close, so a loop parked on an
// empty input ring or a full output ring wakes and exits cleanly.
func (w *inprocWorker) Close() {
	w.closed.Store(true)
	w.rx.Close()
	w.tx.Close()
}
