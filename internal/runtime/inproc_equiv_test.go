package runtime

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"streambalance/internal/testutil"
	"streambalance/internal/transport"
)

// inproc_equiv_test.go pins the in-process shared-memory transport to the TCP
// reference: for randomized region shapes — fan-out, batch sizes, ring
// capacities down to 1 — the two transports must release identical streams
// (same sequences, same payload bytes, in order, exactly once, nothing
// deduped). The TCP region is the semantic oracle; the in-proc region must be
// indistinguishable through the Region API.

// equivOp derives output bytes from every input byte and the sequence number,
// so a payload corrupted, reordered or cross-wired anywhere on either
// transport changes the released stream.
type equivOp struct{}

func (equivOp) Process(t transport.Tuple) transport.Tuple {
	sum := byte(0)
	for _, b := range t.Payload {
		sum += b
	}
	out := make([]byte, len(t.Payload)+1)
	copy(out, t.Payload)
	out[len(t.Payload)] = sum ^ byte(t.Seq)
	return transport.Tuple{Seq: t.Seq, Payload: out}
}

// equivTrial is one randomized region shape shared by both transports.
type equivTrial struct {
	workers     int
	tuples      uint64
	batch       int
	recvBatch   int
	ringCap     int
	mergerQueue int
}

func randomEquivTrial(rng *rand.Rand) equivTrial {
	ringCaps := []int{1, 1, 2, 3, 5, 8, 64}
	queues := []int{4, 16, 64}
	return equivTrial{
		workers:     1 + rng.Intn(4),
		tuples:      uint64(50 + rng.Intn(351)),
		batch:       1 + rng.Intn(8),
		recvBatch:   1 + rng.Intn(8),
		ringCap:     ringCaps[rng.Intn(len(ringCaps))],
		mergerQueue: queues[rng.Intn(len(queues))],
	}
}

// equivSource generates a payload whose length and bytes depend on seq, so
// distinct tuples are never byte-identical.
func equivSource(n uint64) Source {
	return func(seq uint64) ([]byte, bool) {
		if seq >= n {
			return nil, false
		}
		p := make([]byte, 1+seq%17)
		for i := range p {
			p[i] = byte(seq + uint64(i)*13)
		}
		return p, true
	}
}

type equivOut struct {
	seq     uint64
	payload []byte
}

// runEquivRegion runs one region of the trial's shape on the given transport
// and returns the released stream.
func runEquivRegion(t *testing.T, kind TransportKind, trial equivTrial) ([]equivOut, RegionResult) {
	t.Helper()
	ops := make([]Operator, trial.workers)
	for i := range ops {
		ops[i] = equivOp{}
	}
	var mu sync.Mutex
	var got []equivOut
	region, err := NewRegion(RegionConfig{
		Transport:     kind,
		Operators:     ops,
		Source:        equivSource(trial.tuples),
		BatchSize:     trial.batch,
		RecvBatchSize: trial.recvBatch,
		RingCap:       trial.ringCap,
		MergerQueue:   trial.mergerQueue,
		Sink: func(tp transport.Tuple, conn int) {
			p := append([]byte(nil), tp.Payload...)
			mu.Lock()
			got = append(got, equivOut{seq: tp.Seq, payload: p})
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("%s region (%+v): %v", kind, trial, err)
	}
	res, err := region.Run()
	if err != nil {
		t.Fatalf("%s region run (%+v): %v", kind, trial, err)
	}
	mu.Lock()
	defer mu.Unlock()
	return got, res
}

// TestInprocEquivalence runs 300 randomized trials comparing the in-proc
// region's released stream against the TCP reference region with the same
// shape: same order, same payloads, exactly once, dedup untouched.
func TestInprocEquivalence(t *testing.T) {
	const trials = 300
	const shards = 6
	for s := 0; s < shards; s++ {
		s := s
		t.Run(fmt.Sprintf("shard%d", s), func(t *testing.T) {
			t.Parallel()
			for trial := s; trial < trials; trial += shards {
				rng := rand.New(rand.NewSource(int64(trial) * 7919))
				shape := randomEquivTrial(rng)
				want, wantRes := runEquivRegion(t, TransportTCP, shape)
				got, gotRes := runEquivRegion(t, TransportInproc, shape)

				for name, res := range map[string]RegionResult{"tcp": wantRes, "inproc": gotRes} {
					if res.Released != shape.tuples {
						t.Fatalf("trial %d (%+v): %s released %d, want %d", trial, shape, name, res.Released, shape.tuples)
					}
					if !res.OrderPreserved {
						t.Fatalf("trial %d (%+v): %s broke order", trial, shape, name)
					}
					if res.Deduped != 0 {
						t.Fatalf("trial %d (%+v): %s deduped %d", trial, shape, name, res.Deduped)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("trial %d (%+v): inproc sank %d tuples, tcp %d", trial, shape, len(got), len(want))
				}
				for i := range want {
					if got[i].seq != want[i].seq {
						t.Fatalf("trial %d (%+v): position %d seq %d (inproc) vs %d (tcp)",
							trial, shape, i, got[i].seq, want[i].seq)
					}
					if !bytes.Equal(got[i].payload, want[i].payload) {
						t.Fatalf("trial %d (%+v): seq %d payload %x (inproc) vs %x (tcp)",
							trial, shape, want[i].seq, got[i].payload, want[i].payload)
					}
				}
			}
		})
	}
}

// TestInprocRegionTeardownNoGoroutineLeaks pins that a completed in-proc
// region leaves nothing behind: workers, merger readers, splitter controller
// all exit.
func TestInprocRegionTeardownNoGoroutineLeaks(t *testing.T) {
	region, err := NewRegion(RegionConfig{
		Transport: TransportInproc,
		Operators: []Operator{equivOp{}, equivOp{}, equivOp{}},
		Source:    equivSource(5000),
		BatchSize: 4,
		RingCap:   16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := region.Run(); err != nil {
		t.Fatal(err)
	}
	testutil.ExpectNoModuleGoroutines(t, 2*time.Second)
}

// TestInprocRegionCloseWhileCapParked tears a region down at its nastiest
// moment: rings at capacity 1, the sink wedged, senders parked mid-block.
// Close must wake every parked goroutine and the region must unwind without
// leaks once the sink is released.
func TestInprocRegionCloseWhileCapParked(t *testing.T) {
	gate := make(chan struct{})
	first := make(chan struct{})
	var once sync.Once
	region, err := NewRegion(RegionConfig{
		Transport:   TransportInproc,
		Operators:   []Operator{equivOp{}, equivOp{}},
		Source:      equivSource(100_000),
		RingCap:     1,
		MergerQueue: 4,
		Sink: func(transport.Tuple, int) {
			once.Do(func() { close(first) })
			<-gate
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// The teardown races the stream on purpose; the run may or may not
		// report an interruption error, and either is fine — the assertion
		// is that nothing survives.
		region.Run()
	}()
	<-first
	// Let the back pressure cascade: with the sink wedged and every ring at
	// capacity 1, workers and splitter park on full rings.
	time.Sleep(50 * time.Millisecond)
	region.Close()
	close(gate)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("region.Run did not return after Close")
	}
	testutil.ExpectNoModuleGoroutines(t, 2*time.Second)
}
