package runtime

import "math"

// headIndexEmpty is the key of a stream whose reorder heap is empty. Wire
// sequence numbers stay below 2^63 (the control channel claims the high bit
// for quarantine frames), so MaxUint64 can never collide with a real head.
const headIndexEmpty = math.MaxUint64

// headIndex is an indexed binary min-heap over the per-stream reorder-heap
// heads — the merge loop's tournament tree. Instead of scanning every
// stream's head per release (O(streams), the dominant cost at 64+
// connections), the loop asks min() for the stream whose head sequence is
// lowest and fixes up only that stream's key after popping, O(log streams).
//
// Ties break toward the lower stream id, which reproduces the old
// lowest-id-first scan order exactly — the sharded-vs-locked equivalence
// suite pins release order byte-for-byte on this property.
//
// Consumer-private: only the merge loop touches it, so no synchronization.
type headIndex struct {
	key []uint64 // per stream id: head sequence, or headIndexEmpty
	ids []int    // heap array of stream ids
	pos []int    // stream id -> index in ids
}

func newHeadIndex(n int) *headIndex {
	h := &headIndex{
		key: make([]uint64, n),
		ids: make([]int, n),
		pos: make([]int, n),
	}
	for i := 0; i < n; i++ {
		h.key[i] = headIndexEmpty
		h.ids[i] = i
		h.pos[i] = i
	}
	return h
}

// less orders stream a before stream b by (key, id).
func (h *headIndex) less(a, b int) bool {
	return h.key[a] < h.key[b] || (h.key[a] == h.key[b] && a < b)
}

// min returns the stream id with the lowest head sequence, or -1 when every
// stream's heap is empty.
func (h *headIndex) min() int {
	id := h.ids[0]
	if h.key[id] == headIndexEmpty {
		return -1
	}
	return id
}

// update sets stream id's key and restores heap order.
func (h *headIndex) update(id int, key uint64) {
	old := h.key[id]
	if key == old {
		return
	}
	h.key[id] = key
	if key < old {
		h.up(h.pos[id])
	} else {
		h.down(h.pos[id])
	}
}

func (h *headIndex) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.pos[h.ids[i]] = i
	h.pos[h.ids[j]] = j
}

func (h *headIndex) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.ids[i], h.ids[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *headIndex) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h.ids) && h.less(h.ids[l], h.ids[min]) {
			min = l
		}
		if r < len(h.ids) && h.less(h.ids[r], h.ids[min]) {
			min = r
		}
		if min == i {
			return
		}
		h.swap(i, min)
		i = min
	}
}
