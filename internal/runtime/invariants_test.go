package runtime

// Property-style invariant tests. Rather than scripting one failure, these
// draw worker counts, kill times, and chaos kinds from seeded generators and
// assert the properties the paper's region must hold under every draw:
//
//   - the merger's release stream is gapless, duplicate-free, and strictly
//     increasing (exactly-once, in-order: Section 2's sequential semantics);
//   - every weight vector the balancer publishes sums exactly to its unit
//     budget R with each weight inside its per-connection bounds
//     (Section 3.4's resource-allocation constraint).
//
// A failing seed reproduces deterministically: the subtest name carries it.

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"streambalance/internal/chaos"
	"streambalance/internal/core"
	"streambalance/internal/transport"
)

func TestInvariantOrderedReleaseUnderRandomChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized chaos suite skipped in short mode")
	}
	for _, seed := range []int64{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			workers := 2 + rng.Intn(4) // 2..5
			tuples := uint64(6000 + rng.Intn(6000))
			victim := rng.Intn(workers)
			permanent := rng.Intn(2) == 0
			killAt := tuples/5 + uint64(rng.Int63n(int64(tuples/2)))
			// Randomize the splitter's batch size too: ordered release must
			// hold whether tuples leave one write at a time or in vectored
			// batches, including across mid-batch connection kills.
			batchSize := 1 + rng.Intn(64)
			// And the receive side: the worker/merger ingest batch size,
			// including 1 (per-tuple receive), must not change what the
			// sink observes under chaos either.
			recvBatch := 1 + rng.Intn(64)
			if rng.Intn(4) == 0 {
				recvBatch = 1
			}

			balancer, err := core.NewBalancer(core.Config{
				Connections: workers, DecayEnabled: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			ops := make([]Operator, workers)
			for i := range ops {
				ops[i] = Identity()
			}
			proxies := make([]*chaos.Proxy, workers)
			defer func() {
				for _, p := range proxies {
					if p != nil {
						p.Close()
					}
				}
			}()

			var mu sync.Mutex
			var seqs []uint64
			var weightErrs []string
			killed := make(chan struct{})
			rec := RecoveryConfig{Enabled: true, WatermarkInterval: 5 * time.Millisecond}
			if permanent {
				rec.DisableRedial = true
			} else {
				rec.Redial = &transport.RedialPolicy{
					Base: 5 * time.Millisecond,
					Max:  50 * time.Millisecond,
				}
			}
			region, err := NewRegion(RegionConfig{
				Operators: ops,
				Source: func(seq uint64) ([]byte, bool) {
					if seq == killAt {
						select {
						case <-killed:
						default:
							if permanent {
								proxies[victim].SetReject(true)
							}
							proxies[victim].KillActive()
							close(killed)
						}
					}
					if seq >= tuples {
						return nil, false
					}
					return []byte("x"), true
				},
				Balancer:       balancer,
				SampleInterval: 20 * time.Millisecond,
				BatchSize:      batchSize,
				RecvBatchSize:  recvBatch,
				Sink: func(tp transport.Tuple, conn int) {
					mu.Lock()
					seqs = append(seqs, tp.Seq)
					mu.Unlock()
				},
				OnSample: func(now time.Duration, rates []float64, weights []int) {
					sum := 0
					bad := ""
					for j, w := range weights {
						if w < 0 || w > core.DefaultUnits {
							bad = fmt.Sprintf("weight[%d]=%d outside [0,%d]", j, w, core.DefaultUnits)
						}
						sum += w
					}
					if sum != core.DefaultUnits {
						bad = fmt.Sprintf("weights %v sum to %d, want %d", weights, sum, core.DefaultUnits)
					}
					if bad != "" {
						mu.Lock()
						weightErrs = append(weightErrs, fmt.Sprintf("t=%v: %s", now, bad))
						mu.Unlock()
					}
				},
				Recovery: rec,
				WrapWorkerAddr: func(i int, addr string) string {
					p, err := chaos.NewProxy(addr)
					if err != nil {
						t.Fatal(err)
					}
					proxies[i] = p
					return p.Addr()
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := region.Run()
			if err != nil {
				t.Fatalf("workers=%d victim=%d permanent=%v killAt=%d batch=%d: region failed: %v",
					workers, victim, permanent, killAt, batchSize, err)
			}
			if res.Released != tuples || !res.OrderPreserved {
				t.Fatalf("released=%d order=%v, want %d true", res.Released, res.OrderPreserved, tuples)
			}
			mu.Lock()
			defer mu.Unlock()
			// Gapless, duplicate-free, strictly increasing: release i must
			// carry exactly sequence i.
			if uint64(len(seqs)) != tuples {
				t.Fatalf("sink saw %d releases, want %d", len(seqs), tuples)
			}
			for i, s := range seqs {
				if s != uint64(i) {
					t.Fatalf("release %d carried seq %d (duplicate, gap, or reorder)", i, s)
				}
			}
			for _, e := range weightErrs {
				t.Errorf("weight invariant violated: %s", e)
			}
		})
	}
}

func TestInvariantMergerExactlyOnceRandomInterleavings(t *testing.T) {
	// Drive the merger directly with randomized seq->worker assignments and
	// injected cross-stream duplicates (the shape replay produces), checking
	// the exactly-once in-order release property and the dedup accounting.
	for _, seed := range []int64{10, 11, 12, 13, 14} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			k := 2 + rng.Intn(3) // 2..4 workers
			n := uint64(2000 + rng.Intn(2000))
			streams := make([][]uint64, k)
			dups := 0
			for seq := uint64(0); seq < n; seq++ {
				w := rng.Intn(k)
				streams[w] = append(streams[w], seq)
				if rng.Intn(20) == 0 {
					// Replay the tuple on another stream too; appended in
					// seq order, so every stream stays ascending as a real
					// worker's output would.
					d := (w + 1 + rng.Intn(k-1)) % k
					streams[d] = append(streams[d], seq)
					dups++
				}
			}
			for _, s := range streams {
				for i := 1; i < len(s); i++ {
					if s[i] <= s[i-1] {
						t.Fatalf("generator bug: stream not ascending: %v", s)
					}
				}
			}

			var mu sync.Mutex
			var seqs []uint64
			m, err := NewMerger(k, 0, func(tp transport.Tuple, conn int) {
				mu.Lock()
				seqs = append(seqs, tp.Seq)
				mu.Unlock()
			})
			if err != nil {
				t.Fatal(err)
			}
			// Randomize the ingest batch size (occasionally forcing the
			// degenerate per-tuple case): exactly-once release and dedup
			// accounting must be independent of how arrivals are chunked.
			if rng.Intn(4) == 0 {
				m.SetRecvBatch(1)
			} else {
				m.SetRecvBatch(1 + rng.Intn(64))
			}
			m.Start()
			errCh := make(chan error, k)
			for w := 0; w < k; w++ {
				go func(w int) {
					conn := dialWorkerConnErr(m.Addr(), uint32(w))
					if conn == nil {
						errCh <- fmt.Errorf("worker %d: dial failed", w)
						return
					}
					defer conn.Close()
					var frame []byte
					for _, seq := range streams[w] {
						var err error
						frame, err = transport.AppendFrame(frame[:0], transport.Tuple{Seq: seq})
						if err != nil {
							errCh <- err
							return
						}
						if _, err := conn.Write(frame); err != nil {
							errCh <- err
							return
						}
					}
					errCh <- nil
				}(w)
			}
			for w := 0; w < k; w++ {
				if err := <-errCh; err != nil {
					t.Fatal(err)
				}
			}
			if err := m.Wait(); err != nil {
				t.Fatalf("merge failed: %v", err)
			}
			mu.Lock()
			defer mu.Unlock()
			if uint64(len(seqs)) != n {
				t.Fatalf("released %d tuples, want %d (exactly once)", len(seqs), n)
			}
			for i, s := range seqs {
				if s != uint64(i) {
					t.Fatalf("release %d carried seq %d", i, s)
				}
			}
			if got := m.Deduped(); got != uint64(dups) {
				t.Fatalf("deduped %d replays, injected %d", got, dups)
			}
		})
	}
}

// TestInvariantBatchedSingleInterleavingsOrdered sends each worker's stream
// through a real transport.Sender using a random interleaving of Send,
// SendBatch, and Queue/Flush — the three ways tuples reach the wire — with
// cross-stream replay duplicates mixed in. Whatever the interleaving, the
// merger must release a gapless, duplicate-free, strictly increasing
// sequence: batching is a wire-level optimization that must be invisible to
// ordering semantics.
func TestInvariantBatchedSingleInterleavingsOrdered(t *testing.T) {
	for _, seed := range []int64{21, 22, 23, 24} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			k := 2 + rng.Intn(3) // 2..4 workers
			n := uint64(2000 + rng.Intn(2000))
			streams := make([][]uint64, k)
			dups := 0
			for seq := uint64(0); seq < n; seq++ {
				w := rng.Intn(k)
				streams[w] = append(streams[w], seq)
				if rng.Intn(20) == 0 {
					d := (w + 1 + rng.Intn(k-1)) % k
					streams[d] = append(streams[d], seq)
					dups++
				}
			}

			var mu sync.Mutex
			var seqs []uint64
			m, err := NewMerger(k, 0, func(tp transport.Tuple, conn int) {
				mu.Lock()
				seqs = append(seqs, tp.Seq)
				mu.Unlock()
			})
			if err != nil {
				t.Fatal(err)
			}
			// Receive-side batching must be as invisible to ordering as the
			// send-side interleavings this test already randomizes.
			if rng.Intn(4) == 0 {
				m.SetRecvBatch(1)
			} else {
				m.SetRecvBatch(1 + rng.Intn(64))
			}
			m.Start()
			errCh := make(chan error, k)
			for w := 0; w < k; w++ {
				go func(w int) {
					conn := dialWorkerConnErr(m.Addr(), uint32(w))
					if conn == nil {
						errCh <- fmt.Errorf("worker %d: dial failed", w)
						return
					}
					defer conn.Close()
					sender, err := transport.NewSender(conn)
					if err != nil {
						errCh <- err
						return
					}
					wrng := rand.New(rand.NewSource(seed*1000 + int64(w)))
					stream := streams[w]
					payload := []byte("interleave")
					for i := 0; i < len(stream); {
						switch wrng.Intn(3) {
						case 0: // per-tuple send
							if err := sender.Send(transport.Tuple{Seq: stream[i], Payload: payload}); err != nil {
								errCh <- err
								return
							}
							i++
						case 1: // one-shot batch
							size := 1 + wrng.Intn(32)
							batch := make([]transport.Tuple, 0, size)
							for j := 0; j < size && i < len(stream); j++ {
								batch = append(batch, transport.Tuple{Seq: stream[i], Payload: payload})
								i++
							}
							if err := sender.SendBatch(batch); err != nil {
								errCh <- err
								return
							}
						default: // staged queue + explicit flush
							size := 1 + wrng.Intn(16)
							for j := 0; j < size && i < len(stream); j++ {
								if err := sender.Queue(transport.Tuple{Seq: stream[i], Payload: payload}); err != nil {
									errCh <- err
									return
								}
								i++
							}
							if err := sender.Flush(); err != nil {
								errCh <- err
								return
							}
						}
					}
					errCh <- nil
				}(w)
			}
			for w := 0; w < k; w++ {
				if err := <-errCh; err != nil {
					t.Fatal(err)
				}
			}
			if err := m.Wait(); err != nil {
				t.Fatalf("merge failed: %v", err)
			}
			mu.Lock()
			defer mu.Unlock()
			if uint64(len(seqs)) != n {
				t.Fatalf("released %d tuples, want %d (exactly once)", len(seqs), n)
			}
			for i, s := range seqs {
				if s != uint64(i) {
					t.Fatalf("release %d carried seq %d (duplicate, gap, or reorder)", i, s)
				}
			}
			if got := m.Deduped(); got != uint64(dups) {
				t.Fatalf("deduped %d replays, injected %d", got, dups)
			}
		})
	}
}

// dialWorkerConnErr is dialWorkerConn without *testing.T, safe to call from
// writer goroutines.
func dialWorkerConnErr(addr string, id uint32) net.Conn {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil
	}
	var idBuf [4]byte
	binary.LittleEndian.PutUint32(idBuf[:], id)
	if _, err := conn.Write(idBuf[:]); err != nil {
		conn.Close()
		return nil
	}
	return conn
}

func TestInvariantBalancerWeightsAlwaysFeasible(t *testing.T) {
	// Pure-core property: whatever rates the balancer observes — noisy,
	// adversarial, or degenerate — every vector it publishes must spend
	// exactly R units and respect the per-connection bounds.
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 2 + rng.Intn(7) // 2..8 connections
			cfg := core.Config{
				Connections:  n,
				DecayEnabled: rng.Intn(2) == 0,
			}
			if rng.Intn(2) == 0 {
				mins := make([]int, n)
				maxs := make([]int, n)
				for j := range mins {
					mins[j] = rng.Intn(core.DefaultUnits / (2 * n))
					maxs[j] = core.DefaultUnits
				}
				cfg.MinWeight, cfg.MaxWeight = mins, maxs
			}
			b, err := core.NewBalancer(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 50; round++ {
				for j := 0; j < n; j++ {
					rate := rng.Float64()
					if rng.Intn(10) == 0 {
						rate = 0 // idle connection
					}
					if err := b.Observe(j, rate); err != nil {
						t.Fatal(err)
					}
				}
				weights, err := b.Rebalance()
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				sum := 0
				for j, w := range weights {
					lo, hi := 0, b.Units()
					if cfg.MinWeight != nil {
						lo, hi = cfg.MinWeight[j], cfg.MaxWeight[j]
					}
					if w < lo || w > hi {
						t.Fatalf("round %d: weight[%d]=%d outside [%d,%d]", round, j, w, lo, hi)
					}
					sum += w
				}
				if sum != b.Units() {
					t.Fatalf("round %d: weights %v sum to %d, want %d", round, weights, sum, b.Units())
				}
				// The ISSUE's fractional phrasing: normalized weights sum
				// to 1 within epsilon.
				if frac := float64(sum) / float64(b.Units()); math.Abs(frac-1) > 1e-9 {
					t.Fatalf("round %d: normalized weight sum %v", round, frac)
				}
			}
		})
	}
}
