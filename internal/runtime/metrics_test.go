package runtime

// Metrics-consistency tests: the exported numbers must agree with the
// region's own ground truth, not merely move. A clean run obeys the
// conservation identity
//
//	sum(spe_splitter_tuples_sent_total) ==
//	    spe_merger_tuples_released_total + spe_splitter_replay_buffer_tuples
//
// (every sent tuple is either released or still retained for replay), and
// under chaos the sent total additionally covers the merger's dedup count.
// Counters must be monotone non-decreasing at every observation point — the
// delta-publishing in the splitter exists precisely so reconnections never
// make an exported counter move backwards.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"streambalance/internal/chaos"
	"streambalance/internal/core"
	"streambalance/internal/metrics"
)

// counterWatcher polls a set of counter families and records any backwards
// movement, the monotonicity violation a scraper would see.
type counterWatcher struct {
	reg   *metrics.Registry
	names []string

	mu         sync.Mutex
	last       map[string]float64
	violations []string
	stop       chan struct{}
	done       chan struct{}
}

func watchCounters(reg *metrics.Registry, names ...string) *counterWatcher {
	w := &counterWatcher{
		reg:   reg,
		names: names,
		last:  make(map[string]float64),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go func() {
		defer close(w.done)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			w.observe()
			select {
			case <-w.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return w
}

func (w *counterWatcher) observe() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, name := range w.names {
		v, ok := w.reg.SumAcross(name)
		if !ok {
			continue
		}
		if prev := w.last[name]; v < prev {
			w.violations = append(w.violations,
				fmt.Sprintf("%s went backwards: %v -> %v", name, prev, v))
		}
		w.last[name] = v
	}
}

// finish stops polling, takes one last observation, and returns violations.
func (w *counterWatcher) finish() []string {
	close(w.stop)
	<-w.done
	w.observe()
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.violations...)
}

var monotoneCounters = []string{
	"spe_splitter_tuples_sent_total",
	"spe_splitter_blocking_seconds_total",
	"spe_splitter_send_would_block_total",
	"spe_merger_tuples_released_total",
	"spe_merger_deduped_total",
	"spe_balancer_rebalances_total",
	"spe_schedule_picks_total",
}

func mustSum(t *testing.T, reg *metrics.Registry, name string) float64 {
	t.Helper()
	v, ok := reg.SumAcross(name)
	if !ok {
		t.Fatalf("metric %s not registered", name)
	}
	return v
}

func TestMetricsConsistencyCleanRun(t *testing.T) {
	const tuples = 12000
	reg := metrics.New()
	rm := NewRegionMetrics(reg, metrics.NewTrace(1024))
	balancer, err := core.NewBalancer(core.Config{Connections: 2, DecayEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	region, err := NewRegion(RegionConfig{
		Operators:      []Operator{Identity(), Identity()},
		Source:         ConstantSource([]byte("payload"), tuples),
		Balancer:       balancer,
		SampleInterval: 20 * time.Millisecond,
		Recovery:       RecoveryConfig{Enabled: true, WatermarkInterval: 5 * time.Millisecond},
		Metrics:        rm,
	})
	if err != nil {
		t.Fatal(err)
	}
	watcher := watchCounters(reg, monotoneCounters...)
	res, err := region.Run()
	violations := watcher.finish()
	if err != nil {
		t.Fatalf("region failed: %v", err)
	}
	if res.Released != tuples {
		t.Fatalf("released %d, want %d", res.Released, tuples)
	}
	for _, v := range violations {
		t.Errorf("monotonicity violated: %s", v)
	}

	sent := mustSum(t, reg, "spe_splitter_tuples_sent_total")
	released := mustSum(t, reg, "spe_merger_tuples_released_total")
	retained := mustSum(t, reg, "spe_splitter_replay_buffer_tuples")
	if sent != released+retained {
		t.Fatalf("conservation identity broken: sent=%v released=%v retained=%v", sent, released, retained)
	}
	if released != tuples {
		t.Fatalf("released counter %v disagrees with region result %d", released, tuples)
	}
	if retained != 0 {
		t.Fatalf("replay buffer still holds %v tuples after a drained run", retained)
	}
	if wm := mustSum(t, reg, "spe_merger_watermark"); wm != tuples {
		t.Fatalf("watermark %v, want %v", wm, tuples)
	}
	// The exported sent counters must agree per connection with the
	// splitter's own accounting.
	var resSent int64
	for _, s := range res.PerConnSent {
		resSent += s
	}
	if sent != float64(resSent) {
		t.Fatalf("exported sent %v != RegionResult sent %d", sent, resSent)
	}
	// Blocking counters carry the paper's Section 3 signal; the exported
	// total must cover the splitter's own lifetime measurement (the
	// exported value is published at controller ticks, never ahead of it).
	var resBlocking time.Duration
	for _, d := range res.TotalBlocking {
		resBlocking += d
	}
	exported := mustSum(t, reg, "spe_splitter_blocking_seconds_total")
	if exported-resBlocking.Seconds() > 1e-6 {
		t.Fatalf("exported blocking %vs exceeds measured %vs", exported, resBlocking.Seconds())
	}
	if rb := mustSum(t, reg, "spe_balancer_rebalances_total"); rb < 1 {
		t.Fatalf("no rebalances exported over a balanced run (got %v)", rb)
	}
	if picks := mustSum(t, reg, "spe_schedule_picks_total"); picks < tuples {
		t.Fatalf("schedule picks %v < tuples sent %d", picks, tuples)
	}
}

func TestMetricsConsistencyUnderChaos(t *testing.T) {
	// A mid-run worker kill forces replays: the sent total now exceeds the
	// released total by the duplicates the merger dropped plus any tuples
	// that died in flight with the connection — so the identity becomes an
	// inequality chain, and the recovery counters must record the event.
	const tuples = 15000
	reg := metrics.New()
	tr := metrics.NewTrace(4096)
	rm := NewRegionMetrics(reg, tr)
	var proxies [3]*chaos.Proxy
	killed := make(chan struct{})
	balancer, err := core.NewBalancer(core.Config{Connections: 3, DecayEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	region, err := NewRegion(RegionConfig{
		Operators: []Operator{Identity(), Identity(), Identity()},
		Source: func(seq uint64) ([]byte, bool) {
			if seq == tuples/3 {
				select {
				case <-killed:
				default:
					proxies[1].SetReject(true)
					proxies[1].KillActive()
					close(killed)
				}
			}
			if seq >= tuples {
				return nil, false
			}
			return []byte("x"), true
		},
		Balancer:       balancer,
		SampleInterval: 20 * time.Millisecond,
		Recovery: RecoveryConfig{
			Enabled:           true,
			WatermarkInterval: 5 * time.Millisecond,
			DisableRedial:     true,
		},
		Metrics: rm,
		WrapWorkerAddr: func(i int, addr string) string {
			p, err := chaos.NewProxy(addr)
			if err != nil {
				t.Fatal(err)
			}
			proxies[i] = p
			return p.Addr()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, p := range proxies {
			if p != nil {
				p.Close()
			}
		}
	}()
	watcher := watchCounters(reg, monotoneCounters...)
	res, err := region.Run()
	violations := watcher.finish()
	if err != nil {
		t.Fatalf("region failed: %v", err)
	}
	if res.Released != tuples || !res.OrderPreserved {
		t.Fatalf("released=%d order=%v, want %d true", res.Released, res.OrderPreserved, tuples)
	}
	for _, v := range violations {
		t.Errorf("monotonicity violated across reconnection: %s", v)
	}

	sent := mustSum(t, reg, "spe_splitter_tuples_sent_total")
	released := mustSum(t, reg, "spe_merger_tuples_released_total")
	deduped := mustSum(t, reg, "spe_merger_deduped_total")
	if released != tuples {
		t.Fatalf("released counter %v, want %d", released, tuples)
	}
	if sent < released {
		t.Fatalf("sent %v < released %v under replay", sent, released)
	}
	if sent < released+deduped {
		t.Fatalf("sent %v cannot cover released %v + deduped %v", sent, released, deduped)
	}
	if float64(res.Deduped) != deduped {
		t.Fatalf("exported deduped %v != merger's count %d", deduped, res.Deduped)
	}
	if retained := mustSum(t, reg, "spe_splitter_replay_buffer_tuples"); retained != 0 {
		t.Fatalf("replay buffer still holds %v tuples after a drained run", retained)
	}
	if downs := mustSum(t, reg, "spe_recovery_worker_down_total"); downs < 1 {
		t.Fatalf("worker kill not recorded (downs=%v)", downs)
	}
	if replays := mustSum(t, reg, "spe_recovery_replays_total"); replays < 1 {
		t.Fatalf("replay not recorded (replays=%v)", replays)
	}
	// The decision trace must have recorded the failure and the rebalances
	// that followed it.
	var sawDown, sawRebalance bool
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case "down":
			sawDown = true
		case "rebalance":
			sawRebalance = true
		}
	}
	if !sawDown || !sawRebalance {
		t.Fatalf("trace missing events: down=%v rebalance=%v (of %d events)", sawDown, sawRebalance, tr.Len())
	}
}
