package runtime

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"streambalance/internal/chaos"
	"streambalance/internal/core"
	"streambalance/internal/schedule"
	"streambalance/internal/sim"
	"streambalance/internal/transport"
)

// keyed_equiv_test.go — randomized trials of the keyed pipeline: for random
// skew, hot keys, key churn, batch/recv/ring sizes down to 1, every router,
// both transports, with and without the combiner, and (on TCP) mid-run worker
// crashes with replay, the region must release an ordered exactly-once
// stream whose per-key aggregated values match the source exactly. This is
// the correctness net under the PR's perf work: combining may only move
// values into carriers, never lose, duplicate or reorder them.

type keyedTrial struct {
	workers     int
	tuples      uint64
	batch       int
	recvBatch   int
	ringCap     int
	mergerQueue int
	keys        int
	alpha       float64
	hotShare    float64
	churn       uint64
	router      string
	balanced    bool
	combine     bool
	transport   TransportKind
	crash       bool
	payloadLen  int
}

func randomKeyedTrial(rng *rand.Rand) keyedTrial {
	ringCaps := []int{1, 1, 2, 3, 5, 8, 64}
	queues := []int{4, 16, 64}
	alphas := []float64{0, 0.8, 1.1, 1.5}
	routers := []string{"hash", "pkg", "dchoices"}
	tr := keyedTrial{
		workers:     1 + rng.Intn(4),
		tuples:      uint64(60 + rng.Intn(300)),
		batch:       1 + rng.Intn(8),
		recvBatch:   1 + rng.Intn(8),
		ringCap:     ringCaps[rng.Intn(len(ringCaps))],
		mergerQueue: queues[rng.Intn(len(queues))],
		keys:        1 + rng.Intn(50),
		alpha:       alphas[rng.Intn(len(alphas))],
		router:      routers[rng.Intn(len(routers))],
		balanced:    rng.Intn(3) == 0,
		combine:     rng.Intn(2) == 0,
		payloadLen:  8 + rng.Intn(17),
	}
	if rng.Intn(4) == 0 {
		tr.hotShare = 0.5 + 0.4*rng.Float64()
	}
	if rng.Intn(4) == 0 {
		tr.churn = uint64(20 + rng.Intn(100))
	}
	switch rng.Intn(3) {
	case 0:
		tr.transport = TransportInproc
	default:
		tr.transport = TransportTCP
	}
	// Crash trials: TCP only (recovery is a remote-process protocol), at
	// least two workers so survivors exist, and a longer stream so the kill
	// lands mid-flight with tuples still unreleased.
	if tr.transport == TransportTCP && tr.workers >= 2 && rng.Intn(6) == 0 {
		tr.crash = true
		tr.tuples = uint64(1500 + rng.Intn(1500))
	}
	return tr
}

func trialRouter(t *testing.T, name string, n int) schedule.KeyRouter {
	t.Helper()
	var r schedule.KeyRouter
	var err error
	switch name {
	case "hash":
		r, err = schedule.NewHashRouter(n)
	case "pkg":
		r, err = schedule.NewPKGRouter(n)
	case "dchoices":
		r, err = schedule.NewDChoicesRouter(n, schedule.DefaultDChoices, 64)
	default:
		t.Fatalf("unknown trial router %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// keyedValue is the per-tuple value carried in the payload's first 8 bytes;
// varying it by seq makes lost or duplicated folds visible in the sums.
func keyedValue(seq uint64) uint64 { return seq%251 + 1 }

func keyedStreamFor(tr keyedTrial, seed int64) *sim.KeyedStream {
	ks := sim.NewZipfStream(tr.keys, tr.alpha, seed)
	ks.SetHotShare(tr.hotShare)
	ks.SetChurn(tr.churn)
	return ks
}

// runKeyedTrial executes one trial and checks every invariant.
func runKeyedTrial(t *testing.T, trial int, tr keyedTrial, seed int64) {
	t.Helper()
	ks := keyedStreamFor(tr, seed)
	ops := make([]Operator, tr.workers)
	for i := range ops {
		ops[i] = Identity()
	}
	var mu sync.Mutex
	var seqs []uint64
	sums := make(map[uint64]uint64)
	var proxies []*chaos.Proxy
	killed := make(chan struct{})
	cfg := RegionConfig{
		Transport: tr.transport,
		Operators: ops,
		KeyedSource: func(seq uint64) (uint64, []byte, bool) {
			if tr.crash && seq == tr.tuples/3 {
				select {
				case <-killed:
				default:
					proxies[0].SetReject(true)
					proxies[0].KillActive()
					close(killed)
				}
			}
			if seq >= tr.tuples {
				return 0, nil, false
			}
			p := make([]byte, tr.payloadLen)
			binary.LittleEndian.PutUint64(p, keyedValue(seq))
			for i := 8; i < len(p); i++ {
				p[i] = byte(seq)
			}
			return ks.Key(seq), p, true
		},
		Router:         trialRouter(t, tr.router, tr.workers),
		BatchSize:      tr.batch,
		RecvBatchSize:  tr.recvBatch,
		RingCap:        tr.ringCap,
		MergerQueue:    tr.mergerQueue,
		SampleInterval: 20 * time.Millisecond,
		Sink: func(tp transport.Tuple, conn int) {
			mu.Lock()
			seqs = append(seqs, tp.Seq)
			if len(tp.Payload) >= 8 {
				sums[tp.Key] += binary.LittleEndian.Uint64(tp.Payload)
			}
			mu.Unlock()
		},
	}
	if tr.combine {
		cfg.Combiner = SumCombiner()
	}
	if tr.balanced {
		bal, err := core.NewBalancer(core.Config{Connections: tr.workers})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Balancer = bal
	}
	if tr.crash {
		cfg.Recovery = RecoveryConfig{
			Enabled:           true,
			WatermarkInterval: 5 * time.Millisecond,
			DisableRedial:     true,
		}
		cfg.WrapWorkerAddr = func(i int, addr string) string {
			p, err := chaos.NewProxy(addr)
			if err != nil {
				t.Fatal(err)
			}
			proxies = append(proxies, p)
			return p.Addr()
		}
	}
	region, err := NewRegion(cfg)
	if err != nil {
		t.Fatalf("trial %d (%+v): %v", trial, tr, err)
	}
	defer func() {
		for _, p := range proxies {
			p.Close()
		}
	}()
	res, err := region.Run()
	if err != nil {
		t.Fatalf("trial %d (%+v): run: %v", trial, tr, err)
	}

	if !res.OrderPreserved {
		t.Fatalf("trial %d (%+v): order broken", trial, tr)
	}
	if res.Released+res.CombinedReleased != tr.tuples {
		t.Fatalf("trial %d (%+v): released %d + combined %d, want %d total",
			trial, tr, res.Released, res.CombinedReleased, tr.tuples)
	}
	if !tr.combine {
		if res.CombinedReleased != 0 || res.CombinerHits != 0 {
			t.Fatalf("trial %d (%+v): combiner disabled but combined=%d hits=%d",
				trial, tr, res.CombinedReleased, res.CombinerHits)
		}
	} else if tr.crash {
		// A crashed carrier's absorbed members are replayed Solo and release
		// individually, so hits may exceed combined releases — never trail.
		if res.CombinedReleased > res.CombinerHits {
			t.Fatalf("trial %d (%+v): combined releases %d exceed combiner hits %d",
				trial, tr, res.CombinedReleased, res.CombinerHits)
		}
	} else if res.CombinedReleased != res.CombinerHits {
		t.Fatalf("trial %d (%+v): combined releases %d != combiner hits %d",
			trial, tr, res.CombinedReleased, res.CombinerHits)
	}

	mu.Lock()
	defer mu.Unlock()
	if uint64(len(seqs)) != res.Released {
		t.Fatalf("trial %d (%+v): sink saw %d tuples, result says %d released",
			trial, tr, len(seqs), res.Released)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("trial %d (%+v): release %d seq %d after seq %d (not strictly increasing)",
				trial, tr, i, seqs[i], seqs[i-1])
		}
	}
	if !tr.combine {
		for i, s := range seqs {
			if s != uint64(i) {
				t.Fatalf("trial %d (%+v): uncombined release %d has seq %d, want contiguous", trial, tr, i, s)
			}
		}
	}
	// Per-key aggregation correctness: re-derive the expected sums from an
	// identical generator and compare exactly. Combining may only move
	// values into carriers of the same key.
	expect := make(map[uint64]uint64)
	ref := keyedStreamFor(tr, seed)
	for seq := uint64(0); seq < tr.tuples; seq++ {
		expect[ref.Key(seq)] += keyedValue(seq)
	}
	if len(sums) != len(expect) {
		t.Fatalf("trial %d (%+v): sink saw %d distinct keys, want %d", trial, tr, len(sums), len(expect))
	}
	for key, want := range expect {
		if sums[key] != want {
			t.Fatalf("trial %d (%+v): key %d summed to %d, want %d", trial, tr, key, sums[key], want)
		}
	}
}

// TestKeyedEquivalence runs 300 randomized keyed trials across routers,
// transports, combiner on/off and crash/replay, checking ordered
// exactly-once release and exact per-key aggregation in each.
func TestKeyedEquivalence(t *testing.T) {
	const trials = 300
	const shards = 6
	for s := 0; s < shards; s++ {
		s := s
		t.Run(fmt.Sprintf("shard%d", s), func(t *testing.T) {
			t.Parallel()
			for trial := s; trial < trials; trial += shards {
				rng := rand.New(rand.NewSource(int64(trial)*104729 + 17))
				tr := randomKeyedTrial(rng)
				runKeyedTrial(t, trial, tr, int64(trial)+1)
			}
		})
	}
}
