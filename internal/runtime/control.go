package runtime

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"
)

// The recovery control channel is a side TCP connection between splitter and
// merger. It shares the merger's listener: a peer that handshakes with
// controlConnID instead of a worker id is a control connection. Over it flow
// three kinds of 8-byte little-endian frames:
//
//	merger -> splitter: the released watermark — the count of tuples
//	  released contiguously (i.e. the lowest unreleased sequence number),
//	  sent periodically and once more when the merge completes. The
//	  splitter retains every sent tuple at or above the watermark and can
//	  therefore replay a dead connection's unreleased tuples to survivors.
//	merger -> splitter: a quarantine frame — bit 63 set, the low 32 bits
//	  carrying the worker id the merge-stall watchdog nominated. Sequence
//	  counts never approach 2^63, so the tag bit is unambiguous. The
//	  splitter cross-checks the nomination against its replay buffer (which
//	  knows the true owner of the head-of-line sequence) and ejects the
//	  stalled worker through the ordinary membership-edit path.
//	splitter -> merger: the FIN total — the number of tuples the source
//	  produced, sent exactly once when the source is exhausted. It tells
//	  the merger when the stream is complete even though worker streams
//	  may detach and rejoin arbitrarily along the way.
//
// The paper's transport (Section 4.4) has no such channel because it assumes
// a fixed worker set on long-lived connections; see DESIGN.md, "Failure
// model and recovery", for why this deliberate divergence is required once
// workers are allowed to fail.
const controlConnID = 0xFFFFFFFF

// quarantineFlag tags a merger→splitter control frame as a quarantine
// nomination rather than a watermark.
const quarantineFlag = uint64(1) << 63

// controlLink is the splitter's end of the control channel.
type controlLink struct {
	conn      net.Conn
	readTO    time.Duration // per-frame read deadline; 0 = unbounded
	writeTO   time.Duration // per-frame write deadline; 0 = unbounded
	watermark atomic.Uint64
	// wmSignal is pulsed (coalesced) after every watermark advance.
	wmSignal chan struct{}
	// quarCh delivers quarantine nominations to the send loop. Buffered;
	// overflow is dropped (the watchdog re-nominates while the stall
	// persists).
	quarCh chan int
	// dead is closed when the merger side goes away.
	dead chan struct{}
}

// dialControl connects to the merger's listener and identifies the
// connection as the control channel, then starts the watermark reader.
func dialControl(addr string, to Timeouts) (*controlLink, error) {
	conn, err := net.DialTimeout("tcp", addr, to.dialTimeout())
	if err != nil {
		return nil, fmt.Errorf("runtime: splitter dial control channel: %w", err)
	}
	var id [4]byte
	binary.LittleEndian.PutUint32(id[:], controlConnID)
	if to.Handshake > 0 {
		conn.SetWriteDeadline(time.Now().Add(to.Handshake))
	}
	if _, err := conn.Write(id[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("runtime: splitter control handshake: %w", err)
	}
	conn.SetWriteDeadline(time.Time{})
	c := &controlLink{
		conn:     conn,
		readTO:   to.ControlRead,
		writeTO:  to.ControlWrite,
		wmSignal: make(chan struct{}, 1),
		quarCh:   make(chan int, 64),
		dead:     make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// readLoop consumes watermark and quarantine frames until the connection
// dies. The merger writes a watermark every interval even when the merge is
// stalled, so a per-frame read deadline distinguishes a dead peer from a
// quiet one without any extra keepalive traffic.
func (c *controlLink) readLoop() {
	defer close(c.dead)
	var buf [8]byte
	for {
		if c.readTO > 0 {
			c.conn.SetReadDeadline(time.Now().Add(c.readTO))
		}
		if _, err := io.ReadFull(c.conn, buf[:]); err != nil {
			return
		}
		v := binary.LittleEndian.Uint64(buf[:])
		if v&quarantineFlag != 0 {
			select {
			case c.quarCh <- int(uint32(v)):
			default:
			}
			continue
		}
		if v > c.watermark.Load() {
			c.watermark.Store(v)
			select {
			case c.wmSignal <- struct{}{}:
			default:
			}
		}
	}
}

// Watermark returns the merger's latest released watermark: every sequence
// number below it has been released downstream exactly once.
func (c *controlLink) Watermark() uint64 {
	return c.watermark.Load()
}

// SendFin tells the merger how many tuples the completed source produced.
func (c *controlLink) SendFin(total uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], total)
	if c.writeTO > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.writeTO))
		defer c.conn.SetWriteDeadline(time.Time{})
	}
	if _, err := c.conn.Write(buf[:]); err != nil {
		return fmt.Errorf("runtime: splitter send fin: %w", err)
	}
	return nil
}

// Close tears down the splitter's end of the channel.
func (c *controlLink) Close() {
	c.conn.Close()
}
