package runtime

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync/atomic"
)

// The recovery control channel is a side TCP connection between splitter and
// merger. It shares the merger's listener: a peer that handshakes with
// controlConnID instead of a worker id is a control connection. Over it flow
// two kinds of 8-byte little-endian frames:
//
//	merger -> splitter: the released watermark — the count of tuples
//	  released contiguously (i.e. the lowest unreleased sequence number),
//	  sent periodically and once more when the merge completes. The
//	  splitter retains every sent tuple at or above the watermark and can
//	  therefore replay a dead connection's unreleased tuples to survivors.
//	splitter -> merger: the FIN total — the number of tuples the source
//	  produced, sent exactly once when the source is exhausted. It tells
//	  the merger when the stream is complete even though worker streams
//	  may detach and rejoin arbitrarily along the way.
//
// The paper's transport (Section 4.4) has no such channel because it assumes
// a fixed worker set on long-lived connections; see DESIGN.md, "Failure
// model and recovery", for why this deliberate divergence is required once
// workers are allowed to fail.
const controlConnID = 0xFFFFFFFF

// controlLink is the splitter's end of the control channel.
type controlLink struct {
	conn      net.Conn
	watermark atomic.Uint64
	// wmSignal is pulsed (coalesced) after every watermark advance.
	wmSignal chan struct{}
	// dead is closed when the merger side goes away.
	dead chan struct{}
}

// dialControl connects to the merger's listener and identifies the
// connection as the control channel, then starts the watermark reader.
func dialControl(addr string) (*controlLink, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("runtime: splitter dial control channel: %w", err)
	}
	var id [4]byte
	binary.LittleEndian.PutUint32(id[:], controlConnID)
	if _, err := conn.Write(id[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("runtime: splitter control handshake: %w", err)
	}
	c := &controlLink{
		conn:     conn,
		wmSignal: make(chan struct{}, 1),
		dead:     make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// readLoop consumes watermark frames until the connection dies.
func (c *controlLink) readLoop() {
	defer close(c.dead)
	var buf [8]byte
	for {
		if _, err := io.ReadFull(c.conn, buf[:]); err != nil {
			return
		}
		wm := binary.LittleEndian.Uint64(buf[:])
		if wm > c.watermark.Load() {
			c.watermark.Store(wm)
			select {
			case c.wmSignal <- struct{}{}:
			default:
			}
		}
	}
}

// Watermark returns the merger's latest released watermark: every sequence
// number below it has been released downstream exactly once.
func (c *controlLink) Watermark() uint64 {
	return c.watermark.Load()
}

// SendFin tells the merger how many tuples the completed source produced.
func (c *controlLink) SendFin(total uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], total)
	if _, err := c.conn.Write(buf[:]); err != nil {
		return fmt.Errorf("runtime: splitter send fin: %w", err)
	}
	return nil
}

// Close tears down the splitter's end of the channel.
func (c *controlLink) Close() {
	c.conn.Close()
}
