package runtime

import (
	"encoding/binary"
	"testing"
	"time"

	"streambalance/internal/transport"
)

func leU64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// TestCombineBatchCarrierSelection checks that each key's first (lowest-seq)
// occurrence becomes the carrier, later same-key tuples fold into it in
// order, and distinct keys stay separate.
func TestCombineBatchCarrierSelection(t *testing.T) {
	in := []transport.Tuple{
		{Seq: 10, Key: 7, Payload: leU64(1)},
		{Seq: 11, Key: 9, Payload: leU64(100)},
		{Seq: 12, Key: 7, Payload: leU64(2)},
		{Seq: 13, Key: 7, Payload: leU64(4)},
		{Seq: 14, Key: 9, Payload: leU64(200)},
	}
	out, n := combineBatch(SumCombiner(), in)
	if n != 3 {
		t.Fatalf("absorbed %d tuples, want 3", n)
	}
	if len(out) != 2 {
		t.Fatalf("got %d carriers, want 2", len(out))
	}
	if out[0].Seq != 10 || payloadUint(out[0].Payload) != 7 {
		t.Fatalf("key-7 carrier = seq %d sum %d, want seq 10 sum 7", out[0].Seq, payloadUint(out[0].Payload))
	}
	if out[1].Seq != 11 || payloadUint(out[1].Payload) != 300 {
		t.Fatalf("key-9 carrier = seq %d sum %d, want seq 11 sum 300", out[1].Seq, payloadUint(out[1].Payload))
	}
	if c := out[0].AbsorbedCount(); c != 2 {
		t.Fatalf("key-7 carrier absorbed %d, want 2", c)
	}
	if s0, s1 := out[0].AbsorbedSeq(0), out[0].AbsorbedSeq(1); s0 != 12 || s1 != 13 {
		t.Fatalf("key-7 absorbed seqs = %d,%d, want 12,13", s0, s1)
	}
	if c := out[1].AbsorbedCount(); c != 1 || out[1].AbsorbedSeq(0) != 14 {
		t.Fatalf("key-9 absorbed = %v, want [14]", out[1].Absorbed)
	}
}

// TestCombineBatchPassthrough checks that unkeyed and Solo tuples never
// combine — in either role, carrier or absorbee.
func TestCombineBatchPassthrough(t *testing.T) {
	in := []transport.Tuple{
		{Seq: 0, Key: 0, Payload: leU64(1)},              // unkeyed
		{Seq: 1, Key: 5, Solo: true, Payload: leU64(2)},  // replay: no carrier
		{Seq: 2, Key: 5, Payload: leU64(4)},              // first combinable key-5
		{Seq: 3, Key: 0, Payload: leU64(8)},              // unkeyed again
		{Seq: 4, Key: 5, Solo: true, Payload: leU64(16)}, // replay: skips carrier
		{Seq: 5, Key: 5, Payload: leU64(32)},             // folds into seq 2
	}
	out, n := combineBatch(SumCombiner(), in)
	if n != 1 {
		t.Fatalf("absorbed %d, want 1", n)
	}
	wantSeqs := []uint64{0, 1, 2, 3, 4}
	if len(out) != len(wantSeqs) {
		t.Fatalf("got %d tuples out, want %d", len(out), len(wantSeqs))
	}
	for i, w := range wantSeqs {
		if out[i].Seq != w {
			t.Fatalf("out[%d].Seq = %d, want %d", i, out[i].Seq, w)
		}
	}
	if got := payloadUint(out[2].Payload); got != 36 {
		t.Fatalf("carrier sum = %d, want 36", got)
	}
	for i, tt := range out {
		if i != 2 && len(tt.Absorbed) != 0 {
			t.Fatalf("out[%d] (seq %d) unexpectedly absorbed tuples", i, tt.Seq)
		}
	}
}

// TestCombineBatchCopiesCarrierPayload checks the zero-copy-safety contract:
// the first fold must not mutate the carrier's original payload bytes, which
// may alias shared transport memory still visible to other readers.
func TestCombineBatchCopiesCarrierPayload(t *testing.T) {
	shared := leU64(5)
	in := []transport.Tuple{
		{Seq: 0, Key: 3, Payload: shared},
		{Seq: 1, Key: 3, Payload: leU64(6)},
	}
	out, n := combineBatch(SumCombiner(), in)
	if n != 1 || len(out) != 1 {
		t.Fatalf("combine = %d tuples, %d absorbed; want 1, 1", len(out), n)
	}
	if got := binary.LittleEndian.Uint64(shared); got != 5 {
		t.Fatalf("shared upstream payload mutated to %d, want untouched 5", got)
	}
	if got := payloadUint(out[0].Payload); got != 11 {
		t.Fatalf("carrier sum = %d, want 11", got)
	}
}

// TestSumCombinerShortPayloads checks zero-extension of payloads shorter than
// 8 bytes and that the result always carries the sum in 8 bytes.
func TestSumCombinerShortPayloads(t *testing.T) {
	c := SumCombiner()
	acc := c.Combine(1, []byte{3}, []byte{0x01, 0x01}) // 3 + 257
	if len(acc) < 8 {
		t.Fatalf("folded payload only %d bytes", len(acc))
	}
	if got := binary.LittleEndian.Uint64(acc); got != 260 {
		t.Fatalf("sum = %d, want 260", got)
	}
	acc = c.Combine(1, acc, nil) // + 0
	if got := binary.LittleEndian.Uint64(acc); got != 260 {
		t.Fatalf("sum after nil fold = %d, want 260", got)
	}
}

// TestMergerAbsorbedAdvance drives the merger directly over an in-proc edge:
// a combined carrier's absorbed sequences must advance the watermark without
// sink calls, count as CombinedReleased, and a later duplicate of an absorbed
// sequence must be dropped as a dup, not re-released.
func TestMergerAbsorbedAdvance(t *testing.T) {
	var released []uint64
	m, err := NewMerger(1, 16, func(tp transport.Tuple, conn int) {
		released = append(released, tp.Seq)
	})
	if err != nil {
		t.Fatal(err)
	}
	tx, rx := transport.InprocPair(16)
	if err := m.AttachInproc(0, rx); err != nil {
		t.Fatal(err)
	}
	m.Start()

	// Carrier seq 0 absorbed seqs 1 and 2; then 3 and 4 released normally;
	// then a stale duplicate of absorbed seq 1 arrives and must be dropped.
	carrier := transport.Tuple{Seq: 0, Key: 9, Payload: leU64(42)}
	carrier.Absorbed = transport.AppendAbsorbed(carrier.Absorbed, 1)
	carrier.Absorbed = transport.AppendAbsorbed(carrier.Absorbed, 2)
	for _, tp := range []transport.Tuple{
		carrier,
		{Seq: 3, Key: 9, Payload: leU64(7)},
		{Seq: 1, Key: 9, Solo: true, Payload: leU64(99)},
		{Seq: 4, Key: 9, Payload: leU64(8)},
	} {
		if err := tx.Send(tp); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Watermark() < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("watermark stuck at %d, want 5", m.Watermark())
		}
		time.Sleep(time.Millisecond)
	}
	tx.Close()
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 3, 4}
	if len(released) != len(want) {
		t.Fatalf("released %v, want %v", released, want)
	}
	for i, w := range want {
		if released[i] != w {
			t.Fatalf("released %v, want %v", released, want)
		}
	}
	if got := m.CombinedReleased(); got != 2 {
		t.Fatalf("CombinedReleased = %d, want 2", got)
	}
	if m.Deduped() == 0 {
		t.Fatalf("stale duplicate of an absorbed seq was not counted as dedup")
	}
}
