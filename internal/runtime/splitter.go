package runtime

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"streambalance/internal/core"
	"streambalance/internal/metrics"
	"streambalance/internal/schedule"
	"streambalance/internal/stats"
	"streambalance/internal/transport"
)

// Source supplies tuple payloads to the splitter. Returning ok=false ends
// the stream. When recovery is enabled the returned payload must not be
// mutated after the call returns: the splitter retains it (by reference)
// until the merger's watermark passes the tuple, in case it must be
// replayed to a surviving worker.
type Source func(seq uint64) (payload []byte, ok bool)

// ConstantSource emits the same payload for n tuples (n == 0 means
// unbounded).
func ConstantSource(payload []byte, n uint64) Source {
	return func(seq uint64) ([]byte, bool) {
		if n > 0 && seq >= n {
			return nil, false
		}
		return payload, true
	}
}

// KeyedSource supplies keyed tuple payloads. Key 0 means unkeyed: the tuple
// routes through the weighted round-robin like any Source tuple and never
// combines. Non-zero keys route through the configured KeyRouter. The same
// retention rule as Source applies to payloads when recovery is enabled.
type KeyedSource func(seq uint64) (key uint64, payload []byte, ok bool)

// ConnEvent reports a recovery event on one splitter connection.
type ConnEvent struct {
	// Kind is "down" (connection failed), "replay" (its unreleased tuples
	// were re-sent to survivors), "rejoin" (a redial succeeded and the
	// worker was re-admitted), "quarantine" (the merge-stall watchdog
	// ejected the worker), "evicted" (the quarantine circuit breaker
	// retired the worker permanently) or "redial-exhausted" (the redial
	// attempt budget ran out; the worker stays gone). All kinds are emitted
	// from the splitter's send loop except "redial-exhausted", which is
	// emitted from the redial goroutine.
	Kind string
	// Conn is the stable worker index (position in WorkerAddrs).
	Conn int
	// Tuples counts replayed tuples (Kind "replay").
	Tuples int
	// Err is the failure cause (Kinds "down" and "redial-exhausted").
	Err error
}

// SplitterConfig configures a Splitter.
type SplitterConfig struct {
	// WorkerAddrs are the worker PE endpoints, one connection each.
	WorkerAddrs []string
	// Senders, when set, supplies pre-built transport edges (one per worker)
	// instead of dialing WorkerAddrs — the in-process region path, where each
	// entry is an InprocSender wired straight into a worker goroutine. The
	// splitter schedules, measures blocking and balances over them exactly as
	// it does over TCP connections; what it cannot do is recovery, which is
	// inherently a remote-process concern (control channel, replay, redial),
	// so Senders is mutually exclusive with WorkerAddrs and ControlAddr.
	Senders []transport.BatchSender
	// Source feeds the splitter. Exactly one of Source and KeyedSource is
	// required.
	Source Source
	// KeyedSource feeds the splitter with keyed tuples; non-zero keys route
	// through Router instead of the weighted round-robin. Mutually exclusive
	// with Source.
	KeyedSource KeyedSource
	// Router places non-zero keys on connections when KeyedSource is set
	// (default: PKG, two choices per key). When a Balancer is also
	// configured, routers implementing schedule.LoadAware receive each
	// controller tick's sampled blocking rates as penalties, steering the
	// least-loaded pick away from blocked connections — the keyed analogue
	// of the minimax balancer's weight updates. Replays after a failure
	// bypass the router (any survivor may carry a Solo replay; ordering and
	// exactly-once are the merger's job, and Solo tuples never combine).
	Router schedule.KeyRouter
	// Balancer, when set, drives dynamic weights from sampled blocking
	// rates. Nil means fixed even round-robin.
	Balancer *core.Balancer
	// SampleInterval is the controller's collection interval (default 1s;
	// tests use much shorter).
	SampleInterval time.Duration
	// ResetInterval periodically resets the cumulative counters as the
	// paper's transport does (default 16x the sample interval; negative
	// disables).
	ResetInterval time.Duration
	// OnSample, when set, observes each controller tick. With recovery
	// enabled the rates/weights vectors track the live connection set, so
	// their length can change between ticks.
	OnSample func(now time.Duration, rates []float64, weights []int)
	// SocketBufferBytes sizes the kernel send buffer of each worker
	// connection (default DefaultSocketBuffer). The blocking-time signal
	// only exists when the buffers are small relative to the workload:
	// with gigantic buffers the kernel absorbs everything and no send ever
	// blocks — the paper's "numerous system buffers" caveat (Section 4.4).
	SocketBufferBytes int
	// BatchSize is how many tuples the send loop drains from the WRR
	// schedule between blocking samples. Each tuple is still scheduled
	// individually, but every connection's share of the round leaves in
	// one vectored write. <= 1 (the default) sends per tuple. Larger
	// batches raise throughput and coarsen the Section 3 signal: one
	// elect-to-block sample covers a whole flushed batch rather than one
	// tuple (see DESIGN §4b).
	BatchSize int

	// ControlAddr, when set, enables recovery: the splitter opens a side
	// connection to the merger at this address, receives released
	// watermarks, retains unreleased tuples, and on a connection failure
	// replays the dead connection's unreleased tuples to survivors
	// instead of failing the region.
	ControlAddr string
	// RetainCap bounds the replay buffer in tuples (default
	// DefaultRetainCap). When it fills, the splitter blocks until the
	// watermark advances — back pressure against a lagging merger.
	RetainCap int
	// Redial, when non-nil, re-establishes failed worker connections with
	// exponential backoff and jitter; a reconnected worker rejoins the
	// schedule (and the balancer, which re-learns its capacity). Only
	// meaningful with ControlAddr set.
	Redial *transport.RedialPolicy
	// OnConnEvent observes recovery events. Optional; called from the
	// splitter's send loop (except "redial-exhausted", see ConnEvent).
	OnConnEvent func(ConnEvent)
	// Metrics, when set, exports the splitter's blocking signal, the
	// balancer's decisions and recovery events through the observability
	// layer. Nil disables instrumentation.
	Metrics *RegionMetrics
	// Timeouts bounds the splitter's I/O: worker and control dials, the
	// worker ready-ACK probe, control-channel reads/writes and the
	// per-flush send stall. Zero fields select the defaults; negative
	// fields disable the corresponding deadline.
	Timeouts Timeouts
	// MaxReadmits caps how many times one worker may be quarantined and
	// still redialed: past the cap the circuit breaker retires it
	// permanently (0 selects DefaultMaxReadmits, negative is unlimited).
	// Only meaningful with ControlAddr set.
	MaxReadmits int
}

// DefaultSocketBuffer is the kernel buffer size requested per connection.
const DefaultSocketBuffer = 64 << 10

// DefaultRetainCap bounds the replay buffer (tuples retained above the
// released watermark).
const DefaultRetainCap = 16384

// splitConn is one live worker edge with its stable identity. conn is the
// underlying socket on the TCP transport and nil on the in-process transport
// (which has no socket to monitor).
type splitConn struct {
	id       int // stable worker index; survives rejoin
	addr     string
	conn     net.Conn
	sender   transport.BatchSender
	dialedAt time.Time
}

// retainEntry is one sent-but-unreleased tuple in the replay buffer. conn
// is the stable id of the connection carrying it, or -1 while a send is in
// flight. key is retained so replays carry it (flagged Solo, so a replayed
// tuple never combines with a fresh one).
type retainEntry struct {
	seq     uint64
	key     uint64
	conn    int
	payload []byte
}

// rejoin carries a successfully redialed connection into the send loop.
type rejoin struct {
	id     int
	addr   string
	conn   net.Conn
	sender *transport.Sender
}

// Splitter distributes tuples across worker connections by smooth weighted
// round-robin, measuring per-connection blocking, and (optionally) runs the
// balancing controller. With recovery enabled it also retains unreleased
// tuples and replays them across surviving connections when a worker dies.
type Splitter struct {
	cfg SplitterConfig
	wrr *schedule.WRR
	// src unifies Source and KeyedSource (unkeyed sources yield key 0).
	src KeyedSource
	// router places non-zero keys; nil for unkeyed splitters. Its index
	// space mirrors the live-connection positions (Remove/Add track
	// membership edits exactly like the WRR). Guarded by mu.
	router schedule.KeyRouter
	// keyedSent counts router-placed tuples per stable worker id, feeding
	// the per-tick key-imbalance gauge. Guarded by mu.
	keyedSent []int64
	to        Timeouts
	// maxReadmits is the resolved quarantine circuit-breaker budget
	// (-1 = unlimited).
	maxReadmits int

	// mu guards conns, epoch, the balancer and the per-worker aggregates;
	// membership mutations happen only on the send-loop goroutine.
	mu          sync.Mutex
	conns       []*splitConn
	epoch       int // bumped on every membership change
	aggSent     []int64
	aggBlocking []time.Duration
	aggBlocked  []int64
	started     bool
	closedIdle  bool

	// Metrics state: per-stable-id pre-resolved handles, and the last
	// published totals so counter deltas stay monotone across the
	// aggregate/live split. Guarded by mu.
	mtr      *RegionMetrics
	cm       []connInstruments
	pubSent  []int64
	pubBlock []time.Duration
	pubEvts  []int64
	pubPicks int64

	// Recovery state, owned by the send loop. quarCount tracks how many
	// times each stable worker id has been quarantined (circuit-breaker
	// input); it is touched only on the send loop.
	ctrl      *controlLink
	retained  []retainEntry
	retHead   int
	downErrs  []error
	quarCount []int

	deadCh   chan int
	rejoinCh chan rejoin
	stop     chan struct{}
	stopOnce sync.Once

	weightCh chan weightUpdate
	done     chan struct{}
	stopCtl  chan struct{}
	ctlDone  chan struct{}
	err      error
	startedT time.Time
}

// weightUpdate carries a controller decision into the send loop; it is
// applied only if the membership epoch is unchanged.
type weightUpdate struct {
	epoch   int
	weights []int
}

// NewSplitter dials every worker (and, in recovery mode, the control
// channel). With cfg.Senders set it dials nothing and schedules over the
// supplied transport edges instead.
func NewSplitter(cfg SplitterConfig) (*Splitter, error) {
	n := len(cfg.WorkerAddrs)
	if len(cfg.Senders) > 0 {
		if n > 0 {
			return nil, errors.New("runtime: WorkerAddrs and Senders are mutually exclusive")
		}
		if cfg.ControlAddr != "" {
			return nil, errors.New("runtime: recovery requires the TCP transport (Senders set with ControlAddr)")
		}
		n = len(cfg.Senders)
	}
	if n == 0 {
		return nil, errors.New("runtime: splitter needs worker addresses or senders")
	}
	if cfg.Source == nil && cfg.KeyedSource == nil {
		return nil, errors.New("runtime: splitter needs a source")
	}
	if cfg.Source != nil && cfg.KeyedSource != nil {
		return nil, errors.New("runtime: Source and KeyedSource are mutually exclusive")
	}
	if cfg.Router != nil && cfg.KeyedSource == nil {
		return nil, errors.New("runtime: Router requires KeyedSource")
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = time.Second
	}
	if cfg.ResetInterval == 0 {
		cfg.ResetInterval = 16 * cfg.SampleInterval
	}
	if cfg.SocketBufferBytes <= 0 {
		cfg.SocketBufferBytes = DefaultSocketBuffer
	}
	if cfg.RetainCap <= 0 {
		cfg.RetainCap = DefaultRetainCap
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1
	}
	wrr, err := schedule.NewWRR(n)
	if err != nil {
		return nil, err
	}
	sp := &Splitter{
		cfg:         cfg,
		wrr:         wrr,
		keyedSent:   make([]int64, n),
		to:          cfg.Timeouts.norm(),
		quarCount:   make([]int, n),
		aggSent:     make([]int64, n),
		aggBlocking: make([]time.Duration, n),
		aggBlocked:  make([]int64, n),
		deadCh:      make(chan int, 4*n+4),
		rejoinCh:    make(chan rejoin, n+1),
		stop:        make(chan struct{}),
		weightCh:    make(chan weightUpdate, 1),
		done:        make(chan struct{}),
		stopCtl:     make(chan struct{}),
		ctlDone:     make(chan struct{}),
	}
	switch {
	case cfg.MaxReadmits == 0:
		sp.maxReadmits = DefaultMaxReadmits
	case cfg.MaxReadmits < 0:
		sp.maxReadmits = -1
	default:
		sp.maxReadmits = cfg.MaxReadmits
	}
	if cfg.KeyedSource != nil {
		sp.src = cfg.KeyedSource
		sp.router = cfg.Router
		if sp.router == nil {
			sp.router, err = schedule.NewPKGRouter(n)
			if err != nil {
				return nil, err
			}
		}
		if sp.router.N() != n {
			return nil, fmt.Errorf("runtime: router covers %d connections, splitter has %d", sp.router.N(), n)
		}
	} else {
		src := cfg.Source
		sp.src = func(seq uint64) (uint64, []byte, bool) {
			payload, ok := src(seq)
			return 0, payload, ok
		}
	}
	initial := core.EvenWeights(n, core.DefaultUnits)
	if err := sp.wrr.SetWeights(initial); err != nil {
		return nil, err
	}
	if cfg.Metrics != nil {
		sp.mtr = cfg.Metrics
		sp.cm = make([]connInstruments, n)
		sp.pubSent = make([]int64, n)
		sp.pubBlock = make([]time.Duration, n)
		sp.pubEvts = make([]int64, n)
		for i := 0; i < n; i++ {
			sp.cm[i] = cfg.Metrics.conn(i)
			sp.cm[i].up.Set(1)
			sp.cm[i].weight.Set(float64(initial[i]))
		}
	}
	if len(cfg.Senders) > 0 {
		for i, sender := range cfg.Senders {
			sender.SetStallTimeout(sp.to.SendStall)
			sp.conns = append(sp.conns, &splitConn{id: i, sender: sender, dialedAt: time.Now()})
		}
	} else {
		for i, addr := range cfg.WorkerAddrs {
			conn, err := sp.dialWorker(addr)
			if err != nil {
				sp.closeSenders()
				return nil, fmt.Errorf("runtime: splitter dial worker %d: %w", i, err)
			}
			sender, err := transport.NewSender(conn)
			if err != nil {
				conn.Close()
				sp.closeSenders()
				return nil, fmt.Errorf("runtime: splitter wrap worker %d: %w", i, err)
			}
			sender.SetStallTimeout(sp.to.SendStall)
			sp.conns = append(sp.conns, &splitConn{id: i, addr: addr, conn: conn, sender: sender, dialedAt: time.Now()})
		}
	}
	if cfg.ControlAddr != "" {
		// Consume every worker's ready ACK before the monitors start (a
		// monitor treats any readable byte as peer death). This doubles as
		// the admission health check: a worker that cannot reach the merger
		// within the probe deadline never enters the schedule.
		for _, c := range sp.conns {
			if err := sp.probeReady(c.conn); err != nil {
				sp.closeSenders()
				return nil, fmt.Errorf("runtime: splitter probe worker %d: %w", c.id, err)
			}
		}
		ctrl, err := dialControl(cfg.ControlAddr, sp.to)
		if err != nil {
			sp.closeSenders()
			return nil, err
		}
		sp.ctrl = ctrl
	}
	return sp, nil
}

// probeReady waits for the worker's ready ACK byte: the worker writes it once
// its merger connection is up and identified, so reading it proves the whole
// forwarding path. Bounded by the Probe timeout.
func (sp *Splitter) probeReady(conn net.Conn) error {
	if sp.to.Probe > 0 {
		conn.SetReadDeadline(time.Now().Add(sp.to.Probe))
		defer conn.SetReadDeadline(time.Time{})
	}
	var b [1]byte
	if _, err := io.ReadFull(conn, b[:]); err != nil {
		return fmt.Errorf("ready ack: %w", err)
	}
	if b[0] != workerReadyAck {
		return fmt.Errorf("ready ack: unexpected byte %#x", b[0])
	}
	return nil
}

// dialWorker dials one worker endpoint and applies the socket buffer size.
func (sp *Splitter) dialWorker(addr string) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, sp.to.dialTimeout())
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		if err := tc.SetWriteBuffer(sp.cfg.SocketBufferBytes); err != nil {
			conn.Close()
			return nil, fmt.Errorf("set buffer: %w", err)
		}
	}
	return conn, nil
}

func (sp *Splitter) closeSenders() {
	sp.mu.Lock()
	conns := append([]*splitConn(nil), sp.conns...)
	sp.mu.Unlock()
	for _, c := range conns {
		c.sender.Close()
	}
}

// Close releases the connections of a splitter that was constructed but
// never started. It is a no-op once Start has run (the send loop owns the
// teardown then).
func (sp *Splitter) Close() {
	sp.mu.Lock()
	if sp.started || sp.closedIdle {
		sp.mu.Unlock()
		return
	}
	sp.closedIdle = true
	sp.mu.Unlock()
	sp.closeSenders()
	if sp.ctrl != nil {
		sp.ctrl.Close()
	}
	sp.stopOnce.Do(func() { close(sp.stop) })
}

// Start launches the send loop and, if a balancer is configured, the
// controller goroutine.
func (sp *Splitter) Start() {
	sp.mu.Lock()
	sp.started = true
	conns := append([]*splitConn(nil), sp.conns...)
	sp.mu.Unlock()
	sp.startedT = time.Now()
	if sp.recovery() {
		for _, c := range conns {
			go sp.monitor(c)
		}
	}
	go sp.controller()
	go func() {
		defer close(sp.done)
		sp.err = sp.sendLoop()
		close(sp.stopCtl)
		<-sp.ctlDone
		if sp.mtr != nil {
			// Final flush so scrape-after-completion sees exact totals
			// even when the run ended between controller ticks.
			sp.mu.Lock()
			sp.publishTransportLocked()
			sp.mu.Unlock()
			sp.mtr.replayDepth.Set(float64(len(sp.retained) - sp.retHead))
		}
		sp.stopOnce.Do(func() { close(sp.stop) })
		sp.closeSenders()
		if sp.ctrl != nil {
			sp.ctrl.Close()
		}
	}()
}

func (sp *Splitter) recovery() bool {
	return sp.ctrl != nil
}

// monitor watches one connection for a peer close: workers never send data
// back, so a read returning at all means the connection died. This detects
// failures even while the splitter is not sending to that connection.
func (sp *Splitter) monitor(c *splitConn) {
	buf := make([]byte, 1)
	c.conn.Read(buf)
	select {
	case sp.deadCh <- c.id:
	case <-sp.stop:
	}
}

func (sp *Splitter) event(ev ConnEvent) {
	if sp.mtr != nil {
		sp.mtr.connEvent(ev)
	}
	if sp.cfg.OnConnEvent != nil {
		sp.cfg.OnConnEvent(ev)
	}
}

// sendLoop is the splitter's single thread of control. All membership
// changes (failures, replays, rejoins) happen here, between sends.
func (sp *Splitter) sendLoop() error {
	if sp.cfg.BatchSize > 1 {
		return sp.sendLoopBatched()
	}
	recovery := sp.recovery()
	var seq uint64
	for {
		// Apply any weight update the controller published.
		select {
		case wu := <-sp.weightCh:
			if err := sp.applyWeights(wu); err != nil {
				return err
			}
		default:
		}
		if recovery {
			if err := sp.pollEvents(); err != nil {
				return err
			}
		}
		key, payload, ok := sp.src(seq)
		if !ok {
			break
		}
		var entry *retainEntry
		if recovery {
			var err error
			entry, err = sp.admitRetention(seq, key, payload)
			if err != nil {
				return err
			}
		}
		for {
			c := sp.pickFor(key)
			if c == nil {
				return sp.allDeadErr()
			}
			err := c.sender.Send(transport.Tuple{Seq: seq, Key: key, Payload: payload})
			if err == nil {
				if entry != nil {
					entry.conn = c.id
				}
				break
			}
			if !recovery {
				return fmt.Errorf("runtime: send to worker %d: %w", c.id, err)
			}
			if ferr := sp.handleConnFailure(c, err); ferr != nil {
				return ferr
			}
		}
		seq++
	}
	if !recovery {
		return nil
	}
	return sp.drain(seq)
}

// sendLoopBatched drains up to BatchSize tuples from the WRR schedule per
// round. Each tuple is assigned to a connection exactly as the per-tuple
// loop would assign it, but the frames are staged (Sender.Queue) and every
// connection's share of the round leaves in one vectored write. Blocking is
// measured on the combined write — one elect-to-block sample covers the
// whole flushed batch — which is the batching tradeoff: more tuples per
// Section 3 sample, fewer samples per tuple.
func (sp *Splitter) sendLoopBatched() error {
	recovery := sp.recovery()
	batch := sp.cfg.BatchSize
	touched := make([]*splitConn, 0, batch)
	var seq uint64
	for {
		// Apply any weight update the controller published.
		select {
		case wu := <-sp.weightCh:
			if err := sp.applyWeights(wu); err != nil {
				return err
			}
		default:
		}
		if recovery {
			if err := sp.pollEvents(); err != nil {
				return err
			}
		}
		touched = touched[:0]
		srcDone := false
		for staged := 0; staged < batch; staged++ {
			key, payload, ok := sp.src(seq)
			if !ok {
				srcDone = true
				break
			}
			var entry *retainEntry
			if recovery {
				var err error
				entry, err = sp.admitRetention(seq, key, payload)
				if err != nil {
					return err
				}
			}
			for {
				c := sp.pickFor(key)
				if c == nil {
					return sp.allDeadErr()
				}
				err := c.sender.Queue(transport.Tuple{Seq: seq, Key: key, Payload: payload})
				if err == nil {
					// Assign the retain entry at Queue time, not flush
					// time: if the flush fails, replay must cover the
					// staged tuples that never reached the socket.
					if entry != nil {
						entry.conn = c.id
					}
					if c.sender.Pending() == 1 {
						touched = append(touched, c)
					}
					break
				}
				if !recovery {
					return fmt.Errorf("runtime: send to worker %d: %w", c.id, err)
				}
				if ferr := sp.handleConnFailure(c, err); ferr != nil {
					return ferr
				}
			}
			seq++
		}
		if err := sp.flushStaged(touched, recovery); err != nil {
			return err
		}
		if srcDone {
			break
		}
	}
	if !recovery {
		return nil
	}
	return sp.drain(seq)
}

// flushStaged flushes every connection the staging round touched. A flush
// failure in recovery mode retires the connection and replays its
// unreleased tuples — including the staged frames that never reached the
// socket, since retain entries carry their connection from Queue time.
func (sp *Splitter) flushStaged(touched []*splitConn, recovery bool) error {
	for _, c := range touched {
		n := c.sender.Pending()
		if n == 0 {
			continue
		}
		if recovery && sp.findLive(c.id) != c {
			// Retired mid-round (its staged tuples were already replayed);
			// the sender is closed, nothing to flush.
			continue
		}
		err := c.sender.Flush()
		if err == nil {
			if sp.mtr != nil {
				sp.mtr.batchFlushes.Inc()
				sp.mtr.batchTuples.Observe(float64(n))
			}
			continue
		}
		if !recovery {
			return fmt.Errorf("runtime: flush %d tuples to worker %d: %w", n, c.id, err)
		}
		if ferr := sp.handleConnFailure(c, err); ferr != nil {
			return ferr
		}
	}
	return nil
}

// pickLive returns the next connection per the weighted round-robin, or nil
// when none remain.
func (sp *Splitter) pickLive() *splitConn {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if len(sp.conns) == 0 {
		return nil
	}
	return sp.conns[sp.wrr.Next()]
}

// pickFor returns the connection for one fresh tuple: non-zero keys go
// through the key router, everything else through the weighted round-robin.
func (sp *Splitter) pickFor(key uint64) *splitConn {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if len(sp.conns) == 0 {
		return nil
	}
	if key == 0 || sp.router == nil {
		return sp.conns[sp.wrr.Next()]
	}
	c := sp.conns[sp.router.Route(key)]
	sp.keyedSent[c.id]++
	return c
}

func (sp *Splitter) applyWeights(wu weightUpdate) error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if wu.epoch != sp.epoch {
		return nil // stale: membership changed since the controller sampled
	}
	if err := sp.wrr.SetWeights(wu.weights); err != nil {
		return fmt.Errorf("runtime: apply weights: %w", err)
	}
	return nil
}

// pollEvents drains pending failure, quarantine and rejoin notifications
// without blocking.
func (sp *Splitter) pollEvents() error {
	for {
		select {
		case id := <-sp.deadCh:
			c := sp.findLive(id)
			if c == nil {
				continue
			}
			if err := sp.handleConnFailure(c, fmt.Errorf("runtime: worker %d connection closed by peer", id)); err != nil {
				return err
			}
		case id := <-sp.ctrl.quarCh:
			if err := sp.handleQuarantine(id); err != nil {
				return err
			}
		case rj := <-sp.rejoinCh:
			sp.admitRejoin(rj)
		default:
			return nil
		}
	}
}

// handleQuarantine ejects a stalled worker nominated by the merger's
// merge-stall watchdog. The merger nominates heuristically (oldest silent
// reader); the splitter holds the authoritative evidence — the replay buffer
// knows which connection carries the head-of-line sequence — so it overrides
// a nomination that disagrees with the head owner. The ejection itself rides
// the ordinary membership-edit path: retire, replay to survivors, redial.
func (sp *Splitter) handleQuarantine(id int) error {
	if owner := sp.headOwner(); owner >= 0 && owner != id && sp.findLive(owner) != nil {
		if sp.mtr != nil {
			sp.mtr.traceEvent(metrics.Event{
				Kind:   "quarantine-override",
				Conn:   owner,
				Detail: fmt.Sprintf("merger nominated %d, head-of-line owner is %d", id, owner),
			})
		}
		id = owner
	}
	c := sp.findLive(id)
	if c == nil {
		return nil // already retired (raced with a connection failure)
	}
	sp.quarCount[id]++
	sp.event(ConnEvent{Kind: "quarantine", Conn: id})
	return sp.handleConnFailure(c, fmt.Errorf("runtime: worker %d quarantined by merge-stall watchdog", id))
}

// headOwner reports which stable worker id carries the lowest unreleased
// sequence number, or -1 when unknown (empty buffer, or the head send is
// still in flight). It must not compact the buffer: the send loop may hold a
// pointer into it.
func (sp *Splitter) headOwner() int {
	wm := sp.ctrl.Watermark()
	for i := sp.retHead; i < len(sp.retained); i++ {
		if sp.retained[i].seq >= wm {
			return sp.retained[i].conn
		}
	}
	return -1
}

func (sp *Splitter) findLive(id int) *splitConn {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	for _, c := range sp.conns {
		if c.id == id {
			return c
		}
	}
	return nil
}

// admitRetention appends the tuple to the replay buffer, blocking while the
// buffer is full until the merger's watermark frees space.
func (sp *Splitter) admitRetention(seq, key uint64, payload []byte) (*retainEntry, error) {
	sp.pruneRetained()
	for len(sp.retained)-sp.retHead >= sp.cfg.RetainCap {
		select {
		case <-sp.ctrl.wmSignal:
			sp.pruneRetained()
		case <-sp.ctrl.dead:
			return nil, errors.New("runtime: control channel lost with replay buffer full")
		case id := <-sp.deadCh:
			c := sp.findLive(id)
			if c != nil {
				if err := sp.handleConnFailure(c, fmt.Errorf("runtime: worker %d connection closed by peer", id)); err != nil {
					return nil, err
				}
			}
		case id := <-sp.ctrl.quarCh:
			if err := sp.handleQuarantine(id); err != nil {
				return nil, err
			}
		case rj := <-sp.rejoinCh:
			sp.admitRejoin(rj)
		}
	}
	sp.retained = append(sp.retained, retainEntry{seq: seq, key: key, conn: -1, payload: payload})
	if sp.mtr != nil {
		sp.mtr.replayDepth.Set(float64(len(sp.retained) - sp.retHead))
	}
	return &sp.retained[len(sp.retained)-1], nil
}

// pruneRetained drops retained tuples the merger has released.
func (sp *Splitter) pruneRetained() {
	wm := sp.ctrl.Watermark()
	for sp.retHead < len(sp.retained) && sp.retained[sp.retHead].seq < wm {
		sp.retained[sp.retHead].payload = nil
		sp.retHead++
	}
	if sp.retHead > 0 && sp.retHead*2 >= len(sp.retained) {
		n := copy(sp.retained, sp.retained[sp.retHead:])
		for i := n; i < len(sp.retained); i++ {
			sp.retained[i] = retainEntry{}
		}
		sp.retained = sp.retained[:n]
		sp.retHead = 0
	}
	if sp.mtr != nil {
		sp.mtr.replayDepth.Set(float64(len(sp.retained) - sp.retHead))
	}
}

// removeConn retires a failed connection: folds its counters, drops it from
// the live set and the schedule, and rebalances the freed weight across
// survivors. Reports whether the connection was still live.
func (sp *Splitter) removeConn(c *splitConn, cause error) bool {
	sp.mu.Lock()
	pos := -1
	for i, lc := range sp.conns {
		if lc == c {
			pos = i
			break
		}
	}
	if pos < 0 {
		sp.mu.Unlock()
		return false
	}
	sp.aggSent[c.id] += c.sender.Sent()
	sp.aggBlocking[c.id] += c.sender.TotalBlocking()
	sp.aggBlocked[c.id] += c.sender.BlockEvents()
	sp.conns = append(sp.conns[:pos], sp.conns[pos+1:]...)
	sp.epoch++
	var weights []int
	if sp.cfg.Balancer != nil && sp.cfg.Balancer.Connections() > 1 {
		// The balancer folds the dead connection's weight back into the
		// survivors immediately, so the splitter never routes to it.
		sp.cfg.Balancer.RemoveConnection(pos)
		weights = sp.cfg.Balancer.Weights()
	}
	sp.wrr.Remove(pos)
	if sp.router != nil {
		sp.router.Remove(pos)
	}
	if weights != nil {
		sp.wrr.SetWeights(weights)
	}
	sp.downErrs = append(sp.downErrs, fmt.Errorf("worker %d: %w", c.id, cause))
	if sp.mtr != nil {
		sp.mtr.connLifetime.Observe(time.Since(c.dialedAt).Seconds())
		sp.publishTransportLocked()
	}
	sp.mu.Unlock()
	c.sender.Close()
	sp.event(ConnEvent{Kind: "down", Conn: c.id, Err: cause})
	if sp.cfg.Redial != nil {
		// Circuit breaker: a worker that keeps getting quarantined is not
		// worth re-admitting — each readmission costs a replay storm.
		if sp.maxReadmits >= 0 && sp.quarCount[c.id] > sp.maxReadmits {
			sp.event(ConnEvent{Kind: "evicted", Conn: c.id})
		} else {
			go sp.redialLoop(c.id, c.addr)
		}
	}
	return true
}

func (sp *Splitter) liveCount() int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return len(sp.conns)
}

func (sp *Splitter) allDeadErr() error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return fmt.Errorf("runtime: all worker connections failed: %w", errors.Join(sp.downErrs...))
}

// handleConnFailure retires the failed connection and replays every
// unreleased tuple it carried across the survivors. If a survivor fails
// during replay it is retired too and its tuples join the worklist.
func (sp *Splitter) handleConnFailure(c *splitConn, cause error) error {
	var deadIDs []int
	if sp.removeConn(c, cause) {
		deadIDs = append(deadIDs, c.id)
	}
	for len(deadIDs) > 0 {
		if sp.liveCount() == 0 {
			return sp.allDeadErr()
		}
		// No pruning here: compaction would invalidate the retain-entry
		// pointer the send loop holds across this call. Replaying an
		// already-released tuple is harmless — the merger dedupes it.
		id := deadIDs[0]
		deadIDs = deadIDs[1:]
		entries := sp.collectRetained(id)
		for _, e := range entries {
			for {
				c2 := sp.pickLive()
				if c2 == nil {
					return sp.allDeadErr()
				}
				// Replays are Solo: a re-sent tuple must never be absorbed
				// into a combine group, or a crash between the original group
				// and the replay could double-count it.
				if err := c2.sender.Send(transport.Tuple{Seq: e.seq, Key: e.key, Solo: e.key != 0, Payload: e.payload}); err != nil {
					if sp.removeConn(c2, err) {
						deadIDs = append(deadIDs, c2.id)
					}
					continue
				}
				e.conn = c2.id
				break
			}
		}
		sp.event(ConnEvent{Kind: "replay", Conn: id, Tuples: len(entries)})
	}
	return nil
}

// collectRetained returns the retained entries currently assigned to the
// given stable worker id.
func (sp *Splitter) collectRetained(id int) []*retainEntry {
	var out []*retainEntry
	for i := sp.retHead; i < len(sp.retained); i++ {
		if sp.retained[i].conn == id {
			out = append(out, &sp.retained[i])
		}
	}
	return out
}

// redialLoop re-establishes a failed worker connection with backoff, health
// probes it, and hands it to the send loop. When the attempt budget runs out
// (dial failures and probe failures both count) it emits "redial-exhausted"
// and gives up — the worker stays out of the schedule for good.
func (sp *Splitter) redialLoop(id int, addr string) {
	pol := *sp.cfg.Redial
	if sp.mtr != nil {
		ctr := sp.cm[id].redials
		prev := pol.OnAttempt
		pol.OnAttempt = func(attempt int, err error) {
			ctr.Inc()
			if prev != nil {
				prev(attempt, err)
			}
		}
	}
	rd := transport.NewRedialer(addr, pol)
	probeFails := 0
	probeBackoff := pol.Base
	if probeBackoff <= 0 {
		probeBackoff = 20 * time.Millisecond
	}
	probeMax := pol.Max
	if probeMax <= 0 {
		probeMax = 2 * time.Second
	}
	for {
		conn, err := rd.Dial(sp.stop)
		if err != nil {
			select {
			case <-sp.stop: // shutting down, not exhausted
			default:
				sp.event(ConnEvent{Kind: "redial-exhausted", Conn: id, Err: err})
			}
			return
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetWriteBuffer(sp.cfg.SocketBufferBytes)
		}
		// Readmission health probe: an accepted TCP connection only proves
		// the listener is alive. Require the worker's ready ACK (its merger
		// path re-established) before letting it back into the schedule.
		if sp.recovery() {
			if perr := sp.probeReady(conn); perr != nil {
				conn.Close()
				probeFails++
				if pol.MaxAttempts > 0 && rd.Attempts()+probeFails >= pol.MaxAttempts {
					sp.event(ConnEvent{Kind: "redial-exhausted", Conn: id,
						Err: fmt.Errorf("health probe: %w", perr)})
					return
				}
				select {
				case <-sp.stop:
					return
				case <-time.After(probeBackoff):
				}
				probeBackoff *= 2
				if probeBackoff > probeMax {
					probeBackoff = probeMax
				}
				continue
			}
		}
		sender, err := transport.NewSender(conn)
		if err != nil {
			conn.Close()
			return
		}
		sender.SetStallTimeout(sp.to.SendStall)
		select {
		case sp.rejoinCh <- rejoin{id: id, addr: addr, conn: conn, sender: sender}:
		case <-sp.stop:
			sender.Close()
		}
		return
	}
}

// admitRejoin re-admits a redialed worker: it re-enters the schedule and
// the balancer with zero weight, so the next rebalance explores it and the
// learning loop re-measures its capacity.
func (sp *Splitter) admitRejoin(rj rejoin) {
	c := &splitConn{id: rj.id, addr: rj.addr, conn: rj.conn, sender: rj.sender, dialedAt: time.Now()}
	sp.mu.Lock()
	sp.conns = append(sp.conns, c)
	sp.epoch++
	if sp.cfg.Balancer != nil {
		sp.cfg.Balancer.AddConnection()
		sp.wrr.Add(0)
		sp.wrr.SetWeights(sp.cfg.Balancer.Weights())
	} else {
		// Without a balancer, give the newcomer an even share at once.
		w := sp.wrr.Weights()
		share := core.DefaultUnits / (len(w) + 1)
		if share < 1 {
			share = 1
		}
		sp.wrr.Add(share)
	}
	if sp.router != nil {
		sp.router.Add()
	}
	sp.mu.Unlock()
	go sp.monitor(c)
	sp.event(ConnEvent{Kind: "rejoin", Conn: rj.id})
	if sp.quarCount[rj.id] > 0 && sp.mtr != nil {
		sp.mtr.traceEvent(metrics.Event{Kind: "readmit", Conn: rj.id})
	}
}

// drain holds the splitter open after the source is exhausted until the
// merger confirms (via the watermark) that every tuple was released —
// replaying on any late connection failure — so a worker dying with tuples
// in flight cannot lose data.
func (sp *Splitter) drain(total uint64) error {
	if err := sp.ctrl.SendFin(total); err != nil {
		if sp.ctrl.Watermark() >= total {
			return nil
		}
		return err
	}
	for {
		sp.pruneRetained()
		if sp.ctrl.Watermark() >= total {
			return nil
		}
		select {
		case <-sp.ctrl.wmSignal:
		case <-sp.ctrl.dead:
			if sp.ctrl.Watermark() >= total {
				return nil
			}
			return fmt.Errorf("runtime: merger lost before releasing all tuples (watermark %d of %d)",
				sp.ctrl.Watermark(), total)
		case id := <-sp.deadCh:
			c := sp.findLive(id)
			if c == nil {
				continue
			}
			if err := sp.handleConnFailure(c, fmt.Errorf("runtime: worker %d connection closed by peer", id)); err != nil {
				return err
			}
		case id := <-sp.ctrl.quarCh:
			if err := sp.handleQuarantine(id); err != nil {
				return err
			}
		case rj := <-sp.rejoinCh:
			sp.admitRejoin(rj)
		}
	}
}

// controller samples the cumulative blocking counters every interval, feeds
// the balancer and publishes new weights to the send loop.
func (sp *Splitter) controller() {
	defer close(sp.ctlDone)
	ticker := time.NewTicker(sp.cfg.SampleInterval)
	defer ticker.Stop()
	samplers := make(map[transport.BatchSender]*stats.RateSampler)
	prevKeyed := make([]int64, len(sp.keyedSent))
	lastReset := time.Duration(0)
	for {
		select {
		case <-sp.stopCtl:
			return
		case <-ticker.C:
		}
		now := time.Since(sp.startedT)

		sp.mu.Lock()
		conns := append([]*splitConn(nil), sp.conns...)
		epoch := sp.epoch
		rates := make([]float64, len(conns))
		for j, c := range conns {
			sampler := samplers[c.sender]
			if sampler == nil {
				sampler = &stats.RateSampler{}
				samplers[c.sender] = sampler
			}
			if rate, ok := sampler.Sample(now, c.sender.CumulativeBlocking().Seconds()); ok {
				rates[j] = rate
			}
		}
		if sp.cfg.ResetInterval > 0 && now-lastReset >= sp.cfg.ResetInterval {
			for _, c := range conns {
				c.sender.ResetCumulative()
				samplers[c.sender].Reset()
				samplers[c.sender].Sample(now, 0)
			}
			lastReset = now
			if sp.mtr != nil {
				sp.mtr.counterResets.Inc()
				sp.mtr.traceEvent(metrics.Event{Kind: "counter-reset", Conn: -1})
			}
		}
		if sp.router != nil {
			// With a balancer configured, feed the sampled blocking rates to
			// load-aware routers as penalties: the least-loaded candidate pick
			// then discounts connections that spent the interval blocked — the
			// keyed analogue of the minimax balancer shifting weight away from
			// them. Without a balancer the router stays purely count-based.
			if la, ok := sp.router.(schedule.LoadAware); ok && sp.cfg.Balancer != nil && sp.router.N() == len(rates) {
				la.SetPenalties(rates)
			}
			if sp.mtr != nil {
				sp.mtr.keyImbalance.Set(sp.keyImbalanceLocked(conns, prevKeyed))
			}
		}
		weights := sp.wrr.Weights()
		var publish []int
		if sp.cfg.Balancer != nil && sp.cfg.Balancer.Connections() == len(conns) {
			ok := true
			for j, r := range rates {
				if err := sp.cfg.Balancer.Observe(j, r); err != nil {
					ok = false
					break
				}
			}
			if ok {
				if newWeights, err := sp.cfg.Balancer.Rebalance(); err == nil {
					weights = newWeights
					publish = newWeights
				}
			}
		}
		if sp.mtr != nil {
			for j, c := range conns {
				sp.cm[c.id].rate.Set(rates[j])
				if j < len(weights) {
					sp.cm[c.id].weight.Set(float64(weights[j]))
				}
			}
			if publish != nil {
				b := sp.cfg.Balancer
				clusters := 0
				if cl := b.LastClusters(); cl != nil {
					clusters = len(cl)
				}
				sp.mtr.rebalance(publish, b.LastObjective(), b.LastIterations(), clusters)
			}
			sp.publishTransportLocked()
		}
		sp.mu.Unlock()

		if publish != nil {
			// Publish, replacing any unconsumed update.
			select {
			case <-sp.weightCh:
			default:
			}
			sp.weightCh <- weightUpdate{epoch: epoch, weights: publish}
		}
		if sp.cfg.OnSample != nil {
			sp.cfg.OnSample(now, rates, weights)
		}
	}
}

// Wait blocks until the send loop finishes (source exhausted, and in
// recovery mode fully released; or error) and all connections are closed.
func (sp *Splitter) Wait() error {
	<-sp.done
	return sp.err
}

// Senders exposes the live per-connection senders (for metrics inspection).
func (sp *Splitter) Senders() []transport.BatchSender {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	out := make([]transport.BatchSender, 0, len(sp.conns))
	for _, c := range sp.conns {
		out = append(out, c.sender)
	}
	return out
}

// publishTransportLocked pushes the transport counters' growth since the
// last publish onto the metrics layer. Lifetime totals per stable id are
// monotone (aggregates fold in on connection death), so the exported
// counters are monotone too. Callers hold sp.mu.
func (sp *Splitter) publishTransportLocked() {
	if sp.mtr == nil {
		return
	}
	n := len(sp.pubSent)
	sent := make([]int64, n)
	blocking := make([]time.Duration, n)
	blocked := make([]int64, n)
	copy(sent, sp.aggSent)
	copy(blocking, sp.aggBlocking)
	copy(blocked, sp.aggBlocked)
	for _, c := range sp.conns {
		sent[c.id] += c.sender.Sent()
		blocking[c.id] += c.sender.TotalBlocking()
		blocked[c.id] += c.sender.BlockEvents()
	}
	for id := 0; id < n; id++ {
		if d := sent[id] - sp.pubSent[id]; d > 0 {
			sp.cm[id].sent.Add(float64(d))
			sp.pubSent[id] = sent[id]
		}
		if d := blocking[id] - sp.pubBlock[id]; d > 0 {
			sp.cm[id].blocking.Add(d.Seconds())
			sp.pubBlock[id] = blocking[id]
		}
		if d := blocked[id] - sp.pubEvts[id]; d > 0 {
			sp.cm[id].wouldBlock.Add(float64(d))
			sp.pubEvts[id] = blocked[id]
		}
	}
	if d := sp.wrr.Picks() - sp.pubPicks; d > 0 {
		sp.mtr.schedulePicks.Add(float64(d))
		sp.pubPicks = sp.wrr.Picks()
	}
}

// keyImbalanceLocked computes (max-mean)/mean of the live connections'
// router-placed assignments since the previous controller tick (0 when
// perfectly even or when no keyed tuples moved), and rolls prevKeyed forward.
// Callers hold sp.mu.
func (sp *Splitter) keyImbalanceLocked(conns []*splitConn, prevKeyed []int64) float64 {
	var max, sum int64
	for _, c := range conns {
		d := sp.keyedSent[c.id] - prevKeyed[c.id]
		sum += d
		if d > max {
			max = d
		}
	}
	copy(prevKeyed, sp.keyedSent)
	if sum <= 0 || len(conns) == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(conns))
	return (float64(max) - mean) / mean
}

// KeyedStats returns the lifetime count of router-placed tuples per stable
// worker id (zero everywhere for unkeyed splitters).
func (sp *Splitter) KeyedStats() []int64 {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return append([]int64(nil), sp.keyedSent...)
}

// ConnStats returns per-worker lifetime tuple and blocking totals, indexed
// by the stable worker id and summed across reconnections.
func (sp *Splitter) ConnStats() (sent []int64, blocking []time.Duration) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sent = append([]int64(nil), sp.aggSent...)
	blocking = append([]time.Duration(nil), sp.aggBlocking...)
	for _, c := range sp.conns {
		sent[c.id] += c.sender.Sent()
		blocking[c.id] += c.sender.TotalBlocking()
	}
	return sent, blocking
}
