package runtime

import (
	"errors"
	"fmt"
	"net"
	"time"

	"streambalance/internal/core"
	"streambalance/internal/schedule"
	"streambalance/internal/stats"
	"streambalance/internal/transport"
)

// Source supplies tuple payloads to the splitter. Returning ok=false ends
// the stream.
type Source func(seq uint64) (payload []byte, ok bool)

// ConstantSource emits the same payload for n tuples (n == 0 means
// unbounded).
func ConstantSource(payload []byte, n uint64) Source {
	return func(seq uint64) ([]byte, bool) {
		if n > 0 && seq >= n {
			return nil, false
		}
		return payload, true
	}
}

// SplitterConfig configures a Splitter.
type SplitterConfig struct {
	// WorkerAddrs are the worker PE endpoints, one connection each.
	WorkerAddrs []string
	// Source feeds the splitter; required.
	Source Source
	// Balancer, when set, drives dynamic weights from sampled blocking
	// rates. Nil means fixed even round-robin.
	Balancer *core.Balancer
	// SampleInterval is the controller's collection interval (default 1s;
	// tests use much shorter).
	SampleInterval time.Duration
	// ResetInterval periodically resets the cumulative counters as the
	// paper's transport does (default 16x the sample interval; negative
	// disables).
	ResetInterval time.Duration
	// OnSample, when set, observes each controller tick.
	OnSample func(now time.Duration, rates []float64, weights []int)
	// SocketBufferBytes sizes the kernel send buffer of each worker
	// connection (default DefaultSocketBuffer). The blocking-time signal
	// only exists when the buffers are small relative to the workload:
	// with gigantic buffers the kernel absorbs everything and no send ever
	// blocks — the paper's "numerous system buffers" caveat (Section 4.4).
	SocketBufferBytes int
}

// DefaultSocketBuffer is the kernel buffer size requested per connection.
const DefaultSocketBuffer = 64 << 10

// Splitter distributes tuples across worker connections by smooth weighted
// round-robin, measuring per-connection blocking, and (optionally) runs the
// balancing controller.
type Splitter struct {
	cfg     SplitterConfig
	senders []*transport.Sender
	wrr     *schedule.WRR

	weightCh chan []int
	done     chan struct{}
	stopCtl  chan struct{}
	ctlDone  chan struct{}
	err      error
	started  time.Time
}

// NewSplitter dials every worker.
func NewSplitter(cfg SplitterConfig) (*Splitter, error) {
	if len(cfg.WorkerAddrs) == 0 {
		return nil, errors.New("runtime: splitter needs worker addresses")
	}
	if cfg.Source == nil {
		return nil, errors.New("runtime: splitter needs a source")
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = time.Second
	}
	if cfg.ResetInterval == 0 {
		cfg.ResetInterval = 16 * cfg.SampleInterval
	}
	if cfg.SocketBufferBytes <= 0 {
		cfg.SocketBufferBytes = DefaultSocketBuffer
	}
	wrr, err := schedule.NewWRR(len(cfg.WorkerAddrs))
	if err != nil {
		return nil, err
	}
	sp := &Splitter{
		cfg:      cfg,
		wrr:      wrr,
		weightCh: make(chan []int, 1),
		done:     make(chan struct{}),
		stopCtl:  make(chan struct{}),
		ctlDone:  make(chan struct{}),
	}
	initial := core.EvenWeights(len(cfg.WorkerAddrs), core.DefaultUnits)
	if err := sp.wrr.SetWeights(initial); err != nil {
		return nil, err
	}
	for i, addr := range cfg.WorkerAddrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			sp.closeSenders()
			return nil, fmt.Errorf("runtime: splitter dial worker %d: %w", i, err)
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			if err := tc.SetWriteBuffer(cfg.SocketBufferBytes); err != nil {
				conn.Close()
				sp.closeSenders()
				return nil, fmt.Errorf("runtime: splitter set buffer %d: %w", i, err)
			}
		}
		sender, err := transport.NewSender(conn)
		if err != nil {
			conn.Close()
			sp.closeSenders()
			return nil, fmt.Errorf("runtime: splitter wrap worker %d: %w", i, err)
		}
		sp.senders = append(sp.senders, sender)
	}
	return sp, nil
}

func (sp *Splitter) closeSenders() {
	for _, s := range sp.senders {
		s.Close()
	}
}

// Start launches the send loop and, if a balancer is configured, the
// controller goroutine.
func (sp *Splitter) Start() {
	sp.started = time.Now()
	go sp.controller()
	go func() {
		defer close(sp.done)
		sp.err = sp.sendLoop()
		close(sp.stopCtl)
		<-sp.ctlDone
		sp.closeSenders()
	}()
}

// sendLoop is the splitter's single thread of control.
func (sp *Splitter) sendLoop() error {
	var seq uint64
	for {
		// Apply any weight update the controller published.
		select {
		case w := <-sp.weightCh:
			if err := sp.wrr.SetWeights(w); err != nil {
				return fmt.Errorf("runtime: apply weights: %w", err)
			}
		default:
		}
		payload, ok := sp.cfg.Source(seq)
		if !ok {
			return nil
		}
		j := sp.wrr.Next()
		if err := sp.senders[j].Send(transport.Tuple{Seq: seq, Payload: payload}); err != nil {
			return fmt.Errorf("runtime: send to worker %d: %w", j, err)
		}
		seq++
	}
}

// controller samples the cumulative blocking counters every interval, feeds
// the balancer and publishes new weights to the send loop.
func (sp *Splitter) controller() {
	defer close(sp.ctlDone)
	ticker := time.NewTicker(sp.cfg.SampleInterval)
	defer ticker.Stop()
	samplers := make([]stats.RateSampler, len(sp.senders))
	lastReset := time.Duration(0)
	for {
		select {
		case <-sp.stopCtl:
			return
		case <-ticker.C:
		}
		now := time.Since(sp.started)
		rates := make([]float64, len(sp.senders))
		for j, s := range sp.senders {
			if rate, ok := samplers[j].Sample(now, s.CumulativeBlocking().Seconds()); ok {
				rates[j] = rate
			}
		}
		if sp.cfg.ResetInterval > 0 && now-lastReset >= sp.cfg.ResetInterval {
			for j, s := range sp.senders {
				s.ResetCumulative()
				samplers[j].Reset()
				samplers[j].Sample(now, 0)
			}
			lastReset = now
		}
		weights := sp.wrr.Weights()
		if sp.cfg.Balancer != nil {
			ok := true
			for j, r := range rates {
				if err := sp.cfg.Balancer.Observe(j, r); err != nil {
					ok = false
					break
				}
			}
			if ok {
				if newWeights, err := sp.cfg.Balancer.Rebalance(); err == nil {
					weights = newWeights
					// Publish, replacing any unconsumed update.
					select {
					case <-sp.weightCh:
					default:
					}
					sp.weightCh <- weights
				}
			}
		}
		if sp.cfg.OnSample != nil {
			sp.cfg.OnSample(now, rates, weights)
		}
	}
}

// Wait blocks until the send loop finishes (source exhausted or error) and
// all connections are closed.
func (sp *Splitter) Wait() error {
	<-sp.done
	return sp.err
}

// Senders exposes the per-connection senders (for metrics inspection).
func (sp *Splitter) Senders() []*transport.Sender {
	out := make([]*transport.Sender, len(sp.senders))
	copy(out, sp.senders)
	return out
}
