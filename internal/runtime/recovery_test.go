package runtime

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"streambalance/internal/chaos"
	"streambalance/internal/core"
	"streambalance/internal/transport"
)

// dialWorkerConn opens a raw worker connection to the merger with the given
// id and returns it.
func dialWorkerConn(t *testing.T, addr string, id uint32) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var idBuf [4]byte
	binary.LittleEndian.PutUint32(idBuf[:], id)
	if _, err := conn.Write(idBuf[:]); err != nil {
		t.Fatal(err)
	}
	return conn
}

func writeTuples(t *testing.T, conn net.Conn, seqs ...uint64) {
	t.Helper()
	var frame []byte
	for _, seq := range seqs {
		var err error
		frame, err = transport.AppendFrame(frame[:0], transport.Tuple{Seq: seq})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMergerDedupesReplayedSequences(t *testing.T) {
	var mu sync.Mutex
	var seqs []uint64
	m, err := NewMerger(2, 8, func(tp transport.Tuple, conn int) {
		mu.Lock()
		seqs = append(seqs, tp.Seq)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	// Worker 0 delivers 0,2,4; worker 1 delivers 1,2,3,5 — seq 2 arrives
	// twice, as it would when a dead worker's tuple is replayed to a
	// survivor that races the original delivery.
	c0 := dialWorkerConn(t, m.Addr(), 0)
	c1 := dialWorkerConn(t, m.Addr(), 1)
	writeTuples(t, c0, 0, 2, 4)
	writeTuples(t, c1, 1, 2, 3, 5)
	c0.Close()
	c1.Close()
	if err := m.Wait(); err != nil {
		t.Fatalf("merger failed on replayed duplicates: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != 6 {
		t.Fatalf("released %d tuples, want 6 (exactly once): %v", len(seqs), seqs)
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("release %d got seq %d: %v", i, s, seqs)
		}
	}
	if d := m.Deduped(); d != 1 {
		t.Fatalf("deduped = %d, want 1", d)
	}
}

func TestMergerMissingSequenceAtEOFWithQueuedLater(t *testing.T) {
	// Streams end while the merge still owes seq 0 but holds later
	// sequence numbers: the merger must detect and report, not hang.
	m, err := NewMerger(2, 8, func(transport.Tuple, int) {})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	c0 := dialWorkerConn(t, m.Addr(), 0)
	c1 := dialWorkerConn(t, m.Addr(), 1)
	writeTuples(t, c0, 2, 3)
	writeTuples(t, c1, 1)
	c0.Close()
	c1.Close()
	err = m.Wait()
	if err == nil {
		t.Fatal("merger accepted streams missing sequence 0")
	}
}

func TestMergerRejectsDuplicateLiveWorker(t *testing.T) {
	released := make(chan uint64, 8)
	m, err := NewMerger(1, 8, func(tp transport.Tuple, int2 int) {
		released <- tp.Seq
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	c0 := dialWorkerConn(t, m.Addr(), 0)
	defer c0.Close()
	// Prove c0 is attached and live before introducing the duplicate, so
	// the merger cannot confuse which connection came first.
	writeTuples(t, c0, 0)
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("merger never released seq 0")
	}
	// A second connection claiming the same live worker id must be
	// rejected (closed) without killing the merge.
	dup := dialWorkerConn(t, m.Addr(), 0)
	dup.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, rerr := dup.Read(make([]byte, 1))
	if rerr == nil {
		t.Fatal("duplicate live-worker connection was not closed")
	}
	if nerr, ok := rerr.(net.Error); ok && nerr.Timeout() {
		t.Fatal("duplicate live-worker connection stayed open (read timed out)")
	}
	dup.Close()
	// The original stream still works end to end.
	writeTuples(t, c0, 1)
	c0.Close()
	if err := m.Wait(); err != nil {
		t.Fatalf("merge failed after duplicate rejection: %v", err)
	}
	if m.DupRejects() != 1 {
		t.Fatalf("DupRejects = %d, want 1", m.DupRejects())
	}
}

func TestMergerAllowsWorkerRejoin(t *testing.T) {
	var mu sync.Mutex
	var got int
	m, err := NewMerger(1, 8, func(transport.Tuple, int) {
		mu.Lock()
		got++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	// A control channel keeps the merger waiting across the death — in
	// legacy mode (no control channel) the final stream ending ends the
	// merge, so rejoin is a recovery-mode capability.
	ctrl, err := dialControl(m.Addr(), Timeouts{}.norm())
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	// Incarnation one dies mid-stream (abrupt close after seq 0)...
	c0 := dialWorkerConn(t, m.Addr(), 0)
	writeTuples(t, c0, 0)
	time.Sleep(20 * time.Millisecond)
	c0.Close()
	// ...and incarnation two rejoins with the rest of the stream. The
	// merger may not have noticed the death yet and reject the first
	// attempts as duplicates — exactly what a restarting worker sees — so
	// retry like one would: probe with a short read (the merger never
	// writes to worker connections, so a prompt close means rejection, a
	// timeout means attached).
	deadline := time.Now().Add(5 * time.Second)
	var c1 net.Conn
	for {
		if time.Now().After(deadline) {
			t.Fatal("merger kept rejecting the rejoining worker")
		}
		c1 = dialWorkerConn(t, m.Addr(), 0)
		c1.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		_, rerr := c1.Read(make([]byte, 1))
		if nerr, ok := rerr.(net.Error); ok && nerr.Timeout() {
			c1.SetReadDeadline(time.Time{})
			break // still open after the probe: attached
		}
		c1.Close()
		time.Sleep(5 * time.Millisecond)
	}
	writeTuples(t, c1, 1, 2)
	c1.Close()
	if err := ctrl.SendFin(3); err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(); err != nil {
		t.Fatalf("merge failed across worker rejoin: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got != 3 {
		t.Fatalf("released %d tuples across rejoin, want 3", got)
	}
}

func TestSplitterReplaysOnWorkerFailure(t *testing.T) {
	const tuples = 8000
	var mu sync.Mutex
	var seqs []uint64
	sinkMerger, err := NewMerger(2, 64, func(tp transport.Tuple, conn int) {
		mu.Lock()
		seqs = append(seqs, tp.Seq)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	workers := make([]*Worker, 2)
	proxies := make([]*chaos.Proxy, 2)
	for i := range workers {
		w, err := NewWorker(i, Identity(), sinkMerger.Addr())
		if err != nil {
			t.Fatal(err)
		}
		w.SetResilient(true)
		workers[i] = w
		p, err := chaos.NewProxy(w.Addr())
		if err != nil {
			t.Fatal(err)
		}
		proxies[i] = p
		t.Cleanup(func() { p.Close(); w.Close() })
	}
	sinkMerger.SetWatermarkInterval(5 * time.Millisecond)
	sinkMerger.Start()
	for _, w := range workers {
		w.Start()
	}

	var downs, replays int
	var evMu sync.Mutex
	killed := make(chan struct{})
	sp, err := NewSplitter(SplitterConfig{
		WorkerAddrs: []string{proxies[0].Addr(), proxies[1].Addr()},
		Source: func(seq uint64) ([]byte, bool) {
			if seq == tuples/2 {
				// Kill worker 0's link mid-stream, exactly once.
				select {
				case <-killed:
				default:
					proxies[0].SetReject(true)
					proxies[0].KillActive()
					close(killed)
				}
			}
			if seq >= tuples {
				return nil, false
			}
			return []byte("payload"), true
		},
		SampleInterval: 20 * time.Millisecond,
		ControlAddr:    sinkMerger.Addr(),
		OnConnEvent: func(ev ConnEvent) {
			evMu.Lock()
			switch ev.Kind {
			case "down":
				downs++
			case "replay":
				replays++
			}
			evMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sp.Start()
	if err := sp.Wait(); err != nil {
		t.Fatalf("splitter did not recover from worker failure: %v", err)
	}
	if err := sinkMerger.Wait(); err != nil {
		t.Fatalf("merger failed: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != tuples {
		t.Fatalf("released %d tuples, want %d", len(seqs), tuples)
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("release %d got seq %d", i, s)
		}
	}
	evMu.Lock()
	defer evMu.Unlock()
	if downs == 0 || replays == 0 {
		t.Fatalf("expected down+replay events, got downs=%d replays=%d", downs, replays)
	}
	sent, _ := sp.ConnStats()
	var total int64
	for _, s := range sent {
		total += s
	}
	if total < tuples {
		t.Fatalf("sent %d < released %d: replay accounting broken", total, tuples)
	}
}

func TestRegionRecoversFromMidRunWorkerKill(t *testing.T) {
	const tuples = 20000
	var proxies [4]*chaos.Proxy
	var mu sync.Mutex
	var seqs []uint64
	balancer, err := core.NewBalancer(core.Config{Connections: 4, DecayEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	killed := make(chan struct{})
	region, err := NewRegion(RegionConfig{
		Operators: []Operator{Identity(), Identity(), Identity(), Identity()},
		Source: func(seq uint64) ([]byte, bool) {
			if seq == tuples/3 {
				select {
				case <-killed:
				default:
					// Worker 2 dies and never comes back.
					proxies[2].SetReject(true)
					proxies[2].KillActive()
					close(killed)
				}
			}
			if seq >= tuples {
				return nil, false
			}
			return []byte("x"), true
		},
		Balancer:       balancer,
		SampleInterval: 20 * time.Millisecond,
		Sink: func(tp transport.Tuple, conn int) {
			mu.Lock()
			seqs = append(seqs, tp.Seq)
			mu.Unlock()
		},
		Recovery: RecoveryConfig{
			Enabled:           true,
			WatermarkInterval: 5 * time.Millisecond,
			// The kill is permanent, so redial would only flap against
			// the rejecting proxy.
			DisableRedial: true,
		},
		WrapWorkerAddr: func(i int, addr string) string {
			p, err := chaos.NewProxy(addr)
			if err != nil {
				t.Fatal(err)
			}
			proxies[i] = p
			return p.Addr()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, p := range proxies {
			if p != nil {
				p.Close()
			}
		}
	}()
	res, err := region.Run()
	if err != nil {
		t.Fatalf("region did not survive a worker kill: %v", err)
	}
	if res.Released != tuples {
		t.Fatalf("released %d tuples, want %d", res.Released, tuples)
	}
	if !res.OrderPreserved {
		t.Fatal("sequential semantics violated across worker kill")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != tuples {
		t.Fatalf("sink saw %d tuples, want %d (exactly once)", len(seqs), tuples)
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("sink position %d got seq %d", i, s)
		}
	}
	// The dead worker's weight was folded into the survivors.
	if balancer.Connections() != 3 {
		t.Fatalf("balancer has %d connections after kill, want 3", balancer.Connections())
	}
}

func TestRegionWorkerRejoinsAfterConnectionKill(t *testing.T) {
	const tuples = 30000
	var proxies [3]*chaos.Proxy
	var mu sync.Mutex
	var seqs []uint64
	var evMu sync.Mutex
	events := map[string]int{}
	killed := make(chan struct{})
	region, err := NewRegion(RegionConfig{
		Operators: []Operator{Identity(), Identity(), Identity()},
		Source: func(seq uint64) ([]byte, bool) {
			if seq == tuples/3 {
				select {
				case <-killed:
				default:
					// Sever worker 1's links; the proxy keeps accepting,
					// so the splitter's redial brings it back.
					proxies[1].KillActive()
					close(killed)
				}
			}
			if seq >= tuples {
				return nil, false
			}
			return []byte("x"), true
		},
		SampleInterval: 20 * time.Millisecond,
		Sink: func(tp transport.Tuple, conn int) {
			mu.Lock()
			seqs = append(seqs, tp.Seq)
			mu.Unlock()
		},
		OnConnEvent: func(ev ConnEvent) {
			evMu.Lock()
			events[ev.Kind]++
			evMu.Unlock()
		},
		Recovery: RecoveryConfig{
			Enabled:           true,
			WatermarkInterval: 5 * time.Millisecond,
			Redial: &transport.RedialPolicy{
				Base: 5 * time.Millisecond,
				Max:  50 * time.Millisecond,
			},
		},
		WrapWorkerAddr: func(i int, addr string) string {
			p, err := chaos.NewProxy(addr)
			if err != nil {
				t.Fatal(err)
			}
			proxies[i] = p
			return p.Addr()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, p := range proxies {
			if p != nil {
				p.Close()
			}
		}
	}()
	res, err := region.Run()
	if err != nil {
		t.Fatalf("region did not survive connection kill + rejoin: %v", err)
	}
	if res.Released != tuples || !res.OrderPreserved {
		t.Fatalf("released=%d order=%v, want %d true", res.Released, res.OrderPreserved, tuples)
	}
	mu.Lock()
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("sink position %d got seq %d", i, s)
		}
	}
	mu.Unlock()
	evMu.Lock()
	defer evMu.Unlock()
	if events["down"] == 0 {
		t.Fatal("no down event observed")
	}
	if events["rejoin"] == 0 {
		t.Fatal("worker never rejoined despite redial policy")
	}
}

func TestRegionAllWorkersDeadFailsFast(t *testing.T) {
	const tuples = 1 << 40 // effectively unbounded; failure must end the run
	var proxies [3]*chaos.Proxy
	killed := make(chan struct{})
	region, err := NewRegion(RegionConfig{
		Operators: []Operator{Identity(), Identity(), Identity()},
		Source: func(seq uint64) ([]byte, bool) {
			if seq == 2000 {
				select {
				case <-killed:
				default:
					for _, p := range proxies {
						p.SetReject(true)
						p.KillActive()
					}
					close(killed)
				}
			}
			if seq >= tuples {
				return nil, false
			}
			return []byte("x"), true
		},
		SampleInterval: 20 * time.Millisecond,
		Recovery: RecoveryConfig{
			Enabled:           true,
			WatermarkInterval: 5 * time.Millisecond,
			DisableRedial:     true,
		},
		WrapWorkerAddr: func(i int, addr string) string {
			p, err := chaos.NewProxy(addr)
			if err != nil {
				t.Fatal(err)
			}
			proxies[i] = p
			return p.Addr()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, p := range proxies {
			if p != nil {
				p.Close()
			}
		}
	}()
	type outcome struct {
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		_, err := region.Run()
		ch <- outcome{err: err}
	}()
	select {
	case out := <-ch:
		if out.err == nil {
			t.Fatal("region reported success with every worker dead")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("region deadlocked instead of failing fast with all workers dead")
	}
}

func TestRegionForwardsResetInterval(t *testing.T) {
	region, err := NewRegion(RegionConfig{
		Operators:      []Operator{Identity()},
		Source:         ConstantSource(nil, 1),
		SampleInterval: 10 * time.Millisecond,
		ResetInterval:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer region.Close()
	if got := region.splitter.cfg.ResetInterval; got != -1 {
		t.Fatalf("ResetInterval not forwarded to splitter: got %v, want -1", got)
	}
	region2, err := NewRegion(RegionConfig{
		Operators:      []Operator{Identity()},
		Source:         ConstantSource(nil, 1),
		SampleInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer region2.Close()
	if got, want := region2.splitter.cfg.ResetInterval, 16*10*time.Millisecond; got != want {
		t.Fatalf("default ResetInterval = %v, want %v", got, want)
	}
}

func TestRegionCloseReleasesNeverRunResources(t *testing.T) {
	region, err := NewRegion(RegionConfig{
		Operators: []Operator{Identity(), Identity()},
		Source:    ConstantSource(nil, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	region.Close()
	// Closing must close the splitter's dialed senders too, so the
	// workers (who accepted those connections) unblock and exit.
	done := make(chan struct{})
	go func() {
		for _, w := range region.workers {
			w.Wait()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("workers still blocked after Region.Close: splitter senders leaked")
	}
}

func TestSplitterRetentionBoundsMemory(t *testing.T) {
	// With a tiny RetainCap the splitter must throttle on the watermark
	// rather than grow without bound, and still complete.
	const tuples = 4000
	var mu sync.Mutex
	count := 0
	m, err := NewMerger(1, 16, func(transport.Tuple, int) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	m.SetWatermarkInterval(2 * time.Millisecond)
	m.Start()
	w, err := NewWorker(0, Identity(), m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	w.SetResilient(true)
	defer w.Close()
	w.Start()
	sp, err := NewSplitter(SplitterConfig{
		WorkerAddrs:    []string{w.Addr()},
		Source:         ConstantSource([]byte("p"), tuples),
		SampleInterval: 50 * time.Millisecond,
		ControlAddr:    m.Addr(),
		RetainCap:      64,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp.Start()
	if err := sp.Wait(); err != nil {
		t.Fatalf("splitter failed under tight retention: %v", err)
	}
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if count != tuples {
		t.Fatalf("released %d, want %d", count, tuples)
	}
}

func TestRedialerRejoinNoRegion(t *testing.T) {
	// Plain transport-level check that a redialer survives refused dials
	// until the listener comes back.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	go func() {
		time.Sleep(50 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return
		}
		conn, err := ln2.Accept()
		if err == nil {
			conn.Close()
		}
		ln2.Close()
	}()
	rd := transport.NewRedialer(addr, transport.RedialPolicy{
		Base: 5 * time.Millisecond,
		Max:  20 * time.Millisecond,
	})
	conn, err := rd.Dial(nil)
	if err != nil {
		t.Fatalf("redial never succeeded: %v (attempts=%d)", err, rd.Attempts())
	}
	conn.Close()
	if rd.Attempts() < 2 {
		t.Fatalf("expected multiple attempts, got %d", rd.Attempts())
	}
}

func TestChaosRegionSurvivesDegradedLink(t *testing.T) {
	// Throttle + delay on one worker's link: no failure, just pressure —
	// the region must still complete in order (the balancer would shift
	// load off the slow link in a longer run).
	const tuples = 4000
	var proxies [2]*chaos.Proxy
	region, err := NewRegion(RegionConfig{
		Operators:      []Operator{Identity(), Identity()},
		Source:         ConstantSource([]byte("data"), tuples),
		SampleInterval: 20 * time.Millisecond,
		Recovery:       RecoveryConfig{Enabled: true, WatermarkInterval: 5 * time.Millisecond},
		WrapWorkerAddr: func(i int, addr string) string {
			p, err := chaos.NewProxy(addr)
			if err != nil {
				t.Fatal(err)
			}
			proxies[i] = p
			return p.Addr()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, p := range proxies {
			if p != nil {
				p.Close()
			}
		}
	}()
	proxies[0].SetDelay(200 * time.Microsecond)
	proxies[0].SetThrottle(512 << 10)
	res, err := region.Run()
	if err != nil {
		t.Fatalf("region failed under link degradation: %v", err)
	}
	if res.Released != tuples || !res.OrderPreserved {
		t.Fatalf("released=%d order=%v, want %d true", res.Released, res.OrderPreserved, tuples)
	}
}

func TestSplitterEventString(t *testing.T) {
	ev := ConnEvent{Kind: "down", Conn: 2, Err: fmt.Errorf("boom")}
	if ev.Kind != "down" || ev.Conn != 2 {
		t.Fatal("ConnEvent fields broken")
	}
}
