package runtime

import (
	"fmt"
	"strconv"

	"streambalance/internal/metrics"
)

// RegionMetrics bundles every instrument one region exports: the splitter's
// per-connection blocking signal (the paper's Section 3 input), the
// balancer's decisions (Section 3.4 weight vectors, solver cost, cluster
// count), the merger's release progress, and the recovery protocol's
// events. Construct it once per region from a metrics.Registry and pass it
// through RegionConfig (or SplitterConfig plus Merger.SetMetrics when the
// components run as separate processes); nil disables instrumentation with
// zero hot-path cost.
//
// The trace ring records the balancer's decision history — every rebalance
// with its weight vector and objective, counter resets, and worker
// down/replay/rejoin events — so a live region's behaviour can be
// reconstructed from /trace after the fact.
type RegionMetrics struct {
	reg   *metrics.Registry
	trace *metrics.Trace

	// Splitter / transport.
	tuplesSent      *metrics.CounterVec
	blockingSeconds *metrics.CounterVec
	wouldBlock      *metrics.CounterVec
	blockingRate    *metrics.GaugeVec
	connUp          *metrics.GaugeVec
	connLifetime    *metrics.Histogram
	replayDepth     *metrics.Gauge
	schedulePicks   *metrics.Counter
	redialAttempts  *metrics.CounterVec
	batchFlushes    *metrics.Counter
	batchTuples     *metrics.Histogram
	keyImbalance    *metrics.Gauge

	// Balancer / controller.
	weight        *metrics.GaugeVec
	rebalances    *metrics.Counter
	optIterations *metrics.Counter
	objective     *metrics.Gauge
	clusterCount  *metrics.Gauge
	counterResets *metrics.Counter

	// Merger.
	released          *metrics.Counter
	watermark         *metrics.Gauge
	queueDepth        *metrics.GaugeVec
	ringDepth         *metrics.GaugeVec
	deduped           *metrics.Counter
	dupRejects        *metrics.Counter
	ingestBatchTuples *metrics.Histogram
	ingestParks       *metrics.Counter
	mergeWakes        *metrics.Counter
	stallSeconds      *metrics.Histogram
	ingestAge         *metrics.GaugeVec
	combinedReleased  *metrics.Counter

	// Worker (in-process regions; TCP worker processes export their own).
	combinerHits *metrics.Counter

	// Recovery.
	workerDown     *metrics.CounterVec
	replays        *metrics.CounterVec
	replayedTuples *metrics.CounterVec
	rejoins        *metrics.CounterVec
	quarantines    *metrics.Counter
}

// NewRegionMetrics registers the region's instrument set on reg. tr may be
// nil to disable decision tracing while keeping metrics.
func NewRegionMetrics(reg *metrics.Registry, tr *metrics.Trace) *RegionMetrics {
	lifetimeBuckets := []float64{0.01, 0.05, 0.25, 1, 5, 30, 120, 600}
	return &RegionMetrics{
		reg:   reg,
		trace: tr,

		tuplesSent: reg.CounterVec("spe_splitter_tuples_sent_total",
			"Tuples sent per worker connection, including replays.", "conn"),
		blockingSeconds: reg.CounterVec("spe_splitter_blocking_seconds_total",
			"Lifetime time the splitter spent blocked in send per connection (Section 3 cumulative blocking).", "conn"),
		wouldBlock: reg.CounterVec("spe_splitter_send_would_block_total",
			"Sends that found the socket buffer full and elected to block, per connection.", "conn"),
		blockingRate: reg.GaugeVec("spe_splitter_blocking_rate",
			"Latest sampled blocking rate per connection (seconds blocked per second, the balancer's input signal).", "conn"),
		connUp: reg.GaugeVec("spe_splitter_conn_up",
			"1 while the worker connection is live, 0 after a failure.", "conn"),
		connLifetime: reg.Histogram("spe_splitter_conn_lifetime_seconds",
			"Lifetimes of worker connections that ended (dial to failure).", lifetimeBuckets),
		replayDepth: reg.Gauge("spe_splitter_replay_buffer_tuples",
			"Sent-but-unreleased tuples currently retained for replay."),
		schedulePicks: reg.Counter("spe_schedule_picks_total",
			"Scheduling decisions made by the weighted round-robin."),
		redialAttempts: reg.CounterVec("spe_transport_redial_attempts_total",
			"Dial attempts made while reconnecting to a failed worker, per connection.", "conn"),
		batchFlushes: reg.Counter("spe_splitter_batch_flushes_total",
			"Batched vectored writes the splitter flushed (BatchSize > 1 only)."),
		batchTuples: reg.Histogram("spe_splitter_batch_tuples",
			"Tuples per flushed batch.", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
		keyImbalance: reg.Gauge("spe_splitter_key_imbalance",
			"Keyed-routing imbalance over the last sample interval: (max-mean)/mean of per-connection keyed assignments (0 = perfectly even)."),

		weight: reg.GaugeVec("spe_balancer_weight_units",
			"Current allocation weight per connection, in units summing to the balancer's R (Section 3.4).", "conn"),
		rebalances: reg.Counter("spe_balancer_rebalances_total",
			"Rebalance rounds the controller has run."),
		optIterations: reg.Counter("spe_balancer_optimizer_iterations_total",
			"Cumulative RAP-solver iterations across rebalances."),
		objective: reg.Gauge("spe_balancer_objective_blocking_rate",
			"Objective value (max predicted blocking rate) of the last rebalance."),
		clusterCount: reg.Gauge("spe_balancer_clusters",
			"Clusters used by the last rebalance (0 when unclustered)."),
		counterResets: reg.Counter("spe_controller_counter_resets_total",
			"Periodic cumulative-counter resets (the paper's transport reset, Figure 2)."),

		released: reg.Counter("spe_merger_tuples_released_total",
			"Tuples released downstream in strict sequence order."),
		watermark: reg.Gauge("spe_merger_watermark",
			"Lowest unreleased sequence number (count of contiguously released tuples)."),
		queueDepth: reg.GaugeVec("spe_merger_queue_tuples",
			"Reorder-heap occupancy per worker connection.", "conn"),
		ringDepth: reg.GaugeVec("spe_merger_ring_tuples",
			"SPSC ingest-ring occupancy per worker connection (lock-free hand-off lane to the merge loop).", "conn"),
		deduped: reg.Counter("spe_merger_deduped_total",
			"Replayed duplicates dropped to keep the exactly-once release guarantee."),
		dupRejects: reg.Counter("spe_merger_dup_rejects_total",
			"Connections rejected for claiming a worker id whose stream was still live."),
		ingestBatchTuples: reg.Histogram("spe_merger_ingest_batch_tuples",
			"Tuples ingested per ReceiveBatch pass (receive-batch size).",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
		ingestParks: reg.Counter("spe_merger_ingest_parks_total",
			"Times a connection reader parked (back-pressure cap or full ring)."),
		mergeWakes: reg.Counter("spe_merger_merge_wakes_total",
			"Times the merge loop parked for input and was woken."),
		stallSeconds: reg.Histogram("spe_merger_stall_seconds",
			"Durations of merge-stall episodes (watermark stuck past the stall window until it advanced again).",
			[]float64{0.05, 0.1, 0.25, 0.5, 1, 2, 5, 10, 30, 60}),
		ingestAge: reg.GaugeVec("spe_worker_last_ingest_age_seconds",
			"Seconds since the merger last ingested a batch from each worker connection.", "conn"),
		combinedReleased: reg.Counter("spe_merger_combined_released_total",
			"Sequence numbers released via combined-carrier absorption (watermark advanced with no sink call)."),
		combinerHits: reg.Counter("spe_worker_combiner_hits_total",
			"Tuples absorbed into same-key carriers by worker-side combiners before the ordered merge."),

		workerDown: reg.CounterVec("spe_recovery_worker_down_total",
			"Worker connection failures observed by the splitter, per connection.", "conn"),
		replays: reg.CounterVec("spe_recovery_replays_total",
			"Replay rounds run after a worker failure, per failed connection.", "conn"),
		replayedTuples: reg.CounterVec("spe_recovery_replayed_tuples_total",
			"Tuples re-sent to survivors after worker failures, per failed connection.", "conn"),
		rejoins: reg.CounterVec("spe_recovery_rejoins_total",
			"Redialed workers re-admitted into the schedule, per connection.", "conn"),
		quarantines: reg.Counter("spe_quarantine_events_total",
			"Workers ejected by the merge-stall watchdog (before the head-owner override, if any)."),
	}
}

// Registry returns the registry the instruments live on (for /metrics).
func (m *RegionMetrics) Registry() *metrics.Registry { return m.reg }

// Trace returns the decision-trace ring, or nil when tracing is disabled.
func (m *RegionMetrics) Trace() *metrics.Trace { return m.trace }

// connInstruments caches one stable worker id's child handles so the hot
// paths touch pre-resolved atomics instead of label maps.
type connInstruments struct {
	sent       *metrics.Counter
	blocking   *metrics.Counter
	wouldBlock *metrics.Counter
	rate       *metrics.Gauge
	up         *metrics.Gauge
	weight     *metrics.Gauge
	redials    *metrics.Counter
}

// conn resolves the per-connection handles for one stable worker id.
func (m *RegionMetrics) conn(id int) connInstruments {
	l := strconv.Itoa(id)
	return connInstruments{
		sent:       m.tuplesSent.With(l),
		blocking:   m.blockingSeconds.With(l),
		wouldBlock: m.wouldBlock.With(l),
		rate:       m.blockingRate.With(l),
		up:         m.connUp.With(l),
		weight:     m.weight.With(l),
		redials:    m.redialAttempts.With(l),
	}
}

// traceEvent appends to the decision trace when tracing is enabled.
func (m *RegionMetrics) traceEvent(ev metrics.Event) {
	if m.trace != nil {
		m.trace.Add(ev)
	}
}

// connEvent records a splitter recovery event on counters and the trace.
func (m *RegionMetrics) connEvent(ev ConnEvent) {
	l := strconv.Itoa(ev.Conn)
	tev := metrics.Event{Kind: ev.Kind, Conn: ev.Conn}
	switch ev.Kind {
	case "down":
		m.workerDown.With(l).Inc()
		m.connUp.With(l).Set(0)
		if ev.Err != nil {
			tev.Detail = ev.Err.Error()
		}
	case "replay":
		m.replays.With(l).Inc()
		m.replayedTuples.With(l).Add(float64(ev.Tuples))
		tev.Value = float64(ev.Tuples)
	case "rejoin":
		m.rejoins.With(l).Inc()
		m.connUp.With(l).Set(1)
	case "quarantine":
		m.quarantines.Inc()
	case "evicted", "redial-exhausted":
		if ev.Err != nil {
			tev.Detail = ev.Err.Error()
		}
	}
	m.traceEvent(tev)
}

// rebalance records one controller decision: the counters, the decision
// gauges, and a trace event carrying the full weight vector.
func (m *RegionMetrics) rebalance(weights []int, objective float64, iterations, clusters int) {
	m.rebalances.Inc()
	m.optIterations.Add(float64(iterations))
	m.objective.Set(objective)
	m.clusterCount.Set(float64(clusters))
	m.traceEvent(metrics.Event{
		Kind:   "rebalance",
		Conn:   -1,
		Value:  objective,
		Detail: fmt.Sprint(weights),
	})
}
