package runtime

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"

	"streambalance/internal/transport"
)

// Worker is one parallel PE: it accepts a single connection from the
// splitter, applies its operator to every tuple, and forwards results to the
// merger over its own TCP connection.
type Worker struct {
	id       int
	operator Operator
	ln       net.Listener
	merger   string // merger address to dial
	rcvBuf   int

	done chan struct{}
	err  error
}

// NewWorker starts listening for the splitter on a fresh loopback port.
// mergerAddr is where processed tuples are sent.
func NewWorker(id int, operator Operator, mergerAddr string) (*Worker, error) {
	if operator == nil {
		return nil, errors.New("runtime: worker needs an operator")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("runtime: worker %d listen: %w", id, err)
	}
	return &Worker{
		id:       id,
		operator: operator,
		ln:       ln,
		merger:   mergerAddr,
		rcvBuf:   64 << 10,
		done:     make(chan struct{}),
	}, nil
}

// SetReceiveBuffer overrides the kernel receive-buffer size requested for the
// splitter connection (bytes). Call before Start.
func (w *Worker) SetReceiveBuffer(bytes int) {
	if bytes > 0 {
		w.rcvBuf = bytes
	}
}

// Addr returns the address the splitter should dial.
func (w *Worker) Addr() string {
	return w.ln.Addr().String()
}

// Start launches the worker loop; it runs until the splitter closes its
// connection or an error occurs. Wait for completion with Wait.
func (w *Worker) Start() {
	go func() {
		defer close(w.done)
		w.err = w.run()
	}()
}

// run accepts the splitter connection and processes tuples until EOF.
func (w *Worker) run() error {
	in, err := w.ln.Accept()
	if err != nil {
		return fmt.Errorf("runtime: worker %d accept: %w", w.id, err)
	}
	defer in.Close()
	// Once the splitter is connected no further connections are expected.
	w.ln.Close()
	if tc, ok := in.(*net.TCPConn); ok {
		if err := tc.SetReadBuffer(w.rcvBuf); err != nil {
			return fmt.Errorf("runtime: worker %d set read buffer: %w", w.id, err)
		}
	}

	out, err := net.Dial("tcp", w.merger)
	if err != nil {
		return fmt.Errorf("runtime: worker %d dial merger: %w", w.id, err)
	}
	defer out.Close()
	// Identify this connection to the merger.
	var id [4]byte
	binary.LittleEndian.PutUint32(id[:], uint32(w.id))
	if _, err := out.Write(id[:]); err != nil {
		return fmt.Errorf("runtime: worker %d send id: %w", w.id, err)
	}

	rc := transport.NewReceiver(in)
	var frame []byte
	for {
		t, err := rc.Receive()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("runtime: worker %d receive: %w", w.id, err)
		}
		result := w.operator.Process(t)
		frame, err = transport.AppendFrame(frame[:0], result)
		if err != nil {
			return fmt.Errorf("runtime: worker %d frame: %w", w.id, err)
		}
		if _, err := out.Write(frame); err != nil {
			return fmt.Errorf("runtime: worker %d forward: %w", w.id, err)
		}
	}
}

// Wait blocks until the worker loop exits and returns its error, if any.
func (w *Worker) Wait() error {
	<-w.done
	return w.err
}

// Close shuts the worker's listener; pending Accept calls fail.
func (w *Worker) Close() {
	w.ln.Close()
}
