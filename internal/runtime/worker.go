package runtime

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"streambalance/internal/metrics"
	"streambalance/internal/transport"
)

// Worker is one parallel PE: it accepts a connection from the splitter,
// applies its operator to every tuple, and forwards results to the merger
// over its own TCP connection.
//
// By default a worker serves exactly one splitter connection and exits when
// it ends — the paper's fixed-pipeline model. In resilient mode (used by
// recovery-enabled regions) the worker instead keeps accepting: when a
// splitter connection dies it tears down its merger connection, returns to
// Accept, and re-handshakes with the merger on the next connection, so a
// redialing splitter can re-admit it without a process restart.
type Worker struct {
	id        int
	operator  Operator
	combiner  Combiner
	mHits     *metrics.Counter
	hits      atomic.Uint64
	ln        net.Listener
	merger    string // merger address to dial
	rcvBuf    int
	recvBatch int
	resilient bool
	to        Timeouts

	mu       sync.Mutex
	closed   bool
	active   net.Conn
	connErrs []error

	done chan struct{}
	err  error
}

// NewWorker starts listening for the splitter on a fresh loopback port.
// mergerAddr is where processed tuples are sent.
func NewWorker(id int, operator Operator, mergerAddr string) (*Worker, error) {
	if operator == nil {
		return nil, errors.New("runtime: worker needs an operator")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("runtime: worker %d listen: %w", id, err)
	}
	return &Worker{
		id:        id,
		operator:  operator,
		ln:        ln,
		merger:    mergerAddr,
		rcvBuf:    64 << 10,
		recvBatch: transport.DefaultRecvBatch,
		to:        Timeouts{}.norm(),
		done:      make(chan struct{}),
	}, nil
}

// SetTimeouts overrides the worker's I/O deadlines (merger dial, handshake
// writes, forwarding stall bound). Call before Start.
func (w *Worker) SetTimeouts(t Timeouts) {
	w.to = t.norm()
}

// SetReceiveBuffer overrides the kernel receive-buffer size requested for the
// splitter connection (bytes). Call before Start.
func (w *Worker) SetReceiveBuffer(bytes int) {
	if bytes > 0 {
		w.rcvBuf = bytes
	}
}

// SetResilient switches the worker to the multi-connection mode described
// above. Call before Start.
func (w *Worker) SetResilient(on bool) {
	w.resilient = on
}

// SetRecvBatch bounds how many tuples the worker ingests, processes and
// forwards per receive pass (default transport.DefaultRecvBatch; 1 restores
// the per-tuple loop). Call before Start.
func (w *Worker) SetRecvBatch(n int) {
	if n > 0 {
		w.recvBatch = n
	}
}

// SetCombiner installs a per-key partial-aggregation stage between the
// operator and the forward to the merger: same-key results within one
// processed batch fold into their lowest-seq carrier (see Combiner). Call
// before Start.
func (w *Worker) SetCombiner(c Combiner) {
	w.combiner = c
}

// setCombinerMetric wires the live combiner-hit counter (in-process regions;
// deployed worker processes export their own registries).
func (w *Worker) setCombinerMetric(m *metrics.Counter) {
	w.mHits = m
}

// CombinerHits reports how many tuples the combiner has absorbed into
// same-key carriers so far.
func (w *Worker) CombinerHits() uint64 {
	return w.hits.Load()
}

// Addr returns the address the splitter should dial.
func (w *Worker) Addr() string {
	return w.ln.Addr().String()
}

// ConnErrors returns the per-connection errors a resilient worker absorbed.
func (w *Worker) ConnErrors() []error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]error(nil), w.connErrs...)
}

// Start launches the worker loop. In one-shot mode it runs until the
// splitter closes its connection or an error occurs; in resilient mode it
// runs until Close. Wait for completion with Wait.
func (w *Worker) Start() {
	go func() {
		defer close(w.done)
		w.err = w.run()
	}()
}

func (w *Worker) run() error {
	if !w.resilient {
		in, err := w.ln.Accept()
		if err != nil {
			return fmt.Errorf("runtime: worker %d accept: %w", w.id, err)
		}
		// Once the splitter is connected no further connections are
		// expected.
		w.ln.Close()
		return w.serve(in)
	}
	for {
		in, err := w.ln.Accept()
		if err != nil {
			if w.isClosed() {
				return nil
			}
			return fmt.Errorf("runtime: worker %d accept: %w", w.id, err)
		}
		if err := w.serve(in); err != nil {
			w.mu.Lock()
			closed := w.closed
			if !closed {
				w.connErrs = append(w.connErrs, err)
			}
			w.mu.Unlock()
		}
		if w.isClosed() {
			return nil
		}
	}
}

func (w *Worker) isClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

func (w *Worker) setActive(conn net.Conn) {
	w.mu.Lock()
	w.active = conn
	w.mu.Unlock()
}

// serve processes one splitter connection until EOF or error, forwarding
// results to the merger over a fresh identified connection.
func (w *Worker) serve(in net.Conn) error {
	defer in.Close()
	w.setActive(in)
	defer w.setActive(nil)
	if tc, ok := in.(*net.TCPConn); ok {
		if err := tc.SetReadBuffer(w.rcvBuf); err != nil {
			return fmt.Errorf("runtime: worker %d set read buffer: %w", w.id, err)
		}
	}

	out, err := net.DialTimeout("tcp", w.merger, w.to.dialTimeout())
	if err != nil {
		return fmt.Errorf("runtime: worker %d dial merger: %w", w.id, err)
	}
	defer out.Close()
	// Identify this connection to the merger, under the handshake deadline.
	var id [4]byte
	binary.LittleEndian.PutUint32(id[:], uint32(w.id))
	if w.to.Handshake > 0 {
		out.SetWriteDeadline(time.Now().Add(w.to.Handshake))
	}
	if _, err := out.Write(id[:]); err != nil {
		return fmt.Errorf("runtime: worker %d send id: %w", w.id, err)
	}
	out.SetWriteDeadline(time.Time{})
	// Acknowledge readiness to the splitter: the merger connection is up
	// and identified, so the end-to-end path works. Recovery-mode splitters
	// (which always pair with resilient workers) read this byte as their
	// admission health probe. Fixed-pipeline splitters never read their
	// connections, so a one-shot worker must not write it — an unread byte
	// at close time would turn the splitter's clean shutdown into a TCP
	// reset.
	if w.resilient {
		if w.to.Handshake > 0 {
			in.SetWriteDeadline(time.Now().Add(w.to.Handshake))
		}
		if _, err := in.Write([]byte{workerReadyAck}); err != nil {
			return fmt.Errorf("runtime: worker %d send ready ack: %w", w.id, err)
		}
		in.SetWriteDeadline(time.Time{})
	}

	// Receive-batch → process → send-batch: each pass ingests every tuple
	// the splitter already delivered (bounded by recvBatch), processes
	// them, and forwards the results in one vectored flush — one syscall
	// pair per batch instead of per tuple on both sides of the operator.
	sender, err := transport.NewSender(out)
	if err != nil {
		return fmt.Errorf("runtime: worker %d sender: %w", w.id, err)
	}
	// Backpressure from the merger is routine and may park forwards for a
	// while; the stall bound only converts "merger never drains again" from
	// a permanent wedge into a connection error recovery absorbs.
	sender.SetStallTimeout(w.to.SendStall)
	rc := transport.NewReceiver(in)
	var batch []transport.Tuple
	results := make([]transport.Tuple, 0, w.recvBatch)
	for {
		var ref *transport.BlockRef
		batch, ref, err = rc.ReceiveBatch(batch, w.recvBatch)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("runtime: worker %d receive: %w", w.id, err)
		}
		results = results[:0]
		for i := range batch {
			results = append(results, w.operator.Process(batch[i]))
		}
		if w.combiner != nil {
			var n int
			results, n = combineBatch(w.combiner, results)
			if n > 0 {
				w.hits.Add(uint64(n))
				if w.mHits != nil {
					w.mHits.Add(float64(n))
				}
			}
		}
		err = sender.SendBatch(results)
		// SendBatch completes its write before returning, so the received
		// payloads (which results may alias) are done with either way.
		ref.ReleaseN(len(batch))
		if err != nil {
			return fmt.Errorf("runtime: worker %d forward: %w", w.id, err)
		}
	}
}

// Wait blocks until the worker loop exits and returns its error, if any.
func (w *Worker) Wait() error {
	<-w.done
	return w.err
}

// Close shuts the worker down: the listener closes (pending Accepts fail)
// and any in-flight connection is severed so a resilient worker exits
// promptly.
func (w *Worker) Close() {
	w.mu.Lock()
	w.closed = true
	active := w.active
	w.mu.Unlock()
	w.ln.Close()
	if active != nil {
		active.Close()
	}
}
