// Package runtime is a miniature distributed streaming runtime: the
// "real system" counterpart to the discrete-event simulator in internal/sim.
// It executes one ordered data-parallel region (Section 2 of the paper) as
// actual OS-level components communicating over loopback TCP:
//
//	splitter --TCP--> worker PE 0..N-1 --TCP--> merger --> sink
//
// The splitter is a single goroutine (the paper's single thread of control)
// that distributes tuples by smooth weighted round-robin using
// transport.Sender, which measures per-connection cumulative blocking time
// with non-blocking writes and netpoller waits. Worker PEs are stateless
// operators that spin for a configurable number of integer multiplies per
// tuple — the paper's workload — and forward results to the merger. The
// merger restores strict sequence order with bounded per-connection reorder
// queues; when it is waiting for a tuple from a slow connection it stops
// draining the fast ones, so back pressure propagates through TCP exactly as
// in the paper's system. A controller goroutine samples the blocking
// counters every collection interval and drives a core.Balancer.
//
// Everything runs in one process here, so with few CPUs the workers time-
// share; the runtime is the end-to-end functional validation of the metric
// path (kernel buffers -> blocking time -> rates -> model -> weights), while
// the simulator is the vehicle for the paper's cluster-scale experiments.
package runtime
