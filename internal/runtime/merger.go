package runtime

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"streambalance/internal/transport"
)

// DefaultMergerQueue bounds each connection's reorder queue: while the tuple
// the merge needs next has not arrived, at most this many tuples are buffered
// per other connection before their readers stop draining TCP — which is how
// back pressure reaches the splitter through the fast connections only under
// severe skew (see Section 4.1 and the sim package's discussion).
const DefaultMergerQueue = 1024

// Merger restores sequence order across N worker connections (Section 4.1).
// Tuples leave through the sink callback in strictly increasing sequence
// order, regardless of which worker processed them or when.
type Merger struct {
	ln       net.Listener
	workers  int
	queueCap int
	sink     func(transport.Tuple, int)

	mu     sync.Mutex
	cond   *sync.Cond
	queues [][]transport.Tuple // per-connection FIFO, bounded by queueCap
	eof    []bool
	next   uint64

	done chan struct{}
	err  error
}

// NewMerger listens for worker connections. sink receives every tuple, in
// order, with the worker id that processed it; it runs on the merge goroutine
// and must not block indefinitely. queueCap <= 0 selects DefaultMergerQueue.
func NewMerger(workers, queueCap int, sink func(transport.Tuple, int)) (*Merger, error) {
	if workers <= 0 {
		return nil, errors.New("runtime: merger needs at least one worker")
	}
	if sink == nil {
		return nil, errors.New("runtime: merger needs a sink")
	}
	if queueCap <= 0 {
		queueCap = DefaultMergerQueue
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("runtime: merger listen: %w", err)
	}
	m := &Merger{
		ln:       ln,
		workers:  workers,
		queueCap: queueCap,
		sink:     sink,
		queues:   make([][]transport.Tuple, workers),
		eof:      make([]bool, workers),
		done:     make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	return m, nil
}

// Addr returns the address workers dial.
func (m *Merger) Addr() string {
	return m.ln.Addr().String()
}

// Start launches the accept loop, per-connection readers and the merge loop.
func (m *Merger) Start() {
	go func() {
		defer close(m.done)
		m.err = m.run()
	}()
}

// run accepts all worker connections, then merges until every stream ends.
func (m *Merger) run() error {
	var wg sync.WaitGroup
	conns := make([]net.Conn, m.workers)
	for i := 0; i < m.workers; i++ {
		conn, err := m.ln.Accept()
		if err != nil {
			return fmt.Errorf("runtime: merger accept: %w", err)
		}
		var idBuf [4]byte
		if _, err := io.ReadFull(conn, idBuf[:]); err != nil {
			conn.Close()
			return fmt.Errorf("runtime: merger read worker id: %w", err)
		}
		id := int(binary.LittleEndian.Uint32(idBuf[:]))
		if id < 0 || id >= m.workers || conns[id] != nil {
			conn.Close()
			return fmt.Errorf("runtime: merger got bad worker id %d", id)
		}
		conns[id] = conn
	}
	m.ln.Close()

	readErrs := make([]error, m.workers)
	for id, conn := range conns {
		wg.Add(1)
		go func(id int, conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			readErrs[id] = m.readLoop(id, conn)
		}(id, conn)
	}

	mergeErr := m.mergeLoop()
	wg.Wait()
	if mergeErr != nil {
		return mergeErr
	}
	return errors.Join(readErrs...)
}

// readLoop drains one worker connection into its bounded reorder queue. When
// the queue is full the loop waits — it stops reading from TCP, so the
// worker's sends eventually block: back pressure.
func (m *Merger) readLoop(id int, conn net.Conn) error {
	rc := transport.NewReceiver(conn)
	for {
		t, err := rc.Receive()
		if errors.Is(err, io.EOF) {
			m.mu.Lock()
			m.eof[id] = true
			m.cond.Broadcast()
			m.mu.Unlock()
			return nil
		}
		if err != nil {
			m.mu.Lock()
			m.eof[id] = true
			m.cond.Broadcast()
			m.mu.Unlock()
			return fmt.Errorf("runtime: merger read worker %d: %w", id, err)
		}
		m.mu.Lock()
		for len(m.queues[id]) >= m.queueCap {
			m.cond.Wait()
		}
		m.queues[id] = append(m.queues[id], t)
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// mergeLoop releases tuples in strict sequence order.
func (m *Merger) mergeLoop() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		released := false
		for id := range m.queues {
			if len(m.queues[id]) == 0 {
				continue
			}
			head := m.queues[id][0]
			if head.Seq != m.next {
				continue
			}
			m.queues[id] = m.queues[id][1:]
			m.next++
			released = true
			m.mu.Unlock()
			m.sink(head, id)
			m.mu.Lock()
			m.cond.Broadcast()
			break
		}
		if released {
			continue
		}
		// Nothing matched: either a stream still owes us the next tuple, or
		// everything has drained.
		allDone := true
		for id := range m.queues {
			if !m.eof[id] || len(m.queues[id]) > 0 {
				allDone = false
				break
			}
		}
		if allDone {
			return nil
		}
		// If every live stream is at EOF but queues hold only later
		// sequence numbers, the next tuple can never arrive.
		stuck := true
		for id := range m.queues {
			if !m.eof[id] {
				stuck = false
				break
			}
		}
		if stuck {
			return fmt.Errorf("runtime: merger missing sequence %d at end of streams", m.next)
		}
		m.cond.Wait()
	}
}

// Wait blocks until merging completes and returns the first error.
func (m *Merger) Wait() error {
	<-m.done
	return m.err
}

// Close shuts the listener.
func (m *Merger) Close() {
	m.ln.Close()
}
