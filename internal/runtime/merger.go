package runtime

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"streambalance/internal/metrics"
	"streambalance/internal/transport"
)

// DefaultMergerQueue bounds each connection's reorder backlog (ring plus
// heap): while the tuple the merge needs next has not arrived, at most this
// many tuples are buffered per other connection before their readers stop
// draining TCP — which is how back pressure reaches the splitter through the
// fast connections only under severe skew (see Section 4.1 and the sim
// package's discussion).
const DefaultMergerQueue = 1024

// DefaultMergerRing bounds each connection's lock-free ingest ring in tuples
// (rounded up to a power of two). The ring is a hand-off lane, not the
// reorder buffer: it only needs to cover the bursts between merge-loop drain
// passes, and its occupancy counts toward the DefaultMergerQueue back-pressure
// cap.
const DefaultMergerRing = 1024

// capWaiveDelay is how long the merge loop tolerates being unable to
// release while a stream sits at its back-pressure cap before it waives the
// cap (mergeStuck): long enough that a tuple already in flight on another
// stream (the common cause — its reader merely hasn't been scheduled)
// resolves the gap without waiving, short enough that under a persistent
// gap — a straggling worker, a replay wedged behind a survivor's backlog —
// the fast streams are only ever paused briefly, preserving the old locked
// merger's behavior of not converting a head-blocked merge into a false
// blocking signal on the healthy connections.
const capWaiveDelay = 100 * time.Microsecond

// capWaivePoll is the merge loop's poll-sleep granularity inside the
// capWaiveDelay window; sleeping (rather than cond-parking) hands the CPU
// to the connection readers, one of which is usually about to deliver the
// sequence the merge is waiting on.
const capWaivePoll = 20 * time.Microsecond

// capWaiveHot is the hysteresis window after a waiver fires during which
// further head-blocked parks waive immediately, skipping the capWaiveDelay
// poll. A replay drain head-blocks once per buried sequence; the first
// episode proves the wedge is real, and charging every subsequent episode
// the full poll would turn recovery into a sequence of stalls.
const capWaiveHot = 10 * time.Millisecond

// DefaultWatermarkInterval is how often the merger reports its released
// watermark on the control channel.
const DefaultWatermarkInterval = 20 * time.Millisecond

// Merger restores sequence order across N worker connections (Section 4.1).
// Tuples leave through the sink callback in strictly increasing sequence
// order, regardless of which worker processed them or when.
//
// Unlike the paper's merger, a worker stream ending is not fatal: a worker
// id may detach (crash) and later reattach (restart), and replayed tuples
// that were already released are deduplicated, so every sequence number is
// released exactly once. The merger learns the stream's total length from
// the splitter's FIN frame on the control channel; without a control
// channel it falls back to the original fixed-worker semantics.
//
// Ingest is sharded: each connection reader owns a bounded lock-free SPSC
// ring (producer = the reader, consumer = the merge loop), and the merge
// loop drains rings into consumer-private per-stream reorder heaps, picking
// releases through an indexed min-heap over the stream heads. No mutex is
// taken on the tuple hot path; per-item ordered-merge synchronization is the
// multicore scaling ceiling Prasaad et al. identify, and it previously capped
// ingest at 64 connections on one lock hand-off. Locks remain only on the
// control plane (membership, FIN, errors — all rare), fenced from the merge
// loop by an epoch counter, and inside park/wake, which is touched only when
// a goroutine actually goes to sleep.
type Merger struct {
	ln          net.Listener
	workers     int
	queueCap    int
	ringCap     int
	recvBatch   int // max tuples decoded per ReceiveBatch pass
	sink        func(transport.Tuple, int)
	wmInterval  time.Duration
	to          Timeouts
	stallWindow time.Duration // 0 = watchdog disabled

	// Data plane. rings[id] is written by connection id's reader and
	// drained by the merge loop; queues (per-stream reorder heaps) and
	// heads (the release tournament over their minimums) are touched by
	// the merge loop alone. depth[id] republishes each heap's occupancy
	// so producers can compute their back-pressure bound and the watchdog
	// can rank candidates without entering the merge loop's world.
	rings  []*spscRing
	queues []streamQueue
	heads  *headIndex
	depth  []paddedCount

	// Park/wake. The merge loop parks on parkCond when every ring is
	// empty; producers wake it with wakeMerge, which fast-paths to a
	// single atomic load while it is awake. Each reader parks on its own
	// stream's condvar (parks[id]) when its backlog hits the back-pressure
	// cap or its ring is full, and is woken selectively: when the merge
	// loop drains its ring, when its backlog descends through wakeAt
	// (refill hysteresis — waking at cap-1 would let it push one tuple and
	// re-park, a broadcast storm under contention), and by wakeAll on any
	// control-plane change. mergeStuck is the merge loop's published "I
	// cannot release anything while a stream sits at its cap" bit: while
	// it is set, readers at their cap overflow instead of parking, because
	// the sequence the merge needs may be *behind* the tuple in their hand
	// (a replay queued after a survivor's backlog) and parking would wedge
	// the region on head-of-line blocking.
	parked     atomic.Int32
	parkMu     sync.Mutex
	parkCond   *sync.Cond
	parks      []streamPark
	wakeAt     int // queue depth at which a cap-parked reader is rewoken
	lastWaive  time.Time // merge loop only: when the cap was last waived
	mergeStuck atomic.Bool
	closed     atomic.Bool

	// Control plane, guarded by ctl: membership and completion state that
	// changes on the order of connections, not tuples. Every mutation
	// bumps epoch (under ctl) and then calls wakeAll; the merge loop
	// caches a snapshot and refreshes it when the epoch moves, re-fencing
	// against the current epoch before any terminal decision.
	ctl      sync.Mutex
	epoch    atomic.Uint64
	live     []bool // worker id currently attached
	seen     []bool
	attached int // distinct worker ids ever attached
	finKnown bool
	finTotal uint64
	ctrlSeen bool // a control connection has ever attached
	ctrlLive int  // control connections currently open
	fatal    error
	strmErrs []error
	conns    map[net.Conn]struct{} // attached worker conns, for teardown
	pending  map[net.Conn]struct{} // accepted conns mid-handshake, for teardown
	// inprocRx tracks attached in-process receivers (AttachInproc) so
	// teardown can close them — closing wakes their parked producers and
	// sweeps stranded block references, the in-proc analogue of closing a
	// worker conn.
	inprocRx map[*transport.InprocReceiver]struct{}

	// quarantined[id] is set when the watchdog nominates id and cleared
	// when the stream delivers or reattaches; atomic because readers
	// clear it on the lock-free ingest path.
	quarantined []atomic.Bool

	// lastIngest is the wall time (unix nanos) each worker id last
	// delivered a batch, stamped lock-free by the connection readers and
	// read by the watchdog to rank quarantine candidates.
	lastIngest []atomic.Int64

	// next is the released watermark: the lowest unreleased sequence
	// number. Mutated only by the merge loop, read everywhere (readers'
	// dedup/admission checks, the watermark writer, stats accessors).
	next atomic.Uint64

	// absorbed holds sequence numbers claimed by released combined carriers
	// (worker-side per-key aggregation) that the watermark has not yet
	// passed. When the watermark reaches an absorbed seq it advances
	// silently — no sink call, the carrier's payload already delivered the
	// aggregate. Merge loop only. A carrier popping as a duplicate never
	// registers its absorbed seqs: its connection died before release, so
	// every unreleased group member was replayed individually (solo) and
	// releases through the normal path.
	absorbed map[uint64]struct{}

	deduped    atomic.Uint64
	dupRejects atomic.Uint64
	combined   atomic.Uint64 // seqs released via carrier absorption

	wmStop chan struct{} // tells watermark writers to flush and exit
	quarCh chan int      // watchdog nominations bound for the control channel
	done   chan struct{}
	err    error
	wg     sync.WaitGroup

	// Metrics handles, pre-resolved per worker id; nil when the merger is
	// uninstrumented. Set before Start.
	rm           *RegionMetrics
	mReleased    *metrics.Counter
	mWatermark   *metrics.Gauge
	mDeduped     *metrics.Counter
	mDupRejects  *metrics.Counter
	mQueue       []*metrics.Gauge
	mRing        []*metrics.Gauge
	mIngestBatch *metrics.Histogram
	mParks       *metrics.Counter
	mWakes       *metrics.Counter
	mStall       *metrics.Histogram
	mIngestAge   []*metrics.Gauge
	mCombined    *metrics.Counter
}

// NewMerger listens for worker connections. sink receives every tuple, in
// order, with the worker id that processed it; it runs on the merge goroutine
// and must not block indefinitely. queueCap <= 0 selects DefaultMergerQueue.
func NewMerger(workers, queueCap int, sink func(transport.Tuple, int)) (*Merger, error) {
	if workers <= 0 {
		return nil, errors.New("runtime: merger needs at least one worker")
	}
	if sink == nil {
		return nil, errors.New("runtime: merger needs a sink")
	}
	if queueCap <= 0 {
		queueCap = DefaultMergerQueue
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("runtime: merger listen: %w", err)
	}
	m := &Merger{
		ln:          ln,
		workers:     workers,
		queueCap:    queueCap,
		ringCap:     DefaultMergerRing,
		recvBatch:   transport.DefaultRecvBatch,
		sink:        sink,
		wmInterval:  DefaultWatermarkInterval,
		to:          Timeouts{}.norm(),
		rings:       make([]*spscRing, workers),
		queues:      make([]streamQueue, workers),
		heads:       newHeadIndex(workers),
		depth:       make([]paddedCount, workers),
		live:        make([]bool, workers),
		seen:        make([]bool, workers),
		quarantined: make([]atomic.Bool, workers),
		conns:       make(map[net.Conn]struct{}),
		pending:     make(map[net.Conn]struct{}),
		inprocRx:    make(map[*transport.InprocReceiver]struct{}),
		lastIngest:  make([]atomic.Int64, workers),
		absorbed:    make(map[uint64]struct{}),
		wmStop:      make(chan struct{}),
		quarCh:      make(chan int, workers),
		done:        make(chan struct{}),
	}
	for id := range m.rings {
		m.rings[id] = newSPSCRing(m.ringCap)
	}
	m.parkCond = sync.NewCond(&m.parkMu)
	m.parks = make([]streamPark, workers)
	for id := range m.parks {
		m.parks[id].cond = sync.NewCond(&m.parks[id].mu)
	}
	m.wakeAt = queueCap / 2
	return m, nil
}

// SetTimeouts overrides the merger's I/O deadlines (handshake reads,
// control-channel writes). Call before Start.
func (m *Merger) SetTimeouts(t Timeouts) {
	m.to = t.norm()
}

// SetStallWindow arms the merge-stall watchdog: when the watermark makes no
// progress for this long while queued tuples are waiting behind the gap, the
// connection that appears to own the missing sequence range is nominated for
// quarantine on the control channel. d <= 0 disables the watchdog. Call
// before Start.
func (m *Merger) SetStallWindow(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.stallWindow = d
}

// SetWatermarkInterval tunes how often released watermarks are reported on
// the control channel. Call before Start.
func (m *Merger) SetWatermarkInterval(d time.Duration) {
	if d > 0 {
		m.wmInterval = d
	}
}

// SetRecvBatch bounds how many tuples one connection reader decodes and
// ingests per ReceiveBatch pass (default transport.DefaultRecvBatch; 1
// restores the per-tuple path). Call before Start.
func (m *Merger) SetRecvBatch(n int) {
	if n > 0 {
		m.recvBatch = n
	}
}

// SetRingCap resizes each connection's lock-free ingest ring (default
// DefaultMergerRing; rounded up to a power of two, minimum 2). The ring
// bounds burst hand-off between a reader and the merge loop, not the reorder
// backlog — ring occupancy counts toward the queueCap back-pressure bound.
// Call before Start.
func (m *Merger) SetRingCap(n int) {
	if n <= 0 {
		return
	}
	m.ringCap = n
	for id := range m.rings {
		m.rings[id] = newSPSCRing(n)
	}
}

// SetMetrics instruments the merger: release counter, watermark gauge,
// per-connection reorder-heap and ring occupancy, dedupe and park/wake
// counters. Call before Start; nil is a no-op.
func (m *Merger) SetMetrics(rm *RegionMetrics) {
	if rm == nil {
		return
	}
	m.rm = rm
	m.mReleased = rm.released
	m.mWatermark = rm.watermark
	m.mDeduped = rm.deduped
	m.mDupRejects = rm.dupRejects
	m.mQueue = make([]*metrics.Gauge, m.workers)
	m.mRing = make([]*metrics.Gauge, m.workers)
	m.mIngestAge = make([]*metrics.Gauge, m.workers)
	for id := 0; id < m.workers; id++ {
		m.mQueue[id] = rm.queueDepth.With(strconv.Itoa(id))
		m.mRing[id] = rm.ringDepth.With(strconv.Itoa(id))
		m.mIngestAge[id] = rm.ingestAge.With(strconv.Itoa(id))
	}
	m.mIngestBatch = rm.ingestBatchTuples
	m.mParks = rm.ingestParks
	m.mWakes = rm.mergeWakes
	m.mStall = rm.stallSeconds
	m.mCombined = rm.combinedReleased
}

// noteDedup counts one dropped duplicate.
func (m *Merger) noteDedup() {
	m.deduped.Add(1)
	if m.mDeduped != nil {
		m.mDeduped.Inc()
	}
}

// Addr returns the address workers (and the splitter's control channel) dial.
func (m *Merger) Addr() string {
	return m.ln.Addr().String()
}

// Deduped returns how many duplicate tuples (replays of already-released or
// already-queued sequence numbers) were dropped. Lock-free: scraping stats
// never contends with ingest.
func (m *Merger) Deduped() uint64 {
	return m.deduped.Load()
}

// DupRejects returns how many connections were rejected for claiming a
// worker id whose stream was still live. Lock-free.
func (m *Merger) DupRejects() uint64 {
	return m.dupRejects.Load()
}

// Watermark returns the lowest unreleased sequence number. Lock-free.
func (m *Merger) Watermark() uint64 {
	return m.next.Load()
}

// CombinedReleased returns how many sequence numbers were released through
// carrier absorption (worker-side combining) rather than through the sink.
// Released sink tuples plus CombinedReleased account for every sequence
// number exactly once. Lock-free.
func (m *Merger) CombinedReleased() uint64 {
	return m.combined.Load()
}

// paddedCount is an atomic counter alone on its cache line: the per-stream
// depth counters are written by the merge loop per release and read by their
// producers per tuple, and packing eight to a line would false-share every
// store across eight readers.
type paddedCount struct {
	v atomic.Int64
	_ [56]byte
}

// streamDepth is stream id's full reorder backlog: its published queue
// occupancy plus whatever sits undrained in its ring. Lock-free and
// approximate while both sides move, which is fine for back pressure and
// watchdog evidence.
func (m *Merger) streamDepth(id int) int {
	return int(m.depth[id].v.Load()) + m.rings[id].len()
}

// streamPark is one connection reader's private parking spot: the reader
// parks here when its stream hits the back-pressure cap or its ring fills,
// and the merge loop wakes it selectively, so one stream draining does not
// broadcast to the other sixty-three.
type streamPark struct {
	parked atomic.Int32
	mu     sync.Mutex
	cond   *sync.Cond
}

// wakeMerge unblocks the merge loop if it is parked. The fast path is one
// atomic load: while it is awake (the steady state), waking costs nothing
// and the producers' hot path never touches parkMu.
func (m *Merger) wakeMerge() {
	if m.parked.Load() == 0 {
		return
	}
	m.parkMu.Lock()
	m.parkCond.Broadcast()
	m.parkMu.Unlock()
}

// wakeStream unblocks stream id's reader if it is parked; same single
// atomic-load fast path as wakeMerge.
func (m *Merger) wakeStream(id int) {
	p := &m.parks[id]
	if p.parked.Load() == 0 {
		return
	}
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// wakeAll unblocks every parked goroutine — the merge loop and all stream
// readers. Control-plane use (membership changes, teardown, the merge
// loop's pre-park handoff): any state change whose unblocking effect is not
// captured by a targeted wake must come here.
func (m *Merger) wakeAll() {
	m.wakeMerge()
	for id := range m.parks {
		m.wakeStream(id)
	}
}

// parkWhile blocks the merge loop while cond() holds. cond must read only
// atomics. The parked counter is raised before cond is re-checked under
// parkMu, so a waker that changes state and then sees parked == 0 is
// guaranteed the parker will observe that change and not sleep — the usual
// Dekker hand-off, with sequential consistency supplied by sync/atomic.
func (m *Merger) parkWhile(cond func() bool) {
	m.parked.Add(1)
	m.parkMu.Lock()
	for cond() {
		m.parkCond.Wait()
	}
	m.parkMu.Unlock()
	m.parked.Add(-1)
}

// parkStream blocks stream id's reader while cond() holds; the same Dekker
// hand-off as parkWhile, against the stream's own parking spot.
func (m *Merger) parkStream(id int, cond func() bool) {
	p := &m.parks[id]
	p.parked.Add(1)
	p.mu.Lock()
	for cond() {
		p.cond.Wait()
	}
	p.mu.Unlock()
	p.parked.Add(-1)
}

// Start launches the accept loop, per-connection readers and the merge loop.
func (m *Merger) Start() {
	go func() {
		defer close(m.done)
		m.err = m.run()
	}()
}

// run accepts connections and merges until the stream completes or fails.
func (m *Merger) run() error {
	m.wg.Add(1)
	go m.acceptLoop()
	if m.stallWindow > 0 {
		m.wg.Add(1)
		go m.watchdog()
	}

	mergeErr := m.mergeLoop()

	// Let in-flight watermark writers deliver the final watermark before
	// the control connections close, so a draining splitter observes
	// completion rather than an abrupt loss.
	close(m.wmStop)
	m.teardown()
	m.wg.Wait()
	// Every producer has exited (readers parked mid-batch were woken by
	// teardown's closed+wakeAll and released their in-hand references on
	// the way out), so the rings are quiescent: drain them and the reorder
	// heaps single-threaded, returning every still-held block reference to
	// the transport pool.
	m.drainLeftovers()

	m.ctl.Lock()
	strmErrs := m.strmErrs
	ctrlSeen := m.ctrlSeen
	m.ctl.Unlock()
	if mergeErr != nil {
		return errors.Join(append([]error{mergeErr}, strmErrs...)...)
	}
	if !ctrlSeen {
		// Original fixed-worker semantics: with no recovery protocol in
		// play, a worker stream error is the caller's problem even when
		// every tuple was released.
		return errors.Join(strmErrs...)
	}
	return nil
}

// teardown closes the listener and every attached connection and wakes all
// parked goroutines so they observe the shutdown. Queue draining happens
// after wg.Wait in run: a reader parked on a full ring or at its
// back-pressure cap still holds references for the rest of its batch, and
// only once every reader has exited is single-threaded drain safe.
func (m *Merger) teardown() {
	m.ln.Close()
	m.closed.Store(true)
	m.ctl.Lock()
	for conn := range m.conns {
		conn.Close()
	}
	for conn := range m.pending {
		conn.Close()
	}
	for rx := range m.inprocRx {
		rx.Close()
	}
	m.epoch.Add(1)
	m.ctl.Unlock()
	m.wakeAll()
}

// drainLeftovers releases every block reference still queued in the rings
// and reorder heaps. Only called after all producers have exited.
func (m *Merger) drainLeftovers() {
	for id := range m.rings {
		for {
			it, ok := m.rings[id].pop()
			if !ok {
				break
			}
			it.ref.Release()
		}
		for m.queues[id].len() > 0 {
			m.queues[id].popMin().ref.Release()
		}
		m.queues[id] = streamQueue{}
	}
}

// acceptLoop admits worker and control connections until the listener
// closes. The handshake runs in a per-connection goroutine so one stalled
// peer cannot block the others from attaching.
func (m *Merger) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return
		}
		m.wg.Add(1)
		go m.handshake(conn)
	}
}

// handshake reads the 4-byte connection id and routes the connection: a
// worker id attaches a reader, the control sentinel attaches the watermark
// writer and FIN reader. Every failure path closes the accepted connection.
//
// The id read is deadline-bounded and the connection is tracked in the
// pending set until identified: a peer that connects and goes silent is
// shed after the handshake timeout (or at teardown) instead of pinning this
// goroutine — and with it the merger's WaitGroup — forever.
func (m *Merger) handshake(conn net.Conn) {
	defer m.wg.Done()
	m.ctl.Lock()
	if m.closed.Load() {
		m.ctl.Unlock()
		conn.Close()
		return
	}
	m.pending[conn] = struct{}{}
	m.ctl.Unlock()
	unpend := func() {
		m.ctl.Lock()
		delete(m.pending, conn)
		m.ctl.Unlock()
	}
	if m.to.Handshake > 0 {
		conn.SetReadDeadline(time.Now().Add(m.to.Handshake))
	}
	var idBuf [4]byte
	if _, err := io.ReadFull(conn, idBuf[:]); err != nil {
		unpend()
		conn.Close()
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			// A silent dialer shed by the deadline is defense, not a
			// stream failure: record it on the trace only.
			if m.rm != nil {
				m.rm.traceEvent(metrics.Event{Kind: "handshake-timeout", Conn: -1, Detail: conn.RemoteAddr().String()})
			}
			return
		}
		if !m.closed.Load() {
			m.recordStreamErr(fmt.Errorf("runtime: merger read worker id: %w", err))
		}
		return
	}
	conn.SetReadDeadline(time.Time{})
	unpend()
	raw := binary.LittleEndian.Uint32(idBuf[:])
	if raw == controlConnID {
		m.attachControl(conn)
		return
	}
	id := int(raw)
	if id < 0 || id >= m.workers {
		conn.Close()
		m.setFatal(fmt.Errorf("runtime: merger got bad worker id %d", id))
		return
	}
	m.ctl.Lock()
	if m.closed.Load() {
		m.ctl.Unlock()
		conn.Close()
		return
	}
	if m.live[id] {
		// A duplicate of a live stream is rejected (closed) but not
		// fatal: a restarting worker can race its predecessor's teardown
		// and will retry after backoff. Rejection is the correct
		// handling, so it does not count as a stream error.
		m.dupRejects.Add(1)
		if m.mDupRejects != nil {
			m.mDupRejects.Inc()
		}
		m.ctl.Unlock()
		conn.Close()
		return
	}
	m.live[id] = true
	if !m.seen[id] {
		m.seen[id] = true
		m.attached++
	}
	m.conns[conn] = struct{}{}
	m.epoch.Add(1)
	m.ctl.Unlock()
	// A (re)attaching stream is fresh evidence of life: reset the ingest
	// clock and clear any standing quarantine nomination for this id.
	m.quarantined[id].Store(false)
	m.lastIngest[id].Store(time.Now().UnixNano())
	m.wakeAll()
	m.readLoop(id, conn)
}

// setFatal records a protocol violation and aborts the merge.
func (m *Merger) setFatal(err error) {
	m.ctl.Lock()
	if m.fatal == nil {
		m.fatal = err
	}
	m.epoch.Add(1)
	m.ctl.Unlock()
	m.wakeAll()
}

func (m *Merger) recordStreamErr(err error) {
	m.ctl.Lock()
	m.strmErrs = append(m.strmErrs, err)
	m.epoch.Add(1)
	m.ctl.Unlock()
	m.wakeAll()
}

// attachControl wires a splitter control connection: one goroutine streams
// watermarks out, this goroutine reads the FIN total and then watches for
// the peer closing.
func (m *Merger) attachControl(conn net.Conn) {
	m.ctl.Lock()
	if m.closed.Load() {
		m.ctl.Unlock()
		conn.Close()
		return
	}
	m.ctrlSeen = true
	m.ctrlLive++
	m.epoch.Add(1)
	m.ctl.Unlock()
	m.wakeAll()

	m.wg.Add(1)
	go m.watermarkWriter(conn)

	var buf [8]byte
	if _, err := io.ReadFull(conn, buf[:]); err == nil {
		m.ctl.Lock()
		m.finKnown = true
		m.finTotal = binary.LittleEndian.Uint64(buf[:])
		m.epoch.Add(1)
		m.ctl.Unlock()
		m.wakeAll()
		// The splitter holds the channel open until it drains; wait for
		// the close so ctrlLive reflects liveness, not FIN receipt.
		io.Copy(io.Discard, conn)
	}
	m.ctl.Lock()
	m.ctrlLive--
	m.epoch.Add(1)
	m.ctl.Unlock()
	m.wakeAll()
}

// watermarkWriter periodically reports the released watermark and forwards
// the watchdog's quarantine nominations, flushing a final watermark when the
// merge completes so the splitter's drain observes every release. It owns
// closing the control connection. Every write carries a deadline: a control
// peer that stops reading sheds this goroutine instead of pinning it.
func (m *Merger) watermarkWriter(conn net.Conn) {
	defer m.wg.Done()
	defer conn.Close()
	ticker := time.NewTicker(m.wmInterval)
	defer ticker.Stop()
	var buf [8]byte
	send := func(v uint64) error {
		binary.LittleEndian.PutUint64(buf[:], v)
		if m.to.ControlWrite > 0 {
			conn.SetWriteDeadline(time.Now().Add(m.to.ControlWrite))
		}
		_, err := conn.Write(buf[:])
		return err
	}
	write := func() error {
		// next is atomic, so the periodic report reads the merge loop's
		// progress without touching it.
		return send(m.next.Load())
	}
	for {
		select {
		case <-m.wmStop:
			write()
			return
		case id := <-m.quarCh:
			if send(quarantineFlag|uint64(uint32(id))) != nil {
				return
			}
		case <-ticker.C:
			if write() != nil {
				return
			}
		}
	}
}

// readLoop drains one worker connection into its SPSC ring, batch by batch:
// each ReceiveBatch decodes every complete frame already in the receive
// buffer (up to recvBatch) and ingest pushes the whole batch lock-free.
// Back pressure is unchanged from the mutex-guarded merger: when the
// stream's reorder backlog is at capacity the ingest waits mid-batch, the
// reader stops reading TCP, and the worker's sends eventually block.
func (m *Merger) readLoop(id int, conn net.Conn) {
	defer func() {
		m.ctl.Lock()
		m.live[id] = false
		delete(m.conns, conn)
		m.epoch.Add(1)
		m.ctl.Unlock()
		m.wakeAll()
		conn.Close()
	}()
	rc := transport.NewReceiver(conn)
	var batch []transport.Tuple
	for {
		var ref *transport.BlockRef
		var err error
		batch, ref, err = rc.ReceiveBatch(batch, m.recvBatch)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return
			}
			if !m.closed.Load() {
				m.recordStreamErr(fmt.Errorf("runtime: merger read worker %d: %w", id, err))
			}
			return
		}
		if m.mIngestBatch != nil {
			m.mIngestBatch.Observe(float64(len(batch)))
		}
		// Stamp arrival before ingest (which may park on a full backlog):
		// the watchdog must see that this stream is delivering even while
		// the reorder backlog has no room.
		m.lastIngest[id].Store(time.Now().UnixNano())
		if !m.ingest(id, batch, ref) {
			return
		}
	}
}

// AttachInproc attaches worker id's stream over an in-process transport edge
// instead of a TCP connection: the merger consumes rx on a dedicated reader
// goroutine exactly as it reads a socket — same ingest path, same SPSC ring,
// same dedup and back-pressure rules, same completion accounting (the attach
// counts toward the fixed-pipeline arrival logic, so a region whose workers
// all attach in-proc completes when every edge closes). Call before or after
// Start, once per worker id while that id is unattached.
func (m *Merger) AttachInproc(id int, rx *transport.InprocReceiver) error {
	if id < 0 || id >= m.workers {
		return fmt.Errorf("runtime: merger got bad worker id %d", id)
	}
	m.ctl.Lock()
	if m.closed.Load() {
		m.ctl.Unlock()
		rx.Close()
		return errors.New("runtime: merger closed")
	}
	if m.live[id] {
		m.dupRejects.Add(1)
		if m.mDupRejects != nil {
			m.mDupRejects.Inc()
		}
		m.ctl.Unlock()
		rx.Close()
		return fmt.Errorf("runtime: worker id %d already attached", id)
	}
	m.live[id] = true
	if !m.seen[id] {
		m.seen[id] = true
		m.attached++
	}
	m.inprocRx[rx] = struct{}{}
	m.epoch.Add(1)
	// Register with the WaitGroup inside the critical section: a concurrent
	// teardown either sees this attach (and closes rx, so the reader exits
	// and run's wg.Wait covers it) or this attach sees closed and rejects —
	// never an Add racing a Wait already in progress.
	m.wg.Add(1)
	m.ctl.Unlock()
	m.quarantined[id].Store(false)
	m.lastIngest[id].Store(time.Now().UnixNano())
	m.wakeAll()
	go m.readLoopInproc(id, rx)
	return nil
}

// readLoopInproc is readLoop over an in-process edge: batches pop straight
// off the pipe's ring — already-decoded tuples carrying their upstream block
// references — and flow into ingest unchanged.
func (m *Merger) readLoopInproc(id int, rx *transport.InprocReceiver) {
	defer m.wg.Done()
	defer func() {
		m.ctl.Lock()
		m.live[id] = false
		delete(m.inprocRx, rx)
		m.epoch.Add(1)
		m.ctl.Unlock()
		m.wakeAll()
		rx.Close()
	}()
	var batch []transport.Tuple
	for {
		var ref *transport.BlockRef
		var err error
		batch, ref, err = rx.ReceiveBatch(batch, m.recvBatch)
		if err != nil {
			if !errors.Is(err, io.EOF) && !m.closed.Load() {
				m.recordStreamErr(fmt.Errorf("runtime: merger read worker %d: %w", id, err))
			}
			return
		}
		if m.mIngestBatch != nil {
			m.mIngestBatch.Observe(float64(len(batch)))
		}
		// Stamp arrival before ingest (which may park on a full backlog):
		// the watchdog must see that this stream is delivering even while
		// the reorder backlog has no room.
		m.lastIngest[id].Store(time.Now().UnixNano())
		if !m.ingest(id, batch, ref) {
			return
		}
	}
}

// ingest pushes one received batch into the connection's SPSC ring with no
// locks. Each tuple individually respects the per-tuple admission rules:
// the full-backlog wait (back pressure), the always-admit exception for
// sequences at or below the watermark, and read-time dedup of
// already-released sequences — so dedup, watermark and replay accounting
// are identical to mutex-guarded ingest (the sharded-vs-locked equivalence
// suite pins this). Returns false when the merger closed mid-batch (the
// reader should exit); the block references of tuples not handed to the
// ring are released here. Single producer per ring: only connection id's
// reader calls this, one batch at a time.
func (m *Merger) ingest(id int, batch []transport.Tuple, ref *transport.BlockRef) bool {
	ring := m.rings[id]
	// A stream delivering again withdraws any standing quarantine
	// nomination for it (e.g. the stall healed before the splitter acted).
	m.quarantined[id].Store(false)
	// One watermark load covers the batch: the merge loop invalidates that
	// cache line on every release, and re-reading it per tuple from 64
	// readers is pure coherence traffic. A stale (lower) value is safe on
	// both uses — a duplicate it fails to catch is swept lazily by the
	// merge loop, and a park it fails to skip re-checks a fresh load in
	// its wait predicate.
	next := m.next.Load()
	pushed := false
	for i := range batch {
		t := batch[i]
		if t.Seq < next {
			// Replay of a sequence already released: exactly-once means
			// dropping it here.
			m.noteDedup()
			ref.Release()
			continue
		}
		// Block on a full backlog only while the merge can progress
		// without this reader (mergeStuck clear). If the merge is stuck,
		// the tuple carrying the sequence it needs may be *behind* the one
		// in hand in this very stream (a replay queued after a survivor's
		// backlog), so the reader must overflow the cap and keep reading
		// or the region wedges on head-of-line blocking.
		for m.streamDepth(id) >= m.queueCap && t.Seq > next &&
			!m.closed.Load() && !m.mergeStuck.Load() {
			if pushed {
				// Earlier tuples in this batch may include the sequence
				// the merge loop is parked waiting for — wake it before
				// parking ourselves, or both sides wait forever.
				m.wakeMerge()
				pushed = false
			}
			if m.mParks != nil {
				m.mParks.Inc()
			}
			m.parkStream(id, func() bool {
				return m.streamDepth(id) >= m.queueCap && t.Seq > m.next.Load() &&
					!m.closed.Load() && !m.mergeStuck.Load()
			})
			next = m.next.Load()
		}
		if m.closed.Load() {
			ref.ReleaseN(len(batch) - i)
			return false
		}
		for !ring.push(mergeItem{t: t, ref: ref}) {
			// A full ring is transient, not semantic back pressure: the
			// merge loop drains rings unconditionally every pass. Wake it
			// and park until a slot frees; re-check closed so teardown
			// cannot strand this reader.
			if m.closed.Load() {
				ref.ReleaseN(len(batch) - i)
				return false
			}
			m.wakeMerge()
			if m.mParks != nil {
				m.mParks.Inc()
			}
			m.parkStream(id, func() bool {
				return ring.full() && !m.closed.Load()
			})
		}
		pushed = true
	}
	if pushed {
		m.wakeMerge()
	}
	if m.mRing != nil {
		m.mRing[id].Set(float64(ring.len()))
	}
	return true
}

// watchdog detects merge stalls: when the released watermark makes no
// progress for the stall window while other streams have tuples queued
// behind the gap, the connection that most plausibly owns the missing
// sequence range is nominated for quarantine on the control channel. The
// splitter cross-checks the nomination against its replay buffer (which
// knows the true owner) and drives the eviction through the ordinary
// membership-edit path, so the merger never mutates membership itself.
//
// The watchdog also maintains the per-connection ingest-age gauges and the
// stall-episode histogram. It reads the watermark atomically each tick —
// the merge hot path carries no extra timestamping for it.
func (m *Merger) watchdog() {
	defer m.wg.Done()
	tick := m.stallWindow / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	prevWM := m.next.Load()
	lastAdvance := time.Now()
	var lastNominate time.Time
	inStall := false
	var stallStart time.Time
	for {
		select {
		case <-m.wmStop:
			// The merge finished (or the merger closed) with a stall episode
			// still open: the episode ended with the stream, so close it here
			// rather than losing it — recovery and completion can both land
			// inside one tick.
			if inStall && m.mStall != nil && m.next.Load() != prevWM {
				m.mStall.Observe(time.Since(stallStart).Seconds())
			}
			return
		case <-ticker.C:
		}
		now := time.Now()
		if m.mIngestAge != nil {
			for id := range m.mIngestAge {
				if ts := m.lastIngest[id].Load(); ts > 0 {
					m.mIngestAge[id].Set(now.Sub(time.Unix(0, ts)).Seconds())
				}
			}
		}
		wm := m.next.Load()
		if wm != prevWM {
			if inStall {
				if m.mStall != nil {
					m.mStall.Observe(now.Sub(stallStart).Seconds())
				}
				inStall = false
			}
			prevWM = wm
			lastAdvance = now
			continue
		}
		if now.Sub(lastAdvance) < m.stallWindow {
			continue
		}
		victim, evidence := m.nominate(now)
		if evidence && !inStall {
			inStall = true
			stallStart = lastAdvance
		}
		if victim < 0 {
			continue
		}
		// Re-nominate at most once per window while the stall persists —
		// the next candidate differs because nominated ids are excluded
		// until they deliver again or reattach.
		if !lastNominate.IsZero() && now.Sub(lastNominate) < m.stallWindow {
			continue
		}
		lastNominate = now
		select {
		case m.quarCh <- victim:
		default:
		}
		if m.rm != nil {
			m.rm.traceEvent(metrics.Event{Kind: "stall-quarantine", Conn: victim,
				Value: now.Sub(lastAdvance).Seconds()})
		}
	}
}

// nominate picks the quarantine candidate under the stall evidence gates:
// recovery must be active (a live control channel to deliver the nomination
// and act on it), the stream must be incomplete, and at least one tuple must
// be queued behind the gap — an idle source stalls the watermark too, and
// evicting healthy workers for having nothing to do would churn membership
// for nothing. Among live, not-already-nominated connections whose last
// ingest is older than the window, connections with an empty reorder backlog
// are preferred (the stalled link has nothing buffered; the survivors are
// queued up behind the gap), oldest ingest first. Returns the candidate (or
// -1) and whether the stall evidence held. Backlogs are read from the
// published depth atomics, so nomination never touches the merge loop's
// private heaps.
func (m *Merger) nominate(now time.Time) (victim int, evidence bool) {
	m.ctl.Lock()
	defer m.ctl.Unlock()
	if m.closed.Load() || m.fatal != nil || m.ctrlLive == 0 {
		return -1, false
	}
	if m.finKnown && m.next.Load() >= m.finTotal {
		return -1, false
	}
	queued := 0
	for id := 0; id < m.workers; id++ {
		queued += m.streamDepth(id)
	}
	if queued == 0 {
		return -1, false
	}
	best, bestEmpty := -1, false
	var bestAge time.Duration
	for id := range m.live {
		if !m.live[id] || m.quarantined[id].Load() {
			continue
		}
		age := now.Sub(time.Unix(0, m.lastIngest[id].Load()))
		if age < m.stallWindow {
			continue
		}
		empty := m.streamDepth(id) == 0
		if best < 0 || (empty && !bestEmpty) || (empty == bestEmpty && age > bestAge) {
			best, bestEmpty, bestAge = id, empty, age
		}
	}
	if best >= 0 {
		m.quarantined[best].Store(true)
	}
	return best, true
}

// mergerSnap is the merge loop's cached view of the control plane,
// refreshed whenever the epoch moves.
type mergerSnap struct {
	epoch    uint64
	anyLive  bool
	attached int
	ctrlSeen bool
	ctrlLive int
	finKnown bool
	finTotal uint64
	fatal    error
}

// snapshot captures the control plane under ctl. The epoch is read under the
// same lock that every mutation bumps it under, so a snapshot is consistent:
// any change after the capture moves the epoch past snap.epoch.
func (m *Merger) snapshot() mergerSnap {
	m.ctl.Lock()
	defer m.ctl.Unlock()
	s := mergerSnap{
		epoch:    m.epoch.Load(),
		attached: m.attached,
		ctrlSeen: m.ctrlSeen,
		ctrlLive: m.ctrlLive,
		finKnown: m.finKnown,
		finTotal: m.finTotal,
		fatal:    m.fatal,
	}
	for _, l := range m.live {
		if l {
			s.anyLive = true
			break
		}
	}
	return s
}

// drainRings moves everything the readers have published into the
// consumer-private reorder queues. Items whose sequence fell below the
// watermark while they sat in the ring are dropped (and counted) here; one
// pass per ring is bounded by the ring's capacity so a fast producer cannot
// pin the consumer on a single ring while the others back up. Returns
// whether anything moved.
func (m *Merger) drainRings() bool {
	progressed := false
	// The watermark only moves on this goroutine (releaseRuns), so one load
	// serves the whole pass instead of re-reading a line the release path
	// keeps invalidating.
	next := m.next.Load()
	for id := range m.rings {
		r := m.rings[id]
		n := 0
		for n < len(r.buf) {
			it, ok := r.pop()
			if !ok {
				break
			}
			n++
			if it.t.Seq < next {
				it.ref.Release()
				m.noteDedup()
				continue
			}
			m.queues[id].push(it)
		}
		if n > 0 {
			progressed = true
			m.depth[id].v.Store(int64(m.queues[id].len()))
			m.heads.update(id, m.queues[id].headKey())
			if m.mQueue != nil {
				m.mQueue[id].Set(float64(m.queues[id].len()))
				m.mRing[id].Set(float64(r.len()))
			}
			// Freed ring slots (and any swept duplicates) may unblock this
			// stream's reader — a ring-full park, or a cap park whose depth
			// the sweep just lowered.
			m.wakeStream(id)
		}
	}
	return progressed
}

// releaseRuns pops the tournament winner while its sequence is at or below
// the watermark: stale heads (cross-stream duplicates from replay, and
// same-stream duplicates the queue admitted lazily) are swept and counted,
// the head equal to the watermark is released through the sink. The (seq,
// id) tie-break reproduces the old lowest-id-first scan exactly. Each pop
// wakes parked readers — releasing or sweeping frees backlog space.
func (m *Merger) releaseRuns() bool {
	progressed := false
	for {
		id := m.heads.min()
		if id < 0 {
			break
		}
		next := m.next.Load()
		// heads.key is maintained to equal the stream's headKey, so the
		// winner's sequence is already in hand.
		if m.heads.key[id] > next {
			break
		}
		it := m.queues[id].popMin()
		if it.t.Seq < next {
			// A duplicate carrier is dropped whole: its absorbed seqs are
			// never registered, because a carrier only duplicates when its
			// connection failed before release — and then every unreleased
			// group member was replayed individually.
			it.ref.Release()
			m.noteDedup()
		} else {
			next++
			// A combined carrier releases its absorbed seqs with it:
			// register them, then advance the watermark silently through any
			// now-contiguous run. Absorbed seqs are always >= the new
			// watermark here — the combiner picks the group's lowest seq as
			// the carrier.
			if len(it.t.Absorbed) > 0 {
				for i, n := 0, it.t.AbsorbedCount(); i < n; i++ {
					m.absorbed[it.t.AbsorbedSeq(i)] = struct{}{}
				}
			}
			if len(m.absorbed) > 0 {
				for {
					if _, ok := m.absorbed[next]; !ok {
						break
					}
					delete(m.absorbed, next)
					next++
					m.combined.Add(1)
					if m.mCombined != nil {
						m.mCombined.Inc()
					}
				}
			}
			m.next.Store(next)
			if m.mReleased != nil {
				m.mReleased.Inc()
				m.mWatermark.Set(float64(next))
			}
			m.sink(it.t, id)
			// The sink has returned: the payload is no longer needed, so
			// its receive block can recycle.
			it.ref.Release()
		}
		qd := m.queues[id].len()
		m.depth[id].v.Store(int64(qd))
		m.heads.update(id, m.queues[id].headKey())
		if m.mQueue != nil {
			m.mQueue[id].Set(float64(qd))
		}
		progressed = true
		// Refill hysteresis: rewake a cap-parked reader only once its queue
		// has descended through wakeAt, not on every pop — waking at cap-1
		// buys one push before the reader re-parks, and with 64 readers
		// that is a broadcast per release. The crossing fires exactly once
		// per descent (only this goroutine pops), and a reader parked while
		// the queue is already below wakeAt is covered by the merge loop's
		// pre-park wakeAll — it cannot stay parked while the merge sleeps.
		if qd == m.wakeAt {
			m.wakeStream(id)
		}
	}
	return progressed
}

// ringsEmpty reports whether every ingest ring is (momentarily) drained.
// Consumer-side: may answer a stale yes for a push racing this check, which
// the park protocol tolerates (the pusher's wakeAll covers it).
func (m *Merger) ringsEmpty() bool {
	for _, r := range m.rings {
		if r.len() > 0 {
			return false
		}
	}
	return true
}

// anyAtCap reports whether any stream's backlog has reached the
// back-pressure cap — the precondition for a reader being parked in
// ingest's cap wait. Merge loop only: queue depths are this goroutine's own
// writes and ring occupancy is read atomically, so a reader that crossed
// the cap before parking is always visible here (and one that crosses
// after pushes first, which forces another drain pass before the park).
func (m *Merger) anyAtCap() bool {
	for id := range m.queues {
		if m.streamDepth(id) >= m.queueCap {
			return true
		}
	}
	return false
}

// heapsEmpty reports whether every reorder queue is empty. Merge loop only.
func (m *Merger) heapsEmpty() bool {
	for id := range m.queues {
		if m.queues[id].len() > 0 {
			return false
		}
	}
	return true
}

// mergeLoop releases tuples in strict sequence order. It is the single
// consumer of every ring: drain, release, and only then — with nothing to
// do — consult the (snapshotted) control plane for completion or park for
// more input. Terminal decisions re-fence against the epoch so a stream
// attaching or a FIN arriving between the snapshot and the decision forces
// another pass instead of a premature verdict.
func (m *Merger) mergeLoop() error {
	snap := m.snapshot()
	for {
		if m.epoch.Load() != snap.epoch {
			snap = m.snapshot()
		}
		if snap.fatal != nil {
			return snap.fatal
		}
		if m.closed.Load() {
			return errors.New("runtime: merger closed")
		}

		progressed := m.drainRings()
		if m.releaseRuns() {
			progressed = true
		}
		if progressed {
			// Readers parked on this pass's state changes were woken
			// selectively inside drainRings/releaseRuns; anything missed is
			// caught by the wakeAll below once progress stops.
			continue
		}

		if snap.finKnown && m.next.Load() >= snap.finTotal {
			return nil
		}
		// Nothing matched. Can the tuple we need still arrive? Yes while
		// any worker stream is live, while the splitter's control channel
		// is (or may yet be) open, or — without a control channel — while
		// the initial worker set is still attaching.
		canArrive := snap.anyLive ||
			(snap.ctrlSeen && snap.ctrlLive > 0) ||
			(!snap.ctrlSeen && snap.attached < m.workers)
		if !canArrive {
			// Terminal decision: re-fence against a membership change or a
			// push that landed after the drain above.
			if m.epoch.Load() != snap.epoch || !m.ringsEmpty() {
				continue
			}
			if m.heapsEmpty() && !snap.finKnown {
				return nil
			}
			return fmt.Errorf("runtime: merger missing sequence %d at end of streams", m.next.Load())
		}
		// Park until input or a membership change.
		epoch := snap.epoch
		idle := func() bool {
			return m.ringsEmpty() && !m.closed.Load() && m.epoch.Load() == epoch
		}
		if m.anyAtCap() {
			// A stream at its back-pressure cap while the merge cannot
			// release is ambiguous. Almost always the needed sequence is
			// simply still in flight on another stream and arrives within
			// microseconds — so first wait briefly with the cap enforced.
			// Waiving it eagerly here is ruinous: every momentary consumer
			// nap would let 64 readers dump their socket backlogs far past
			// queueCap, destroying the blocking signal the balancer reads
			// and burning the merge loop on growing and zeroing queue slabs.
			// But the wait must be bounded: the needed sequence may be
			// *behind* a cap-parked reader's tuple in its own stream (a
			// replay queued after a survivor's backlog), and only that
			// reader can deliver it. If the poll expires with the merge
			// still wedged, declare it stuck so cap-parked readers overflow
			// instead of parking (see ingest), and wake them to re-evaluate.
			// The poll-sleep deliberately yields the CPU to the readers.
			// A waiver inside the last capWaiveHot marks an ongoing wedge
			// (a replay drain head-blocks once per buried sequence) and
			// skips straight to waiving again.
			if time.Since(m.lastWaive) > capWaiveHot {
				for end := time.Now().Add(capWaiveDelay); idle() && time.Now().Before(end); {
					time.Sleep(capWaivePoll)
				}
				if !idle() {
					continue
				}
			}
			m.lastWaive = time.Now()
			m.mergeStuck.Store(true)
		}
		m.wakeAll()
		m.parkWhile(idle)
		m.mergeStuck.Store(false)
		if m.mWakes != nil {
			m.mWakes.Inc()
		}
	}
}

// Wait blocks until merging completes and returns the first error.
func (m *Merger) Wait() error {
	<-m.done
	return m.err
}

// Close shuts the listener and aborts the merge.
func (m *Merger) Close() {
	m.ln.Close()
	m.closed.Store(true)
	m.ctl.Lock()
	m.epoch.Add(1)
	m.ctl.Unlock()
	m.wakeAll()
}
