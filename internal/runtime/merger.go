package runtime

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"streambalance/internal/metrics"
	"streambalance/internal/transport"
)

// DefaultMergerQueue bounds each connection's reorder queue: while the tuple
// the merge needs next has not arrived, at most this many tuples are buffered
// per other connection before their readers stop draining TCP — which is how
// back pressure reaches the splitter through the fast connections only under
// severe skew (see Section 4.1 and the sim package's discussion).
const DefaultMergerQueue = 1024

// DefaultWatermarkInterval is how often the merger reports its released
// watermark on the control channel.
const DefaultWatermarkInterval = 20 * time.Millisecond

// Merger restores sequence order across N worker connections (Section 4.1).
// Tuples leave through the sink callback in strictly increasing sequence
// order, regardless of which worker processed them or when.
//
// Unlike the paper's merger, a worker stream ending is not fatal: a worker
// id may detach (crash) and later reattach (restart), and replayed tuples
// that were already released are deduplicated, so every sequence number is
// released exactly once. The merger learns the stream's total length from
// the splitter's FIN frame on the control channel; without a control
// channel it falls back to the original fixed-worker semantics.
type Merger struct {
	ln          net.Listener
	workers     int
	queueCap    int
	recvBatch   int // max tuples ingested per lock acquisition
	sink        func(transport.Tuple, int)
	wmInterval  time.Duration
	to          Timeouts
	stallWindow time.Duration // 0 = watchdog disabled

	mu          sync.Mutex
	cond        *sync.Cond
	queues      []seqHeap // per worker id, min-heap by Seq
	live        []bool    // worker id currently attached
	attached    int       // distinct worker ids ever attached
	seen        []bool
	quarantined []bool // nominated for quarantine, not yet recovered
	finKnown    bool
	finTotal    uint64
	ctrlSeen    bool // a control connection has ever attached
	ctrlLive    int  // control connections currently open
	fatal       error
	closed      bool
	strmErrs    []error
	conns       map[net.Conn]struct{} // attached worker conns, for teardown
	pending     map[net.Conn]struct{} // accepted conns mid-handshake, for teardown

	// lastIngest is the wall time (unix nanos) each worker id last
	// delivered a batch, stamped lock-free by the connection readers and
	// read by the watchdog to rank quarantine candidates.
	lastIngest []atomic.Int64

	// next is the released watermark: the lowest unreleased sequence
	// number. Mutated only by the merge loop under m.mu, but stored
	// atomically so the watermark writer and stats accessors read it
	// without contending with ingest.
	next atomic.Uint64

	// deduped and dupRejects are atomics for the same reason: /metrics
	// scrapes read them while readers hold m.mu.
	deduped    atomic.Uint64
	dupRejects atomic.Uint64

	wmStop chan struct{} // tells watermark writers to flush and exit
	quarCh chan int      // watchdog nominations bound for the control channel
	done   chan struct{}
	err    error
	wg     sync.WaitGroup

	// Metrics handles, pre-resolved per worker id; nil when the merger is
	// uninstrumented. Set before Start.
	rm           *RegionMetrics
	mReleased    *metrics.Counter
	mWatermark   *metrics.Gauge
	mDeduped     *metrics.Counter
	mDupRejects  *metrics.Counter
	mQueue       []*metrics.Gauge
	mIngestBatch *metrics.Histogram
	mIngestLocks *metrics.Counter
	mStall       *metrics.Histogram
	mIngestAge   []*metrics.Gauge
}

// NewMerger listens for worker connections. sink receives every tuple, in
// order, with the worker id that processed it; it runs on the merge goroutine
// and must not block indefinitely. queueCap <= 0 selects DefaultMergerQueue.
func NewMerger(workers, queueCap int, sink func(transport.Tuple, int)) (*Merger, error) {
	if workers <= 0 {
		return nil, errors.New("runtime: merger needs at least one worker")
	}
	if sink == nil {
		return nil, errors.New("runtime: merger needs a sink")
	}
	if queueCap <= 0 {
		queueCap = DefaultMergerQueue
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("runtime: merger listen: %w", err)
	}
	m := &Merger{
		ln:          ln,
		workers:     workers,
		queueCap:    queueCap,
		recvBatch:   transport.DefaultRecvBatch,
		sink:        sink,
		wmInterval:  DefaultWatermarkInterval,
		to:          Timeouts{}.norm(),
		queues:      make([]seqHeap, workers),
		live:        make([]bool, workers),
		seen:        make([]bool, workers),
		quarantined: make([]bool, workers),
		conns:       make(map[net.Conn]struct{}),
		pending:     make(map[net.Conn]struct{}),
		lastIngest:  make([]atomic.Int64, workers),
		wmStop:      make(chan struct{}),
		quarCh:      make(chan int, workers),
		done:        make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	return m, nil
}

// SetTimeouts overrides the merger's I/O deadlines (handshake reads,
// control-channel writes). Call before Start.
func (m *Merger) SetTimeouts(t Timeouts) {
	m.to = t.norm()
}

// SetStallWindow arms the merge-stall watchdog: when the watermark makes no
// progress for this long while queued tuples are waiting behind the gap, the
// connection that appears to own the missing sequence range is nominated for
// quarantine on the control channel. d <= 0 disables the watchdog. Call
// before Start.
func (m *Merger) SetStallWindow(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.stallWindow = d
}

// SetWatermarkInterval tunes how often released watermarks are reported on
// the control channel. Call before Start.
func (m *Merger) SetWatermarkInterval(d time.Duration) {
	if d > 0 {
		m.wmInterval = d
	}
}

// SetRecvBatch bounds how many tuples one connection reader decodes and
// ingests per m.mu acquisition (default transport.DefaultRecvBatch; 1
// restores the per-tuple path). Call before Start.
func (m *Merger) SetRecvBatch(n int) {
	if n > 0 {
		m.recvBatch = n
	}
}

// SetMetrics instruments the merger: release counter, watermark gauge,
// per-connection reorder-queue occupancy and dedupe counters. Call before
// Start; nil is a no-op.
func (m *Merger) SetMetrics(rm *RegionMetrics) {
	if rm == nil {
		return
	}
	m.rm = rm
	m.mReleased = rm.released
	m.mWatermark = rm.watermark
	m.mDeduped = rm.deduped
	m.mDupRejects = rm.dupRejects
	m.mQueue = make([]*metrics.Gauge, m.workers)
	m.mIngestAge = make([]*metrics.Gauge, m.workers)
	for id := 0; id < m.workers; id++ {
		m.mQueue[id] = rm.queueDepth.With(strconv.Itoa(id))
		m.mIngestAge[id] = rm.ingestAge.With(strconv.Itoa(id))
	}
	m.mIngestBatch = rm.ingestBatchTuples
	m.mIngestLocks = rm.ingestLocks
	m.mStall = rm.stallSeconds
}

// noteDedup counts one dropped duplicate.
func (m *Merger) noteDedup() {
	m.deduped.Add(1)
	if m.mDeduped != nil {
		m.mDeduped.Inc()
	}
}

// Addr returns the address workers (and the splitter's control channel) dial.
func (m *Merger) Addr() string {
	return m.ln.Addr().String()
}

// Deduped returns how many duplicate tuples (replays of already-released or
// already-queued sequence numbers) were dropped. Lock-free: scraping stats
// never contends with ingest.
func (m *Merger) Deduped() uint64 {
	return m.deduped.Load()
}

// DupRejects returns how many connections were rejected for claiming a
// worker id whose stream was still live. Lock-free.
func (m *Merger) DupRejects() uint64 {
	return m.dupRejects.Load()
}

// Watermark returns the lowest unreleased sequence number. Lock-free.
func (m *Merger) Watermark() uint64 {
	return m.next.Load()
}

// Start launches the accept loop, per-connection readers and the merge loop.
func (m *Merger) Start() {
	go func() {
		defer close(m.done)
		m.err = m.run()
	}()
}

// run accepts connections and merges until the stream completes or fails.
func (m *Merger) run() error {
	m.wg.Add(1)
	go m.acceptLoop()
	if m.stallWindow > 0 {
		m.wg.Add(1)
		go m.watchdog()
	}

	mergeErr := m.mergeLoop()

	// Let in-flight watermark writers deliver the final watermark before
	// the control connections close, so a draining splitter observes
	// completion rather than an abrupt loss.
	close(m.wmStop)
	m.teardown()
	m.wg.Wait()

	m.mu.Lock()
	strmErrs := m.strmErrs
	ctrlSeen := m.ctrlSeen
	m.mu.Unlock()
	if mergeErr != nil {
		return errors.Join(append([]error{mergeErr}, strmErrs...)...)
	}
	if !ctrlSeen {
		// Original fixed-worker semantics: with no recovery protocol in
		// play, a worker stream error is the caller's problem even when
		// every tuple was released.
		return errors.Join(strmErrs...)
	}
	return nil
}

// teardown closes the listener and every attached connection, wakes all
// parked goroutines so they observe the shutdown, and drains the reorder
// queues so every still-queued item's block reference is released back to
// the transport pool.
func (m *Merger) teardown() {
	m.ln.Close()
	m.mu.Lock()
	m.closed = true
	for conn := range m.conns {
		conn.Close()
	}
	for conn := range m.pending {
		conn.Close()
	}
	for id := range m.queues {
		for len(m.queues[id]) > 0 {
			m.queues[id].popMin().ref.Release()
		}
		m.queues[id] = nil
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

// acceptLoop admits worker and control connections until the listener
// closes. The handshake runs in a per-connection goroutine so one stalled
// peer cannot block the others from attaching.
func (m *Merger) acceptLoop() {
	defer m.wg.Done()
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return
		}
		m.wg.Add(1)
		go m.handshake(conn)
	}
}

// handshake reads the 4-byte connection id and routes the connection: a
// worker id attaches a reader, the control sentinel attaches the watermark
// writer and FIN reader. Every failure path closes the accepted connection.
//
// The id read is deadline-bounded and the connection is tracked in the
// pending set until identified: a peer that connects and goes silent is
// shed after the handshake timeout (or at teardown) instead of pinning this
// goroutine — and with it the merger's WaitGroup — forever.
func (m *Merger) handshake(conn net.Conn) {
	defer m.wg.Done()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		conn.Close()
		return
	}
	m.pending[conn] = struct{}{}
	m.mu.Unlock()
	unpend := func() {
		m.mu.Lock()
		delete(m.pending, conn)
		m.mu.Unlock()
	}
	if m.to.Handshake > 0 {
		conn.SetReadDeadline(time.Now().Add(m.to.Handshake))
	}
	var idBuf [4]byte
	if _, err := io.ReadFull(conn, idBuf[:]); err != nil {
		unpend()
		conn.Close()
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			// A silent dialer shed by the deadline is defense, not a
			// stream failure: record it on the trace only.
			if m.rm != nil {
				m.rm.traceEvent(metrics.Event{Kind: "handshake-timeout", Conn: -1, Detail: conn.RemoteAddr().String()})
			}
			return
		}
		m.mu.Lock()
		closed := m.closed
		m.mu.Unlock()
		if !closed {
			m.recordStreamErr(fmt.Errorf("runtime: merger read worker id: %w", err))
		}
		return
	}
	conn.SetReadDeadline(time.Time{})
	unpend()
	raw := binary.LittleEndian.Uint32(idBuf[:])
	if raw == controlConnID {
		m.attachControl(conn)
		return
	}
	id := int(raw)
	m.mu.Lock()
	if id < 0 || id >= m.workers {
		m.mu.Unlock()
		conn.Close()
		m.setFatal(fmt.Errorf("runtime: merger got bad worker id %d", id))
		return
	}
	if m.closed {
		m.mu.Unlock()
		conn.Close()
		return
	}
	if m.live[id] {
		// A duplicate of a live stream is rejected (closed) but not
		// fatal: a restarting worker can race its predecessor's teardown
		// and will retry after backoff. Rejection is the correct
		// handling, so it does not count as a stream error.
		m.dupRejects.Add(1)
		if m.mDupRejects != nil {
			m.mDupRejects.Inc()
		}
		m.mu.Unlock()
		conn.Close()
		return
	}
	m.live[id] = true
	if !m.seen[id] {
		m.seen[id] = true
		m.attached++
	}
	// A (re)attaching stream is fresh evidence of life: reset the ingest
	// clock and clear any standing quarantine nomination for this id.
	m.quarantined[id] = false
	m.lastIngest[id].Store(time.Now().UnixNano())
	m.conns[conn] = struct{}{}
	m.cond.Broadcast()
	m.mu.Unlock()
	m.readLoop(id, conn)
}

// setFatal records a protocol violation and aborts the merge.
func (m *Merger) setFatal(err error) {
	m.mu.Lock()
	if m.fatal == nil {
		m.fatal = err
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

func (m *Merger) recordStreamErr(err error) {
	m.mu.Lock()
	m.strmErrs = append(m.strmErrs, err)
	m.cond.Broadcast()
	m.mu.Unlock()
}

// attachControl wires a splitter control connection: one goroutine streams
// watermarks out, this goroutine reads the FIN total and then watches for
// the peer closing.
func (m *Merger) attachControl(conn net.Conn) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		conn.Close()
		return
	}
	m.ctrlSeen = true
	m.ctrlLive++
	m.cond.Broadcast()
	m.mu.Unlock()

	m.wg.Add(1)
	go m.watermarkWriter(conn)

	var buf [8]byte
	if _, err := io.ReadFull(conn, buf[:]); err == nil {
		m.mu.Lock()
		m.finKnown = true
		m.finTotal = binary.LittleEndian.Uint64(buf[:])
		m.cond.Broadcast()
		m.mu.Unlock()
		// The splitter holds the channel open until it drains; wait for
		// the close so ctrlLive reflects liveness, not FIN receipt.
		io.Copy(io.Discard, conn)
	}
	m.mu.Lock()
	m.ctrlLive--
	m.cond.Broadcast()
	m.mu.Unlock()
}

// watermarkWriter periodically reports the released watermark and forwards
// the watchdog's quarantine nominations, flushing a final watermark when the
// merge completes so the splitter's drain observes every release. It owns
// closing the control connection. Every write carries a deadline: a control
// peer that stops reading sheds this goroutine instead of pinning it.
func (m *Merger) watermarkWriter(conn net.Conn) {
	defer m.wg.Done()
	defer conn.Close()
	ticker := time.NewTicker(m.wmInterval)
	defer ticker.Stop()
	var buf [8]byte
	send := func(v uint64) error {
		binary.LittleEndian.PutUint64(buf[:], v)
		if m.to.ControlWrite > 0 {
			conn.SetWriteDeadline(time.Now().Add(m.to.ControlWrite))
		}
		_, err := conn.Write(buf[:])
		return err
	}
	write := func() error {
		// next is atomic, so the periodic report never touches m.mu.
		return send(m.next.Load())
	}
	for {
		select {
		case <-m.wmStop:
			write()
			return
		case id := <-m.quarCh:
			if send(quarantineFlag|uint64(uint32(id))) != nil {
				return
			}
		case <-ticker.C:
			if write() != nil {
				return
			}
		}
	}
}

// readLoop drains one worker connection into its bounded reorder queue,
// batch by batch: each ReceiveBatch decodes every complete frame already in
// the receive buffer (up to recvBatch) and the whole batch is ingested
// under a single m.mu acquisition — at 32–64 connections the per-tuple
// lock hand-off was where ingest serialized. Back pressure is unchanged:
// when the queue is full the ingest waits mid-batch, the reader stops
// reading TCP, and the worker's sends eventually block.
func (m *Merger) readLoop(id int, conn net.Conn) {
	defer func() {
		m.mu.Lock()
		m.live[id] = false
		delete(m.conns, conn)
		m.cond.Broadcast()
		m.mu.Unlock()
		conn.Close()
	}()
	rc := transport.NewReceiver(conn)
	var batch []transport.Tuple
	for {
		var ref *transport.BlockRef
		var err error
		batch, ref, err = rc.ReceiveBatch(batch, m.recvBatch)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return
			}
			m.mu.Lock()
			closed := m.closed
			m.mu.Unlock()
			if !closed {
				m.recordStreamErr(fmt.Errorf("runtime: merger read worker %d: %w", id, err))
			}
			return
		}
		if m.mIngestBatch != nil {
			m.mIngestBatch.Observe(float64(len(batch)))
			m.mIngestLocks.Inc()
		}
		// Stamp arrival before ingest (which may park on a full queue): the
		// watchdog must see that this stream is delivering even while the
		// reorder queue has no room.
		m.lastIngest[id].Store(time.Now().UnixNano())
		if !m.ingest(id, batch, ref) {
			return
		}
	}
}

// ingest pushes one received batch into the connection's reorder queue
// under a single lock acquisition. Each tuple individually respects the
// per-tuple admission rules: the full-queue wait (back pressure), the
// always-admit exception for sequences at or below the watermark, and
// read-time dedup of already-released sequences — so dedup, watermark and
// replay accounting are identical to per-tuple ingest, just amortized.
// Returns false when the merger closed mid-batch (the reader should exit);
// the block references of tuples not handed to the queue are released here.
func (m *Merger) ingest(id int, batch []transport.Tuple, ref *transport.BlockRef) bool {
	m.mu.Lock()
	// A stream delivering again withdraws any standing quarantine
	// nomination for it (e.g. the stall healed before the splitter acted).
	m.quarantined[id] = false
	pushed := false
	for i, t := range batch {
		// Block on a full queue only while the merge can progress without
		// this reader. If no queue holds the next-needed sequence, the
		// tuple carrying it may be *behind* the one in hand in this very
		// stream (a replay queued after a survivor's backlog), so the
		// reader must overflow the cap and keep reading or the region
		// wedges on head-of-line blocking.
		for len(m.queues[id]) >= m.queueCap && t.Seq > m.next.Load() && !m.closed && m.progressPossible() {
			if pushed {
				// Earlier tuples in this batch may include the sequence the
				// merge loop is parked waiting for — wake it before parking
				// ourselves, or both sides wait forever.
				m.cond.Broadcast()
				pushed = false
			}
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			ref.ReleaseN(len(batch) - i)
			return false
		}
		if t.Seq < m.next.Load() {
			// Replay of a sequence already released: exactly-once means
			// dropping it here.
			m.noteDedup()
			ref.Release()
			continue
		}
		// Duplicates of still-queued sequences are admitted and dropped
		// lazily by the merge loop's stale-head sweep once the watermark
		// passes them — exactly one copy releases, every surplus copy is
		// counted, matching the old eager insertSorted accounting (see
		// seqHeap's doc comment and merger_equiv_test.go).
		m.queues[id].push(mergeItem{t: t, ref: ref})
		pushed = true
	}
	if m.mQueue != nil {
		m.mQueue[id].Set(float64(len(m.queues[id])))
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	return true
}

// watchdog detects merge stalls: when the released watermark makes no
// progress for the stall window while other streams have tuples queued
// behind the gap, the connection that most plausibly owns the missing
// sequence range is nominated for quarantine on the control channel. The
// splitter cross-checks the nomination against its replay buffer (which
// knows the true owner) and drives the eviction through the ordinary
// membership-edit path, so the merger never mutates membership itself.
//
// The watchdog also maintains the per-connection ingest-age gauges and the
// stall-episode histogram. It reads the watermark atomically each tick —
// the merge hot path carries no extra timestamping for it.
func (m *Merger) watchdog() {
	defer m.wg.Done()
	tick := m.stallWindow / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	prevWM := m.next.Load()
	lastAdvance := time.Now()
	var lastNominate time.Time
	inStall := false
	var stallStart time.Time
	for {
		select {
		case <-m.wmStop:
			// The merge finished (or the merger closed) with a stall episode
			// still open: the episode ended with the stream, so close it here
			// rather than losing it — recovery and completion can both land
			// inside one tick.
			if inStall && m.mStall != nil && m.next.Load() != prevWM {
				m.mStall.Observe(time.Since(stallStart).Seconds())
			}
			return
		case <-ticker.C:
		}
		now := time.Now()
		if m.mIngestAge != nil {
			for id := range m.mIngestAge {
				if ts := m.lastIngest[id].Load(); ts > 0 {
					m.mIngestAge[id].Set(now.Sub(time.Unix(0, ts)).Seconds())
				}
			}
		}
		wm := m.next.Load()
		if wm != prevWM {
			if inStall {
				if m.mStall != nil {
					m.mStall.Observe(now.Sub(stallStart).Seconds())
				}
				inStall = false
			}
			prevWM = wm
			lastAdvance = now
			continue
		}
		if now.Sub(lastAdvance) < m.stallWindow {
			continue
		}
		victim, evidence := m.nominate(now)
		if evidence && !inStall {
			inStall = true
			stallStart = lastAdvance
		}
		if victim < 0 {
			continue
		}
		// Re-nominate at most once per window while the stall persists —
		// the next candidate differs because nominated ids are excluded
		// until they deliver again or reattach.
		if !lastNominate.IsZero() && now.Sub(lastNominate) < m.stallWindow {
			continue
		}
		lastNominate = now
		select {
		case m.quarCh <- victim:
		default:
		}
		if m.rm != nil {
			m.rm.traceEvent(metrics.Event{Kind: "stall-quarantine", Conn: victim,
				Value: now.Sub(lastAdvance).Seconds()})
		}
	}
}

// nominate picks the quarantine candidate under the stall evidence gates:
// recovery must be active (a live control channel to deliver the nomination
// and act on it), the stream must be incomplete, and at least one tuple must
// be queued behind the gap — an idle source stalls the watermark too, and
// evicting healthy workers for having nothing to do would churn membership
// for nothing. Among live, not-already-nominated connections whose last
// ingest is older than the window, connections with an empty reorder queue
// are preferred (the stalled link has nothing buffered; the survivors are
// queued up behind the gap), oldest ingest first. Returns the candidate (or
// -1) and whether the stall evidence held.
func (m *Merger) nominate(now time.Time) (victim int, evidence bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.fatal != nil || m.ctrlLive == 0 {
		return -1, false
	}
	if m.finKnown && m.next.Load() >= m.finTotal {
		return -1, false
	}
	queued := 0
	for id := range m.queues {
		queued += len(m.queues[id])
	}
	if queued == 0 {
		return -1, false
	}
	best, bestEmpty := -1, false
	var bestAge time.Duration
	for id := range m.live {
		if !m.live[id] || m.quarantined[id] {
			continue
		}
		age := now.Sub(time.Unix(0, m.lastIngest[id].Load()))
		if age < m.stallWindow {
			continue
		}
		empty := len(m.queues[id]) == 0
		if best < 0 || (empty && !bestEmpty) || (empty == bestEmpty && age > bestAge) {
			best, bestEmpty, bestAge = id, empty, age
		}
	}
	if best >= 0 {
		m.quarantined[best] = true
	}
	return best, true
}

// progressPossible reports whether the merge loop can release or drop at
// least one queued tuple right now: some queue's head is at or below the
// next-needed sequence. Callers hold m.mu.
func (m *Merger) progressPossible() bool {
	next := m.next.Load()
	for id := range m.queues {
		if h, ok := m.queues[id].head(); ok && h.t.Seq <= next {
			return true
		}
	}
	return false
}

// mergeLoop releases tuples in strict sequence order.
func (m *Merger) mergeLoop() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.fatal != nil {
			return m.fatal
		}
		if m.closed {
			return errors.New("runtime: merger closed")
		}
		released := false
		for id := range m.queues {
			// Drop heads the merge has already released: cross-queue
			// duplicates from replay, and same-queue duplicates the heap
			// admitted lazily. The sweep runs once per wakeup — with batch
			// ingest that is once per ingested batch rather than per tuple.
			// Dropping frees queue space, so wake any reader parked on the
			// full queue; dropped items release their block reference here.
			swept := false
			for {
				h, ok := m.queues[id].head()
				if !ok || h.t.Seq >= m.next.Load() {
					break
				}
				m.queues[id].popMin().ref.Release()
				m.noteDedup()
				swept = true
			}
			if swept {
				if m.mQueue != nil {
					m.mQueue[id].Set(float64(len(m.queues[id])))
				}
				m.cond.Broadcast()
			}
			h, ok := m.queues[id].head()
			if !ok || h.t.Seq != m.next.Load() {
				continue
			}
			head := m.queues[id].popMin()
			m.next.Add(1)
			released = true
			if m.mReleased != nil {
				m.mReleased.Inc()
				m.mWatermark.Set(float64(m.next.Load()))
				m.mQueue[id].Set(float64(len(m.queues[id])))
			}
			m.mu.Unlock()
			m.sink(head.t, id)
			// The sink has returned: the payload is no longer needed, so
			// its receive block can recycle.
			head.ref.Release()
			m.mu.Lock()
			m.cond.Broadcast()
			break
		}
		if released {
			continue
		}
		if m.finKnown && m.next.Load() >= m.finTotal {
			return nil
		}
		// Nothing matched. Can the tuple we need still arrive? Yes while
		// any worker stream is live, while the splitter's control channel
		// is (or may yet be) open, or — without a control channel — while
		// the initial worker set is still attaching.
		canArrive := false
		for id := range m.live {
			if m.live[id] {
				canArrive = true
				break
			}
		}
		if !canArrive && m.ctrlSeen && m.ctrlLive > 0 {
			canArrive = true
		}
		if !canArrive && !m.ctrlSeen && m.attached < m.workers {
			canArrive = true
		}
		if !canArrive {
			empty := true
			for id := range m.queues {
				if len(m.queues[id]) > 0 {
					empty = false
					break
				}
			}
			if empty && !m.finKnown {
				return nil
			}
			return fmt.Errorf("runtime: merger missing sequence %d at end of streams", m.next.Load())
		}
		m.cond.Wait()
	}
}

// Wait blocks until merging completes and returns the first error.
func (m *Merger) Wait() error {
	<-m.done
	return m.err
}

// Close shuts the listener and aborts the merge.
func (m *Merger) Close() {
	m.ln.Close()
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}
