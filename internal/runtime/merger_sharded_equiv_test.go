package runtime

import (
	"encoding/binary"
	"math/rand"
	"net"
	"testing"
	"time"

	"streambalance/internal/testutil"
	"streambalance/internal/transport"
)

// shardedEngine is a single-threaded model of the sharded merger built from
// the real data-plane components — spscRing hand-off lanes, streamQueue
// reorder buffers, the headIndex release tournament — wired together with the
// exact drain/sweep/release discipline of merger.go's drainRings and
// releaseRuns. Producer pushes and consumer passes are interleaved by the
// test's random scheduler instead of goroutines, so every interleaving is
// deterministic and replayable from the trial seed while still exercising the
// paths only concurrency reaches in production: tuples overtaken by the
// watermark while parked in a ring (ring-sweep dedup), full rings forcing the
// producer to pump the consumer, and partial drains leaving residue across
// watermark movements.
type shardedEngine struct {
	rings  []*spscRing
	queues []streamQueue
	heads  *headIndex
	next   uint64
	dedup  int
	rel    []releaseRec

	pend [][]transport.Tuple // per-conn pending receive batch
	size []int               // per-conn batch size (1 = per-tuple ingest)
}

func newShardedEngine(conns int, ringCap func(conn int) int, batchSize func(conn int) int) *shardedEngine {
	e := &shardedEngine{
		rings:  make([]*spscRing, conns),
		queues: make([]streamQueue, conns),
		heads:  newHeadIndex(conns),
		pend:   make([][]transport.Tuple, conns),
		size:   make([]int, conns),
	}
	for id := range e.rings {
		e.rings[id] = newSPSCRing(ringCap(id))
		e.size[id] = batchSize(id)
	}
	return e
}

// arrive buffers one tuple into the connection's pending batch and delivers
// the batch once it reaches the connection's batch size — the reader-side
// ReceiveBatch boundary.
func (e *shardedEngine) arrive(conn int, t transport.Tuple) {
	e.pend[conn] = append(e.pend[conn], t)
	if len(e.pend[conn]) >= e.size[conn] {
		e.deliver(conn)
	}
}

// deliver ingests the connection's pending batch through its ring, mirroring
// Merger.ingest: read-time dedup against the watermark, then a lock-free ring
// push. A full ring pumps the consumer (the model's stand-in for waking the
// merge loop and parking until it drains).
func (e *shardedEngine) deliver(conn int) {
	for _, t := range e.pend[conn] {
		if t.Seq < e.next {
			e.dedup++
			continue
		}
		for !e.rings[conn].push(mergeItem{t: t}) {
			if !e.consumerStep() {
				// The consumer made no progress with a full ring: impossible
				// in the model (the consumer always drains rings), so this
				// would be a wedge bug in the components under test.
				panic("sharded model: ring full and consumer stuck")
			}
		}
	}
	e.pend[conn] = e.pend[conn][:0]
}

// consumerStep runs one merge-loop pass: drain every ring into its reorder
// queue (sweeping ring residents the watermark overtook), refresh the head
// tournament, then release runs. Returns whether anything moved.
func (e *shardedEngine) consumerStep() bool {
	progressed := false
	for id := range e.rings {
		r := e.rings[id]
		n := 0
		for n < len(r.buf) {
			it, ok := r.pop()
			if !ok {
				break
			}
			n++
			if it.t.Seq < e.next {
				e.dedup++
				continue
			}
			e.queues[id].push(it)
		}
		if n > 0 {
			progressed = true
			e.heads.update(id, e.queues[id].headKey())
		}
	}
	for {
		id := e.heads.min()
		if id < 0 || e.heads.key[id] > e.next {
			break
		}
		it := e.queues[id].popMin()
		if it.t.Seq < e.next {
			e.dedup++
		} else {
			e.rel = append(e.rel, releaseRec{it.t.Seq, id})
			e.next++
		}
		e.heads.update(id, e.queues[id].headKey())
		progressed = true
	}
	return progressed
}

// flushQuiesce delivers every partial pending batch and runs the consumer to
// fixpoint with all rings drained — the model's sync point, equivalent to the
// real merger with all readers idle and the merge loop parked.
func (e *shardedEngine) flushQuiesce() {
	for conn := range e.pend {
		if len(e.pend[conn]) > 0 {
			e.deliver(conn)
		}
	}
	for e.consumerStep() {
	}
	for id := range e.rings {
		if e.rings[id].len() != 0 {
			panic("sharded model: ring not drained at quiescence")
		}
	}
}

// TestShardedVsLockedMergerEquivalence drives the sharded data plane (real
// rings, stream queues and head index under a randomized scheduler) and the
// locked batch-ingest reference engine through identical arrival histories —
// randomized per-connection batch sizes including 1, cross-connection
// duplicate injection, and crash/reconnect replay bursts (a suffix of a
// connection's stream re-delivered after a window of already-sent sequences,
// exactly the shape worker recovery produces). Late-attaching and
// early-ending streams fall out of the random assignment: a connection's
// stream is its arrival window, so adds and removes are schedule positions.
//
// The pinned contract is the externally observable one (scheduling may
// legitimately shift which connection a duplicated sequence releases from,
// as in TestMergerBatchIngestEquivalence): at every quiescent sync point both
// engines must agree exactly on the watermark and the total duplicate count,
// the sharded release order must be gapless and exactly once — sequence i at
// position i — and at the end every injected duplicate must have been counted
// exactly once with all n sequences released.
func TestShardedVsLockedMergerEquivalence(t *testing.T) {
	type ev struct {
		conn int
		t    transport.Tuple
	}
	for trial := 0; trial < 300; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*1000003 + 7))
		conns := 1 + rng.Intn(6)
		n := 1 + rng.Intn(300)

		// Ground-truth assignment: each sequence processed by one connection.
		owner := make([]int, n)
		perConn := make([][]uint64, conns)
		for seq := 0; seq < n; seq++ {
			c := rng.Intn(conns)
			owner[seq] = c
			perConn[c] = append(perConn[c], uint64(seq))
		}

		// Per-connection delivery lists, with crash/reconnect replay: a
		// crashing connection re-delivers a window of sequences it already
		// sent (the splitter's replay after reattach) before continuing.
		dups := 0
		deliveries := make([][]uint64, conns)
		for c := range perConn {
			stream := perConn[c]
			if len(stream) >= 4 && rng.Intn(3) == 0 {
				crash := 1 + rng.Intn(len(stream)-1)
				w := 1 + rng.Intn(crash)
				replay := append([]uint64{}, stream[crash-w:crash]...)
				dups += len(replay)
				rebuilt := append([]uint64{}, stream[:crash]...)
				rebuilt = append(rebuilt, replay...)
				rebuilt = append(rebuilt, stream[crash:]...)
				stream = rebuilt
			}
			deliveries[c] = stream
		}

		// Interleave the per-connection lists into one arrival schedule
		// (each connection stays internally ordered, as TCP guarantees).
		var evs []ev
		cursor := make([]int, conns)
		remaining := 0
		for c := range deliveries {
			remaining += len(deliveries[c])
		}
		for remaining > 0 {
			c := rng.Intn(conns)
			if cursor[c] >= len(deliveries[c]) {
				continue
			}
			evs = append(evs, ev{c, transport.Tuple{Seq: deliveries[c][cursor[c]]}})
			cursor[c]++
			remaining--
		}

		// Cross-connection duplicate injection at arbitrary positions —
		// replays landing on a different worker after a rebalance.
		for seq := 0; seq < n; seq++ {
			if rng.Intn(5) != 0 {
				continue
			}
			dups++
			e := ev{rng.Intn(conns), transport.Tuple{Seq: uint64(seq)}}
			pos := rng.Intn(len(evs) + 1)
			evs = append(evs, ev{})
			copy(evs[pos+1:], evs[pos:])
			evs[pos] = e
		}

		// Randomized batch sizes (1 forced into rotation) and tiny ring
		// capacities so rings wrap and fill constantly.
		sizes := make([]int, conns)
		for i := range sizes {
			if rng.Intn(4) == 0 {
				sizes[i] = 1
			} else {
				sizes[i] = 1 + rng.Intn(32)
			}
		}
		ringCaps := make([]int, conns)
		for i := range ringCaps {
			ringCaps[i] = 2 + rng.Intn(7)
		}

		sharded := newShardedEngine(conns,
			func(c int) int { return ringCaps[c] },
			func(c int) int { return sizes[c] })
		locked := newBatchedEngine(conns, func(c int) int { return sizes[c] })

		// Two random sync points plus the end; both engines flush at the
		// same event index so their batch boundaries stay aligned.
		syncAt := map[int]bool{len(evs): true}
		for k := 0; k < 2 && len(evs) > 1; k++ {
			syncAt[1+rng.Intn(len(evs)-1)] = true
		}

		for i, e := range evs {
			sharded.arrive(e.conn, e.t)
			locked.arrive(e.conn, e.t)
			// Random partial consumer passes between arrivals leave ring
			// residue across watermark movements — the interleavings the
			// concurrent merge loop produces.
			if rng.Intn(3) == 0 {
				sharded.consumerStep()
			}
			if syncAt[i+1] {
				sharded.flushQuiesce()
				locked.flush()
				lockedRel, lockedDedup := locked.state()
				if got, want := sharded.next, uint64(len(lockedRel)); got != want {
					t.Fatalf("trial %d sync %d: sharded watermark %d, locked %d", trial, i+1, got, want)
				}
				if sharded.dedup != lockedDedup {
					t.Fatalf("trial %d sync %d: sharded deduped %d, locked %d", trial, i+1, sharded.dedup, lockedDedup)
				}
				for j, r := range sharded.rel {
					if r.seq != uint64(j) {
						t.Fatalf("trial %d sync %d: sharded release %d has seq %d", trial, i+1, j, r.seq)
					}
				}
			}
		}

		if len(sharded.rel) != n {
			t.Fatalf("trial %d: sharded released %d of %d", trial, len(sharded.rel), n)
		}
		if sharded.dedup != dups {
			t.Fatalf("trial %d: sharded deduped %d, injected %d", trial, sharded.dedup, dups)
		}
		lockedRel, lockedDedup := locked.state()
		if len(lockedRel) != n || lockedDedup != dups {
			t.Fatalf("trial %d: locked released %d deduped %d, want %d and %d",
				trial, len(lockedRel), lockedDedup, n, dups)
		}
	}
}

// TestShardedMergerNetworkReconnectEquivalence runs the equivalence contract
// against the real merger over TCP: a worker crashes mid-stream and
// reattaches with a replay burst, another worker attaches late (so the merge
// head-blocks and survivor backlogs grow against the back-pressure cap with a
// deliberately tiny ring), and a third replays a window without
// disconnecting. The external contract must hold exactly: every sequence
// released once in order, the duplicate count equal to the surplus copies
// delivered, the watermark at the stream total — and teardown after FIN must
// leave no module goroutine behind.
func TestShardedMergerNetworkReconnectEquivalence(t *testing.T) {
	const (
		workers = 3
		total   = 900 // striped: conn c owns seqs ≡ c (mod 3)
		replayW = 40  // seqs worker 1 replays after its reconnect
		dupW    = 25  // seqs worker 0 re-sends without disconnecting
	)
	var got []uint64
	m, err := NewMerger(workers, 64, func(tp transport.Tuple, conn int) {
		got = append(got, tp.Seq)
	})
	if err != nil {
		t.Fatal(err)
	}
	m.SetRingCap(8)
	m.Start()

	// Control channel: its presence switches the merger to recovery
	// semantics (detach is not fatal, FIN defines completion).
	ctrl, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	var idBuf [4]byte
	binary.LittleEndian.PutUint32(idBuf[:], controlConnID)
	if _, err := ctrl.Write(idBuf[:]); err != nil {
		t.Fatal(err)
	}
	go func() {
		// Drain watermark reports so the writer never backs up.
		var buf [8]byte
		for {
			if _, err := ctrl.Read(buf[:]); err != nil {
				return
			}
		}
	}()

	seqsOf := func(conn, from, to int) []uint64 {
		var out []uint64
		for s := conn; s < total; s += workers {
			if s >= from && s < to {
				out = append(out, uint64(s))
			}
		}
		return out
	}

	c0 := dialWorkerConn(t, m.Addr(), 0)
	c1 := dialWorkerConn(t, m.Addr(), 1)

	// Workers 0 and 1 send their first halves while worker 2 is absent: the
	// merge head-blocks on seq 2 and their backlogs press on the cap.
	writeTuples(t, c0, seqsOf(0, 0, total/2)...)
	half1 := seqsOf(1, 0, total/2)
	writeTuples(t, c1, half1...)

	// Wait for worker 1's attach to be processed before crashing it:
	// otherwise the close can race the handshake and the later reattach is
	// rejected as a duplicate of a stream that only *then* goes live.
	waitLive := func(id int, want bool, what string) {
		t.Helper()
		for deadline := time.Now().Add(5 * time.Second); ; {
			m.ctl.Lock()
			live := m.live[id]
			m.ctl.Unlock()
			if live == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %d never %s", id, what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitLive(1, true, "attached")

	// Worker 1 crashes...
	c1.Close()
	// ...and worker 2 attaches late with its full stream.
	c2 := dialWorkerConn(t, m.Addr(), 2)
	writeTuples(t, c2, seqsOf(2, 0, total)...)

	// Wait for the crash to be processed — a reattach dialed while the old
	// stream is still live would be rejected as a duplicate id — then
	// reattach worker 1.
	waitLive(1, false, "detached")
	c1b := dialWorkerConn(t, m.Addr(), 1)
	// Replay the last replayW sequences already delivered, then the rest.
	writeTuples(t, c1b, half1[len(half1)-replayW:]...)
	writeTuples(t, c1b, seqsOf(1, total/2, total)...)

	// Worker 0 replays a window without disconnecting (a rebalance replay
	// landing on the same conn), then finishes its stream.
	writeTuples(t, c0, seqsOf(0, 0, total/2)[:dupW]...)
	writeTuples(t, c0, seqsOf(0, total/2, total)...)

	wantDups := uint64(replayW + dupW)
	deadline := time.Now().Add(10 * time.Second)
	for m.Watermark() < total || m.Deduped() < wantDups {
		if time.Now().After(deadline) {
			m.ctl.Lock()
			live := append([]bool{}, m.live...)
			m.ctl.Unlock()
			t.Fatalf("stuck: watermark %d/%d, deduped %d/%d, dupRejects %d, live %v, depths [%d %d %d]",
				m.Watermark(), total, m.Deduped(), wantDups, m.DupRejects(), live,
				m.streamDepth(0), m.streamDepth(1), m.streamDepth(2))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// FIN: the stream total on the control channel completes the merge.
	var fin [8]byte
	binary.LittleEndian.PutUint64(fin[:], total)
	if _, err := ctrl.Write(fin[:]); err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(); err != nil {
		t.Fatalf("merger failed: %v", err)
	}
	c0.Close()
	c1b.Close()
	c2.Close()
	ctrl.Close()

	if len(got) != total {
		t.Fatalf("released %d of %d", len(got), total)
	}
	for i, seq := range got {
		if seq != uint64(i) {
			t.Fatalf("release %d has seq %d", i, seq)
		}
	}
	if d := m.Deduped(); d != wantDups {
		t.Fatalf("deduped %d, want exactly %d", d, wantDups)
	}
	if wm := m.Watermark(); wm != total {
		t.Fatalf("final watermark %d, want %d", wm, total)
	}
	testutil.ExpectNoModuleGoroutines(t, 2*time.Second)
}
