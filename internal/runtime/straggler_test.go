package runtime

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"streambalance/internal/chaos"
	"streambalance/internal/metrics"
	"streambalance/internal/testutil"
	"streambalance/internal/transport"
)

// TestMergerShedsSilentDialer covers the silent-dialer regression: a client
// that connects but never identifies must be shed at the handshake deadline
// instead of pinning a handshake goroutine forever, and must not disturb the
// real streams.
func TestMergerShedsSilentDialer(t *testing.T) {
	var mu sync.Mutex
	var got []uint64
	m, err := NewMerger(1, 8, func(tp transport.Tuple, conn int) {
		mu.Lock()
		got = append(got, tp.Seq)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	m.SetTimeouts(Timeouts{Handshake: 150 * time.Millisecond})
	m.Start()

	silent, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()

	// A real stream alongside the silent one: the merge must complete
	// normally.
	c0 := dialWorkerConn(t, m.Addr(), 0)
	writeTuples(t, c0, 0, 1, 2)

	// The merger must close the silent connection within the handshake
	// deadline; a blocking read observes that as EOF/reset well before our
	// generous local deadline.
	silent.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, rerr := silent.Read(make([]byte, 1)); rerr == nil {
		t.Fatal("silent connection was handed data")
	} else if nerr, ok := rerr.(net.Error); ok && nerr.Timeout() {
		t.Fatal("silent dialer was not shed within the handshake deadline")
	}

	c0.Close()
	if err := m.Wait(); err != nil {
		t.Fatalf("merge failed after shedding silent dialer: %v", err)
	}
	mu.Lock()
	n := len(got)
	mu.Unlock()
	if n != 3 {
		t.Fatalf("released %d tuples, want 3", n)
	}
	testutil.ExpectNoModuleGoroutines(t, 2*time.Second)
}

// TestMergerCloseReleasesPendingHandshake disables the handshake deadline so
// only teardown can shed a pending connection — the original leak shape: a
// handshake goroutine parked in a read with nobody left to unblock it.
func TestMergerCloseReleasesPendingHandshake(t *testing.T) {
	m, err := NewMerger(1, 8, func(transport.Tuple, int) {})
	if err != nil {
		t.Fatal(err)
	}
	m.SetTimeouts(Timeouts{Handshake: -1})
	m.Start()

	silent, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	// Let the handshake goroutine park in its identification read.
	time.Sleep(50 * time.Millisecond)

	m.Close()
	m.Wait() // must return promptly; the error (closed) is expected
	testutil.ExpectNoModuleGoroutines(t, 2*time.Second)
}

// stragglerTopology wires N resilient workers whose merger connections pass
// through per-worker chaos proxies, so a proxy stall models a worker that
// accepts input but never delivers output — the straggler the watchdog must
// catch. Splitter→worker links and the control channel stay direct.
type stragglerTopology struct {
	m       *Merger
	proxies []*chaos.Proxy
	workers []*Worker
	addrs   []string
}

func newStragglerTopology(t *testing.T, n int, m *Merger, workerTO Timeouts) *stragglerTopology {
	t.Helper()
	top := &stragglerTopology{m: m}
	for i := 0; i < n; i++ {
		p, err := chaos.NewProxy(m.Addr())
		if err != nil {
			t.Fatal(err)
		}
		top.proxies = append(top.proxies, p)
		w, err := NewWorker(i, Identity(), p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		w.SetResilient(true)
		w.SetTimeouts(workerTO)
		w.Start()
		top.workers = append(top.workers, w)
		top.addrs = append(top.addrs, w.Addr())
	}
	return top
}

// teardown closes proxies first — severing stalled links so parked workers
// unblock — then the workers.
func (top *stragglerTopology) teardown() {
	for _, p := range top.proxies {
		p.Close()
	}
	for _, w := range top.workers {
		w.Close()
	}
	for _, w := range top.workers {
		w.Wait()
	}
}

// pacedSource emits payload for n tuples on an absolute schedule of roughly
// rate tuples per second: a call behind schedule returns immediately (the
// splitter catches up in a burst), a call ahead of it sleeps. Pacing keeps
// the pipeline — not the merger — the throughput bottleneck, so rate
// comparisons across fault phases measure survivor capacity rather than how
// fast the sharded merge loop can drain a backlog burst.
func pacedSource(payload []byte, n uint64, rate float64) Source {
	start := time.Now()
	return func(seq uint64) ([]byte, bool) {
		if seq >= n {
			return nil, false
		}
		due := start.Add(time.Duration(float64(seq) / rate * float64(time.Second)))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		return payload, true
	}
}

// TestStallQuarantineRecovery is the straggler demo: 8 workers, one enters
// Stall mode mid-run (accepts tuples, never delivers results). The merge
// stalls, the watchdog detects it within the stall window, nominates the
// victim, the splitter quarantines it and replays its tuples, and the stream
// completes exactly once in order with throughput recovering on the
// survivors.
func TestStallQuarantineRecovery(t *testing.T) {
	const (
		workers = 8
		tuples  = 24000
		victim  = 3
		window  = 150 * time.Millisecond
	)

	reg := metrics.New()
	rm := NewRegionMetrics(reg, metrics.NewTrace(4096))

	var stallOnce sync.Once
	var stallMu sync.Mutex
	var stallAt time.Time

	var relMu sync.Mutex
	var relSeqs []uint64
	var relTimes []time.Time
	stallProxy := make(chan *chaos.Proxy, 1)
	m, err := NewMerger(workers, 256, func(tp transport.Tuple, conn int) {
		relMu.Lock()
		relSeqs = append(relSeqs, tp.Seq)
		relTimes = append(relTimes, time.Now())
		n := len(relSeqs)
		relMu.Unlock()
		// Trigger the stall off the release count, not the source sequence:
		// the splitter races far ahead of releases, and the throughput
		// comparison needs a measured pre-fault phase.
		if n == tuples/3 {
			stallOnce.Do(func() {
				p := <-stallProxy
				stallMu.Lock()
				stallAt = time.Now()
				stallMu.Unlock()
				p.SetStall(true)
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m.SetWatermarkInterval(2 * time.Millisecond)
	m.SetStallWindow(window)
	m.SetTimeouts(Timeouts{Handshake: 2 * time.Second})
	m.SetMetrics(rm)
	m.Start()

	// Workers park (rather than error) when their merger path stalls, so the
	// watchdog — not a worker-side send timeout — is the detector under test.
	top := newStragglerTopology(t, workers, m, Timeouts{SendStall: 10 * time.Second})
	defer top.teardown()
	stallProxy <- top.proxies[victim]

	type connEv struct {
		kind string
		conn int
		n    int
		at   time.Time
	}
	var evMu sync.Mutex
	var evs []connEv

	payload := []byte("straggler-demo!!")
	sp, err := NewSplitter(SplitterConfig{
		WorkerAddrs: top.addrs,
		// Paced: with lock-free sharded ingest the merger drains the
		// pre-fault phase at burst speed while the post-replay phase is
		// paced by replay round-trips, so an unpaced source would compare
		// merge-drain speed against replay latency instead of survivor
		// throughput against pre-fault throughput.
		Source:         pacedSource(payload, tuples, 250_000),
		SampleInterval: 20 * time.Millisecond,
		ControlAddr:    m.Addr(),
		Metrics:        rm,
		// No Redial policy: a quarantined worker stays gone, keeping the
		// post-fault assertions deterministic (7 survivors).
		Timeouts: Timeouts{SendStall: 10 * time.Second, Probe: 2 * time.Second},
		OnConnEvent: func(ev ConnEvent) {
			evMu.Lock()
			evs = append(evs, connEv{ev.Kind, ev.Conn, ev.Tuples, time.Now()})
			evMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sp.Start()
	if err := sp.Wait(); err != nil {
		t.Fatalf("splitter: %v", err)
	}
	for _, w := range top.workers {
		w.Close()
	}
	if err := m.Wait(); err != nil {
		t.Fatalf("merger: %v", err)
	}

	// Exactly-once, in-order release of the full stream.
	relMu.Lock()
	seqs := relSeqs
	times := relTimes
	relMu.Unlock()
	stallMu.Lock()
	sAt := stallAt
	stallMu.Unlock()
	if sAt.IsZero() {
		t.Fatal("stall was never injected")
	}
	if len(seqs) != tuples {
		t.Fatalf("released %d tuples, want %d", len(seqs), tuples)
	}
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("release %d had seq %d (order broken)", i, s)
		}
	}

	// The watchdog must have quarantined the victim — and quickly.
	evMu.Lock()
	events := evs
	evMu.Unlock()
	var quarAt, replayAt time.Time
	var replayed int
	for _, ev := range events {
		switch ev.kind {
		case "quarantine":
			if ev.conn != victim {
				t.Fatalf("quarantined worker %d, want %d", ev.conn, victim)
			}
			if quarAt.IsZero() {
				quarAt = ev.at
			}
		case "replay":
			if ev.conn == victim && replayAt.IsZero() {
				replayAt = ev.at
				replayed = ev.n
			}
		case "down":
			// The quarantine ejection rides the ordinary membership-edit
			// path, so a "down" for the victim after its quarantine is
			// expected; one before it means a send-stall timeout raced the
			// watchdog, which this test's 10s send bounds should preclude.
			if quarAt.IsZero() {
				t.Fatalf("down event for worker %d before any quarantine (watchdog was not the detector)", ev.conn)
			}
		}
	}
	if quarAt.IsZero() {
		t.Fatalf("no quarantine event; events: %+v", events)
	}
	if replayAt.IsZero() {
		t.Fatalf("victim was never replayed; events: %+v", events)
	}
	if replayed == 0 {
		t.Error("replay event carried zero tuples")
	}
	if lat := quarAt.Sub(sAt); lat > 3*time.Second {
		t.Errorf("stall-to-quarantine latency %v, want well under 3s", lat)
	} else {
		t.Logf("stall detected and quarantined in %v (window %v)", lat, window)
	}

	// Metrics: the quarantine counter and the stall-episode histogram both
	// observed the incident.
	if got := mustSum(t, reg, "spe_quarantine_events_total"); got < 1 {
		t.Errorf("spe_quarantine_events_total = %v, want >= 1", got)
	}
	if rm.stallSeconds.Count() < 1 {
		t.Error("spe_merger_stall_seconds recorded no stall episodes")
	}

	// Throughput recovers on the survivors: the post-recovery release rate
	// must be at least 80% of the pre-fault rate. The post window starts
	// after the replay completed; the backlog drained during the stall is
	// released in a burst, so this is a conservative bound.
	pre, post := 0, 0
	for _, at := range times {
		if at.Before(sAt) {
			pre++
		}
		if at.After(replayAt) {
			post++
		}
	}
	start, end := times[0], times[len(times)-1]
	if pre >= 100 && post >= 100 && sAt.Sub(start) > 0 && end.Sub(replayAt) > 0 {
		preRate := float64(pre) / sAt.Sub(start).Seconds()
		postRate := float64(post) / end.Sub(replayAt).Seconds()
		t.Logf("pre-fault %.0f tuples/s, post-recovery %.0f tuples/s", preRate, postRate)
		if postRate < 0.8*preRate {
			t.Errorf("post-recovery rate %.0f/s fell below 80%% of pre-fault rate %.0f/s", postRate, preRate)
		}
	} else {
		t.Logf("skipping throughput comparison: pre=%d post=%d releases", pre, post)
	}

	top.teardown()
	testutil.ExpectNoModuleGoroutines(t, 3*time.Second)
}

// TestQuarantineReadmitAfterHeal heals the straggler right as it is
// quarantined: the redialer must re-probe it, re-admit it (a "readmit" trace
// event), and the stream must still complete exactly once.
func TestQuarantineReadmitAfterHeal(t *testing.T) {
	const (
		workers = 4
		tuples  = 12000
		victim  = 1
		window  = 120 * time.Millisecond
	)

	reg := metrics.New()
	tr := metrics.NewTrace(4096)
	rm := NewRegionMetrics(reg, tr)

	var relMu sync.Mutex
	var released int
	ordered := true
	var next uint64
	m, err := NewMerger(workers, 256, func(tp transport.Tuple, conn int) {
		relMu.Lock()
		if tp.Seq != next {
			ordered = false
		}
		next = tp.Seq + 1
		released++
		relMu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	m.SetWatermarkInterval(2 * time.Millisecond)
	m.SetStallWindow(window)
	m.SetTimeouts(Timeouts{Handshake: 2 * time.Second})
	m.SetMetrics(rm)
	m.Start()

	top := newStragglerTopology(t, workers, m, Timeouts{SendStall: 10 * time.Second})
	defer top.teardown()

	var stallOnce sync.Once
	quarantined := make(chan struct{})
	rejoined := make(chan struct{})
	var evOnce [2]sync.Once

	sp, err := NewSplitter(SplitterConfig{
		WorkerAddrs: top.addrs,
		// Throttled source: the send phase must outlive the whole
		// quarantine→heal→redial→rejoin cycle, or the stream drains on the
		// survivors before the victim can come back.
		Source: func(seq uint64) ([]byte, bool) {
			if seq == tuples/6 {
				stallOnce.Do(func() { top.proxies[victim].SetStall(true) })
			}
			if seq >= tuples {
				return nil, false
			}
			if seq%20 == 0 {
				time.Sleep(2 * time.Millisecond)
			}
			return []byte("heal-me"), true
		},
		SampleInterval: 20 * time.Millisecond,
		ControlAddr:    m.Addr(),
		Metrics:        rm,
		Redial:         &transport.RedialPolicy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond, Jitter: 0.2},
		Timeouts:       Timeouts{SendStall: 10 * time.Second, Probe: 150 * time.Millisecond},
		OnConnEvent: func(ev ConnEvent) {
			switch {
			case ev.Kind == "quarantine" && ev.Conn == victim:
				evOnce[0].Do(func() {
					// Heal the worker the moment it is ejected; the redialer
					// should find it healthy and bring it back.
					top.proxies[victim].SetStall(false)
					close(quarantined)
				})
			case ev.Kind == "rejoin" && ev.Conn == victim:
				evOnce[1].Do(func() { close(rejoined) })
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sp.Start()
	if err := sp.Wait(); err != nil {
		t.Fatalf("splitter: %v", err)
	}
	for _, w := range top.workers {
		w.Close()
	}
	if err := m.Wait(); err != nil {
		t.Fatalf("merger: %v", err)
	}

	select {
	case <-quarantined:
	default:
		t.Fatal("victim was never quarantined")
	}
	select {
	case <-rejoined:
	default:
		t.Fatal("healed victim was never re-admitted")
	}
	readmitTraced := false
	for _, ev := range tr.Events() {
		if ev.Kind == "readmit" && ev.Conn == victim {
			readmitTraced = true
		}
	}
	if !readmitTraced {
		t.Error("no readmit trace event for the healed victim")
	}

	relMu.Lock()
	defer relMu.Unlock()
	if released != tuples || !ordered {
		t.Fatalf("released %d of %d tuples, ordered=%v", released, tuples, ordered)
	}
}

// TestQuarantineCircuitBreakerEvicts cycles one worker through
// stall→quarantine→heal→rejoin→stall again with MaxReadmits 1: the second
// quarantine must trip the circuit breaker ("evicted"), after which the
// worker stays out and the survivors finish the stream.
func TestQuarantineCircuitBreakerEvicts(t *testing.T) {
	const (
		workers = 4
		tuples  = 60000
		victim  = 2
		window  = 120 * time.Millisecond
	)

	m, err := NewMerger(workers, 256, func(transport.Tuple, int) {})
	if err != nil {
		t.Fatal(err)
	}
	m.SetWatermarkInterval(2 * time.Millisecond)
	m.SetStallWindow(window)
	m.SetTimeouts(Timeouts{Handshake: 2 * time.Second})
	m.Start()

	top := newStragglerTopology(t, workers, m, Timeouts{SendStall: 10 * time.Second})
	defer top.teardown()

	var stallOnce sync.Once
	evicted := make(chan struct{})
	var quarCount int
	var rejoinStalls int
	var evMu sync.Mutex

	sp, err := NewSplitter(SplitterConfig{
		WorkerAddrs: top.addrs,
		Source: func(seq uint64) ([]byte, bool) {
			if seq == tuples/6 {
				stallOnce.Do(func() { top.proxies[victim].SetStall(true) })
			}
			if seq >= tuples {
				return nil, false
			}
			return []byte("evict-me"), true
		},
		SampleInterval: 20 * time.Millisecond,
		ControlAddr:    m.Addr(),
		MaxReadmits:    1,
		Redial:         &transport.RedialPolicy{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond, Jitter: 0.2},
		Timeouts:       Timeouts{SendStall: 10 * time.Second, Probe: 300 * time.Millisecond},
		OnConnEvent: func(ev ConnEvent) {
			if ev.Conn != victim {
				return
			}
			evMu.Lock()
			defer evMu.Unlock()
			switch ev.Kind {
			case "quarantine":
				quarCount++
				// Heal so the redialer can bring it back for another round.
				top.proxies[victim].SetStall(false)
			case "rejoin":
				// Back in — make it straggle again.
				rejoinStalls++
				top.proxies[victim].SetStall(true)
			case "evicted":
				top.proxies[victim].SetStall(false)
				select {
				case <-evicted:
				default:
					close(evicted)
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sp.Start()
	if err := sp.Wait(); err != nil {
		t.Fatalf("splitter: %v", err)
	}
	for _, w := range top.workers {
		w.Close()
	}
	if err := m.Wait(); err != nil {
		t.Fatalf("merger: %v", err)
	}

	select {
	case <-evicted:
	default:
		evMu.Lock()
		qc, rs := quarCount, rejoinStalls
		evMu.Unlock()
		t.Fatalf("circuit breaker never tripped (quarantines=%d, rejoin-stalls=%d)", qc, rs)
	}
	evMu.Lock()
	defer evMu.Unlock()
	if quarCount < 2 {
		t.Errorf("evicted after %d quarantines, want >= 2", quarCount)
	}
}

// TestStragglerInvariantTrials runs many short randomized fault trials — one
// stall, slow-drip or kill per run at a random point in the stream — and
// checks the exactly-once in-order invariant every time. Seeds are fixed so
// failures reproduce.
func TestStragglerInvariantTrials(t *testing.T) {
	trials := 300
	if testing.Short() {
		trials = 48
	}
	const shards = 8
	per := (trials + shards - 1) / shards
	for s := 0; s < shards; s++ {
		s := s
		t.Run(fmt.Sprintf("shard%d", s), func(t *testing.T) {
			t.Parallel()
			for i := 0; i < per; i++ {
				runStragglerTrial(t, int64(s*1000+i))
				if t.Failed() {
					return
				}
			}
		})
	}
}

func runStragglerTrial(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	workers := 2 + rng.Intn(3)
	tuples := uint64(300 + rng.Intn(500))
	kind := []string{"stall", "drip", "kill"}[rng.Intn(3)]
	victim := rng.Intn(workers)
	atSeq := uint64(rng.Intn(int(tuples)))
	hold := time.Duration(20+rng.Intn(60)) * time.Millisecond

	proxies := make([]*chaos.Proxy, workers)
	defer func() {
		for _, p := range proxies {
			if p != nil {
				p.Close()
			}
		}
	}()

	ops := make([]Operator, workers)
	for i := range ops {
		ops[i] = Identity()
	}
	var fault sync.Once
	region, err := NewRegion(RegionConfig{
		Operators: ops,
		Source: func(seq uint64) ([]byte, bool) {
			if seq == atSeq {
				fault.Do(func() {
					p := proxies[victim]
					switch kind {
					case "stall":
						p.SetStall(true)
						time.AfterFunc(hold, func() { p.SetStall(false) })
					case "drip":
						p.SetSlowDrip(8)
						time.AfterFunc(hold, func() { p.SetSlowDrip(0) })
					case "kill":
						p.KillActive()
					}
				})
			}
			if seq >= tuples {
				return nil, false
			}
			return []byte("trial"), true
		},
		SampleInterval: 10 * time.Millisecond,
		Recovery: RecoveryConfig{
			Enabled:           true,
			WatermarkInterval: time.Millisecond,
			StallWindow:       30 * time.Millisecond,
			MaxReadmits:       -1,
			Redial: &transport.RedialPolicy{
				Base: 2 * time.Millisecond, Max: 20 * time.Millisecond, Jitter: 0.2,
			},
		},
		Timeouts: Timeouts{
			Dial:         time.Second,
			Handshake:    time.Second,
			Probe:        150 * time.Millisecond,
			ControlRead:  5 * time.Second,
			ControlWrite: time.Second,
			SendStall:    100 * time.Millisecond,
		},
		WrapWorkerAddr: func(worker int, addr string) string {
			p, perr := chaos.NewProxy(addr)
			if perr != nil {
				t.Fatal(perr)
			}
			proxies[worker] = p
			return p.Addr()
		},
	})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	res, err := region.Run()
	if err != nil {
		t.Errorf("seed %d (%s on worker %d at seq %d, hold %v): %v",
			seed, kind, victim, atSeq, hold, err)
		return
	}
	if res.Released != tuples || !res.OrderPreserved {
		t.Errorf("seed %d (%s on worker %d at seq %d): released %d of %d, ordered=%v",
			seed, kind, victim, atSeq, res.Released, tuples, res.OrderPreserved)
	}
}

// TestRegionTeardownLeaksNothing runs a recovery region to completion and
// asserts every module goroutine — readers, monitors, watchdog, watermark
// writer — exited with it.
func TestRegionTeardownLeaksNothing(t *testing.T) {
	ops := []Operator{Identity(), Identity(), Identity(), Identity()}
	region, err := NewRegion(RegionConfig{
		Operators: ops,
		Source:    ConstantSource([]byte("leakcheck"), 5000),
		Recovery: RecoveryConfig{
			Enabled:           true,
			WatermarkInterval: 2 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := region.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Released != 5000 || !res.OrderPreserved {
		t.Fatalf("released %d, ordered=%v", res.Released, res.OrderPreserved)
	}
	testutil.ExpectNoModuleGoroutines(t, 3*time.Second)
}

// TestRegionCloseWithoutRunLeaksNothing tears down a region that never ran;
// construction-time goroutines (accept loops, handshakes, control reader)
// must all exit on Close.
func TestRegionCloseWithoutRunLeaksNothing(t *testing.T) {
	ops := []Operator{Identity(), Identity()}
	region, err := NewRegion(RegionConfig{
		Operators: ops,
		Source:    ConstantSource([]byte("x"), 10),
		Recovery: RecoveryConfig{
			Enabled:           true,
			WatermarkInterval: 2 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	region.Close()
	testutil.ExpectNoModuleGoroutines(t, 3*time.Second)
}
