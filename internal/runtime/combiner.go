package runtime

import (
	"encoding/binary"

	"streambalance/internal/transport"
)

// Combiner is a per-key partial aggregation the worker applies to its
// processed batch before forwarding to the merger: same-key results inside
// one received batch fold into the first occurrence (the carrier, which has
// the group's lowest sequence number), and the absorbed tuples' sequence
// numbers ride the carrier's Absorbed field so the merger can advance its
// watermark through them without a sink call. Under Zipf skew this shrinks
// merger ingest exactly where the skew concentrates it — the hottest keys.
//
// Correctness constraints (see DESIGN, "Keyed routing"):
//   - Only tuples with Key != 0 and Solo == false ever combine. The splitter
//     marks every recovery replay Solo, so groups form only from first
//     transmissions and stay disjoint across crashes.
//   - Combine owns acc (the combine stage copies the carrier's payload out of
//     shared transport memory before the first fold) and may mutate and
//     return it. next must be neither mutated nor retained; copy what it
//     needs.
type Combiner interface {
	Combine(key uint64, acc, next []byte) []byte
}

// CombinerFunc adapts a function to the Combiner interface.
type CombinerFunc func(key uint64, acc, next []byte) []byte

// Combine implements Combiner.
func (f CombinerFunc) Combine(key uint64, acc, next []byte) []byte {
	return f(key, acc, next)
}

// SumCombiner folds payloads as little-endian uint64 counters — the
// word-count shape of streaming aggregation. Payloads shorter than 8 bytes
// are read zero-extended; the folded payload is always at least 8 bytes with
// the running sum (mod 2^64) in its first 8.
func SumCombiner() Combiner {
	return CombinerFunc(func(_ uint64, acc, next []byte) []byte {
		sum := payloadUint(acc) + payloadUint(next)
		if len(acc) < 8 {
			acc = make([]byte, 8)
		}
		binary.LittleEndian.PutUint64(acc, sum)
		return acc
	})
}

// payloadUint reads a payload's leading little-endian uint64, zero-extending
// short payloads.
func payloadUint(p []byte) uint64 {
	if len(p) >= 8 {
		return binary.LittleEndian.Uint64(p)
	}
	var b [8]byte
	copy(b[:], p)
	return binary.LittleEndian.Uint64(b[:])
}

// combineBatch compacts results in place, folding each combinable tuple into
// its key's carrier (the key's first — lowest-seq — occurrence in the
// batch). Returns the shortened slice and how many tuples were absorbed.
// Carriers get a freshly allocated Absorbed buffer: it travels downstream by
// reference (through the in-proc ring or the frame encoder) and so cannot
// come from a reused scratch arena.
func combineBatch(c Combiner, results []transport.Tuple) ([]transport.Tuple, int) {
	out := results[:0]
	absorbed := 0
	for i := range results {
		t := results[i]
		if t.Key == 0 || t.Solo {
			out = append(out, t)
			continue
		}
		carrier := -1
		for j := range out {
			if out[j].Key == t.Key && !out[j].Solo {
				carrier = j
				break
			}
		}
		if carrier < 0 {
			out = append(out, t)
			continue
		}
		car := &out[carrier]
		if len(car.Absorbed) == 0 {
			// First fold for this carrier: its payload may still alias shared
			// upstream memory (the zero-copy transport moves payloads by
			// reference), so hand the combiner an owned copy it may mutate.
			car.Payload = append([]byte(nil), car.Payload...)
		}
		car.Payload = c.Combine(t.Key, car.Payload, t.Payload)
		car.Absorbed = transport.AppendAbsorbed(car.Absorbed, t.Seq)
		absorbed++
	}
	return out, absorbed
}
