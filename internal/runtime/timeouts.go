package runtime

import "time"

// Default I/O deadlines and stall-detection windows. The values are
// deliberately generous — they exist to convert "hangs forever" into "fails
// in bounded time", not to police routine latency. Tests and the soak
// harness shrink them by orders of magnitude.
const (
	// DefaultDialTimeout bounds every connection establishment: splitter to
	// worker, splitter to control channel, worker to merger.
	DefaultDialTimeout = 5 * time.Second
	// DefaultHandshakeTimeout bounds the 4-byte id exchange on a fresh
	// merger connection, in both directions. A peer that connects and goes
	// silent (slow loris) is shed after this long instead of pinning an
	// accept-path goroutine forever.
	DefaultHandshakeTimeout = 5 * time.Second
	// DefaultProbeTimeout bounds the splitter's wait for a worker's ready
	// acknowledgement: the byte a resilient worker writes once its merger
	// connection is up. It is the health re-probe gating re-admission.
	DefaultProbeTimeout = 5 * time.Second
	// DefaultControlReadTimeout bounds each watermark-frame read on the
	// splitter's control channel. The merger writes a frame every watermark
	// interval (20ms by default) even when the merge is stalled, so a
	// control channel idle this long is dead, not quiet.
	DefaultControlReadTimeout = 30 * time.Second
	// DefaultControlWriteTimeout bounds each control-channel write: the
	// merger's watermark/quarantine frames and the splitter's FIN.
	DefaultControlWriteTimeout = 5 * time.Second
	// DefaultSendStallTimeout bounds how long one sender flush may sit
	// parked in the poller on a socket that is not draining. Electing to
	// block is the paper's signal, so this stays far above any plausible
	// backpressure episode; it exists to unwedge the send loop from a
	// worker that accepted tuples and then stopped reading entirely.
	DefaultSendStallTimeout = 30 * time.Second
	// DefaultStallWindow is how long the merge may make no progress (while
	// evidence says it should) before the watchdog quarantines the
	// connection that owns the missing sequence range.
	DefaultStallWindow = 10 * time.Second
	// DefaultMaxReadmits caps how many times one worker may be quarantined
	// and re-admitted before the circuit breaker retires it permanently.
	DefaultMaxReadmits = 3
)

// Timeouts carries every I/O deadline a region applies. The zero value
// selects the defaults above; a negative field disables that deadline
// (restoring the unbounded pre-straggler-defense behaviour).
type Timeouts struct {
	// Dial bounds connection establishment (splitter→worker,
	// splitter→control, worker→merger).
	Dial time.Duration
	// Handshake bounds the 4-byte id exchange on merger connections.
	Handshake time.Duration
	// Probe bounds the splitter's wait for a worker's ready ACK before
	// (re-)admitting it into the schedule.
	Probe time.Duration
	// ControlRead bounds each watermark-frame read on the control channel.
	ControlRead time.Duration
	// ControlWrite bounds each control-channel write (watermark, FIN,
	// quarantine frames).
	ControlWrite time.Duration
	// SendStall bounds one elect-to-block park on a tuple send. Because the
	// deadline is re-armed at most once per half-window (to keep the
	// per-flush syscall cost off the hot path), the effective bound on a
	// single stalled flush lies in [SendStall/2, SendStall].
	SendStall time.Duration
}

// norm resolves the zero/negative encoding: zero fields take the default,
// negative fields become 0 ("disabled") so call sites can test `> 0`.
func (t Timeouts) norm() Timeouts {
	pick := func(v, def time.Duration) time.Duration {
		if v == 0 {
			return def
		}
		if v < 0 {
			return 0
		}
		return v
	}
	return Timeouts{
		Dial:         pick(t.Dial, DefaultDialTimeout),
		Handshake:    pick(t.Handshake, DefaultHandshakeTimeout),
		Probe:        pick(t.Probe, DefaultProbeTimeout),
		ControlRead:  pick(t.ControlRead, DefaultControlReadTimeout),
		ControlWrite: pick(t.ControlWrite, DefaultControlWriteTimeout),
		SendStall:    pick(t.SendStall, DefaultSendStallTimeout),
	}
}

// dialTimeout returns the dial bound, substituting a large finite cap when
// disabled so net.DialTimeout call sites need no branching (the OS SYN
// timeout fires far earlier anyway).
func (t Timeouts) dialTimeout() time.Duration {
	if t.Dial > 0 {
		return t.Dial
	}
	return 10 * time.Minute
}

// workerReadyAck is the single byte a worker writes back to the splitter
// once its merger connection is established and identified — the health
// probe recovery-mode splitters require before admitting the connection.
// Non-recovery splitters never read it; one unread byte parks harmlessly in
// the socket buffer.
const workerReadyAck = 0xA5
