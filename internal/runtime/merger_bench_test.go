package runtime

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"streambalance/internal/transport"
)

// mergerTrace builds an arrival trace of n tuples spread round-robin-randomly
// over conns connections, with sequence numbers shuffled inside fixed-size
// windows. The window models the disorder the merger actually sees: tuples
// are near-ordered per connection, but replay bursts and skewed workers put
// the next-needed sequence up to a queue-capacity's distance behind newer
// arrivals. Window-local disorder is exactly where the old O(n) sorted-slice
// insert degraded: every insert behind a backlog shifts the tail.
type arrival struct {
	conn int
	t    transport.Tuple
}

func mergerTrace(conns, n, window int, seed int64) []arrival {
	rng := rand.New(rand.NewSource(seed))
	seqs := make([]uint64, n)
	for i := range seqs {
		seqs[i] = uint64(i)
	}
	for i := 0; i < n; i += window {
		end := i + window
		if end > n {
			end = n
		}
		sub := seqs[i:end]
		rng.Shuffle(len(sub), func(a, b int) { sub[a], sub[b] = sub[b], sub[a] })
	}
	evs := make([]arrival, n)
	for i := range evs {
		evs[i] = arrival{conn: rng.Intn(conns), t: transport.Tuple{Seq: seqs[i]}}
	}
	return evs
}

// runHeapTrace plays a trace through per-connection seqHeaps with the merge
// loop's release discipline and returns how many tuples released.
func runHeapTrace(queues []seqHeap, evs []arrival) int {
	next := uint64(0)
	released := 0
	for _, e := range evs {
		queues[e.conn].push(mergeItem{t: e.t})
		for {
			progressed := false
			for id := range queues {
				if h, ok := queues[id].head(); ok && h.t.Seq == next {
					queues[id].popMin()
					next++
					released++
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}
	}
	return released
}

// runSortedTrace is the same merge over the pre-heap sorted-slice queues,
// using the reference insertSorted from merger_equiv_test.go.
func runSortedTrace(queues [][]transport.Tuple, evs []arrival) int {
	next := uint64(0)
	released := 0
	for _, e := range evs {
		if q, ok := insertSorted(queues[e.conn], e.t); ok {
			queues[e.conn] = q
		}
		for {
			progressed := false
			for id := range queues {
				if len(queues[id]) > 0 && queues[id][0].Seq == next {
					queues[id] = queues[id][1:]
					next++
					released++
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}
	}
	return released
}

// BenchmarkMergerEnqueueRelease compares the heap reorder queue against the
// old sorted-slice insert across connection counts, on a trace whose
// disorder window matches DefaultMergerQueue-scale backlogs. The headline is
// the per-tuple cost staying flat for the heap as the backlog grows.
func BenchmarkMergerEnqueueRelease(b *testing.B) {
	const (
		n      = 8192
		window = 1024
	)
	for _, conns := range []int{4, 16, 64} {
		evs := mergerTrace(conns, n, window, int64(conns))
		b.Run(fmt.Sprintf("impl=heap/conns=%d", conns), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				queues := make([]seqHeap, conns)
				if got := runHeapTrace(queues, evs); got != n {
					b.Fatalf("released %d of %d", got, n)
				}
			}
			b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "tuples/s")
		})
		b.Run(fmt.Sprintf("impl=insertSorted/conns=%d", conns), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				queues := make([][]transport.Tuple, conns)
				if got := runSortedTrace(queues, evs); got != n {
					b.Fatalf("released %d of %d", got, n)
				}
			}
			b.ReportMetric(float64(b.N*n)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

// BenchmarkMergerIngest measures end-to-end merger ingest over real loopback
// TCP: conns sender goroutines stream b.N round-robin-assigned sequences
// through identical SendBatch wires, so the only variable between recv=1 and
// recv=64 is the receive side — per-tuple lock/ingest versus one lock
// acquisition and one pooled decode pass per batch. The acceptance headline
// is tuples/s at conns=64: batched ingest must beat per-tuple by >=1.5x.
func BenchmarkMergerIngest(b *testing.B) {
	payload := []byte("0123456789abcdef0123456789abcdef")
	for _, conns := range []int{4, 16, 64} {
		for _, recv := range []int{1, 64} {
			b.Run(fmt.Sprintf("conns=%d/recv=%d", conns, recv), func(b *testing.B) {
				var released atomic.Uint64
				m, err := NewMerger(conns, 0, func(t transport.Tuple, _ int) {
					released.Add(1)
				})
				if err != nil {
					b.Fatal(err)
				}
				m.SetRecvBatch(recv)
				m.Start()
				n := uint64(b.N)
				errCh := make(chan error, conns)
				b.ResetTimer()
				for w := 0; w < conns; w++ {
					go func(w int) {
						conn := dialWorkerConnErr(m.Addr(), uint32(w))
						if conn == nil {
							errCh <- fmt.Errorf("worker %d: dial failed", w)
							return
						}
						defer conn.Close()
						sender, err := transport.NewSender(conn)
						if err != nil {
							errCh <- err
							return
						}
						// Identical send-side batching for both variants so
						// the wire traffic is the same; only ingest differs.
						batch := make([]transport.Tuple, 0, 64)
						for seq := uint64(w); seq < n; seq += uint64(conns) {
							batch = append(batch, transport.Tuple{Seq: seq, Payload: payload})
							if len(batch) == cap(batch) {
								if err := sender.SendBatch(batch); err != nil {
									errCh <- err
									return
								}
								batch = batch[:0]
							}
						}
						if len(batch) > 0 {
							if err := sender.SendBatch(batch); err != nil {
								errCh <- err
								return
							}
						}
						errCh <- nil
					}(w)
				}
				for w := 0; w < conns; w++ {
					if err := <-errCh; err != nil {
						b.Fatal(err)
					}
				}
				if err := m.Wait(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if got := released.Load(); got != n {
					b.Fatalf("released %d of %d", got, n)
				}
				b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "tuples/s")
			})
		}
	}
}

// BenchmarkSeqHeapPush pins the in-order fast path: pushing an ascending
// sequence is O(1) per push (the sift-up exits on the first compare), which
// is the steady-state case when workers are balanced.
func BenchmarkSeqHeapPush(b *testing.B) {
	h := make(seqHeap, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(h) == cap(h) {
			h = h[:0]
		}
		h.push(mergeItem{t: transport.Tuple{Seq: uint64(i)}})
	}
}
