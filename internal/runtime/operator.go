package runtime

import (
	"sync/atomic"
	"time"

	"streambalance/internal/transport"
)

// Operator is a stateless tuple computation: given an input tuple it returns
// the output tuple (Section 2 — stateless PEs are pure functions).
type Operator interface {
	Process(t transport.Tuple) transport.Tuple
}

// OperatorFunc adapts a function to the Operator interface.
type OperatorFunc func(transport.Tuple) transport.Tuple

// Process implements Operator.
func (f OperatorFunc) Process(t transport.Tuple) transport.Tuple {
	return f(t)
}

// Identity returns tuples unchanged.
func Identity() Operator {
	return OperatorFunc(func(t transport.Tuple) transport.Tuple { return t })
}

// SpinOperator burns a configurable number of integer multiplies per tuple —
// the paper's synthetic workload ("base cost of 1,000 integer multiplies").
// The cost can be changed concurrently to emulate external load arriving or
// departing mid-run, as in the Section 6.3/6.4 dynamic experiments.
type SpinOperator struct {
	multiplies atomic.Int64
	// sink absorbs the spin result so the loop cannot be optimized away.
	sink atomic.Int64
}

var _ Operator = (*SpinOperator)(nil)

// NewSpinOperator returns an operator costing the given number of integer
// multiplies per tuple.
func NewSpinOperator(multiplies int64) *SpinOperator {
	op := &SpinOperator{}
	op.multiplies.Store(multiplies)
	return op
}

// SetMultiplies changes the per-tuple cost; safe to call during a run.
func (op *SpinOperator) SetMultiplies(multiplies int64) {
	op.multiplies.Store(multiplies)
}

// Multiplies returns the current per-tuple cost.
func (op *SpinOperator) Multiplies() int64 {
	return op.multiplies.Load()
}

// Process implements Operator: it performs the integer multiplies and passes
// the tuple through unchanged.
func (op *SpinOperator) Process(t transport.Tuple) transport.Tuple {
	n := op.multiplies.Load()
	acc := int64(1)
	x := int64(t.Seq) | 3
	for i := int64(0); i < n; i++ {
		acc *= x
	}
	op.sink.Store(acc)
	return t
}

// DelayOperator holds each tuple for a configurable duration without
// consuming CPU. On machines with fewer cores than workers, SpinOperator
// cannot express a genuine capacity difference — every worker just contends
// for the same cores — so examples and tests emulate a slower host by
// delaying instead. The delay can be changed concurrently.
type DelayOperator struct {
	delayNS atomic.Int64
}

var _ Operator = (*DelayOperator)(nil)

// NewDelayOperator returns an operator that sleeps for d per tuple.
func NewDelayOperator(d time.Duration) *DelayOperator {
	op := &DelayOperator{}
	op.delayNS.Store(int64(d))
	return op
}

// SetDelay changes the per-tuple delay; safe to call during a run.
func (op *DelayOperator) SetDelay(d time.Duration) {
	op.delayNS.Store(int64(d))
}

// Delay returns the current per-tuple delay.
func (op *DelayOperator) Delay() time.Duration {
	return time.Duration(op.delayNS.Load())
}

// Process implements Operator: it sleeps and passes the tuple through.
func (op *DelayOperator) Process(t transport.Tuple) transport.Tuple {
	if d := time.Duration(op.delayNS.Load()); d > 0 {
		time.Sleep(d)
	}
	return t
}

// serviceQuantum is the smallest sleep ServiceOperator issues. Kernel timer
// granularity can inflate a short sleep by a millisecond or more, so
// sub-quantum service times are accumulated as debt and slept in batches.
const serviceQuantum = time.Millisecond

// ServiceOperator models a fixed per-tuple service time without consuming
// CPU, like DelayOperator, but stays accurate for service times far below
// the kernel's sleep granularity: each tuple adds its service time to a debt
// counter, the operator sleeps only once the debt reaches a quantum, and the
// sleep's measured overshoot is credited against future debt. The effective
// per-tuple cost converges on the configured duration even when individual
// sleeps are inflated 50x. The service time can be changed concurrently;
// debt is owned by the single worker goroutine calling Process.
type ServiceOperator struct {
	serviceNS atomic.Int64
	debt      time.Duration
}

var _ Operator = (*ServiceOperator)(nil)

// NewServiceOperator returns an operator costing d of wall-clock service
// time per tuple.
func NewServiceOperator(d time.Duration) *ServiceOperator {
	op := &ServiceOperator{}
	op.serviceNS.Store(int64(d))
	return op
}

// SetService changes the per-tuple service time; safe to call during a run.
func (op *ServiceOperator) SetService(d time.Duration) {
	op.serviceNS.Store(int64(d))
}

// Service returns the current per-tuple service time.
func (op *ServiceOperator) Service() time.Duration {
	return time.Duration(op.serviceNS.Load())
}

// Process implements Operator: it charges one service time against the debt
// counter, sleeping when a full quantum has accumulated.
func (op *ServiceOperator) Process(t transport.Tuple) transport.Tuple {
	d := time.Duration(op.serviceNS.Load())
	if d <= 0 {
		return t
	}
	op.debt += d
	if op.debt >= serviceQuantum {
		start := time.Now()
		time.Sleep(op.debt)
		op.debt -= time.Since(start)
		// Cap the credit so one long preemption cannot buy an unbounded
		// burst of free tuples afterwards.
		if op.debt < -serviceQuantum {
			op.debt = -serviceQuantum
		}
	}
	return t
}
