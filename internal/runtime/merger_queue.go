package runtime

import "streambalance/internal/transport"

// mergeItem is one queued tuple plus the BlockRef of the receive batch its
// payload was carved from. The ref travels with the tuple through the
// reorder queue and is released exactly once per item: after the sink
// returns when the item is released in order, or at the point an item is
// dropped as a duplicate (read-time dedup, the stale-head sweep, or
// teardown). A zero ref means the payload is not pool-backed (tests feed
// the queues directly) and release is a no-op.
type mergeItem struct {
	t   transport.Tuple
	ref *transport.BlockRef
}

// seqHeap is a binary min-heap of tuples ordered by sequence number — the
// merger's per-connection reorder queue. The previous implementation kept a
// sorted slice with O(n) insertion: cheap in the in-order common case, but a
// replay burst after a worker failure inserts old sequence numbers near the
// front of queues up to queueCap deep, and Prasaad et al. ("Scaling Ordered
// Stream Processing on Shared-Memory Multicores") observe the ordered merge
// structure itself becoming the bottleneck at scale — exactly where that
// O(n) shuffle sat, inside the merger lock. The heap makes every enqueue
// O(log n) worst case and O(1) on the in-order fast path (a new maximum
// never swaps with its parent), with O(log n) release.
//
// Unlike the sorted slice, the heap admits duplicate sequence numbers
// (membership testing would tax the fast path). Duplicates are dropped
// lazily: exactly one copy of each sequence is released, and every surplus
// copy is counted at read time (if it arrives below the released watermark)
// or by the merge loop's stale-head sweep (once the watermark passes it), so
// the dedup accounting matches the eager implementation — the equivalence
// test in merger_equiv_test.go pins this against the old insertSorted.
type seqHeap []mergeItem

// head returns the minimum-sequence item without removing it.
func (h seqHeap) head() (mergeItem, bool) {
	if len(h) == 0 {
		return mergeItem{}, false
	}
	return h[0], true
}

// push adds an item: O(1) when t.Seq is a new maximum (a worker's own
// stream arrives in order), O(log n) otherwise.
func (h *seqHeap) push(it mergeItem) {
	q := append(*h, it)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].t.Seq <= q[i].t.Seq {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
	*h = q
}

// popMin removes and returns the minimum-sequence item. The vacated slot is
// zeroed so the heap does not pin released payloads or their block refs.
func (h *seqHeap) popMin() mergeItem {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = mergeItem{}
	q = q[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(q) && q[l].t.Seq < q[min].t.Seq {
			min = l
		}
		if r < len(q) && q[r].t.Seq < q[min].t.Seq {
			min = r
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	*h = q
	return top
}
