package runtime

import "streambalance/internal/transport"

// mergeItem is one queued tuple plus the BlockRef of the receive batch its
// payload was carved from. The ref travels with the tuple through the
// reorder queue and is released exactly once per item: after the sink
// returns when the item is released in order, or at the point an item is
// dropped as a duplicate (read-time dedup, the stale-head sweep, or
// teardown). A zero ref means the payload is not pool-backed (tests feed
// the queues directly) and release is a no-op.
type mergeItem struct {
	t   transport.Tuple
	ref *transport.BlockRef
}

// seqHeap is a binary min-heap of tuples ordered by sequence number — the
// merger's per-connection reorder queue. The previous implementation kept a
// sorted slice with O(n) insertion: cheap in the in-order common case, but a
// replay burst after a worker failure inserts old sequence numbers near the
// front of queues up to queueCap deep, and Prasaad et al. ("Scaling Ordered
// Stream Processing on Shared-Memory Multicores") observe the ordered merge
// structure itself becoming the bottleneck at scale — exactly where that
// O(n) shuffle sat, inside the merger lock. The heap makes every enqueue
// O(log n) worst case and O(1) on the in-order fast path (a new maximum
// never swaps with its parent), with O(log n) release.
//
// Unlike the sorted slice, the heap admits duplicate sequence numbers
// (membership testing would tax the fast path). Duplicates are dropped
// lazily: exactly one copy of each sequence is released, and every surplus
// copy is counted at read time (if it arrives below the released watermark)
// or by the merge loop's stale-head sweep (once the watermark passes it), so
// the dedup accounting matches the eager implementation — the equivalence
// test in merger_equiv_test.go pins this against the old insertSorted.
type seqHeap []mergeItem

// head returns the minimum-sequence item without removing it.
func (h seqHeap) head() (mergeItem, bool) {
	if len(h) == 0 {
		return mergeItem{}, false
	}
	return h[0], true
}

// push adds an item: O(1) when t.Seq is a new maximum (a worker's own
// stream arrives in order), O(log n) otherwise.
func (h *seqHeap) push(it mergeItem) {
	q := append(*h, it)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].t.Seq <= q[i].t.Seq {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
	*h = q
}

// streamQueue is one stream's reorder buffer: an ascending FIFO run for the
// common case plus a seqHeap spill for out-of-order arrivals. A worker's
// stream reaches the merger almost sorted — it processes the splitter's
// assignments in order — so nearly every item lands on the FIFO with an O(1)
// append and leaves with an O(1) head advance. Only disorder (replay bursts
// after a failure, a tuple behind a survivor's backlog) pays the heap's
// O(log n): under the old always-heap queue, a pop on a queue-capacity-deep
// backlog did ~2·log n cache-missing 40-byte swap writes per released tuple,
// which became the merge loop's dominant cost once ingest went lock-free.
//
// Like seqHeap, duplicates are admitted and swept lazily by the caller; the
// FIFO/heap split never reorders equal sequence numbers in a way the release
// discipline can observe (every surplus copy of a sequence is swept, exactly
// one copy releases).
type streamQueue struct {
	fifo []mergeItem // ascending run; fifo[fh:] are live
	fh   int         // index of the FIFO head within fifo
	heap seqHeap     // out-of-order spill
}

// push admits one item: FIFO when it keeps the run ascending, heap spill
// otherwise.
func (q *streamQueue) push(it mergeItem) {
	if n := len(q.fifo); n == q.fh {
		// Empty run: restart at the front of the backing array.
		q.fifo = append(q.fifo[:0], it)
		q.fh = 0
		return
	} else if it.t.Seq >= q.fifo[n-1].t.Seq {
		q.fifo = append(q.fifo, it)
		return
	}
	q.heap.push(it)
}

// headKey returns the minimum queued sequence, or headIndexEmpty when the
// stream has nothing buffered.
func (q *streamQueue) headKey() uint64 {
	hasF := q.fh < len(q.fifo)
	hasH := len(q.heap) > 0
	switch {
	case hasF && hasH:
		if h := q.heap[0].t.Seq; h < q.fifo[q.fh].t.Seq {
			return h
		}
		return q.fifo[q.fh].t.Seq
	case hasF:
		return q.fifo[q.fh].t.Seq
	case hasH:
		return q.heap[0].t.Seq
	}
	return headIndexEmpty
}

// popMin removes and returns the minimum-sequence item. Vacated FIFO slots
// are zeroed so the run does not pin released payloads or their block refs;
// the dead prefix is compacted away once it dominates the backing array, so
// a run that never fully drains cannot grow it without bound.
func (q *streamQueue) popMin() mergeItem {
	hasH := len(q.heap) > 0
	if q.fh < len(q.fifo) && (!hasH || q.fifo[q.fh].t.Seq <= q.heap[0].t.Seq) {
		it := q.fifo[q.fh]
		q.fifo[q.fh] = mergeItem{}
		q.fh++
		if q.fh == len(q.fifo) {
			q.fifo = q.fifo[:0]
			q.fh = 0
		} else if q.fh > 32 && q.fh >= len(q.fifo)-q.fh {
			n := copy(q.fifo, q.fifo[q.fh:])
			clearTail := q.fifo[n:]
			for i := range clearTail {
				clearTail[i] = mergeItem{}
			}
			q.fifo = q.fifo[:n]
			q.fh = 0
		}
		return it
	}
	return q.heap.popMin()
}

// len is the stream's buffered item count.
func (q *streamQueue) len() int {
	return len(q.fifo) - q.fh + len(q.heap)
}

// popMin removes and returns the minimum-sequence item. The vacated slot is
// zeroed so the heap does not pin released payloads or their block refs.
func (h *seqHeap) popMin() mergeItem {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = mergeItem{}
	q = q[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(q) && q[l].t.Seq < q[min].t.Seq {
			min = l
		}
		if r < len(q) && q[r].t.Seq < q[min].t.Seq {
			min = r
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	*h = q
	return top
}
