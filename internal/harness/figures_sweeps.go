package harness

import (
	"fmt"
	"time"

	"streambalance/internal/sim"
)

// heavyMultiplyTime is the virtual-clock scale for the heavy-cost figures
// (10k-60k multiplies at up to 100x load): at 50ns per multiply a 100x-loaded
// 60k-multiply tuple takes 300ms, keeping blocking episodes well below the
// sampling interval so the controller hears from several connections per
// interval — as it does at real hardware speeds.
const heavyMultiplyTime = 50 * time.Nanosecond

// SweepOptions scales a sweep for quick benchmark runs versus full figure
// regeneration.
type SweepOptions struct {
	// Sizes overrides the fan-out sizes (nil = the figure's default).
	Sizes []int
	// Tuples overrides the per-run workload (0 = the figure's default).
	Tuples uint64
}

// sweepScenario builds one homogeneous-cluster sweep configuration. Dynamic
// scenarios remove the load "an eighth through the experiment": after an
// eighth of the tuple workload has been released, so that each policy
// experiences the switch an eighth through its own run, as in the paper.
func sweepScenario(name string, n, baseCost int, loadMult float64, dynamic bool, tuples uint64, clustering bool, multiplyTime time.Duration) Scenario {
	hosts := HostsForPEs(n)
	sc := Scenario{
		Name:           fmt.Sprintf("%s/%dPE", name, n),
		Hosts:          hosts,
		PEs:            PlaceAcrossHosts(n, hosts, HalfLoaded(n, loadMult, 0)),
		BaseCost:       baseCost,
		MultiplyTime:   multiplyTime,
		TotalTuples:    tuples,
		SampleInterval: 250 * time.Millisecond,
		Clustering:     clustering,
	}
	if dynamic {
		sc.LoadSwitchAfterTuples = tuples / 8
		sc.PostSwitchLoads = make([]sim.LoadSchedule, n)
	}
	return sc
}

// runSweep executes the four-policy comparison over every fan-out size.
func runSweep(title string, sizes []int, baseCost int, loadMult float64, dynamic bool, tuples uint64, clustering bool, multiplyTime time.Duration) (SweepReport, error) {
	report := SweepReport{Title: title}
	for _, n := range sizes {
		sc := sweepScenario(title, n, baseCost, loadMult, dynamic, tuples, clustering, multiplyTime)
		rows, err := Compare(sc, AllPolicies)
		if err != nil {
			return SweepReport{}, err
		}
		report.Points = append(report.Points, SweepPoint{PEs: n, Rows: rows})
	}
	return report, nil
}

// Fig9Static reproduces the left graph of Figure 9: 2-16 PEs, base tuple
// cost 1,000 multiplies, half the PEs at 10x for the whole run; execution
// time normalized to Oracle*.
func Fig9Static(opts SweepOptions) (SweepReport, error) {
	sizes, tuples := opts.sizesOr(2, 4, 8, 16), opts.tuplesOr(120_000)
	return runSweep("Figure 9 (static): base 1k, half PEs 10x", sizes, 1000, 10, false, tuples, false, 0)
}

// Fig9Dynamic reproduces the middle and right graphs of Figure 9: the 10x
// load is removed an eighth through the run.
func Fig9Dynamic(opts SweepOptions) (SweepReport, error) {
	sizes, tuples := opts.sizesOr(2, 4, 8, 16), opts.tuplesOr(120_000)
	return runSweep("Figure 9 (dynamic): base 1k, half PEs 10x removed at 1/8", sizes, 1000, 10, true, tuples, false, 0)
}

// Fig10Static reproduces the left graph of Figure 10: base 10,000-multiply
// tuples, half the PEs at 100x throughout.
func Fig10Static(opts SweepOptions) (SweepReport, error) {
	sizes, tuples := opts.sizesOr(2, 4, 8, 16), opts.tuplesOr(120_000)
	return runSweep("Figure 10 (static): base 10k, half PEs 100x", sizes, 10_000, 100, false, tuples, false, heavyMultiplyTime)
}

// Fig10Dynamic reproduces the middle and right graphs of Figure 10: the 100x
// load is removed an eighth through.
func Fig10Dynamic(opts SweepOptions) (SweepReport, error) {
	sizes, tuples := opts.sizesOr(2, 4, 8, 16), opts.tuplesOr(120_000)
	return runSweep("Figure 10 (dynamic): base 10k, half PEs 100x removed at 1/8", sizes, 10_000, 100, true, tuples, false, heavyMultiplyTime)
}

// Fig13 reproduces Figure 13: clustering on, base 60,000-multiply tuples,
// half the PEs at 100x removed an eighth through, up to 64 PEs.
func Fig13(opts SweepOptions) (SweepReport, error) {
	sizes, tuples := opts.sizesOr(8, 16, 32, 64), opts.tuplesOr(240_000)
	return runSweep("Figure 13: clustering, base 60k, half PEs 100x removed at 1/8", sizes, 60_000, 100, true, tuples, true, heavyMultiplyTime)
}

func (o SweepOptions) sizesOr(def ...int) []int {
	if len(o.Sizes) > 0 {
		return o.Sizes
	}
	return def
}

func (o SweepOptions) tuplesOr(def uint64) uint64 {
	if o.Tuples > 0 {
		return o.Tuples
	}
	return def
}

// Fig11Placement identifies one of the placement alternatives of Figure 11
// (bottom).
type Fig11Placement int

const (
	// PlaceAllFast puts every PE on the fast host (round-robin splitting).
	PlaceAllFast Fig11Placement = iota + 1
	// PlaceAllSlow puts every PE on the slow host (round-robin).
	PlaceAllSlow
	// PlaceEvenRR spreads PEs across both hosts, round-robin splitting.
	PlaceEvenRR
	// PlaceEvenLB spreads PEs across both hosts with the adaptive balancer.
	PlaceEvenLB
)

// String returns the paper's label.
func (p Fig11Placement) String() string {
	switch p {
	case PlaceAllFast:
		return "All-Fast"
	case PlaceAllSlow:
		return "All-Slow"
	case PlaceEvenRR:
		return "Even-RR"
	case PlaceEvenLB:
		return "Even-LB"
	default:
		return fmt.Sprintf("Fig11Placement(%d)", int(p))
	}
}

// Fig11Bottom reproduces the bottom graphs of Figure 11: 2-24 PEs across one
// fast and one slow host, base cost 20,000 multiplies, no simulated load.
// Execution times are normalized to Even-RR, as in the paper.
func Fig11Bottom(opts SweepOptions) (SweepReport, error) {
	sizes, tuples := opts.sizesOr(2, 4, 8, 16, 24), opts.tuplesOr(48_000)
	placements := []Fig11Placement{PlaceAllFast, PlaceAllSlow, PlaceEvenRR, PlaceEvenLB}
	report := SweepReport{Title: "Figure 11 (bottom): fast+slow hosts, base 20k"}
	for _, n := range sizes {
		var rows []Row
		var evenRRExec time.Duration
		for _, placement := range placements {
			var hosts []sim.HostSpec
			switch placement {
			case PlaceAllFast:
				hosts = []sim.HostSpec{sim.FastHost("fast")}
			case PlaceAllSlow:
				hosts = []sim.HostSpec{sim.SlowHost("slow")}
			default:
				hosts = []sim.HostSpec{sim.FastHost("fast"), sim.SlowHost("slow")}
			}
			sc := Scenario{
				Name:           fmt.Sprintf("fig11/%s/%dPE", placement, n),
				Hosts:          hosts,
				PEs:            PlaceAcrossHosts(n, hosts, nil),
				BaseCost:       20_000,
				TotalTuples:    tuples,
				SampleInterval: 250 * time.Millisecond,
				// Host capacities differ by only 20% here; the paper's
				// incremental change constraints keep exploration from
				// churning away the small gain.
				MaxStep: 10,
			}
			kind := PolicyRR
			if placement == PlaceEvenLB {
				kind = PolicyLBAdaptive
			}
			m, err := RunPolicy(sc, kind)
			if err != nil {
				return SweepReport{}, err
			}
			if placement == PlaceEvenRR {
				evenRRExec = m.EndTime
			}
			rows = append(rows, Row{
				Policy:          placement.String(),
				ExecTime:        m.EndTime,
				FinalThroughput: m.FinalThroughput,
				MeanThroughput:  m.MeanThroughput,
				LatencyP50:      m.LatencyP50,
				LatencyP99:      m.LatencyP99,
				FinalWeights:    m.FinalWeights,
			})
		}
		if evenRRExec > 0 {
			for i := range rows {
				rows[i].NormalizedExec = float64(rows[i].ExecTime) / float64(evenRRExec)
			}
		}
		report.Points = append(report.Points, SweepPoint{PEs: n, Rows: rows})
	}
	return report, nil
}
