package harness

import (
	"fmt"
	"io"
	"time"

	"streambalance/internal/sim"
)

// bursty.go is an extension experiment beyond the paper's evaluation,
// probing a claim the paper makes but does not measure: "Streaming systems
// can also be bursty" (Section 5.4), which is part of why exploration must
// be encouraged. The source alternates between a burst that oversubscribes
// the region and a lull well under its capacity. During the lull nothing
// blocks, so no new data arrives and the decay erodes the model; a good
// balancer must neither unlearn the loaded connection's limits (the next
// burst would hurt) nor need to relearn from scratch every cycle.

// BurstyReport compares policies on the bursty-source scenario.
type BurstyReport struct {
	Rows []Row
	// BurstPeriod and the rates document the source shape.
	BurstPeriod time.Duration
	BurstRate   float64
	LullRate    float64
}

// String renders the comparison.
func (r BurstyReport) String() string {
	header := fmt.Sprintf("== Extension: bursty source (burst %0.f/s, lull %0.f/s, period %v) ==",
		r.BurstRate, r.LullRate, r.BurstPeriod)
	return renderRows(header, r.Rows)
}

// ExtBursty runs a 3-PE region (one PE at 10x) under a square-wave source
// for the given duration, comparing the usual policies. Throughput is
// limited by the source during lulls, so mean throughput measures how much
// of each burst the policy banks.
func ExtBursty(duration time.Duration) (BurstyReport, error) {
	if duration <= 0 {
		duration = 320 * time.Second
	}
	const (
		burstRate = 4000 // tuples/s: far over the ~2100/s region capacity
		lullRate  = 300  // tuples/s: under even the RR throughput
		period    = 40 * time.Second
	)
	// Square-wave source: burst for period/2, lull for period/2.
	var phases []sim.LoadPhase
	for at := time.Duration(0); at < duration; at += period {
		phases = append(phases,
			sim.LoadPhase{From: at, Multiplier: burstRate},
			sim.LoadPhase{From: at + period/2, Multiplier: lullRate},
		)
	}
	source := sim.NewLoadSchedule(phases)

	report := BurstyReport{BurstPeriod: period, BurstRate: burstRate, LullRate: lullRate}
	hosts := HostsForPEs(3)
	pes := PlaceAcrossHosts(3, hosts, func(j int) sim.LoadSchedule {
		if j == 0 {
			return sim.ConstantLoad(10)
		}
		return sim.LoadSchedule{}
	})
	sc := Scenario{Hosts: hosts, PEs: pes, BaseCost: 1000}
	for _, kind := range []PolicyKind{PolicyOracle, PolicyLBStatic, PolicyLBAdaptive, PolicyRR} {
		pol, finish, err := sc.buildPolicy(kind)
		if err != nil {
			return BurstyReport{}, err
		}
		s, err := sim.New(sim.Config{
			Hosts:      sc.Hosts,
			PEs:        sc.PEs,
			BaseCost:   sc.BaseCost,
			Duration:   duration,
			Policy:     pol,
			SourceRate: &source,
		})
		if err != nil {
			return BurstyReport{}, err
		}
		m, err := s.Run()
		if err != nil {
			return BurstyReport{}, err
		}
		if err := finish(); err != nil {
			return BurstyReport{}, err
		}
		report.Rows = append(report.Rows, Row{
			Policy:          kind.String(),
			ExecTime:        m.EndTime,
			FinalThroughput: m.FinalThroughput,
			MeanThroughput:  m.MeanThroughput,
			LatencyP50:      m.LatencyP50,
			LatencyP99:      m.LatencyP99,
			FinalWeights:    m.FinalWeights,
		})
	}
	return report, nil
}

// WriteCSV emits one row per policy.
func (r BurstyReport) WriteCSV(w io.Writer) error {
	sweep := SweepReport{Points: []SweepPoint{{PEs: 3, Rows: r.Rows}}}
	return sweep.WriteCSV(w)
}
