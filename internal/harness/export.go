package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// export.go writes every report type as CSV so the figures can be plotted
// with external tooling; cmd/sbench's -csv flag drives it.

// writeCSV is a small helper that flushes and surfaces the writer error.
func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("harness: write csv header: %w", err)
	}
	if err := cw.WriteAll(rows); err != nil {
		return fmt.Errorf("harness: write csv rows: %w", err)
	}
	cw.Flush()
	return cw.Error()
}

func ftoa(v float64) string {
	return strconv.FormatFloat(v, 'g', 8, 64)
}

// WriteCSV emits one row per (fan-out, policy).
func (r SweepReport) WriteCSV(w io.Writer) error {
	header := []string{"pes", "policy", "exec_seconds", "normalized_exec", "final_tput", "mean_tput", "latency_p50_s", "latency_p99_s"}
	var rows [][]string
	for _, p := range r.Points {
		for _, row := range p.Rows {
			rows = append(rows, []string{
				strconv.Itoa(p.PEs),
				row.Policy,
				ftoa(row.ExecTime.Seconds()),
				ftoa(row.NormalizedExec),
				ftoa(row.FinalThroughput),
				ftoa(row.MeanThroughput),
				ftoa(row.LatencyP50.Seconds()),
				ftoa(row.LatencyP99.Seconds()),
			})
		}
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits the in-depth series in long format: one row per
// (kind, time, connection) with kind in {weight, rate, cluster}.
func (r InDepthReport) WriteCSV(w io.Writer) error {
	header := []string{"kind", "t_seconds", "conn", "value"}
	var rows [][]string
	for _, s := range r.Weights.All() {
		for _, p := range s.Points() {
			rows = append(rows, []string{"weight", ftoa(p.At.Seconds()), s.Name, ftoa(p.Value)})
		}
	}
	for _, s := range r.Rates.All() {
		for _, p := range s.Points() {
			rows = append(rows, []string{"rate", ftoa(p.At.Seconds()), s.Name, ftoa(p.Value)})
		}
	}
	for t, row := range r.Clusters {
		for j, id := range row {
			rows = append(rows, []string{"cluster", strconv.Itoa(t), fmt.Sprintf("conn%d", j), strconv.Itoa(id)})
		}
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits the cumulative counter and rate series.
func (r Fig2Report) WriteCSV(w io.Writer) error {
	header := []string{"t_seconds", "cumulative_s", "rate"}
	var rows [][]string
	ratePts := r.Rate.Points()
	for i, p := range r.Cumulative.Points() {
		rate := ""
		if i < len(ratePts) {
			rate = ftoa(ratePts[i].Value)
		}
		rows = append(rows, []string{ftoa(p.At.Seconds()), ftoa(p.Value), rate})
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits one row per fixed split.
func (r Fig5Report) WriteCSV(w io.Writer) error {
	header := []string{"share_units", "mean_rate", "cov", "leader_share"}
	var rows [][]string
	for _, s := range r.Splits {
		rows = append(rows, []string{
			strconv.Itoa(s.Share), ftoa(s.MeanRate), ftoa(s.CoV), ftoa(s.LeaderShare),
		})
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits one row per (base cost, policy).
func (r RerouteReport) WriteCSV(w io.Writer) error {
	header := []string{"base_cost", "policy", "mean_tput", "rerouted_percent"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			strconv.Itoa(row.BaseCost), row.Policy, ftoa(row.MeanThroughput), ftoa(row.ReroutedPercent),
		})
	}
	return writeCSV(w, header, rows)
}

// WriteCSV emits one row per ablation variant.
func (r AblationReport) WriteCSV(w io.Writer) error {
	header := []string{"variant", "exec_seconds", "final_tput", "mean_tput"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Variant, ftoa(row.ExecTime.Seconds()), ftoa(row.FinalThroughput), ftoa(row.MeanThroughput),
		})
	}
	return writeCSV(w, header, rows)
}
