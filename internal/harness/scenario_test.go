package harness

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"streambalance/internal/sim"
)

func TestPolicyKindString(t *testing.T) {
	tests := []struct {
		kind PolicyKind
		want string
	}{
		{PolicyOracle, "Oracle*"},
		{PolicyLBStatic, "LB-static"},
		{PolicyLBAdaptive, "LB-adaptive"},
		{PolicyRR, "RR"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Fatalf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestOracleWeights(t *testing.T) {
	tests := []struct {
		name string
		caps []float64
		want []int
	}{
		{"equal pair", []float64{100, 100}, []int{500, 500}},
		{"ten to one", []float64{100, 1000}, nil}, // checked proportionally below
		{"zero capacity", []float64{0, 0}, []int{500, 500}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := OracleWeights(tt.caps, 1000)
			sum := 0
			for _, w := range got {
				sum += w
			}
			if sum != 1000 {
				t.Fatalf("weights %v sum to %d, want 1000", got, sum)
			}
			if tt.want != nil {
				for j := range tt.want {
					if got[j] != tt.want[j] {
						t.Fatalf("weights = %v, want %v", got, tt.want)
					}
				}
			}
		})
	}
	// Proportionality: 1:10 capacities within rounding.
	got := OracleWeights([]float64{100, 1000}, 1000)
	if got[0] < 89 || got[0] > 93 {
		t.Fatalf("weights = %v, want conn0 near 91", got)
	}
}

func TestOracleWeightsSumProperty(t *testing.T) {
	prop := func(seed int64, rawN uint8) bool {
		n := int(rawN%16) + 1
		rng := rand.New(rand.NewSource(seed))
		caps := make([]float64, n)
		for j := range caps {
			caps[j] = rng.Float64() * 1000
		}
		weights := OracleWeights(caps, 1000)
		sum := 0
		for _, w := range weights {
			if w < 0 {
				return false
			}
			sum += w
		}
		return sum == 1000
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceAcrossHosts(t *testing.T) {
	fastSlow := []sim.HostSpec{sim.FastHost("fast"), sim.SlowHost("slow")}
	tests := []struct {
		n    int
		want []int // PEs per host
	}{
		{2, []int{1, 1}},
		{4, []int{2, 2}},
		{8, []int{4, 4}},
		{16, []int{8, 8}},
		{24, []int{16, 8}}, // slow host's 8 slots exhaust first
		{30, []int{19, 11}},
	}
	for _, tt := range tests {
		pes := PlaceAcrossHosts(tt.n, fastSlow, nil)
		counts := make([]int, len(fastSlow))
		for _, pe := range pes {
			counts[pe.Host]++
		}
		for h := range tt.want {
			if counts[h] != tt.want[h] {
				t.Fatalf("n=%d: placement %v, want %v", tt.n, counts, tt.want)
			}
		}
	}
}

func TestPlaceAcrossHostsAppliesLoads(t *testing.T) {
	hosts := HostsForPEs(4)
	pes := PlaceAcrossHosts(4, hosts, HalfLoaded(4, 10, 0))
	if got := pes[0].Load.At(0); got != 10 {
		t.Fatalf("PE 0 load = %v, want 10", got)
	}
	if got := pes[3].Load.At(0); got != 1 {
		t.Fatalf("PE 3 load = %v, want 1", got)
	}
	// Dynamic variant removes the load at the switch time.
	pes = PlaceAcrossHosts(4, hosts, HalfLoaded(4, 10, 20*time.Second))
	if got := pes[0].Load.At(19 * time.Second); got != 10 {
		t.Fatalf("PE 0 load before switch = %v, want 10", got)
	}
	if got := pes[0].Load.At(20 * time.Second); got != 1 {
		t.Fatalf("PE 0 load after switch = %v, want 1", got)
	}
}

func TestHostsForPEs(t *testing.T) {
	if got := len(HostsForPEs(8)); got != 1 {
		t.Fatalf("8 PEs need %d hosts, want 1", got)
	}
	if got := len(HostsForPEs(9)); got != 2 {
		t.Fatalf("9 PEs need %d hosts, want 2", got)
	}
	if got := len(HostsForPEs(64)); got != 8 {
		t.Fatalf("64 PEs need %d hosts, want 8", got)
	}
}

func TestScenarioCapacities(t *testing.T) {
	hosts := []sim.HostSpec{sim.FastHost("fast"), sim.SlowHost("slow")}
	sc := Scenario{
		Hosts:    hosts,
		PEs:      []sim.PESpec{{Host: 0}, {Host: 1, Load: sim.ConstantLoad(10)}},
		BaseCost: 1000,
	}
	caps := sc.capacities(0)
	// Fast host: 1.2 clock / 1ms base = 1200/s. Slow at 10x: 100/s.
	if math.Abs(caps[0]-1200) > 1 {
		t.Fatalf("fast capacity = %v, want ~1200", caps[0])
	}
	if math.Abs(caps[1]-100) > 1 {
		t.Fatalf("loaded slow capacity = %v, want ~100", caps[1])
	}
}

func TestCompareNormalizesToOracle(t *testing.T) {
	hosts := HostsForPEs(2)
	sc := Scenario{
		Name:           "compare-test",
		Hosts:          hosts,
		PEs:            PlaceAcrossHosts(2, hosts, HalfLoaded(2, 10, 0)),
		BaseCost:       1000,
		TotalTuples:    20_000,
		SampleInterval: 250 * time.Millisecond,
	}
	rows, err := Compare(sc, []PolicyKind{PolicyOracle, PolicyRR})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if math.Abs(rows[0].NormalizedExec-1) > 1e-9 {
		t.Fatalf("oracle normalized exec = %v, want 1", rows[0].NormalizedExec)
	}
	// RR is gated by the slowest PE; the paper reports 1.5-4x worse.
	if rows[1].NormalizedExec < 1.3 {
		t.Fatalf("RR normalized exec = %v, want clearly above 1", rows[1].NormalizedExec)
	}
}

func TestRunPolicyUnknownKind(t *testing.T) {
	hosts := HostsForPEs(2)
	sc := Scenario{
		Hosts:       hosts,
		PEs:         PlaceAcrossHosts(2, hosts, nil),
		BaseCost:    1000,
		TotalTuples: 100,
	}
	if _, err := RunPolicy(sc, PolicyKind(99)); err == nil {
		t.Fatal("unknown policy kind accepted")
	}
}
