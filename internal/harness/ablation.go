package harness

import (
	"fmt"
	"math"
	"strings"
	"time"

	"streambalance/internal/core"
	"streambalance/internal/sim"
)

// ablation.go runs controlled comparisons of the design choices DESIGN.md
// calls out: the decay factor (the paper fixed 10% per iteration without
// justification), the treatment of zero-blocking intervals under drafting,
// clustering on/off at high fan-out, and the two exact RAP solvers.

// AblationRow is one variant's outcome.
type AblationRow struct {
	Variant         string
	ExecTime        time.Duration
	FinalThroughput float64
	MeanThroughput  float64
}

// AblationReport is a labelled set of variant outcomes.
type AblationReport struct {
	Title string
	Rows  []AblationRow
}

// String renders the comparison.
func (r AblationReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Title)
	fmt.Fprintf(&b, "%-24s %14s %14s %14s\n", "variant", "exec-time", "final-tput/s", "mean-tput/s")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s %14s %14.1f %14.1f\n",
			row.Variant, row.ExecTime.Truncate(time.Millisecond), row.FinalThroughput, row.MeanThroughput)
	}
	return b.String()
}

// Lookup returns the row for a variant.
func (r AblationReport) Lookup(variant string) (AblationRow, bool) {
	for _, row := range r.Rows {
		if row.Variant == variant {
			return row, true
		}
	}
	return AblationRow{}, false
}

// ablationScenario is the shared workload: the Figure 8 (top) shape — three
// PEs, one at 100x, load removed partway — where both the convergence and
// the re-exploration behaviour matter.
func ablationScenario(duration time.Duration) ([]sim.HostSpec, []sim.PESpec) {
	hosts := HostsForPEs(3)
	pes := PlaceAcrossHosts(3, hosts, func(j int) sim.LoadSchedule {
		if j == 0 {
			return sim.StepLoad(100, 1, duration/4)
		}
		return sim.LoadSchedule{}
	})
	return hosts, pes
}

// runAblationVariant executes the shared workload under a configured policy.
func runAblationVariant(variant string, duration time.Duration, configure func() (sim.Policy, func() error, error)) (AblationRow, error) {
	hosts, pes := ablationScenario(duration)
	pol, finish, err := configure()
	if err != nil {
		return AblationRow{}, err
	}
	s, err := sim.New(sim.Config{
		Hosts:    hosts,
		PEs:      pes,
		BaseCost: 1000,
		Duration: duration,
		Policy:   pol,
	})
	if err != nil {
		return AblationRow{}, err
	}
	m, err := s.Run()
	if err != nil {
		return AblationRow{}, err
	}
	if err := finish(); err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Variant:         variant,
		ExecTime:        m.EndTime,
		FinalThroughput: m.FinalThroughput,
		MeanThroughput:  m.MeanThroughput,
	}, nil
}

// balancerVariant builds a BalancerPolicy configurator.
func balancerVariant(decayEnabled bool, decayFactor float64, mode sim.ZeroTrustMode) func() (sim.Policy, func() error, error) {
	return func() (sim.Policy, func() error, error) {
		b, err := core.NewBalancer(core.Config{
			Connections:  3,
			DecayEnabled: decayEnabled,
			DecayFactor:  decayFactor,
		})
		if err != nil {
			return nil, nil, err
		}
		pol := sim.NewBalancerPolicy(b, "LB")
		pol.SetZeroTrustMode(mode)
		return pol, pol.Err, nil
	}
}

// AblationDecay compares decay factors on the dynamic scenario. The paper's
// 0.9 per one-second iteration must recover after the load removal; no decay
// (LB-static) must not; extreme decay factors churn or adapt too slowly.
func AblationDecay(duration time.Duration) (AblationReport, error) {
	if duration <= 0 {
		duration = 240 * time.Second
	}
	report := AblationReport{Title: "Ablation: decay factor (load removed at 1/4)"}
	variants := []struct {
		name    string
		enabled bool
		factor  float64
	}{
		{"no-decay (LB-static)", false, 0},
		{"decay=0.70", true, 0.70},
		{"decay=0.90 (paper)", true, 0.90},
		{"decay=0.99", true, 0.99},
	}
	for _, v := range variants {
		row, err := runAblationVariant(v.name, duration, balancerVariant(v.enabled, v.factor, sim.ZeroTrustScaled))
		if err != nil {
			return AblationReport{}, fmt.Errorf("harness: ablation decay %s: %w", v.name, err)
		}
		report.Rows = append(report.Rows, row)
	}
	return report, nil
}

// AblationZeroTrust compares the treatments of zero-blocking intervals
// (DESIGN.md section 4b) on the dynamic scenario.
func AblationZeroTrust(duration time.Duration) (AblationReport, error) {
	if duration <= 0 {
		duration = 240 * time.Second
	}
	report := AblationReport{Title: "Ablation: zero-observation trust (load removed at 1/4)"}
	variants := []struct {
		name string
		mode sim.ZeroTrustMode
	}{
		{"scaled (default)", sim.ZeroTrustScaled},
		{"ignore zeros", sim.ZeroTrustNone},
		{"full-trust zeros", sim.ZeroTrustFull},
	}
	for _, v := range variants {
		row, err := runAblationVariant(v.name, duration, balancerVariant(true, core.DefaultDecayFactor, v.mode))
		if err != nil {
			return AblationReport{}, fmt.Errorf("harness: ablation zero-trust %s: %w", v.name, err)
		}
		report.Rows = append(report.Rows, row)
	}
	return report, nil
}

// AblationClustering compares clustering on/off at 32 PEs on the Figure 13
// static workload, where pooling the sparse per-channel data is the point.
func AblationClustering(tuples uint64) (AblationReport, error) {
	if tuples == 0 {
		tuples = 120_000
	}
	report := AblationReport{Title: "Ablation: clustering at 32 PEs (base 60k, half 100x)"}
	for _, clustering := range []bool{true, false} {
		name := "clustering off"
		if clustering {
			name = "clustering on"
		}
		sc := sweepScenario("ablation-clustering", 32, 60_000, 100, false, tuples, clustering, heavyMultiplyTime)
		m, err := RunPolicy(sc, PolicyLBAdaptive)
		if err != nil {
			return AblationReport{}, fmt.Errorf("harness: ablation clustering: %w", err)
		}
		report.Rows = append(report.Rows, AblationRow{
			Variant:         name,
			ExecTime:        m.EndTime,
			FinalThroughput: m.FinalThroughput,
			MeanThroughput:  m.MeanThroughput,
		})
	}
	return report, nil
}

// SolverRow compares the two exact RAP solvers on one learned instance.
type SolverRow struct {
	Connections int
	Agree       bool
	FoxIters    int
	BisectIters int
}

// AblationSolver cross-checks SolveFox and SolveBisect on learned functions
// from a short run, reporting agreement and work counts.
func AblationSolver() ([]SolverRow, error) {
	var rows []SolverRow
	for _, n := range []int{4, 16, 64} {
		b, err := core.NewBalancer(core.Config{Connections: n})
		if err != nil {
			return nil, err
		}
		// Learn plausible functions from a synthetic capacity profile.
		for round := 0; round < 30; round++ {
			w := b.Weights()
			for j := 0; j < n; j++ {
				capUnits := 100 + 50*(j%5)
				rate := 0.0
				if over := w[j] - capUnits; over > 0 {
					rate = float64(over) * 0.01
				}
				if err := b.Observe(j, rate); err != nil {
					return nil, err
				}
			}
			if _, err := b.Rebalance(); err != nil {
				return nil, err
			}
		}
		funcs := make([]core.Func, n)
		for j := 0; j < n; j++ {
			funcs[j] = b.Func(j)
		}
		problem := core.Problem{Funcs: funcs, Total: core.DefaultUnits}
		fox, err := core.SolveFox(problem)
		if err != nil {
			return nil, err
		}
		bisect, err := core.SolveBisect(problem)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SolverRow{
			Connections: n,
			Agree:       math.Abs(fox.Objective-bisect.Objective) < 1e-9,
			FoxIters:    fox.Iterations,
			BisectIters: bisect.Iterations,
		})
	}
	return rows, nil
}

// RenderSolverRows formats the solver comparison.
func RenderSolverRows(rows []SolverRow) string {
	var b strings.Builder
	b.WriteString("== Ablation: Fox greedy vs value-space bisection ==\n")
	fmt.Fprintf(&b, "%12s %8s %12s %14s\n", "connections", "agree", "fox iters", "bisect probes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12d %8v %12d %14d\n", r.Connections, r.Agree, r.FoxIters, r.BisectIters)
	}
	return b.String()
}
